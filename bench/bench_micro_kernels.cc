// Google-benchmark micro suite for the kernels the estimators spend their
// time in: BFS, biconnected decomposition, block-cut-tree construction,
// uniform path sampling (both strategies and both substrates), one Brandes
// source, and the Exact_bc 2-hop pass.
//
// In addition to the gbench timings, a hand-rolled speedup suite runs first
// and prints machine-readable before/after ratios for the optimizations this
// codebase tracks (component-view vs. filtered sampling, pooled vs.
// spawn-per-round engine, adaptive vs. fixed-budget sample counts at equal
// ε — `adaptive_sample_reduction`). Pass --speedup_json=PATH to also dump
// them as JSON (tools/run_benchmarks.sh does).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>

#include "bc/brandes.h"
#include "bc/exact_subspace.h"
#include "bc/path_sampler.h"
#include "bc/saphyra_bc.h"
#include "bench_util.h"
#include "bicomp/isp.h"
#include "core/sample_engine.h"
#include "graph/bfs.h"
#include "graph/binary_io.h"
#include "graph/io.h"
#include "seed_bfs.h"
#include "seed_path_sampler.h"
#include "service/query.h"
#include "service/scheduler.h"
#include "service/session.h"
#include "util/thread_pool.h"

using namespace saphyra;
using namespace saphyra::bench;

namespace {

const Graph& SocialFixture() {
  static Graph g = SocialGraph(20000, 0.3, 5, 900);
  return g;
}

// Leaf-heavy social surrogate (flickr-s profile): hubs carry many filtered
// bridge arcs, the worst case for the legacy per-arc component test.
const Graph& LeafySocialFixture() {
  static Graph g = SocialGraph(20000, 0.55, 5, 902);
  return g;
}

const Graph& RoadFixture() {
  static Graph g = RoadGrid(150, 120, 0.85, 901).graph;
  return g;
}

// Near-complete lattice: one giant biconnected block, the dense-frontier
// regime for component-restricted sampling on road-like inputs (the
// `path_sampling_grid` scenario of ISSUE 4).
const Graph& GridFixture() {
  static Graph g = RoadGrid(140, 110, 0.97, 905).graph;
  return g;
}

const IspIndex& SocialIsp() {
  static IspIndex isp(SocialFixture());
  return isp;
}

const IspIndex& LeafySocialIsp() {
  static IspIndex isp(LeafySocialFixture());
  return isp;
}

const IspIndex& RoadIsp() {
  static IspIndex isp(RoadFixture());
  return isp;
}

const IspIndex& GridIsp() {
  static IspIndex isp(GridFixture());
  return isp;
}

// Large synthetic fixture for the parallel-preprocessing measurement:
// ~10x the other fixtures so the decomposition runs long enough for the
// per-level barriers of the parallel pass to amortize.
const Graph& BicompBenchFixture() {
  static Graph g = SocialGraph(200000, 0.3, 5, 907);
  return g;
}

const IspIndex& IspFixture(int which) {
  switch (which) {
    case 0: return SocialIsp();
    case 1: return RoadIsp();
    default: return LeafySocialIsp();
  }
}

// ---------------------------------------------------------------------------
// Speedup suite: paired before/after measurements with explicit ratios.
// ---------------------------------------------------------------------------

struct GenBcTriple {
  uint32_t comp;
  NodeId s, t;
};

std::vector<GenBcTriple> DrawTriples(const IspIndex& isp,
                                     const PersonalizedSpace& space,
                                     size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<GenBcTriple> triples;
  triples.reserve(count);
  while (triples.size() < count) {
    uint32_t c = space.SampleComponent(&rng);
    NodeId s = isp.SampleSource(c, &rng);
    NodeId t = isp.SampleTarget(c, s, &rng);
    triples.push_back({c, s, t});
  }
  return triples;
}

/// Seconds to sample every pre-drawn (comp, s, t) triple with `sampler`.
template <class Sampler>
double TimeGenBcOnce(Sampler& sampler,
                     const std::vector<GenBcTriple>& triples, uint64_t seed) {
  PathSample path;
  Rng rng(seed);
  Timer timer;
  for (const GenBcTriple& x : triples) {
    sampler.SampleUniformPath(x.s, x.t, x.comp,
                              SamplingStrategy::kBidirectional, &rng, &path);
    benchmark::DoNotOptimize(path.length);
  }
  return timer.ElapsedSeconds();
}

struct Speedup {
  const char* key;
  double baseline_s;
  double optimized_s;
  double ratio() const { return baseline_s / optimized_s; }
};

/// Component-restricted path sampling: the frozen seed implementation
/// (filtered global CSR, bench/seed_path_sampler.h) vs. the production
/// component-view fast path.
Speedup MeasurePathSampling(const char* key, const IspIndex& isp,
                            size_t samples, uint64_t seed) {
  PersonalizedSpace space(isp, RandomSubset(isp.graph(), 100, seed));
  std::vector<GenBcTriple> triples = DrawTriples(isp, space, samples, seed);
  SeedPathSampler seed_sampler(isp.graph(), &isp.bcc().arc_component);
  PathSampler view(isp.graph(), isp.views());
  // Interleaved min-of-5: alternating the two samplers per repetition keeps
  // slow drift of the host (frequency scaling, noisy neighbors) from
  // landing entirely on one side of the ratio.
  double base = 1e100, opt = 1e100;
  TimeGenBcOnce(seed_sampler, triples, seed + 1);  // warmup
  TimeGenBcOnce(view, triples, seed + 1);
  for (int r = 0; r < 5; ++r) {
    base = std::min(base, TimeGenBcOnce(seed_sampler, triples, seed + 1));
    opt = std::min(opt, TimeGenBcOnce(view, triples, seed + 1));
  }
  return {key, base, opt};
}

/// Full σ-counting BFS: the seed's allocate-per-call top-down kernel
/// (bench/seed_bfs.h) vs. the production direction-optimizing BfsKernel
/// (reused scratch, top-down/bottom-up switching). This is the
/// Brandes-forward-pass shape. `bfs_hybrid_speedup` — the tracked
/// acceptance metric — runs on the dense-frontier regime (the social
/// fixture), which is where direction switching pays: its mid-BFS levels
/// carry most of the arc mass, so the pull skips the bulk of the push's
/// work. The road/grid fixtures are the no-regression guards: a
/// Θ(width+height)-diameter lattice never develops a frontier dense
/// enough to clear the switch threshold (the kernel's pull counter stays
/// at zero there), so they measure pure kernel overhead, and the
/// road-side payoff of this refactor shows up in the path-sampling
/// scenarios instead (see DESIGN.md, "Direction-optimizing traversal").
Speedup MeasureBfsHybrid(const char* key, const Graph& g, size_t sources,
                         uint64_t seed) {
  std::vector<NodeId> srcs;
  Rng rng(seed);
  for (size_t i = 0; i < sources; ++i) {
    srcs.push_back(static_cast<NodeId>(rng.UniformInt(g.num_nodes())));
  }
  BfsKernel kernel(g, TraversalPolicy::kHybrid);
  auto time_seed = [&]() {
    Timer timer;
    for (NodeId s : srcs) {
      SpDag dag = SeedBfsWithCounts(g, s);
      benchmark::DoNotOptimize(dag.sigma[srcs[0]]);
    }
    return timer.ElapsedSeconds();
  };
  auto time_kernel = [&]() {
    Timer timer;
    for (NodeId s : srcs) {
      kernel.Run(s);
      benchmark::DoNotOptimize(kernel.sigma(srcs[0]));
    }
    return timer.ElapsedSeconds();
  };
  time_seed();  // warmup
  time_kernel();
  double base = 1e100, opt = 1e100;
  for (int r = 0; r < 5; ++r) {
    base = std::min(base, time_seed());
    opt = std::min(opt, time_kernel());
  }
  return {key, base, opt};
}

/// Cheap clonable problem: engine overhead dominates, which is exactly what
/// the pooled-vs-spawn comparison is about.
class EngineBenchProblem : public HypothesisRankingProblem {
 public:
  size_t num_hypotheses() const override { return 16; }
  double ComputeExactRisks(std::vector<double>* exact) override {
    exact->assign(16, 0.0);
    return 0.0;
  }
  void SampleApproxLosses(Rng* rng, std::vector<uint32_t>* hits) override {
    hits->push_back(static_cast<uint32_t>(rng->UniformInt(16)));
  }
  double VcDimension() const override { return 2.0; }
  std::unique_ptr<HypothesisRankingProblem> CloneForSampling() override {
    return std::make_unique<EngineBenchProblem>();
  }
};

/// The seed's Draw: spawn + join one std::thread per worker, every round.
double TimeSpawnPerRound(int rounds, uint64_t per_round, uint32_t workers) {
  EngineBenchProblem problem;
  Rng base(77);
  std::vector<std::unique_ptr<HypothesisRankingProblem>> clones;
  std::vector<HypothesisRankingProblem*> ptrs{&problem};
  for (uint32_t i = 1; i < workers; ++i) {
    clones.push_back(problem.CloneForSampling());
    ptrs.push_back(clones.back().get());
  }
  std::vector<Rng> rngs;
  std::vector<std::vector<uint64_t>> local(workers,
                                           std::vector<uint64_t>(16, 0));
  for (uint32_t w = 0; w < workers; ++w) rngs.push_back(base.Split());
  std::vector<uint64_t> counts(16, 0);
  Timer timer;
  for (int r = 0; r < rounds; ++r) {
    std::vector<std::thread> threads;
    const uint64_t per = per_round / workers;
    const uint64_t extra = per_round % workers;
    for (uint32_t w = 0; w < workers; ++w) {
      uint64_t quota = per + (w < extra ? 1 : 0);
      threads.emplace_back([&, w, quota] {
        std::vector<uint32_t> hits;
        for (uint64_t j = 0; j < quota; ++j) {
          hits.clear();
          ptrs[w]->SampleApproxLosses(&rngs[w], &hits);
          for (uint32_t i : hits) ++local[w][i];
        }
      });
    }
    for (auto& t : threads) t.join();
    for (auto& l : local) {
      for (size_t i = 0; i < counts.size(); ++i) {
        counts[i] += l[i];
        l[i] = 0;
      }
    }
  }
  benchmark::DoNotOptimize(counts);
  return timer.ElapsedSeconds();
}

double TimePooled(int rounds, uint64_t per_round, uint32_t workers) {
  EngineBenchProblem problem;
  Rng base(77);
  SampleEngine engine(&problem, workers, &base, &SharedThreadPool());
  std::vector<uint64_t> counts(16, 0);
  Timer timer;
  uint64_t n = 0;
  for (int r = 0; r < rounds; ++r) {
    n = engine.Draw(n, n + per_round, &counts);
  }
  benchmark::DoNotOptimize(counts);
  return timer.ElapsedSeconds();
}

/// On-disk fixtures for the load-path kernels: the largest generated graph
/// saved as a SNAP text file, a graph-only `.sgr`, and a full
/// (decomposition-carrying) `.sgr`. Files live in the working directory
/// next to the other bench artifacts and are removed on destruction.
struct LoadFixture {
  std::string text_path = "saphyra_bench_load.snap";
  std::string graph_sgr_path = "saphyra_bench_load_graph.sgr";
  std::string full_sgr_path;

  LoadFixture() {
    full_sgr_path = SgrCachePathFor(text_path);
    SAPHYRA_CHECK(SaveSnapEdgeList(SocialFixture(), text_path).ok());
    // Convert exactly as graph_convert does: parse the text back (compact
    // ids) and cache the parsed graph, so cache and text loads agree.
    Graph parsed;
    SAPHYRA_CHECK(LoadSnapEdgeList(text_path, &parsed).ok());
    SgrWriteOptions wopts;
    wopts.source_path = text_path;
    SAPHYRA_CHECK(WriteSgr(graph_sgr_path, parsed, nullptr, nullptr, nullptr,
                           nullptr, wopts)
                      .ok());
    IspIndex isp(parsed);
    SAPHYRA_CHECK(WriteSgr(full_sgr_path, parsed, &isp.bcc(), &isp.conn(),
                           &isp.views(), &isp.tree(), wopts)
                      .ok());
  }

  ~LoadFixture() {
    std::remove(text_path.c_str());
    std::remove(graph_sgr_path.c_str());
    std::remove(full_sgr_path.c_str());
  }
};

const LoadFixture& LoadFixtureFiles() {
  static LoadFixture fixture;
  return fixture;
}

/// Text parse vs. zero-copy binary load of the same graph (the
/// `binary_load_speedup` acceptance metric). The loaded CSRs are checked
/// equal once, then each path is timed min-of-5. DoNotOptimize on a
/// traversal-dependent value keeps the mmap path honest: the offsets and
/// adjacency pages actually fault in.
Speedup MeasureBinaryLoad() {
  const LoadFixture& files = LoadFixtureFiles();
  auto touch = [](const Graph& g) -> uint64_t {
    // Sum a stride of offsets and adjacency entries so every mapped page
    // of both CSR arrays is resident.
    uint64_t acc = g.num_nodes();
    const auto off = g.raw_offsets();
    for (size_t i = 0; i < off.size(); i += 512) acc += off[i];
    const auto adj = g.raw_adj();
    for (size_t i = 0; i < adj.size(); i += 512) acc += adj[i];
    return acc;
  };
  {
    Graph from_text, from_sgr;
    GraphCache cache;
    SAPHYRA_CHECK(LoadSnapEdgeList(files.text_path, &from_text).ok());
    SAPHYRA_CHECK(LoadSgr(files.graph_sgr_path, &cache).ok());
    from_sgr = std::move(cache.graph);
    SAPHYRA_CHECK(from_text.num_nodes() == from_sgr.num_nodes());
    SAPHYRA_CHECK(from_text.raw_adj().size() == from_sgr.raw_adj().size());
    SAPHYRA_CHECK(std::memcmp(from_text.raw_adj().data(),
                              from_sgr.raw_adj().data(),
                              from_text.raw_adj().size() * sizeof(NodeId)) ==
                  0);
  }
  double base = 1e100, opt = 1e100;
  for (int r = 0; r < 5; ++r) {
    Timer timer;
    Graph g;
    SAPHYRA_CHECK(LoadSnapEdgeList(files.text_path, &g).ok());
    benchmark::DoNotOptimize(touch(g));
    base = std::min(base, timer.ElapsedSeconds());

    timer.Restart();
    GraphCache cache;
    SAPHYRA_CHECK(LoadSgr(files.graph_sgr_path, &cache).ok());
    benchmark::DoNotOptimize(touch(cache.graph));
    opt = std::min(opt, timer.ElapsedSeconds());
  }
  return {"binary_load", base, opt};
}

/// End-to-end serve-from-cache: text parse + full IspIndex build vs. `.sgr`
/// load + IspIndex adopting the persisted decomposition.
Speedup MeasureCachedPreprocess() {
  const LoadFixture& files = LoadFixtureFiles();
  double base = 1e100, opt = 1e100;
  for (int r = 0; r < 3; ++r) {
    Timer timer;
    {
      Graph g;
      SAPHYRA_CHECK(LoadSnapEdgeList(files.text_path, &g).ok());
      IspIndex isp(g);
      benchmark::DoNotOptimize(isp.gamma());
    }
    base = std::min(base, timer.ElapsedSeconds());

    timer.Restart();
    {
      GraphCache cache;
      SAPHYRA_CHECK(LoadSgr(files.full_sgr_path, &cache).ok());
      Graph g = std::move(cache.graph);
      IspIndex isp(g, std::move(cache));
      benchmark::DoNotOptimize(isp.gamma());
    }
    opt = std::min(opt, timer.ElapsedSeconds());
  }
  return {"cached_preprocess", base, opt};
}

/// The serving-layer workload of the `serve_warm` / `batch_throughput`
/// kernels: bc subset queries with distinct seeds (distinct cache keys),
/// modest ε so the per-query sampling cost is realistic for a ranking
/// service but does not drown the index cost being amortized.
std::vector<QueryRequest> ServeWorkload(size_t count) {
  std::vector<QueryRequest> reqs;
  for (size_t i = 0; i < count; ++i) {
    QueryRequest req;
    req.id = "warm" + std::to_string(i);
    req.estimator = EstimatorKind::kBc;
    req.epsilon = 0.1;
    req.delta = 0.01;
    req.seed = 1000 + i;
    req.targets = RandomSubset(SocialFixture(), 16, 500 + i);
    reqs.push_back(std::move(req));
  }
  return reqs;
}

/// Warm-session serving vs. cold per-process runs on the cached social
/// fixture (the `serve_warm_speedup` acceptance metric). The stream is a
/// ranking service's traffic shape: 8 distinct queries, each arriving 3
/// times (popular subsets get re-requested). Cold answers every arrival
/// the `saphyra_rank` way — a fresh process: open the `.sgr` session,
/// adopt the index, run the query, throw everything away. Warm is the
/// serving layer: one QuerySession + BatchScheduler, so the session state
/// is paid once and the 16 repeat arrivals come out of the memo LRU with
/// bitwise-identical bytes (the determinism contract is what makes that a
/// *correct* answer, not an approximation). Both sides load from the same
/// cache file; the gap is the serving layer itself — index amortization
/// on the unique fraction, memoization on the repeats. See
/// docs/benchmarks.md for how to read (and not over-read) this number.
Speedup MeasureServeWarmVsCold() {
  const LoadFixture& files = LoadFixtureFiles();
  const std::vector<QueryRequest> unique_reqs = ServeWorkload(8);
  std::vector<QueryRequest> stream;
  for (int copy = 0; copy < 3; ++copy) {
    for (const QueryRequest& req : unique_reqs) stream.push_back(req);
  }

  SessionOptions sopts;  // full .sgr: decomposition adopted, not rebuilt
  auto open_session = [&]() {
    std::unique_ptr<QuerySession> session;
    SAPHYRA_CHECK(
        QuerySession::Open(files.full_sgr_path, sopts, &session).ok());
    return session;
  };

  auto time_cold = [&]() {
    Timer timer;
    for (const QueryRequest& req : stream) {
      std::unique_ptr<QuerySession> session = open_session();
      QueryResult res = session->Run(req);
      SAPHYRA_CHECK(res.status.ok());
      benchmark::DoNotOptimize(res.estimates.data());
    }
    return timer.ElapsedSeconds();
  };
  // One warm session per timed rep, but a fresh scheduler (fresh memo):
  // a long-lived service would do even better by keeping its memo across
  // streams — this measures the steady state conservatively.
  std::unique_ptr<QuerySession> warm = open_session();
  auto time_warm = [&]() {
    SchedulerOptions opts;
    BatchScheduler scheduler(warm.get(), opts);
    Timer timer;
    for (const QueryRequest& req : stream) {
      QueryResult res = scheduler.Run(req);
      SAPHYRA_CHECK(res.status.ok());
      benchmark::DoNotOptimize(res.estimates.data());
    }
    return timer.ElapsedSeconds();
  };

  time_warm();  // builds the index; steady state from here
  time_cold();  // warm up page cache / allocator
  double base = 1e100, opt = 1e100;
  for (int r = 0; r < 5; ++r) {
    base = std::min(base, time_cold());
    opt = std::min(opt, time_warm());
  }
  return {"serve_warm", base, opt};
}

struct BatchThroughput {
  uint64_t queries = 0;
  double seconds = 0.0;
  uint64_t computed = 0;
  uint64_t cache_served = 0;  ///< memo + dedup
  double qps() const { return seconds > 0.0 ? queries / seconds : 0.0; }
};

/// Mixed batch through the BatchScheduler on a warm session: 8 distinct
/// queries served 3× each (the repeat traffic a ranking service sees),
/// so 2/3 of the stream should come from the memo/dedup machinery.
BatchThroughput MeasureBatchThroughput() {
  const LoadFixture& files = LoadFixtureFiles();
  std::unique_ptr<QuerySession> session;
  SAPHYRA_CHECK(
      QuerySession::Open(files.full_sgr_path, SessionOptions(), &session)
          .ok());

  std::vector<QueryRequest> batch;
  const std::vector<QueryRequest> unique_reqs = ServeWorkload(8);
  for (int copy = 0; copy < 3; ++copy) {
    for (const QueryRequest& req : unique_reqs) batch.push_back(req);
  }

  session->Run(unique_reqs[0]);  // build the index outside the timing

  BatchThroughput best;
  for (int r = 0; r < 3; ++r) {
    SchedulerOptions opts;
    opts.max_concurrent = 4;
    BatchScheduler scheduler(session.get(), opts);  // fresh memo per rep
    Timer timer;
    std::vector<QueryResult> results = scheduler.RunBatch(batch);
    const double seconds = timer.ElapsedSeconds();
    for (const QueryResult& res : results) SAPHYRA_CHECK(res.status.ok());
    const SchedulerStats stats = scheduler.stats();
    if (best.seconds == 0.0 || seconds < best.seconds) {
      best.queries = stats.queries;
      best.seconds = seconds;
      best.computed = stats.computed;
      best.cache_served = stats.memo_hits + stats.dedup_hits;
    }
  }
  return best;
}

/// Adaptive vs. fixed-budget sampling at equal ε: the progressive
/// scheduler's empirical-Bernstein rule stops as soon as every target
/// meets ε, while a fixed-budget run must draw the full VC cap Nmax
/// (which is what guarantees ε without adaptivity — RunDirectEstimation's
/// schedule). The ratio Nmax / N_adaptive is the sample (and, for
/// BFS-dominated workloads, time) reduction the adaptive stopping buys.
struct AdaptiveReduction {
  uint64_t adaptive_samples;
  uint64_t fixed_budget_samples;
  double ratio() const {
    return adaptive_samples == 0
               ? 1.0
               : static_cast<double>(fixed_budget_samples) /
                     static_cast<double>(adaptive_samples);
  }
};

AdaptiveReduction MeasureAdaptiveReduction() {
  const IspIndex& isp = SocialIsp();
  SaphyraBcOptions opts;
  opts.epsilon = 0.02;
  opts.seed = 42;
  SaphyraBcResult res =
      RunSaphyraBc(isp, RandomSubset(isp.graph(), 100, 42), opts);
  return {res.samples_used, res.max_samples};
}

Speedup MeasurePooledEngine() {
  const int rounds = 300;
  const uint64_t per_round = 512;
  const uint32_t workers = 4;
  // Warm both paths (pool creation, allocator) before timing.
  TimeSpawnPerRound(4, per_round, workers);
  TimePooled(4, per_round, workers);
  double base = 1e100, opt = 1e100;
  for (int r = 0; r < 3; ++r) {
    base = std::min(base, TimeSpawnPerRound(rounds, per_round, workers));
    opt = std::min(opt, TimePooled(rounds, per_round, workers));
  }
  return {"pooled_engine", base, opt};
}

/// Biconnected decomposition: the serial Hopcroft–Tarjan oracle vs the
/// parallel Tarjan–Vishkin pass at 8 logical threads (the graph_convert
/// default on an 8-way host). The parallel pass does ~2x the per-edge work
/// of the serial DFS across its level-synchronous sweeps, so the ratio is
/// hardware-bound: expect >= 2x on hosts with >= 4 physical cores and a
/// ratio *below* 1x on single-core machines, where the sweeps run back to
/// back (docs/benchmarks.md, "preprocess_parallel_speedup").
Speedup MeasurePreprocessParallel() {
  const Graph& g = BicompBenchFixture();
  const uint32_t threads = 8;
  {
    // The measurement is only meaningful while the outputs stay identical.
    BiconnectedComponents serial = ComputeBiconnectedComponents(g);
    BiconnectedComponents par = ComputeBiconnectedComponentsParallel(g, threads);
    SAPHYRA_CHECK(serial.arc_component == par.arc_component &&
                  serial.is_cutpoint == par.is_cutpoint);
  }
  double base = 1e100, opt = 1e100;
  for (int r = 0; r < 3; ++r) {
    {
      Timer timer;
      benchmark::DoNotOptimize(ComputeBiconnectedComponents(g));
      base = std::min(base, timer.ElapsedSeconds());
    }
    {
      Timer timer;
      benchmark::DoNotOptimize(ComputeBiconnectedComponentsParallel(g, threads));
      opt = std::min(opt, timer.ElapsedSeconds());
    }
  }
  return {"preprocess_parallel", base, opt};
}

/// Interleaved query/update serving vs the same query stream on a static
/// warm session. Each dynamic round toggles one edge (insert on even
/// rounds, delete on odd, so the edge set returns to base every two
/// rounds) through ApplyUpdate, then answers a warm bc query on the new
/// epoch. The ratio prices everything the dynamic path adds to a query:
/// overlay-CSR adjacency, the incremental bicomp repair, the epoch swap,
/// and the per-epoch index adoption — emitted as mutation_query_overhead
/// (close to 1.0 is the goal; the update cost itself is reported
/// separately as mutation_update_seconds).
struct MutationOverhead {
  double static_query_s = 0;    ///< per query, static warm session
  double mutating_query_s = 0;  ///< per query, freshly mutated session
  double update_s = 0;          ///< per ApplyUpdate
  double overhead() const {
    return static_query_s == 0 ? 1.0 : mutating_query_s / static_query_s;
  }
};

MutationOverhead MeasureMutationOverhead() {
  const LoadFixture& files = LoadFixtureFiles();
  const std::vector<QueryRequest> workload = ServeWorkload(4);
  const int rounds = 24;

  auto open_session = [&]() {
    std::unique_ptr<QuerySession> session;
    SAPHYRA_CHECK(
        QuerySession::Open(files.full_sgr_path, SessionOptions(), &session)
            .ok());
    return session;
  };

  // An edge absent from the fixture, toggled by the dynamic rounds.
  NodeId au = 0, av = 0;
  {
    std::unique_ptr<QuerySession> probe = open_session();
    const Graph& g = probe->graph();
    bool found = false;
    for (NodeId u = 0; u < g.num_nodes() && !found; ++u) {
      for (NodeId v = u + 1; v < g.num_nodes(); ++v) {
        const auto nbrs = g.neighbors(u);
        if (!std::binary_search(nbrs.begin(), nbrs.end(), v)) {
          au = u;
          av = v;
          found = true;
          break;
        }
      }
    }
    SAPHYRA_CHECK(found);
  }

  MutationOverhead best;
  for (int rep = 0; rep < 3; ++rep) {
    std::unique_ptr<QuerySession> stat = open_session();
    stat->Run(workload[0]);  // adopt the index outside the timing
    Timer static_timer;
    for (int r = 0; r < rounds; ++r) {
      QueryResult res = stat->Run(workload[r % workload.size()]);
      SAPHYRA_CHECK(res.status.ok());
      benchmark::DoNotOptimize(res.estimates.data());
    }
    const double static_s = static_timer.ElapsedSeconds() / rounds;

    std::unique_ptr<QuerySession> dyn = open_session();
    dyn->Run(workload[0]);
    double update_total = 0.0, query_total = 0.0;
    for (int r = 0; r < rounds; ++r) {
      const EdgeMutation mut{r % 2 == 0 ? EdgeMutationKind::kInsert
                                        : EdgeMutationKind::kDelete,
                             au, av};
      Timer update_timer;
      SAPHYRA_CHECK(dyn->ApplyUpdate(mut).ok());
      update_total += update_timer.ElapsedSeconds();
      Timer query_timer;
      QueryResult res = dyn->Run(workload[r % workload.size()]);
      SAPHYRA_CHECK(res.status.ok());
      benchmark::DoNotOptimize(res.estimates.data());
      query_total += query_timer.ElapsedSeconds();
    }
    if (rep == 0 || static_s < best.static_query_s) {
      best.static_query_s = static_s;
    }
    if (rep == 0 || query_total / rounds < best.mutating_query_s) {
      best.mutating_query_s = query_total / rounds;
    }
    if (rep == 0 || update_total / rounds < best.update_s) {
      best.update_s = update_total / rounds;
    }
  }
  return best;
}

void RunSpeedupSuite(const std::string& json_path) {
  std::printf("==== optimization speedups (baseline / optimized) ====\n");
  std::vector<Speedup> results;
  results.push_back(
      MeasurePathSampling("path_sampling_social", SocialIsp(), 30000, 42));
  results.push_back(MeasurePathSampling("path_sampling_leafy_social",
                                        LeafySocialIsp(), 30000, 43));
  results.push_back(
      MeasurePathSampling("path_sampling_road", RoadIsp(), 4000, 44));
  results.push_back(
      MeasurePathSampling("path_sampling_grid", GridIsp(), 2000, 45));
  // Direction-optimizing BFS kernel: `bfs_hybrid` (the gated
  // dense-frontier scenario, emitted as bfs_hybrid_speedup) plus the
  // road/grid no-regression guards.
  results.push_back(MeasureBfsHybrid("bfs_hybrid", SocialFixture(), 60, 46));
  results.push_back(
      MeasureBfsHybrid("bfs_hybrid_road", RoadFixture(), 60, 47));
  results.push_back(
      MeasureBfsHybrid("bfs_hybrid_grid", GridFixture(), 60, 48));
  results.push_back(MeasurePooledEngine());
  results.push_back(MeasureBinaryLoad());
  results.push_back(MeasureCachedPreprocess());
  // Parallel biconnected decomposition (emitted as
  // preprocess_parallel_speedup): serial oracle vs the Tarjan–Vishkin
  // pass at 8 threads on the large synthetic fixture. Skipped on
  // single-hardware-thread hosts — there the sweeps run back to back and
  // the ratio can only measure the pass's ~2x work overhead, a hardware
  // artifact, not a regression (docs/benchmarks.md). The JSON records the
  // skip instead of a misleading sub-1x number.
  const bool preprocess_parallel_skipped =
      std::thread::hardware_concurrency() <= 1;
  if (preprocess_parallel_skipped) {
    std::printf("[speedup] %-28s skipped (single hardware thread)\n",
                "preprocess_parallel");
  } else {
    results.push_back(MeasurePreprocessParallel());
  }
  // Serving layer: warm-session amortization (emitted as
  // serve_warm_speedup) — the cold side repeats session open + index
  // adoption per query, the warm side pays them once.
  results.push_back(MeasureServeWarmVsCold());

  double geo = 1.0;
  int npath = 0;
  for (const Speedup& s : results) {
    std::printf("[speedup] %-28s baseline=%.4fs optimized=%.4fs ratio=%.2fx\n",
                s.key, s.baseline_s, s.optimized_s, s.ratio());
    if (std::strncmp(s.key, "path_sampling", 13) == 0) {
      geo *= s.ratio();
      ++npath;
    }
  }
  const double path_speedup = std::pow(geo, 1.0 / npath);
  std::printf("[speedup] %-28s ratio=%.2fx (geomean of %d fixtures)\n",
              "path_sampling", path_speedup, npath);

  AdaptiveReduction adaptive = MeasureAdaptiveReduction();
  std::printf(
      "[speedup] %-28s adaptive=%llu fixed=%llu ratio=%.2fx\n",
      "adaptive_sample_reduction",
      static_cast<unsigned long long>(adaptive.adaptive_samples),
      static_cast<unsigned long long>(adaptive.fixed_budget_samples),
      adaptive.ratio());

  BatchThroughput batch = MeasureBatchThroughput();
  std::printf(
      "[speedup] %-28s %llu queries in %.4fs = %.1f q/s "
      "(%llu computed, %llu memo/dedup)\n",
      "batch_throughput",
      static_cast<unsigned long long>(batch.queries), batch.seconds,
      batch.qps(), static_cast<unsigned long long>(batch.computed),
      static_cast<unsigned long long>(batch.cache_served));

  MutationOverhead mut = MeasureMutationOverhead();
  std::printf(
      "[speedup] %-28s static=%.6fs mutated=%.6fs update=%.6fs "
      "overhead=%.2fx\n",
      "mutation_query_overhead", mut.static_query_s, mut.mutating_query_s,
      mut.update_s, mut.overhead());

  if (json_path.empty()) return;
  std::ofstream out(json_path);
  out << "{\n";
  for (const Speedup& s : results) {
    out << "  \"" << s.key << "_baseline_seconds\": " << s.baseline_s << ",\n";
    out << "  \"" << s.key << "_optimized_seconds\": " << s.optimized_s
        << ",\n";
    out << "  \"" << s.key << "_speedup\": " << s.ratio() << ",\n";
  }
  out << "  \"adaptive_samples\": " << adaptive.adaptive_samples << ",\n";
  out << "  \"fixed_budget_samples\": " << adaptive.fixed_budget_samples
      << ",\n";
  out << "  \"adaptive_sample_reduction\": " << adaptive.ratio() << ",\n";
  out << "  \"batch_throughput_queries\": " << batch.queries << ",\n";
  out << "  \"batch_throughput_seconds\": " << batch.seconds << ",\n";
  out << "  \"batch_throughput_computed\": " << batch.computed << ",\n";
  out << "  \"batch_throughput_cache_served\": " << batch.cache_served
      << ",\n";
  out << "  \"batch_throughput_qps\": " << batch.qps() << ",\n";
  out << "  \"mutation_static_query_seconds\": " << mut.static_query_s
      << ",\n";
  out << "  \"mutation_query_seconds\": " << mut.mutating_query_s << ",\n";
  out << "  \"mutation_update_seconds\": " << mut.update_s << ",\n";
  out << "  \"mutation_query_overhead\": " << mut.overhead() << ",\n";
  // Host context for the hardware-bound ratios (preprocess_parallel_*
  // above all): a sub-1x parallel speedup on a 1-thread container is the
  // expected reading, not a regression, and regression tooling can only
  // tell the difference if the measurement records the machine.
  out << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
      << ",\n";
  out << "  \"preprocess_parallel_skipped_single_core\": "
      << (preprocess_parallel_skipped ? "true" : "false") << ",\n";
  out << "  \"path_sampling_speedup\": " << path_speedup << "\n}\n";
  std::printf("[speedup] wrote %s\n", json_path.c_str());
}

// ---------------------------------------------------------------------------
// gbench kernels.
// ---------------------------------------------------------------------------

void BM_BfsSocial(benchmark::State& state) {
  const Graph& g = SocialFixture();
  Rng rng(1);
  for (auto _ : state) {
    NodeId s = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    benchmark::DoNotOptimize(Bfs(g, s));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BfsSocial);

void BM_BfsWithCountsSocial(benchmark::State& state) {
  const Graph& g = SocialFixture();
  Rng rng(2);
  for (auto _ : state) {
    NodeId s = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    benchmark::DoNotOptimize(BfsWithCounts(g, s));
  }
}
BENCHMARK(BM_BfsWithCountsSocial);

// The std::function edge-filter path, with a filter that rejects nothing:
// isolates the per-arc indirect-call cost the templated no-filter
// instantiation eliminates.
void BM_BfsWithCountsNoopFilter(benchmark::State& state) {
  const Graph& g = SocialFixture();
  std::function<bool(NodeId, NodeId)> accept_all = [](NodeId, NodeId) {
    return true;
  };
  Rng rng(2);
  for (auto _ : state) {
    NodeId s = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    benchmark::DoNotOptimize(BfsWithCounts(g, s, &accept_all));
  }
}
BENCHMARK(BM_BfsWithCountsNoopFilter);

// The reusable direction-optimizing kernel, forced to each policy.
// Arg(0)=social, Arg(1)=road, Arg(2)=grid. CI's bench smoke step runs
// these for one iteration so kernel bit-rot fails fast.
template <TraversalPolicy policy>
void BM_BfsKernel(benchmark::State& state) {
  const Graph& g = state.range(0) == 0   ? SocialFixture()
                   : state.range(0) == 1 ? RoadFixture()
                                         : GridFixture();
  BfsKernel kernel(g, policy);
  Rng rng(6);
  for (auto _ : state) {
    NodeId s = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    kernel.Run(s);
    benchmark::DoNotOptimize(kernel.sigma(s));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BfsKernel<TraversalPolicy::kTopDown>)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_BfsKernel<TraversalPolicy::kHybrid>)->Arg(0)->Arg(1)->Arg(2);

void BM_BiconnectedDecomposition(benchmark::State& state) {
  const Graph& g = state.range(0) == 0 ? SocialFixture() : RoadFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeBiconnectedComponents(g));
  }
}
BENCHMARK(BM_BiconnectedDecomposition)->Arg(0)->Arg(1);

// The parallel pass on the same fixtures plus the large one (Arg 2).
void BM_BiconnectedDecompositionParallel(benchmark::State& state) {
  const Graph& g = state.range(0) == 0   ? SocialFixture()
                   : state.range(0) == 1 ? RoadFixture()
                                         : BicompBenchFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeBiconnectedComponentsParallel(g, 8));
  }
}
BENCHMARK(BM_BiconnectedDecompositionParallel)->Arg(0)->Arg(1)->Arg(2);

void BM_IspIndexBuild(benchmark::State& state) {
  const Graph& g = state.range(0) == 0 ? SocialFixture() : RoadFixture();
  for (auto _ : state) {
    IspIndex isp(g);
    benchmark::DoNotOptimize(isp.gamma());
  }
}
BENCHMARK(BM_IspIndexBuild)->Arg(0)->Arg(1);

template <SamplingStrategy strategy>
void BM_PathSample(benchmark::State& state) {
  const Graph& g = state.range(0) == 0 ? SocialFixture() : RoadFixture();
  PathSampler sampler(g, nullptr);
  Rng rng(3);
  PathSample path;
  for (auto _ : state) {
    NodeId s = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    NodeId t = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    if (s == t) continue;
    sampler.SampleUniformPath(s, t, kInvalidComp, strategy, &rng, &path);
    benchmark::DoNotOptimize(path.num_paths);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PathSample<SamplingStrategy::kBidirectional>)->Arg(0)->Arg(1);
BENCHMARK(BM_PathSample<SamplingStrategy::kUnidirectional>)->Arg(0)->Arg(1);

// Gen_bc sampling on the seed's filtered global CSR (ablation baseline).
void BM_GenBcSampleFiltered(benchmark::State& state) {
  const IspIndex& isp = IspFixture(static_cast<int>(state.range(0)));
  PersonalizedSpace space(isp, RandomSubset(isp.graph(), 100, 42));
  PathSampler sampler(isp.graph(), &isp.bcc().arc_component);
  Rng rng(4);
  PathSample path;
  for (auto _ : state) {
    uint32_t c = space.SampleComponent(&rng);
    NodeId s = isp.SampleSource(c, &rng);
    NodeId t = isp.SampleTarget(c, s, &rng);
    sampler.SampleUniformPath(s, t, c, SamplingStrategy::kBidirectional,
                              &rng, &path);
    benchmark::DoNotOptimize(path.length);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GenBcSampleFiltered)->Arg(0)->Arg(1)->Arg(2);

// Gen_bc sampling on the component-view CSR (production path).
void BM_GenBcSampleView(benchmark::State& state) {
  const IspIndex& isp = IspFixture(static_cast<int>(state.range(0)));
  PersonalizedSpace space(isp, RandomSubset(isp.graph(), 100, 42));
  PathSampler sampler(isp.graph(), isp.views());
  Rng rng(4);
  PathSample path;
  for (auto _ : state) {
    uint32_t c = space.SampleComponent(&rng);
    NodeId s = isp.SampleSource(c, &rng);
    NodeId t = isp.SampleTarget(c, s, &rng);
    sampler.SampleUniformPath(s, t, c, SamplingStrategy::kBidirectional,
                              &rng, &path);
    benchmark::DoNotOptimize(path.length);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GenBcSampleView)->Arg(0)->Arg(1)->Arg(2);

void BM_BrandesSingleSource(benchmark::State& state) {
  const Graph& g = state.range(0) == 0 ? SocialFixture() : RoadFixture();
  // One full Brandes over a graph scaled down to make a per-source figure.
  Rng rng(5);
  for (auto _ : state) {
    state.PauseTiming();
    NodeId s = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    state.ResumeTiming();
    benchmark::DoNotOptimize(BfsWithCounts(g, s));
  }
}
BENCHMARK(BM_BrandesSingleSource)->Arg(0)->Arg(1);

void BM_ExactSubspace(benchmark::State& state) {
  const IspIndex& isp = state.range(0) == 0 ? SocialIsp() : RoadIsp();
  PersonalizedSpace space(isp, RandomSubset(isp.graph(), 100, 77));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeExactSubspace(space));
  }
}
BENCHMARK(BM_ExactSubspace)->Arg(0)->Arg(1);

// Load path: SNAP text parse vs. mmap'ed `.sgr` cache of the same graph.
void BM_GraphLoadText(benchmark::State& state) {
  const LoadFixture& files = LoadFixtureFiles();
  for (auto _ : state) {
    Graph g;
    SAPHYRA_CHECK(LoadSnapEdgeList(files.text_path, &g).ok());
    benchmark::DoNotOptimize(g.num_arcs());
  }
}
BENCHMARK(BM_GraphLoadText);

void BM_GraphLoadBinary(benchmark::State& state) {
  const LoadFixture& files = LoadFixtureFiles();
  for (auto _ : state) {
    GraphCache cache;
    SAPHYRA_CHECK(LoadSgr(files.graph_sgr_path, &cache).ok());
    benchmark::DoNotOptimize(cache.graph.num_arcs());
  }
}
BENCHMARK(BM_GraphLoadBinary);

// One bc subset query on a warm QuerySession — the steady-state unit of
// the serving layer. Compare against BM_ServeColdQuery (session open +
// same query) to see what the session amortizes.
void BM_ServeWarmQuery(benchmark::State& state) {
  const LoadFixture& files = LoadFixtureFiles();
  std::unique_ptr<QuerySession> session;
  SAPHYRA_CHECK(
      QuerySession::Open(files.full_sgr_path, SessionOptions(), &session)
          .ok());
  const std::vector<QueryRequest> workload = ServeWorkload(8);
  session->Run(workload[0]);  // build the index outside the loop
  size_t i = 0;
  for (auto _ : state) {
    QueryResult res = session->Run(workload[i++ % workload.size()]);
    benchmark::DoNotOptimize(res.estimates.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeWarmQuery);

void BM_ServeColdQuery(benchmark::State& state) {
  const LoadFixture& files = LoadFixtureFiles();
  const std::vector<QueryRequest> workload = ServeWorkload(8);
  size_t i = 0;
  for (auto _ : state) {
    std::unique_ptr<QuerySession> session;
    SAPHYRA_CHECK(
        QuerySession::Open(files.full_sgr_path, SessionOptions(), &session)
            .ok());
    QueryResult res = session->Run(workload[i++ % workload.size()]);
    benchmark::DoNotOptimize(res.estimates.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeColdQuery);

// Full serve-from-cache: load + decomposition, text pipeline vs. cache.
void BM_PreprocessFromCache(benchmark::State& state) {
  const LoadFixture& files = LoadFixtureFiles();
  for (auto _ : state) {
    GraphCache cache;
    SAPHYRA_CHECK(LoadSgr(files.full_sgr_path, &cache).ok());
    Graph g = std::move(cache.graph);
    IspIndex isp(g, std::move(cache));
    benchmark::DoNotOptimize(isp.gamma());
  }
}
BENCHMARK(BM_PreprocessFromCache);

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool saw_speedup_flag = false;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--speedup_json=", 15) == 0) {
      json_path = argv[i] + 15;
      saw_speedup_flag = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  // The speedup suite takes minutes; run it for plain invocations and when
  // explicitly requested, but not when someone is iterating on a single
  // gbench kernel via --benchmark_* flags.
  if (saw_speedup_flag || passthrough.size() == 1) {
    RunSpeedupSuite(json_path);
  }
  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
