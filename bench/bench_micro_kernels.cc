// Google-benchmark micro suite for the kernels the estimators spend their
// time in: BFS, biconnected decomposition, block-cut-tree construction,
// uniform path sampling (both strategies), one Brandes source, and the
// Exact_bc 2-hop pass.

#include <benchmark/benchmark.h>

#include "bc/brandes.h"
#include "bc/exact_subspace.h"
#include "bc/path_sampler.h"
#include "bench_util.h"
#include "bicomp/isp.h"
#include "graph/bfs.h"

using namespace saphyra;
using namespace saphyra::bench;

namespace {

const Graph& SocialFixture() {
  static Graph g = SocialGraph(20000, 0.3, 5, 900);
  return g;
}

const Graph& RoadFixture() {
  static Graph g = RoadGrid(150, 120, 0.85, 901).graph;
  return g;
}

const IspIndex& SocialIsp() {
  static IspIndex isp(SocialFixture());
  return isp;
}

const IspIndex& RoadIsp() {
  static IspIndex isp(RoadFixture());
  return isp;
}

void BM_BfsSocial(benchmark::State& state) {
  const Graph& g = SocialFixture();
  Rng rng(1);
  for (auto _ : state) {
    NodeId s = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    benchmark::DoNotOptimize(Bfs(g, s));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BfsSocial);

void BM_BfsWithCountsSocial(benchmark::State& state) {
  const Graph& g = SocialFixture();
  Rng rng(2);
  for (auto _ : state) {
    NodeId s = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    benchmark::DoNotOptimize(BfsWithCounts(g, s));
  }
}
BENCHMARK(BM_BfsWithCountsSocial);

void BM_BiconnectedDecomposition(benchmark::State& state) {
  const Graph& g = state.range(0) == 0 ? SocialFixture() : RoadFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeBiconnectedComponents(g));
  }
}
BENCHMARK(BM_BiconnectedDecomposition)->Arg(0)->Arg(1);

void BM_IspIndexBuild(benchmark::State& state) {
  const Graph& g = state.range(0) == 0 ? SocialFixture() : RoadFixture();
  for (auto _ : state) {
    IspIndex isp(g);
    benchmark::DoNotOptimize(isp.gamma());
  }
}
BENCHMARK(BM_IspIndexBuild)->Arg(0)->Arg(1);

template <SamplingStrategy strategy>
void BM_PathSample(benchmark::State& state) {
  const Graph& g = state.range(0) == 0 ? SocialFixture() : RoadFixture();
  PathSampler sampler(g, nullptr);
  Rng rng(3);
  PathSample path;
  for (auto _ : state) {
    NodeId s = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    NodeId t = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    if (s == t) continue;
    sampler.SampleUniformPath(s, t, kInvalidComp, strategy, &rng, &path);
    benchmark::DoNotOptimize(path.num_paths);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PathSample<SamplingStrategy::kBidirectional>)->Arg(0)->Arg(1);
BENCHMARK(BM_PathSample<SamplingStrategy::kUnidirectional>)->Arg(0)->Arg(1);

void BM_GenBcSample(benchmark::State& state) {
  const IspIndex& isp = state.range(0) == 0 ? SocialIsp() : RoadIsp();
  PersonalizedSpace space(isp,
                          RandomSubset(isp.graph(), 100, 42));
  PathSampler sampler(isp.graph(), &isp.bcc().arc_component);
  Rng rng(4);
  PathSample path;
  for (auto _ : state) {
    uint32_t c = space.SampleComponent(&rng);
    NodeId s = isp.SampleSource(c, &rng);
    NodeId t = isp.SampleTarget(c, s, &rng);
    sampler.SampleUniformPath(s, t, c, SamplingStrategy::kBidirectional,
                              &rng, &path);
    benchmark::DoNotOptimize(path.length);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GenBcSample)->Arg(0)->Arg(1);

void BM_BrandesSingleSource(benchmark::State& state) {
  const Graph& g = state.range(0) == 0 ? SocialFixture() : RoadFixture();
  // One full Brandes over a graph scaled down to make a per-source figure.
  Rng rng(5);
  for (auto _ : state) {
    state.PauseTiming();
    NodeId s = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    state.ResumeTiming();
    benchmark::DoNotOptimize(BfsWithCounts(g, s));
  }
}
BENCHMARK(BM_BrandesSingleSource)->Arg(0)->Arg(1);

void BM_ExactSubspace(benchmark::State& state) {
  const IspIndex& isp = state.range(0) == 0 ? SocialIsp() : RoadIsp();
  PersonalizedSpace space(isp, RandomSubset(isp.graph(), 100, 77));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeExactSubspace(space));
  }
}
BENCHMARK(BM_ExactSubspace)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
