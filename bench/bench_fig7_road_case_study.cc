// Reproduces the paper's USA-road case study (Fig. 7 + Table III): four
// geographic areas of increasing size play the roles of NYC, BAY, CO and FL
// (Table III), ranked by KADABRA, SaPHyRa_bc-full and SaPHyRa_bc.
// Reported per area: the Table III summary, running time (Fig. 7b), rank
// correlation (Fig. 7c) and average rank deviation (Fig. 7a).
//
// Expected shape: SaPHyRa beats KADABRA on both time and rank quality, and
// SaPHyRa's time shrinks with the area size (the paper: 105s for FL down to
// 59.4s for NYC).

#include <cstdio>

#include "baselines/kadabra.h"
#include "bc/saphyra_bc.h"
#include "bench_util.h"
#include "metrics/rank.h"

using namespace saphyra;
using namespace saphyra::bench;

namespace {

struct Area {
  const char* name;
  float x0, y0, x1, y1;
};

uint64_t EdgesWithin(const Graph& g, const std::vector<NodeId>& nodes) {
  std::vector<uint8_t> in(g.num_nodes(), 0);
  for (NodeId v : nodes) in[v] = 1;
  uint64_t m = 0;
  for (NodeId v : nodes) {
    for (NodeId u : g.neighbors(v)) m += (u > v && in[u]);
  }
  return m;
}

}  // namespace

int main() {
  BenchNetwork net = MakeUsaRoadS();
  RoadNetwork road;
  road.graph = std::move(net.graph);
  road.x = std::move(net.x);
  road.y = std::move(net.y);
  IspIndex isp(road.graph);
  BenchNetwork gt_net{"usa-road-s", std::move(road.graph), {}, {}};
  std::vector<double> truth = GroundTruth(gt_net);
  road.graph = std::move(gt_net.graph);

  // Areas ordered from largest (FL) to smallest (NYC), as in Table III.
  const std::vector<Area> areas = {
      {"FL", 0, 0, 70, 65},
      {"CO", 10, 10, 55, 50},
      {"BAY", 20, 20, 52, 45},
      {"NYC", 30, 25, 55, 42},
  };

  PrintHeader("Table III + Fig. 7: road-network case study");
  std::printf("%-6s %10s %10s | %10s %12s %12s | %10s %10s | %10s %10s\n",
              "Area", "#Nodes", "#Edges", "KAD t(s)", "SaP-full t",
              "SaPHyRa t", "KAD rs", "SaP rs", "KAD rkdev", "SaP rkdev");
  CsvWriter csv("bench_fig7_road_case_study.csv",
                "area,nodes,edges,kadabra_s,saphyra_full_s,saphyra_s,"
                "kadabra_rs,saphyra_full_rs,saphyra_rs,kadabra_rkdev,"
                "saphyra_rkdev");
  const double eps = 0.05, delta = 0.01;

  // Whole-network runs once (they cannot personalize).
  Timer t;
  KadabraOptions kopts;
  kopts.epsilon = eps;
  kopts.delta = delta;
  kopts.seed = 71;
  t.Restart();
  KadabraResult kad = RunKadabra(road.graph, kopts);
  double kad_s = t.ElapsedSeconds();

  SaphyraBcOptions fopts;
  fopts.epsilon = eps;
  fopts.delta = delta;
  fopts.seed = 72;
  t.Restart();
  SaphyraBcResult full = RunSaphyraBcFull(isp, fopts);
  double full_s = t.ElapsedSeconds();

  for (const Area& area : areas) {
    auto targets = NodesInRectangle(road, area.x0, area.y0, area.x1, area.y1);
    if (targets.size() < 2) continue;
    uint64_t area_edges = EdgesWithin(road.graph, targets);
    auto truth_sub = Restrict(truth, targets);

    SaphyraBcOptions sopts;
    sopts.epsilon = eps;
    sopts.delta = delta;
    sopts.seed = 73;
    t.Restart();
    SaphyraBcResult sres = RunSaphyraBc(isp, targets, sopts);
    double sap_s = t.ElapsedSeconds();

    auto kad_sub = Restrict(kad.bc, targets);
    auto full_sub = Restrict(full.bc, targets);
    double kad_rs = SpearmanCorrelation(truth_sub, kad_sub);
    double full_rs = SpearmanCorrelation(truth_sub, full_sub);
    double sap_rs = SpearmanCorrelation(truth_sub, sres.bc);
    double kad_dev = RankDeviation(truth_sub, kad_sub);
    double sap_dev = RankDeviation(truth_sub, sres.bc);

    std::printf(
        "%-6s %10zu %10llu | %10.3f %12.3f %12.3f | %10.3f %10.3f | %9.1f%% "
        "%9.1f%%\n",
        area.name, targets.size(), (unsigned long long)area_edges, kad_s,
        full_s, sap_s, kad_rs, sap_rs, 100.0 * kad_dev, 100.0 * sap_dev);
    csv.Row("%s,%zu,%llu,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f", area.name,
            targets.size(), (unsigned long long)area_edges, kad_s, full_s,
            sap_s, kad_rs, full_rs, sap_rs, kad_dev, sap_dev);
  }
  std::printf(
      "\nExpected shape: SaPHyRa per-area time far below the whole-network "
      "runs and shrinking with\narea size; SaPHyRa rank correlation above "
      "KADABRA's; rank deviation far below KADABRA's\n(the paper: <=12%% vs "
      "up to 39%%).\n");
  return 0;
}
