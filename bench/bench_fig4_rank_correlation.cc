// Reproduces Fig. 4 of the paper: Spearman's rank correlation between the
// estimated and exact betweenness of random 100-node subsets, as a function
// of ε, with 95% confidence intervals across subsets.
//
// Expected shape: SaPHyRa_bc (and -full) near 1 across the sweep; ABRA and
// KADABRA low and wildly varying at loose ε, recovering only at tiny ε
// (the paper reports e.g. 0.84 vs 0.13/0.09 on LiveJournal at ε = 0.05).

#include <cstdio>

#include "baselines/abra.h"
#include "baselines/kadabra.h"
#include "bc/saphyra_bc.h"
#include "bench_util.h"
#include "metrics/rank.h"

using namespace saphyra;
using namespace saphyra::bench;

int main() {
  const std::vector<double> epsilons = {0.2, 0.1, 0.05, 0.02, 0.01};
  const double delta = 0.01;
  const int kSubsets = 10;  // paper: 1000; scaled for the harness
  const size_t kSubsetSize = 100;

  PrintHeader("Fig. 4: Spearman rank correlation vs epsilon (100-node subsets)");
  CsvWriter csv("bench_fig4_rank_correlation.csv",
                "network,epsilon,abra_mean,abra_ci,kadabra_mean,kadabra_ci,"
                "saphyra_full_mean,saphyra_full_ci,saphyra_mean,saphyra_ci");
  for (const BenchNetwork& net : AllNetworks()) {
    IspIndex isp(net.graph);
    std::vector<double> truth = GroundTruth(net);
    std::printf("\n-- %s --\n", net.name.c_str());
    std::printf("%8s %18s %18s %18s %18s\n", "eps", "ABRA", "KADABRA",
                "SaPHyRa-full", "SaPHyRa");
    for (double eps : epsilons) {
      AbraOptions aopts;
      aopts.epsilon = eps;
      aopts.delta = delta;
      aopts.seed = 21;
      AbraResult abra = RunAbra(net.graph, aopts);

      KadabraOptions kopts;
      kopts.epsilon = eps;
      kopts.delta = delta;
      kopts.seed = 22;
      KadabraResult kadabra = RunKadabra(net.graph, kopts);

      SaphyraBcOptions fopts;
      fopts.epsilon = eps;
      fopts.delta = delta;
      fopts.seed = 23;
      SaphyraBcResult full = RunSaphyraBcFull(isp, fopts);

      TrialAggregate ra, rk, rf, rs;
      for (int s = 0; s < kSubsets; ++s) {
        auto targets = RandomSubset(net.graph, kSubsetSize, 3100 + s);
        auto truth_sub = Restrict(truth, targets);
        ra.Add(SpearmanCorrelation(truth_sub, Restrict(abra.bc, targets)));
        rk.Add(SpearmanCorrelation(truth_sub, Restrict(kadabra.bc, targets)));
        rf.Add(SpearmanCorrelation(truth_sub, Restrict(full.bc, targets)));
        SaphyraBcOptions sopts;
        sopts.epsilon = eps;
        sopts.delta = delta;
        sopts.seed = 4200 + s;
        SaphyraBcResult sub = RunSaphyraBc(isp, targets, sopts);
        rs.Add(SpearmanCorrelation(truth_sub, sub.bc));
      }
      std::printf(
          "%8.2f %10.3f+-%.3f %10.3f+-%.3f %10.3f+-%.3f %10.3f+-%.3f\n", eps,
          ra.mean(), ra.ci95_half_width(), rk.mean(), rk.ci95_half_width(),
          rf.mean(), rf.ci95_half_width(), rs.mean(), rs.ci95_half_width());
      csv.Row("%s,%.2f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f",
              net.name.c_str(), eps, ra.mean(), ra.ci95_half_width(),
              rk.mean(), rk.ci95_half_width(), rf.mean(),
              rf.ci95_half_width(), rs.mean(), rs.ci95_half_width());
    }
  }
  std::printf(
      "\nExpected shape: SaPHyRa columns near 1 with tight CIs; baseline "
      "columns low/noisy at\nloose eps and improving as eps shrinks "
      "(Fig. 4 of the paper).\n");
  return 0;
}
