// Reproduces Table II of the paper: networks' summary (#nodes, #edges,
// diameter). Run on the surrogate corpora (see bench_util.h); with the real
// SNAP/DIMACS files on disk the same columns can be produced through
// graph/io.h.

#include <cstdio>

#include "bench_util.h"
#include "bicomp/isp.h"
#include "graph/bfs.h"

using namespace saphyra;
using namespace saphyra::bench;

int main() {
  PrintHeader("Table II: networks' summary (surrogates of the paper's corpora)");
  std::printf("%-16s %10s %12s %8s %10s %10s\n", "Network", "#Nodes",
              "#Edges", "Diam.", "#BiComps", "#Cutpoints");
  CsvWriter csv("bench_table2_networks.csv",
                "network,nodes,edges,diameter_lb,bicomps,cutpoints");
  for (const BenchNetwork& net : AllNetworks()) {
    uint32_t diam = TwoSweepDiameterLowerBound(net.graph);
    IspIndex isp(net.graph);
    uint64_t cutpoints = 0;
    for (NodeId v = 0; v < net.graph.num_nodes(); ++v) {
      cutpoints += isp.bcc().is_cutpoint[v];
    }
    std::printf("%-16s %10u %12llu %8u %10u %10llu\n", net.name.c_str(),
                net.graph.num_nodes(),
                static_cast<unsigned long long>(net.graph.num_edges()), diam,
                isp.num_components(),
                static_cast<unsigned long long>(cutpoints));
    csv.Row("%s,%u,%llu,%u,%u,%llu", net.name.c_str(),
            net.graph.num_nodes(),
            static_cast<unsigned long long>(net.graph.num_edges()), diam,
            isp.num_components(), static_cast<unsigned long long>(cutpoints));
  }
  std::printf(
      "\nPaper's Table II (for shape comparison): Flickr 1.6M/15.5M/24, "
      "LiveJournal 5.2M/49.2M/23,\nUSA-road 23.9M/58.3M/1524, Orkut "
      "3.1M/117.2M/10 — social graphs have tiny diameters,\nthe road network "
      "a huge one; the surrogates preserve that contrast.\n");
  return 0;
}
