// Reproduces Fig. 5 of the paper: rank correlation as the subset size
// varies from 10 to 100 at fixed ε = 0.05. The paper's observation: the
// baselines' correlation spread widens as subsets shrink (fewer nodes ⇒ a
// single false zero perturbs the ranking more), while SaPHyRa stays tight.

#include <cstdio>

#include "baselines/abra.h"
#include "baselines/kadabra.h"
#include "bc/saphyra_bc.h"
#include "bench_util.h"
#include "metrics/rank.h"

using namespace saphyra;
using namespace saphyra::bench;

int main() {
  const double eps = 0.05, delta = 0.01;
  const std::vector<size_t> sizes = {10, 20, 40, 60, 80, 100};
  const int kSubsets = 15;

  PrintHeader("Fig. 5: rank correlation vs subset size (eps = 0.05)");
  CsvWriter csv("bench_fig5_subset_size.csv",
                "network,subset_size,abra_mean,abra_min,abra_max,"
                "kadabra_mean,kadabra_min,kadabra_max,"
                "saphyra_mean,saphyra_min,saphyra_max");
  for (const BenchNetwork& net : AllNetworks()) {
    IspIndex isp(net.graph);
    std::vector<double> truth = GroundTruth(net);

    // Baselines estimate the whole network once; their subset rankings are
    // read off the same output (exactly how the paper evaluates them).
    AbraOptions aopts;
    aopts.epsilon = eps;
    aopts.delta = delta;
    aopts.seed = 31;
    AbraResult abra = RunAbra(net.graph, aopts);
    KadabraOptions kopts;
    kopts.epsilon = eps;
    kopts.delta = delta;
    kopts.seed = 32;
    KadabraResult kadabra = RunKadabra(net.graph, kopts);

    std::printf("\n-- %s --\n", net.name.c_str());
    std::printf("%6s %24s %24s %24s\n", "|A|", "ABRA [min,max]",
                "KADABRA [min,max]", "SaPHyRa [min,max]");
    for (size_t size : sizes) {
      TrialAggregate ra, rk, rs;
      for (int s = 0; s < kSubsets; ++s) {
        auto targets = RandomSubset(net.graph, size, 7700 + 131 * s + size);
        auto truth_sub = Restrict(truth, targets);
        ra.Add(SpearmanCorrelation(truth_sub, Restrict(abra.bc, targets)));
        rk.Add(SpearmanCorrelation(truth_sub, Restrict(kadabra.bc, targets)));
        SaphyraBcOptions sopts;
        sopts.epsilon = eps;
        sopts.delta = delta;
        sopts.seed = 8800 + s;
        SaphyraBcResult sub = RunSaphyraBc(isp, targets, sopts);
        rs.Add(SpearmanCorrelation(truth_sub, sub.bc));
      }
      std::printf("%6zu   %6.2f [%5.2f,%5.2f]   %6.2f [%5.2f,%5.2f]   "
                  "%6.2f [%5.2f,%5.2f]\n",
                  size, ra.mean(), ra.min(), ra.max(), rk.mean(), rk.min(),
                  rk.max(), rs.mean(), rs.min(), rs.max());
      csv.Row("%s,%zu,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f",
              net.name.c_str(), size, ra.mean(), ra.min(), ra.max(),
              rk.mean(), rk.min(), rk.max(), rs.mean(), rs.min(), rs.max());
    }
  }
  std::printf(
      "\nExpected shape: baseline [min,max] ranges widen sharply at small "
      "subset sizes; SaPHyRa's\nstay tight and high (Fig. 5 of the paper).\n");
  return 0;
}
