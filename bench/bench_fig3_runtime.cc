// Reproduces Fig. 3 of the paper: running time (log scale in the paper)
// versus the error guarantee ε ∈ {0.2, 0.1, 0.05, 0.02, 0.01} for ABRA,
// KADABRA, SaPHyRa_bc-full and SaPHyRa_bc (subsets of 100 random nodes),
// on all four networks. δ = 0.01, matching §V-A.
//
// Expected shape: SaPHyRa_bc fastest (the paper reports 7-235x vs KADABRA,
// 90-425x vs ABRA, and 4-11x vs SaPHyRa_bc-full).

#include <cstdio>

#include "baselines/abra.h"
#include "baselines/kadabra.h"
#include "bc/saphyra_bc.h"
#include "bench_util.h"
#include "metrics/rank.h"

using namespace saphyra;
using namespace saphyra::bench;

int main() {
  const std::vector<double> epsilons = {0.2, 0.1, 0.05, 0.02, 0.01};
  const double delta = 0.01;
  const int kSubsets = 5;  // paper: 1000 subsets; scaled for the harness
  const size_t kSubsetSize = 100;

  PrintHeader("Fig. 3: running time (s) vs epsilon, delta = 0.01");
  CsvWriter csv("bench_fig3_runtime.csv",
                "network,epsilon,abra_s,kadabra_s,saphyra_full_s,"
                "saphyra_mean_s,saphyra_ci95_s");
  for (const BenchNetwork& net : AllNetworks()) {
    IspIndex isp(net.graph);
    std::printf("\n-- %s (%s) --\n", net.name.c_str(),
                net.graph.DebugString().c_str());
    std::printf("%8s %12s %12s %14s %22s\n", "eps", "ABRA", "KADABRA",
                "SaPHyRa-full", "SaPHyRa (mean +- ci)");
    for (double eps : epsilons) {
      Timer t;
      AbraOptions aopts;
      aopts.epsilon = eps;
      aopts.delta = delta;
      aopts.seed = 11;
      t.Restart();
      RunAbra(net.graph, aopts);
      double abra_s = t.ElapsedSeconds();

      KadabraOptions kopts;
      kopts.epsilon = eps;
      kopts.delta = delta;
      kopts.seed = 12;
      t.Restart();
      RunKadabra(net.graph, kopts);
      double kadabra_s = t.ElapsedSeconds();

      SaphyraBcOptions sopts;
      sopts.epsilon = eps;
      sopts.delta = delta;
      sopts.seed = 13;
      t.Restart();
      RunSaphyraBcFull(isp, sopts);
      double full_s = t.ElapsedSeconds();

      TrialAggregate sub;
      for (int s = 0; s < kSubsets; ++s) {
        auto targets = RandomSubset(net.graph, kSubsetSize, 900 + s);
        sopts.seed = 500 + s;
        t.Restart();
        RunSaphyraBc(isp, targets, sopts);
        sub.Add(t.ElapsedSeconds());
      }
      std::printf("%8.2f %12.3f %12.3f %14.3f %14.4f +- %.4f\n", eps, abra_s,
                  kadabra_s, full_s, sub.mean(), sub.ci95_half_width());
      csv.Row("%s,%.2f,%.4f,%.4f,%.4f,%.5f,%.5f", net.name.c_str(), eps,
              abra_s, kadabra_s, full_s, sub.mean(), sub.ci95_half_width());
    }
  }
  std::printf(
      "\nExpected shape: every column grows roughly as 1/eps^2; SaPHyRa_bc "
      "beats SaPHyRa_bc-full,\nwhich beats KADABRA, which beats ABRA "
      "(Fig. 3 of the paper).\n");
  return 0;
}
