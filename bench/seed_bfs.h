#ifndef SAPHYRA_BENCH_SEED_BFS_H_
#define SAPHYRA_BENCH_SEED_BFS_H_

// Frozen copy of the seed's σ-counting BFS (the pre-direction-optimizing
// BfsWithCounts): allocate-and-memset result arrays per call, pure
// top-down expansion off an implicit queue. The `bfs_hybrid_*` speedup
// kernels in bench_micro_kernels.cc measure the production BfsKernel
// (epoch-reset scratch + top-down/bottom-up switching) against this
// baseline, the same before/after discipline as seed_path_sampler.h. Do
// not "fix" or modernize this file — its value is being frozen.

#include <vector>

#include "graph/bfs.h"
#include "graph/graph.h"

namespace saphyra {
namespace bench {

inline SpDag SeedBfsWithCounts(const Graph& g, NodeId source) {
  SpDag r;
  r.dist.assign(g.num_nodes(), kUnreachable);
  r.sigma.assign(g.num_nodes(), 0.0);
  r.order.reserve(g.num_nodes());
  r.dist[source] = 0;
  r.sigma[source] = 1.0;
  r.order.push_back(source);
  for (size_t head = 0; head < r.order.size(); ++head) {
    NodeId u = r.order[head];
    uint32_t du = r.dist[u];
    for (NodeId v : g.neighbors(u)) {
      if (r.dist[v] == kUnreachable) {
        r.dist[v] = du + 1;
        r.order.push_back(v);
      }
      if (r.dist[v] == du + 1) {
        r.sigma[v] += r.sigma[u];
      }
    }
  }
  return r;
}

}  // namespace bench
}  // namespace saphyra

#endif  // SAPHYRA_BENCH_SEED_BFS_H_
