// Ablation study for the design choices DESIGN.md calls out:
//  (1) 2-hop exact subspace ON vs OFF — rank quality and false zeros
//      (Lemma 19 / Claim 8's variance reduction),
//  (2) balanced bidirectional vs unidirectional BFS in Gen_bc — sampling
//      cost (Lemma 21),
//  (3) bi-component (ISP) sampling vs plain whole-graph path sampling —
//      sample budget via the VC bound (Table I) and wasted samples,
//  (4) adaptive empirical-Bernstein stopping vs the static VC-bound budget.

#include <cstdio>

#include "baselines/kadabra.h"
#include "bc/saphyra_bc.h"
#include "bc/vc_bc.h"
#include "bench_util.h"
#include "metrics/rank.h"
#include "stats/vc.h"

using namespace saphyra;
using namespace saphyra::bench;

int main() {
  const double eps = 0.05, delta = 0.01;
  const int kSubsets = 8;
  const size_t kSubsetSize = 100;
  CsvWriter csv("bench_ablation.csv",
                "network,variant,rank_corr,false_zeros,samples,seconds");

  for (const BenchNetwork& net : AllNetworks()) {
    IspIndex isp(net.graph);
    std::vector<double> truth = GroundTruth(net);
    PrintHeader("Ablation on " + net.name);
    std::printf("%-34s %10s %12s %12s %10s\n", "variant", "rank corr",
                "false zeros", "samples", "time (s)");

    struct Variant {
      const char* name;
      bool exact;
      SamplingStrategy strategy;
    };
    const Variant variants[] = {
        {"full SaPHyRa_bc (exact + bidir)", true,
         SamplingStrategy::kBidirectional},
        {"no exact subspace", false, SamplingStrategy::kBidirectional},
        {"unidirectional sampling", true, SamplingStrategy::kUnidirectional},
    };
    for (const Variant& var : variants) {
      TrialAggregate corr, samples, secs;
      uint64_t false_zeros = 0, total_nodes = 0;
      for (int s = 0; s < kSubsets; ++s) {
        auto targets = RandomSubset(net.graph, kSubsetSize, 1300 + s);
        auto truth_sub = Restrict(truth, targets);
        SaphyraBcOptions opts;
        opts.epsilon = eps;
        opts.delta = delta;
        opts.seed = 1400 + s;
        opts.use_exact_subspace = var.exact;
        opts.strategy = var.strategy;
        Timer t;
        SaphyraBcResult res = RunSaphyraBc(isp, targets, opts);
        secs.Add(t.ElapsedSeconds());
        corr.Add(SpearmanCorrelation(truth_sub, res.bc));
        samples.Add(static_cast<double>(res.samples_used));
        ZeroStats z = ClassifyZeros(truth_sub, res.bc);
        false_zeros += z.false_zeros;
        total_nodes += targets.size();
      }
      std::printf("%-34s %10.3f %11.2f%% %12.0f %10.4f\n", var.name,
                  corr.mean(), 100.0 * false_zeros / total_nodes,
                  samples.mean(), secs.mean());
      csv.Row("%s,%s,%.4f,%.4f,%.0f,%.5f", net.name.c_str(), var.name,
              corr.mean(), 100.0 * false_zeros / total_nodes, samples.mean(),
              secs.mean());
    }

    // (3) The VC-bound side of bi-component sampling: compare the sample
    // caps implied by the whole-graph diameter (baselines) and the
    // personalized bound (SaPHyRa) at this epsilon.
    PersonalizedSpace space(isp, RandomSubset(net.graph, kSubsetSize, 4444));
    double vc_riondato = RiondatoVcBound(net.graph);
    double vc_pers = ComputePersonalizedVcBounds(space).vc_bound;
    uint64_t cap_riondato = VcSampleBound(eps, delta, vc_riondato);
    uint64_t cap_pers = VcSampleBound(eps, delta, vc_pers);
    std::printf(
        "%-34s VC %.0f -> cap %llu samples\n%-34s VC %.0f -> cap %llu "
        "samples\n",
        "whole-graph diameter bound [45]", vc_riondato,
        static_cast<unsigned long long>(cap_riondato),
        "personalized bi-component bound", vc_pers,
        static_cast<unsigned long long>(cap_pers));

    // (4) Adaptive stopping: how much of the worst-case budget was spent.
    SaphyraBcOptions opts;
    opts.epsilon = eps;
    opts.delta = delta;
    opts.seed = 4545;
    SaphyraBcResult res =
        RunSaphyraBc(isp, RandomSubset(net.graph, kSubsetSize, 4646), opts);
    std::printf("%-34s used %llu of max %llu (%.1f%%), stopped early: %s\n",
                "adaptive Bernstein stopping",
                static_cast<unsigned long long>(res.samples_used),
                static_cast<unsigned long long>(res.max_samples),
                100.0 * res.samples_used /
                    std::max<uint64_t>(1, res.max_samples),
                res.stopped_early ? "yes" : "no");
  }
  return 0;
}
