// Reproduces Fig. 6 of the paper: histogram of the signed relative error
// (est/truth - 1)*100% at ε = 0.05, |A| = 100, with the true-zero /
// false-zero split that explains the baselines' poor rank quality.
//
// Expected shape: ABRA/KADABRA concentrate >95% of nodes at 0% (true
// zeros) or -100% (false zeros); SaPHyRa has no false zeros at all
// (Lemma 19) and a tight error distribution around 0.

#include <cmath>
#include <cstdio>
#include <vector>

#include "baselines/abra.h"
#include "baselines/kadabra.h"
#include "bc/saphyra_bc.h"
#include "bench_util.h"
#include "metrics/rank.h"

using namespace saphyra;
using namespace saphyra::bench;

namespace {

struct Histogram {
  // Buckets: -100 (exact), (-100,-50], (-50,-10], (-10,10], (10,50],
  // (50,150], >150 or inf.
  std::vector<double> edges = {-99.999, -50, -10, 10, 50, 150};
  std::vector<uint64_t> counts = std::vector<uint64_t>(7, 0);
  uint64_t total = 0;

  void Add(double err) {
    ++total;
    if (err <= -99.999) {
      ++counts[0];
      return;
    }
    for (size_t i = 0; i < edges.size() - 1; ++i) {
      if (err <= edges[i + 1]) {
        ++counts[i + 1];
        return;
      }
    }
    ++counts[6];
  }

  void Print(const char* name) const {
    std::printf("  %-14s", name);
    for (uint64_t c : counts) {
      std::printf(" %6.1f%%", 100.0 * c / std::max<uint64_t>(1, total));
    }
    std::printf("\n");
  }
};

}  // namespace

int main() {
  const double eps = 0.05, delta = 0.01;
  const int kSubsets = 10;
  const size_t kSubsetSize = 100;

  PrintHeader("Fig. 6: signed relative error histogram (eps=0.05, |A|=100)");
  std::printf("Buckets:        %7s %7s %7s %7s %7s %7s %7s\n", "-100%",
              "<=-50", "<=-10", "~0", "<=50", "<=150", ">150");
  CsvWriter csv("bench_fig6_relative_error.csv",
                "network,algorithm,true_zero_pct,false_zero_pct,"
                "b_m100,b_m50,b_m10,b_0,b_50,b_150,b_inf");
  for (const BenchNetwork& net : AllNetworks()) {
    IspIndex isp(net.graph);
    std::vector<double> truth = GroundTruth(net);

    AbraOptions aopts;
    aopts.epsilon = eps;
    aopts.delta = delta;
    aopts.seed = 41;
    AbraResult abra = RunAbra(net.graph, aopts);
    KadabraOptions kopts;
    kopts.epsilon = eps;
    kopts.delta = delta;
    kopts.seed = 42;
    KadabraResult kadabra = RunKadabra(net.graph, kopts);

    Histogram ha, hk, hs;
    ZeroStats za_total, zk_total, zs_total;
    uint64_t samples = 0;
    for (int s = 0; s < kSubsets; ++s) {
      auto targets = RandomSubset(net.graph, kSubsetSize, 5100 + s);
      auto truth_sub = Restrict(truth, targets);
      SaphyraBcOptions sopts;
      sopts.epsilon = eps;
      sopts.delta = delta;
      sopts.seed = 6200 + s;
      SaphyraBcResult sres = RunSaphyraBc(isp, targets, sopts);
      auto abra_sub = Restrict(abra.bc, targets);
      auto kad_sub = Restrict(kadabra.bc, targets);
      auto AddAll = [&](Histogram* h, const std::vector<double>& est) {
        auto errs = SignedRelativeErrorPercent(truth_sub, est);
        for (double e : errs) {
          h->Add(std::isinf(e) ? 1e9 : e);
        }
      };
      AddAll(&ha, abra_sub);
      AddAll(&hk, kad_sub);
      AddAll(&hs, sres.bc);
      auto Merge = [](ZeroStats* acc, ZeroStats z) {
        acc->true_zeros += z.true_zeros;
        acc->false_zeros += z.false_zeros;
        acc->nonzeros += z.nonzeros;
      };
      Merge(&za_total, ClassifyZeros(truth_sub, abra_sub));
      Merge(&zk_total, ClassifyZeros(truth_sub, kad_sub));
      Merge(&zs_total, ClassifyZeros(truth_sub, sres.bc));
      samples += targets.size();
    }
    std::printf("\n-- %s (%llu target nodes total) --\n", net.name.c_str(),
                static_cast<unsigned long long>(samples));
    ha.Print("ABRA");
    hk.Print("KADABRA");
    hs.Print("SaPHyRa");
    auto PrintZeros = [&](const char* name, const ZeroStats& z) {
      std::printf("  %-14s true zeros %5.1f%%   false zeros %5.1f%%\n", name,
                  100.0 * z.true_zeros / samples,
                  100.0 * z.false_zeros / samples);
      return std::pair<double, double>{100.0 * z.true_zeros / samples,
                                       100.0 * z.false_zeros / samples};
    };
    auto AbraZ = PrintZeros("ABRA", za_total);
    auto KadZ = PrintZeros("KADABRA", zk_total);
    auto SapZ = PrintZeros("SaPHyRa", zs_total);
    auto WriteCsv = [&](const char* alg, std::pair<double, double> z,
                        const Histogram& h) {
      csv.Row("%s,%s,%.2f,%.2f,%llu,%llu,%llu,%llu,%llu,%llu,%llu",
              net.name.c_str(), alg, z.first, z.second,
              (unsigned long long)h.counts[0], (unsigned long long)h.counts[1],
              (unsigned long long)h.counts[2], (unsigned long long)h.counts[3],
              (unsigned long long)h.counts[4], (unsigned long long)h.counts[5],
              (unsigned long long)h.counts[6]);
    };
    WriteCsv("abra", AbraZ, ha);
    WriteCsv("kadabra", KadZ, hk);
    WriteCsv("saphyra", SapZ, hs);
  }
  std::printf(
      "\nExpected shape: baselines put most mass at -100%% (false zeros) "
      "and 0%% (true zeros);\nSaPHyRa has zero false zeros (Lemma 19) and a "
      "tight bump around 0%% (Fig. 6 of the paper).\n");
  return 0;
}
