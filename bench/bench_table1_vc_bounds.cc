// Reproduces Table I of the paper: VC-dimension bounds of Riondato et
// al. [45] vs SaPHyRa_bc on (a) the full network, (b) a random subset A,
// (c) l-hop neighborhoods. Smaller is better: the bound multiplies the
// sample budget (Lemma 4).

#include <algorithm>
#include <cstdio>

#include "bc/vc_bc.h"
#include "bench_util.h"
#include "bicomp/isp.h"
#include "graph/bfs.h"

using namespace saphyra;
using namespace saphyra::bench;

namespace {

std::vector<NodeId> LHopBall(const Graph& g, NodeId center, uint32_t l) {
  BfsResult r = Bfs(g, center);
  std::vector<NodeId> ball;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (r.dist[v] != kUnreachable && r.dist[v] <= l) ball.push_back(v);
  }
  return ball;
}

}  // namespace

int main() {
  PrintHeader("Table I: VC-dimension bounds (lower is better)");
  std::printf("%-16s %14s | %14s %14s %14s\n", "Network",
              "Riondato[45]", "SaPHyRa full", "SaPHyRa A=100",
              "SaPHyRa 2-hop");
  CsvWriter csv("bench_table1_vc_bounds.csv",
                "network,riondato,saphyra_full,saphyra_subset,saphyra_2hop");
  for (const BenchNetwork& net : AllNetworks()) {
    IspIndex isp(net.graph);
    double riondato = RiondatoVcBound(net.graph);
    double full = FullNetworkVcBound(isp);

    // Random subsets of 100 nodes: report the mean personalized bound.
    double subset_bound = 0.0;
    const int kTrials = 10;
    for (int t = 0; t < kTrials; ++t) {
      PersonalizedSpace space(isp, RandomSubset(net.graph, 100, 7000 + t));
      subset_bound += ComputePersonalizedVcBounds(space).vc_bound;
    }
    subset_bound /= kTrials;

    // l-hop neighborhoods (l = 2): Table I predicts <= log2(2l+1)+1.
    double hop_bound = 0.0;
    int hops = 0;
    Rng rng(55);
    for (int t = 0; t < kTrials; ++t) {
      NodeId center =
          static_cast<NodeId>(rng.UniformInt(net.graph.num_nodes()));
      auto ball = LHopBall(net.graph, center, 2);
      if (ball.size() < 2) continue;
      if (ball.size() > 4000) ball.resize(4000);  // keep the bench snappy
      PersonalizedSpace space(isp, ball);
      hop_bound += ComputePersonalizedVcBounds(space).vc_bound;
      ++hops;
    }
    if (hops > 0) hop_bound /= hops;

    std::printf("%-16s %14.1f | %14.1f %14.2f %14.2f\n", net.name.c_str(),
                riondato, full, subset_bound, hop_bound);
    csv.Row("%s,%.2f,%.2f,%.2f,%.2f", net.name.c_str(), riondato, full,
            subset_bound, hop_bound);
  }
  std::printf(
      "\nExpected shape (paper, Table I): SaPHyRa's bi-component bound is no "
      "larger than the\nRiondato diameter bound — dramatically smaller on "
      "road networks (many small bi-components) —\nand the personalized "
      "bounds shrink further for localized subsets (l-hop: <= log2(2l+1)+1 = "
      "%.0f for l=2).\n",
      std::floor(std::log2(5.0)) + 1.0);
  return 0;
}
