#ifndef SAPHYRA_BENCH_SEED_PATH_SAMPLER_H_
#define SAPHYRA_BENCH_SEED_PATH_SAMPLER_H_

// Frozen copy of the seed revision's PathSampler (commit 9b2029f), kept as
// the perf baseline the speedup suite measures the component-view fast path
// against. Do not optimize this file: its purpose is to preserve what the
// seed implementation did (global CSR, per-arc ArcAllowed filter, separate
// epoch/dist/sigma arrays, per-sample walk allocation). Renamed
// SeedPathSampler; PathSample and SamplingStrategy are shared with the
// production header.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "bc/path_sampler.h"
#include "bicomp/biconnected.h"
#include "graph/graph.h"
#include "util/logging.h"
#include "util/rng.h"

namespace saphyra {
namespace bench {

/// \brief Samples uniform random shortest paths between node pairs, with
/// optional restriction to one biconnected component.
///
/// A sampled path is uniform over the σ_st shortest s-t paths: BFS path
/// counts σ are computed from both endpoints, a "middle" node is drawn with
/// probability σ_s(v)·σ_t(v)/σ_st, and the two halves are completed by
/// backward walks choosing each predecessor proportionally to its σ.
///
/// All scratch memory is owned by the sampler and reset in O(touched) via
/// epoch counters, so one instance can serve millions of samples with no
/// allocation in the steady state. Instances are not thread-safe; create
/// one per thread.
class SeedPathSampler {
 public:
  /// \brief `arc_component` may be null (no restriction support needed) or
  /// point at BiconnectedComponents::arc_component with one label per arc.
  SeedPathSampler(const Graph& g, const std::vector<uint32_t>* arc_component);

  /// \brief Sample a uniform shortest path from s to t (s != t).
  ///
  /// If `comp != kInvalidComp`, only arcs labeled `comp` are traversed;
  /// s and t must then be members of that component. Returns false (and
  /// found=false) if t is unreachable.
  bool SampleUniformPath(NodeId s, NodeId t, uint32_t comp,
                         SamplingStrategy strategy, Rng* rng,
                         PathSample* out);

  /// \brief Arcs scanned by the most recent call (cost diagnostics).
  uint64_t last_arcs_scanned() const { return arcs_scanned_; }

 private:
  struct Side {
    std::vector<uint32_t> dist;
    std::vector<double> sigma;
    std::vector<uint64_t> epoch;
    std::vector<NodeId> frontier;
    std::vector<NodeId> next;
    uint32_t depth = 0;
  };

  bool ArcAllowed(EdgeIndex arc, uint32_t comp) const {
    return comp == kInvalidComp || (*arc_component_)[arc] == comp;
  }
  void InitSide(Side* side, NodeId origin);
  uint32_t Dist(const Side& side, NodeId v) const {
    return side.epoch[v] == epoch_ ? side.dist[v] : kNoDist;
  }
  double Sigma(const Side& side, NodeId v) const {
    return side.epoch[v] == epoch_ ? side.sigma[v] : 0.0;
  }
  /// Expand one BFS level of `side`. Returns false if the frontier died.
  bool ExpandLevel(Side* side, uint32_t comp);
  /// Frontier arc mass, used to pick the cheaper side to expand.
  uint64_t FrontierCost(const Side& side) const;
  /// Append the walk from `v` down to the side's origin (exclusive of v),
  /// choosing predecessors proportionally to σ.
  void WalkDown(const Side& side, NodeId v, uint32_t comp, Rng* rng,
                std::vector<NodeId>* out);

  bool SampleBidirectional(NodeId s, NodeId t, uint32_t comp, Rng* rng,
                           PathSample* out);
  bool SampleUnidirectional(NodeId s, NodeId t, uint32_t comp, Rng* rng,
                            PathSample* out);

  const Graph& g_;
  const std::vector<uint32_t>* arc_component_;
  Side fwd_, bwd_;
  uint64_t epoch_ = 0;
  uint64_t arcs_scanned_ = 0;
  std::vector<NodeId> meet_;  // middle candidates of the current sample

  static constexpr uint32_t kNoDist = static_cast<uint32_t>(-1);
};



inline SeedPathSampler::SeedPathSampler(
    const Graph& g, const std::vector<uint32_t>* arc_component)
    : g_(g), arc_component_(arc_component) {
  for (Side* side : {&fwd_, &bwd_}) {
    side->dist.assign(g.num_nodes(), kNoDist);
    side->sigma.assign(g.num_nodes(), 0.0);
    side->epoch.assign(g.num_nodes(), 0);
  }
}

inline void SeedPathSampler::InitSide(Side* side, NodeId origin) {
  side->frontier.clear();
  side->next.clear();
  side->depth = 0;
  side->epoch[origin] = epoch_;
  side->dist[origin] = 0;
  side->sigma[origin] = 1.0;
  side->frontier.push_back(origin);
}

inline bool SeedPathSampler::ExpandLevel(Side* side, uint32_t comp) {
  side->next.clear();
  const uint32_t new_depth = side->depth + 1;
  for (NodeId u : side->frontier) {
    const EdgeIndex base = g_.offset(u);
    const auto nbr = g_.neighbors(u);
    const double su = side->sigma[u];
    for (size_t i = 0; i < nbr.size(); ++i) {
      ++arcs_scanned_;
      if (!ArcAllowed(base + i, comp)) continue;
      NodeId v = nbr[i];
      if (side->epoch[v] != epoch_) {
        side->epoch[v] = epoch_;
        side->dist[v] = new_depth;
        side->sigma[v] = 0.0;
        side->next.push_back(v);
      }
      if (side->dist[v] == new_depth) side->sigma[v] += su;
    }
  }
  side->frontier.swap(side->next);
  side->depth = new_depth;
  return !side->frontier.empty();
}

inline uint64_t SeedPathSampler::FrontierCost(const Side& side) const {
  uint64_t cost = 0;
  for (NodeId u : side.frontier) cost += g_.degree(u);
  return cost;
}

inline void SeedPathSampler::WalkDown(const Side& side, NodeId v, uint32_t comp,
                           Rng* rng, std::vector<NodeId>* out) {
  NodeId cur = v;
  while (side.dist[cur] > 0) {
    const uint32_t want = side.dist[cur] - 1;
    const EdgeIndex base = g_.offset(cur);
    const auto nbr = g_.neighbors(cur);
    // Weighted reservoir over predecessors: pick u with prob σ(u)/Σσ.
    double total = 0.0;
    NodeId pick = kInvalidNode;
    for (size_t i = 0; i < nbr.size(); ++i) {
      if (!ArcAllowed(base + i, comp)) continue;
      NodeId u = nbr[i];
      if (side.epoch[u] != epoch_ || side.dist[u] != want) continue;
      total += side.sigma[u];
      if (rng->UniformDouble() * total < side.sigma[u]) pick = u;
    }
    SAPHYRA_CHECK(pick != kInvalidNode);
    out->push_back(pick);
    cur = pick;
  }
}

inline bool SeedPathSampler::SampleUniformPath(NodeId s, NodeId t, uint32_t comp,
                                    SamplingStrategy strategy, Rng* rng,
                                    PathSample* out) {
  SAPHYRA_CHECK(s != t);
  SAPHYRA_CHECK(s < g_.num_nodes() && t < g_.num_nodes());
  ++epoch_;
  arcs_scanned_ = 0;
  out->nodes.clear();
  out->num_paths = 0.0;
  out->length = 0;
  out->found = false;
  if (strategy == SamplingStrategy::kBidirectional) {
    return SampleBidirectional(s, t, comp, rng, out);
  }
  return SampleUnidirectional(s, t, comp, rng, out);
}

inline bool SeedPathSampler::SampleBidirectional(NodeId s, NodeId t, uint32_t comp,
                                      Rng* rng, PathSample* out) {
  InitSide(&fwd_, s);
  InitSide(&bwd_, t);
  // Grow the cheaper side one full level at a time. After each expansion,
  // any node of the new frontier already seen by the other side is a
  // "middle": completed BFS levels make both σ values final, and all
  // middles found in the same round sit on minimum-length paths (see the
  // meeting argument in DESIGN.md / KADABRA [12]).
  for (;;) {
    Side* grow = FrontierCost(fwd_) <= FrontierCost(bwd_) ? &fwd_ : &bwd_;
    const Side& other = (grow == &fwd_) ? bwd_ : fwd_;
    if (!ExpandLevel(grow, comp)) return false;  // t unreachable from s
    meet_.clear();
    for (NodeId v : grow->frontier) {
      if (other.epoch[v] == epoch_) meet_.push_back(v);
    }
    if (!meet_.empty()) break;
  }
  const uint32_t d = fwd_.depth + bwd_.depth;
  // σ_st and middle selection, weighted by σ_s(v)·σ_t(v).
  double sigma_st = 0.0;
  NodeId middle = kInvalidNode;
  for (NodeId v : meet_) {
    double w = fwd_.sigma[v] * bwd_.sigma[v];
    sigma_st += w;
    if (rng->UniformDouble() * sigma_st < w) middle = v;
  }
  SAPHYRA_CHECK(middle != kInvalidNode);

  // Assemble s .. middle .. t.
  std::vector<NodeId> to_s;
  WalkDown(fwd_, middle, comp, rng, &to_s);
  out->nodes.assign(to_s.rbegin(), to_s.rend());
  out->nodes.push_back(middle);
  WalkDown(bwd_, middle, comp, rng, &out->nodes);
  SAPHYRA_CHECK(out->nodes.front() == s && out->nodes.back() == t);
  out->num_paths = sigma_st;
  out->length = d;
  out->found = true;
  return true;
}

inline bool SeedPathSampler::SampleUnidirectional(NodeId s, NodeId t, uint32_t comp,
                                       Rng* rng, PathSample* out) {
  InitSide(&fwd_, s);
  // Expand until the level containing t completes (so σ(t) is final).
  bool reached = false;
  for (;;) {
    if (!ExpandLevel(&fwd_, comp)) break;
    if (fwd_.epoch[t] == epoch_ && fwd_.dist[t] == fwd_.depth) {
      reached = true;
      break;
    }
    if (fwd_.epoch[t] == epoch_ && fwd_.dist[t] < fwd_.depth) {
      reached = true;  // already finalized on an earlier level
      break;
    }
  }
  if (!reached) return false;
  std::vector<NodeId> to_s;
  WalkDown(fwd_, t, comp, rng, &to_s);
  out->nodes.assign(to_s.rbegin(), to_s.rend());
  out->nodes.push_back(t);
  SAPHYRA_CHECK(out->nodes.front() == s && out->nodes.back() == t);
  out->num_paths = fwd_.sigma[t];
  out->length = fwd_.dist[t];
  out->found = true;
  return true;
}


}  // namespace bench
}  // namespace saphyra

#endif  // SAPHYRA_BENCH_SEED_PATH_SAMPLER_H_
