#ifndef SAPHYRA_BENCH_BENCH_UTIL_H_
#define SAPHYRA_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bc/brandes.h"
#include "util/logging.h"
#include "graph/bfs.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "util/rng.h"
#include "util/timer.h"

namespace saphyra {
namespace bench {

/// The paper's corpora (Flickr, LiveJournal, Orkut from SNAP; USA-road from
/// DIMACS ch. 9) are not available offline, so each benchmark runs on a
/// laptop-scale surrogate with the same structural signature (see
/// DESIGN.md, "Substitutions"):
///  * flickr-s     — social graph with a large leaf fraction (many
///                   zero-centrality nodes, like Flickr's 59% true zeros),
///  * livejournal-s— social graph, moderate leaf fraction,
///  * orkut-s      — dense social core, almost no zero-centrality nodes,
///  * usa-road-s   — long-diameter road grid rich in cutpoints.
/// Sizes are chosen so exact Brandes ground truth finishes in seconds.

/// \brief Social-network surrogate: Barabási–Albert core in which a
/// fraction of nodes attaches with a single edge (degree-1 leaves have
/// betweenness exactly 0, reproducing the true-zero mass of Fig. 6).
inline Graph SocialGraph(NodeId n, double leaf_fraction, NodeId m,
                         uint64_t seed) {
  NodeId core = static_cast<NodeId>(n * (1.0 - leaf_fraction));
  if (core < m + 2) core = m + 2;
  Graph base = BarabasiAlbert(core, m, seed);
  Rng rng(seed ^ 0x1EAFULL);
  GraphBuilder b;
  for (auto [u, v] : base.UndirectedEdges()) b.AddEdge(u, v);
  // Attach leaves preferentially (hubs attract followers).
  for (NodeId v = core; v < n; ++v) {
    NodeId host = static_cast<NodeId>(rng.UniformInt(core));
    // Bias toward low ids (older, higher-degree BA nodes).
    host = static_cast<NodeId>(rng.UniformInt(host + 1));
    b.AddEdge(v, host);
  }
  Graph g;
  Status st = b.Build(n, &g);
  SAPHYRA_CHECK(st.ok());
  return g;
}

struct BenchNetwork {
  std::string name;
  Graph graph;
  /// Coordinates (road networks only; empty otherwise).
  std::vector<float> x, y;
};

inline BenchNetwork MakeFlickrS() {
  return {"flickr-s", SocialGraph(10000, 0.55, 5, 101), {}, {}};
}
inline BenchNetwork MakeLiveJournalS() {
  return {"livejournal-s", SocialGraph(12000, 0.30, 4, 102), {}, {}};
}
inline BenchNetwork MakeOrkutS() {
  return {"orkut-s", SocialGraph(8000, 0.0, 12, 103), {}, {}};
}
inline BenchNetwork MakeUsaRoadS() {
  // keep_prob 0.70 fragments the grid into >1000 biconnected components
  // with a giant core of ~73% of the pair mass — matching real road
  // networks' dead-end- and bridge-rich block-cut structure while keeping a
  // Θ(width+height) diameter.
  RoadNetwork road = RoadGrid(110, 100, 0.70, 104);
  return {"usa-road-s", std::move(road.graph), std::move(road.x),
          std::move(road.y)};
}

inline std::vector<BenchNetwork> AllNetworks() {
  std::vector<BenchNetwork> nets;
  nets.push_back(MakeFlickrS());
  nets.push_back(MakeLiveJournalS());
  nets.push_back(MakeOrkutS());
  nets.push_back(MakeUsaRoadS());
  return nets;
}

/// \brief Exact Brandes ground truth with an on-disk cache, so the six
/// figure benches do not recompute it for the same surrogate network.
inline std::vector<double> GroundTruth(const BenchNetwork& net) {
  std::string cache = "saphyra_bench_gt_" + net.name + ".bin";
  const NodeId n = net.graph.num_nodes();
  {
    std::ifstream in(cache, std::ios::binary);
    if (in) {
      uint64_t stored_n = 0, stored_m = 0;
      in.read(reinterpret_cast<char*>(&stored_n), sizeof(stored_n));
      in.read(reinterpret_cast<char*>(&stored_m), sizeof(stored_m));
      if (in && stored_n == n && stored_m == net.graph.num_edges()) {
        std::vector<double> bc(n);
        in.read(reinterpret_cast<char*>(bc.data()),
                static_cast<std::streamsize>(n * sizeof(double)));
        if (in) return bc;
      }
    }
  }
  std::fprintf(stderr, "[bench] computing exact BC for %s (%u nodes)...\n",
               net.name.c_str(), n);
  Timer t;
  std::vector<double> bc = ParallelBrandesBetweenness(net.graph);
  std::fprintf(stderr, "[bench] exact BC done in %s\n",
               FormatDuration(t.ElapsedSeconds()).c_str());
  std::ofstream out(cache, std::ios::binary);
  if (out) {
    uint64_t nn = n, mm = net.graph.num_edges();
    out.write(reinterpret_cast<const char*>(&nn), sizeof(nn));
    out.write(reinterpret_cast<const char*>(&mm), sizeof(mm));
    out.write(reinterpret_cast<const char*>(bc.data()),
              static_cast<std::streamsize>(n * sizeof(double)));
  }
  return bc;
}

/// \brief k distinct random nodes.
inline std::vector<NodeId> RandomSubset(const Graph& g, size_t k,
                                        uint64_t seed) {
  Rng rng(seed);
  std::vector<NodeId> all(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) all[v] = v;
  for (size_t i = 0; i < k && i < all.size(); ++i) {
    size_t j = i + rng.UniformInt(all.size() - i);
    std::swap(all[i], all[j]);
  }
  all.resize(std::min(k, all.size()));
  return all;
}

/// \brief Values of `full` restricted to `targets`.
inline std::vector<double> Restrict(const std::vector<double>& full,
                                    const std::vector<NodeId>& targets) {
  std::vector<double> out(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) out[i] = full[targets[i]];
  return out;
}

/// \brief Simple CSV sink next to the binary: one file per bench.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, const std::string& header) {
    out_.open(path);
    if (out_) out_ << header << "\n";
  }
  template <typename... Args>
  void Row(const char* fmt, Args... args) {
    if (!out_) return;
    char buf[512];
    std::snprintf(buf, sizeof(buf), fmt, args...);
    out_ << buf << "\n";
  }

 private:
  std::ofstream out_;
};

inline void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

}  // namespace bench
}  // namespace saphyra

#endif  // SAPHYRA_BENCH_BENCH_UTIL_H_
