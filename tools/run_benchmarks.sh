#!/usr/bin/env bash
# Build Release and run the micro-kernel benchmark suite.
#
# Outputs (in the current directory):
#   BENCH_micro.json        — optimization speedup ratios (machine-readable;
#                             path_sampling_speedup is the tracked perf
#                             metric, adaptive_sample_reduction the tracked
#                             sample-cost metric: adaptive stopping vs. the
#                             fixed VC budget at equal ε)
#   BENCH_micro_gbench.json — full Google-benchmark results
#
# Usage: tools/run_benchmarks.sh [extra gbench args...]
# Env:   BUILD_DIR (default: build-release)

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build-release}"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j"$(nproc)" --target bench_micro_kernels

"$BUILD_DIR/bench_micro_kernels" \
  --speedup_json=BENCH_micro.json \
  --benchmark_out=BENCH_micro_gbench.json \
  --benchmark_out_format=json \
  "$@"
