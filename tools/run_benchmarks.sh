#!/usr/bin/env bash
# Build Release and run the micro-kernel benchmark suite.
#
# Outputs:
#   BENCH_micro.json (current directory) — curated optimization speedup
#       ratios (machine-readable; path_sampling_speedup and
#       bfs_hybrid_speedup are the tracked perf metrics,
#       adaptive_sample_reduction the tracked sample-cost metric). This is
#       the only benchmark artifact kept under version control.
#   $BUILD_DIR/BENCH_micro_gbench.json — full Google-benchmark results.
#       Raw per-host timings, useful while iterating but not tracked: it
#       stays with the other build artifacts and is gitignored.
#
# Usage: tools/run_benchmarks.sh [extra gbench args...]
# Env:   BUILD_DIR (default: build-release)

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build-release}"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j"$(nproc)" --target bench_micro_kernels

# Host context next to the numbers: the hardware-bound ratios
# (preprocess_parallel_* above all) are only interpretable against the
# machine they ran on, which the JSON records as hardware_threads. On a
# single-hardware-thread host the suite skips preprocess_parallel_*
# entirely and records "preprocess_parallel_skipped_single_core": true —
# a sub-1x ratio there is a hardware artifact, not a regression.
echo "bench host: $(uname -srm), $(nproc) hardware threads" >&2
if [[ "$(nproc)" -le 1 ]]; then
  echo "bench host has 1 hardware thread: preprocess_parallel_* will be" \
       "skipped (recorded in the JSON)" >&2
fi

"$BUILD_DIR/bench_micro_kernels" \
  --speedup_json=BENCH_micro.json \
  --benchmark_out="$BUILD_DIR/BENCH_micro_gbench.json" \
  --benchmark_out_format=json \
  "$@"
