// saphyra_serve — multi-query, multi-graph serving front end.
//
// Hosts one or more graphs in a fingerprint-keyed SessionPool: each
// `--graph NAME=PATH` registration is loaded lazily into a warm
// QuerySession on its first query (cache-aware: a fresh `<graph>.sgr` is
// mmap'ed, preprocessing adopted), kept warm across queries, and
// LRU-evicted once more than --max-graphs are resident — in-flight
// queries pin their session, so eviction never interrupts them. Requests
// pick their graph with a `"graph"` field ("" or absent = the first
// registered graph); results are answered through the BatchScheduler:
// concurrent admission, identical in-flight requests collapsed onto one
// execution, completed results memoized in an LRU keyed by (graph
// fingerprint, canonical query) — shared across graphs, partitioned by
// the fingerprint. Heterogeneous queries — bc, k-path, closeness, ABRA,
// KADABRA, each with its own ε/δ/seed/strategy/top-k — share the warm
// index and thread pool.
//
// Usage:
//   saphyra_serve --graph [NAME=]FILE [--graph NAME=FILE ...]
//                 [--format snap|dimacs|sgr|auto]
//                 [--max-graphs G]       (resident sessions, default 4)
//                 [--preload]            (load every graph at startup)
//                 [--requests FILE]      (default: stdin; "-" = stdin)
//                 [--concurrency N]      (default 1: serial admission)
//                 [--threads T]          (default sampling threads, def. 1)
//                 [--memo-capacity M]    (LRU entries, default 64; 0 = off)
//                 [--memo-capacity-bytes B]  (LRU bytes, default 64 MiB;
//                                             0 = unbounded)
//                 [--repeat R]           (serve the request list R times)
//                 [--default-deadline-ms D]  (deadline for requests without
//                                             one; 0 = unbounded, default)
//                 [--max-queue Q]        (shed beyond Q queued; 0 = unbounded)
//                 [--drain-ms D]         (drain window after SIGINT/SIGTERM,
//                                         default 2000)
//                 [--workers N]          (sharded tier: N worker processes,
//                                         0 = sample locally, default)
//                 [--shard-socket SPEC]  (worker rendezvous endpoint,
//                                         unix:/path or tcp:host:port;
//                                         default unix:/tmp/saphyra_shard_<pid>)
//                 [--retry-budget R]     (failed wave rounds tolerated before
//                                         a query degrades, default 2)
//                 [--heartbeat-ms H]     (worker health-check period,
//                                         0 = off, default 1000)
//                 [--allow-updates]      (accept {"op":"update"} mutation
//                                         requests; off = FAILED_PRECONDITION)
//                 [--compact-threshold C] (overlay edges before compacting
//                                          onto a clean CSR, default 4096)
//                 [--no-cache] [--output FILE] [--stats-json FILE]
//
// Request lines (see docs/serving.md for the full schema):
//   {"id":"q1","estimator":"bc","epsilon":0.05,"delta":0.01,"seed":7,
//    "targets":[1,2,3]}
//   {"id":"q2","graph":"road","estimator":"kadabra","epsilon":0.1,"topk":10}
//
// One JSON result line per request, in request order:
//   {"id":"q1","ok":true,"estimator":"bc","served":"computed",
//    "samples":512,"seconds":0.004,"nodes":[1,2,3],"estimates":[...]}
//
// Estimates are deterministic: for a fixed seed a query returns
// bitwise-identical values whether it runs cold, warm, batched, from the
// memo, or against a reloaded-after-eviction graph (`served` tells
// which). Diagnostics and the final latency/throughput summary go to
// stderr; --stats-json additionally writes the summary — including a
// per-graph "graphs" array — as one JSON object.
//
// --repeat R re-serves the whole request list R times — the easy way to
// watch the memo work: the second pass serves every line with
// "served":"memo" at ~zero latency.
//
// Shutdown: SIGINT/SIGTERM starts a graceful drain — in-flight queries
// get --drain-ms to finish (after which they finalize degraded at their
// next wave), no further repeat pass starts, and the process exits with
// the normal summary. A second signal hard-cancels immediately.
//
// Sharded tier (--workers N, docs/serving.md "Sharded serving"): sample
// waves are partitioned over N supervised saphyra_worker processes by
// RNG stripe and merged by integer sum — bitwise identical to local
// sampling at any N. Worker crashes are retried with stripe reassignment
// and backoff restarts; past --retry-budget failed rounds a query
// answers degraded ("degrade_reason":"shard_lost"), never an error.
//
// A client that closes the output pipe mid-stream (e.g. `| head`) does
// not kill the server: SIGPIPE is ignored, the write failure is
// detected, remaining passes drain without output, and the exit code is
// unaffected ("output_closed":true in --stats-json).

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/socket.h"
#include "service/json_util.h"
#include "service/query.h"
#include "service/scheduler.h"
#include "service/session.h"
#include "service/session_pool.h"
#include "service/shard.h"
#include "util/cancel.h"
#include "util/timer.h"

using namespace saphyra;

namespace {

struct Args {
  /// Registrations in order; first is the default graph. A bare PATH
  /// registers under its own spelling as the name.
  std::vector<std::pair<std::string, std::string>> graphs;
  std::string format = "auto";
  size_t max_graphs = 4;
  bool preload = false;
  std::string requests_path = "-";
  uint32_t concurrency = 1;
  uint32_t threads = 1;
  size_t memo_capacity = 64;
  size_t memo_capacity_bytes = 64ull << 20;
  uint32_t repeat = 1;
  uint64_t default_deadline_ms = 0;
  size_t max_queue = 0;
  uint64_t drain_ms = 2000;
  uint32_t workers = 0;
  std::string shard_socket;
  uint32_t retry_budget = 2;
  uint64_t heartbeat_ms = 1000;
  bool allow_updates = false;
  uint64_t compact_threshold = 4096;
  bool no_cache = false;
  std::string output;
  std::string stats_json;
};

// Shutdown state shared with the detached signal watcher. Static storage
// only: the watcher must stay valid if it outlives main's locals, and the
// server token is the parent of every per-query token the scheduler arms.
CancelToken& ServerToken() {
  static CancelToken* token = new CancelToken();
  return *token;
}
std::atomic<bool> g_shutdown{false};
std::atomic<uint64_t> g_drain_ms{2000};

// sigwait-based shutdown: SIGINT/SIGTERM are blocked in every thread (the
// mask is inherited), and one detached watcher consumes them
// synchronously — no async-signal-safety contortions, and a second signal
// still escalates to a hard cancel.
void StartSignalWatcher(sigset_t set) {
  std::thread([set] {
    bool draining = false;
    for (;;) {
      int sig = 0;
      if (sigwait(&set, &sig) != 0) return;
      if (!draining) {
        draining = true;
        g_shutdown.store(true, std::memory_order_release);
        std::fprintf(stderr,
                     "signal %d: draining in-flight queries (%llu ms "
                     "budget); signal again to hard-cancel\n",
                     sig,
                     static_cast<unsigned long long>(
                         g_drain_ms.load(std::memory_order_acquire)));
        ServerToken().TightenDeadline(Deadline::AfterMillis(
            g_drain_ms.load(std::memory_order_acquire)));
      } else {
        std::fprintf(stderr, "signal %d: hard cancel\n", sig);
        ServerToken().Cancel();
        return;
      }
    }
  }).detach();
}

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --graph [NAME=]FILE [--graph NAME=FILE ...]\n"
      "          [--format snap|dimacs|sgr|auto] [--max-graphs G] [--preload]\n"
      "          [--requests FILE] [--concurrency N] [--threads T]\n"
      "          [--memo-capacity M] [--memo-capacity-bytes B] [--repeat R]\n"
      "          [--default-deadline-ms D] [--max-queue Q] [--drain-ms D]\n"
      "          [--workers N] [--shard-socket SPEC] [--retry-budget R]\n"
      "          [--heartbeat-ms H] [--allow-updates] [--compact-threshold C]\n"
      "          [--no-cache] [--output FILE] [--stats-json FILE]\n",
      argv0);
}

bool Parse(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    const char* val = nullptr;
    if (key == "--no-cache") {
      args->no_cache = true;
    } else if (key == "--preload") {
      args->preload = true;
    } else if (key == "--allow-updates") {
      args->allow_updates = true;
    } else if (key == "--compact-threshold" && (val = next())) {
      args->compact_threshold = std::strtoull(val, nullptr, 10);
    } else if (key == "--graph" && (val = next())) {
      // NAME=PATH, or a bare PATH registered under its own spelling (the
      // single-graph invocation everyone already has in scripts).
      const std::string spec = val;
      const size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        args->graphs.emplace_back(spec, spec);
      } else {
        args->graphs.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
      }
    } else if (key == "--format" && (val = next())) {
      args->format = val;
    } else if (key == "--max-graphs" && (val = next())) {
      args->max_graphs = std::strtoull(val, nullptr, 10);
    } else if (key == "--requests" && (val = next())) {
      args->requests_path = val;
    } else if (key == "--concurrency" && (val = next())) {
      args->concurrency = static_cast<uint32_t>(std::strtoul(val, nullptr, 10));
    } else if (key == "--threads" && (val = next())) {
      args->threads = static_cast<uint32_t>(std::strtoul(val, nullptr, 10));
    } else if (key == "--memo-capacity" && (val = next())) {
      args->memo_capacity = std::strtoull(val, nullptr, 10);
    } else if (key == "--memo-capacity-bytes" && (val = next())) {
      args->memo_capacity_bytes = std::strtoull(val, nullptr, 10);
    } else if (key == "--repeat" && (val = next())) {
      args->repeat = static_cast<uint32_t>(std::strtoul(val, nullptr, 10));
    } else if (key == "--default-deadline-ms" && (val = next())) {
      args->default_deadline_ms = std::strtoull(val, nullptr, 10);
    } else if (key == "--max-queue" && (val = next())) {
      args->max_queue = std::strtoull(val, nullptr, 10);
    } else if (key == "--drain-ms" && (val = next())) {
      args->drain_ms = std::strtoull(val, nullptr, 10);
    } else if (key == "--workers" && (val = next())) {
      args->workers = static_cast<uint32_t>(std::strtoul(val, nullptr, 10));
    } else if (key == "--shard-socket" && (val = next())) {
      args->shard_socket = val;
    } else if (key == "--retry-budget" && (val = next())) {
      args->retry_budget = static_cast<uint32_t>(std::strtoul(val, nullptr, 10));
    } else if (key == "--heartbeat-ms" && (val = next())) {
      args->heartbeat_ms = std::strtoull(val, nullptr, 10);
    } else if (key == "--output" && (val = next())) {
      args->output = val;
    } else if (key == "--stats-json" && (val = next())) {
      args->stats_json = val;
    } else {
      std::fprintf(stderr, "unknown or incomplete option: %s\n", key.c_str());
      return false;
    }
  }
  if (args->graphs.empty()) {
    std::fprintf(stderr, "--graph is required\n");
    return false;
  }
  if (args->concurrency == 0 || args->repeat == 0) {
    std::fprintf(stderr, "--concurrency and --repeat must be >= 1\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Parse(argc, argv, &args)) {
    Usage(argv[0]);
    return 2;
  }

  // A client closing our output pipe must be an ordinary stream error,
  // not a process kill: detected per line, remaining work drains.
  signal(SIGPIPE, SIG_IGN);

  // Block the shutdown signals before any thread exists so every later
  // thread inherits the mask and only the watcher ever sees them.
  g_drain_ms.store(args.drain_ms, std::memory_order_release);
  sigset_t shutdown_set;
  sigemptyset(&shutdown_set);
  sigaddset(&shutdown_set, SIGINT);
  sigaddset(&shutdown_set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &shutdown_set, nullptr);
  StartSignalWatcher(shutdown_set);

  // --- register the graphs, load the default one now --------------------
  // The default graph loads eagerly whatever --preload says: a typo'd
  // path should be exit code 1 at startup, not an error line on the
  // first query. The others stay cold until queried (or --preload).
  SessionPoolOptions popts;
  popts.session.load.format = args.format;
  popts.session.load.use_cache = !args.no_cache;
  popts.session.default_threads = std::max(1u, args.threads);
  popts.session.compact_threshold = args.compact_threshold;
  popts.max_graphs = args.max_graphs;
  SessionPool pool(popts);
  for (const auto& [name, path] : args.graphs) {
    Status st = pool.Register(name, path);
    if (!st.ok()) {
      std::fprintf(stderr, "bad --graph registration: %s\n",
                   st.ToString().c_str());
      return 2;
    }
  }

  Timer timer;
  {
    std::shared_ptr<QuerySession> session;
    Status st = args.preload ? pool.Preload() : pool.Acquire("", &session);
    if (!st.ok()) {
      std::fprintf(stderr, "failed to open session: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    if (session == nullptr) {
      st = pool.Acquire("", &session);  // preload path: re-pin the default
      if (!st.ok()) {
        std::fprintf(stderr, "failed to open session: %s\n",
                     st.ToString().c_str());
        return 1;
      }
    }
    const double load_seconds = timer.ElapsedSeconds();
    std::fprintf(stderr,
                 "session: %s in %s%s, fingerprint %016llx%s\n",
                 session->graph().DebugString().c_str(),
                 FormatDuration(load_seconds).c_str(),
                 session->loaded_from_cache() ? " (.sgr cache)" : "",
                 static_cast<unsigned long long>(session->fingerprint()),
                 args.preload ? " (preloaded all)" : "");
  }
  const double load_seconds = timer.ElapsedSeconds();

  // --- read the request list --------------------------------------------
  std::ifstream req_file;
  std::istream* in = &std::cin;
  if (args.requests_path != "-") {
    req_file.open(args.requests_path);
    if (!req_file) {
      std::fprintf(stderr, "cannot open requests file %s\n",
                   args.requests_path.c_str());
      return 1;
    }
    in = &req_file;
  }
  std::vector<QueryRequest> requests;
  std::vector<QueryResult> parse_errors;  // bad lines answered in place
  std::vector<int> line_kind;             // 0 = request idx, 1 = error idx
  std::string line;
  size_t lineno = 0;
  while (std::getline(*in, line)) {
    ++lineno;
    // Blank lines and # comments keep checked-in request files readable.
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    QueryRequest req;
    Status pst = ParseQueryRequest(line, &req);
    if (!pst.ok()) {
      QueryResult bad;
      bad.id = "line:" + std::to_string(lineno);
      bad.status = pst;
      parse_errors.push_back(std::move(bad));
      line_kind.push_back(1);
      continue;
    }
    if (req.id.empty()) req.id = "line:" + std::to_string(lineno);
    if (req.deadline_ms == 0) req.deadline_ms = args.default_deadline_ms;
    requests.push_back(std::move(req));
    line_kind.push_back(0);
  }
  std::fprintf(stderr, "requests: %zu parsed, %zu invalid\n", requests.size(),
               parse_errors.size());

  // --- sharded tier (optional) ------------------------------------------
  // Declared before the scheduler (which borrows the supervisor) and after
  // the pool (whose graphs the workers mirror), so destruction order tears
  // the tier down while both neighbors are alive.
  net::Endpoint shard_ep;
  net::UniqueFd shard_listen;
  std::unique_ptr<ProcessWorkerLauncher> launcher;
  std::unique_ptr<WorkerSupervisor> supervisor;
  if (args.workers > 0) {
    std::string spec = args.shard_socket;
    if (spec.empty()) {
      spec = "unix:/tmp/saphyra_shard_" + std::to_string(getpid()) + ".sock";
    }
    Status st = net::ParseEndpoint(spec, &shard_ep);
    if (st.ok()) st = net::Listen(shard_ep, &shard_listen);
    if (!st.ok()) {
      std::fprintf(stderr, "cannot bind --shard-socket %s: %s\n", spec.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    // Workers are siblings of this binary; forward the graph registrations
    // and load options verbatim so their pools resolve identically.
    ProcessWorkerLauncher::Options lopts;
    const std::string self = argv[0];
    const size_t slash = self.rfind('/');
    lopts.worker_binary = (slash == std::string::npos
                               ? std::string("./")
                               : self.substr(0, slash + 1)) +
                          "saphyra_worker";
    lopts.endpoint = shard_ep;
    lopts.listen_fd = shard_listen.get();
    for (const auto& [name, path] : args.graphs) {
      lopts.graph_args.push_back(name + "=" + path);
    }
    lopts.extra_args.push_back("--format");
    lopts.extra_args.push_back(args.format);
    lopts.extra_args.push_back("--max-graphs");
    lopts.extra_args.push_back(std::to_string(args.max_graphs));
    if (args.no_cache) lopts.extra_args.push_back("--no-cache");
    lopts.extra_args.push_back("--compact-threshold");
    lopts.extra_args.push_back(std::to_string(args.compact_threshold));
    launcher = std::make_unique<ProcessWorkerLauncher>(std::move(lopts));

    ShardOptions sopts;
    sopts.num_workers = args.workers;
    sopts.retry_budget = args.retry_budget;
    sopts.heartbeat_ms = args.heartbeat_ms;
    supervisor = std::make_unique<WorkerSupervisor>(launcher.get(), sopts);
    st = supervisor->Start();
    if (!st.ok()) {
      std::fprintf(stderr, "cannot start worker tier: %s\n",
                   st.ToString().c_str());
      if (shard_ep.is_unix) unlink(shard_ep.path.c_str());
      return 1;
    }
    std::fprintf(stderr, "shard tier: %u workers on %s\n", args.workers,
                 spec.c_str());
  }

  // --- serve -------------------------------------------------------------
  SchedulerOptions schopts;
  schopts.max_concurrent = args.concurrency;
  schopts.memo_capacity = args.memo_capacity;
  schopts.memo_capacity_bytes = args.memo_capacity_bytes;
  schopts.max_queue = args.max_queue;
  schopts.server_cancel = &ServerToken();
  schopts.supervisor = supervisor.get();
  schopts.allow_updates = args.allow_updates;
  BatchScheduler scheduler(&pool, schopts);

  std::ofstream file_out;
  std::ostream* out = &std::cout;
  if (!args.output.empty()) {
    file_out.open(args.output);
    if (!file_out) {
      std::fprintf(stderr, "cannot open %s\n", args.output.c_str());
      return 1;
    }
    out = &file_out;
  }

  timer.Restart();
  uint64_t answered = 0;
  double max_query_seconds = 0.0;
  bool any_error = !parse_errors.empty();
  bool output_closed = false;
  uint32_t passes_served = 0;
  for (uint32_t pass = 0; pass < args.repeat; ++pass) {
    std::vector<QueryResult> results = scheduler.RunBatch(requests);
    ++passes_served;
    // Emit in input-line order, interleaving the parse failures where
    // their lines sat. Flushed per line so a closed pipe (client went
    // away, e.g. `| head`) surfaces on THIS line's write, not at some
    // buffer boundary passes later.
    size_t ri = 0, ei = 0;
    for (int kind : line_kind) {
      const QueryResult& res =
          kind == 0 ? results[ri++] : parse_errors[ei++];
      if (!output_closed) {
        *out << SerializeQueryResult(res) << '\n';
        out->flush();
        if (!out->good()) {
          output_closed = true;
          std::fprintf(stderr,
                       "output closed after %llu lines; draining "
                       "remaining queries without output\n",
                       static_cast<unsigned long long>(answered));
        }
      }
      ++answered;
      if (!res.status.ok()) any_error = true;
      max_query_seconds = std::max(max_query_seconds, res.seconds);
    }
    // Drain: finish the pass in flight (every request already answered,
    // degraded past the drain deadline), skip the rest.
    if (g_shutdown.load(std::memory_order_acquire) &&
        pass + 1 < args.repeat) {
      std::fprintf(stderr, "drained after pass %u/%u\n", pass + 1,
                   args.repeat);
      break;
    }
  }
  if (!output_closed) out->flush();
  const double serve_seconds = timer.ElapsedSeconds();
  const SchedulerStats stats = scheduler.stats();
  const std::vector<SessionPoolGraphStats> graph_stats = pool.stats();
  const double qps =
      serve_seconds > 0.0 ? static_cast<double>(answered) / serve_seconds : 0.0;

  const uint64_t invalid =
      stats.errors + parse_errors.size() * passes_served;
  std::fprintf(stderr,
               "served %llu queries in %s (%.1f q/s): %llu computed, "
               "%llu updates, %llu memo, %llu dedup, %llu error, "
               "%llu degraded, %llu shed, %llu cancelled; max query %s\n",
               static_cast<unsigned long long>(answered),
               FormatDuration(serve_seconds).c_str(), qps,
               static_cast<unsigned long long>(stats.computed),
               static_cast<unsigned long long>(stats.updates),
               static_cast<unsigned long long>(stats.memo_hits),
               static_cast<unsigned long long>(stats.dedup_hits),
               static_cast<unsigned long long>(invalid),
               static_cast<unsigned long long>(stats.degraded),
               static_cast<unsigned long long>(stats.shed),
               static_cast<unsigned long long>(stats.cancelled),
               FormatDuration(max_query_seconds).c_str());
  for (const SessionPoolGraphStats& g : graph_stats) {
    std::fprintf(stderr,
                 "graph %s: fingerprint %016llx, %s, %llu acquires, "
                 "%llu loads, %llu evictions\n",
                 g.name.c_str(),
                 static_cast<unsigned long long>(g.fingerprint),
                 g.resident ? "resident" : "cold",
                 static_cast<unsigned long long>(g.acquires),
                 static_cast<unsigned long long>(g.loads),
                 static_cast<unsigned long long>(g.evictions));
  }
  std::vector<ShardWorkerStats> worker_stats;
  uint64_t worker_restarts = 0;
  if (supervisor != nullptr) {
    worker_stats = supervisor->stats();
    for (const ShardWorkerStats& w : worker_stats) {
      worker_restarts += w.restarts;
      std::fprintf(stderr,
                   "worker %u: %s, %llu waves, %llu restarts, %llu retries, "
                   "%llu stripes_reassigned, %llu heartbeat_misses\n",
                   w.index, w.alive ? "alive" : "dead",
                   static_cast<unsigned long long>(w.waves),
                   static_cast<unsigned long long>(w.restarts),
                   static_cast<unsigned long long>(w.retries),
                   static_cast<unsigned long long>(w.stripes_reassigned),
                   static_cast<unsigned long long>(w.heartbeat_misses));
    }
  }

  if (!args.stats_json.empty()) {
    std::ofstream sj(args.stats_json);
    if (!sj) {
      std::fprintf(stderr, "cannot open %s\n", args.stats_json.c_str());
      return 1;
    }
    sj << "{\"queries\":" << answered << ",\"computed\":" << stats.computed
       << ",\"updates\":" << stats.updates
       << ",\"memo_hits\":" << stats.memo_hits
       << ",\"dedup_hits\":" << stats.dedup_hits
       << ",\"invalid\":" << invalid
       << ",\"degraded\":" << stats.degraded
       << ",\"shed\":" << stats.shed
       << ",\"cancelled\":" << stats.cancelled
       << ",\"memo_bytes\":" << stats.memo_bytes
       << ",\"drained\":" << (g_shutdown.load() ? "true" : "false")
       << ",\"output_closed\":" << (output_closed ? "true" : "false")
       << ",\"worker_restarts\":" << worker_restarts
       << ",\"load_seconds\":" << load_seconds
       << ",\"serve_seconds\":" << serve_seconds
       << ",\"queries_per_second\":" << qps
       << ",\"graphs\":[";
    char fp[32];
    for (size_t i = 0; i < graph_stats.size(); ++i) {
      const SessionPoolGraphStats& g = graph_stats[i];
      std::snprintf(fp, sizeof(fp), "%016llx",
                    static_cast<unsigned long long>(g.fingerprint));
      if (i != 0) sj << ',';
      sj << "{\"name\":" << JsonQuote(g.name)
         << ",\"fingerprint\":\"" << fp << '"'
         << ",\"resident\":" << (g.resident ? "true" : "false")
         << ",\"acquires\":" << g.acquires
         << ",\"loads\":" << g.loads
         << ",\"evictions\":" << g.evictions << '}';
    }
    sj << "],\"workers\":[";
    for (size_t i = 0; i < worker_stats.size(); ++i) {
      const ShardWorkerStats& w = worker_stats[i];
      if (i != 0) sj << ',';
      sj << "{\"index\":" << w.index
         << ",\"alive\":" << (w.alive ? "true" : "false")
         << ",\"waves\":" << w.waves
         << ",\"restarts\":" << w.restarts
         << ",\"retries\":" << w.retries
         << ",\"stripes_reassigned\":" << w.stripes_reassigned
         << ",\"heartbeat_misses\":" << w.heartbeat_misses << '}';
    }
    sj << "]}\n";
  }
  // The workers quit before their rendezvous path goes away; stale paths
  // from a crashed run are unlinked by the next Listen anyway.
  if (supervisor != nullptr) {
    supervisor->Shutdown();
    if (shard_ep.is_unix) unlink(shard_ep.path.c_str());
  }
  return any_error ? 3 : 0;
}
