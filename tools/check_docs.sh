#!/usr/bin/env bash
# Docs lint: the build/verify command users copy out of README.md must be
# the repo's actual tier-1 verification line from ROADMAP.md. Run from
# anywhere; CI runs it on every push.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"

tier1="$(sed -n 's/^\*\*Tier-1 verify:\*\* `\(.*\)`$/\1/p' "$REPO_ROOT/ROADMAP.md")"
if [[ -z "$tier1" ]]; then
  echo "check_docs: could not extract the tier-1 verify line from ROADMAP.md" >&2
  exit 1
fi

if ! grep -qF "$tier1" "$REPO_ROOT/README.md"; then
  echo "check_docs: README.md build commands drifted from ROADMAP.md" >&2
  echo "  ROADMAP tier-1: $tier1" >&2
  echo "  (README.md must contain that exact command line)" >&2
  exit 1
fi

echo "check_docs: README.md matches ROADMAP.md tier-1 verify line"
