#!/usr/bin/env bash
# Docs lint: the build/verify command users copy out of README.md must be
# the repo's actual tier-1 verification line from ROADMAP.md. Run from
# anywhere; CI runs it on every push.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"

tier1="$(sed -n 's/^\*\*Tier-1 verify:\*\* `\(.*\)`$/\1/p' "$REPO_ROOT/ROADMAP.md")"
if [[ -z "$tier1" ]]; then
  echo "check_docs: could not extract the tier-1 verify line from ROADMAP.md" >&2
  exit 1
fi

if ! grep -qF "$tier1" "$REPO_ROOT/README.md"; then
  echo "check_docs: README.md build commands drifted from ROADMAP.md" >&2
  echo "  ROADMAP tier-1: $tier1" >&2
  echo "  (README.md must contain that exact command line)" >&2
  exit 1
fi

# The user-facing accuracy/mode flags of saphyra_rank are pinned in both
# directions: they must stay documented in README.md, and the tool must
# keep accepting the documented spellings.
for flag in --epsilon --delta --topk --strategy; do
  if ! grep -qF -- "$flag" "$REPO_ROOT/README.md"; then
    echo "check_docs: README.md no longer documents the $flag flag" >&2
    exit 1
  fi
  if ! grep -qF -- "\"$flag\"" "$REPO_ROOT/tools/saphyra_rank.cc"; then
    echo "check_docs: tools/saphyra_rank.cc no longer parses $flag" >&2
    exit 1
  fi
done

# The tracked benchmark metrics must stay documented.
for metric in adaptive_sample_reduction path_sampling_speedup \
              bfs_hybrid_speedup; do
  if ! grep -qF "$metric" "$REPO_ROOT/README.md"; then
    echo "check_docs: README.md no longer documents the $metric metric" >&2
    exit 1
  fi
done

echo "check_docs: README.md matches ROADMAP.md tier-1 verify line," \
     "rank flags and benchmark metrics"
