#!/usr/bin/env bash
# Docs lint, run from anywhere; CI runs it on every push. Checks:
#   1. The build/verify command users copy out of README.md is the repo's
#      actual tier-1 verification line from ROADMAP.md.
#   2. The saphyra_rank accuracy/mode flags stay documented in README.md
#      and parsed by the tool (both directions).
#   3. The headline benchmark metrics stay documented in README.md.
#   4. Every --flag a tools/*.cc binary parses appears in docs/cli.md.
#   5. Every metric key in BENCH_micro.json appears somewhere in the docs
#      (README.md, DESIGN.md, or docs/*.md).
#   6. The serving robustness contract holds: the deadline/backpressure
#      flags stay parsed by saphyra_serve and documented in
#      docs/serving.md, and the error-taxonomy wire codes stay in sync
#      with src/util/status.cc.
#   7. Every relative markdown link in the doc set resolves to a file
#      that exists.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
fail=0

# --- 1. tier-1 verify line -------------------------------------------------
tier1="$(sed -n 's/^\*\*Tier-1 verify:\*\* `\(.*\)`$/\1/p' "$REPO_ROOT/ROADMAP.md")"
if [[ -z "$tier1" ]]; then
  echo "check_docs: could not extract the tier-1 verify line from ROADMAP.md" >&2
  exit 1
fi
if ! grep -qF "$tier1" "$REPO_ROOT/README.md"; then
  echo "check_docs: README.md build commands drifted from ROADMAP.md" >&2
  echo "  ROADMAP tier-1: $tier1" >&2
  echo "  (README.md must contain that exact command line)" >&2
  fail=1
fi

# --- 2. saphyra_rank accuracy flags, both directions -----------------------
for flag in --epsilon --delta --topk --strategy; do
  if ! grep -qF -- "$flag" "$REPO_ROOT/README.md"; then
    echo "check_docs: README.md no longer documents the $flag flag" >&2
    fail=1
  fi
  if ! grep -qF -- "\"$flag\"" "$REPO_ROOT/tools/saphyra_rank.cc"; then
    echo "check_docs: tools/saphyra_rank.cc no longer parses $flag" >&2
    fail=1
  fi
done

# --- 3. headline metrics in README -----------------------------------------
for metric in adaptive_sample_reduction path_sampling_speedup \
              bfs_hybrid_speedup serve_warm_speedup; do
  if ! grep -qF "$metric" "$REPO_ROOT/README.md"; then
    echo "check_docs: README.md no longer documents the $metric metric" >&2
    fail=1
  fi
done

# --- 4. every tool flag is in docs/cli.md ----------------------------------
# A "parsed flag" is any quoted --long-option literal in a tools/*.cc file
# (the comparison strings of the argument loops).
cli_doc="$REPO_ROOT/docs/cli.md"
if [[ ! -f "$cli_doc" ]]; then
  echo "check_docs: docs/cli.md is missing" >&2
  fail=1
else
  for tool_src in "$REPO_ROOT"/tools/*.cc; do
    while IFS= read -r flag; do
      if ! grep -qF -- "$flag" "$cli_doc"; then
        echo "check_docs: $(basename "$tool_src") parses $flag but docs/cli.md does not document it" >&2
        fail=1
      fi
    done < <(grep -oE '"--[a-z0-9-]+"' "$tool_src" | tr -d '"' | sort -u)
  done
fi

# --- 4b. the parallel-bicomp contract stays wired ---------------------------
# graph_convert must keep parsing --bicomp-threads (the serial-oracle
# escape hatch) and the preprocess_parallel_speedup metric must stay
# documented next to its hardware caveat.
if ! grep -qF -- '"--bicomp-threads"' "$REPO_ROOT/tools/graph_convert.cc"; then
  echo "check_docs: tools/graph_convert.cc no longer parses --bicomp-threads" >&2
  fail=1
fi
if ! grep -qF -- "--bicomp-threads" "$cli_doc"; then
  echo "check_docs: docs/cli.md no longer documents --bicomp-threads" >&2
  fail=1
fi
if ! grep -qF "preprocess_parallel_speedup" "$REPO_ROOT/docs/benchmarks.md"; then
  echo "check_docs: docs/benchmarks.md no longer documents preprocess_parallel_speedup" >&2
  fail=1
fi

# --- 5. every BENCH_micro.json key is documented somewhere -----------------
bench_json="$REPO_ROOT/BENCH_micro.json"
doc_files=("$REPO_ROOT/README.md" "$REPO_ROOT/DESIGN.md" "$REPO_ROOT"/docs/*.md)
if [[ -f "$bench_json" ]]; then
  while IFS= read -r key; do
    if ! grep -qF -- "$key" "${doc_files[@]}"; then
      echo "check_docs: BENCH_micro.json metric '$key' is not documented in any doc" >&2
      fail=1
    fi
  done < <(grep -oE '"[A-Za-z0-9_]+"[[:space:]]*:' "$bench_json" \
             | sed -E 's/"([A-Za-z0-9_]+)".*/\1/' | sort -u)
else
  echo "check_docs: BENCH_micro.json is missing" >&2
  fail=1
fi

# --- 6. serving robustness contract ----------------------------------------
# The deadline/backpressure flags must stay parsed by saphyra_serve AND
# documented in docs/serving.md, and every wire-format error code named in
# the serving docs' taxonomy must exist in src/util/status.cc (and vice
# versa for the codes the robustness layer introduced).
serving_doc="$REPO_ROOT/docs/serving.md"
if [[ ! -f "$serving_doc" ]]; then
  echo "check_docs: docs/serving.md is missing" >&2
  fail=1
else
  for flag in --default-deadline-ms --max-queue --drain-ms; do
    if ! grep -qF -- "\"$flag\"" "$REPO_ROOT/tools/saphyra_serve.cc"; then
      echo "check_docs: tools/saphyra_serve.cc no longer parses $flag" >&2
      fail=1
    fi
    if ! grep -qF -- "$flag" "$serving_doc"; then
      echo "check_docs: docs/serving.md no longer documents $flag" >&2
      fail=1
    fi
  done
  # The multi-graph tenancy flags are the same kind of contract: the pool
  # knobs must stay parsed by saphyra_serve and explained in serving.md
  # (docs/cli.md coverage already comes from check 4).
  for flag in --max-graphs --preload --memo-capacity-bytes; do
    if ! grep -qF -- "\"$flag\"" "$REPO_ROOT/tools/saphyra_serve.cc"; then
      echo "check_docs: tools/saphyra_serve.cc no longer parses $flag" >&2
      fail=1
    fi
    if ! grep -qF -- "$flag" "$serving_doc"; then
      echo "check_docs: docs/serving.md no longer documents $flag" >&2
      fail=1
    fi
  done
  if ! grep -qF "Multi-graph tenancy" "$serving_doc"; then
    echo "check_docs: docs/serving.md lost the 'Multi-graph tenancy' section" >&2
    fail=1
  fi
  # The sharded-tier flags carry the same parsed-AND-documented contract,
  # and the section explaining the stripe/bitwise-identity argument and
  # the failure matrix must survive.
  for flag in --workers --shard-socket --retry-budget --heartbeat-ms; do
    if ! grep -qF -- "\"$flag\"" "$REPO_ROOT/tools/saphyra_serve.cc"; then
      echo "check_docs: tools/saphyra_serve.cc no longer parses $flag" >&2
      fail=1
    fi
    if ! grep -qF -- "$flag" "$serving_doc"; then
      echo "check_docs: docs/serving.md no longer documents $flag" >&2
      fail=1
    fi
  done
  if ! grep -qF "Sharded serving" "$serving_doc"; then
    echo "check_docs: docs/serving.md lost the 'Sharded serving' section" >&2
    fail=1
  fi
  # Dynamic graphs: the mutation flags must stay parsed AND explained in
  # serving.md, the section itself must survive, and the update wire
  # fields must stay documented (clients build requests from this page).
  for flag in --allow-updates --compact-threshold; do
    if ! grep -qF -- "\"$flag\"" "$REPO_ROOT/tools/saphyra_serve.cc"; then
      echo "check_docs: tools/saphyra_serve.cc no longer parses $flag" >&2
      fail=1
    fi
    if ! grep -qF -- "$flag" "$serving_doc"; then
      echo "check_docs: docs/serving.md no longer documents $flag" >&2
      fail=1
    fi
  done
  if ! grep -qF "Dynamic graphs" "$serving_doc"; then
    echo "check_docs: docs/serving.md lost the 'Dynamic graphs' section" >&2
    fail=1
  fi
  for field in '"op"' '"action"' '"edge"' '"epoch"' '"fingerprint"'; do
    if ! grep -qF -- "$field" "$serving_doc"; then
      echo "check_docs: docs/serving.md update schema is missing the $field field" >&2
      fail=1
    fi
  done
  for code in INVALID_ARGUMENT DEADLINE_EXCEEDED RESOURCE_EXHAUSTED \
              CANCELLED INTERNAL UNAVAILABLE; do
    if ! grep -qF "\"$code\"" "$REPO_ROOT/src/util/status.cc"; then
      echo "check_docs: src/util/status.cc no longer emits wire code $code" >&2
      fail=1
    fi
    if ! grep -qF "$code" "$serving_doc"; then
      echo "check_docs: docs/serving.md error taxonomy is missing $code" >&2
      fail=1
    fi
  done
fi

# --- 7. relative doc links resolve -----------------------------------------
# Markdown inline links [text](target); URLs and pure #anchors are skipped,
# in-file anchors of relative targets are stripped before the existence test.
for doc in "${doc_files[@]}"; do
  dir="$(dirname "$doc")"
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"
    [[ -z "$path" ]] && continue
    if [[ ! -e "$dir/$path" ]]; then
      echo "check_docs: $(basename "$doc") links to '$target' which does not resolve" >&2
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//')
done

if [[ "$fail" -ne 0 ]]; then
  exit 1
fi
echo "check_docs: README/ROADMAP tier-1 line, rank flags, headline metrics," \
     "tool flags vs docs/cli.md, BENCH_micro.json key coverage, serving" \
     "error taxonomy and doc links all consistent"
