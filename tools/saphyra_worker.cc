// saphyra_worker — sharded serving tier worker process.
//
// Launched by saphyra_serve when --workers N is set (one process per
// shard); not normally invoked by hand. Connects back to the
// coordinator's rendezvous endpoint, announces its shard index with a
// hello frame, then serves the shard RPC protocol (service/shard.h):
// ping health checks and wave requests that draw an assigned subset of a
// sample wave's RNG stripes on a local SampleEngine, shipping back the
// raw integer delta. The coordinator sums the per-stripe deltas, so the
// merged wave is bitwise identical to a local draw (determinism
// contract, DESIGN.md).
//
// Usage:
//   saphyra_worker --connect SPEC --graph [NAME=]FILE [--graph ...]
//                  [--index I] [--format snap|dimacs|sgr|auto]
//                  [--max-graphs G] [--max-states S] [--no-cache]
//
// SPEC is unix:/path/to.sock or host:port, matching saphyra_serve
// --shard-socket. The graph registrations must mirror the coordinator's
// (same names, same files): every wave carries the coordinator graph's
// content fingerprint and the worker refuses a mismatch.
//
// Exit: 0 when the coordinator quits or its connection drops (the normal
// end of a serving run), nonzero on startup errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "net/socket.h"
#include "service/session_pool.h"
#include "service/shard_worker.h"
#include "util/status.h"

using namespace saphyra;

namespace {

struct Args {
  std::string connect;
  std::vector<std::pair<std::string, std::string>> graphs;
  uint32_t index = 0;
  std::string format = "auto";
  size_t max_graphs = 4;
  size_t max_states = 32;
  uint64_t compact_threshold = 4096;
  bool no_cache = false;
};

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --connect SPEC --graph [NAME=]FILE [--graph ...]\n"
               "          [--index I] [--format snap|dimacs|sgr|auto]\n"
               "          [--max-graphs G] [--max-states S] [--no-cache]\n",
               argv0);
}

bool Parse(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    const char* val = nullptr;
    if (key == "--no-cache") {
      args->no_cache = true;
    } else if (key == "--connect" && (val = next())) {
      args->connect = val;
    } else if (key == "--graph" && (val = next())) {
      const std::string spec = val;
      const size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        args->graphs.emplace_back(spec, spec);
      } else {
        args->graphs.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
      }
    } else if (key == "--index" && (val = next())) {
      args->index = static_cast<uint32_t>(std::strtoul(val, nullptr, 10));
    } else if (key == "--format" && (val = next())) {
      args->format = val;
    } else if (key == "--max-graphs" && (val = next())) {
      args->max_graphs = std::strtoull(val, nullptr, 10);
    } else if (key == "--max-states" && (val = next())) {
      args->max_states = std::strtoull(val, nullptr, 10);
    } else if (key == "--compact-threshold" && (val = next())) {
      args->compact_threshold = std::strtoull(val, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown or incomplete option: %s\n", key.c_str());
      return false;
    }
  }
  if (args->connect.empty() || args->graphs.empty()) {
    std::fprintf(stderr, "--connect and --graph are required\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Parse(argc, argv, &args)) {
    Usage(argv[0]);
    return 2;
  }

  SessionPoolOptions popts;
  popts.session.load.format = args.format;
  popts.session.load.use_cache = !args.no_cache;
  popts.session.default_threads = 1;  // striping happens on the engine,
                                      // not a thread pool, in a worker
  popts.session.compact_threshold = args.compact_threshold;
  popts.max_graphs = args.max_graphs;
  SessionPool pool(popts);
  for (const auto& [name, path] : args.graphs) {
    Status st = pool.Register(name, path);
    if (!st.ok()) {
      std::fprintf(stderr, "worker %u: bad --graph registration: %s\n",
                   args.index, st.ToString().c_str());
      return 2;
    }
  }

  net::Endpoint endpoint;
  Status st = net::ParseEndpoint(args.connect, &endpoint);
  if (!st.ok()) {
    std::fprintf(stderr, "worker %u: bad --connect: %s\n", args.index,
                 st.ToString().c_str());
    return 2;
  }
  net::UniqueFd conn;
  st = net::Connect(endpoint, &conn);
  if (!st.ok()) {
    std::fprintf(stderr, "worker %u: cannot reach coordinator: %s\n",
                 args.index, st.ToString().c_str());
    return 1;
  }

  WorkerLoopOptions wopts;
  wopts.index = args.index;
  wopts.max_states = args.max_states;
  st = RunWorkerLoop(conn.get(), &pool, wopts);
  if (!st.ok()) {
    std::fprintf(stderr, "worker %u: %s\n", args.index, st.ToString().c_str());
    return 1;
  }
  return 0;
}
