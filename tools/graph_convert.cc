// graph_convert — one-time preprocessing into the `.sgr` binary cache.
//
// Parses a text corpus (SNAP edge list or DIMACS .gr), runs the SaPHyRa
// preprocessing once (biconnected decomposition, connectivity, block-cut
// tree, per-component CSR views), and writes everything as a versioned,
// mmap-loadable `.sgr` file. Tools and benches then auto-substitute the
// cache for the text parse (see graph/binary_io.h; format spec in
// DESIGN.md, "The .sgr on-disk format").
//
// Usage:
//   graph_convert --input edges.txt [--format snap|dimacs]
//                 [--output edges.txt.sgr] [--graph-only]
//                 [--no-compact-ids] [--verify] [--bicomp-threads N]
//
//   --graph-only      write only the CSR graph, skip the decomposition
//   --no-compact-ids  SNAP: keep raw node ids instead of renumbering
//   --verify          re-load the cache and check it against the text
//                     pipeline (round-trip structural equality)
//   --bicomp-threads  threads for the biconnected decomposition: 0 (the
//                     default) = parallel, sized to the machine; 1 = the
//                     legacy serial pass, kept as the oracle. The output
//                     bytes are identical either way (the decomposition is
//                     canonicalized), so this is purely a speed knob.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>

#include "bicomp/isp.h"
#include "graph/binary_io.h"
#include "graph/io.h"
#include "util/timer.h"

using namespace saphyra;

namespace {

struct Args {
  std::string input;
  std::string format = "snap";
  std::string output;
  bool graph_only = false;
  bool compact_ids = true;
  bool verify = false;
  uint32_t bicomp_threads = 0;  // 0 = parallel on the shared pool's width
};

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --input FILE [--format snap|dimacs]\n"
               "          [--output FILE.sgr] [--graph-only]\n"
               "          [--no-compact-ids] [--verify]\n"
               "          [--bicomp-threads N]\n",
               argv0);
}

bool Parse(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* val = nullptr;
    if (key == "--graph-only") {
      args->graph_only = true;
    } else if (key == "--no-compact-ids") {
      args->compact_ids = false;
    } else if (key == "--verify") {
      args->verify = true;
    } else if (key == "--input" && (val = next())) {
      args->input = val;
    } else if (key == "--format" && (val = next())) {
      args->format = val;
    } else if (key == "--output" && (val = next())) {
      args->output = val;
    } else if (key == "--bicomp-threads" && (val = next())) {
      char* end = nullptr;
      unsigned long parsed = std::strtoul(val, &end, 10);
      if (end == val || *end != '\0') {
        std::fprintf(stderr, "--bicomp-threads expects a number, got %s\n",
                     val);
        return false;
      }
      args->bicomp_threads = static_cast<uint32_t>(parsed);
    } else {
      std::fprintf(stderr, "unknown or incomplete option: %s\n", key.c_str());
      return false;
    }
  }
  if (args->input.empty()) {
    std::fprintf(stderr, "--input is required\n");
    return false;
  }
  if (args->format != "snap" && args->format != "dimacs") {
    std::fprintf(stderr, "--format must be snap or dimacs\n");
    return false;
  }
  if (args->output.empty()) args->output = SgrCachePathFor(args->input);
  return true;
}

bool SpansEqual(std::span<const NodeId> a, std::span<const NodeId> b) {
  return a.size() == b.size() && std::memcmp(a.data(), b.data(),
                                             a.size() * sizeof(NodeId)) == 0;
}

bool SpansEqual64(std::span<const uint64_t> a, std::span<const uint64_t> b) {
  return a.size() == b.size() && std::memcmp(a.data(), b.data(),
                                             a.size() * sizeof(uint64_t)) == 0;
}

/// Round-trip check: the cache must reproduce the text pipeline exactly.
/// `isp` is null for --graph-only conversions.
bool Verify(const std::string& sgr_path, const Graph& g, const IspIndex* isp) {
  GraphCache cache;
  Status st = LoadSgr(sgr_path, &cache);
  if (!st.ok()) {
    std::fprintf(stderr, "verify: reload failed: %s\n", st.ToString().c_str());
    return false;
  }
  bool ok = cache.graph.num_nodes() == g.num_nodes() &&
            SpansEqual64(cache.graph.raw_offsets(), g.raw_offsets()) &&
            SpansEqual(cache.graph.raw_adj(), g.raw_adj());
  if (!ok) {
    std::fprintf(stderr, "verify: graph CSR mismatch\n");
    return false;
  }
  if (cache.has_decomposition && isp != nullptr) {
    const ComponentViews& v = isp->views();
    ok = cache.bcc.num_components == isp->bcc().num_components &&
         cache.bcc.arc_component == isp->bcc().arc_component &&
         cache.bcc.is_cutpoint == isp->bcc().is_cutpoint &&
         SpansEqual64(cache.views.raw_node_begin(), v.raw_node_begin()) &&
         SpansEqual(cache.views.raw_nodes(), v.raw_nodes()) &&
         SpansEqual64(cache.views.raw_offsets(), v.raw_offsets()) &&
         SpansEqual(cache.views.raw_adj(), v.raw_adj());
    if (!ok) {
      std::fprintf(stderr, "verify: decomposition mismatch\n");
      return false;
    }
    for (uint32_t c = 0; ok && c < cache.bcc.num_components; ++c) {
      for (NodeId v_node : cache.bcc.component_nodes[c]) {
        ok &=
            cache.tree.OutReach(c, v_node) == isp->tree().OutReach(c, v_node);
      }
    }
    if (!ok) {
      std::fprintf(stderr, "verify: block-cut-tree out-reach mismatch\n");
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Parse(argc, argv, &args)) {
    Usage(argv[0]);
    return 2;
  }

  // Capture the source stat *before* parsing: a source edited while the
  // (potentially long) conversion runs must leave a cache that tests stale.
  SgrWriteOptions wopts;
  wopts.compact_ids = args.compact_ids;
  Status st = CaptureSourceStat(args.input, &wopts);
  if (!st.ok()) {
    std::fprintf(stderr, "cannot stat %s: %s\n", args.input.c_str(),
                 st.ToString().c_str());
    return 1;
  }

  Timer timer;
  Graph g;
  st = args.format == "dimacs"
           ? LoadDimacsGraph(args.input, &g)
           : LoadSnapEdgeList(args.input, &g, args.compact_ids);
  if (!st.ok()) {
    std::fprintf(stderr, "failed to load %s: %s\n", args.input.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "parsed %s in %s\n", g.DebugString().c_str(),
               FormatDuration(timer.ElapsedSeconds()).c_str());
  std::unique_ptr<IspIndex> isp;
  if (args.graph_only) {
    timer.Restart();
    st = WriteSgr(args.output, g, nullptr, nullptr, nullptr, nullptr, wopts);
  } else {
    timer.Restart();
    IspOptions iopts;
    iopts.bicomp_threads = args.bicomp_threads;
    isp = std::make_unique<IspIndex>(g, iopts);
    std::fprintf(stderr,
                 "decomposition: %u bi-components in %s\n",
                 isp->num_components(),
                 FormatDuration(timer.ElapsedSeconds()).c_str());
    timer.Restart();
    st = WriteSgr(args.output, g, &isp->bcc(), &isp->conn(), &isp->views(),
                  &isp->tree(), wopts);
  }
  if (!st.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", args.output.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  std::error_code ec;
  const auto bytes = std::filesystem::file_size(args.output, ec);
  std::fprintf(stderr, "wrote %s (%llu bytes) in %s\n", args.output.c_str(),
               static_cast<unsigned long long>(ec ? 0 : bytes),
               FormatDuration(timer.ElapsedSeconds()).c_str());

  if (args.verify) {
    if (!Verify(args.output, g, isp.get())) return 1;
    std::fprintf(stderr, "verify: cache matches the text pipeline\n");
  }
  return 0;
}
