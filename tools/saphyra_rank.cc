// saphyra_rank — command-line node ranking.
//
// Loads a graph, picks (or reads) a target subset, and ranks it by
// betweenness centrality with SaPHyRa_bc, ABRA or KADABRA.
//
// Usage:
//   saphyra_rank --graph edges.txt [--format snap|dimacs|sgr|auto]
//                [--targets targets.txt | --random-targets K]
//                [--algorithm saphyra|saphyra-full|abra|kadabra]
//                [--epsilon 0.05] [--delta 0.01] [--topk K] [--seed 1]
//                [--strategy auto|topdown|hybrid]
//                [--lcc] [--no-cache] [--output ranking.tsv]
//
// All algorithms run on the shared progressive sampling scheduler. By
// default they sample until every estimate carries the (--epsilon,
// --delta) guarantee; with --topk K they stop as soon as the K
// highest-ranked nodes are separated from the rest by their confidence
// intervals, which typically needs far fewer samples.
//
// Loading is cache-aware: when `<graph>.sgr` exists and is fresh (see
// tools/graph_convert.cc and README.md, "The .sgr binary cache"), the graph
// *and* its preprocessing are mmap'ed from the cache instead of re-parsing
// the text and re-running the decomposition; --no-cache forces the text
// path. A `.sgr` file can also be passed directly as --graph.
//
// --strategy picks the BFS traversal policy of the sampling kernels
// (graph/frontier.h): `auto` (default) and `hybrid` use the
// direction-optimizing top-down/bottom-up kernel, `topdown` forces the
// classic push. Purely an execution choice — estimates are bitwise
// identical for a fixed seed whichever policy runs (ABRA keeps its own
// truncated traversal and ignores the flag).
//
// The targets file holds one node id per line ('#' comments allowed).
// Output: "<rank>\t<node>\t<estimate>" sorted by rank; diagnostics go to
// stderr.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/abra.h"
#include "baselines/kadabra.h"
#include "bc/saphyra_bc.h"
#include "graph/binary_io.h"
#include "graph/frontier.h"
#include "graph/connectivity.h"
#include "graph/io.h"
#include "metrics/rank.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace saphyra;

namespace {

struct Args {
  std::string graph_path;
  std::string format = "auto";
  std::string targets_path;
  size_t random_targets = 0;
  std::string algorithm = "saphyra";
  double epsilon = 0.05;
  double delta = 0.01;
  uint64_t topk = 0;
  uint64_t seed = 1;
  TraversalPolicy traversal = TraversalPolicy::kAuto;
  bool lcc = false;
  bool no_cache = false;
  std::string output;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --graph FILE [--format snap|dimacs|sgr|auto]\n"
      "          [--targets FILE | --random-targets K]\n"
      "          [--algorithm saphyra|saphyra-full|abra|kadabra]\n"
      "          [--epsilon E] [--delta D] [--topk K] [--seed S] [--lcc]\n"
      "          [--strategy auto|topdown|hybrid]\n"
      "          [--no-cache] [--output FILE]\n",
      argv0);
}

bool Parse(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    const char* val = nullptr;
    if (key == "--lcc") {
      args->lcc = true;
    } else if (key == "--no-cache") {
      args->no_cache = true;
    } else if (key == "--graph" && (val = next())) {
      args->graph_path = val;
    } else if (key == "--format" && (val = next())) {
      args->format = val;
    } else if (key == "--targets" && (val = next())) {
      args->targets_path = val;
    } else if (key == "--random-targets" && (val = next())) {
      args->random_targets = std::strtoull(val, nullptr, 10);
    } else if (key == "--algorithm" && (val = next())) {
      args->algorithm = val;
    } else if (key == "--epsilon" && (val = next())) {
      args->epsilon = std::atof(val);
    } else if (key == "--delta" && (val = next())) {
      args->delta = std::atof(val);
    } else if (key == "--topk" && (val = next())) {
      args->topk = std::strtoull(val, nullptr, 10);
    } else if (key == "--seed" && (val = next())) {
      args->seed = std::strtoull(val, nullptr, 10);
    } else if (key == "--strategy" && (val = next())) {
      if (!ParseTraversalPolicy(val, &args->traversal)) {
        std::fprintf(stderr, "unknown --strategy %s\n", val);
        return false;
      }
    } else if (key == "--output" && (val = next())) {
      args->output = val;
    } else {
      std::fprintf(stderr, "unknown or incomplete option: %s\n", key.c_str());
      return false;
    }
  }
  if (args->graph_path.empty()) {
    std::fprintf(stderr, "--graph is required\n");
    return false;
  }
  if (!args->targets_path.empty() && args->random_targets > 0) {
    std::fprintf(stderr, "--targets and --random-targets are exclusive\n");
    return false;
  }
  return true;
}

bool LoadTargets(const std::string& path, NodeId num_nodes,
                 std::vector<NodeId>* targets) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open targets file %s\n", path.c_str());
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    uint64_t id = std::strtoull(line.c_str(), nullptr, 10);
    if (id >= num_nodes) {
      std::fprintf(stderr, "target id %llu out of range (n=%u)\n",
                   static_cast<unsigned long long>(id), num_nodes);
      return false;
    }
    targets->push_back(static_cast<NodeId>(id));
  }
  std::sort(targets->begin(), targets->end());
  targets->erase(std::unique(targets->begin(), targets->end()),
                 targets->end());
  return !targets->empty();
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Parse(argc, argv, &args)) {
    Usage(argv[0]);
    return 2;
  }

  Timer timer;
  GraphCache cache;
  LoadGraphOptions lopts;
  lopts.format = args.format;
  lopts.use_cache = !args.no_cache;
  bool from_cache = false;
  Status st = LoadGraphAuto(args.graph_path, lopts, &cache, &from_cache);
  if (!st.ok()) {
    std::fprintf(stderr, "failed to load graph: %s\n", st.ToString().c_str());
    return 1;
  }
  Graph g = std::move(cache.graph);
  if (args.lcc) {
    // The cached decomposition labels the full graph; renumbering to the
    // giant component invalidates it.
    g = LargestComponent(g);
    cache.has_decomposition = false;
  }
  std::fprintf(stderr, "loaded %s in %s%s\n", g.DebugString().c_str(),
               FormatDuration(timer.ElapsedSeconds()).c_str(),
               from_cache ? " (.sgr cache)" : "");
  if (g.num_nodes() < 2) {
    std::fprintf(stderr, "graph too small to rank\n");
    return 1;
  }

  std::vector<NodeId> targets;
  if (!args.targets_path.empty()) {
    if (!LoadTargets(args.targets_path, g.num_nodes(), &targets)) return 1;
  } else if (args.random_targets > 0) {
    Rng rng(args.seed ^ 0xA5A5A5A5ULL);
    std::vector<NodeId> all(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) all[v] = v;
    size_t k = std::min<size_t>(args.random_targets, all.size());
    for (size_t i = 0; i < k; ++i) {
      size_t j = i + rng.UniformInt(all.size() - i);
      std::swap(all[i], all[j]);
    }
    all.resize(k);
    targets = std::move(all);
  } else {
    targets.resize(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) targets[v] = v;
  }
  std::fprintf(stderr,
               "ranking %zu target nodes with %s (eps=%g, delta=%g%s)\n",
               targets.size(), args.algorithm.c_str(), args.epsilon,
               args.delta,
               args.topk > 0 ? ", top-k separation mode" : "");

  timer.Restart();
  std::vector<double> estimates;
  if (args.algorithm == "saphyra" || args.algorithm == "saphyra-full") {
    std::unique_ptr<IspIndex> isp_ptr =
        cache.has_decomposition
            ? std::make_unique<IspIndex>(g, std::move(cache))
            : std::make_unique<IspIndex>(g);
    IspIndex& isp = *isp_ptr;
    SaphyraBcOptions opts;
    opts.epsilon = args.epsilon;
    opts.delta = args.delta;
    opts.seed = args.seed;
    opts.top_k = args.topk;
    opts.traversal = args.traversal;
    SaphyraBcResult res =
        args.algorithm == "saphyra-full"
            ? RunSaphyraBcFull(isp, opts)
            : RunSaphyraBc(isp, targets, opts);
    if (args.algorithm == "saphyra-full") {
      estimates.reserve(targets.size());
      for (NodeId v : targets) estimates.push_back(res.bc[v]);
    } else {
      estimates = std::move(res.bc);
    }
    std::fprintf(stderr,
                 "samples=%llu/%llu eta=%.4f lambda_hat=%.4f vc=%.0f\n",
                 static_cast<unsigned long long>(res.samples_used),
                 static_cast<unsigned long long>(res.max_samples), res.eta,
                 res.lambda_hat, res.vc_bound);
  } else if (args.algorithm == "abra") {
    AbraOptions opts;
    opts.epsilon = args.epsilon;
    opts.delta = args.delta;
    opts.seed = args.seed;
    opts.top_k = args.topk;
    AbraResult res = RunAbra(g, opts);
    for (NodeId v : targets) estimates.push_back(res.bc[v]);
  } else if (args.algorithm == "kadabra") {
    KadabraOptions opts;
    opts.epsilon = args.epsilon;
    opts.delta = args.delta;
    opts.seed = args.seed;
    opts.top_k = args.topk;
    opts.traversal = args.traversal;
    KadabraResult res = RunKadabra(g, opts);
    for (NodeId v : targets) estimates.push_back(res.bc[v]);
  } else {
    std::fprintf(stderr, "unknown algorithm %s\n", args.algorithm.c_str());
    return 2;
  }
  std::fprintf(stderr, "ranked in %s\n",
               FormatDuration(timer.ElapsedSeconds()).c_str());

  std::vector<uint32_t> ranks = RanksDescending(estimates);
  std::vector<size_t> order(targets.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return ranks[a] < ranks[b]; });

  std::ofstream file_out;
  std::ostream* out = nullptr;
  if (!args.output.empty()) {
    file_out.open(args.output);
    if (!file_out) {
      std::fprintf(stderr, "cannot open %s\n", args.output.c_str());
      return 1;
    }
    out = &file_out;
  }
  for (size_t i : order) {
    if (out != nullptr) {
      *out << ranks[i] << '\t' << targets[i] << '\t' << estimates[i] << '\n';
    } else {
      std::printf("%u\t%u\t%.10f\n", ranks[i], targets[i], estimates[i]);
    }
  }
  return 0;
}
