#include "bc/path_sampler.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "bicomp/biconnected.h"
#include "graph/generators.h"
#include "test_util.h"

namespace saphyra {
namespace {

using testing::AllShortestPaths;
using testing::MakeGraph;
using testing::PaperFig2Graph;
using testing::RandomConnectedGraph;

std::string PathKey(const std::vector<NodeId>& nodes) {
  std::string key;
  for (NodeId v : nodes) {
    key += std::to_string(v);
    key += ',';
  }
  return key;
}

class PathSamplerStrategies
    : public ::testing::TestWithParam<SamplingStrategy> {};

TEST_P(PathSamplerStrategies, FindsTheUniquePath) {
  Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  PathSampler sampler(g, nullptr);
  Rng rng(1);
  PathSample path;
  ASSERT_TRUE(sampler.SampleUniformPath(0, 3, kInvalidComp, GetParam(), &rng,
                                        &path));
  EXPECT_EQ(path.nodes, (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(path.length, 3u);
  EXPECT_DOUBLE_EQ(path.num_paths, 1.0);
}

TEST_P(PathSamplerStrategies, AdjacentPairIsLengthOne) {
  Graph g = MakeGraph(3, {{0, 1}, {1, 2}});
  PathSampler sampler(g, nullptr);
  Rng rng(2);
  PathSample path;
  ASSERT_TRUE(sampler.SampleUniformPath(0, 1, kInvalidComp, GetParam(), &rng,
                                        &path));
  EXPECT_EQ(path.nodes, (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(path.length, 1u);
}

TEST_P(PathSamplerStrategies, UnreachableReturnsFalse) {
  Graph g = MakeGraph(4, {{0, 1}, {2, 3}});
  PathSampler sampler(g, nullptr);
  Rng rng(3);
  PathSample path;
  EXPECT_FALSE(sampler.SampleUniformPath(0, 3, kInvalidComp, GetParam(), &rng,
                                         &path));
  EXPECT_FALSE(path.found);
}

TEST_P(PathSamplerStrategies, CountsAllShortestPaths) {
  // 4-cycle: two shortest paths between opposite corners.
  Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  PathSampler sampler(g, nullptr);
  Rng rng(4);
  PathSample path;
  ASSERT_TRUE(sampler.SampleUniformPath(0, 2, kInvalidComp, GetParam(), &rng,
                                        &path));
  EXPECT_DOUBLE_EQ(path.num_paths, 2.0);
  EXPECT_EQ(path.length, 2u);
}

TEST_P(PathSamplerStrategies, SigmaMatchesEnumerationOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Graph g = RandomConnectedGraph(20, 0.15, seed);
    PathSampler sampler(g, nullptr);
    Rng rng(seed);
    PathSample path;
    for (NodeId s = 0; s < g.num_nodes(); s += 3) {
      for (NodeId t = 0; t < g.num_nodes(); t += 2) {
        if (s == t) continue;
        auto paths = AllShortestPaths(g, s, t);
        ASSERT_TRUE(sampler.SampleUniformPath(s, t, kInvalidComp, GetParam(),
                                              &rng, &path));
        EXPECT_DOUBLE_EQ(path.num_paths,
                         static_cast<double>(paths.size()))
            << s << "->" << t;
        EXPECT_EQ(path.length, paths[0].size() - 1);
      }
    }
  }
}

TEST_P(PathSamplerStrategies, SampledPathsAreValidShortestPaths) {
  Graph g = RandomConnectedGraph(30, 0.1, 77);
  PathSampler sampler(g, nullptr);
  Rng rng(78);
  PathSample path;
  for (int i = 0; i < 500; ++i) {
    NodeId s = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    NodeId t = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    if (s == t) continue;
    ASSERT_TRUE(sampler.SampleUniformPath(s, t, kInvalidComp, GetParam(),
                                          &rng, &path));
    ASSERT_GE(path.nodes.size(), 2u);
    EXPECT_EQ(path.nodes.front(), s);
    EXPECT_EQ(path.nodes.back(), t);
    // Consecutive nodes adjacent; length consistent.
    for (size_t j = 1; j < path.nodes.size(); ++j) {
      EXPECT_TRUE(g.HasEdge(path.nodes[j - 1], path.nodes[j]));
    }
    EXPECT_EQ(path.length + 1, path.nodes.size());
  }
}

TEST_P(PathSamplerStrategies, UniformOverAllShortestPaths) {
  // Two parallel 2-hop routes plus structure: verify empirical uniformity.
  Graph g = MakeGraph(6, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}});
  PathSampler sampler(g, nullptr);
  Rng rng(5);
  PathSample path;
  auto expected = AllShortestPaths(g, 0, 5);
  ASSERT_EQ(expected.size(), 2u);
  std::map<std::string, int> counts;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    ASSERT_TRUE(sampler.SampleUniformPath(0, 5, kInvalidComp, GetParam(),
                                          &rng, &path));
    ++counts[PathKey(path.nodes)];
  }
  ASSERT_EQ(counts.size(), 2u);
  for (auto& [key, c] : counts) {
    EXPECT_NEAR(c / static_cast<double>(kDraws), 0.5, 0.02) << key;
  }
}

TEST_P(PathSamplerStrategies, UniformityOnDiamondLattice) {
  // 2x3 grid: many equal-length paths between opposite corners.
  Graph g = MakeGraph(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5},
                          {0, 3}, {1, 4}, {2, 5}});
  auto expected = AllShortestPaths(g, 0, 5);
  ASSERT_EQ(expected.size(), 3u);  // RRD, RDR, DRR
  PathSampler sampler(g, nullptr);
  Rng rng(6);
  PathSample path;
  std::map<std::string, int> counts;
  constexpr int kDraws = 30000;
  for (int i = 0; i < kDraws; ++i) {
    ASSERT_TRUE(sampler.SampleUniformPath(0, 5, kInvalidComp, GetParam(),
                                          &rng, &path));
    ++counts[PathKey(path.nodes)];
  }
  ASSERT_EQ(counts.size(), 3u);
  for (auto& [key, c] : counts) {
    EXPECT_NEAR(c / static_cast<double>(kDraws), 1.0 / 3.0, 0.02) << key;
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, PathSamplerStrategies,
                         ::testing::Values(SamplingStrategy::kBidirectional,
                                           SamplingStrategy::kUnidirectional));

TEST(PathSampler, ComponentRestrictionStaysInComponent) {
  Graph g = PaperFig2Graph();
  auto bcc = ComputeBiconnectedComponents(g);
  PathSampler sampler(g, &bcc.arc_component);
  Rng rng(9);
  PathSample path;
  // Pentagon component: find its id via edge (0,1).
  uint32_t pent = bcc.arc_component[g.offset(0)];
  std::set<NodeId> pent_nodes(bcc.component_nodes[pent].begin(),
                              bcc.component_nodes[pent].end());
  for (int i = 0; i < 2000; ++i) {
    // Sample paths between pentagon members only.
    NodeId s = bcc.component_nodes[pent][rng.UniformInt(5)];
    NodeId t = bcc.component_nodes[pent][rng.UniformInt(5)];
    if (s == t) continue;
    ASSERT_TRUE(sampler.SampleUniformPath(s, t, pent,
                                          SamplingStrategy::kBidirectional,
                                          &rng, &path));
    for (NodeId v : path.nodes) ASSERT_TRUE(pent_nodes.count(v) > 0);
  }
}

TEST(PathSampler, RestrictionChangesDistances) {
  // Square with a chord through an external path: restricting to the square
  // component forces the in-square route.
  Graph g = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {1, 4}});
  auto bcc = ComputeBiconnectedComponents(g);
  uint32_t square = bcc.arc_component[g.offset(0)];
  PathSampler sampler(g, &bcc.arc_component);
  Rng rng(10);
  PathSample path;
  ASSERT_TRUE(sampler.SampleUniformPath(0, 2, square,
                                        SamplingStrategy::kBidirectional,
                                        &rng, &path));
  EXPECT_EQ(path.length, 2u);
  EXPECT_DOUBLE_EQ(path.num_paths, 2.0);
}

TEST(PathSampler, BidirectionalAgreesWithUnidirectionalSigma) {
  Graph g = RandomConnectedGraph(40, 0.08, 55);
  PathSampler sampler(g, nullptr);
  Rng rng(56);
  PathSample bi, uni;
  for (int i = 0; i < 300; ++i) {
    NodeId s = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    NodeId t = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    if (s == t) continue;
    ASSERT_TRUE(sampler.SampleUniformPath(
        s, t, kInvalidComp, SamplingStrategy::kBidirectional, &rng, &bi));
    ASSERT_TRUE(sampler.SampleUniformPath(
        s, t, kInvalidComp, SamplingStrategy::kUnidirectional, &rng, &uni));
    EXPECT_EQ(bi.length, uni.length);
    EXPECT_DOUBLE_EQ(bi.num_paths, uni.num_paths);
  }
}

TEST(PathSampler, ArcsScannedReported) {
  Graph g = RandomConnectedGraph(50, 0.05, 60);
  PathSampler sampler(g, nullptr);
  Rng rng(61);
  PathSample path;
  ASSERT_TRUE(sampler.SampleUniformPath(0, 49, kInvalidComp,
                                        SamplingStrategy::kBidirectional,
                                        &rng, &path));
  EXPECT_GT(sampler.last_arcs_scanned(), 0u);
  // Each side scans every directed arc at most once.
  EXPECT_LE(sampler.last_arcs_scanned(), 2 * g.num_arcs());
}

}  // namespace
}  // namespace saphyra
