#include "graph/generators.h"

#include <gtest/gtest.h>

#include "graph/bfs.h"
#include "graph/connectivity.h"

namespace saphyra {
namespace {

TEST(ErdosRenyi, ExactEdgeCount) {
  Graph g = ErdosRenyi(100, 300, 7);
  EXPECT_EQ(g.num_nodes(), 100u);
  EXPECT_EQ(g.num_edges(), 300u);
}

TEST(ErdosRenyi, DeterministicForSeed) {
  Graph a = ErdosRenyi(50, 100, 42);
  Graph b = ErdosRenyi(50, 100, 42);
  EXPECT_EQ(a.UndirectedEdges(), b.UndirectedEdges());
}

TEST(ErdosRenyi, DifferentSeedsDiffer) {
  Graph a = ErdosRenyi(50, 100, 1);
  Graph b = ErdosRenyi(50, 100, 2);
  EXPECT_NE(a.UndirectedEdges(), b.UndirectedEdges());
}

TEST(ErdosRenyi, CompleteGraphPossible) {
  Graph g = ErdosRenyi(6, 15, 3);
  EXPECT_EQ(g.num_edges(), 15u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 5u);
}

TEST(BarabasiAlbert, ConnectedByConstruction) {
  Graph g = BarabasiAlbert(500, 3, 11);
  EXPECT_EQ(g.num_nodes(), 500u);
  EXPECT_TRUE(IsConnected(g));
}

TEST(BarabasiAlbert, EdgeCountApproximatelyNM) {
  const NodeId n = 1000, m = 4;
  Graph g = BarabasiAlbert(n, m, 13);
  // Seed clique + m per added node, minus rare dedups.
  EXPECT_GE(g.num_edges(), static_cast<EdgeIndex>((n - m - 1) * m));
  EXPECT_LE(g.num_edges(), static_cast<EdgeIndex>(n) * m + m * (m + 1) / 2);
}

TEST(BarabasiAlbert, HeavyTailHubExists) {
  Graph g = BarabasiAlbert(2000, 2, 17);
  // Preferential attachment should produce a hub far above the mean degree.
  EXPECT_GT(g.max_degree(), 8 * 2u);
}

TEST(WattsStrogatz, RegularRingWithoutRewiring) {
  Graph g = WattsStrogatz(20, 4, 0.0, 19);
  for (NodeId v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_TRUE(IsConnected(g));
}

TEST(WattsStrogatz, RewiringKeepsConnectivity) {
  Graph g = WattsStrogatz(300, 6, 0.1, 23);
  EXPECT_TRUE(IsConnected(g));
  EXPECT_EQ(g.num_nodes(), 300u);
}

TEST(Rmat, NodeCountIsPowerOfTwo) {
  Graph g = Rmat(8, 4, 29);
  EXPECT_EQ(g.num_nodes(), 256u);
  EXPECT_GT(g.num_edges(), 0u);
  EXPECT_LE(g.num_edges(), 256u * 4);
}

TEST(Rmat, SkewProducesHub) {
  Graph g = Rmat(10, 8, 31);
  EXPECT_GT(g.max_degree(), 40u);
}

TEST(RandomTree, HasExactlyNMinus1Edges) {
  Graph g = RandomTree(200, 37);
  EXPECT_EQ(g.num_edges(), 199u);
  EXPECT_TRUE(IsConnected(g));
}

TEST(RandomTree, SingleNode) {
  Graph g = RandomTree(1, 39);
  EXPECT_EQ(g.num_nodes(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(RoadGrid, FullGridIsConnectedLattice) {
  RoadNetwork road = RoadGrid(10, 8, 1.0, 41);
  EXPECT_EQ(road.graph.num_nodes(), 80u);
  // Full lattice: (w-1)*h + w*(h-1) edges.
  EXPECT_EQ(road.graph.num_edges(), 9u * 8 + 10 * 7);
  EXPECT_TRUE(IsConnected(road.graph));
}

TEST(RoadGrid, SparseGridIsConnectedLcc) {
  RoadNetwork road = RoadGrid(40, 40, 0.75, 43);
  EXPECT_TRUE(IsConnected(road.graph));
  EXPECT_GT(road.graph.num_nodes(), 800u);  // LCC keeps most of the grid
  EXPECT_EQ(road.x.size(), road.graph.num_nodes());
  EXPECT_EQ(road.y.size(), road.graph.num_nodes());
}

TEST(RoadGrid, HasLongDiameter) {
  RoadNetwork road = RoadGrid(60, 4, 0.95, 47);
  EXPECT_GE(TwoSweepDiameterLowerBound(road.graph), 50u);
}

TEST(RoadGrid, CoordinatesMatchLattice) {
  RoadNetwork road = RoadGrid(5, 5, 1.0, 53);
  // Every edge of a full lattice joins nodes at L1 distance 1.
  for (auto [u, v] : road.graph.UndirectedEdges()) {
    float d = std::abs(road.x[u] - road.x[v]) + std::abs(road.y[u] - road.y[v]);
    EXPECT_FLOAT_EQ(d, 1.0f);
  }
}

TEST(NodesInRectangle, SelectsWindow) {
  RoadNetwork road = RoadGrid(10, 10, 1.0, 59);
  auto nodes = NodesInRectangle(road, 2.0f, 3.0f, 4.0f, 5.0f);
  EXPECT_EQ(nodes.size(), 9u);  // 3 x 3 window
  for (NodeId v : nodes) {
    EXPECT_GE(road.x[v], 2.0f);
    EXPECT_LE(road.x[v], 4.0f);
    EXPECT_GE(road.y[v], 3.0f);
    EXPECT_LE(road.y[v], 5.0f);
  }
}

TEST(PatchConnect, ConnectsDisconnectedGraph) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(2, 3);
  b.AddEdge(4, 5);
  Graph g;
  ASSERT_TRUE(b.Build(6, &g).ok());
  EXPECT_FALSE(IsConnected(g));
  Graph patched = PatchConnect(g, 61);
  EXPECT_TRUE(IsConnected(patched));
  EXPECT_EQ(patched.num_edges(), 5u);
}

TEST(PatchConnect, NoOpOnConnectedGraph) {
  Graph g = BarabasiAlbert(50, 2, 67);
  Graph patched = PatchConnect(g, 67);
  EXPECT_EQ(patched.num_edges(), g.num_edges());
}


TEST(StochasticBlockModel, DenseWithinSparseAcross) {
  const NodeId n = 400;
  Graph g = StochasticBlockModel(n, 4, 0.2, 0.005, 71);
  // Count within- vs cross-block edges.
  auto block_of = [&](NodeId v) { return std::min<NodeId>(v / 100, 3); };
  uint64_t within = 0, across = 0;
  for (auto [u, v] : g.UndirectedEdges()) {
    (block_of(u) == block_of(v) ? within : across) += 1;
  }
  // Expected: within ~ 4 * C(100,2) * 0.2 = 3960; across ~ 60000*0.005=300.
  EXPECT_NEAR(static_cast<double>(within), 3960.0, 400.0);
  EXPECT_NEAR(static_cast<double>(across), 300.0, 120.0);
}

TEST(StochasticBlockModel, SingleBlockMatchesErdosRenyiDensity) {
  Graph g = StochasticBlockModel(300, 1, 0.05, 0.0, 73);
  double expected = 300.0 * 299.0 / 2.0 * 0.05;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 150.0);
}

TEST(StochasticBlockModel, ZeroProbabilitiesGiveEmptyGraph) {
  Graph g = StochasticBlockModel(100, 4, 0.0, 0.0, 75);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(StochasticBlockModel, DeterministicForSeed) {
  EXPECT_EQ(StochasticBlockModel(200, 2, 0.1, 0.01, 5).UndirectedEdges(),
            StochasticBlockModel(200, 2, 0.1, 0.01, 5).UndirectedEdges());
}

TEST(PowerLawDegreeSequence, RespectsBoundsAndParity) {
  auto degrees = PowerLawDegreeSequence(1000, 2.5, 2, 100, 77);
  uint64_t sum = 0;
  for (NodeId d : degrees) {
    EXPECT_GE(d, 2u);
    EXPECT_LE(d, 101u);  // +1 possible from the parity patch
    sum += d;
  }
  EXPECT_EQ(sum % 2, 0u);
}

TEST(PowerLawDegreeSequence, HeavyTail) {
  auto degrees = PowerLawDegreeSequence(5000, 2.1, 1, 500, 79);
  uint64_t ones = 0;
  NodeId max_d = 0;
  for (NodeId d : degrees) {
    ones += (d <= 2);
    max_d = std::max(max_d, d);
  }
  EXPECT_GT(ones, 2500u);  // most nodes have tiny degree
  EXPECT_GT(max_d, 50u);   // but hubs exist
}

TEST(ConfigurationModel, DegreesApproximatelyRealized) {
  std::vector<NodeId> degrees = {3, 3, 2, 2, 2, 2, 1, 1};
  Graph g = ConfigurationModel(degrees, 81);
  EXPECT_EQ(g.num_nodes(), 8u);
  // Dedup/self-loop removal can only lower degrees.
  uint64_t realized = 0;
  for (NodeId v = 0; v < 8; ++v) {
    EXPECT_LE(g.degree(v), degrees[v]);
    realized += g.degree(v);
  }
  EXPECT_GE(realized, 8u);  // most stubs survive
}

TEST(ConfigurationModel, PowerLawSequenceProducesHub) {
  auto degrees = PowerLawDegreeSequence(2000, 2.2, 1, 200, 83);
  Graph g = ConfigurationModel(degrees, 85);
  EXPECT_GT(g.max_degree(), 30u);
  EXPECT_GT(g.num_edges(), 1000u);
}

TEST(ConfigurationModel, RegularGraph) {
  std::vector<NodeId> degrees(100, 4);
  Graph g = ConfigurationModel(degrees, 87);
  for (NodeId v = 0; v < 100; ++v) EXPECT_LE(g.degree(v), 4u);
  EXPECT_GT(g.num_edges(), 150u);  // most of the 200 stub pairs survive
}

// All generators must be deterministic in their seed.
class GeneratorDeterminism : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratorDeterminism, SameSeedSameGraph) {
  uint64_t seed = GetParam();
  EXPECT_EQ(BarabasiAlbert(200, 2, seed).UndirectedEdges(),
            BarabasiAlbert(200, 2, seed).UndirectedEdges());
  EXPECT_EQ(Rmat(7, 3, seed).UndirectedEdges(),
            Rmat(7, 3, seed).UndirectedEdges());
  EXPECT_EQ(RoadGrid(12, 12, 0.8, seed).graph.UndirectedEdges(),
            RoadGrid(12, 12, 0.8, seed).graph.UndirectedEdges());
  EXPECT_EQ(WattsStrogatz(60, 4, 0.2, seed).UndirectedEdges(),
            WattsStrogatz(60, 4, 0.2, seed).UndirectedEdges());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorDeterminism,
                         ::testing::Values(1, 2, 3, 99, 12345));

}  // namespace
}  // namespace saphyra
