// Robustness suite: deterministic deadline truncation at the estimator
// level, the scheduler's failure paths (shutdown cancel, drain deadline,
// admission shed), and — in -DSAPHYRA_FAILPOINTS=ON builds — injected
// faults across the serving stack (estimator throw mid-wave, index-build
// failure, admission failure, deadline-degraded runs). The tests assert
// the contract of DESIGN.md's "Degradation contract": truncation is
// deterministic, errors are structured, and degraded or failed runs never
// poison the memo LRU.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/kadabra.h"
#include "bc/saphyra_bc.h"
#include "bicomp/isp.h"
#include "graph/binary_io.h"
#include "graph/io.h"
#include "service/query.h"
#include "service/scheduler.h"
#include "service/session.h"
#include "test_util.h"
#include "util/cancel.h"
#include "util/failpoint.h"

namespace saphyra {
namespace {

using testing::RandomConnectedGraph;

std::string TempPath(const std::string& stem) {
  return "/tmp/saphyra_robustness_test_" + std::to_string(::getpid()) + "_" +
         stem;
}

/// A text graph file + its full `.sgr` cache, removed on destruction.
struct GraphFiles {
  std::string text_path = TempPath("graph.txt");
  std::string sgr_path;

  explicit GraphFiles(const Graph& g) {
    sgr_path = SgrCachePathFor(text_path);
    SAPHYRA_CHECK(SaveSnapEdgeList(g, text_path).ok());
    Graph parsed;
    SAPHYRA_CHECK(LoadSnapEdgeList(text_path, &parsed).ok());
    IspIndex isp(parsed);
    SgrWriteOptions wopts;
    wopts.source_path = text_path;
    SAPHYRA_CHECK(WriteSgr(sgr_path, parsed, &isp.bcc(), &isp.conn(),
                           &isp.views(), &isp.tree(), wopts)
                      .ok());
  }
  ~GraphFiles() {
    std::remove(text_path.c_str());
    std::remove(sgr_path.c_str());
  }
};

std::unique_ptr<QuerySession> OpenSession(const GraphFiles& files) {
  std::unique_ptr<QuerySession> session;
  SAPHYRA_CHECK(QuerySession::Open(files.text_path, {}, &session).ok());
  return session;
}

QueryRequest BcQuery(const std::string& id, std::vector<NodeId> targets) {
  QueryRequest req;
  req.id = id;
  req.estimator = EstimatorKind::kBc;
  req.targets = std::move(targets);
  return req;
}

/// Spin until `pred()` holds (scheduler counters are the only signal the
/// orchestration tests have); dies loudly instead of hanging forever.
template <typename Pred>
void AwaitOrDie(Pred pred, const char* what) {
  for (int i = 0; i < 20000; ++i) {
    if (pred()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "timed out waiting for " << what;
}

// ---------------------------------------------------------------------------
// Deterministic truncation at the estimator level (tier-1, no failpoints).
// ---------------------------------------------------------------------------

TEST(DegradedDeterminismTest, SaphyraBcTruncationIsBitwiseReproducible) {
  Graph g = RandomConnectedGraph(200, 0.02, 11);
  IspIndex isp(g);
  const std::vector<NodeId> targets{3, 5, 7, 9};

  SaphyraBcOptions opts;
  opts.epsilon = 0.02;
  opts.delta = 0.1;
  opts.seed = 42;
  SaphyraBcResult full = RunSaphyraBc(isp, targets, opts);
  ASSERT_FALSE(full.degraded);

  auto truncated = [&](uint64_t polls) {
    CancelToken token;  // fresh per run: the budget is consumed
    token.CancelAfterPolls(polls);
    SaphyraBcOptions o = opts;
    o.cancel = &token;
    return RunSaphyraBc(isp, targets, o);
  };

  SaphyraBcResult a = truncated(4);
  SaphyraBcResult b = truncated(4);
  EXPECT_TRUE(a.degraded);
  EXPECT_EQ(a.degrade_reason, StatusCode::kCancelled);
  // Same seed + same truncation point => identical bytes, the property
  // that makes deadline-degraded serving debuggable at all.
  EXPECT_EQ(a.bc, b.bc);
  EXPECT_EQ(a.samples_used, b.samples_used);
  EXPECT_EQ(a.epsilon_achieved, b.epsilon_achieved);
  // Truncation only ever shortens the deterministic sample sequence.
  EXPECT_LE(a.samples_used, full.samples_used);
  SaphyraBcResult c = truncated(6);
  EXPECT_GE(c.samples_used, a.samples_used);
}

TEST(DegradedDeterminismTest, KadabraTruncationIsBitwiseReproducible) {
  Graph g = RandomConnectedGraph(150, 0.03, 7);

  KadabraOptions opts;
  opts.epsilon = 0.03;
  opts.delta = 0.1;
  opts.seed = 9;
  KadabraResult full = RunKadabra(g, opts);
  ASSERT_FALSE(full.degraded);

  auto truncated = [&] {
    CancelToken token;
    token.CancelAfterPolls(3);
    KadabraOptions o = opts;
    o.cancel = &token;
    return RunKadabra(g, o);
  };
  KadabraResult a = truncated();
  KadabraResult b = truncated();
  EXPECT_TRUE(a.degraded);
  EXPECT_EQ(a.degrade_reason, StatusCode::kCancelled);
  EXPECT_EQ(a.bc, b.bc);
  EXPECT_EQ(a.samples_used, b.samples_used);
  EXPECT_EQ(a.epsilon_achieved, b.epsilon_achieved);
  EXPECT_LE(a.samples_used, full.samples_used);
}

// ---------------------------------------------------------------------------
// Scheduler shutdown paths (tier-1: driven by the server token alone).
// ---------------------------------------------------------------------------

TEST(SchedulerShutdownTest, CancelledServerAnswersCancelled) {
  GraphFiles files(RandomConnectedGraph(60, 0.05, 5));
  auto session = OpenSession(files);
  CancelToken server;
  server.Cancel();
  SchedulerOptions opts;
  opts.server_cancel = &server;
  BatchScheduler sched(session.get(), opts);

  QueryResult res = sched.Run(BcQuery("q1", {1, 2}));
  EXPECT_EQ(res.status.code(), StatusCode::kCancelled);
  EXPECT_NE(res.status.message().find("queued query q1"), std::string::npos);
  const std::string line = SerializeQueryResult(res);
  EXPECT_NE(line.find("\"code\":\"CANCELLED\""), std::string::npos);

  SchedulerStats stats = sched.stats();
  EXPECT_EQ(stats.queries, 1u);
  EXPECT_EQ(stats.computed, 0u);
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_EQ(stats.cancelled, 1u);
}

TEST(SchedulerShutdownTest, ExpiredDrainDeadlineAnswersDeadlineExceeded) {
  GraphFiles files(RandomConnectedGraph(60, 0.05, 5));
  auto session = OpenSession(files);
  CancelToken server;
  server.TightenDeadline(Deadline::AfterMillis(0));  // drain window over
  SchedulerOptions opts;
  opts.server_cancel = &server;
  BatchScheduler sched(session.get(), opts);

  QueryResult res = sched.Run(BcQuery("q1", {1}));
  EXPECT_EQ(res.status.code(), StatusCode::kDeadlineExceeded);
  const std::string line = SerializeQueryResult(res);
  EXPECT_NE(line.find("\"code\":\"DEADLINE_EXCEEDED\""), std::string::npos);

  SchedulerStats stats = sched.stats();
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_EQ(stats.cancelled, 0u);  // deadline, not hard cancel
  EXPECT_EQ(stats.computed, 0u);
}

// ---------------------------------------------------------------------------
// Injected faults (only in -DSAPHYRA_FAILPOINTS=ON builds; the CI
// fault-injection job runs these).
// ---------------------------------------------------------------------------

class SchedulerFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fail::kBuiltWithFailpoints) {
      GTEST_SKIP() << "build has no failpoint registry";
    }
    fail::ClearAll();
  }
  void TearDown() override {
    if (fail::kBuiltWithFailpoints) fail::ClearAll();
  }
};

TEST_F(SchedulerFaultTest, AdmissionFaultIsStructuredError) {
  GraphFiles files(RandomConnectedGraph(60, 0.05, 5));
  auto session = OpenSession(files);
  BatchScheduler sched(session.get(), {});

  ASSERT_TRUE(fail::Inject("scheduler.admit", "1*error(admission down)"));
  QueryResult res = sched.Run(BcQuery("q1", {1}));
  EXPECT_EQ(res.status.code(), StatusCode::kInternal);
  EXPECT_NE(res.status.message().find("injected fault"), std::string::npos);
  EXPECT_EQ(sched.stats().errors, 1u);

  // The failpoint disarmed itself; the scheduler carries no residue.
  QueryResult ok = sched.Run(BcQuery("q2", {1}));
  EXPECT_TRUE(ok.status.ok());
  EXPECT_EQ(ok.mode, ServeMode::kComputed);
}

TEST_F(SchedulerFaultTest, IndexBuildFaultSurfacesAndRetries) {
  GraphFiles files(RandomConnectedGraph(60, 0.05, 5));
  auto session = OpenSession(files);
  BatchScheduler sched(session.get(), {});

  ASSERT_TRUE(fail::Inject("session.index", "1*throw(index build died)"));
  QueryResult res = sched.Run(BcQuery("q1", {1, 2}));
  EXPECT_EQ(res.status.code(), StatusCode::kInternal);
  EXPECT_NE(res.status.message().find("query execution failed"),
            std::string::npos);
  EXPECT_NE(res.status.message().find("index build died"), std::string::npos);
  EXPECT_FALSE(session->index_built());

  // std::call_once does not latch on an exception: the next bc query
  // rebuilds the index and succeeds.
  QueryResult ok = sched.Run(BcQuery("q2", {1, 2}));
  EXPECT_TRUE(ok.status.ok());
  EXPECT_TRUE(session->index_built());
}

TEST_F(SchedulerFaultTest, WaveThrowCompletesEntryAndReleasesWaiters) {
  GraphFiles files(RandomConnectedGraph(60, 0.05, 5));
  auto session = OpenSession(files);
  session->isp();  // pre-build: this test is about the sampling wave
  SchedulerOptions opts;
  opts.max_concurrent = 1;
  BatchScheduler sched(session.get(), opts);

  // Park the owner in long waves, attach a duplicate waiter, then swap
  // the site's action to a throw: the owner's next wave dies mid-run.
  ASSERT_TRUE(fail::Inject("sampler.wave", "sleep(200)"));
  const QueryRequest query = BcQuery("owner", {1, 2, 3});
  QueryResult owner_res;
  std::thread owner([&] { owner_res = sched.Run(query); });
  AwaitOrDie([&] { return sched.stats().computed >= 1; }, "owner slot");

  QueryRequest dup = query;
  dup.id = "dup";
  QueryResult dup_res;
  std::thread waiter([&] { dup_res = sched.Run(dup); });
  AwaitOrDie([&] { return sched.stats().dedup_hits >= 1; }, "dup waiter");

  ASSERT_TRUE(fail::Inject("sampler.wave", "1*throw(mid-wave fault)"));
  owner.join();
  waiter.join();

  // The owner completed the in-flight entry with the structured error and
  // the duplicate was released with the same status — no wedged waiter.
  EXPECT_EQ(owner_res.status.code(), StatusCode::kInternal);
  EXPECT_NE(owner_res.status.message().find("query execution failed"),
            std::string::npos);
  EXPECT_NE(owner_res.status.message().find("mid-wave fault"),
            std::string::npos);
  EXPECT_EQ(dup_res.status.code(), StatusCode::kInternal);
  EXPECT_EQ(dup_res.id, "dup");
  EXPECT_EQ(dup_res.mode, ServeMode::kDeduped);

  SchedulerStats stats = sched.stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.computed, 1u);
  EXPECT_EQ(stats.dedup_hits, 1u);
  EXPECT_EQ(stats.errors, 1u);  // the owner; the waiter shares its result
  EXPECT_EQ(stats.memo_hits, 0u);

  // The failed run was not memoized: the same key now recomputes cleanly.
  fail::ClearAll();
  QueryResult retry = sched.Run(query);
  EXPECT_TRUE(retry.status.ok());
  EXPECT_EQ(retry.mode, ServeMode::kComputed);
  EXPECT_EQ(sched.stats().computed, 2u);
  EXPECT_EQ(sched.stats().memo_hits, 0u);
}

TEST_F(SchedulerFaultTest, FullQueueShedsWithResourceExhausted) {
  GraphFiles files(RandomConnectedGraph(60, 0.05, 5));
  auto session = OpenSession(files);
  session->isp();
  SchedulerOptions opts;
  opts.max_concurrent = 1;
  opts.max_queue = 1;
  BatchScheduler sched(session.get(), opts);

  // Owner holds the only slot inside slow waves; one distinct query queues
  // behind it (waiting = max_queue); the third is shed immediately.
  ASSERT_TRUE(fail::Inject("sampler.wave", "sleep(150)"));
  QueryResult r1, r2;
  std::thread owner([&] { r1 = sched.Run(BcQuery("q1", {1})); });
  AwaitOrDie([&] { return sched.stats().computed >= 1; }, "owner slot");
  std::thread queued([&] { r2 = sched.Run(BcQuery("q2", {2})); });
  AwaitOrDie([&] { return sched.stats().queries >= 2; }, "queued owner");

  QueryResult shed = sched.Run(BcQuery("q3", {3}));
  EXPECT_EQ(shed.status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(shed.status.message().find("admission queue full (max_queue=1)"),
            std::string::npos);
  EXPECT_NE(SerializeQueryResult(shed).find("\"code\":\"RESOURCE_EXHAUSTED\""),
            std::string::npos);

  fail::ClearAll();  // let the parked queries finish quickly
  owner.join();
  queued.join();
  EXPECT_TRUE(r1.status.ok());
  EXPECT_TRUE(r2.status.ok());
  SchedulerStats stats = sched.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.errors, 1u);
}

TEST_F(SchedulerFaultTest, DeadlineDegradedResultIsNeverMemoized) {
  GraphFiles files(RandomConnectedGraph(60, 0.05, 5));
  auto session = OpenSession(files);
  BatchScheduler sched(session.get(), {});

  // Every wave sleeps well past the 1 ms budget, so the run is guaranteed
  // to truncate — deterministically degraded, whatever the machine.
  ASSERT_TRUE(fail::Inject("sampler.wave", "sleep(30)"));
  QueryRequest req = BcQuery("q1", {1, 2, 3});
  req.deadline_ms = 1;

  QueryResult first = sched.Run(req);
  ASSERT_TRUE(first.status.ok());
  EXPECT_TRUE(first.degraded);
  EXPECT_EQ(first.mode, ServeMode::kComputed);
  EXPECT_NE(SerializeQueryResult(first).find("\"degraded\":true"),
            std::string::npos);

  // A degraded result must not satisfy the next identical request from
  // the memo: its bytes depend on where the clock cut the run.
  QueryResult second = sched.Run(req);
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.degraded);
  EXPECT_EQ(second.mode, ServeMode::kComputed);
  SchedulerStats stats = sched.stats();
  EXPECT_EQ(stats.memo_hits, 0u);
  EXPECT_EQ(stats.computed, 2u);
  EXPECT_EQ(stats.degraded, 2u);
  EXPECT_EQ(stats.errors, 0u);  // degraded is a success mode, not an error
}

}  // namespace
}  // namespace saphyra
