#include "metrics/rank.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace saphyra {
namespace {

TEST(RanksDescending, LargestGetsRankOne) {
  auto r = RanksDescending({0.1, 0.9, 0.5});
  EXPECT_EQ(r, (std::vector<uint32_t>{3, 1, 2}));
}

TEST(RanksDescending, TiesBrokenById) {
  auto r = RanksDescending({0.5, 0.5, 0.5});
  EXPECT_EQ(r, (std::vector<uint32_t>{1, 2, 3}));
}

TEST(Spearman, PerfectCorrelation) {
  EXPECT_DOUBLE_EQ(SpearmanCorrelation({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0);
}

TEST(Spearman, PerfectAntiCorrelation) {
  EXPECT_DOUBLE_EQ(SpearmanCorrelation({1, 2, 3, 4}, {4, 3, 2, 1}), -1.0);
}

TEST(Spearman, KnownTextbookValue) {
  // Ranks truth: values 1..5 -> ranks 5..1; estimate swaps two adjacent
  // items: d = (0,0,1,1,0), sum d^2 = 2 -> 1 - 12/120 = 0.9.
  std::vector<double> truth = {5, 4, 3, 2, 1};
  std::vector<double> est = {5, 4, 2, 3, 1};
  EXPECT_NEAR(SpearmanCorrelation(truth, est), 0.9, 1e-12);
}

TEST(Spearman, ScaleInvariant) {
  std::vector<double> truth = {0.3, 0.1, 0.7, 0.2};
  std::vector<double> a = {3, 1, 7, 2};
  std::vector<double> b = {300, 100, 700, 200};
  EXPECT_DOUBLE_EQ(SpearmanCorrelation(truth, a),
                   SpearmanCorrelation(truth, b));
}

TEST(Kendall, PerfectAndReversed) {
  EXPECT_DOUBLE_EQ(KendallTau({1, 2, 3}, {4, 5, 6}), 1.0);
  EXPECT_DOUBLE_EQ(KendallTau({1, 2, 3}, {3, 2, 1}), -1.0);
}

TEST(Kendall, SingleSwap) {
  // One discordant pair out of 6: tau = 1 - 2/6 = 2/3.
  EXPECT_NEAR(KendallTau({4, 3, 2, 1}, {4, 3, 1, 2}), 2.0 / 3.0, 1e-12);
}

TEST(Kendall, MatchesQuadraticOracleOnRandomInputs) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    size_t k = 2 + rng.UniformInt(30);
    std::vector<double> a(k), b(k);
    for (size_t i = 0; i < k; ++i) {
      a[i] = rng.UniformDouble();
      b[i] = rng.UniformDouble();
    }
    auto ra = RanksDescending(a);
    auto rb = RanksDescending(b);
    long concordant = 0, discordant = 0;
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = i + 1; j < k; ++j) {
        bool same = (ra[i] < ra[j]) == (rb[i] < rb[j]);
        (same ? concordant : discordant) += 1;
      }
    }
    double expected = static_cast<double>(concordant - discordant) /
                      (static_cast<double>(k) * (k - 1) / 2.0);
    EXPECT_NEAR(KendallTau(a, b), expected, 1e-12) << "trial " << trial;
  }
}

TEST(RankDeviation, ZeroForIdenticalRanking) {
  EXPECT_DOUBLE_EQ(RankDeviation({3, 2, 1}, {30, 20, 10}), 0.0);
}

TEST(RankDeviation, SingleItemIsZero) {
  EXPECT_DOUBLE_EQ(RankDeviation({5.0}, {1.0}), 0.0);
}

TEST(RankDeviation, ReversedRanking) {
  // k=4 reversed: |d| = 3,1,1,3 -> mean 2 -> /k = 0.5.
  EXPECT_DOUBLE_EQ(RankDeviation({4, 3, 2, 1}, {1, 2, 3, 4}), 0.5);
}

TEST(RelativeError, SignedPercentages) {
  auto err = SignedRelativeErrorPercent({1.0, 2.0, 4.0}, {1.1, 1.0, 4.0});
  EXPECT_NEAR(err[0], 10.0, 1e-9);
  EXPECT_NEAR(err[1], -50.0, 1e-9);
  EXPECT_NEAR(err[2], 0.0, 1e-9);
}

TEST(RelativeError, ZeroTruthCases) {
  auto err = SignedRelativeErrorPercent({0.0, 0.0}, {0.0, 0.5});
  EXPECT_DOUBLE_EQ(err[0], 0.0);
  EXPECT_TRUE(std::isinf(err[1]));
}

TEST(RelativeError, FalseZeroIsMinus100) {
  auto err = SignedRelativeErrorPercent({0.25}, {0.0});
  EXPECT_DOUBLE_EQ(err[0], -100.0);
}

TEST(ClassifyZeros, AllBuckets) {
  ZeroStats s = ClassifyZeros({0.0, 0.5, 0.7, 0.0}, {0.0, 0.0, 0.3, 0.1});
  EXPECT_EQ(s.true_zeros, 1u);
  EXPECT_EQ(s.false_zeros, 1u);
  EXPECT_EQ(s.nonzeros, 2u);
}

TEST(TrialAggregate, MeanMinMax) {
  TrialAggregate agg;
  for (double x : {1.0, 2.0, 3.0, 4.0}) agg.Add(x);
  EXPECT_EQ(agg.count(), 4u);
  EXPECT_DOUBLE_EQ(agg.mean(), 2.5);
  EXPECT_DOUBLE_EQ(agg.min(), 1.0);
  EXPECT_DOUBLE_EQ(agg.max(), 4.0);
}

TEST(TrialAggregate, StdDevMatchesSampleFormula) {
  TrialAggregate agg;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) agg.Add(x);
  EXPECT_NEAR(agg.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(TrialAggregate, Ci95Shrinks) {
  TrialAggregate small, large;
  Rng rng(1);
  for (int i = 0; i < 10; ++i) small.Add(rng.UniformDouble());
  for (int i = 0; i < 1000; ++i) large.Add(rng.UniformDouble());
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
}

TEST(TrialAggregate, SingleValueHasZeroSpread) {
  TrialAggregate agg;
  agg.Add(3.14);
  EXPECT_DOUBLE_EQ(agg.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(agg.ci95_half_width(), 0.0);
}

}  // namespace
}  // namespace saphyra
