#include "graph/graph.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/rng.h"

namespace saphyra {
namespace {

using testing::MakeGraph;

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
}

TEST(GraphBuilder, BasicTriangle) {
  Graph g = MakeGraph(3, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.num_arcs(), 6u);
  for (NodeId v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(GraphBuilder, DropsSelfLoops) {
  GraphBuilder b;
  b.AddEdge(0, 0);
  b.AddEdge(0, 1);
  b.AddEdge(1, 1);
  Graph g;
  ASSERT_TRUE(b.Build(2, &g).ok());
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilder, DeduplicatesParallelEdges) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);
  b.AddEdge(0, 1);
  Graph g;
  ASSERT_TRUE(b.Build(2, &g).ok());
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(GraphBuilder, RejectsOutOfRangeEndpoint) {
  GraphBuilder b;
  b.AddEdge(0, 5);
  Graph g;
  Status st = b.Build(3, &g);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(GraphBuilder, AutoSizesToMaxIdPlusOne) {
  GraphBuilder b;
  b.AddEdge(2, 7);
  Graph g;
  ASSERT_TRUE(b.Build(&g).ok());
  EXPECT_EQ(g.num_nodes(), 8u);
}

TEST(GraphBuilder, IsolatedNodesAllowed) {
  Graph g = MakeGraph(5, {{0, 1}});
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.degree(4), 0u);
}

TEST(Graph, AdjacencyIsSorted) {
  Graph g = MakeGraph(6, {{3, 1}, {3, 5}, {3, 0}, {3, 4}, {3, 2}});
  auto nbr = g.neighbors(3);
  EXPECT_TRUE(std::is_sorted(nbr.begin(), nbr.end()));
  EXPECT_EQ(nbr.size(), 5u);
}

TEST(Graph, HasEdge) {
  Graph g = MakeGraph(4, {{0, 1}, {1, 2}});
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(2, 1));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(3, 0));
  EXPECT_FALSE(g.HasEdge(0, 99));
}

TEST(Graph, MaxDegree) {
  Graph g = MakeGraph(5, {{0, 1}, {0, 2}, {0, 3}, {3, 4}});
  EXPECT_EQ(g.max_degree(), 3u);
}

TEST(Graph, UndirectedEdgesRoundTrip) {
  std::vector<std::pair<NodeId, NodeId>> edges = {{0, 1}, {1, 2}, {0, 3}};
  Graph g = MakeGraph(4, edges);
  auto got = g.UndirectedEdges();
  std::sort(got.begin(), got.end());
  std::sort(edges.begin(), edges.end());
  EXPECT_EQ(got, edges);
}

TEST(Graph, OffsetConsistentWithDegrees) {
  Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_EQ(g.offset(0), 0u);
  EdgeIndex sum = 0;
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(g.offset(v), sum);
    sum += g.degree(v);
  }
  EXPECT_EQ(sum, g.num_arcs());
}

TEST(Graph, DebugStringMentionsCounts) {
  Graph g = MakeGraph(3, {{0, 1}, {1, 2}});
  std::string s = g.DebugString();
  EXPECT_NE(s.find("n=3"), std::string::npos);
  EXPECT_NE(s.find("m=2"), std::string::npos);
}

// Property sweep: the CSR graph must agree with a simple adjacency-set
// oracle on random inputs with duplicates and self loops.
class GraphRandomizedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GraphRandomizedTest, MatchesAdjacencySetOracle) {
  Rng rng(GetParam());
  const NodeId n = 2 + static_cast<NodeId>(rng.UniformInt(40));
  const int raw_edges = static_cast<int>(rng.UniformInt(200));
  GraphBuilder b;
  std::set<std::pair<NodeId, NodeId>> oracle;
  for (int i = 0; i < raw_edges; ++i) {
    NodeId u = static_cast<NodeId>(rng.UniformInt(n));
    NodeId v = static_cast<NodeId>(rng.UniformInt(n));
    b.AddEdge(u, v);
    if (u != v) {
      oracle.insert(std::minmax(u, v));
    }
  }
  Graph g;
  ASSERT_TRUE(b.Build(n, &g).ok());
  EXPECT_EQ(g.num_edges(), oracle.size());
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      bool expected = u != v && oracle.count(std::minmax(u, v)) > 0;
      EXPECT_EQ(g.HasEdge(u, v), expected) << u << "-" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphRandomizedTest,
                         ::testing::Range<uint64_t>(0, 12));

}  // namespace
}  // namespace saphyra
