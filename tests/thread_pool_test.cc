#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace saphyra {
namespace {

TEST(ThreadPool, RespectsRequestedThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  pool.ParallelFor(0, 1000, [&](size_t i) { touched[i].fetch_add(1); });
  for (auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPool, ParallelForWithGrain) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  pool.ParallelFor(
      10, 110, [&](size_t i) { sum.fetch_add(static_cast<long>(i)); },
      /*grain=*/7);
  long expected = 0;
  for (long i = 10; i < 110; ++i) expected += i;
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.ParallelFor(5, 5, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 0);
}

TEST(ThreadPool, SequentialBatchesReuseWorkers) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 10; ++round) {
    pool.ParallelFor(0, 50, [&](size_t) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 10);
}

}  // namespace
}  // namespace saphyra
