#include "stats/delta_allocation.h"

#include <numeric>

#include <gtest/gtest.h>

#include "stats/empirical_bernstein.h"

namespace saphyra {
namespace {

TEST(DeltaAllocation, SumsToBudget) {
  std::vector<double> vars = {0.0, 0.01, 0.1, 0.25};
  double budget = 0.01;
  auto deltas = AllocateDeltas(vars, 0.05, budget, 64, 100000);
  ASSERT_EQ(deltas.size(), vars.size());
  double total = 0.0;
  for (double d : deltas) total += 2.0 * d;
  EXPECT_NEAR(total, budget, 1e-12);
}

TEST(DeltaAllocation, AllPositive) {
  std::vector<double> vars = {0.25, 0.25, 0.0};
  auto deltas = AllocateDeltas(vars, 0.01, 0.005, 64, 1 << 20);
  for (double d : deltas) EXPECT_GT(d, 0.0);
}

TEST(DeltaAllocation, HighVarianceGetsLargerShare) {
  // A low-variance hypothesis meets eps' even with a tiny delta, so the
  // budget concentrates on the hard, high-variance hypothesis.
  std::vector<double> vars = {0.001, 0.25};
  auto deltas = AllocateDeltas(vars, 0.05, 0.01, 128, 1 << 22);
  EXPECT_GT(deltas[1], deltas[0]);
}

TEST(DeltaAllocation, EqualVariancesEqualShares) {
  std::vector<double> vars(5, 0.04);
  auto deltas = AllocateDeltas(vars, 0.05, 0.02, 64, 1 << 20);
  for (size_t i = 1; i < deltas.size(); ++i) {
    EXPECT_NEAR(deltas[i], deltas[0], 1e-12);
  }
}

TEST(DeltaAllocation, EmptyInput) {
  auto deltas = AllocateDeltas({}, 0.05, 0.01, 64, 1024);
  EXPECT_TRUE(deltas.empty());
}

TEST(DeltaAllocation, SingleHypothesisGetsHalfBudget) {
  auto deltas = AllocateDeltas({0.1}, 0.05, 0.01, 64, 1 << 20);
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_NEAR(deltas[0], 0.005, 1e-12);
}

TEST(DeltaAllocation, InfeasibleVarianceStillCovered) {
  // eps' so small nothing is feasible even at n_max: fall back to positive
  // allocations that still sum to the budget.
  std::vector<double> vars = {0.25, 0.25};
  auto deltas = AllocateDeltas(vars, 1e-8, 0.01, 64, 128);
  double total = 0.0;
  for (double d : deltas) {
    EXPECT_GT(d, 0.0);
    total += 2.0 * d;
  }
  EXPECT_NEAR(total, 0.01, 1e-12);
}

TEST(DeltaAllocation, DeltasNeverExceedHalf) {
  auto deltas = AllocateDeltas({0.0, 0.0, 0.0}, 0.5, 0.9, 64, 1024);
  for (double d : deltas) EXPECT_LE(d, 0.5);
}

}  // namespace
}  // namespace saphyra
