// End-to-end distributional tests of the Gen_bc sampler (Algorithm 2):
// the empirical frequency of every sampled path must match the PISP
// distribution conditioned on the approximate subspace (Lemma 20), and the
// SampleTarget fallback paths (bridges, dominant-out-reach cutpoints) must
// produce the exact conditional distribution.

#include <cmath>
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "bc/exact_subspace.h"
#include "bc/path_sampler.h"
#include "bicomp/isp.h"
#include "test_util.h"

namespace saphyra {
namespace {

using testing::AllShortestPaths;
using testing::MakeGraph;
using testing::PaperFig2Graph;

std::string Key(const std::vector<NodeId>& nodes) {
  std::string k;
  for (NodeId v : nodes) {
    k += std::to_string(v);
    k += ',';
  }
  return k;
}

// Enumerate Pr[x = p | p not in exact subspace] over the PISP space.
std::map<std::string, double> EnumerateApproxDistribution(
    const PersonalizedSpace& space) {
  const IspIndex& isp = space.isp();
  const Graph& g = isp.graph();
  std::map<std::string, double> prob;
  double kept_mass = 0.0;
  for (uint32_t c : space.component_ids()) {
    const auto& nodes = isp.bcc().component_nodes[c];
    std::function<bool(EdgeIndex)> arc_ok = [&](EdgeIndex e) {
      return isp.bcc().arc_component[e] == c;
    };
    for (NodeId s : nodes) {
      for (NodeId t : nodes) {
        if (s == t) continue;
        auto paths = AllShortestPaths(g, s, t, &arc_ok);
        double p_path = isp.PairMass(c, s, t) /
                        (isp.gamma() * space.eta()) / paths.size();
        for (const auto& p : paths) {
          if (InExactSubspace(space, p)) continue;
          prob[Key(p)] += p_path;
          kept_mass += p_path;
        }
      }
    }
  }
  for (auto& [k, v] : prob) v /= kept_mass;  // condition on the rejection
  return prob;
}

void RunDistributionCheck(const Graph& g, const std::vector<NodeId>& targets,
                          uint64_t seed, int draws) {
  IspIndex isp(g);
  PersonalizedSpace space(isp, targets);
  auto expected = EnumerateApproxDistribution(space);
  ASSERT_FALSE(expected.empty());

  PathSampler sampler(g, &isp.bcc().arc_component);
  Rng rng(seed);
  PathSample path;
  std::map<std::string, int> counts;
  for (int i = 0; i < draws; ++i) {
    for (;;) {
      uint32_t c = space.SampleComponent(&rng);
      NodeId s = isp.SampleSource(c, &rng);
      NodeId t = isp.SampleTarget(c, s, &rng);
      ASSERT_TRUE(sampler.SampleUniformPath(
          s, t, c, SamplingStrategy::kBidirectional, &rng, &path));
      if (InExactSubspace(space, path.nodes)) continue;
      break;
    }
    ++counts[Key(path.nodes)];
  }
  // Every sampled path must be a legal outcome, and frequencies must match.
  for (auto& [key, c] : counts) {
    ASSERT_TRUE(expected.count(key) > 0) << "unexpected path " << key;
  }
  for (auto& [key, p] : expected) {
    double freq = counts[key] / static_cast<double>(draws);
    EXPECT_NEAR(freq, p, 0.015 + 3.0 * std::sqrt(p / draws)) << key;
  }
}

TEST(GenBcDistribution, PaperFig2WholeNetwork) {
  Graph g = PaperFig2Graph();
  std::vector<NodeId> all(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) all[v] = v;
  RunDistributionCheck(g, all, 1, 200000);
}

TEST(GenBcDistribution, PaperFig2SmallSubset) {
  Graph g = PaperFig2Graph();
  RunDistributionCheck(g, {1, 9}, 2, 150000);
}

TEST(GenBcDistribution, StarOfTrianglesDominantCutpoint) {
  // Center node 0 belongs to three triangles; its out-reach regarding each
  // triangle dominates, exercising the inversion fallback of SampleTarget.
  Graph g = MakeGraph(7, {{0, 1}, {1, 2}, {2, 0},    // triangle A
                          {0, 3}, {3, 4}, {4, 0},    // triangle B
                          {0, 5}, {5, 6}, {6, 0}});  // triangle C
  std::vector<NodeId> all(7);
  for (NodeId v = 0; v < 7; ++v) all[v] = v;
  RunDistributionCheck(g, all, 3, 150000);
}

TEST(GenBcDistribution, HubWithLeavesBridgeFallback) {
  // A triangle with a hub that also carries many leaf bridges: the 2-node
  // bridge components take the direct "other endpoint" path.
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);
  for (NodeId leaf = 3; leaf < 12; ++leaf) b.AddEdge(0, leaf);
  Graph g;
  ASSERT_TRUE(b.Build(12, &g).ok());
  std::vector<NodeId> all(12);
  for (NodeId v = 0; v < 12; ++v) all[v] = v;
  RunDistributionCheck(g, all, 4, 150000);
}

TEST(GenBcDistribution, PathPlusCycleMixedComponents) {
  // Cycle of 5 with a pendant path of 3: bridges + one non-trivial comp.
  Graph g = MakeGraph(8, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0},
                          {2, 5}, {5, 6}, {6, 7}});
  std::vector<NodeId> all(8);
  for (NodeId v = 0; v < 8; ++v) all[v] = v;
  RunDistributionCheck(g, all, 5, 150000);
}

TEST(GenBcDistribution, TargetSamplingConditionalOnSource) {
  // Direct check of SampleTarget's conditional law in the dominant-r case.
  Graph g = MakeGraph(7, {{0, 1}, {1, 2}, {2, 0},
                          {0, 3}, {3, 4}, {4, 0},
                          {0, 5}, {5, 6}, {6, 0}});
  IspIndex isp(g);
  // Component of triangle {0,1,2}: find it via edge (1,2).
  uint32_t comp = kInvalidComp;
  auto nbr = g.neighbors(1);
  for (size_t i = 0; i < nbr.size(); ++i) {
    if (nbr[i] == 2) comp = isp.bcc().arc_component[g.offset(1) + i];
  }
  ASSERT_NE(comp, kInvalidComp);
  // r values in this component: r(0) = 5 (itself + both other triangles),
  // r(1) = r(2) = 1.
  EXPECT_EQ(isp.OutReach(comp, 0), 5u);
  EXPECT_EQ(isp.OutReach(comp, 1), 1u);
  // Conditional on s = 0: t ∈ {1,2} each with prob 1/2.
  Rng rng(6);
  int ones = 0;
  constexpr int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) {
    NodeId t = isp.SampleTarget(comp, 0, &rng);
    ASSERT_TRUE(t == 1 || t == 2);
    ones += (t == 1);
  }
  EXPECT_NEAR(ones / static_cast<double>(kDraws), 0.5, 0.02);
  // Conditional on s = 1: t ∈ {0 (r=5), 2 (r=1)} with probs 5/6, 1/6.
  int zeros = 0;
  for (int i = 0; i < kDraws; ++i) {
    NodeId t = isp.SampleTarget(comp, 1, &rng);
    ASSERT_TRUE(t == 0 || t == 2);
    zeros += (t == 0);
  }
  EXPECT_NEAR(zeros / static_cast<double>(kDraws), 5.0 / 6.0, 0.02);
}

}  // namespace
}  // namespace saphyra
