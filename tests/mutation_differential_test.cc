// The dynamic-graph serving differential oracle: a session mutated
// through {"op":"update"} requests (delta overlay + incremental bicomp
// repair + epoch swap) must answer every query bitwise identically to a
// COLD session opened on a from-scratch re-conversion of the same edge
// set. Pinned over a generator sweep (ER, BA, WS, road grid, SBM), random
// insert/delete streams, repair fallback thread counts {1, 8}, scheduler
// admission concurrency {1, 8}, and both the local sampling path and the
// sharded worker tier (whose workers follow the coordinator through
// BroadcastUpdate + mutation-log replay).
//
// The oracle is deliberately expensive: after every mutation batch it
// rebuilds the graph from the reference edge set, recomputes the full
// decomposition, writes a fresh `.sgr`, and serves the workload on a cold
// serial session. Whatever shortcut the dynamic path takes — overlay
// materialization, incremental repair, adopted indices, epoch-chained
// memo keys, worker replay — must be invisible in the result bytes.

#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "bicomp/isp.h"
#include "graph/binary_io.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "net/frame.h"
#include "net/socket.h"
#include "service/query.h"
#include "service/scheduler.h"
#include "service/session.h"
#include "service/session_pool.h"
#include "service/shard.h"
#include "service/shard_worker.h"
#include "util/logging.h"
#include "util/rng.h"

namespace saphyra {
namespace {

using EdgeSet = std::set<std::pair<NodeId, NodeId>>;

std::string TempPath(const std::string& stem) {
  return "/tmp/saphyra_mutdiff_" + std::to_string(::getpid()) + "_" + stem;
}

EdgeSet EdgesOf(const Graph& g) {
  EdgeSet edges;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (u < v) edges.insert({u, v});
    }
  }
  return edges;
}

Graph BuildFromEdges(NodeId n, const EdgeSet& edges) {
  GraphBuilder b;
  for (const auto& [u, v] : edges) b.AddEdge(u, v);
  Graph g;
  SAPHYRA_CHECK(b.Build(n, &g).ok());
  return g;
}

/// Write `g` as text + a fully preprocessed `.sgr` next to it. The `.sgr`
/// is written from `g` itself (not a text re-parse): LoadSnapEdgeList
/// renumbers node ids in first-appearance order, and this test reasons
/// about edges in the generator's id space, so the served CSR must keep
/// those ids verbatim.
struct GraphFiles {
  std::string text_path;
  std::string sgr_path;

  GraphFiles(const Graph& g, const std::string& stem)
      : text_path(TempPath(stem + ".txt")) {
    sgr_path = SgrCachePathFor(text_path);
    SAPHYRA_CHECK(SaveSnapEdgeList(g, text_path).ok());
    IspIndex isp(g);
    SgrWriteOptions wopts;
    wopts.source_path = text_path;
    SAPHYRA_CHECK(WriteSgr(sgr_path, g, &isp.bcc(), &isp.conn(), &isp.views(),
                           &isp.tree(), wopts)
                      .ok());
  }
  ~GraphFiles() {
    std::remove(text_path.c_str());
    std::remove(sgr_path.c_str());
  }
};

/// In-process worker tier over socketpairs (the shard_test idiom): the
/// real RunWorkerLoop per incarnation, so update frames and mutation-log
/// replay exercise the production code path.
class ThreadLauncher : public WorkerLauncher {
 public:
  explicit ThreadLauncher(const std::string& graph_path)
      : graph_path_(graph_path) {}
  ~ThreadLauncher() override {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [index, inc] : incarnations_) StopLocked(inc.get());
  }

  Status Launch(uint32_t index, net::UniqueFd* conn) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = incarnations_.find(index);
    if (it != incarnations_.end()) {
      StopLocked(it->second.get());
      incarnations_.erase(it);
    }
    net::UniqueFd coord_side;
    auto inc = std::make_unique<Incarnation>();
    // Each incarnation gets a fresh pool, like a relaunched worker
    // process: it loads epoch 0 from disk and owes every mutation it has
    // missed to the supervisor's replay.
    inc->pool = std::make_unique<SessionPool>(SessionPoolOptions());
    SAPHYRA_CHECK(inc->pool->Register("g", graph_path_).ok());
    Status st = net::SocketPair(&coord_side, &inc->fd);
    if (!st.ok()) return st;
    Incarnation* raw = inc.get();
    inc->thread = std::thread([raw, index] {
      WorkerLoopOptions opts;
      opts.index = index;
      (void)RunWorkerLoop(raw->fd.get(), raw->pool.get(), opts);
      ::shutdown(raw->fd.get(), SHUT_RDWR);
    });
    std::string hello;
    st = net::RecvFrame(coord_side.get(), &hello, Deadline::AfterMillis(5000));
    if (!st.ok()) {
      StopLocked(raw);
      return st;
    }
    incarnations_[index] = std::move(inc);
    *conn = std::move(coord_side);
    return Status::OK();
  }

  void KillWorker(uint32_t index) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = incarnations_.find(index);
    if (it != incarnations_.end()) {
      ::shutdown(it->second->fd.get(), SHUT_RDWR);
    }
  }

 private:
  struct Incarnation {
    std::unique_ptr<SessionPool> pool;
    net::UniqueFd fd;
    std::thread thread;
  };
  void StopLocked(Incarnation* inc) {
    ::shutdown(inc->fd.get(), SHUT_RDWR);
    if (inc->thread.joinable()) inc->thread.join();
  }

  std::string graph_path_;
  std::mutex mu_;
  std::map<uint32_t, std::unique_ptr<Incarnation>> incarnations_;
};

/// Small but decomposition-sensitive workload: bc leans on the repaired
/// ISP index, closeness on the raw CSR.
std::vector<QueryRequest> Workload(NodeId n) {
  std::vector<QueryRequest> reqs;
  QueryRequest bc;
  bc.id = "bc";
  bc.estimator = EstimatorKind::kBc;
  bc.epsilon = 0.15;
  bc.delta = 0.05;
  bc.seed = 7;
  for (NodeId v = 0; v < std::min<NodeId>(n, 8); ++v) bc.targets.push_back(v);
  reqs.push_back(bc);

  QueryRequest cl;
  cl.id = "closeness";
  cl.estimator = EstimatorKind::kCloseness;
  cl.epsilon = 0.2;
  cl.delta = 0.05;
  cl.seed = 11;
  for (NodeId v = 0; v < std::min<NodeId>(n, 6); ++v) cl.targets.push_back(v);
  reqs.push_back(cl);
  return reqs;
}

void ExpectBitwiseEqual(const QueryResult& oracle, const QueryResult& got,
                        const std::string& what) {
  ASSERT_TRUE(oracle.status.ok()) << what << ": " << oracle.status.ToString();
  ASSERT_TRUE(got.status.ok()) << what << ": " << got.status.ToString();
  EXPECT_FALSE(got.degraded) << what;
  ASSERT_EQ(oracle.nodes, got.nodes) << what;
  ASSERT_EQ(oracle.estimates.size(), got.estimates.size()) << what;
  EXPECT_EQ(std::memcmp(oracle.estimates.data(), got.estimates.data(),
                        oracle.estimates.size() * sizeof(double)),
            0)
      << what << ": estimates differ bitwise";
  EXPECT_EQ(oracle.samples_used, got.samples_used) << what;
}

QueryRequest UpdateRequest(EdgeMutationKind kind, NodeId u, NodeId v) {
  QueryRequest req;
  req.id = "mut";
  req.op = RequestOp::kUpdate;
  req.action = kind;
  req.edge_u = u;
  req.edge_v = v;
  return req;
}

/// True when u and v stay connected after removing edge {u, v} — used to
/// keep the mutation stream connectivity-preserving, so every estimator
/// in the workload stays on its well-covered connected-graph path (the
/// disconnected regimes are pinned by the incremental bicomp tests).
bool StillConnectedWithout(NodeId n, const EdgeSet& edges, NodeId u, NodeId v) {
  std::vector<std::vector<NodeId>> adj(n);
  for (const auto& [a, b] : edges) {
    if ((a == u && b == v) || (a == v && b == u)) continue;
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  std::vector<bool> seen(n, false);
  std::vector<NodeId> queue{u};
  seen[u] = true;
  for (size_t head = 0; head < queue.size(); ++head) {
    if (queue[head] == v) return true;
    for (NodeId w : adj[queue[head]]) {
      if (!seen[w]) {
        seen[w] = true;
        queue.push_back(w);
      }
    }
  }
  return false;
}

/// Deterministic connectivity-preserving mutation stream: inserts of
/// absent edges and deletes of present-but-not-bridge edges, interleaved.
std::vector<EdgeMutation> MakeStream(NodeId n, const EdgeSet& initial,
                                     size_t count, uint64_t seed) {
  Rng rng(seed);
  EdgeSet edges = initial;
  std::vector<EdgeMutation> stream;
  size_t guard = 0;
  while (stream.size() < count && ++guard < count * 200) {
    NodeId u = static_cast<NodeId>(rng.UniformInt(n));
    NodeId v = static_cast<NodeId>(rng.UniformInt(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    const bool present = edges.count({u, v}) != 0;
    const bool want_delete = rng.UniformDouble() < 0.45;
    if (want_delete && present) {
      if (!StillConnectedWithout(n, edges, u, v)) continue;
      edges.erase({u, v});
      stream.push_back({EdgeMutationKind::kDelete, u, v});
    } else if (!want_delete && !present) {
      edges.insert({u, v});
      stream.push_back({EdgeMutationKind::kInsert, u, v});
    }
  }
  SAPHYRA_CHECK(stream.size() == count);
  return stream;
}

struct GeneratorCase {
  const char* name;
  Graph graph;
};

std::vector<GeneratorCase> GeneratorSweep() {
  std::vector<GeneratorCase> cases;
  cases.push_back({"er", PatchConnect(ErdosRenyi(48, 110, 101), 101)});
  cases.push_back({"ba", BarabasiAlbert(48, 2, 202)});
  cases.push_back({"ws", WattsStrogatz(48, 4, 0.2, 303)});
  cases.push_back({"road", RoadGrid(8, 6, 0.85, 404).graph});
  cases.push_back(
      {"sbm", PatchConnect(StochasticBlockModel(48, 4, 0.3, 0.02, 505), 505)});
  return cases;
}

/// One mutated serving stack under test: a session fed updates through a
/// scheduler, optionally via the sharded tier.
struct Variant {
  std::string label;
  std::unique_ptr<QuerySession> session;
  std::unique_ptr<ThreadLauncher> launcher;    // sharded only
  std::unique_ptr<WorkerSupervisor> supervisor;  // sharded only
  std::unique_ptr<BatchScheduler> scheduler;

  static std::unique_ptr<Variant> Make(const std::string& sgr_path,
                                       uint32_t repair_threads,
                                       uint32_t concurrency, bool sharded) {
    auto v = std::make_unique<Variant>();
    v->label = "repair_threads=" + std::to_string(repair_threads) +
               " concurrency=" + std::to_string(concurrency) +
               (sharded ? " sharded" : " local");
    SessionOptions sopts;
    sopts.repair.fallback_threads = repair_threads;
    // Force the fallback pass often enough that the thread sweep matters.
    sopts.repair.max_dirty_fraction = repair_threads > 1 ? 0.0 : 0.25;
    SAPHYRA_CHECK(QuerySession::Open(sgr_path, sopts, &v->session).ok());
    SchedulerOptions schopts;
    schopts.max_concurrent = concurrency;
    schopts.memo_capacity = 16;  // memo ON: stale hits would be caught
    schopts.allow_updates = true;
    if (sharded) {
      v->launcher = std::make_unique<ThreadLauncher>(sgr_path);
      ShardOptions shopts;
      shopts.num_workers = 2;
      shopts.heartbeat_ms = 0;
      shopts.backoff_initial_ms = 1;
      shopts.backoff_max_ms = 20;
      v->supervisor =
          std::make_unique<WorkerSupervisor>(v->launcher.get(), shopts);
      SAPHYRA_CHECK(v->supervisor->Start().ok());
      schopts.supervisor = v->supervisor.get();
    }
    v->scheduler =
        std::make_unique<BatchScheduler>(v->session.get(), schopts);
    return v;
  }
};

TEST(MutationDifferentialTest, OverlayServingMatchesFromScratchReconvert) {
  constexpr size_t kMutations = 12;
  constexpr size_t kBatch = 4;

  uint64_t stream_seed = 7000;
  for (GeneratorCase& gcase : GeneratorSweep()) {
    SCOPED_TRACE(gcase.name);
    const NodeId n = gcase.graph.num_nodes();
    GraphFiles base(gcase.graph, std::string(gcase.name) + "_base");
    EdgeSet edges = EdgesOf(gcase.graph);
    const std::vector<EdgeMutation> stream =
        MakeStream(n, edges, kMutations, ++stream_seed);
    const std::vector<QueryRequest> workload = Workload(n);

    // The sweep under test: bicomp fallback threads x admission
    // concurrency, plus the sharded tier.
    std::vector<std::unique_ptr<Variant>> variants;
    variants.push_back(Variant::Make(base.sgr_path, 1, 1, false));
    variants.push_back(Variant::Make(base.sgr_path, 8, 8, false));
    variants.push_back(Variant::Make(base.sgr_path, 1, 8, false));
    variants.push_back(Variant::Make(base.sgr_path, 8, 1, true));

    for (size_t start = 0; start < stream.size(); start += kBatch) {
      // Apply the batch to every variant (through the full request path)
      // and to the reference edge set.
      for (size_t i = start; i < std::min(stream.size(), start + kBatch);
           ++i) {
        const EdgeMutation& mut = stream[i];
        if (mut.kind == EdgeMutationKind::kInsert) {
          edges.insert({mut.u, mut.v});
        } else {
          edges.erase({mut.u, mut.v});
        }
        uint64_t fingerprint = 0;
        for (auto& variant : variants) {
          const QueryResult res = variant->scheduler->Run(
              UpdateRequest(mut.kind, mut.u, mut.v));
          ASSERT_TRUE(res.status.ok())
              << variant->label << " mutation " << i << ": "
              << res.status.ToString();
          ASSERT_EQ(res.epoch, i + 1) << variant->label;
          // Every variant must land on the same chained fingerprint —
          // that equality is what lets the coordinator drive its workers.
          if (fingerprint == 0) {
            fingerprint = res.fingerprint;
          } else {
            ASSERT_EQ(res.fingerprint, fingerprint)
                << variant->label << " mutation " << i;
          }
        }
      }

      // The oracle: re-convert the reference edge set from scratch and
      // serve the workload cold, serial, unsharded.
      GraphFiles oracle_files(BuildFromEdges(n, edges),
                              std::string(gcase.name) + "_oracle");
      std::unique_ptr<QuerySession> oracle_session;
      ASSERT_TRUE(QuerySession::Open(oracle_files.sgr_path, SessionOptions(),
                                     &oracle_session)
                      .ok());
      SchedulerOptions oracle_opts;
      oracle_opts.memo_capacity = 0;
      BatchScheduler oracle(oracle_session.get(), oracle_opts);
      const std::vector<QueryResult> expected = oracle.RunBatch(workload);

      for (auto& variant : variants) {
        const std::vector<QueryResult> got =
            variant->scheduler->RunBatch(workload);
        ASSERT_EQ(got.size(), expected.size());
        for (size_t q = 0; q < got.size(); ++q) {
          ExpectBitwiseEqual(expected[q], got[q],
                             std::string(gcase.name) + " after " +
                                 std::to_string(start + kBatch) +
                                 " mutations, " + variant->label + ", " +
                                 workload[q].id);
        }
      }
    }
    for (auto& variant : variants) {
      if (variant->supervisor != nullptr) variant->supervisor->Shutdown();
    }
  }
}

TEST(MutationDifferentialTest, CompactionIsInvisibleInResultsAndFingerprints) {
  Graph g = BarabasiAlbert(40, 2, 909);
  const NodeId n = g.num_nodes();
  GraphFiles files(g, "compact");
  const std::vector<EdgeMutation> stream =
      MakeStream(n, EdgesOf(g), 10, 6060);
  const std::vector<QueryRequest> workload = Workload(n);

  // compact_threshold 0 compacts on every update; the huge threshold
  // never compacts. Same epochs, same fingerprints, same bytes.
  SessionOptions always;
  always.compact_threshold = 0;
  SessionOptions never;
  never.compact_threshold = 1u << 30;
  std::unique_ptr<QuerySession> compacting, overlaying;
  ASSERT_TRUE(QuerySession::Open(files.sgr_path, always, &compacting).ok());
  ASSERT_TRUE(QuerySession::Open(files.sgr_path, never, &overlaying).ok());

  for (size_t i = 0; i < stream.size(); ++i) {
    UpdateOutcome a, b;
    ASSERT_TRUE(compacting->ApplyUpdate(stream[i], &a).ok());
    ASSERT_TRUE(overlaying->ApplyUpdate(stream[i], &b).ok());
    EXPECT_TRUE(a.compacted);
    EXPECT_FALSE(b.compacted);
    ASSERT_EQ(a.epoch, b.epoch);
    ASSERT_EQ(a.fingerprint, b.fingerprint) << "mutation " << i;
  }
  for (const QueryRequest& req : workload) {
    ExpectBitwiseEqual(compacting->Run(req), overlaying->Run(req),
                       "compaction sweep " + req.id);
  }
}

TEST(MutationDifferentialTest, WorkerRestartReplaysMutationLog) {
  Graph g = WattsStrogatz(40, 4, 0.15, 111);
  const NodeId n = g.num_nodes();
  GraphFiles files(g, "replay");
  const std::vector<EdgeMutation> stream =
      MakeStream(n, EdgesOf(g), 6, 8080);
  const std::vector<QueryRequest> workload = Workload(n);

  auto variant = Variant::Make(files.sgr_path, 1, 1, true);
  EdgeSet edges = EdgesOf(g);
  for (size_t i = 0; i < stream.size(); ++i) {
    const EdgeMutation& mut = stream[i];
    if (mut.kind == EdgeMutationKind::kInsert) {
      edges.insert({mut.u, mut.v});
    } else {
      edges.erase({mut.u, mut.v});
    }
    ASSERT_TRUE(
        variant->scheduler->Run(UpdateRequest(mut.kind, mut.u, mut.v))
            .status.ok());
  }

  // Kill both workers after the whole stream: their replacements load
  // epoch 0 from disk and must catch up purely from the supervisor's
  // mutation log before serving a single wave.
  variant->launcher->KillWorker(0);
  variant->launcher->KillWorker(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  GraphFiles oracle_files(BuildFromEdges(n, edges), "replay_oracle");
  std::unique_ptr<QuerySession> oracle_session;
  ASSERT_TRUE(QuerySession::Open(oracle_files.sgr_path, SessionOptions(),
                                 &oracle_session)
                  .ok());
  SchedulerOptions oracle_opts;
  oracle_opts.memo_capacity = 0;
  BatchScheduler oracle(oracle_session.get(), oracle_opts);
  const std::vector<QueryResult> expected = oracle.RunBatch(workload);
  const std::vector<QueryResult> got = variant->scheduler->RunBatch(workload);
  for (size_t q = 0; q < got.size(); ++q) {
    ExpectBitwiseEqual(expected[q], got[q],
                       "post-restart " + workload[q].id);
  }
  variant->supervisor->Shutdown();
}

}  // namespace
}  // namespace saphyra
