// Differential tests of the direction-optimizing traversal kernel: hybrid
// and pure top-down expansions must produce identical dist/σ arrays (σ
// sums are integer-valued doubles — exact, order-independent), and the
// path sampler must emit bitwise-identical samples for a fixed seed
// whichever direction discovered the meeting nodes.

#include <vector>

#include <gtest/gtest.h>

#include "bc/brandes.h"
#include "bc/path_sampler.h"
#include "bicomp/isp.h"
#include "graph/bfs.h"
#include "graph/generators.h"
#include "test_util.h"
#include "util/rng.h"

namespace saphyra {
namespace {

using testing::MakeGraph;
using testing::RandomConnectedGraph;

Graph StarGraph(NodeId leaves) {
  GraphBuilder b;
  for (NodeId v = 1; v <= leaves; ++v) b.AddEdge(0, v);
  Graph g;
  EXPECT_TRUE(b.Build(leaves + 1, &g).ok());
  return g;
}

Graph PathGraph(NodeId n) {
  GraphBuilder b;
  for (NodeId v = 0; v + 1 < n; ++v) b.AddEdge(v, v + 1);
  Graph g;
  EXPECT_TRUE(b.Build(n, &g).ok());
  return g;
}

std::vector<Graph> DifferentialFixtures() {
  std::vector<Graph> graphs;
  for (uint64_t seed = 0; seed < 4; ++seed) {
    graphs.push_back(RandomConnectedGraph(120, 0.08, seed));
  }
  graphs.push_back(StarGraph(300));   // one dense level: bottom-up fires
  graphs.push_back(PathGraph(200));   // frontiers of one: never fires
  graphs.push_back(RoadGrid(20, 17, 0.9, 5).graph);   // grid
  graphs.push_back(BarabasiAlbert(400, 4, 9));        // social profile
  return graphs;
}

TEST(BfsHybridDifferential, IdenticalDistAndSigmaOnAllFixtures) {
  for (const Graph& g : DifferentialFixtures()) {
    for (NodeId s = 0; s < g.num_nodes(); s += 13) {
      SpDag top = BfsWithCounts(g, s, nullptr, TraversalPolicy::kTopDown);
      SpDag hyb = BfsWithCounts(g, s, nullptr, TraversalPolicy::kHybrid);
      // Bitwise-equal arrays: EXPECT_EQ on vector<double> compares ==,
      // which for these integer-valued path counts is exact equality.
      EXPECT_EQ(top.dist, hyb.dist) << g.DebugString() << " s=" << s;
      EXPECT_EQ(top.sigma, hyb.sigma) << g.DebugString() << " s=" << s;
      // Both orders are level-grouped even if they differ within levels.
      for (size_t i = 1; i < hyb.order.size(); ++i) {
        EXPECT_LE(hyb.dist[hyb.order[i - 1]], hyb.dist[hyb.order[i]]);
      }
      EXPECT_EQ(top.order.size(), hyb.order.size());
    }
  }
}

TEST(BfsHybridDifferential, BottomUpActuallyFiresOnDenseFrontiers) {
  // A star from a leaf puts (n-1) frontier arcs against ~n unexplored
  // arcs at the hub level — the heuristic must flip.
  Graph star = StarGraph(300);
  BfsKernel kernel(star, TraversalPolicy::kHybrid);
  kernel.Run(1);
  EXPECT_GT(kernel.last_bottom_up_levels(), 0u);
  // And a path graph must never flip (two frontier arcs forever).
  Graph path = PathGraph(200);
  BfsKernel pk(path, TraversalPolicy::kHybrid);
  pk.Run(0);
  EXPECT_EQ(pk.last_bottom_up_levels(), 0u);
}

TEST(BfsHybridDifferential, KernelReuseMatchesFreshRuns) {
  // One kernel across many sources (the Brandes pattern) must agree with
  // fresh allocating runs — the epoch reset may not leak state.
  Graph g = RandomConnectedGraph(150, 0.05, 3);
  BfsKernel kernel(g, TraversalPolicy::kHybrid);
  for (NodeId s = 0; s < g.num_nodes(); s += 11) {
    kernel.Run(s);
    SpDag fresh = BfsWithCounts(g, s, nullptr, TraversalPolicy::kTopDown);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(kernel.dist(v), fresh.dist[v]);
      EXPECT_EQ(kernel.sigma(v), fresh.sigma[v]);
    }
  }
}

TEST(BfsHybridDifferential, BrandesPolicyIndependentWithinTolerance) {
  Graph g = RandomConnectedGraph(80, 0.06, 11);
  std::vector<double> top = BrandesBetweenness(g, TraversalPolicy::kTopDown);
  std::vector<double> hyb = BrandesBetweenness(g, TraversalPolicy::kHybrid);
  ASSERT_EQ(top.size(), hyb.size());
  for (size_t v = 0; v < top.size(); ++v) {
    // δ accumulation order differs within levels, so allow ulp-scale noise.
    EXPECT_NEAR(top[v], hyb[v], 1e-12) << v;
  }
}

/// Drives both policies through the same RNG stream and asserts the
/// sampled paths are bitwise identical — the contract that lets the
/// determinism stress run with the hybrid kernel on and off.
void ExpectSamplerPolicyInvariant(PathSampler& a, PathSampler& b,
                                  uint32_t comp,
                                  const std::vector<NodeId>& nodes,
                                  SamplingStrategy strategy, uint64_t seed) {
  a.set_traversal(TraversalPolicy::kTopDown);
  b.set_traversal(TraversalPolicy::kHybrid);
  Rng rng_a(seed), rng_b(seed);
  PathSample pa, pb;
  for (size_t i = 0; i + 1 < nodes.size(); ++i) {
    NodeId s = nodes[i], t = nodes[i + 1];
    if (s == t) continue;
    bool ok_a = a.SampleUniformPath(s, t, comp, strategy, &rng_a, &pa);
    bool ok_b = b.SampleUniformPath(s, t, comp, strategy, &rng_b, &pb);
    ASSERT_EQ(ok_a, ok_b);
    if (!ok_a) continue;
    EXPECT_EQ(pa.nodes, pb.nodes) << "s=" << s << " t=" << t;
    EXPECT_EQ(pa.num_paths, pb.num_paths);
    EXPECT_EQ(pa.length, pb.length);
  }
}

TEST(PathSamplerHybridDifferential, GlobalSubstrateBothStrategies) {
  Graph g = BarabasiAlbert(500, 5, 21);
  std::vector<NodeId> nodes;
  Rng pick(7);
  for (int i = 0; i < 400; ++i) {
    nodes.push_back(static_cast<NodeId>(pick.UniformInt(g.num_nodes())));
  }
  for (SamplingStrategy strategy : {SamplingStrategy::kBidirectional,
                                    SamplingStrategy::kUnidirectional}) {
    PathSampler a(g, nullptr), b(g, nullptr);
    ExpectSamplerPolicyInvariant(a, b, kInvalidComp, nodes, strategy, 99);
  }
}

TEST(PathSamplerHybridDifferential, ComponentViewSubstrate) {
  // Road-like graph: many biconnected components, including a grid core.
  Graph g = RoadGrid(25, 20, 0.85, 31).graph;
  IspIndex isp(g);
  PathSampler a(g, isp.views()), b(g, isp.views());
  a.set_traversal(TraversalPolicy::kTopDown);
  b.set_traversal(TraversalPolicy::kHybrid);
  Rng rng_a(5), rng_b(5);
  Rng pick(3);
  PathSample pa, pb;
  uint32_t sampled = 0;
  for (uint32_t c = 0; c < isp.views().num_components() && sampled < 500;
       ++c) {
    const NodeId size = isp.views().size(c);
    if (size < 3) continue;
    for (int i = 0; i < 20; ++i, ++sampled) {
      NodeId ls = static_cast<NodeId>(pick.UniformInt(size));
      NodeId lt = static_cast<NodeId>(pick.UniformInt(size));
      if (ls == lt) continue;
      NodeId s = isp.views().ToGlobal(c, ls);
      NodeId t = isp.views().ToGlobal(c, lt);
      ASSERT_TRUE(a.SampleUniformPath(s, t, c, SamplingStrategy::kBidirectional,
                                      &rng_a, &pa));
      ASSERT_TRUE(b.SampleUniformPath(s, t, c, SamplingStrategy::kBidirectional,
                                      &rng_b, &pb));
      EXPECT_EQ(pa.nodes, pb.nodes);
      EXPECT_EQ(pa.num_paths, pb.num_paths);
    }
  }
  EXPECT_GT(sampled, 0u);
}

TEST(PathSamplerHybridDifferential, HybridFiresOnDenseComponent) {
  // Unidirectional sampling across a star hub floods the dense level; the
  // hybrid sampler must have pulled at least once over the whole run.
  Graph g = StarGraph(400);
  PathSampler sampler(g, nullptr);
  sampler.set_traversal(TraversalPolicy::kHybrid);
  Rng rng(1);
  PathSample path;
  uint32_t bottom_up = 0;
  for (NodeId t = 1; t <= 50; ++t) {
    ASSERT_TRUE(sampler.SampleUniformPath(
        1, t == 1 ? 51 : t, kInvalidComp,
        SamplingStrategy::kUnidirectional, &rng, &path));
    bottom_up += sampler.last_bottom_up_levels();
  }
  EXPECT_GT(bottom_up, 0u);
}

}  // namespace
}  // namespace saphyra
