#include "stats/empirical_bernstein.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace saphyra {
namespace {

TEST(EmpiricalBernstein, MatchesClosedForm) {
  // eps = sqrt(2 * var * ln(2/d) / n) + 7 ln(2/d) / (3(n-1)).
  double n = 1000, d = 0.05, var = 0.04;
  double log_term = std::log(2.0 / d);
  double expected = std::sqrt(2.0 * var * log_term / n) +
                    7.0 * log_term / (3.0 * (n - 1.0));
  EXPECT_NEAR(EmpiricalBernsteinEpsilon(1000, d, var), expected, 1e-12);
}

TEST(EmpiricalBernstein, DecreasesInSampleSize) {
  double prev = EmpiricalBernsteinEpsilon(10, 0.05, 0.1);
  for (uint64_t n : {20, 40, 100, 1000, 10000}) {
    double cur = EmpiricalBernsteinEpsilon(n, 0.05, 0.1);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(EmpiricalBernstein, IncreasesAsDeltaShrinks) {
  double loose = EmpiricalBernsteinEpsilon(100, 0.2, 0.1);
  double tight = EmpiricalBernsteinEpsilon(100, 0.001, 0.1);
  EXPECT_GT(tight, loose);
}

TEST(EmpiricalBernstein, IncreasesInVariance) {
  EXPECT_LT(EmpiricalBernsteinEpsilon(100, 0.05, 0.01),
            EmpiricalBernsteinEpsilon(100, 0.05, 0.25));
}

TEST(EmpiricalBernstein, ZeroVarianceLeavesOnlyRangeTerm) {
  double d = 0.1;
  double expected = 7.0 * std::log(2.0 / d) / (3.0 * 99.0);
  EXPECT_NEAR(EmpiricalBernsteinEpsilon(100, d, 0.0), expected, 1e-12);
}

TEST(BernoulliSampleVariance, ClosedForm) {
  // ones=3, n=10: 3*7/(10*9).
  EXPECT_NEAR(BernoulliSampleVariance(3, 10), 21.0 / 90.0, 1e-12);
  EXPECT_DOUBLE_EQ(BernoulliSampleVariance(0, 10), 0.0);
  EXPECT_DOUBLE_EQ(BernoulliSampleVariance(10, 10), 0.0);
}

TEST(BernoulliSampleVariance, MaximizedAtHalf) {
  double half = BernoulliSampleVariance(50, 100);
  for (uint64_t ones : {0, 10, 25, 75, 90, 100}) {
    EXPECT_LE(BernoulliSampleVariance(ones, 100), half);
  }
}

TEST(BernoulliSampleVariance, MatchesUStatisticDefinition) {
  // Var(z) = 1/(N(N-1)) Σ_{j1<j2} (z_{j1} - z_{j2})^2 for 0/1 values with
  // c ones: the sum has c(N-c) unit terms.
  uint64_t n = 17, ones = 6;
  double expected = static_cast<double>(ones * (n - ones)) /
                    (static_cast<double>(n) * (n - 1));
  EXPECT_NEAR(BernoulliSampleVariance(ones, n), expected, 1e-12);
}

TEST(SolveDelta, RoundTripsThroughEpsilon) {
  for (double var : {0.0, 0.01, 0.1, 0.25}) {
    for (double target : {0.5, 0.1, 0.05}) {
      double d = SolveDeltaForEpsilon(10000, var, target);
      if (d > 0.0 && d < 0.5) {
        EXPECT_LE(EmpiricalBernsteinEpsilon(10000, d, var), target + 1e-9);
        // The solved delta is the largest feasible: a slightly larger delta
        // may never *reduce* the epsilon below the target boundary.
        EXPECT_GE(EmpiricalBernsteinEpsilon(10000, d * 0.5, var),
                  EmpiricalBernsteinEpsilon(10000, d, var));
      }
    }
  }
}

TEST(SolveDelta, ReturnsTinyWhenTrivial) {
  // Huge n, tiny variance: the target is met even with vanishing delta, so
  // the minimal required failure probability is essentially zero.
  double d = SolveDeltaForEpsilon(1000000, 0.0, 0.1);
  EXPECT_GT(d, 0.0);
  EXPECT_LE(EmpiricalBernsteinEpsilon(1000000, d, 0.0), 0.1);
  EXPECT_LT(d, 1e-100);
}

TEST(SolveDelta, ReturnsZeroWhenInfeasible) {
  // Tiny n, large variance, absurd target.
  EXPECT_DOUBLE_EQ(SolveDeltaForEpsilon(2, 0.25, 1e-9), 0.0);
}

// Statistical coverage property: the two-sided empirical Bernstein bound at
// confidence 1-2δ0 must cover the true mean in well over 1-2δ0 of trials.
TEST(EmpiricalBernstein, CoverageOnBernoulliSamples) {
  Rng rng(2024);
  const double p = 0.3;
  const double delta0 = 0.05;
  const uint64_t n = 400;
  int covered = 0;
  const int trials = 500;
  for (int t = 0; t < trials; ++t) {
    uint64_t ones = 0;
    for (uint64_t i = 0; i < n; ++i) ones += rng.Bernoulli(p);
    double mean = static_cast<double>(ones) / n;
    double eps = EmpiricalBernsteinEpsilon(
        n, delta0, BernoulliSampleVariance(ones, n));
    covered += std::abs(mean - p) <= eps;
  }
  // Expect at least 1 - 2*delta0 = 90% coverage (typically ~100%).
  EXPECT_GE(covered, static_cast<int>(trials * 0.9));
}

}  // namespace
}  // namespace saphyra
