#include "bicomp/component_view.h"

#include <cmath>
#include <map>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "bc/path_sampler.h"
#include "bicomp/isp.h"
#include "graph/generators.h"
#include "test_util.h"

namespace saphyra {
namespace {

using testing::MakeGraph;
using testing::PaperFig2Graph;
using testing::RandomConnectedGraph;

/// Every structural invariant of a ComponentViews against the decomposition
/// it was built from: member lists, relabeling bijection, per-node degrees,
/// arc counts, and sortedness of local adjacency.
void CheckViewsAgainstBcc(const Graph& g, const BiconnectedComponents& bcc,
                          const ComponentViews& views) {
  ASSERT_EQ(views.num_components(), bcc.num_components);
  EdgeIndex total_arcs = 0;
  NodeId max_size = 0;
  for (uint32_t c = 0; c < bcc.num_components; ++c) {
    const auto& members = bcc.component_nodes[c];
    ASSERT_EQ(views.size(c), members.size());
    max_size = std::max(max_size, static_cast<NodeId>(members.size()));
    auto view_nodes = views.nodes(c);
    for (size_t i = 0; i < members.size(); ++i) {
      EXPECT_EQ(view_nodes[i], members[i]);
      // Relabeling round-trips.
      EXPECT_EQ(views.ToGlobal(c, static_cast<NodeId>(i)), members[i]);
      EXPECT_EQ(views.ToLocal(c, members[i]), static_cast<NodeId>(i));
    }
    // Per-member adjacency matches the filtered enumeration of global arcs.
    for (size_t i = 0; i < members.size(); ++i) {
      const NodeId u = members[i];
      std::vector<NodeId> expected;  // global ids of u's comp-c neighbors
      const EdgeIndex base = g.offset(u);
      const auto nbr = g.neighbors(u);
      for (size_t j = 0; j < nbr.size(); ++j) {
        if (bcc.arc_component[base + j] == c) expected.push_back(nbr[j]);
      }
      const auto local_nbr = views.Neighbors(c, static_cast<NodeId>(i));
      ASSERT_EQ(views.Degree(c, static_cast<NodeId>(i)), expected.size());
      ASSERT_EQ(local_nbr.size(), expected.size());
      for (size_t j = 0; j < expected.size(); ++j) {
        EXPECT_EQ(views.ToGlobal(c, local_nbr[j]), expected[j]);
        if (j > 0) EXPECT_LT(local_nbr[j - 1], local_nbr[j]);  // sorted
      }
    }
    // Arc count of the view equals the arcs labeled c.
    EdgeIndex labeled = 0;
    for (EdgeIndex e = 0; e < g.num_arcs(); ++e) {
      if (bcc.arc_component[e] == c) ++labeled;
    }
    EXPECT_EQ(views.num_arcs(c), labeled);
    total_arcs += views.num_arcs(c);
  }
  // Every arc belongs to exactly one component view.
  EXPECT_EQ(total_arcs, g.num_arcs());
  EXPECT_EQ(views.max_component_size(), max_size);
}

TEST(ComponentViews, PaperFig2Invariants) {
  Graph g = PaperFig2Graph();
  auto bcc = ComputeBiconnectedComponents(g);
  ComponentViews views(g, bcc);
  CheckViewsAgainstBcc(g, bcc, views);
}

TEST(ComponentViews, RandomGraphInvariants) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Graph g = RandomConnectedGraph(60, 0.05, seed);
    auto bcc = ComputeBiconnectedComponents(g);
    ComponentViews views(g, bcc);
    CheckViewsAgainstBcc(g, bcc, views);
  }
}

TEST(ComponentViews, LeafHeavyHubGraph) {
  // A hub with many bridges: every bridge is its own 2-node view and the
  // hub's local adjacency within a bridge has exactly one entry.
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);
  for (NodeId leaf = 3; leaf < 40; ++leaf) b.AddEdge(0, leaf);
  Graph g;
  ASSERT_TRUE(b.Build(40, &g).ok());
  auto bcc = ComputeBiconnectedComponents(g);
  ComponentViews views(g, bcc);
  CheckViewsAgainstBcc(g, bcc, views);
  int bridges = 0;
  for (uint32_t c = 0; c < views.num_components(); ++c) {
    if (views.size(c) == 2) {
      ++bridges;
      EXPECT_EQ(views.num_arcs(c), 2u);
      EXPECT_EQ(views.Degree(c, 0), 1u);
      EXPECT_EQ(views.Degree(c, 1), 1u);
    }
  }
  EXPECT_EQ(bridges, 37);
}

TEST(ComponentViews, ToLocalRejectsNonMembers) {
  Graph g = PaperFig2Graph();
  auto bcc = ComputeBiconnectedComponents(g);
  ComponentViews views(g, bcc);
  // Pentagon component {a,b,c,d,e} = {0..4}: f (5) is not a member.
  uint32_t pent = bcc.arc_component[g.offset(0)];
  EXPECT_EQ(views.ToLocal(pent, 5), kInvalidNode);
  EXPECT_NE(views.ToLocal(pent, 0), kInvalidNode);
}

TEST(ComponentViews, BuiltInsideIspIndex) {
  Graph g = RandomConnectedGraph(80, 0.04, 11);
  IspIndex isp(g);
  CheckViewsAgainstBcc(g, isp.bcc(), isp.views());
}

std::string PathKey(const std::vector<NodeId>& nodes) {
  std::string key;
  for (NodeId v : nodes) {
    key += std::to_string(v);
    key += ',';
  }
  return key;
}

TEST(ComponentViewSampling, RestrictedPathsStayInComponent) {
  Graph g = PaperFig2Graph();
  IspIndex isp(g);
  PathSampler sampler(g, isp.views());
  Rng rng(9);
  PathSample path;
  uint32_t pent = isp.bcc().arc_component[g.offset(0)];
  std::set<NodeId> pent_nodes(isp.bcc().component_nodes[pent].begin(),
                              isp.bcc().component_nodes[pent].end());
  for (int i = 0; i < 2000; ++i) {
    NodeId s = isp.bcc().component_nodes[pent][rng.UniformInt(5)];
    NodeId t = isp.bcc().component_nodes[pent][rng.UniformInt(5)];
    if (s == t) continue;
    ASSERT_TRUE(sampler.SampleUniformPath(s, t, pent,
                                          SamplingStrategy::kBidirectional,
                                          &rng, &path));
    EXPECT_EQ(path.nodes.front(), s);
    EXPECT_EQ(path.nodes.back(), t);
    for (NodeId v : path.nodes) ASSERT_TRUE(pent_nodes.count(v) > 0);
    for (size_t j = 1; j < path.nodes.size(); ++j) {
      EXPECT_TRUE(g.HasEdge(path.nodes[j - 1], path.nodes[j]));
    }
  }
}

/// The Fig. 2 distribution check: sampling through the component-view fast
/// path must produce the same path frequencies as the legacy filtered
/// sampler (both match the uniform-over-σ_st law).
TEST(ComponentViewSampling, Fig2DistributionMatchesFilteredPath) {
  Graph g = PaperFig2Graph();
  IspIndex isp(g);
  uint32_t pent = isp.bcc().arc_component[g.offset(0)];

  PathSampler filtered(g, &isp.bcc().arc_component);
  PathSampler view(g, isp.views());
  constexpr int kDraws = 60000;
  std::map<std::string, int> filtered_counts, view_counts;
  PathSample path;
  {
    Rng rng(21);
    for (int i = 0; i < kDraws; ++i) {
      NodeId s = isp.bcc().component_nodes[pent][rng.UniformInt(5)];
      NodeId t = isp.bcc().component_nodes[pent][rng.UniformInt(5)];
      if (s == t) continue;
      ASSERT_TRUE(filtered.SampleUniformPath(
          s, t, pent, SamplingStrategy::kBidirectional, &rng, &path));
      ++filtered_counts[PathKey(path.nodes)];
    }
  }
  {
    Rng rng(21);  // same endpoint stream
    for (int i = 0; i < kDraws; ++i) {
      NodeId s = isp.bcc().component_nodes[pent][rng.UniformInt(5)];
      NodeId t = isp.bcc().component_nodes[pent][rng.UniformInt(5)];
      if (s == t) continue;
      ASSERT_TRUE(view.SampleUniformPath(
          s, t, pent, SamplingStrategy::kBidirectional, &rng, &path));
      ++view_counts[PathKey(path.nodes)];
    }
  }
  // Same support...
  ASSERT_EQ(filtered_counts.size(), view_counts.size());
  for (auto& [key, n] : filtered_counts) {
    ASSERT_TRUE(view_counts.count(key) > 0) << key;
    // ...and matching frequencies (both estimate the same probability; the
    // tolerance covers two independent empirical estimates).
    double pf = n / static_cast<double>(kDraws);
    double pv = view_counts[key] / static_cast<double>(kDraws);
    EXPECT_NEAR(pf, pv, 0.012 + 4.0 * std::sqrt(pf / kDraws)) << key;
  }
}

TEST(ComponentViewSampling, SigmaMatchesFilteredOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Graph g = RandomConnectedGraph(40, 0.08, seed + 100);
    IspIndex isp(g);
    PathSampler filtered(g, &isp.bcc().arc_component);
    PathSampler view(g, isp.views());
    Rng rng(seed);
    PathSample pf, pv;
    for (int i = 0; i < 200; ++i) {
      uint32_t c = static_cast<uint32_t>(
          rng.UniformInt(isp.bcc().num_components));
      const auto& nodes = isp.bcc().component_nodes[c];
      if (nodes.size() < 2) continue;
      NodeId s = nodes[rng.UniformInt(nodes.size())];
      NodeId t = nodes[rng.UniformInt(nodes.size())];
      if (s == t) continue;
      ASSERT_TRUE(filtered.SampleUniformPath(
          s, t, c, SamplingStrategy::kBidirectional, &rng, &pf));
      ASSERT_TRUE(view.SampleUniformPath(
          s, t, c, SamplingStrategy::kBidirectional, &rng, &pv));
      // σ_st and the shortest-path length are deterministic quantities:
      // both substrates must agree exactly.
      EXPECT_DOUBLE_EQ(pf.num_paths, pv.num_paths);
      EXPECT_EQ(pf.length, pv.length);
    }
  }
}

TEST(ComponentViewSampling, UnidirectionalAgreesWithBidirectional) {
  Graph g = RandomConnectedGraph(40, 0.08, 55);
  IspIndex isp(g);
  PathSampler sampler(g, isp.views());
  Rng rng(56);
  PathSample bi, uni;
  for (int i = 0; i < 200; ++i) {
    uint32_t c =
        static_cast<uint32_t>(rng.UniformInt(isp.bcc().num_components));
    const auto& nodes = isp.bcc().component_nodes[c];
    if (nodes.size() < 2) continue;
    NodeId s = nodes[rng.UniformInt(nodes.size())];
    NodeId t = nodes[rng.UniformInt(nodes.size())];
    if (s == t) continue;
    ASSERT_TRUE(sampler.SampleUniformPath(
        s, t, c, SamplingStrategy::kBidirectional, &rng, &bi));
    ASSERT_TRUE(sampler.SampleUniformPath(
        s, t, c, SamplingStrategy::kUnidirectional, &rng, &uni));
    EXPECT_EQ(bi.length, uni.length);
    EXPECT_DOUBLE_EQ(bi.num_paths, uni.num_paths);
  }
}

TEST(ComponentViewSampling, UnrestrictedSamplingStillWorks) {
  // A views-constructed sampler must still serve comp == kInvalidComp
  // requests over the global graph.
  Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  auto bcc = ComputeBiconnectedComponents(g);
  ComponentViews views(g, bcc);
  PathSampler sampler(g, views);
  Rng rng(1);
  PathSample path;
  ASSERT_TRUE(sampler.SampleUniformPath(
      0, 3, kInvalidComp, SamplingStrategy::kBidirectional, &rng, &path));
  EXPECT_EQ(path.nodes, (std::vector<NodeId>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace saphyra
