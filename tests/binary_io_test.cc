#include "graph/binary_io.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bc/saphyra_bc.h"
#include "bicomp/isp.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "test_util.h"
#include "util/failpoint.h"

namespace saphyra {
namespace {

using testing::MakeGraph;

class BinaryIoTest : public ::testing::TestWithParam<bool> {
 protected:
  /// Per-process unique path: two test processes (e.g. ctest runs over two
  /// build trees) must never share fixture files — one would truncate a
  /// file the other has mmap'ed, and reading a page beyond the new EOF is
  /// a SIGBUS.
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/saphyra_sgr_" +
           std::to_string(::getpid()) + "_" + name;
  }

  SgrReadOptions ReadOptions() {
    SgrReadOptions opts;
    opts.prefer_mmap = GetParam();  // exercise both mmap and buffered reads
    return opts;
  }

  /// Write graph + full decomposition, computed via IspIndex.
  void WriteWithDecomposition(const std::string& path, const Graph& g,
                              const SgrWriteOptions& wopts = {}) {
    IspIndex isp(g);
    ASSERT_TRUE(WriteSgr(path, g, &isp.bcc(), &isp.conn(), &isp.views(),
                         &isp.tree(), wopts)
                    .ok());
  }

  void ExpectGraphsEqual(const Graph& a, const Graph& b) {
    ASSERT_EQ(a.num_nodes(), b.num_nodes());
    ASSERT_EQ(a.num_arcs(), b.num_arcs());
    EXPECT_EQ(a.max_degree(), b.max_degree());
    ASSERT_TRUE(std::equal(a.raw_offsets().begin(), a.raw_offsets().end(),
                           b.raw_offsets().begin()));
    ASSERT_TRUE(std::equal(a.raw_adj().begin(), a.raw_adj().end(),
                           b.raw_adj().begin()));
  }

  void ExpectDecompositionsEqual(const GraphCache& cache,
                                 const IspIndex& isp) {
    const BiconnectedComponents& want = isp.bcc();
    EXPECT_EQ(cache.bcc.num_components, want.num_components);
    EXPECT_EQ(cache.bcc.arc_component, want.arc_component);
    EXPECT_EQ(cache.bcc.is_cutpoint, want.is_cutpoint);
    EXPECT_EQ(cache.bcc.node_component, want.node_component);
    EXPECT_EQ(cache.bcc.component_nodes, want.component_nodes);
    EXPECT_EQ(cache.bcc.rev_arc, want.rev_arc);
    EXPECT_EQ(cache.conn.component, isp.conn().component);
    EXPECT_EQ(cache.conn.size, isp.conn().size);

    const ComponentViews& v = isp.views();
    ASSERT_EQ(cache.views.num_components(), v.num_components());
    EXPECT_EQ(cache.views.max_component_size(), v.max_component_size());
    for (uint32_t c = 0; c < v.num_components(); ++c) {
      ASSERT_EQ(cache.views.size(c), v.size(c));
      ASSERT_EQ(cache.views.num_arcs(c), v.num_arcs(c));
      ASSERT_TRUE(std::equal(v.nodes(c).begin(), v.nodes(c).end(),
                             cache.views.nodes(c).begin()));
      for (NodeId local = 0; local < v.size(c); ++local) {
        ASSERT_TRUE(std::equal(v.Neighbors(c, local).begin(),
                               v.Neighbors(c, local).end(),
                               cache.views.Neighbors(c, local).begin()));
      }
      for (NodeId g_node : v.nodes(c)) {
        EXPECT_EQ(cache.tree.OutReach(c, g_node), isp.tree().OutReach(c, g_node));
        EXPECT_EQ(cache.tree.HangSize(c, g_node), isp.tree().HangSize(c, g_node));
      }
      EXPECT_EQ(cache.tree.conn_size_of_comp(c), isp.tree().conn_size_of_comp(c));
    }
  }
};

TEST_P(BinaryIoTest, GraphOnlyRoundTrip) {
  Graph g = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 3}});
  std::string path = TempPath("graph_only.sgr");
  ASSERT_TRUE(
      WriteSgr(path, g, nullptr, nullptr, nullptr, nullptr).ok());
  GraphCache cache;
  ASSERT_TRUE(LoadSgr(path, &cache, ReadOptions()).ok());
  EXPECT_FALSE(cache.has_decomposition);
  ExpectGraphsEqual(g, cache.graph);
  // Both read modes hand out views: of the mmap'ed pages, or of the one
  // owned buffer the buffered fallback reads the file into.
  EXPECT_TRUE(cache.graph.is_view());
}

TEST_P(BinaryIoTest, DecompositionRoundTripSmall) {
  // The paper's Fig. 2 shape: two blocks joined at a cutpoint plus a
  // pendant path — cutpoints, bridges and a non-trivial block-cut tree.
  Graph g = MakeGraph(8, {{0, 1},
                          {1, 2},
                          {2, 0},
                          {2, 3},
                          {3, 4},
                          {4, 5},
                          {5, 3},
                          {5, 6},
                          {6, 7}});
  std::string path = TempPath("decomp_small.sgr");
  WriteWithDecomposition(path, g);
  GraphCache cache;
  ASSERT_TRUE(LoadSgr(path, &cache, ReadOptions()).ok());
  ASSERT_TRUE(cache.has_decomposition);
  ExpectGraphsEqual(g, cache.graph);
  IspIndex fresh(g);
  ExpectDecompositionsEqual(cache, fresh);
}

TEST_P(BinaryIoTest, DecompositionRoundTripRandomGraphs) {
  const struct {
    const char* name;
    Graph graph;
  } corpora[] = {
      {"ba", BarabasiAlbert(300, 3, 7)},
      {"er", ErdosRenyi(200, 350, 11)},  // disconnected w.h.p.
      {"tree", RandomTree(150, 5)},      // every edge its own component
      {"road", RoadGrid(20, 15, 0.8, 3).graph},
  };
  for (const auto& corpus : corpora) {
    SCOPED_TRACE(corpus.name);
    std::string path = TempPath(std::string("rt_") + corpus.name + ".sgr");
    WriteWithDecomposition(path, corpus.graph);
    GraphCache cache;
    ASSERT_TRUE(LoadSgr(path, &cache, ReadOptions()).ok());
    ASSERT_TRUE(cache.has_decomposition);
    ExpectGraphsEqual(corpus.graph, cache.graph);
    IspIndex fresh(corpus.graph);
    ExpectDecompositionsEqual(cache, fresh);
  }
}

TEST_P(BinaryIoTest, IspIndexFromCacheMatchesFreshBuild) {
  Graph g = BarabasiAlbert(400, 3, 21);
  std::string path = TempPath("isp_adopt.sgr");
  WriteWithDecomposition(path, g);
  GraphCache cache;
  ASSERT_TRUE(LoadSgr(path, &cache, ReadOptions()).ok());
  Graph loaded = std::move(cache.graph);
  IspIndex cached(loaded, std::move(cache));
  IspIndex fresh(g);
  EXPECT_DOUBLE_EQ(cached.gamma(), fresh.gamma());
  EXPECT_DOUBLE_EQ(cached.total_weight(), fresh.total_weight());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_DOUBLE_EQ(cached.bca(v), fresh.bca(v)) << "node " << v;
  }
  // End to end: identical decompositions + identical seeds must produce
  // bitwise-identical rankings.
  std::vector<NodeId> targets{1, 17, 42, 99, 256, 399};
  SaphyraBcOptions opts;
  opts.epsilon = 0.02;
  opts.seed = 5;
  SaphyraBcResult a = RunSaphyraBc(cached, targets, opts);
  SaphyraBcResult b = RunSaphyraBc(fresh, targets, opts);
  EXPECT_EQ(a.samples_used, b.samples_used);
  EXPECT_EQ(a.bc, b.bc);
}

TEST_P(BinaryIoTest, MoveRebindsTree) {
  Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}});
  std::string path = TempPath("move.sgr");
  WriteWithDecomposition(path, g);
  GraphCache first;
  ASSERT_TRUE(LoadSgr(path, &first, ReadOptions()).ok());
  GraphCache second = std::move(first);
  GraphCache third;
  third = std::move(second);
  // OutReach consults bcc.is_cutpoint through the tree's internal pointers;
  // a stale pointer after the moves would read freed memory / garbage.
  EXPECT_EQ(third.tree.OutReach(third.bcc.arc_component[0], 2),
            IspIndex(g).tree().OutReach(third.bcc.arc_component[0], 2));
}

TEST_P(BinaryIoTest, RejectsTruncatedFile) {
  Graph g = BarabasiAlbert(100, 3, 9);
  std::string path = TempPath("trunc.sgr");
  WriteWithDecomposition(path, g);
  const auto full_size = std::filesystem::file_size(path);
  for (uintmax_t keep : {uintmax_t{0}, uintmax_t{17}, uintmax_t{63},
                         full_size / 2, full_size - 1}) {
    std::filesystem::resize_file(path, keep);
    GraphCache cache;
    Status st = LoadSgr(path, &cache, ReadOptions());
    EXPECT_FALSE(st.ok()) << "kept " << keep << " of " << full_size;
    EXPECT_EQ(st.code(), StatusCode::kIOError);
  }
}

TEST_P(BinaryIoTest, RejectsCorruptMagicAndForeignEndianness) {
  Graph g = MakeGraph(3, {{0, 1}, {1, 2}});
  std::string path = TempPath("magic.sgr");
  ASSERT_TRUE(WriteSgr(path, g, nullptr, nullptr, nullptr, nullptr).ok());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(0);
    f.write("NOTSAGRF", 8);
  }
  GraphCache cache;
  EXPECT_FALSE(LoadSgr(path, &cache, ReadOptions()).ok());

  // Restore the magic but flip the byte-order tag (offset 8).
  ASSERT_TRUE(WriteSgr(path, g, nullptr, nullptr, nullptr, nullptr).ok());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(8);
    const uint32_t swapped = 0x04030201;
    f.write(reinterpret_cast<const char*>(&swapped), sizeof(swapped));
  }
  Status st = LoadSgr(path, &cache, ReadOptions());
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("endian"), std::string::npos);
}

TEST_P(BinaryIoTest, RejectsWrongVersion) {
  Graph g = MakeGraph(3, {{0, 1}, {1, 2}});
  std::string path = TempPath("version.sgr");
  ASSERT_TRUE(WriteSgr(path, g, nullptr, nullptr, nullptr, nullptr).ok());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(12);  // version field: magic (8) + byte_order (4)
    const uint32_t future = kSgrVersion + 1;
    f.write(reinterpret_cast<const char*>(&future), sizeof(future));
  }
  GraphCache cache;
  Status st = LoadSgr(path, &cache, ReadOptions());
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_NE(st.message().find("version"), std::string::npos);
}

TEST_P(BinaryIoTest, RejectsOverflowingSectionCount) {
  Graph g = MakeGraph(3, {{0, 1}, {1, 2}});
  std::string path = TempPath("overflow.sgr");
  ASSERT_TRUE(WriteSgr(path, g, nullptr, nullptr, nullptr, nullptr).ok());
  {
    // Section table starts at 64; each entry is {u32 kind, u32 elem_bytes,
    // u64 offset, u64 count, u64 reserved}. Patch section 0's count to a
    // value whose byte length wraps uint64 — the bounds check must not
    // overflow into accepting it.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(64 + 16);
    const uint64_t huge = uint64_t{1} << 61;
    f.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
  }
  GraphCache cache;
  Status st = LoadSgr(path, &cache, ReadOptions());
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
}

TEST_P(BinaryIoTest, CompactIdsMismatchFallsBackToText) {
  // Sparse raw ids so compact and raw parses disagree.
  std::string source = TempPath("sparse_ids.txt");
  {
    std::ofstream out(source);
    out << "100 200\n200 300\n";
  }
  // Cache converted with raw ids; the default (compact) text path must
  // refuse it and re-parse.
  Graph raw;
  ASSERT_TRUE(LoadSnapEdgeList(source, &raw, /*compact_ids=*/false).ok());
  SgrWriteOptions wopts;
  ASSERT_TRUE(CaptureSourceStat(source, &wopts).ok());
  wopts.compact_ids = false;
  ASSERT_TRUE(WriteSgr(SgrCachePathFor(source), raw, nullptr, nullptr,
                       nullptr, nullptr, wopts)
                  .ok());

  GraphCache cache;
  bool from_cache = true;
  LoadGraphOptions lopts;
  lopts.sgr = ReadOptions();
  ASSERT_TRUE(LoadGraphAuto(source, lopts, &cache, &from_cache).ok());
  EXPECT_FALSE(from_cache);
  EXPECT_EQ(cache.graph.num_nodes(), 3u);  // compacted, not 301 raw ids

  // With matching id options the same cache is substituted.
  lopts.compact_ids = false;
  ASSERT_TRUE(LoadGraphAuto(source, lopts, &cache, &from_cache).ok());
  EXPECT_TRUE(from_cache);
  EXPECT_EQ(cache.graph.num_nodes(), 301u);
}

TEST_P(BinaryIoTest, RejectsNotAFile) {
  GraphCache cache;
  EXPECT_FALSE(
      LoadSgr(TempPath("does_not_exist.sgr"), &cache, ReadOptions()).ok());
}

TEST_P(BinaryIoTest, StaleCacheDetection) {
  std::string source = TempPath("edges.txt");
  {
    std::ofstream out(source);
    out << "0 1\n1 2\n2 0\n";
  }
  Graph g;
  ASSERT_TRUE(LoadSnapEdgeList(source, &g).ok());
  SgrWriteOptions wopts;
  wopts.source_path = source;
  std::string cache_path = SgrCachePathFor(source);
  ASSERT_TRUE(
      WriteSgr(cache_path, g, nullptr, nullptr, nullptr, nullptr, wopts)
          .ok());

  bool fresh = false;
  ASSERT_TRUE(SgrIsFresh(cache_path, source, &fresh).ok());
  EXPECT_TRUE(fresh);

  // Appending an edge changes size+mtime: the cache must test stale and
  // LoadGraphAuto must fall back to the text parse.
  {
    std::ofstream out(source, std::ios::app);
    out << "2 3\n";
  }
  ASSERT_TRUE(SgrIsFresh(cache_path, source, &fresh).ok());
  EXPECT_FALSE(fresh);

  GraphCache cache;
  bool from_cache = true;
  LoadGraphOptions lopts;
  lopts.sgr = ReadOptions();
  ASSERT_TRUE(LoadGraphAuto(source, lopts, &cache, &from_cache).ok());
  EXPECT_FALSE(from_cache);
  EXPECT_EQ(cache.graph.num_nodes(), 4u);  // saw the appended edge

  // A cache with no recorded provenance is never substituted.
  ASSERT_TRUE(
      WriteSgr(cache_path, cache.graph, nullptr, nullptr, nullptr, nullptr)
          .ok());
  ASSERT_TRUE(SgrIsFresh(cache_path, source, &fresh).ok());
  EXPECT_FALSE(fresh);
}

TEST_P(BinaryIoTest, LoadGraphAutoUsesFreshCache) {
  std::string source = TempPath("auto_edges.txt");
  {
    std::ofstream out(source);
    out << "0 1\n1 2\n2 0\n2 3\n";
  }
  Graph g;
  ASSERT_TRUE(LoadSnapEdgeList(source, &g).ok());
  IspIndex isp(g);
  SgrWriteOptions wopts;
  wopts.source_path = source;
  ASSERT_TRUE(WriteSgr(SgrCachePathFor(source), g, &isp.bcc(), &isp.conn(),
                       &isp.views(), &isp.tree(), wopts)
                  .ok());

  GraphCache cache;
  bool from_cache = false;
  LoadGraphOptions lopts;
  lopts.sgr = ReadOptions();
  ASSERT_TRUE(LoadGraphAuto(source, lopts, &cache, &from_cache).ok());
  EXPECT_TRUE(from_cache);
  EXPECT_TRUE(cache.has_decomposition);
  ExpectGraphsEqual(g, cache.graph);

  // Explicitly disabling the cache forces the text path.
  lopts.use_cache = false;
  ASSERT_TRUE(LoadGraphAuto(source, lopts, &cache, &from_cache).ok());
  EXPECT_FALSE(from_cache);
  EXPECT_FALSE(cache.has_decomposition);
}

// ---------------------------------------------------------------------------
// Fuzz-style robustness corpus: deterministic byte-flip and truncation
// sweeps over a decomposition-carrying cache. The reader's trust model
// (DESIGN.md, ".sgr on-disk format") promises that *any* byte-level
// corruption yields a clean Status return — possibly ok for payload bytes
// the structural validation does not cover, but never a crash or UB. The
// ASan+UBSan CI job turns every violation into a hard failure.
// ---------------------------------------------------------------------------

TEST_P(BinaryIoTest, ByteFlipSweepYieldsStatusNeverCrash) {
  Graph g = BarabasiAlbert(30, 2, 9);
  std::string path = TempPath("fuzz_flip.sgr");
  WriteWithDecomposition(path, g);
  std::string pristine;
  {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in);
    pristine.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
  }
  ASSERT_GT(pristine.size(), 64u);
  // Every byte of the header and section table, then a coprime stride
  // through the payloads (coverage of every section without a
  // per-byte sweep of the whole file).
  std::vector<size_t> offsets;
  const size_t dense_prefix = std::min<size_t>(pristine.size(), 640);
  for (size_t i = 0; i < dense_prefix; ++i) offsets.push_back(i);
  for (size_t i = dense_prefix; i < pristine.size(); i += 7) {
    offsets.push_back(i);
  }
  for (size_t off : offsets) {
    std::string mutated = pristine;
    mutated[off] = static_cast<char>(mutated[off] ^ 0xFF);
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
    }
    GraphCache cache;
    Status st = LoadSgr(path, &cache, ReadOptions());
    if (st.ok()) {
      // Flips the structural validation cannot see (payload content,
      // reserved fields) load fine; the loaded object must still be
      // shallowly usable.
      EXPECT_LE(cache.graph.num_nodes(), 2u * g.num_nodes())
          << "flipped byte " << off;
    }
  }
}

TEST_P(BinaryIoTest, TruncationSweepYieldsStatusNeverCrash) {
  Graph g = BarabasiAlbert(30, 2, 13);
  std::string path = TempPath("fuzz_trunc.sgr");
  WriteWithDecomposition(path, g);
  std::string pristine;
  {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in);
    pristine.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
  }
  for (size_t keep = 0; keep < pristine.size(); keep += 17) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(pristine.data(), static_cast<std::streamsize>(keep));
    }
    GraphCache cache;
    Status st = LoadSgr(path, &cache, ReadOptions());
    // A strict prefix can never carry the full section payloads.
    EXPECT_FALSE(st.ok()) << "kept " << keep << " of " << pristine.size();
  }
}

TEST_P(BinaryIoTest, AtomicWriteLeavesNoTempFile) {
  Graph g = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  std::string path = TempPath("atomic.sgr");
  ASSERT_TRUE(WriteSgr(path, g, nullptr, nullptr, nullptr, nullptr).ok());
  // The write staged through <path>.tmp and published with rename; a
  // successful publish leaves only the final file behind.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  GraphCache cache;
  ASSERT_TRUE(LoadSgr(path, &cache, ReadOptions()).ok());
  ExpectGraphsEqual(g, cache.graph);
  std::remove(path.c_str());
}

TEST_P(BinaryIoTest, InjectedWriteFailureLeavesTargetUntouched) {
  if (!fail::kBuiltWithFailpoints) {
    GTEST_SKIP() << "build has no failpoint registry";
  }
  fail::ClearAll();
  Graph original = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  std::string path = TempPath("enospc.sgr");
  ASSERT_TRUE(
      WriteSgr(path, original, nullptr, nullptr, nullptr, nullptr).ok());

  // An overwrite that dies mid-payload (simulated ENOSPC) must fail with
  // a structured error and leave the published file bitwise intact — the
  // regression the temp-file + rename protocol exists to prevent.
  Graph replacement = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  ASSERT_TRUE(fail::Inject("sgr.write", "1*io-error(disk full)"));
  Status st =
      WriteSgr(path, replacement, nullptr, nullptr, nullptr, nullptr);
  fail::ClearAll();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_NE(st.message().find("disk full"), std::string::npos);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  GraphCache cache;
  ASSERT_TRUE(LoadSgr(path, &cache, ReadOptions()).ok());
  ExpectGraphsEqual(original, cache.graph);  // the old file, not a torso
  std::remove(path.c_str());
}

TEST_P(BinaryIoTest, InjectedLoadFailureSurfaces) {
  if (!fail::kBuiltWithFailpoints) {
    GTEST_SKIP() << "build has no failpoint registry";
  }
  fail::ClearAll();
  Graph g = MakeGraph(3, {{0, 1}, {1, 2}});
  std::string path = TempPath("load_fault.sgr");
  ASSERT_TRUE(WriteSgr(path, g, nullptr, nullptr, nullptr, nullptr).ok());
  ASSERT_TRUE(fail::Inject("sgr.load", "1*io-error(read failed)"));
  GraphCache cache;
  Status st = LoadSgr(path, &cache, ReadOptions());
  fail::ClearAll();
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_NE(st.message().find("read failed"), std::string::npos);
  // The fault disarmed; the same file loads fine afterwards.
  ASSERT_TRUE(LoadSgr(path, &cache, ReadOptions()).ok());
  std::remove(path.c_str());
}

TEST(ComponentViewFromPartsTest, RejectsNonMonotonicNodeBegin) {
  // A bit-flipped interior node_begin entry must be refused — it would
  // bound nodes(c) spans with end < begin.
  ComponentViews views;
  Status st = ComponentViews::FromParts(
      ArrayRef<uint64_t>(std::vector<uint64_t>{0, 5, 2, 3}),
      ArrayRef<NodeId>(std::vector<NodeId>(3, 0)),
      ArrayRef<EdgeIndex>(std::vector<EdgeIndex>(4, 0)), ArrayRef<NodeId>(),
      0, &views);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(MmapAndBuffered, BinaryIoTest,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Mmap" : "Buffered";
                         });

}  // namespace
}  // namespace saphyra
