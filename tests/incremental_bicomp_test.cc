// Incremental bicomp repair: every mutation's repaired decomposition must
// be BITWISE identical to a from-scratch serial pass on the mutated graph
// (and therefore to the parallel pass, by the canonicalization contract).
// Directed cases pin each routing branch — same-block insert, path-merge
// insert across cutpoints, bridge insert across components, isolated
// endpoints, block-splitting delete, bridge delete — and random mutation
// streams over the generator sweep chain repairs for hundreds of steps,
// including the forced-fallback route.

#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "bicomp/biconnected.h"
#include "bicomp/incremental.h"
#include "bicomp_test_util.h"
#include "graph/delta_overlay.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "test_util.h"
#include "util/rng.h"

namespace saphyra {
namespace {

using testing::ExpectBccBitwiseEqual;
using testing::MakeGraph;
using testing::PaperFig2Graph;

/// Apply one mutation to `g` through an overlay and return the repaired
/// decomposition alongside the mutated graph, asserting bitwise equality
/// with the serial oracle.
struct Applied {
  Graph graph;
  BiconnectedComponents bcc;
};

Applied ApplyAndCheck(const Graph& g, const BiconnectedComponents& bcc,
                      EdgeMutationKind kind, NodeId u, NodeId v,
                      const IncrementalBicompOptions& opts,
                      const std::string& what,
                      IncrementalBicompStats* stats = nullptr) {
  DeltaOverlay overlay(&g);
  if (kind == EdgeMutationKind::kInsert) {
    EXPECT_TRUE(overlay.Insert(u, v).ok()) << what;
  } else {
    EXPECT_TRUE(overlay.Remove(u, v).ok()) << what;
  }
  Applied out;
  out.graph = overlay.Materialize();
  out.bcc = RepairBiconnectedComponents(g, bcc, out.graph, {kind, u, v},
                                        opts, stats);
  ExpectBccBitwiseEqual(out.bcc, ComputeBiconnectedComponents(out.graph),
                        what);
  return out;
}

const IncrementalBicompOptions kNeverFallBack{/*max_dirty_fraction=*/1.0,
                                              /*fallback_threads=*/1};

TEST(IncrementalBicompTest, DirectedCasesOnThePaperGraph) {
  // Fig. 2: pentagon {a,b,c,d,e}, triangles {c,g,h} and {i,j,k}, bridges
  // d-f and d-i; cutpoints c, d, i.
  Graph g = PaperFig2Graph();
  BiconnectedComponents bcc = ComputeBiconnectedComponents(g);
  IncrementalBicompStats stats;

  // Insert inside one block: pentagon chord a-d. Only that block dirty.
  Applied chord = ApplyAndCheck(g, bcc, EdgeMutationKind::kInsert, 0, 3,
                                kNeverFallBack, "chord a-d", &stats);
  EXPECT_FALSE(stats.fell_back);
  EXPECT_EQ(stats.dirty_blocks, 1u);

  // Path-merge insert: e(4) to g(6) runs pentagon -> c -> triangle; the
  // two blocks on the block-cut-tree path merge with the new edge.
  Applied merged = ApplyAndCheck(g, bcc, EdgeMutationKind::kInsert, 4, 6,
                                 kNeverFallBack, "merge e-g", &stats);
  EXPECT_FALSE(stats.fell_back);
  EXPECT_EQ(stats.dirty_blocks, 2u);
  EXPECT_EQ(merged.bcc.num_components, bcc.num_components - 1);

  // Long path merge: f(5) to k(10) crosses bridge d-f, bridge d-i and the
  // i-triangle — three blocks collapse into one.
  ApplyAndCheck(g, bcc, EdgeMutationKind::kInsert, 5, 10, kNeverFallBack,
                "merge f-k", &stats);
  EXPECT_EQ(stats.dirty_blocks, 3u);

  // Block-splitting delete: removing pentagon edge a-b leaves a path
  // a-c-d-e... the pentagon splits into four bridge blocks.
  Applied split = ApplyAndCheck(g, bcc, EdgeMutationKind::kDelete, 0, 1,
                                kNeverFallBack, "split pentagon", &stats);
  EXPECT_EQ(stats.dirty_blocks, 1u);
  EXPECT_EQ(split.bcc.num_components, bcc.num_components + 3);

  // Bridge delete: d-f detaches leaf f; the block vanishes, nothing is
  // recomputed.
  Applied detached = ApplyAndCheck(g, bcc, EdgeMutationKind::kDelete, 3, 5,
                                   kNeverFallBack, "drop bridge d-f", &stats);
  EXPECT_EQ(stats.dirty_arcs, 0u);
  EXPECT_EQ(detached.bcc.num_components, bcc.num_components - 1);

  // Bridge insert across components: detach f, then reconnect it
  // elsewhere — the repair sees two components and adds one bridge block.
  Applied rejoined =
      ApplyAndCheck(detached.graph, detached.bcc, EdgeMutationKind::kInsert,
                    5, 9, kNeverFallBack, "reconnect f-j", &stats);
  EXPECT_EQ(stats.dirty_blocks, 0u);
  EXPECT_EQ(rejoined.bcc.num_components, detached.bcc.num_components + 1);
}

TEST(IncrementalBicompTest, IsolatedEndpointsAndTinyGraphs) {
  // Two isolated nodes joined: first edge of the graph.
  Graph empty = MakeGraph(4, {});
  BiconnectedComponents bcc = ComputeBiconnectedComponents(empty);
  Applied first = ApplyAndCheck(empty, bcc, EdgeMutationKind::kInsert, 1, 3,
                                kNeverFallBack, "first edge");
  EXPECT_EQ(first.bcc.num_components, 1u);

  // Isolated node attached to an existing block.
  Applied second = ApplyAndCheck(first.graph, first.bcc,
                                 EdgeMutationKind::kInsert, 0, 1,
                                 kNeverFallBack, "attach isolated");
  // Deleting the last edge of a 2-node component isolates both ends.
  Applied gone = ApplyAndCheck(second.graph, second.bcc,
                               EdgeMutationKind::kDelete, 1, 3,
                               kNeverFallBack, "drop isolated edge");
  EXPECT_EQ(gone.bcc.node_component[3], kInvalidComp);

  // Triangle closure over a path: 0-1-2 plus 0-2.
  Graph path = MakeGraph(3, {{0, 1}, {1, 2}});
  BiconnectedComponents path_bcc = ComputeBiconnectedComponents(path);
  Applied tri = ApplyAndCheck(path, path_bcc, EdgeMutationKind::kInsert, 0, 2,
                              kNeverFallBack, "close triangle");
  EXPECT_EQ(tri.bcc.num_components, 1u);
  EXPECT_EQ(tri.bcc.is_cutpoint[1], 0);
}

TEST(IncrementalBicompTest, FallbackRouteIsBitwiseInvisible) {
  Graph g = WattsStrogatz(60, 4, 0.1, 31);
  BiconnectedComponents bcc = ComputeBiconnectedComponents(g);
  // max_dirty_fraction = 0 forces the parallel-pass fallback on every
  // mutation; the output must not change.
  IncrementalBicompOptions always_fall{/*max_dirty_fraction=*/0.0,
                                       /*fallback_threads=*/8};
  IncrementalBicompStats stats;
  ApplyAndCheck(g, bcc, EdgeMutationKind::kInsert, 0, 30, always_fall,
                "forced fallback", &stats);
  EXPECT_TRUE(stats.fell_back);
}

// Random mutation streams over the generator sweep: repairs chain (each
// step's output feeds the next), checked bitwise against the serial
// oracle at every step, under both the never-fallback and the default
// (mixed repair/fallback) routing.
TEST(IncrementalBicompTest, RandomStreamsOverGeneratorSweep) {
  struct Case {
    const char* name;
    Graph graph;
  };
  std::vector<Case> cases;
  cases.push_back({"er", ErdosRenyi(70, 140, 41)});
  cases.push_back({"ba", BarabasiAlbert(60, 2, 43)});
  cases.push_back({"ws", WattsStrogatz(60, 4, 0.2, 47)});
  cases.push_back({"grid", RoadGrid(8, 8, 0.85, 53).graph});
  cases.push_back({"sbm", StochasticBlockModel(60, 3, 0.15, 0.01, 59)});
  for (const IncrementalBicompOptions& opts :
       {kNeverFallBack, IncrementalBicompOptions{}}) {
    for (auto& c : cases) {
      SCOPED_TRACE(std::string(c.name) +
                   (opts.max_dirty_fraction == 1.0 ? "/repair" : "/default"));
      Graph cur = c.graph;
      BiconnectedComponents bcc = ComputeBiconnectedComponents(cur);
      Rng rng(1000 + cur.num_nodes());
      const NodeId n = cur.num_nodes();
      for (int step = 0; step < 60; ++step) {
        NodeId u = static_cast<NodeId>(rng.UniformInt(n));
        NodeId v = static_cast<NodeId>(rng.UniformInt(n));
        if (u == v) continue;
        const EdgeMutationKind kind = cur.HasEdge(u, v)
                                          ? EdgeMutationKind::kDelete
                                          : EdgeMutationKind::kInsert;
        Applied next = ApplyAndCheck(cur, bcc, kind, u, v, opts,
                                     "step " + std::to_string(step));
        cur = std::move(next.graph);
        bcc = std::move(next.bcc);
      }
    }
  }
}

}  // namespace
}  // namespace saphyra
