#include "graph/storage.h"

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

namespace saphyra {
namespace {

TEST(ArrayRefTest, DefaultIsEmpty) {
  ArrayRef<uint32_t> a;
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.size(), 0u);
  EXPECT_FALSE(a.is_view());
}

TEST(ArrayRefTest, OwnedModeAdoptsVector) {
  ArrayRef<uint32_t> a(std::vector<uint32_t>{1, 2, 3});
  EXPECT_FALSE(a.is_view());
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0], 1u);
  EXPECT_EQ(a[2], 3u);
}

TEST(ArrayRefTest, OwnedCopyIsDeep) {
  ArrayRef<uint32_t> a(std::vector<uint32_t>{5, 6});
  ArrayRef<uint32_t> b = a;
  EXPECT_NE(a.data(), b.data());
  EXPECT_EQ(b[1], 6u);
}

TEST(ArrayRefTest, OwnedMoveKeepsData) {
  ArrayRef<uint64_t> a(std::vector<uint64_t>{7, 8, 9});
  const uint64_t* data = a.data();
  ArrayRef<uint64_t> b = std::move(a);
  EXPECT_EQ(b.data(), data);  // vector move: buffer pointer is stable
  EXPECT_EQ(b[2], 9u);
}

TEST(ArrayRefTest, ViewModeReferencesForeignStorage) {
  auto backing = std::make_shared<std::vector<uint32_t>>(
      std::vector<uint32_t>{10, 11, 12});
  ArrayRef<uint32_t> a(std::span<const uint32_t>(*backing), backing);
  EXPECT_TRUE(a.is_view());
  EXPECT_EQ(a.data(), backing->data());
  EXPECT_EQ(a[1], 11u);
}

TEST(ArrayRefTest, ViewKeepaliveOutlivesOriginalHandle) {
  ArrayRef<uint32_t> copy;
  const uint32_t* data = nullptr;
  {
    auto backing = std::make_shared<std::vector<uint32_t>>(
        std::vector<uint32_t>{42, 43});
    data = backing->data();
    ArrayRef<uint32_t> a(std::span<const uint32_t>(*backing), backing);
    copy = a;  // view copies share the keepalive
  }
  // The shared_ptr inside `copy` is now the only owner of the backing
  // vector; the data must still be readable.
  ASSERT_EQ(copy.size(), 2u);
  EXPECT_EQ(copy.data(), data);
  EXPECT_EQ(copy[0], 42u);
  EXPECT_EQ(copy[1], 43u);
}

TEST(ArrayRefTest, SpanAndIterationAgree) {
  ArrayRef<uint32_t> a(std::vector<uint32_t>{1, 2, 3, 4});
  uint32_t sum = 0;
  for (uint32_t v : a) sum += v;
  EXPECT_EQ(sum, 10u);
  EXPECT_EQ(a.span().size(), 4u);
  EXPECT_EQ(a.span().data(), a.data());
}

}  // namespace
}  // namespace saphyra
