#include "util/status.h"

#include <gtest/gtest.h>

namespace saphyra {
namespace {

TEST(Status, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(Status, InvalidArgumentCarriesMessage) {
  Status st = Status::InvalidArgument("bad node id");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad node id");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad node id");
}

TEST(Status, AllErrorFactories) {
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(Status, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::IOError("disk gone").ToString(), "IOError: disk gone");
  EXPECT_EQ(Status::Internal("").ToString(), "Internal");
}

Status Fails() { return Status::NotFound("nope"); }
Status Succeeds() { return Status::OK(); }

Status UsesReturnMacro(bool fail) {
  SAPHYRA_RETURN_NOT_OK(Succeeds());
  if (fail) {
    SAPHYRA_RETURN_NOT_OK(Fails());
  }
  return Status::OK();
}

TEST(Status, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(UsesReturnMacro(false).ok());
  Status st = UsesReturnMacro(true);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace saphyra
