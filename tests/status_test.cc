#include "util/status.h"

#include <gtest/gtest.h>

namespace saphyra {
namespace {

TEST(Status, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(Status, InvalidArgumentCarriesMessage) {
  Status st = Status::InvalidArgument("bad node id");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad node id");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad node id");
}

TEST(Status, AllErrorFactories) {
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(Status, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::IOError("disk gone").ToString(), "IOError: disk gone");
  EXPECT_EQ(Status::Internal("").ToString(), "Internal");
}

TEST(Status, ServingErrorFactories) {
  Status dl = Status::DeadlineExceeded("query q1 exceeded its deadline");
  EXPECT_EQ(dl.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(dl.ToString(),
            "DeadlineExceeded: query q1 exceeded its deadline");
  Status re = Status::ResourceExhausted("admission queue full");
  EXPECT_EQ(re.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(re.ToString(), "ResourceExhausted: admission queue full");
  Status c = Status::Cancelled("server shutting down");
  EXPECT_EQ(c.code(), StatusCode::kCancelled);
  EXPECT_EQ(c.ToString(), "Cancelled: server shutting down");
}

TEST(Status, WireNamesAreStable) {
  // These names are the serving contract: NDJSON error objects carry them
  // in "code" and clients dispatch on them (docs/serving.md).
  EXPECT_STREQ(StatusCodeWireName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeWireName(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(StatusCodeWireName(StatusCode::kIOError), "IO_ERROR");
  EXPECT_STREQ(StatusCodeWireName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeWireName(StatusCode::kOutOfRange), "OUT_OF_RANGE");
  EXPECT_STREQ(StatusCodeWireName(StatusCode::kFailedPrecondition),
               "FAILED_PRECONDITION");
  EXPECT_STREQ(StatusCodeWireName(StatusCode::kInternal), "INTERNAL");
  EXPECT_STREQ(StatusCodeWireName(StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  EXPECT_STREQ(StatusCodeWireName(StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(StatusCodeWireName(StatusCode::kCancelled), "CANCELLED");
}

Status Fails() { return Status::NotFound("nope"); }
Status Succeeds() { return Status::OK(); }

Status UsesReturnMacro(bool fail) {
  SAPHYRA_RETURN_NOT_OK(Succeeds());
  if (fail) {
    SAPHYRA_RETURN_NOT_OK(Fails());
  }
  return Status::OK();
}

TEST(Status, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(UsesReturnMacro(false).ok());
  Status st = UsesReturnMacro(true);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace saphyra
