// The serving determinism contract, pinned bitwise (DESIGN.md, "Serving
// determinism contract"): for a fixed canonicalized query, the estimates
// are byte-identical whether the query runs
//   * cold    — a fresh per-process-style session per query,
//   * warm    — repeatedly on one long-lived session,
//   * batched — concurrently with other queries through the scheduler,
//   * memoized — served from the completed-results LRU,
// across estimator worker threads {1, 2, 8} and scheduler admission
// concurrency {1, 2, 8}, and regardless of the text-vs-`.sgr` load path.
// This is what makes the scheduler's memoization and dedup *correct*
// rather than merely fast: a cache hit must be indistinguishable from a
// re-run.

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bicomp/isp.h"
#include "graph/binary_io.h"
#include "graph/io.h"
#include "service/json_util.h"
#include "service/query.h"
#include "service/scheduler.h"
#include "service/session.h"
#include "service/session_pool.h"
#include "test_util.h"

namespace saphyra {
namespace {

using testing::RandomConnectedGraph;

std::string TempPath(const std::string& stem) {
  return "/tmp/saphyra_serve_det_test_" + std::to_string(::getpid()) + "_" +
         stem;
}

struct GraphFiles {
  std::string text_path;
  std::string sgr_path;

  explicit GraphFiles(const Graph& g, const std::string& stem = "graph.txt")
      : text_path(TempPath(stem)) {
    sgr_path = SgrCachePathFor(text_path);
    SAPHYRA_CHECK(SaveSnapEdgeList(g, text_path).ok());
    Graph parsed;
    SAPHYRA_CHECK(LoadSnapEdgeList(text_path, &parsed).ok());
    IspIndex isp(parsed);
    SgrWriteOptions wopts;
    wopts.source_path = text_path;
    SAPHYRA_CHECK(WriteSgr(sgr_path, parsed, &isp.bcc(), &isp.conn(),
                           &isp.views(), &isp.tree(), wopts)
                      .ok());
  }
  ~GraphFiles() {
    std::remove(text_path.c_str());
    std::remove(sgr_path.c_str());
  }
};

/// The heterogeneous workload: every estimator, plus top-k and
/// unidirectional-strategy variants.
std::vector<QueryRequest> MixedWorkload() {
  std::vector<QueryRequest> reqs;
  QueryRequest bc;
  bc.id = "bc";
  bc.estimator = EstimatorKind::kBc;
  bc.epsilon = 0.1;
  bc.seed = 7;
  bc.targets = {0, 3, 5, 9, 12, 17};
  reqs.push_back(bc);

  QueryRequest topk = bc;
  topk.id = "bc-topk";
  topk.top_k = 2;
  topk.targets = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  reqs.push_back(topk);

  QueryRequest uni = bc;
  uni.id = "bc-uni";
  uni.strategy = SamplingStrategy::kUnidirectional;
  reqs.push_back(uni);

  QueryRequest kadabra;
  kadabra.id = "kadabra";
  kadabra.estimator = EstimatorKind::kKadabra;
  kadabra.epsilon = 0.15;
  kadabra.seed = 11;
  reqs.push_back(kadabra);

  QueryRequest abra;
  abra.id = "abra";
  abra.estimator = EstimatorKind::kAbra;
  abra.epsilon = 0.15;
  abra.seed = 13;
  reqs.push_back(abra);

  QueryRequest kpath;
  kpath.id = "kpath";
  kpath.estimator = EstimatorKind::kKPath;
  kpath.epsilon = 0.1;
  kpath.seed = 17;
  kpath.k = 4;
  kpath.targets = {0, 1, 2, 3, 4, 5, 6, 7};
  reqs.push_back(kpath);

  QueryRequest closeness;
  closeness.id = "closeness";
  closeness.estimator = EstimatorKind::kCloseness;
  closeness.epsilon = 0.1;
  closeness.seed = 19;
  closeness.targets = {0, 1, 2, 3, 4, 5, 6, 7};
  reqs.push_back(closeness);
  return reqs;
}

void ExpectBitwiseEqual(const QueryResult& a, const QueryResult& b,
                        const std::string& what) {
  ASSERT_TRUE(a.status.ok()) << what << ": " << a.status.ToString();
  ASSERT_TRUE(b.status.ok()) << what << ": " << b.status.ToString();
  ASSERT_EQ(a.nodes, b.nodes) << what;
  ASSERT_EQ(a.estimates.size(), b.estimates.size()) << what;
  EXPECT_EQ(std::memcmp(a.estimates.data(), b.estimates.data(),
                        a.estimates.size() * sizeof(double)),
            0)
      << what << ": estimates differ bitwise";
  EXPECT_EQ(a.samples_used, b.samples_used) << what;
}

class ServeDeterminismTest : public ::testing::Test {
 protected:
  ServeDeterminismTest()
      : files_(RandomConnectedGraph(60, 0.06, 33)),
        files_b_(RandomConnectedGraph(50, 0.08, 44), "graph_b.txt") {}

  std::unique_ptr<QuerySession> OpenSession(bool from_sgr,
                                            uint32_t default_threads = 1) {
    SessionOptions opts;
    opts.default_threads = default_threads;
    if (!from_sgr) opts.load.use_cache = false;
    std::unique_ptr<QuerySession> session;
    Status st = QuerySession::Open(from_sgr ? files_.sgr_path : files_.text_path,
                                   opts, &session);
    SAPHYRA_CHECK_MSG(st.ok(), st.ToString().c_str());
    return session;
  }

  GraphFiles files_;
  GraphFiles files_b_;  ///< second tenant for the pooled-serving tests
};

TEST_F(ServeDeterminismTest, ColdEqualsWarmEqualsMemoized) {
  const std::vector<QueryRequest> workload = MixedWorkload();

  // Cold baseline: a fresh session per query — the saphyra_rank cost
  // model. Also the text-parse load path, so cache-loaded sessions below
  // prove load-path independence at the same time.
  std::vector<QueryResult> cold;
  for (const QueryRequest& req : workload) {
    cold.push_back(OpenSession(/*from_sgr=*/false)->Run(req));
  }

  // Warm: one `.sgr`-loaded session answers everything, twice over.
  std::unique_ptr<QuerySession> warm = OpenSession(/*from_sgr=*/true);
  for (size_t pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < workload.size(); ++i) {
      QueryResult res = warm->Run(workload[i]);
      ExpectBitwiseEqual(cold[i], res,
                         "warm pass " + std::to_string(pass) + " query " +
                             workload[i].id);
    }
  }

  // Memoized: a scheduler serves the workload twice; the second pass must
  // come from the LRU and still carry the cold bytes.
  BatchScheduler scheduler(warm.get(), SchedulerOptions());
  for (size_t i = 0; i < workload.size(); ++i) {
    ExpectBitwiseEqual(cold[i], scheduler.Run(workload[i]),
                       "scheduler first pass " + workload[i].id);
  }
  for (size_t i = 0; i < workload.size(); ++i) {
    QueryResult res = scheduler.Run(workload[i]);
    EXPECT_EQ(res.mode, ServeMode::kMemoized) << workload[i].id;
    ExpectBitwiseEqual(cold[i], res, "memoized " + workload[i].id);
  }
}

TEST_F(ServeDeterminismTest, ThreadCountsAndBatchingAreInert) {
  const std::vector<QueryRequest> workload = MixedWorkload();

  // Baseline: serial, single-threaded, memoization off so every run is a
  // real execution.
  std::unique_ptr<QuerySession> session = OpenSession(/*from_sgr=*/true);
  SchedulerOptions base_opts;
  base_opts.max_concurrent = 1;
  base_opts.memo_capacity = 0;
  BatchScheduler base(session.get(), base_opts);
  const std::vector<QueryResult> baseline = base.RunBatch(workload);

  for (uint32_t threads : {2u, 8u}) {
    for (uint32_t concurrency : {1u, 2u, 8u}) {
      std::unique_ptr<QuerySession> s =
          OpenSession(/*from_sgr=*/true, threads);
      SchedulerOptions opts;
      opts.max_concurrent = concurrency;
      opts.memo_capacity = 0;
      BatchScheduler scheduler(s.get(), opts);
      const std::vector<QueryResult> results = scheduler.RunBatch(workload);
      ASSERT_EQ(results.size(), baseline.size());
      for (size_t i = 0; i < results.size(); ++i) {
        ExpectBitwiseEqual(
            baseline[i], results[i],
            "threads=" + std::to_string(threads) +
                " concurrency=" + std::to_string(concurrency) + " query " +
                workload[i].id);
      }
    }
  }
}

TEST_F(ServeDeterminismTest, ConcurrentDuplicatesShareOneExecutionBitwise) {
  // Eight copies of one query admitted at once: whichever thread computes,
  // every rider (dedup or memo) must receive the same bytes.
  QueryRequest req;
  req.estimator = EstimatorKind::kBc;
  req.epsilon = 0.1;
  req.seed = 23;
  req.targets = {0, 2, 4, 6, 8, 10};

  std::unique_ptr<QuerySession> session = OpenSession(/*from_sgr=*/true);
  const QueryResult reference = session->Run(req);

  SchedulerOptions opts;
  opts.max_concurrent = 8;
  BatchScheduler scheduler(session.get(), opts);
  std::vector<QueryRequest> batch(8, req);
  const std::vector<QueryResult> results = scheduler.RunBatch(batch);
  for (size_t i = 0; i < results.size(); ++i) {
    ExpectBitwiseEqual(reference, results[i],
                       "duplicate " + std::to_string(i));
  }
  EXPECT_EQ(scheduler.stats().computed, 1u);
}

TEST_F(ServeDeterminismTest, BicompThreadCountIsInertEndToEnd) {
  // The preprocessing analog of the thread-inertness contract: a `.sgr`
  // produced with the serial decomposition (--bicomp-threads 1) and one
  // produced with the parallel pass at 8 threads must be bitwise-identical
  // files, and sessions opened over either must serve bitwise-equal
  // estimates.
  Graph parsed;
  ASSERT_TRUE(LoadSnapEdgeList(files_.text_path, &parsed).ok());

  IspOptions serial_opts;
  serial_opts.bicomp_threads = 1;
  IspIndex serial(parsed, serial_opts);
  IspOptions par_opts;
  par_opts.bicomp_threads = 8;
  IspIndex parallel(parsed, par_opts);

  const std::string serial_path = TempPath("bicomp1.sgr");
  const std::string par_path = TempPath("bicomp8.sgr");
  SgrWriteOptions wopts;
  wopts.source_path = files_.text_path;
  ASSERT_TRUE(WriteSgr(serial_path, parsed, &serial.bcc(), &serial.conn(),
                       &serial.views(), &serial.tree(), wopts)
                  .ok());
  ASSERT_TRUE(WriteSgr(par_path, parsed, &parallel.bcc(), &parallel.conn(),
                       &parallel.views(), &parallel.tree(), wopts)
                  .ok());

  auto read_bytes = [](const std::string& path) {
    std::string bytes;
    FILE* f = std::fopen(path.c_str(), "rb");
    SAPHYRA_CHECK(f != nullptr);
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      bytes.append(buf, got);
    }
    std::fclose(f);
    return bytes;
  };
  const std::string serial_bytes = read_bytes(serial_path);
  ASSERT_FALSE(serial_bytes.empty());
  EXPECT_TRUE(serial_bytes == read_bytes(par_path))
      << "`.sgr` bytes differ between bicomp_threads 1 and 8";

  // Query results over both caches are bitwise equal.
  const std::vector<QueryRequest> workload = MixedWorkload();
  SessionOptions sopts;
  std::unique_ptr<QuerySession> from_serial;
  std::unique_ptr<QuerySession> from_parallel;
  ASSERT_TRUE(QuerySession::Open(serial_path, sopts, &from_serial).ok());
  ASSERT_TRUE(QuerySession::Open(par_path, sopts, &from_parallel).ok());
  for (const QueryRequest& req : workload) {
    ExpectBitwiseEqual(from_serial->Run(req), from_parallel->Run(req),
                       "bicomp-threads 1 vs 8, query " + req.id);
  }
  std::remove(serial_path.c_str());
  std::remove(par_path.c_str());
}

TEST_F(ServeDeterminismTest, PooledTenancyMatchesSingleTenantBitwise) {
  // The tenancy extension of the contract: a query's bytes are identical
  // whether its graph is served single-tenant, pooled-and-resident, or
  // pooled with constant eviction/reload churn (max_graphs=1 forces every
  // alternation between the two graphs to cold-reload), at every
  // admission concurrency. Memoization is off so each run is a real
  // execution — including the post-reload ones.
  const std::vector<QueryRequest> workload = MixedWorkload();

  // Single-tenant baselines, one server per graph.
  auto single_tenant = [&](const GraphFiles& files) {
    std::unique_ptr<QuerySession> session;
    SAPHYRA_CHECK(QuerySession::Open(files.sgr_path, SessionOptions(),
                                     &session)
                      .ok());
    SchedulerOptions opts;
    opts.memo_capacity = 0;
    BatchScheduler scheduler(session.get(), opts);
    return scheduler.RunBatch(workload);
  };
  const std::vector<QueryResult> baseline_a = single_tenant(files_);
  const std::vector<QueryResult> baseline_b = single_tenant(files_b_);

  // The pooled stream interleaves the two tenants query by query.
  std::vector<QueryRequest> interleaved;
  for (const QueryRequest& req : workload) {
    QueryRequest on_a = req;
    on_a.graph = "a";
    on_a.id = req.id + "@a";
    interleaved.push_back(on_a);
    QueryRequest on_b = req;
    on_b.graph = "b";
    on_b.id = req.id + "@b";
    interleaved.push_back(on_b);
  }

  for (size_t max_graphs : {size_t{1}, size_t{2}}) {
    for (uint32_t concurrency : {1u, 2u, 8u}) {
      SessionPoolOptions popts;
      popts.max_graphs = max_graphs;
      SessionPool pool(popts);
      ASSERT_TRUE(pool.Register("a", files_.sgr_path).ok());
      ASSERT_TRUE(pool.Register("b", files_b_.sgr_path).ok());
      SchedulerOptions opts;
      opts.max_concurrent = concurrency;
      opts.memo_capacity = 0;
      BatchScheduler scheduler(&pool, opts);
      const std::vector<QueryResult> results =
          scheduler.RunBatch(interleaved);
      ASSERT_EQ(results.size(), 2 * workload.size());
      for (size_t i = 0; i < workload.size(); ++i) {
        const std::string ctx = "max_graphs=" + std::to_string(max_graphs) +
                                " concurrency=" + std::to_string(concurrency) +
                                " query " + workload[i].id;
        ExpectBitwiseEqual(baseline_a[i], results[2 * i], ctx + "@a");
        ExpectBitwiseEqual(baseline_b[i], results[2 * i + 1], ctx + "@b");
        EXPECT_EQ(results[2 * i].graph, "a") << ctx;
        EXPECT_EQ(results[2 * i + 1].graph, "b") << ctx;
      }
      if (max_graphs == 1 && concurrency == 1) {
        // Serial alternation over a one-slot pool reloads on every switch:
        // the bitwise equality above covered cold, reloaded, and
        // evicted-while-previous-tenant-resident serves.
        for (const SessionPoolGraphStats& g : pool.stats()) {
          EXPECT_GE(g.loads, 2u) << g.name;
          EXPECT_GE(g.evictions, 1u) << g.name;
        }
      }
    }
  }
}

TEST_F(ServeDeterminismTest, EvictionPinsInFlightAndReloadReproducesBytes) {
  // shared_ptr pinning: a session evicted from the pool keeps serving the
  // handles already out, bitwise-equal to before the eviction; and a
  // fresh Acquire after the eviction reloads a session that reproduces
  // the same bytes again.
  QueryRequest req = MixedWorkload()[0];

  SessionPoolOptions popts;
  popts.max_graphs = 1;
  SessionPool pool(popts);
  ASSERT_TRUE(pool.Register("a", files_.sgr_path).ok());
  ASSERT_TRUE(pool.Register("b", files_b_.sgr_path).ok());

  std::shared_ptr<QuerySession> pinned_a;
  ASSERT_TRUE(pool.Acquire("a", &pinned_a).ok());
  const QueryResult before = pinned_a->Run(req);

  std::shared_ptr<QuerySession> session_b;
  ASSERT_TRUE(pool.Acquire("b", &session_b).ok());
  EXPECT_EQ(pool.resident_count(), 1u);  // a evicted, pinned handle lives

  ExpectBitwiseEqual(before, pinned_a->Run(req), "pinned post-eviction run");

  std::shared_ptr<QuerySession> reloaded_a;
  ASSERT_TRUE(pool.Acquire("a", &reloaded_a).ok());
  EXPECT_NE(reloaded_a.get(), pinned_a.get());
  ExpectBitwiseEqual(before, reloaded_a->Run(req), "reload-after-evict run");

  for (const SessionPoolGraphStats& g : pool.stats()) {
    if (g.name == "a") {
      EXPECT_EQ(g.loads, 2u);
      EXPECT_GE(g.evictions, 1u);
    }
  }
}

TEST_F(ServeDeterminismTest, SerializedEstimatesRoundTripBitwise) {
  // The NDJSON emitter prints shortest-round-trip doubles; parsing the
  // line back must reproduce the estimate bits exactly.
  std::unique_ptr<QuerySession> session = OpenSession(/*from_sgr=*/true);
  QueryRequest req = MixedWorkload()[0];
  const QueryResult res = session->Run(req);
  const std::string line = SerializeQueryResult(res);

  JsonValue doc;
  ASSERT_TRUE(ParseJson(line, &doc).ok());
  const JsonValue* estimates = doc.Find("estimates");
  ASSERT_NE(estimates, nullptr);
  ASSERT_EQ(estimates->array.size(), res.estimates.size());
  for (size_t i = 0; i < res.estimates.size(); ++i) {
    const double parsed = estimates->array[i].number_value;
    EXPECT_EQ(std::memcmp(&parsed, &res.estimates[i], sizeof(double)), 0)
        << "estimate " << i << " lost bits through NDJSON";
  }
}

}  // namespace
}  // namespace saphyra
