#include "bicomp/isp.h"

#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "bc/brandes.h"
#include "graph/generators.h"
#include "test_util.h"

namespace saphyra {
namespace {

using testing::AllShortestPaths;
using testing::MakeGraph;
using testing::PaperFig2Graph;
using testing::RandomConnectedGraph;

// Enumerate the full ISP sample space of `isp`: every intra-component
// shortest path with its D_c probability q_st/(γ·σ_st). Small graphs only.
struct IspEnumeration {
  // Per node v: E_{p~D_c}[g(v,p)] (probability v is an inner node).
  std::vector<double> inner_mass;
  double total_probability = 0.0;
};

IspEnumeration EnumerateIsp(const IspIndex& isp) {
  const Graph& g = isp.graph();
  IspEnumeration out;
  out.inner_mass.assign(g.num_nodes(), 0.0);
  for (uint32_t c = 0; c < isp.num_components(); ++c) {
    const auto& nodes = isp.bcc().component_nodes[c];
    std::function<bool(EdgeIndex)> arc_ok = [&](EdgeIndex e) {
      return isp.bcc().arc_component[e] == c;
    };
    for (NodeId s : nodes) {
      for (NodeId t : nodes) {
        if (s == t) continue;
        auto paths = AllShortestPaths(g, s, t, &arc_ok);
        SAPHYRA_CHECK(!paths.empty());
        double p_path =
            isp.PairMass(c, s, t) / isp.gamma() / paths.size();
        for (const auto& path : paths) {
          out.total_probability += p_path;
          for (size_t i = 1; i + 1 < path.size(); ++i) {
            out.inner_mass[path[i]] += p_path;
          }
        }
      }
    }
  }
  return out;
}

TEST(IspIndex, GammaNormalizesTheDistribution) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Graph g = RandomConnectedGraph(16, 0.12, seed);
    IspIndex isp(g);
    IspEnumeration e = EnumerateIsp(isp);
    EXPECT_NEAR(e.total_probability, 1.0, 1e-9) << "seed " << seed;
  }
}

TEST(IspIndex, Lemma13DecompositionOnFig2) {
  Graph g = PaperFig2Graph();
  IspIndex isp(g);
  IspEnumeration e = EnumerateIsp(isp);
  std::vector<double> bc = BrandesBetweenness(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(bc[v], isp.gamma() * e.inner_mass[v] + isp.bca(v), 1e-9)
        << "node " << v;
  }
}

class IspRandomized : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IspRandomized, Lemma13Decomposition) {
  Rng rng(GetParam());
  NodeId n = 6 + static_cast<NodeId>(rng.UniformInt(16));
  Graph g = RandomConnectedGraph(n, rng.UniformDouble() * 0.2,
                                 GetParam() * 97 + 3);
  IspIndex isp(g);
  IspEnumeration e = EnumerateIsp(isp);
  std::vector<double> bc = BrandesBetweenness(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(bc[v], isp.gamma() * e.inner_mass[v] + isp.bca(v), 1e-9)
        << "node " << v << " seed " << GetParam();
  }
}

TEST_P(IspRandomized, BcaIsZeroForNonCutpoints) {
  Graph g = RandomConnectedGraph(20, 0.1, GetParam() + 50);
  IspIndex isp(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!isp.bcc().is_cutpoint[v]) {
      EXPECT_DOUBLE_EQ(isp.bca(v), 0.0);
    } else {
      EXPECT_GT(isp.bca(v), 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IspRandomized,
                         ::testing::Range<uint64_t>(0, 10));

TEST(IspIndex, PathGraphBca) {
  // a-b-c: bc(b) = 2/(3*2) = 1/3, entirely break-point mass.
  Graph g = MakeGraph(3, {{0, 1}, {1, 2}});
  IspIndex isp(g);
  EXPECT_NEAR(isp.bca(1), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(isp.bca(0), 0.0);
  std::vector<double> bc = BrandesBetweenness(g);
  EXPECT_NEAR(bc[1], isp.bca(1), 1e-12);
}

TEST(IspIndex, StarBcaMatchesBc) {
  // Star center: bc = (n-1)(n-2)/(n(n-1)); all of it break-point mass.
  Graph g = MakeGraph(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  IspIndex isp(g);
  std::vector<double> bc = BrandesBetweenness(g);
  EXPECT_NEAR(isp.bca(0), bc[0], 1e-12);
  EXPECT_NEAR(bc[0], 4.0 * 3.0 / (5.0 * 4.0), 1e-12);
}

TEST(IspIndex, MultistageSamplingMatchesPairMass) {
  // Empirically verify stage 1-3 of Algorithm 2: the ordered pair (s,t)
  // must be drawn with probability q_st / (γη).
  Graph g = PaperFig2Graph();
  IspIndex isp(g);
  std::vector<NodeId> all(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) all[v] = v;
  PersonalizedSpace space(isp, all);
  EXPECT_NEAR(space.eta(), 1.0, 1e-12);

  Rng rng(123);
  std::map<std::pair<NodeId, NodeId>, int> counts;
  constexpr int kDraws = 400000;
  for (int i = 0; i < kDraws; ++i) {
    uint32_t c = space.SampleComponent(&rng);
    NodeId s = isp.SampleSource(c, &rng);
    NodeId t = isp.SampleTarget(c, s, &rng);
    ++counts[{s, t}];
  }
  // Compare a handful of representative pairs.
  double total_checked = 0.0;
  for (uint32_t c = 0; c < isp.num_components(); ++c) {
    const auto& nodes = isp.bcc().component_nodes[c];
    for (NodeId s : nodes) {
      for (NodeId t : nodes) {
        if (s == t) continue;
        double expected = isp.PairMass(c, s, t) / isp.gamma();
        double got = counts[{s, t}] / static_cast<double>(kDraws);
        EXPECT_NEAR(got, expected, 0.004)
            << "pair " << s << "," << t << " comp " << c;
        total_checked += expected;
      }
    }
  }
  EXPECT_NEAR(total_checked, 1.0, 1e-9);
}

TEST(PersonalizedSpace, ComponentsOfTargets) {
  Graph g = PaperFig2Graph();
  IspIndex isp(g);
  // A = {f(5), j(9)}: I(A) = {comp(d,f), comp(i,j,k)}.
  PersonalizedSpace space(isp, {5, 9});
  EXPECT_EQ(space.component_ids().size(), 2u);
  EXPECT_EQ(space.HypothesisIndex(5), 0);
  EXPECT_EQ(space.HypothesisIndex(9), 1);
  EXPECT_EQ(space.HypothesisIndex(0), -1);
}

TEST(PersonalizedSpace, EtaMatchesEnumeration) {
  Graph g = PaperFig2Graph();
  IspIndex isp(g);
  PersonalizedSpace space(isp, {9});  // only the {i,j,k} triangle
  double expected_mass = 0.0;
  uint32_t tri = space.component_ids()[0];
  const auto& nodes = isp.bcc().component_nodes[tri];
  for (NodeId s : nodes) {
    for (NodeId t : nodes) {
      if (s != t) expected_mass += isp.PairMass(tri, s, t);
    }
  }
  EXPECT_NEAR(space.eta(), expected_mass / isp.gamma(), 1e-12);
  EXPECT_GT(space.eta(), 0.0);
  EXPECT_LT(space.eta(), 1.0);
}

TEST(PersonalizedSpace, CutpointTargetJoinsAllItsComponents) {
  Graph g = PaperFig2Graph();
  IspIndex isp(g);
  PersonalizedSpace space(isp, {3});  // d belongs to 3 components
  EXPECT_EQ(space.component_ids().size(), 3u);
}

TEST(PersonalizedSpace, WholeNetworkEtaIsOne) {
  Graph g = RandomConnectedGraph(30, 0.1, 7);
  IspIndex isp(g);
  std::vector<NodeId> all(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) all[v] = v;
  PersonalizedSpace space(isp, all);
  EXPECT_NEAR(space.eta(), 1.0, 1e-12);
}

TEST(PersonalizedSpace, SampledComponentsOnlyFromIA) {
  Graph g = PaperFig2Graph();
  IspIndex isp(g);
  PersonalizedSpace space(isp, {9, 10});
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    uint32_t c = space.SampleComponent(&rng);
    bool in_ia = false;
    for (uint32_t x : space.component_ids()) in_ia |= (x == c);
    ASSERT_TRUE(in_ia);
  }
}

TEST(IspIndex, ComponentsOfNonCutpoint) {
  Graph g = PaperFig2Graph();
  IspIndex isp(g);
  auto comps = isp.ComponentsOf(0);  // a: pentagon only
  EXPECT_EQ(comps.size(), 1u);
  auto comps_d = isp.ComponentsOf(3);
  EXPECT_EQ(comps_d.size(), 3u);
}

}  // namespace
}  // namespace saphyra
