#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace saphyra {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformIntRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformInt(bound), bound);
    }
  }
}

TEST(Rng, UniformIntBoundOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformInt(1), 0u);
}

TEST(Rng, UniformIntIsApproximatelyUniform) {
  Rng rng(11);
  constexpr uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.UniformInt(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 5 * std::sqrt(kDraws / kBuckets));
  }
}

TEST(Rng, UniformDoubleInHalfOpenUnit) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    double x = rng.UniformDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, WeightedIndexMatchesWeights) {
  Rng rng(19);
  std::vector<double> w = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.WeightedIndex(w)];
  EXPECT_NEAR(counts[0] / 100000.0, 0.1, 0.01);
  EXPECT_NEAR(counts[1] / 100000.0, 0.3, 0.01);
  EXPECT_NEAR(counts[2] / 100000.0, 0.6, 0.01);
}

TEST(Rng, WeightedIndexSkipsZeroWeights) {
  Rng rng(21);
  std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(rng.WeightedIndex(w), 1u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(23);
  Rng child = a.Split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == child.Next());
  EXPECT_LT(equal, 5);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  Rng rng(1);
  EXPECT_NE(rng(), rng());
}

TEST(AliasTable, UniformWeights) {
  Rng rng(29);
  AliasTable table(std::vector<double>(5, 1.0));
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 50000; ++i) ++counts[table.Sample(&rng)];
  for (int c : counts) EXPECT_NEAR(c / 50000.0, 0.2, 0.02);
}

TEST(AliasTable, SkewedWeights) {
  Rng rng(31);
  AliasTable table({8.0, 1.0, 1.0});
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 100000; ++i) ++counts[table.Sample(&rng)];
  EXPECT_NEAR(counts[0] / 100000.0, 0.8, 0.01);
  EXPECT_NEAR(counts[1] / 100000.0, 0.1, 0.01);
  EXPECT_NEAR(counts[2] / 100000.0, 0.1, 0.01);
}

TEST(AliasTable, ZeroWeightNeverSampled) {
  Rng rng(37);
  AliasTable table({1.0, 0.0, 1.0});
  for (int i = 0; i < 10000; ++i) EXPECT_NE(table.Sample(&rng), 1u);
}

TEST(AliasTable, SingleOutcome) {
  Rng rng(41);
  AliasTable table({3.5});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.Sample(&rng), 0u);
}

TEST(AliasTable, IndexProportionalWeightsMean) {
  Rng rng(47);
  std::vector<double> w(100);
  double num = 0, den = 0;
  for (int i = 0; i < 100; ++i) {
    w[i] = i + 1.0;
    num += i * (i + 1.0);
    den += i + 1.0;
  }
  AliasTable table(w);
  double mean = 0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) mean += static_cast<double>(table.Sample(&rng));
  mean /= kDraws;
  EXPECT_NEAR(mean, num / den, 0.5);
}

TEST(AliasTable, EmptyByDefault) {
  AliasTable table;
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.size(), 0u);
}

}  // namespace
}  // namespace saphyra
