#include "bc/brandes.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "test_util.h"

namespace saphyra {
namespace {

using testing::BruteForceBetweenness;
using testing::MakeGraph;
using testing::PaperFig2Graph;
using testing::RandomConnectedGraph;

TEST(Brandes, PathGraph) {
  // Path 0-1-2-3-4: bc(v) = 2*k*(n-1-k)/(n(n-1)) for position k.
  Graph g = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  auto bc = BrandesBetweenness(g);
  double norm = 5.0 * 4.0;
  EXPECT_NEAR(bc[0], 0.0, 1e-12);
  EXPECT_NEAR(bc[1], 2.0 * 3.0 / norm, 1e-12);
  EXPECT_NEAR(bc[2], 2.0 * 4.0 / norm, 1e-12);
  EXPECT_NEAR(bc[3], 2.0 * 3.0 / norm, 1e-12);
  EXPECT_NEAR(bc[4], 0.0, 1e-12);
}

TEST(Brandes, CompleteGraphAllZero) {
  Graph g = ErdosRenyi(6, 15, 1);  // K6
  auto bc = BrandesBetweenness(g);
  for (double x : bc) EXPECT_NEAR(x, 0.0, 1e-12);
}

TEST(Brandes, StarCenter) {
  Graph g = MakeGraph(6, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}});
  auto bc = BrandesBetweenness(g);
  EXPECT_NEAR(bc[0], 5.0 * 4.0 / (6.0 * 5.0), 1e-12);
  for (NodeId v = 1; v < 6; ++v) EXPECT_NEAR(bc[v], 0.0, 1e-12);
}

TEST(Brandes, CycleGraph) {
  // C5: each pair at distance 2 has a unique middle; bc(v) identical.
  Graph g = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  auto bc = BrandesBetweenness(g);
  for (NodeId v = 1; v < 5; ++v) EXPECT_NEAR(bc[v], bc[0], 1e-12);
  EXPECT_GT(bc[0], 0.0);
}

TEST(Brandes, DisconnectedGraph) {
  Graph g = MakeGraph(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  auto bc = BrandesBetweenness(g);
  auto brute = BruteForceBetweenness(g);
  for (NodeId v = 0; v < 6; ++v) EXPECT_NEAR(bc[v], brute[v], 1e-12);
  EXPECT_GT(bc[1], 0.0);
  EXPECT_GT(bc[4], 0.0);
}

TEST(Brandes, PaperFig2MatchesBruteForce) {
  Graph g = PaperFig2Graph();
  auto bc = BrandesBetweenness(g);
  auto brute = BruteForceBetweenness(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(bc[v], brute[v], 1e-12) << "node " << v;
  }
}

class BrandesRandomized : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BrandesRandomized, MatchesPathEnumerationOracle) {
  Rng rng(GetParam());
  NodeId n = 5 + static_cast<NodeId>(rng.UniformInt(20));
  Graph g = RandomConnectedGraph(n, rng.UniformDouble() * 0.25,
                                 GetParam() * 7 + 11);
  auto bc = BrandesBetweenness(g);
  auto brute = BruteForceBetweenness(g);
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_NEAR(bc[v], brute[v], 1e-10) << "node " << v;
  }
}

TEST_P(BrandesRandomized, ParallelMatchesSerial) {
  Graph g = RandomConnectedGraph(60, 0.05, GetParam() + 31);
  auto serial = BrandesBetweenness(g);
  auto parallel = ParallelBrandesBetweenness(g, 4);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(serial[v], parallel[v], 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BrandesRandomized,
                         ::testing::Range<uint64_t>(0, 12));

TEST(Brandes, ValuesAreProbabilities) {
  Graph g = BarabasiAlbert(200, 3, 17);
  auto bc = BrandesBetweenness(g);
  for (double x : bc) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(ParallelBrandes, SingleThreadDegenerate) {
  Graph g = RandomConnectedGraph(30, 0.1, 5);
  auto one = ParallelBrandesBetweenness(g, 1);
  auto serial = BrandesBetweenness(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(one[v], serial[v], 1e-12);
  }
}

}  // namespace
}  // namespace saphyra
