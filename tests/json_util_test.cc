#include "service/json_util.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

#include <gtest/gtest.h>

namespace saphyra {
namespace {

TEST(JsonParse, Scalars) {
  JsonValue v;
  ASSERT_TRUE(ParseJson("null", &v).ok());
  EXPECT_TRUE(v.is_null());

  ASSERT_TRUE(ParseJson("true", &v).ok());
  EXPECT_EQ(v.type, JsonValue::Type::kBool);
  EXPECT_TRUE(v.bool_value);

  ASSERT_TRUE(ParseJson("false", &v).ok());
  EXPECT_FALSE(v.bool_value);

  ASSERT_TRUE(ParseJson("  42 ", &v).ok());
  EXPECT_EQ(v.type, JsonValue::Type::kNumber);
  EXPECT_TRUE(v.is_uint);
  EXPECT_EQ(v.uint_value, 42u);
  EXPECT_DOUBLE_EQ(v.number_value, 42.0);

  ASSERT_TRUE(ParseJson("-3.5e2", &v).ok());
  EXPECT_FALSE(v.is_uint);
  EXPECT_DOUBLE_EQ(v.number_value, -350.0);

  ASSERT_TRUE(ParseJson("\"hi\\n\\\"there\\\"\"", &v).ok());
  EXPECT_EQ(v.type, JsonValue::Type::kString);
  EXPECT_EQ(v.string_value, "hi\n\"there\"");
}

TEST(JsonParse, LargeSeedKeepsExactUint) {
  // Seeds are uint64; doubles lose bits beyond 2^53.
  JsonValue v;
  ASSERT_TRUE(ParseJson("18446744073709551615", &v).ok());
  EXPECT_TRUE(v.is_uint);
  EXPECT_EQ(v.uint_value, 18446744073709551615ull);
}

TEST(JsonParse, NestedDocument) {
  JsonValue v;
  ASSERT_TRUE(ParseJson(
                  R"({"id":"q1","targets":[1,2,3],"opts":{"eps":0.05},"flag":true})",
                  &v)
                  .ok());
  ASSERT_EQ(v.type, JsonValue::Type::kObject);
  ASSERT_NE(v.Find("targets"), nullptr);
  EXPECT_EQ(v.Find("targets")->array.size(), 3u);
  EXPECT_EQ(v.Find("targets")->array[1].uint_value, 2u);
  ASSERT_NE(v.Find("opts"), nullptr);
  ASSERT_NE(v.Find("opts")->Find("eps"), nullptr);
  EXPECT_DOUBLE_EQ(v.Find("opts")->Find("eps")->number_value, 0.05);
  EXPECT_EQ(v.Find("nope"), nullptr);
}

TEST(JsonParse, EmptyContainers) {
  JsonValue v;
  ASSERT_TRUE(ParseJson("{}", &v).ok());
  EXPECT_TRUE(v.object.empty());
  ASSERT_TRUE(ParseJson("[]", &v).ok());
  EXPECT_TRUE(v.array.empty());
}

TEST(JsonParse, UnicodeEscape) {
  JsonValue v;
  ASSERT_TRUE(ParseJson("\"\\u0041\\u00e9\\u20ac\"", &v).ok());
  EXPECT_EQ(v.string_value, "A\xc3\xa9\xe2\x82\xac");  // A é €
}

TEST(JsonParse, Rejections) {
  JsonValue v;
  EXPECT_FALSE(ParseJson("", &v).ok());
  EXPECT_FALSE(ParseJson("{", &v).ok());
  EXPECT_FALSE(ParseJson("[1,]", &v).ok());
  EXPECT_FALSE(ParseJson("{\"a\":1,}", &v).ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}", &v).ok());
  EXPECT_FALSE(ParseJson("\"unterminated", &v).ok());
  EXPECT_FALSE(ParseJson("012a", &v).ok());
  // RFC 8259 number grammar: strtod is laxer than JSON and must not leak
  // through.
  EXPECT_FALSE(ParseJson("+5", &v).ok());
  EXPECT_FALSE(ParseJson(".5", &v).ok());
  EXPECT_FALSE(ParseJson("5.", &v).ok());
  EXPECT_FALSE(ParseJson("01", &v).ok());
  EXPECT_FALSE(ParseJson("-", &v).ok());
  EXPECT_FALSE(ParseJson("1e", &v).ok());
  EXPECT_FALSE(ParseJson("1e+", &v).ok());
  EXPECT_TRUE(ParseJson("0", &v).ok());
  EXPECT_TRUE(ParseJson("-0.5e+2", &v).ok());
  EXPECT_FALSE(ParseJson("NaN", &v).ok());
  EXPECT_FALSE(ParseJson("Infinity", &v).ok());
  EXPECT_FALSE(ParseJson("1e999", &v).ok());   // overflows to inf
  EXPECT_FALSE(ParseJson("{} {}", &v).ok());   // trailing garbage
  EXPECT_FALSE(ParseJson("\"\\ud800\"", &v).ok());  // surrogate
  EXPECT_FALSE(ParseJson("\"tab\there\"", &v).ok());  // raw control char
}

TEST(JsonParse, DeepNestingRejected) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  JsonValue v;
  EXPECT_FALSE(ParseJson(deep, &v).ok());
}

TEST(JsonQuoteTest, Escaping) {
  EXPECT_EQ(JsonQuote("plain"), "\"plain\"");
  EXPECT_EQ(JsonQuote("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
  EXPECT_EQ(JsonQuote(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(JsonNumberTest, RoundTripsBitwise) {
  const double values[] = {0.0,
                           1.0,
                           -1.5,
                           0.05,
                           1.0 / 3.0,
                           0.20745676337451485,
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max(),
                           -0.0};
  for (double v : values) {
    const std::string s = JsonNumber(v);
    const double back = std::strtod(s.c_str(), nullptr);
    EXPECT_EQ(std::memcmp(&back, &v, sizeof(double)), 0)
        << s << " did not round trip";
  }
}

TEST(JsonNumberTest, QuoteParseRoundTrip) {
  // A serialized string survives the parser unchanged.
  const std::string original = "we\u00e9rd \"text\"\twith\nstuff\\";
  JsonValue v;
  ASSERT_TRUE(ParseJson(JsonQuote(original), &v).ok());
  EXPECT_EQ(v.string_value, original);
}

}  // namespace
}  // namespace saphyra
