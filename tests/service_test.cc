// Unit coverage of the serving layer's building blocks: request parsing,
// canonicalization, cache-key semantics, QuerySession state, and the
// BatchScheduler's memo/dedup/LRU machinery. The bitwise serving
// determinism contract has its own suite (serve_determinism_test.cc).

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "bicomp/isp.h"
#include "graph/binary_io.h"
#include "graph/io.h"
#include "service/json_util.h"
#include "service/query.h"
#include "service/scheduler.h"
#include "service/session.h"
#include "service/session_pool.h"
#include "test_util.h"

namespace saphyra {
namespace {

using testing::PaperFig2Graph;
using testing::RandomConnectedGraph;

/// Per-process unique temp path (the fuzz sweeps taught this repo not to
/// share /tmp fixture names across concurrently running test binaries).
std::string TempPath(const std::string& stem) {
  return "/tmp/saphyra_service_test_" + std::to_string(::getpid()) + "_" +
         stem;
}

/// A text graph file + its full `.sgr` cache, removed on destruction.
struct GraphFiles {
  std::string text_path;
  std::string sgr_path;

  explicit GraphFiles(const Graph& g, const std::string& stem = "graph.txt")
      : text_path(TempPath(stem)) {
    sgr_path = SgrCachePathFor(text_path);
    SAPHYRA_CHECK(SaveSnapEdgeList(g, text_path).ok());
    Graph parsed;
    SAPHYRA_CHECK(LoadSnapEdgeList(text_path, &parsed).ok());
    IspIndex isp(parsed);
    SgrWriteOptions wopts;
    wopts.source_path = text_path;
    SAPHYRA_CHECK(WriteSgr(sgr_path, parsed, &isp.bcc(), &isp.conn(),
                           &isp.views(), &isp.tree(), wopts)
                      .ok());
  }
  ~GraphFiles() {
    std::remove(text_path.c_str());
    std::remove(sgr_path.c_str());
  }
};

TEST(ParseQueryRequestTest, FullRequest) {
  QueryRequest req;
  ASSERT_TRUE(ParseQueryRequest(
                  R"({"id":"q9","estimator":"kadabra","epsilon":0.1,)"
                  R"("delta":0.02,"seed":99,"topk":5,"strategy":"unidirectional",)"
                  R"("traversal":"topdown","threads":4,"targets":[3,1,2]})",
                  &req)
                  .ok());
  EXPECT_EQ(req.id, "q9");
  EXPECT_EQ(req.estimator, EstimatorKind::kKadabra);
  EXPECT_DOUBLE_EQ(req.epsilon, 0.1);
  EXPECT_DOUBLE_EQ(req.delta, 0.02);
  EXPECT_EQ(req.seed, 99u);
  EXPECT_EQ(req.top_k, 5u);
  EXPECT_EQ(req.strategy, SamplingStrategy::kUnidirectional);
  EXPECT_EQ(req.traversal, TraversalPolicy::kTopDown);
  EXPECT_EQ(req.num_threads, 4u);
  EXPECT_EQ(req.targets, (std::vector<NodeId>{3, 1, 2}));
}

TEST(ParseQueryRequestTest, DefaultsMatchOptionStructs) {
  QueryRequest req;
  ASSERT_TRUE(ParseQueryRequest("{}", &req).ok());
  EXPECT_EQ(req.estimator, EstimatorKind::kBc);
  EXPECT_DOUBLE_EQ(req.epsilon, 0.05);
  EXPECT_DOUBLE_EQ(req.delta, 0.01);
  EXPECT_EQ(req.seed, 1u);
  EXPECT_EQ(req.top_k, 0u);
  EXPECT_EQ(req.deadline_ms, 0u);
  EXPECT_TRUE(req.targets.empty());
}

TEST(ParseQueryRequestTest, GraphField) {
  QueryRequest req;
  ASSERT_TRUE(ParseQueryRequest(R"({"graph":"road","seed":3})", &req).ok());
  EXPECT_EQ(req.graph, "road");
  ASSERT_TRUE(ParseQueryRequest("{}", &req).ok());
  EXPECT_TRUE(req.graph.empty());
  EXPECT_FALSE(ParseQueryRequest(R"({"graph":7})", &req).ok());
}

TEST(MakeQueryCacheKeyTest, GraphNameIsRoutingOnly) {
  // The graph *name* never reaches the cache key — only the resolved
  // fingerprint does. Two names serving content-identical graphs share
  // entries; different content splits on the fingerprint.
  QueryRequest a;
  ASSERT_TRUE(CanonicalizeQuery(10, &a).ok());
  QueryRequest b = a;
  b.graph = "alias";
  EXPECT_TRUE(MakeQueryCacheKey(1, a) == MakeQueryCacheKey(1, b));
  EXPECT_FALSE(MakeQueryCacheKey(1, a) == MakeQueryCacheKey(2, b));
}

TEST(ParseQueryRequestTest, DeadlineMs) {
  QueryRequest req;
  ASSERT_TRUE(ParseQueryRequest(R"({"deadline_ms":250})", &req).ok());
  EXPECT_EQ(req.deadline_ms, 250u);
  EXPECT_FALSE(ParseQueryRequest(R"({"deadline_ms":-5})", &req).ok());
  EXPECT_FALSE(ParseQueryRequest(R"({"deadline_ms":"soon"})", &req).ok());
}

TEST(MakeQueryCacheKeyTest, DeadlineSplitsCacheEntries) {
  // A deadline-bounded query may produce different (truncated) bytes than
  // its unbounded twin, so the two must never share a memo entry.
  QueryRequest a;
  ASSERT_TRUE(CanonicalizeQuery(10, &a).ok());
  QueryRequest b = a;
  b.deadline_ms = 100;
  EXPECT_FALSE(MakeQueryCacheKey(1, a) == MakeQueryCacheKey(1, b));
  b.deadline_ms = 0;
  EXPECT_TRUE(MakeQueryCacheKey(1, a) == MakeQueryCacheKey(1, b));
}

TEST(ParseQueryRequestTest, Rejections) {
  QueryRequest req;
  // Unknown fields are hard errors: a typo must not silently run at the
  // default.
  EXPECT_FALSE(ParseQueryRequest(R"({"epsilonn":0.1})", &req).ok());
  EXPECT_FALSE(ParseQueryRequest(R"({"estimator":"brandes"})", &req).ok());
  EXPECT_FALSE(ParseQueryRequest(R"({"seed":-1})", &req).ok());
  EXPECT_FALSE(ParseQueryRequest(R"({"seed":1.5})", &req).ok());
  EXPECT_FALSE(ParseQueryRequest(R"({"targets":[1,"x"]})", &req).ok());
  EXPECT_FALSE(ParseQueryRequest(R"({"targets":7})", &req).ok());
  EXPECT_FALSE(ParseQueryRequest(R"({"strategy":"sideways"})", &req).ok());
  EXPECT_FALSE(ParseQueryRequest("[1,2]", &req).ok());
  EXPECT_FALSE(ParseQueryRequest("not json", &req).ok());
}

TEST(CanonicalizeQueryTest, SortsDedupsAndPromotes) {
  QueryRequest req;
  req.estimator = EstimatorKind::kBc;
  req.targets = {5, 1, 3, 1, 5};
  ASSERT_TRUE(CanonicalizeQuery(10, &req).ok());
  EXPECT_EQ(req.targets, (std::vector<NodeId>{1, 3, 5}));

  QueryRequest full;
  full.estimator = EstimatorKind::kBc;  // no targets
  ASSERT_TRUE(CanonicalizeQuery(10, &full).ok());
  EXPECT_EQ(full.estimator, EstimatorKind::kBcFull);
}

TEST(CanonicalizeQueryTest, ResetsInapplicableFields) {
  QueryRequest req;
  req.estimator = EstimatorKind::kCloseness;
  req.strategy = SamplingStrategy::kUnidirectional;  // ignored by closeness
  req.k = 9;                                         // ignored by closeness
  req.targets = {0, 1};
  ASSERT_TRUE(CanonicalizeQuery(10, &req).ok());
  EXPECT_EQ(req.strategy, SamplingStrategy::kBidirectional);
  EXPECT_EQ(req.k, 0u);
}

TEST(CanonicalizeQueryTest, Rejections) {
  QueryRequest req;
  req.targets = {11};
  EXPECT_FALSE(CanonicalizeQuery(10, &req).ok());  // out of range
  req = QueryRequest();
  req.epsilon = 0.0;
  EXPECT_FALSE(CanonicalizeQuery(10, &req).ok());
  req = QueryRequest();
  req.delta = 1.0;
  EXPECT_FALSE(CanonicalizeQuery(10, &req).ok());
  req = QueryRequest();
  req.estimator = EstimatorKind::kKPath;
  req.k = 0;
  EXPECT_FALSE(CanonicalizeQuery(10, &req).ok());
}

TEST(QueryCacheKeyTest, StatisticalParametersSplitKeys) {
  QueryRequest base;
  base.estimator = EstimatorKind::kBc;
  base.targets = {1, 2, 3};
  ASSERT_TRUE(CanonicalizeQuery(10, &base).ok());
  const QueryCacheKey key0 = MakeQueryCacheKey(0xABCD, base);

  std::set<std::string> seen{key0.canonical};
  auto expect_differs = [&](QueryRequest req, const char* what) {
    ASSERT_TRUE(CanonicalizeQuery(10, &req).ok()) << what;
    const QueryCacheKey key = MakeQueryCacheKey(0xABCD, req);
    EXPECT_TRUE(seen.insert(key.canonical).second)
        << what << " did not change the cache key";
  };

  QueryRequest req = base;
  req.epsilon = 0.04;
  expect_differs(req, "epsilon");
  req = base;
  req.delta = 0.02;
  expect_differs(req, "delta");
  req = base;
  req.top_k = 2;
  expect_differs(req, "top_k");
  req = base;
  req.strategy = SamplingStrategy::kUnidirectional;
  expect_differs(req, "strategy");
  req = base;
  req.seed = 2;
  expect_differs(req, "seed");
  req = base;
  req.targets = {1, 2, 4};
  expect_differs(req, "targets");
  req = base;
  req.estimator = EstimatorKind::kKadabra;
  expect_differs(req, "estimator");

  // A different graph fingerprint always splits the key.
  EXPECT_NE(MakeQueryCacheKey(0xABCE, base).canonical, key0.canonical);
}

TEST(QueryCacheKeyTest, ExecutionParametersShareKeys) {
  QueryRequest base;
  base.estimator = EstimatorKind::kBc;
  base.targets = {1, 2, 3};
  ASSERT_TRUE(CanonicalizeQuery(10, &base).ok());
  const QueryCacheKey key0 = MakeQueryCacheKey(1, base);

  QueryRequest req = base;
  req.num_threads = 8;
  req.traversal = TraversalPolicy::kTopDown;
  ASSERT_TRUE(CanonicalizeQuery(10, &req).ok());
  EXPECT_EQ(MakeQueryCacheKey(1, req), key0)
      << "execution-only fields must not split cache entries";

  // Target order and duplicates canonicalize away.
  req = base;
  req.targets = {3, 2, 1, 2};
  ASSERT_TRUE(CanonicalizeQuery(10, &req).ok());
  EXPECT_EQ(MakeQueryCacheKey(1, req), key0);

  // k is inert for estimators that ignore it...
  QueryRequest ka = base;
  ka.estimator = EstimatorKind::kKadabra;
  QueryRequest kb = ka;
  ka.k = 3;
  kb.k = 7;
  ASSERT_TRUE(CanonicalizeQuery(10, &ka).ok());
  ASSERT_TRUE(CanonicalizeQuery(10, &kb).ok());
  EXPECT_EQ(MakeQueryCacheKey(1, ka), MakeQueryCacheKey(1, kb));

  // ...but splits keys for k-path.
  ka.estimator = kb.estimator = EstimatorKind::kKPath;
  ka.k = 3;
  kb.k = 7;
  ASSERT_TRUE(CanonicalizeQuery(10, &ka).ok());
  ASSERT_TRUE(CanonicalizeQuery(10, &kb).ok());
  EXPECT_FALSE(MakeQueryCacheKey(1, ka) == MakeQueryCacheKey(1, kb));
}

TEST(FingerprintTest, StableAcrossLoadPaths) {
  GraphFiles files(RandomConnectedGraph(40, 0.1, 11));

  SessionOptions text_opts;
  text_opts.load.use_cache = false;
  std::unique_ptr<QuerySession> text_session;
  ASSERT_TRUE(
      QuerySession::Open(files.text_path, text_opts, &text_session).ok());
  EXPECT_FALSE(text_session->loaded_from_cache());

  std::unique_ptr<QuerySession> sgr_session;
  ASSERT_TRUE(
      QuerySession::Open(files.sgr_path, SessionOptions(), &sgr_session).ok());
  EXPECT_TRUE(sgr_session->loaded_from_cache());

  // Same content ⇒ same fingerprint, whether computed from the text parse
  // or read out of the `.sgr` header.
  EXPECT_NE(text_session->fingerprint(), 0u);
  EXPECT_EQ(text_session->fingerprint(), sgr_session->fingerprint());

  // Different content ⇒ different fingerprint.
  GraphFiles other(RandomConnectedGraph(40, 0.1, 12));
  std::unique_ptr<QuerySession> other_session;
  ASSERT_TRUE(
      QuerySession::Open(other.sgr_path, SessionOptions(), &other_session)
          .ok());
  EXPECT_NE(other_session->fingerprint(), sgr_session->fingerprint());
}

TEST(QuerySessionTest, LazyIndexAndErrors) {
  GraphFiles files(PaperFig2Graph());
  std::unique_ptr<QuerySession> session;
  ASSERT_TRUE(
      QuerySession::Open(files.text_path, SessionOptions(), &session).ok());
  EXPECT_FALSE(session->index_built());

  // Non-bc queries never build the index.
  QueryRequest req;
  req.estimator = EstimatorKind::kCloseness;
  req.targets = {0, 1, 2};
  QueryResult res = session->Run(req);
  ASSERT_TRUE(res.status.ok());
  EXPECT_FALSE(session->index_built());
  EXPECT_EQ(res.nodes.size(), res.estimates.size());

  // A bc query does.
  req.estimator = EstimatorKind::kBc;
  res = session->Run(req);
  ASSERT_TRUE(res.status.ok());
  EXPECT_TRUE(session->index_built());

  // Invalid requests come back as error results, not process death.
  req.targets = {1000};
  res = session->Run(req);
  EXPECT_FALSE(res.status.ok());

  // Unopenable graphs fail Open.
  std::unique_ptr<QuerySession> bad;
  EXPECT_FALSE(
      QuerySession::Open(TempPath("missing.txt"), SessionOptions(), &bad)
          .ok());
}

TEST(BatchSchedulerTest, MemoizationAndStats) {
  GraphFiles files(PaperFig2Graph());
  std::unique_ptr<QuerySession> session;
  ASSERT_TRUE(
      QuerySession::Open(files.sgr_path, SessionOptions(), &session).ok());
  BatchScheduler scheduler(session.get(), SchedulerOptions());

  QueryRequest req;
  req.estimator = EstimatorKind::kBc;
  req.targets = {0, 2, 3};
  req.seed = 5;

  QueryResult first = scheduler.Run(req);
  ASSERT_TRUE(first.status.ok());
  EXPECT_EQ(first.mode, ServeMode::kComputed);

  // Same canonical query (targets shuffled) hits the memo with identical
  // estimate bytes.
  req.targets = {3, 0, 2};
  QueryResult second = scheduler.Run(req);
  ASSERT_TRUE(second.status.ok());
  EXPECT_EQ(second.mode, ServeMode::kMemoized);
  ASSERT_EQ(first.estimates.size(), second.estimates.size());
  EXPECT_EQ(std::memcmp(first.estimates.data(), second.estimates.data(),
                        first.estimates.size() * sizeof(double)),
            0);

  // A different seed is a different query.
  req.seed = 6;
  QueryResult third = scheduler.Run(req);
  EXPECT_EQ(third.mode, ServeMode::kComputed);

  // An invalid request is counted and does not pollute the memo.
  req.targets = {999};
  EXPECT_FALSE(scheduler.Run(req).status.ok());

  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.queries, 4u);
  EXPECT_EQ(stats.computed, 2u);
  EXPECT_EQ(stats.memo_hits, 1u);
  EXPECT_EQ(stats.errors, 1u);
}

TEST(BatchSchedulerTest, LruEvicts) {
  GraphFiles files(PaperFig2Graph());
  std::unique_ptr<QuerySession> session;
  ASSERT_TRUE(
      QuerySession::Open(files.sgr_path, SessionOptions(), &session).ok());
  SchedulerOptions opts;
  opts.memo_capacity = 2;
  BatchScheduler scheduler(session.get(), opts);

  QueryRequest req;
  req.estimator = EstimatorKind::kCloseness;
  req.targets = {0, 1};

  req.seed = 1;
  scheduler.Run(req);  // memo: {1}
  req.seed = 2;
  scheduler.Run(req);  // memo: {2, 1}
  req.seed = 1;
  EXPECT_EQ(scheduler.Run(req).mode, ServeMode::kMemoized);  // touch 1
  req.seed = 3;
  scheduler.Run(req);  // evicts 2 (least recent) -> memo: {3, 1}
  req.seed = 2;
  EXPECT_EQ(scheduler.Run(req).mode, ServeMode::kComputed);  // 2 is gone
  // Re-inserting 2 evicted 1 -> memo: {2, 3}.
  req.seed = 3;
  EXPECT_EQ(scheduler.Run(req).mode, ServeMode::kMemoized);

  const SchedulerStats stats = scheduler.stats();
  EXPECT_GE(stats.evictions, 1u);

  // memo_capacity = 0 disables memoization entirely.
  SchedulerOptions off;
  off.memo_capacity = 0;
  BatchScheduler no_memo(session.get(), off);
  req.seed = 1;
  EXPECT_EQ(no_memo.Run(req).mode, ServeMode::kComputed);
  EXPECT_EQ(no_memo.Run(req).mode, ServeMode::kComputed);
}

TEST(BatchSchedulerTest, MemoChargesBytesNotJustEntries) {
  GraphFiles files(PaperFig2Graph());
  std::unique_ptr<QuerySession> session;
  ASSERT_TRUE(
      QuerySession::Open(files.sgr_path, SessionOptions(), &session).ok());

  QueryRequest req;
  req.estimator = EstimatorKind::kCloseness;
  req.targets = {0, 1};

  // Measure one entry's charged footprint through the stats gauge.
  BatchScheduler probe(session.get(), SchedulerOptions());
  req.seed = 1;
  ASSERT_TRUE(probe.Run(req).status.ok());
  const uint64_t entry_bytes = probe.stats().memo_bytes;
  ASSERT_GT(entry_bytes, 0u);

  // A budget of ~2.5 entries holds exactly two: the third insertion must
  // evict the least-recent even though the 64-entry cap is nowhere near.
  SchedulerOptions opts;
  opts.memo_capacity_bytes = entry_bytes * 5 / 2;
  BatchScheduler scheduler(session.get(), opts);
  req.seed = 1;
  scheduler.Run(req);  // memo: {1}
  req.seed = 2;
  scheduler.Run(req);  // memo: {2, 1}
  req.seed = 3;
  scheduler.Run(req);  // bytes force out 1 -> memo: {3, 2}
  EXPECT_GE(scheduler.stats().evictions, 1u);
  EXPECT_LE(scheduler.stats().memo_bytes, opts.memo_capacity_bytes);
  req.seed = 2;
  EXPECT_EQ(scheduler.Run(req).mode, ServeMode::kMemoized);
  req.seed = 1;
  EXPECT_EQ(scheduler.Run(req).mode, ServeMode::kComputed);

  // A result bigger than the whole budget is served but never cached —
  // caching it would purge the memo for a guaranteed miss.
  SchedulerOptions tiny;
  tiny.memo_capacity_bytes = entry_bytes / 2;
  BatchScheduler no_fit(session.get(), tiny);
  req.seed = 1;
  EXPECT_EQ(no_fit.Run(req).mode, ServeMode::kComputed);
  EXPECT_EQ(no_fit.Run(req).mode, ServeMode::kComputed);
  EXPECT_EQ(no_fit.stats().memo_bytes, 0u);

  // 0 = unbounded bytes (the entry cap still rules).
  SchedulerOptions unbounded;
  unbounded.memo_capacity_bytes = 0;
  BatchScheduler by_entries(session.get(), unbounded);
  req.seed = 1;
  EXPECT_EQ(by_entries.Run(req).mode, ServeMode::kComputed);
  EXPECT_EQ(by_entries.Run(req).mode, ServeMode::kMemoized);
}

TEST(BatchSchedulerTest, FullQueueStillJoinsInFlightDuplicates) {
  // Admission accounting regression: with the only slot busy and the
  // queue at max_queue, (a) a distinct query is shed, (b) a duplicate of
  // the *running* query still joins it — the header promises memo and
  // dedup hits are never shed.
  GraphFiles files(RandomConnectedGraph(120, 0.05, 21));
  std::unique_ptr<QuerySession> session;
  ASSERT_TRUE(
      QuerySession::Open(files.sgr_path, SessionOptions(), &session).ok());
  SchedulerOptions opts;
  opts.max_concurrent = 1;
  opts.max_queue = 1;
  BatchScheduler scheduler(session.get(), opts);

  // The slot owner: a tight-epsilon whole-graph run with a deadline, so
  // it holds the slot for a while but always terminates (degraded).
  QueryRequest owner;
  owner.id = "owner";
  owner.estimator = EstimatorKind::kBcFull;
  owner.epsilon = 0.005;
  owner.deadline_ms = 2000;
  std::thread owner_thread([&] { scheduler.Run(owner); });
  while (scheduler.stats().computed < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // One distinct query fills the queue...
  QueryRequest queued = owner;
  queued.id = "queued";
  queued.seed = 2;
  std::thread queued_thread([&] { scheduler.Run(queued); });
  while (scheduler.stats().queued < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // ...so the next distinct one is shed with RESOURCE_EXHAUSTED...
  QueryRequest shed = owner;
  shed.id = "shed";
  shed.seed = 3;
  const QueryResult shed_res = scheduler.Run(shed);
  EXPECT_EQ(shed_res.status.code(), StatusCode::kResourceExhausted);

  // ...but a duplicate of the in-flight owner joins it despite the full
  // queue, sharing whatever bytes the owner produces.
  QueryRequest dup = owner;
  dup.id = "owner-dup";
  const QueryResult dup_res = scheduler.Run(dup);
  EXPECT_TRUE(dup_res.status.ok()) << dup_res.status.ToString();
  EXPECT_EQ(dup_res.mode, ServeMode::kDeduped);

  owner_thread.join();
  queued_thread.join();
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.dedup_hits, 1u);
  EXPECT_EQ(stats.queued, 0u);
}

TEST(SessionPoolTest, RegisterResolveAndDefault) {
  GraphFiles a(PaperFig2Graph());
  GraphFiles b(RandomConnectedGraph(30, 0.15, 5), "graph_b.txt");

  SessionPool pool(SessionPoolOptions{});
  ASSERT_TRUE(pool.Register("a", a.sgr_path).ok());
  ASSERT_TRUE(pool.Register("b", b.sgr_path).ok());
  EXPECT_FALSE(pool.Register("a", b.sgr_path).ok());  // duplicate name
  EXPECT_FALSE(pool.Register("", a.sgr_path).ok());
  EXPECT_EQ(pool.default_name(), "a");
  EXPECT_EQ(pool.registered_count(), 2u);
  EXPECT_EQ(pool.resident_count(), 0u);  // lazy: nothing loaded yet

  // "" routes to the default graph; unknown names are NOT_FOUND.
  std::shared_ptr<QuerySession> session;
  ASSERT_TRUE(pool.Acquire("", &session).ok());
  std::shared_ptr<QuerySession> named;
  ASSERT_TRUE(pool.Acquire("a", &named).ok());
  EXPECT_EQ(session.get(), named.get());
  EXPECT_EQ(pool.Acquire("nope", &named).code(), StatusCode::kNotFound);

  // Two names for one resolved path share a single loaded session.
  ASSERT_TRUE(pool.Register("a-alias", a.sgr_path).ok());
  std::shared_ptr<QuerySession> aliased;
  ASSERT_TRUE(pool.Acquire("a-alias", &aliased).ok());
  EXPECT_EQ(aliased.get(), session.get());
  for (const SessionPoolGraphStats& g : pool.stats()) {
    if (g.name == "a" || g.name == "a-alias") {
      EXPECT_EQ(g.loads, 1u) << g.name;
      EXPECT_TRUE(g.resident) << g.name;
    }
  }
}

TEST(SessionPoolTest, FailedLoadReportsAndRetries) {
  const std::string path = TempPath("late_graph.txt");
  SessionPool pool(SessionPoolOptions{});
  ASSERT_TRUE(pool.Register("late", path).ok());

  // The file does not exist yet: the load fails with the graph name in
  // the message, and the name is not bricked.
  std::shared_ptr<QuerySession> session;
  Status st = pool.Acquire("late", &session);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("late"), std::string::npos);

  // Preload surfaces the same failure (fail-fast startup path).
  EXPECT_FALSE(pool.Preload().ok());

  // Once the file appears, the same name loads fine.
  ASSERT_TRUE(SaveSnapEdgeList(PaperFig2Graph(), path).ok());
  EXPECT_TRUE(pool.Acquire("late", &session).ok());
  EXPECT_NE(session, nullptr);
  std::remove(path.c_str());
  std::remove(SgrCachePathFor(path).c_str());
}

TEST(BatchSchedulerTest, PoolRoutingAndCrossGraphMemoIsolation) {
  GraphFiles a(PaperFig2Graph());
  GraphFiles b(RandomConnectedGraph(30, 0.15, 5), "graph_b.txt");
  SessionPool pool(SessionPoolOptions{});
  ASSERT_TRUE(pool.Register("a", a.sgr_path).ok());
  ASSERT_TRUE(pool.Register("b", b.sgr_path).ok());
  BatchScheduler scheduler(&pool, SchedulerOptions());

  // Identical statistical parameters on two different graphs: the second
  // run must compute, never hit the first graph's memo entry.
  QueryRequest req;
  req.estimator = EstimatorKind::kCloseness;
  req.targets = {0, 1, 2};
  req.graph = "a";
  QueryResult on_a = scheduler.Run(req);
  ASSERT_TRUE(on_a.status.ok());
  EXPECT_EQ(on_a.mode, ServeMode::kComputed);
  EXPECT_EQ(on_a.graph, "a");
  req.graph = "b";
  QueryResult on_b = scheduler.Run(req);
  ASSERT_TRUE(on_b.status.ok());
  EXPECT_EQ(on_b.mode, ServeMode::kComputed);
  EXPECT_EQ(on_b.graph, "b");
  EXPECT_EQ(scheduler.stats().computed, 2u);
  EXPECT_EQ(scheduler.stats().memo_hits, 0u);

  // Same graph again: now it is a memo hit.
  req.graph = "a";
  EXPECT_EQ(scheduler.Run(req).mode, ServeMode::kMemoized);

  // Unknown names answer NOT_FOUND as an error result, not process death.
  req.graph = "nope";
  const QueryResult bad = scheduler.Run(req);
  EXPECT_EQ(bad.status.code(), StatusCode::kNotFound);

  // Target validation happens against the routed graph: node 50 exists in
  // neither, but the error must name the right n.
  req.graph = "b";
  req.targets = {50};
  const QueryResult oob = scheduler.Run(req);
  EXPECT_FALSE(oob.status.ok());
  EXPECT_NE(oob.status.message().find("n=30"), std::string::npos)
      << oob.status.ToString();
}

TEST(BatchSchedulerTest, SingleSessionModeRejectsGraphNames) {
  GraphFiles files(PaperFig2Graph());
  std::unique_ptr<QuerySession> session;
  ASSERT_TRUE(
      QuerySession::Open(files.sgr_path, SessionOptions(), &session).ok());
  BatchScheduler scheduler(session.get(), SchedulerOptions());
  QueryRequest req;
  req.graph = "other";
  req.targets = {0};
  EXPECT_EQ(scheduler.Run(req).status.code(), StatusCode::kNotFound);
  req.graph.clear();
  EXPECT_TRUE(scheduler.Run(req).status.ok());
}

TEST(BatchSchedulerTest, BatchDedupsDuplicates) {
  GraphFiles files(PaperFig2Graph());
  std::unique_ptr<QuerySession> session;
  ASSERT_TRUE(
      QuerySession::Open(files.sgr_path, SessionOptions(), &session).ok());
  SchedulerOptions opts;
  opts.max_concurrent = 4;
  BatchScheduler scheduler(session.get(), opts);

  QueryRequest req;
  req.estimator = EstimatorKind::kKadabra;
  req.epsilon = 0.2;
  std::vector<QueryRequest> batch(6, req);  // six identical requests
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i].id = "dup" + std::to_string(i);
  }
  std::vector<QueryResult> results = scheduler.RunBatch(batch);
  ASSERT_EQ(results.size(), 6u);
  for (size_t i = 1; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].status.ok());
    EXPECT_EQ(results[i].id, "dup" + std::to_string(i));
    ASSERT_EQ(results[0].estimates.size(), results[i].estimates.size());
    EXPECT_EQ(std::memcmp(results[0].estimates.data(),
                          results[i].estimates.data(),
                          results[0].estimates.size() * sizeof(double)),
              0);
  }
  // Exactly one execution; the other five either shared it in flight or
  // hit the memo after it completed (timing decides which).
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.computed, 1u);
  EXPECT_EQ(stats.dedup_hits + stats.memo_hits, 5u);
}

QueryRequest UpdateReq(EdgeMutationKind kind, NodeId u, NodeId v,
                       const std::string& graph = "") {
  QueryRequest req;
  req.id = "mut";
  req.op = RequestOp::kUpdate;
  req.action = kind;
  req.edge_u = u;
  req.edge_v = v;
  req.graph = graph;
  return req;
}

bool HasEdge(const Graph& g, NodeId u, NodeId v) {
  const auto nbrs = g.neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

/// Smallest (u, v), u < v, absent from `g` — a always-valid insert.
std::pair<NodeId, NodeId> FindAbsentEdge(const Graph& g) {
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = u + 1; v < g.num_nodes(); ++v) {
      if (!HasEdge(g, u, v)) return {u, v};
    }
  }
  SAPHYRA_CHECK(false && "graph is complete");
  return {0, 0};
}

TEST(BatchSchedulerTest, UpdatesRequireOptIn) {
  GraphFiles files(PaperFig2Graph());
  std::unique_ptr<QuerySession> session;
  ASSERT_TRUE(
      QuerySession::Open(files.sgr_path, SessionOptions(), &session).ok());
  BatchScheduler scheduler(session.get(), SchedulerOptions());  // default off

  const auto [u, v] = FindAbsentEdge(session->graph());
  const QueryResult res =
      scheduler.Run(UpdateReq(EdgeMutationKind::kInsert, u, v));
  EXPECT_EQ(res.status.code(), StatusCode::kFailedPrecondition)
      << res.status.ToString();
  EXPECT_EQ(scheduler.stats().updates, 0u);
  EXPECT_EQ(session->epoch(), 0u);  // the session was never touched
}

TEST(BatchSchedulerTest, UpdateInvalidatesMemoForExactlyTheMutatedGraph) {
  GraphFiles a(PaperFig2Graph());
  GraphFiles b(RandomConnectedGraph(30, 0.15, 5), "graph_b.txt");
  SessionPool pool(SessionPoolOptions{});
  ASSERT_TRUE(pool.Register("a", a.sgr_path).ok());
  ASSERT_TRUE(pool.Register("b", b.sgr_path).ok());
  SchedulerOptions opts;
  opts.allow_updates = true;
  BatchScheduler scheduler(&pool, opts);

  QueryRequest req;
  req.estimator = EstimatorKind::kCloseness;
  req.targets = {0, 1, 2};
  req.graph = "a";
  const QueryResult pre = scheduler.Run(req);
  ASSERT_TRUE(pre.status.ok());
  req.graph = "b";
  ASSERT_TRUE(scheduler.Run(req).status.ok());
  req.graph = "a";
  EXPECT_EQ(scheduler.Run(req).mode, ServeMode::kMemoized);
  req.graph = "b";
  EXPECT_EQ(scheduler.Run(req).mode, ServeMode::kMemoized);

  // Mutate graph a only.
  std::shared_ptr<QuerySession> sa;
  ASSERT_TRUE(pool.Acquire("a", &sa).ok());
  const auto [u, v] = FindAbsentEdge(sa->graph());
  const QueryResult mut =
      scheduler.Run(UpdateReq(EdgeMutationKind::kInsert, u, v, "a"));
  ASSERT_TRUE(mut.status.ok()) << mut.status.ToString();
  EXPECT_EQ(mut.epoch, 1u);
  EXPECT_EQ(scheduler.stats().updates, 1u);

  // The memoized pre-update answer for a must never be served again: the
  // chained fingerprint moved, so the same canonical query recomputes.
  req.graph = "a";
  const QueryResult post = scheduler.Run(req);
  ASSERT_TRUE(post.status.ok());
  EXPECT_EQ(post.mode, ServeMode::kComputed);
  // ... while graph b, untouched, keeps serving from its memo entry.
  req.graph = "b";
  EXPECT_EQ(scheduler.Run(req).mode, ServeMode::kMemoized);
  // The post-update entry memoizes under the new fingerprint.
  req.graph = "a";
  const QueryResult again = scheduler.Run(req);
  EXPECT_EQ(again.mode, ServeMode::kMemoized);
  ASSERT_EQ(post.estimates.size(), again.estimates.size());
  EXPECT_EQ(std::memcmp(post.estimates.data(), again.estimates.data(),
                        post.estimates.size() * sizeof(double)),
            0);
}

TEST(BatchSchedulerTest, UpdateRejectionsLeaveTheEpochAlone) {
  GraphFiles files(PaperFig2Graph());
  std::unique_ptr<QuerySession> session;
  ASSERT_TRUE(
      QuerySession::Open(files.sgr_path, SessionOptions(), &session).ok());
  SchedulerOptions opts;
  opts.allow_updates = true;
  BatchScheduler scheduler(session.get(), opts);

  const Graph& g = session->graph();
  const NodeId n = g.num_nodes();
  const NodeId pu = 0;
  const NodeId pv = g.neighbors(0).front();  // a present edge
  const auto [au, av] = FindAbsentEdge(g);

  // Duplicate insert, delete of an absent edge, self loop, out-of-range
  // endpoint: all INVALID_ARGUMENT, none may bump the epoch.
  for (const QueryRequest& bad :
       {UpdateReq(EdgeMutationKind::kInsert, pu, pv),
        UpdateReq(EdgeMutationKind::kDelete, au, av),
        UpdateReq(EdgeMutationKind::kInsert, 3, 3),
        UpdateReq(EdgeMutationKind::kDelete, 0, n)}) {
    const QueryResult res = scheduler.Run(bad);
    EXPECT_EQ(res.status.code(), StatusCode::kInvalidArgument)
        << res.status.ToString();
  }
  EXPECT_EQ(session->epoch(), 0u);
  EXPECT_EQ(scheduler.stats().updates, 0u);
  EXPECT_EQ(scheduler.stats().errors, 4u);

  // And the same endpoints in a *valid* mutation still go through.
  const QueryResult ok =
      scheduler.Run(UpdateReq(EdgeMutationKind::kInsert, au, av));
  ASSERT_TRUE(ok.status.ok()) << ok.status.ToString();
  EXPECT_EQ(ok.epoch, 1u);
  EXPECT_EQ(session->epoch(), 1u);
}

TEST(BatchSchedulerTest, SnapshotIsolationUnderConcurrentUpdates) {
  GraphFiles files(RandomConnectedGraph(36, 0.12, 21));

  // Pick four inserts that are all absent from the base graph and
  // pairwise distinct; applied in order they define epochs 1..4.
  std::vector<std::pair<NodeId, NodeId>> inserts;
  {
    std::unique_ptr<QuerySession> probe;
    ASSERT_TRUE(
        QuerySession::Open(files.sgr_path, SessionOptions(), &probe).ok());
    const Graph& g = probe->graph();
    for (NodeId u = 0; u < g.num_nodes() && inserts.size() < 4; ++u) {
      for (NodeId v = u + 1; v < g.num_nodes() && inserts.size() < 4; ++v) {
        if (!HasEdge(g, u, v)) inserts.push_back({u, v});
      }
    }
    ASSERT_EQ(inserts.size(), 4u);
  }

  QueryRequest query;
  query.estimator = EstimatorKind::kBc;
  query.epsilon = 0.2;
  query.seed = 3;
  query.targets = {0, 1, 2, 3, 4, 5};

  // The per-epoch reference bytes: a cold session per prefix of the
  // mutation stream, served serial and memo-free.
  std::vector<std::vector<double>> expected;
  for (size_t e = 0; e <= inserts.size(); ++e) {
    std::unique_ptr<QuerySession> session;
    ASSERT_TRUE(
        QuerySession::Open(files.sgr_path, SessionOptions(), &session).ok());
    for (size_t i = 0; i < e; ++i) {
      ASSERT_TRUE(session
                      ->ApplyUpdate({EdgeMutationKind::kInsert,
                                     inserts[i].first, inserts[i].second})
                      .ok());
    }
    SchedulerOptions oracle_opts;
    oracle_opts.memo_capacity = 0;
    BatchScheduler oracle(session.get(), oracle_opts);
    const QueryResult res = oracle.Run(query);
    ASSERT_TRUE(res.status.ok()) << res.status.ToString();
    expected.push_back(res.estimates);
  }

  // Interleave: 8 query threads hammer the scheduler while the main
  // thread applies the stream. Every answer must be bitwise identical to
  // one of the five epoch references — a query whose snapshot were
  // swapped out from under it mid-flight would match none of them.
  std::unique_ptr<QuerySession> session;
  ASSERT_TRUE(
      QuerySession::Open(files.sgr_path, SessionOptions(), &session).ok());
  SchedulerOptions opts;
  opts.max_concurrent = 8;
  opts.memo_capacity = 16;
  opts.allow_updates = true;
  BatchScheduler scheduler(session.get(), opts);

  constexpr int kThreads = 8;
  constexpr int kIterations = 6;
  std::vector<std::vector<std::vector<double>>> seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&scheduler, &seen, &query, t] {
      for (int i = 0; i < kIterations; ++i) {
        QueryResult res = scheduler.Run(query);
        SAPHYRA_CHECK(res.status.ok());
        seen[t].push_back(std::move(res.estimates));
      }
    });
  }
  for (const auto& [u, v] : inserts) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    const QueryResult res =
        scheduler.Run(UpdateReq(EdgeMutationKind::kInsert, u, v));
    ASSERT_TRUE(res.status.ok()) << res.status.ToString();
  }
  for (std::thread& t : threads) t.join();

  auto matches_epoch = [&expected](const std::vector<double>& got) {
    for (const std::vector<double>& ref : expected) {
      if (ref.size() == got.size() &&
          std::memcmp(ref.data(), got.data(), ref.size() * sizeof(double)) ==
              0) {
        return true;
      }
    }
    return false;
  };
  for (int t = 0; t < kThreads; ++t) {
    for (size_t i = 0; i < seen[t].size(); ++i) {
      EXPECT_TRUE(matches_epoch(seen[t][i]))
          << "thread " << t << " iteration " << i
          << ": result matches no epoch's reference bytes";
    }
  }

  // Once the stream has fully drained, only the final epoch may answer.
  const QueryResult settled = scheduler.Run(query);
  ASSERT_TRUE(settled.status.ok());
  ASSERT_EQ(settled.estimates.size(), expected.back().size());
  EXPECT_EQ(std::memcmp(settled.estimates.data(), expected.back().data(),
                        expected.back().size() * sizeof(double)),
            0);
  EXPECT_EQ(session->epoch(), inserts.size());
}

TEST(SerializeQueryResultTest, Shapes) {
  QueryResult res;
  res.id = "q\"1";
  res.estimator = EstimatorKind::kKPath;
  res.mode = ServeMode::kMemoized;
  res.samples_used = 77;
  res.seconds = 0.25;
  res.nodes = {4, 9};
  res.estimates = {0.5, 1.0 / 3.0};
  const std::string line = SerializeQueryResult(res);
  EXPECT_EQ(line,
            "{\"id\":\"q\\\"1\",\"ok\":true,\"estimator\":\"kpath\","
            "\"served\":\"memo\",\"samples\":77,\"seconds\":0.25,"
            "\"nodes\":[4,9],\"estimates\":[0.5," +
                JsonNumber(1.0 / 3.0) + "]}");

  // The graph name is echoed right after the id — but only when the
  // request routed by name, so single-graph lines keep their old shape.
  res.graph = "road";
  EXPECT_EQ(SerializeQueryResult(res),
            "{\"id\":\"q\\\"1\",\"graph\":\"road\",\"ok\":true,"
            "\"estimator\":\"kpath\",\"served\":\"memo\",\"samples\":77,"
            "\"seconds\":0.25,\"nodes\":[4,9],\"estimates\":[0.5," +
                JsonNumber(1.0 / 3.0) + "]}");
  res.graph.clear();

  QueryResult err;
  err.id = "bad";
  err.status = Status::InvalidArgument("nope");
  EXPECT_EQ(SerializeQueryResult(err),
            "{\"id\":\"bad\",\"ok\":false,\"code\":\"INVALID_ARGUMENT\","
            "\"error\":\"InvalidArgument: nope\"}");

  QueryResult deg;
  deg.id = "slow";
  deg.estimator = EstimatorKind::kBcFull;
  deg.samples_used = 128;
  deg.seconds = 0.05;
  deg.degraded = true;
  deg.epsilon_achieved = 0.125;
  deg.nodes = {0};
  deg.estimates = {0.25};
  EXPECT_EQ(SerializeQueryResult(deg),
            "{\"id\":\"slow\",\"ok\":true,\"estimator\":\"bc-full\","
            "\"served\":\"computed\",\"samples\":128,\"seconds\":0.05,"
            "\"degraded\":true,\"degrade_reason\":\"deadline\","
            "\"epsilon_achieved\":0.125,"
            "\"nodes\":[0],\"estimates\":[0.25]}");

  // A lost worker tier degrades with its own reason on the wire.
  deg.degrade_reason = StatusCode::kUnavailable;
  EXPECT_NE(SerializeQueryResult(deg).find("\"degrade_reason\":\"shard_lost\""),
            std::string::npos);
  deg.degrade_reason = StatusCode::kDeadlineExceeded;

  // Truncation before any variance estimate: the achieved bound is
  // infinite, which JSON spells null.
  deg.epsilon_achieved = std::numeric_limits<double>::infinity();
  EXPECT_NE(SerializeQueryResult(deg).find("\"epsilon_achieved\":null"),
            std::string::npos);
}

}  // namespace
}  // namespace saphyra
