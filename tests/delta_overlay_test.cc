// DeltaOverlay unit tests: mutation validation (the INVALID_ARGUMENT
// taxonomy the serving tier surfaces), effective-view accessors, the
// materialize-equals-rebuild contract (a linear merge of base + deltas is
// bitwise the GraphBuilder CSR of the mutated edge list), rebase
// semantics, and the overlay adjacency adapter against the σ-BFS oracle
// on the materialized graph.

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "graph/adjacency.h"
#include "graph/bfs.h"
#include "graph/delta_overlay.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "test_util.h"
#include "util/rng.h"

namespace saphyra {
namespace {

using testing::MakeGraph;

void ExpectGraphBitwiseEqual(const Graph& a, const Graph& b,
                             const std::string& what) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes()) << what;
  ASSERT_EQ(a.max_degree(), b.max_degree()) << what;
  const auto ao = a.raw_offsets(), bo = b.raw_offsets();
  ASSERT_TRUE(std::equal(ao.begin(), ao.end(), bo.begin(), bo.end())) << what;
  const auto aa = a.raw_adj(), ba = b.raw_adj();
  ASSERT_TRUE(std::equal(aa.begin(), aa.end(), ba.begin(), ba.end())) << what;
}

TEST(DeltaOverlayTest, EmptyOverlayMatchesBase) {
  Graph base = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {0, 2}});
  DeltaOverlay overlay(&base);
  EXPECT_EQ(overlay.num_nodes(), 5u);
  EXPECT_EQ(overlay.num_edges(), 4u);
  EXPECT_EQ(overlay.delta_size(), 0u);
  EXPECT_TRUE(overlay.HasEdge(0, 2));
  EXPECT_FALSE(overlay.HasEdge(0, 3));
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(overlay.degree(v), base.degree(v));
  ExpectGraphBitwiseEqual(overlay.Materialize(), base, "empty overlay");
}

TEST(DeltaOverlayTest, InsertAndRemoveValidation) {
  Graph base = MakeGraph(4, {{0, 1}, {1, 2}});
  DeltaOverlay overlay(&base);
  // Out-of-range endpoints.
  EXPECT_EQ(overlay.Insert(0, 4).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(overlay.Insert(9, 0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(overlay.Remove(0, 4).code(), StatusCode::kInvalidArgument);
  // Self loop.
  EXPECT_EQ(overlay.Insert(2, 2).code(), StatusCode::kInvalidArgument);
  // Duplicate of a live base edge (either direction).
  EXPECT_EQ(overlay.Insert(0, 1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(overlay.Insert(1, 0).code(), StatusCode::kInvalidArgument);
  // Delete of a non-existent edge.
  EXPECT_EQ(overlay.Remove(0, 3).code(), StatusCode::kInvalidArgument);
  // Valid insert; duplicate of the pending insert now rejected too.
  ASSERT_TRUE(overlay.Insert(0, 3).ok());
  EXPECT_EQ(overlay.Insert(3, 0).code(), StatusCode::kInvalidArgument);
  // Double delete: the second sees no edge.
  ASSERT_TRUE(overlay.Remove(1, 2).ok());
  EXPECT_EQ(overlay.Remove(1, 2).code(), StatusCode::kInvalidArgument);
  // Failed mutations left the state consistent.
  EXPECT_EQ(overlay.num_edges(), 2u);
  EXPECT_TRUE(overlay.HasEdge(0, 3));
  EXPECT_FALSE(overlay.HasEdge(1, 2));
}

TEST(DeltaOverlayTest, CancellingMutationsRestoreTheBase) {
  Graph base = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  DeltaOverlay overlay(&base);
  // Delete a base edge, then re-insert it: tombstone cleared in place.
  ASSERT_TRUE(overlay.Remove(1, 2).ok());
  EXPECT_EQ(overlay.delta_size(), 1u);
  ASSERT_TRUE(overlay.Insert(2, 1).ok());
  EXPECT_EQ(overlay.delta_size(), 0u);
  // Insert a new edge, then delete it: pending insert cancelled.
  ASSERT_TRUE(overlay.Insert(0, 3).ok());
  ASSERT_TRUE(overlay.Remove(3, 0).ok());
  EXPECT_EQ(overlay.delta_size(), 0u);
  ExpectGraphBitwiseEqual(overlay.Materialize(), base, "cancelled deltas");
}

TEST(DeltaOverlayTest, NeighborIterationIsSortedMergeOrder) {
  Graph base = MakeGraph(8, {{3, 1}, {3, 5}, {3, 7}});
  DeltaOverlay overlay(&base);
  ASSERT_TRUE(overlay.Insert(3, 0).ok());
  ASSERT_TRUE(overlay.Insert(3, 6).ok());
  ASSERT_TRUE(overlay.Insert(3, 2).ok());
  ASSERT_TRUE(overlay.Remove(3, 5).ok());
  std::vector<NodeId> got;
  overlay.ForEachNeighbor(3, [&](NodeId v) { got.push_back(v); });
  EXPECT_EQ(got, (std::vector<NodeId>{0, 1, 2, 6, 7}));
  EXPECT_EQ(overlay.degree(3), 5u);
}

TEST(DeltaOverlayTest, RebaseDropsDeltas) {
  Graph base = MakeGraph(4, {{0, 1}, {1, 2}});
  DeltaOverlay overlay(&base);
  ASSERT_TRUE(overlay.Insert(2, 3).ok());
  ASSERT_TRUE(overlay.Remove(0, 1).ok());
  Graph compacted = overlay.Materialize();
  overlay.Rebase(&compacted);
  EXPECT_EQ(overlay.delta_size(), 0u);
  EXPECT_EQ(overlay.num_edges(), compacted.num_edges());
  ExpectGraphBitwiseEqual(overlay.Materialize(), compacted, "post rebase");
  // The overlay keeps mutating against the new base.
  ASSERT_TRUE(overlay.Insert(0, 1).ok());
  EXPECT_EQ(overlay.delta_size(), 1u);
}

// The core contract: a random mutation stream applied through the
// overlay materializes to the exact CSR a from-scratch GraphBuilder
// produces for the mutated edge list — offsets, adjacency, max_degree.
TEST(DeltaOverlayTest, MaterializeMatchesRebuildUnderRandomStreams) {
  struct Case {
    const char* name;
    Graph graph;
  };
  std::vector<Case> cases;
  cases.push_back({"er", ErdosRenyi(120, 400, 7)});
  cases.push_back({"ba", BarabasiAlbert(100, 3, 11)});
  cases.push_back({"ws", WattsStrogatz(90, 6, 0.1, 13)});
  cases.push_back({"grid", RoadGrid(9, 9, 0.9, 17).graph});
  cases.push_back({"sbm", StochasticBlockModel(80, 4, 0.2, 0.01, 19)});
  for (auto& c : cases) {
    SCOPED_TRACE(c.name);
    const NodeId n = c.graph.num_nodes();
    std::set<std::pair<NodeId, NodeId>> edges;
    for (auto e : c.graph.UndirectedEdges()) edges.insert(e);
    DeltaOverlay overlay(&c.graph);
    Rng rng(100 + n);
    for (int step = 0; step < 200; ++step) {
      NodeId u = static_cast<NodeId>(rng.UniformInt(n));
      NodeId v = static_cast<NodeId>(rng.UniformInt(n));
      if (u == v) continue;
      if (u > v) std::swap(u, v);
      if (edges.count({u, v})) {
        ASSERT_TRUE(overlay.Remove(u, v).ok());
        edges.erase({u, v});
      } else {
        ASSERT_TRUE(overlay.Insert(u, v).ok());
        edges.insert({u, v});
      }
      ASSERT_EQ(overlay.num_edges(), edges.size());
    }
    GraphBuilder builder;
    for (auto [u, v] : edges) builder.AddEdge(u, v);
    Graph rebuilt;
    ASSERT_TRUE(builder.Build(n, &rebuilt).ok());
    ExpectGraphBitwiseEqual(overlay.Materialize(), rebuilt, c.name);
  }
}

// OverlayAdj plugs into the substrate-generic σ-BFS: dist and σ match the
// materialized graph's on every source, pre-compaction.
TEST(DeltaOverlayTest, OverlayAdapterBfsMatchesMaterialized) {
  Graph base = ErdosRenyi(80, 200, 23);
  DeltaOverlay overlay(&base);
  Rng rng(29);
  for (int step = 0; step < 60; ++step) {
    NodeId u = static_cast<NodeId>(rng.UniformInt(80));
    NodeId v = static_cast<NodeId>(rng.UniformInt(80));
    if (u == v) continue;
    if (overlay.HasEdge(u, v)) {
      ASSERT_TRUE(overlay.Remove(u, v).ok());
    } else {
      ASSERT_TRUE(overlay.Insert(u, v).ok());
    }
  }
  Graph materialized = overlay.Materialize();
  OverlayAdj overlay_adj{&overlay};
  GlobalAdj csr_adj{&materialized};
  for (NodeId s = 0; s < 80; s += 7) {
    SpDag want = BfsWithCountsOver(csr_adj, 80, s);
    SpDag got = BfsWithCountsOver(overlay_adj, 80, s);
    EXPECT_EQ(got.dist, want.dist) << "source " << s;
    EXPECT_EQ(got.sigma, want.sigma) << "source " << s;
    EXPECT_EQ(got.order, want.order) << "source " << s;
  }
}

}  // namespace
}  // namespace saphyra
