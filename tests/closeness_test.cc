#include "closeness/closeness.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "metrics/rank.h"
#include "stats/vc.h"
#include "test_util.h"

namespace saphyra {
namespace {

using testing::MakeGraph;
using testing::PaperFig2Graph;
using testing::RandomConnectedGraph;

TEST(ExactHarmonicCloseness, PathGraph) {
  // Path 0-1-2: hc(1) = (1 + 1)/2 = 1; hc(0) = (1 + 1/2)/2 = 0.75.
  Graph g = MakeGraph(3, {{0, 1}, {1, 2}});
  auto hc = ExactHarmonicCloseness(g);
  EXPECT_NEAR(hc[1], 1.0, 1e-12);
  EXPECT_NEAR(hc[0], 0.75, 1e-12);
  EXPECT_NEAR(hc[2], 0.75, 1e-12);
}

TEST(ExactHarmonicCloseness, CompleteGraphAllOne) {
  Graph g = ErdosRenyi(6, 15, 1);  // K6
  for (double x : ExactHarmonicCloseness(g)) EXPECT_NEAR(x, 1.0, 1e-12);
}

TEST(ExactHarmonicCloseness, DisconnectedContributesZero) {
  Graph g = MakeGraph(4, {{0, 1}, {2, 3}});
  auto hc = ExactHarmonicCloseness(g);
  EXPECT_NEAR(hc[0], 1.0 / 3.0, 1e-12);  // one reachable node of three
}

TEST(HarmonicClosenessProblem, ExactRisksAreDegreeOver2n) {
  Graph g = PaperFig2Graph();
  HarmonicClosenessProblem problem(g, {0, 2, 3});
  std::vector<double> exact;
  double lambda_hat = problem.ComputeExactRisks(&exact);
  EXPECT_DOUBLE_EQ(lambda_hat, 0.5);
  EXPECT_NEAR(exact[0], g.degree(0) / 22.0, 1e-12);
  EXPECT_NEAR(exact[1], g.degree(2) / 22.0, 1e-12);
  EXPECT_NEAR(exact[2], g.degree(3) / 22.0, 1e-12);
}

TEST(HarmonicClosenessProblem, RiskToCentralityScale) {
  Graph g = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  HarmonicClosenessProblem problem(g, {0});
  // risk = ((n-1)/n) * hc  =>  hc = risk * n/(n-1).
  EXPECT_NEAR(problem.RiskToCentrality(0.8), 0.8 * 5.0 / 4.0, 1e-12);
}

class ClosenessRandomized : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClosenessRandomized, EstimatesWithinEpsilon) {
  Rng rng(GetParam());
  Graph g = RandomConnectedGraph(40, 0.08, GetParam() * 11 + 1);
  auto truth = ExactHarmonicCloseness(g);
  std::vector<NodeId> targets;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (rng.Bernoulli(0.3)) targets.push_back(v);
  }
  if (targets.empty()) targets.push_back(0);
  SaphyraOptions opts;
  opts.epsilon = 0.04;
  opts.delta = 0.05;
  opts.seed = GetParam() + 60;
  auto est = EstimateHarmonicCloseness(g, targets, opts);
  for (size_t i = 0; i < targets.size(); ++i) {
    // The framework guarantee is on the risk scale; converting to the hc
    // scale inflates the allowance by n/(n-1).
    double allowance = opts.epsilon * g.num_nodes() / (g.num_nodes() - 1.0);
    EXPECT_NEAR(est[i], truth[targets[i]], allowance)
        << "target " << targets[i] << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosenessRandomized,
                         ::testing::Range<uint64_t>(0, 8));

TEST(Closeness, RankingQualityOnSmallWorld) {
  Graph g = WattsStrogatz(300, 6, 0.15, 21);
  auto truth = ExactHarmonicCloseness(g);
  std::vector<NodeId> targets;
  for (NodeId v = 0; v < 60; ++v) targets.push_back(v * 5);
  SaphyraOptions opts;
  opts.epsilon = 0.01;
  opts.delta = 0.01;
  opts.seed = 8;
  auto est = EstimateHarmonicCloseness(g, targets, opts);
  std::vector<double> truth_sub(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) truth_sub[i] = truth[targets[i]];
  EXPECT_GT(SpearmanCorrelation(truth_sub, est), 0.8);
}

TEST(Closeness, DeterministicForSeed) {
  Graph g = BarabasiAlbert(100, 2, 5);
  SaphyraOptions opts;
  opts.epsilon = 0.05;
  opts.seed = 77;
  auto a = EstimateHarmonicCloseness(g, {1, 2, 3}, opts);
  auto b = EstimateHarmonicCloseness(g, {1, 2, 3}, opts);
  EXPECT_EQ(a, b);
}

TEST(Closeness, LeafVsHubOrdering) {
  // A star: the center must rank above every leaf.
  Graph g = MakeGraph(8, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {0, 6},
                          {0, 7}});
  SaphyraOptions opts;
  opts.epsilon = 0.02;
  opts.seed = 3;
  auto est = EstimateHarmonicCloseness(g, {0, 1, 2}, opts);
  EXPECT_GT(est[0], est[1]);
  EXPECT_GT(est[0], est[2]);
}

TEST(Closeness, VarianceReductionClaim8) {
  // The exact subspace removes the adjacency mass (half the x-mass). The
  // combined estimator must therefore use fewer samples than the direct
  // estimation at the same (eps, delta) on a dense graph, where lambda_hat
  // covers a big risk share.
  Graph g = BarabasiAlbert(200, 8, 13);
  std::vector<NodeId> targets;
  for (NodeId v = 0; v < 20; ++v) targets.push_back(v * 7);
  SaphyraOptions opts;
  opts.epsilon = 0.02;
  opts.delta = 0.05;
  opts.seed = 31;
  HarmonicClosenessProblem partitioned(g, targets);
  SaphyraResult with_partition = RunSaphyra(&partitioned, opts);
  EXPECT_LE(with_partition.max_samples,
            VcSampleBound(opts.epsilon, opts.delta,
                          partitioned.VcDimension()));
}

}  // namespace
}  // namespace saphyra
