// Tests for multithreaded sample generation (SaphyraOptions::num_threads):
// correctness of the merged counts, determinism for a fixed (seed, threads)
// pair, and end-to-end (eps, delta) accuracy for every problem type that
// implements CloneForSampling.

#include <memory>

#include <gtest/gtest.h>

#include "bc/brandes.h"
#include "bc/saphyra_bc.h"
#include "closeness/closeness.h"
#include "core/saphyra.h"
#include "graph/generators.h"
#include "kpath/kpath.h"
#include "test_util.h"

namespace saphyra {
namespace {

using testing::RandomConnectedGraph;

/// Clonable synthetic problem: Bernoulli losses with known risks.
class CloneableSynthetic : public HypothesisRankingProblem {
 public:
  explicit CloneableSynthetic(std::vector<double> risks)
      : risks_(std::move(risks)) {}

  size_t num_hypotheses() const override { return risks_.size(); }
  double ComputeExactRisks(std::vector<double>* exact) override {
    exact->assign(risks_.size(), 0.0);
    return 0.0;
  }
  void SampleApproxLosses(Rng* rng, std::vector<uint32_t>* hits) override {
    for (size_t i = 0; i < risks_.size(); ++i) {
      if (rng->Bernoulli(risks_[i])) hits->push_back(i);
    }
  }
  double VcDimension() const override { return 2.0; }
  std::unique_ptr<HypothesisRankingProblem> CloneForSampling() override {
    return std::make_unique<CloneableSynthetic>(risks_);
  }

 private:
  std::vector<double> risks_;
};

TEST(ParallelSampling, AccurateWithFourThreads) {
  CloneableSynthetic p({0.1, 0.3, 0.02});
  SaphyraOptions opts;
  opts.epsilon = 0.03;
  opts.delta = 0.05;
  opts.seed = 5;
  opts.num_threads = 4;
  SaphyraResult res = RunSaphyra(&p, opts);
  EXPECT_NEAR(res.combined_risks[0], 0.1, opts.epsilon);
  EXPECT_NEAR(res.combined_risks[1], 0.3, opts.epsilon);
  EXPECT_NEAR(res.combined_risks[2], 0.02, opts.epsilon);
}

TEST(ParallelSampling, DeterministicForFixedSeedAndThreads) {
  SaphyraOptions opts;
  opts.epsilon = 0.05;
  opts.seed = 9;
  opts.num_threads = 3;
  CloneableSynthetic p1({0.2, 0.05});
  CloneableSynthetic p2({0.2, 0.05});
  SaphyraResult a = RunSaphyra(&p1, opts);
  SaphyraResult b = RunSaphyra(&p2, opts);
  EXPECT_EQ(a.samples_used, b.samples_used);
  EXPECT_EQ(a.combined_risks, b.combined_risks);
}

TEST(ParallelSampling, NonClonableProblemFallsBackToSerial) {
  // The base class returns nullptr from CloneForSampling: the engine must
  // silently run single-threaded.
  class NonClonable : public HypothesisRankingProblem {
   public:
    size_t num_hypotheses() const override { return 1; }
    double ComputeExactRisks(std::vector<double>* e) override {
      e->assign(1, 0.0);
      return 0.0;
    }
    void SampleApproxLosses(Rng* rng, std::vector<uint32_t>* hits) override {
      if (rng->Bernoulli(0.25)) hits->push_back(0);
    }
    double VcDimension() const override { return 1.0; }
  };
  NonClonable p;
  SaphyraOptions opts;
  opts.epsilon = 0.05;
  opts.num_threads = 8;
  SaphyraResult res = RunSaphyra(&p, opts);
  EXPECT_NEAR(res.combined_risks[0], 0.25, opts.epsilon);
}

TEST(ParallelSampling, SaphyraBcMatchesTruthWithThreads) {
  Graph g = RandomConnectedGraph(50, 0.08, 17);
  IspIndex isp(g);
  std::vector<double> truth = BrandesBetweenness(g);
  std::vector<NodeId> targets = {1, 5, 9, 13, 17, 21, 25};
  SaphyraBcOptions opts;
  opts.epsilon = 0.04;
  opts.delta = 0.05;
  opts.seed = 3;
  opts.num_threads = 4;
  SaphyraBcResult res = RunSaphyraBc(isp, targets, opts);
  for (size_t i = 0; i < targets.size(); ++i) {
    EXPECT_NEAR(res.bc[i], truth[targets[i]], opts.epsilon);
  }
}

TEST(ParallelSampling, SaphyraBcDeterministicWithThreads) {
  Graph g = BarabasiAlbert(120, 2, 23);
  IspIndex isp(g);
  SaphyraBcOptions opts;
  opts.epsilon = 0.05;
  opts.seed = 11;
  opts.num_threads = 2;
  SaphyraBcResult a = RunSaphyraBc(isp, {3, 7, 11}, opts);
  SaphyraBcResult b = RunSaphyraBc(isp, {3, 7, 11}, opts);
  EXPECT_EQ(a.bc, b.bc);
}

TEST(ParallelSampling, KPathWithThreads) {
  Graph g = RandomConnectedGraph(10, 0.15, 29);
  std::vector<NodeId> targets = {0, 2, 4, 6};
  auto truth = ExactKPathCentralityBruteForce(g, targets, 3);
  SaphyraOptions opts;
  opts.epsilon = 0.05;
  opts.delta = 0.05;
  opts.seed = 31;
  opts.num_threads = 3;
  auto est = EstimateKPathCentrality(g, targets, 3, opts);
  for (size_t i = 0; i < targets.size(); ++i) {
    EXPECT_NEAR(est[i], truth[i], opts.epsilon);
  }
}

TEST(ParallelSampling, ClosenessWithThreads) {
  Graph g = RandomConnectedGraph(40, 0.1, 37);
  auto truth = ExactHarmonicCloseness(g);
  std::vector<NodeId> targets = {0, 10, 20, 30};
  SaphyraOptions opts;
  opts.epsilon = 0.04;
  opts.delta = 0.05;
  opts.seed = 41;
  opts.num_threads = 4;
  auto est = EstimateHarmonicCloseness(g, targets, opts);
  double allowance = opts.epsilon * g.num_nodes() / (g.num_nodes() - 1.0);
  for (size_t i = 0; i < targets.size(); ++i) {
    EXPECT_NEAR(est[i], truth[targets[i]], allowance);
  }
}

}  // namespace
}  // namespace saphyra
