#include "kpath/kpath.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "test_util.h"

namespace saphyra {
namespace {

using testing::MakeGraph;
using testing::RandomConnectedGraph;

TEST(KPath, ExactRisksMatchClosedFormOnPath) {
  // Path 0-1-2; k=2. l=1 walks: start anywhere (prob 1/3 each), one step.
  Graph g = MakeGraph(3, {{0, 1}, {1, 2}});
  KPathProblem problem(g, {0, 1, 2}, /*k=*/2);
  std::vector<double> exact;
  double lambda_hat = problem.ComputeExactRisks(&exact);
  EXPECT_NEAR(lambda_hat, 0.5, 1e-12);  // l = 1 with prob 1/k = 1/2
  // l_hat(v) = (1 + sum_{u in N(v)} 1/deg(u)) / (n k).
  EXPECT_NEAR(exact[0], (1.0 + 0.5) / 6.0, 1e-12);      // N(0) = {1}, deg 2
  EXPECT_NEAR(exact[1], (1.0 + 1.0 + 1.0) / 6.0, 1e-12);  // two deg-1 nbrs
  EXPECT_NEAR(exact[2], (1.0 + 0.5) / 6.0, 1e-12);
}

TEST(KPath, ExactRisksSumMatchesLambdaTimesExpectedNodes) {
  // Each 1-hop walk contains exactly 2 nodes, so summing l_hat over all
  // nodes gives 2/k.
  Graph g = RandomConnectedGraph(20, 0.1, 3);
  std::vector<NodeId> all(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) all[v] = v;
  KPathProblem problem(g, all, /*k=*/4);
  std::vector<double> exact;
  double lambda_hat = problem.ComputeExactRisks(&exact);
  EXPECT_NEAR(lambda_hat, 0.25, 1e-12);
  double sum = 0.0;
  for (double x : exact) sum += x;
  EXPECT_NEAR(sum, 2.0 / 4.0, 1e-12);
}

TEST(KPath, VcBoundFollowsLemma5) {
  Graph g = MakeGraph(3, {{0, 1}, {1, 2}});
  EXPECT_DOUBLE_EQ(KPathProblem(g, {0}, 1).VcDimension(), 2.0);   // k+1=2
  EXPECT_DOUBLE_EQ(KPathProblem(g, {0}, 3).VcDimension(), 3.0);   // k+1=4
  EXPECT_DOUBLE_EQ(KPathProblem(g, {0}, 7).VcDimension(), 4.0);   // k+1=8
}

class KPathRandomized : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KPathRandomized, EstimatesMatchBruteForceWithinEpsilon) {
  Rng rng(GetParam());
  Graph g = RandomConnectedGraph(10, 0.15, GetParam() * 3 + 2);
  std::vector<NodeId> targets;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (rng.Bernoulli(0.5)) targets.push_back(v);
  }
  if (targets.empty()) targets.push_back(0);
  const uint32_t k = 3;
  std::vector<double> truth = ExactKPathCentralityBruteForce(g, targets, k);
  SaphyraOptions opts;
  opts.epsilon = 0.05;
  opts.delta = 0.05;
  opts.seed = GetParam() + 40;
  std::vector<double> est = EstimateKPathCentrality(g, targets, k, opts);
  ASSERT_EQ(est.size(), targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    EXPECT_NEAR(est[i], truth[i], opts.epsilon)
        << "target " << targets[i] << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KPathRandomized,
                         ::testing::Range<uint64_t>(0, 8));

TEST(KPath, BruteForceProbabilitiesAreSane) {
  Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  std::vector<double> truth = ExactKPathCentralityBruteForce(g, {0, 1, 2, 3}, 2);
  for (double x : truth) {
    EXPECT_GT(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
  // Symmetric graph: symmetric values.
  EXPECT_NEAR(truth[0], truth[3], 1e-12);
  EXPECT_NEAR(truth[1], truth[2], 1e-12);
  // Middle nodes are hit more often than endpoints.
  EXPECT_GT(truth[1], truth[0]);
}

TEST(KPath, HigherKVisitsMoreNodes) {
  Graph g = RandomConnectedGraph(12, 0.1, 5);
  std::vector<double> k2 = ExactKPathCentralityBruteForce(g, {0}, 2);
  std::vector<double> k4 = ExactKPathCentralityBruteForce(g, {0}, 4);
  // Not monotone in general per node, but for the start-anywhere model the
  // total mass of walks touching a node grows with walk length on average.
  EXPECT_GT(k4[0] + 0.2, k2[0]);  // loose sanity bound
}

TEST(KPath, RejectsInvalidTargets) {
  Graph g = MakeGraph(3, {{0, 1}, {1, 2}});
  EXPECT_DEATH(KPathProblem(g, {0, 0}, 2), "duplicate");
}

}  // namespace
}  // namespace saphyra
