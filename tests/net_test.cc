// The shard tier's socket plumbing: endpoint parsing, length-prefixed
// framing over real sockets (short reads, big frames, deadlines), and the
// unix-domain listen/connect/accept rendezvous the worker launcher uses.

#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/frame.h"
#include "net/socket.h"
#include "util/failpoint.h"

namespace saphyra {
namespace {

TEST(EndpointTest, ParsesUnixAndTcpSpecs) {
  net::Endpoint ep;
  ASSERT_TRUE(net::ParseEndpoint("unix:/tmp/x.sock", &ep).ok());
  EXPECT_TRUE(ep.is_unix);
  EXPECT_EQ(ep.path, "/tmp/x.sock");
  EXPECT_EQ(net::EndpointToString(ep), "unix:/tmp/x.sock");

  ASSERT_TRUE(net::ParseEndpoint("tcp:127.0.0.1:9000", &ep).ok());
  EXPECT_FALSE(ep.is_unix);
  EXPECT_EQ(ep.host, "127.0.0.1");
  EXPECT_EQ(ep.port, 9000);
  EXPECT_EQ(net::EndpointToString(ep), "tcp:127.0.0.1:9000");

  EXPECT_FALSE(net::ParseEndpoint("", &ep).ok());
  EXPECT_FALSE(net::ParseEndpoint("bogus", &ep).ok());
  EXPECT_FALSE(net::ParseEndpoint("tcp:nohost", &ep).ok());
  EXPECT_FALSE(net::ParseEndpoint("tcp:host:notaport", &ep).ok());
  EXPECT_FALSE(net::ParseEndpoint("unix:", &ep).ok());
}

TEST(FrameTest, RoundTripsFramesInOrder) {
  net::UniqueFd a, b;
  ASSERT_TRUE(net::SocketPair(&a, &b).ok());
  const std::vector<std::string> messages = {
      "", "x", std::string("binary\0payload", 14), std::string(100000, 'q')};
  for (const std::string& msg : messages) {
    ASSERT_TRUE(net::SendFrame(a.get(), msg, Deadline::AfterMillis(5000)).ok());
  }
  for (const std::string& msg : messages) {
    std::string got;
    ASSERT_TRUE(
        net::RecvFrame(b.get(), &got, Deadline::AfterMillis(5000)).ok());
    EXPECT_EQ(got, msg);
  }
}

TEST(FrameTest, LargeFrameSurvivesShortReadsAndWrites) {
  // 8 MiB is far past any socket buffer, so both directions exercise the
  // partial-transfer loops; the reader runs concurrently to drain.
  net::UniqueFd a, b;
  ASSERT_TRUE(net::SocketPair(&a, &b).ok());
  std::string big(8u << 20, '\0');
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<char>(i * 31);

  std::string got;
  Status recv_st;
  std::thread reader([&] {
    recv_st = net::RecvFrame(b.get(), &got, Deadline::AfterMillis(30000));
  });
  Status send_st = net::SendFrame(a.get(), big, Deadline::AfterMillis(30000));
  reader.join();
  ASSERT_TRUE(send_st.ok()) << send_st.ToString();
  ASSERT_TRUE(recv_st.ok()) << recv_st.ToString();
  EXPECT_TRUE(got == big);
}

TEST(FrameTest, RecvHonorsDeadlineOnSilentPeer) {
  net::UniqueFd a, b;
  ASSERT_TRUE(net::SocketPair(&a, &b).ok());
  std::string got;
  Status st = net::RecvFrame(b.get(), &got, Deadline::AfterMillis(50));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.ToString();
}

TEST(FrameTest, PeerCloseIsIOErrorNotCrash) {
  net::UniqueFd a, b;
  ASSERT_TRUE(net::SocketPair(&a, &b).ok());
  a.Reset();
  std::string got;
  Status st = net::RecvFrame(b.get(), &got, Deadline::AfterMillis(1000));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError) << st.ToString();

  // Writing into the closed peer must be an error too — never SIGPIPE
  // (MSG_NOSIGNAL), which would kill the coordinator.
  st = net::SendFrame(b.get(), std::string(1u << 20, 'z'),
                      Deadline::AfterMillis(1000));
  EXPECT_FALSE(st.ok());
}

TEST(SocketTest, UnixListenConnectAcceptRendezvous) {
  const std::string path =
      "/tmp/saphyra_net_test_" + std::to_string(::getpid()) + ".sock";
  net::Endpoint ep;
  ep.is_unix = true;
  ep.path = path;
  net::UniqueFd listener;
  ASSERT_TRUE(net::Listen(ep, &listener).ok());
  // Rebinding the same path must not fail on the stale socket file.
  net::UniqueFd listener2;
  listener.Reset();
  ASSERT_TRUE(net::Listen(ep, &listener2).ok());

  net::UniqueFd client;
  Status connect_st;
  std::thread connector([&] { connect_st = net::Connect(ep, &client); });
  net::UniqueFd server_side;
  Status accept_st =
      net::Accept(listener2.get(), Deadline::AfterMillis(5000), &server_side);
  connector.join();
  ASSERT_TRUE(connect_st.ok()) << connect_st.ToString();
  ASSERT_TRUE(accept_st.ok()) << accept_st.ToString();

  ASSERT_TRUE(net::SendFrame(client.get(), "ping", Deadline::AfterMillis(5000))
                  .ok());
  std::string got;
  ASSERT_TRUE(
      net::RecvFrame(server_side.get(), &got, Deadline::AfterMillis(5000))
          .ok());
  EXPECT_EQ(got, "ping");
  std::remove(path.c_str());
}

TEST(SocketTest, AcceptHonorsDeadlineWithNoClient) {
  const std::string path =
      "/tmp/saphyra_net_test_idle_" + std::to_string(::getpid()) + ".sock";
  net::Endpoint ep;
  ep.is_unix = true;
  ep.path = path;
  net::UniqueFd listener;
  ASSERT_TRUE(net::Listen(ep, &listener).ok());
  net::UniqueFd conn;
  Status st = net::Accept(listener.get(), Deadline::AfterMillis(50), &conn);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.ToString();
  std::remove(path.c_str());
}

#ifdef SAPHYRA_FAILPOINTS
TEST(FrameTest, TransportFailpointsInjectIOErrors) {
  ASSERT_TRUE(fail::Inject("net.send", "1*io-error(injected)"));
  net::UniqueFd a, b;
  ASSERT_TRUE(net::SocketPair(&a, &b).ok());
  Status st = net::SendFrame(a.get(), "x", Deadline::AfterMillis(1000));
  EXPECT_FALSE(st.ok());
  // One-shot action consumed: the next send goes through...
  ASSERT_TRUE(net::SendFrame(a.get(), "x", Deadline::AfterMillis(1000)).ok());

  // ...and the receive side has its own site.
  ASSERT_TRUE(fail::Inject("net.recv", "1*io-error(injected)"));
  std::string got;
  EXPECT_FALSE(net::RecvFrame(b.get(), &got, Deadline::AfterMillis(1000)).ok());
  ASSERT_TRUE(
      net::RecvFrame(b.get(), &got, Deadline::AfterMillis(1000)).ok());
  EXPECT_EQ(got, "x");
  fail::ClearAll();
}
#endif

}  // namespace
}  // namespace saphyra
