#include "baselines/kadabra.h"

#include <gtest/gtest.h>

#include "bc/brandes.h"
#include "graph/generators.h"
#include "test_util.h"

namespace saphyra {
namespace {

using testing::MakeGraph;
using testing::PaperFig2Graph;
using testing::RandomConnectedGraph;

TEST(Kadabra, EstimatesWithinEpsilonOnFig2) {
  Graph g = PaperFig2Graph();
  std::vector<double> truth = BrandesBetweenness(g);
  KadabraOptions opts;
  opts.epsilon = 0.05;
  opts.delta = 0.05;
  opts.seed = 1;
  KadabraResult res = RunKadabra(g, opts);
  ASSERT_EQ(res.bc.size(), g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(res.bc[v], truth[v], opts.epsilon) << "node " << v;
  }
}

class KadabraRandomized : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KadabraRandomized, WithinEpsilonOnRandomGraphs) {
  Graph g = RandomConnectedGraph(30, 0.1, GetParam());
  std::vector<double> truth = BrandesBetweenness(g);
  KadabraOptions opts;
  opts.epsilon = 0.05;
  opts.delta = 0.05;
  opts.seed = GetParam() + 20;
  KadabraResult res = RunKadabra(g, opts);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(res.bc[v], truth[v], opts.epsilon);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KadabraRandomized,
                         ::testing::Range<uint64_t>(0, 6));

TEST(Kadabra, DeterministicForSeed) {
  Graph g = BarabasiAlbert(60, 2, 7);
  KadabraOptions opts;
  opts.epsilon = 0.1;
  opts.seed = 8;
  KadabraResult a = RunKadabra(g, opts);
  KadabraResult b = RunKadabra(g, opts);
  EXPECT_EQ(a.samples_used, b.samples_used);
  EXPECT_EQ(a.bc, b.bc);
}

TEST(Kadabra, ProducesFalseZerosOnLowCentralityNodes) {
  // The pathology the paper highlights: at loose epsilon, nodes with tiny
  // bc are estimated as zero by path sampling.
  Graph g = RoadGrid(14, 14, 0.8, 9).graph;
  std::vector<double> truth = BrandesBetweenness(g);
  KadabraOptions opts;
  opts.epsilon = 0.2;  // loose: few samples
  opts.seed = 10;
  KadabraResult res = RunKadabra(g, opts);
  uint64_t false_zeros = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (truth[v] > 0.0 && res.bc[v] == 0.0) ++false_zeros;
  }
  EXPECT_GT(false_zeros, 0u);
}

TEST(Kadabra, UnidirectionalStrategyWorks) {
  Graph g = RandomConnectedGraph(25, 0.12, 11);
  std::vector<double> truth = BrandesBetweenness(g);
  KadabraOptions opts;
  opts.epsilon = 0.06;
  opts.strategy = SamplingStrategy::kUnidirectional;
  opts.seed = 12;
  KadabraResult res = RunKadabra(g, opts);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(res.bc[v], truth[v], opts.epsilon);
  }
}

TEST(Kadabra, DisconnectedGraph) {
  Graph g = MakeGraph(7, {{0, 1}, {1, 2}, {3, 4}, {4, 5}, {5, 6}});
  std::vector<double> truth = BrandesBetweenness(g);
  KadabraOptions opts;
  opts.epsilon = 0.06;
  opts.seed = 13;
  KadabraResult res = RunKadabra(g, opts);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(res.bc[v], truth[v], opts.epsilon);
  }
}

TEST(Kadabra, ReportsSampleCounts) {
  Graph g = BarabasiAlbert(50, 2, 15);
  KadabraOptions opts;
  opts.epsilon = 0.1;
  KadabraResult res = RunKadabra(g, opts);
  EXPECT_GT(res.samples_used, 0u);
  EXPECT_GE(res.epochs, 1u);
  EXPECT_GT(res.seconds, 0.0);
}

}  // namespace
}  // namespace saphyra
