// Tests of the shared progressive sampling scheduler: the determinism
// contract (output bitwise identical across thread counts and wave
// batching, for every frontend), the checkpoint schedule, and the
// individual stopping rules.

#include "core/progressive_sampler.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/abra.h"
#include "baselines/kadabra.h"
#include "bc/brandes.h"
#include "bc/saphyra_bc.h"
#include "graph/generators.h"
#include "test_util.h"

namespace saphyra {
namespace {

using testing::RandomConnectedGraph;

/// Clonable 0/1 problem with known risks (Bernoulli losses).
class BernoulliProblem : public HypothesisRankingProblem {
 public:
  explicit BernoulliProblem(std::vector<double> risks)
      : risks_(std::move(risks)) {}
  size_t num_hypotheses() const override { return risks_.size(); }
  double ComputeExactRisks(std::vector<double>* exact) override {
    exact->assign(risks_.size(), 0.0);
    return 0.0;
  }
  void SampleApproxLosses(Rng* rng, std::vector<uint32_t>* hits) override {
    for (size_t i = 0; i < risks_.size(); ++i) {
      if (rng->Bernoulli(risks_[i])) hits->push_back(i);
    }
  }
  double VcDimension() const override { return 2.0; }
  std::unique_ptr<HypothesisRankingProblem> CloneForSampling() override {
    return std::make_unique<BernoulliProblem>(risks_);
  }

 private:
  std::vector<double> risks_;
};

/// Clonable weighted problem: hypothesis i's loss is a scaled uniform
/// draw, so the fixed-point moment accumulation is exercised.
class WeightedProblem : public HypothesisRankingProblem {
 public:
  explicit WeightedProblem(size_t k) : k_(k) {}
  size_t num_hypotheses() const override { return k_; }
  double ComputeExactRisks(std::vector<double>* exact) override {
    exact->assign(k_, 0.0);
    return 0.0;
  }
  bool has_weighted_losses() const override { return true; }
  void SampleApproxLosses(Rng*, std::vector<uint32_t>*) override {
    FAIL() << "weighted problem must be sampled through the weighted hook";
  }
  void SampleWeightedLosses(Rng* rng,
                            std::vector<WeightedHit>* hits) override {
    for (size_t i = 0; i < k_; ++i) {
      hits->push_back({static_cast<uint32_t>(i),
                       rng->UniformDouble() / static_cast<double>(i + 1)});
    }
  }
  double VcDimension() const override { return 2.0; }
  std::unique_ptr<HypothesisRankingProblem> CloneForSampling() override {
    return std::make_unique<WeightedProblem>(k_);
  }

 private:
  size_t k_;
};

// ---------------------------------------------------------------------------
// Determinism stress: ranking output bitwise equal across thread counts
// {1, 2, 8} × wave schedules {coarse, fine} × traversal policy (hybrid
// kernel on/off) and across repeated runs.
// ---------------------------------------------------------------------------

struct ExecutionVariant {
  uint32_t num_threads;
  uint64_t max_wave;
  TraversalPolicy traversal;
};

const ExecutionVariant kVariants[] = {
    // coarse waves (one per checkpoint), hybrid kernel off / on
    {1, 0, TraversalPolicy::kTopDown},
    {2, 0, TraversalPolicy::kTopDown},
    {8, 0, TraversalPolicy::kTopDown},
    {1, 0, TraversalPolicy::kHybrid},
    {2, 0, TraversalPolicy::kHybrid},
    {8, 0, TraversalPolicy::kHybrid},
    // fine waves (at most 17 samples), hybrid kernel off / on
    {1, 17, TraversalPolicy::kTopDown},
    {2, 17, TraversalPolicy::kTopDown},
    {8, 17, TraversalPolicy::kTopDown},
    {1, 17, TraversalPolicy::kHybrid},
    {2, 17, TraversalPolicy::kHybrid},
    {8, 17, TraversalPolicy::kHybrid},
};

TEST(ProgressiveDeterminism, SaphyraBcBitwiseAcrossThreadsAndWaves) {
  Graph g = BarabasiAlbert(150, 2, 31);
  IspIndex isp(g);
  const std::vector<NodeId> targets = {2, 9, 23, 47, 88, 120};
  std::vector<double> reference;
  uint64_t reference_rejected = 0;
  for (const ExecutionVariant& v : kVariants) {
    SaphyraBcOptions opts;
    opts.epsilon = 0.03;
    opts.seed = 7;
    opts.num_threads = v.num_threads;
    opts.max_wave = v.max_wave;
    opts.traversal = v.traversal;
    SaphyraBcResult res = RunSaphyraBc(isp, targets, opts);
    // Repeat run with the same variant: bitwise identical.
    SaphyraBcResult res2 = RunSaphyraBc(isp, targets, opts);
    EXPECT_EQ(res.bc, res2.bc) << "repeat run diverged";
    EXPECT_EQ(res.samples_used, res2.samples_used);
    if (reference.empty()) {
      reference = res.bc;
      reference_rejected = res.rejected_samples;
    } else {
      EXPECT_EQ(res.bc, reference)
          << "threads=" << v.num_threads << " max_wave=" << v.max_wave
          << " traversal=" << TraversalPolicyName(v.traversal);
      // Rejections are counted across every sampling worker (the clones
      // share the counter), so the diagnostic is execution-invariant too.
      EXPECT_EQ(res.rejected_samples, reference_rejected);
    }
  }
}

TEST(ProgressiveDeterminism, KadabraBitwiseAcrossThreadsAndWaves) {
  Graph g = RandomConnectedGraph(60, 0.08, 13);
  std::vector<double> reference;
  uint64_t reference_samples = 0;
  for (const ExecutionVariant& v : kVariants) {
    KadabraOptions opts;
    opts.epsilon = 0.08;
    opts.seed = 3;
    opts.num_threads = v.num_threads;
    opts.max_wave = v.max_wave;
    opts.traversal = v.traversal;
    KadabraResult res = RunKadabra(g, opts);
    if (reference.empty()) {
      reference = res.bc;
      reference_samples = res.samples_used;
    } else {
      EXPECT_EQ(res.bc, reference)
          << "threads=" << v.num_threads << " max_wave=" << v.max_wave
          << " traversal=" << TraversalPolicyName(v.traversal);
      EXPECT_EQ(res.samples_used, reference_samples);
    }
  }
}

TEST(ProgressiveDeterminism, AbraWeightedBitwiseAcrossThreadsAndWaves) {
  // ABRA exercises the fixed-point moment path: double accumulation would
  // break bitwise equality here, integer accumulation cannot.
  Graph g = RandomConnectedGraph(50, 0.08, 5);
  std::vector<double> reference;
  for (const ExecutionVariant& v : kVariants) {
    AbraOptions opts;
    opts.epsilon = 0.08;
    opts.seed = 11;
    opts.num_threads = v.num_threads;
    opts.max_wave = v.max_wave;
    AbraResult res = RunAbra(g, opts);
    if (reference.empty()) {
      reference = res.bc;
    } else {
      EXPECT_EQ(res.bc, reference)
          << "threads=" << v.num_threads << " max_wave=" << v.max_wave;
    }
  }
}

TEST(ProgressiveDeterminism, TopKModeBitwiseAcrossThreadsAndWaves) {
  Graph g = BarabasiAlbert(100, 3, 17);
  IspIndex isp(g);
  std::vector<NodeId> all(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) all[v] = v;
  std::vector<double> reference;
  for (const ExecutionVariant& v : kVariants) {
    SaphyraBcOptions opts;
    opts.epsilon = 0.05;
    opts.seed = 19;
    opts.top_k = 5;
    opts.num_threads = v.num_threads;
    opts.max_wave = v.max_wave;
    opts.traversal = v.traversal;
    SaphyraBcResult res = RunSaphyraBc(isp, all, opts);
    if (reference.empty()) {
      reference = res.bc;
    } else {
      EXPECT_EQ(res.bc, reference)
          << "threads=" << v.num_threads << " max_wave=" << v.max_wave;
    }
  }
}

// ---------------------------------------------------------------------------
// Engine-level wave independence (the striped quota rule).
// ---------------------------------------------------------------------------

TEST(SampleEngineStriping, MergedCountsIndependentOfBatching) {
  BernoulliProblem p1({0.2, 0.5, 0.05});
  BernoulliProblem p2({0.2, 0.5, 0.05});
  Rng r1(23), r2(23);
  SampleEngine one_shot(&p1, 4, &r1, nullptr);
  SampleEngine batched(&p2, 4, &r2, nullptr);
  std::vector<uint64_t> a(3, 0), b(3, 0);
  one_shot.Draw(0, 1000, &a);
  uint64_t n = 0;
  for (uint64_t target : {3u, 64u, 65u, 700u, 1000u}) {
    n = batched.Draw(n, target, &b);
  }
  EXPECT_EQ(a, b);
}

TEST(SampleEngineStriping, WeightedStatsIndependentOfBatching) {
  WeightedProblem p1(4), p2(4);
  Rng r1(29), r2(29);
  SampleEngine one_shot(&p1, 4, &r1, nullptr);
  SampleEngine batched(&p2, 4, &r2, nullptr);
  SampleStats a, b;
  one_shot.Draw(0, 500, &a);
  uint64_t n = 0;
  for (uint64_t target : {7u, 128u, 200u, 500u}) {
    n = batched.Draw(n, target, &b);
  }
  ASSERT_TRUE(a.weighted);
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(a.sums, b.sums);          // bitwise: fixed-point accumulation
  EXPECT_EQ(a.sum_squares, b.sum_squares);
}

// ---------------------------------------------------------------------------
// Schedule and stopping rules.
// ---------------------------------------------------------------------------

TEST(ProgressiveSchedule, PlannedChecksMatchesExecutedChecks) {
  BernoulliProblem p({0.5});  // max variance: never stops early
  ProgressiveOptions opts;
  opts.initial_samples = 32;
  opts.max_samples = 1000;
  opts.growth = 2.0;
  Rng rng(1);
  ProgressiveSampler sampler(&p, opts, &rng);
  FixedBudgetRule rule;
  ProgressiveResult run = sampler.Run(&rule);
  EXPECT_EQ(run.samples_used, 1000u);
  EXPECT_FALSE(run.stopped_early);
  EXPECT_EQ(run.checks_used, PlannedChecks(32, 1000, 2.0));
}

TEST(ProgressiveSchedule, PlannedChecksHandlesDegenerateGeometry) {
  EXPECT_EQ(PlannedChecks(32, 32, 2.0), 1u);
  EXPECT_EQ(PlannedChecks(64, 32, 2.0), 1u);   // initial above the cap
  EXPECT_EQ(PlannedChecks(32, 64, 2.0), 2u);
  EXPECT_GE(PlannedChecks(2, 1u << 20, 1.1), 10u);
}

TEST(ProgressiveSchedule, FineWavesReachEveryCheckpoint) {
  BernoulliProblem p({0.5});
  ProgressiveOptions opts;
  opts.initial_samples = 10;
  opts.max_samples = 100;
  opts.max_wave = 3;  // many waves per checkpoint
  Rng rng(2);
  ProgressiveSampler sampler(&p, opts, &rng);
  FixedBudgetRule rule;
  ProgressiveResult run = sampler.Run(&rule);
  EXPECT_EQ(run.samples_used, 100u);
  EXPECT_GT(run.waves_used, run.checks_used);
}

TEST(StoppingRules, EpsilonGuaranteeStopsEarlyOnLowVariance) {
  BernoulliProblem p({0.001, 0.0});
  ProgressiveOptions opts;
  opts.initial_samples = 256;
  opts.max_samples = 1u << 20;
  Rng rng(3);
  ProgressiveSampler sampler(&p, opts, &rng);
  EpsilonGuaranteeRule rule(0.05, 0.05, 2);
  ProgressiveResult run = sampler.Run(&rule);
  EXPECT_TRUE(run.stopped_early);
  EXPECT_LT(run.samples_used, opts.max_samples);
  EXPECT_LE(rule.last_worst_epsilon(), 0.05);
}

TEST(StoppingRules, EpsilonGuaranteeRunsToCapOnHighVariance) {
  BernoulliProblem p({0.5});
  ProgressiveOptions opts;
  opts.initial_samples = 32;
  opts.max_samples = 2000;
  Rng rng(4);
  ProgressiveSampler sampler(&p, opts, &rng);
  EpsilonGuaranteeRule rule(0.01, 0.05, 1);
  ProgressiveResult run = sampler.Run(&rule);
  EXPECT_FALSE(run.stopped_early);
  EXPECT_EQ(run.samples_used, 2000u);
}

TEST(StoppingRules, TopKSeparationStopsOnWellSeparatedRisks) {
  BernoulliProblem p({0.9, 0.85, 0.05, 0.02, 0.01});
  ProgressiveOptions opts;
  opts.initial_samples = 64;
  opts.max_samples = 1u << 22;
  Rng rng(5);
  ProgressiveSampler sampler(&p, opts, &rng);
  TopKSeparationRule rule(2, 0.05, {}, {}, 1.0);
  ProgressiveResult run = sampler.Run(&rule);
  EXPECT_TRUE(run.stopped_early);
  EXPECT_GE(rule.last_gap(), 0.0);
}

TEST(StoppingRules, TopKCoveringAllHypothesesRunsToTheCap) {
  // "Separation" of a top-k that covers every hypothesis is vacuous, and
  // stopping at the first check would hand back minimally-sampled
  // estimates with no guarantee. The rule must fall through to the VC
  // cap (frontends route such requests to ε-mode before this point).
  BernoulliProblem p({0.4, 0.6});
  ProgressiveOptions opts;
  opts.initial_samples = 16;
  opts.max_samples = 2048;
  Rng rng(6);
  ProgressiveSampler sampler(&p, opts, &rng);
  TopKSeparationRule rule(2, 0.05, {}, {}, 1.0);
  ProgressiveResult run = sampler.Run(&rule);
  EXPECT_FALSE(run.stopped_early);
  EXPECT_EQ(run.samples_used, 2048u);
}

TEST(StoppingRules, DegenerateTopKFallsBackToEpsilonMode) {
  // Frontend-level routing: top_k >= num nodes is a full ranking request.
  Graph g = RandomConnectedGraph(20, 0.1, 3);
  KadabraOptions eps_mode;
  eps_mode.epsilon = 0.1;
  eps_mode.seed = 2;
  KadabraOptions degenerate = eps_mode;
  degenerate.top_k = g.num_nodes() + 5;
  KadabraResult a = RunKadabra(g, eps_mode);
  KadabraResult b = RunKadabra(g, degenerate);
  EXPECT_EQ(a.bc, b.bc);
  EXPECT_EQ(a.samples_used, b.samples_used);
}

TEST(StoppingRules, TopKOffsetsChangeTheSelectedSet) {
  // Sampled means alone rank hypothesis 0 first; a large exact offset on
  // hypothesis 1 must flip the separation decision to {1}.
  BernoulliProblem p({0.4, 0.1});
  ProgressiveOptions opts;
  opts.initial_samples = 512;
  opts.max_samples = 1u << 22;
  Rng rng(7);
  ProgressiveSampler sampler(&p, opts, &rng);
  TopKSeparationRule rule(1, 0.05, {}, {0.0, 5.0}, 1.0);
  ProgressiveResult run = sampler.Run(&rule);
  ASSERT_TRUE(run.stopped_early);
  // With the offset, hypothesis 1's lower bound (≥ 5.0) dominates
  // hypothesis 0's upper bound (≤ 0.4 + width) from the first check.
  EXPECT_EQ(run.samples_used, 512u);
}

}  // namespace
}  // namespace saphyra
