#include "bc/vc_bc.h"

#include <gtest/gtest.h>

#include "graph/bfs.h"
#include "graph/generators.h"
#include "test_util.h"

namespace saphyra {
namespace {

using testing::MakeGraph;
using testing::PaperFig2Graph;
using testing::RandomConnectedGraph;

TEST(RiondatoVcBound, CycleGraph) {
  // C8: exact diameter 4; the 2-ecc upper bound gives VD_ub in [4, 8].
  Graph g = MakeGraph(8, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6},
                          {6, 7}, {7, 0}});
  double b = RiondatoVcBound(g);
  // floor(log2(VD_ub - 1)) + 1 for VD_ub in [4, 8] -> in [2, 3].
  EXPECT_GE(b, 2.0);
  EXPECT_LE(b, 3.0);
}

TEST(RiondatoVcBound, GrowsWithDiameter) {
  Graph small = WattsStrogatz(64, 4, 0.3, 3);   // small world, tiny diameter
  Graph large = RoadGrid(40, 3, 1.0, 4).graph;  // long strip
  EXPECT_LE(RiondatoVcBound(small), RiondatoVcBound(large));
}

TEST(FullNetworkVcBound, TreeIsZero) {
  // Trees have only bridge components: no component hosts inner nodes.
  Graph g = RandomTree(50, 7);
  IspIndex isp(g);
  EXPECT_DOUBLE_EQ(FullNetworkVcBound(isp), 0.0);
}

TEST(FullNetworkVcBound, AtMostRiondatoOnBicompRichGraphs) {
  RoadNetwork road = RoadGrid(30, 30, 0.7, 9);
  IspIndex isp(road.graph);
  // Both are upper bounds computed from 2-ecc estimates; the bi-component
  // bound cannot exceed the whole-graph bound by more than the estimation
  // slack of one BFS seed choice.
  EXPECT_LE(FullNetworkVcBound(isp), RiondatoVcBound(road.graph) + 1.0);
}

TEST(FullNetworkVcBound, ReportsBdUpper) {
  Graph g = PaperFig2Graph();
  IspIndex isp(g);
  uint32_t bd = 0;
  FullNetworkVcBound(isp, &bd);
  // Largest component is the pentagon (diameter 2): 2*ecc gives 4.
  EXPECT_GE(bd, 2u);
  EXPECT_LE(bd, 4u);
}

TEST(PersonalizedVcBounds, EmptySubsetIsZero) {
  Graph g = PaperFig2Graph();
  IspIndex isp(g);
  PersonalizedSpace space(isp, {});
  VcBcBounds b = ComputePersonalizedVcBounds(space);
  EXPECT_DOUBLE_EQ(b.bs_bound, 0.0);
  EXPECT_DOUBLE_EQ(b.vc_bound, 0.0);
}

TEST(PersonalizedVcBounds, BridgeOnlyTargetsAreZero) {
  // Targets f(5): only in the bridge {d,f}; no inner nodes possible.
  Graph g = PaperFig2Graph();
  IspIndex isp(g);
  PersonalizedSpace space(isp, {5});
  VcBcBounds b = ComputePersonalizedVcBounds(space);
  EXPECT_DOUBLE_EQ(b.bs_bound, 0.0);
}

TEST(PersonalizedVcBounds, SingleTargetInPentagonCapsAtOne) {
  // |A ∩ C_pentagon| = 1, so BS(A) <= 1 and VC <= 1 (Lemma 23's |A∩C_i|
  // term dominates).
  Graph g = PaperFig2Graph();
  IspIndex isp(g);
  PersonalizedSpace space(isp, {1});
  VcBcBounds b = ComputePersonalizedVcBounds(space);
  EXPECT_LE(b.bs_bound, 1.0);
  EXPECT_LE(b.vc_bound, 1.0);
}

TEST(PersonalizedVcBounds, SubsetCountTermScales) {
  // A long cycle: VD grows, but tiny subsets keep BS <= |A ∩ C|.
  GraphBuilder builder;
  const NodeId n = 60;
  for (NodeId v = 0; v < n; ++v) builder.AddEdge(v, (v + 1) % n);
  Graph g;
  ASSERT_TRUE(builder.Build(n, &g).ok());
  IspIndex isp(g);
  PersonalizedSpace small(isp, {0, 30});
  PersonalizedSpace large(isp, [] {
    std::vector<NodeId> t;
    for (NodeId v = 0; v < 30; ++v) t.push_back(v);
    return t;
  }());
  VcBcBounds bs = ComputePersonalizedVcBounds(small);
  VcBcBounds bl = ComputePersonalizedVcBounds(large);
  EXPECT_LE(bs.bs_bound, 2.0);  // |A ∩ C| = 2
  EXPECT_GT(bl.bs_bound, bs.bs_bound);
}

TEST(PersonalizedVcBounds, MonotoneInSubsetUpToEstimationSlack) {
  Graph g = RandomConnectedGraph(60, 0.08, 13);
  IspIndex isp(g);
  PersonalizedSpace small(isp, {1, 2, 3});
  std::vector<NodeId> many;
  for (NodeId v = 0; v < 30; ++v) many.push_back(v);
  PersonalizedSpace large(isp, many);
  VcBcBounds bs = ComputePersonalizedVcBounds(small);
  VcBcBounds bl = ComputePersonalizedVcBounds(large);
  // Both bound BS(A); a subset of a subset can never have a larger true
  // BS. The 2-ecc estimates may wobble by one doubling, hence the slack.
  EXPECT_LE(bs.vc_bound, bl.vc_bound + 1.0);
}

TEST(PersonalizedVcBounds, ReportsDiameterBounds) {
  RoadNetwork road = RoadGrid(20, 20, 0.9, 17);
  IspIndex isp(road.graph);
  auto targets = NodesInRectangle(road, 0, 0, 6, 6);
  ASSERT_GE(targets.size(), 2u);
  PersonalizedSpace space(isp, targets);
  VcBcBounds b = ComputePersonalizedVcBounds(space);
  EXPECT_GT(b.bd_upper, 0u);
  EXPECT_LE(b.sd_upper, b.bd_upper);
}

}  // namespace
}  // namespace saphyra
