// Tests for util/failpoint.h. The registry only exists in builds
// configured with -DSAPHYRA_FAILPOINTS=ON (the CI fault-injection job);
// everywhere else these tests verify the no-op stubs and skip the rest.

#include "util/failpoint.h"

#include <gtest/gtest.h>

namespace saphyra {
namespace fail {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kBuiltWithFailpoints) {
      GTEST_SKIP() << "build has no failpoint registry";
    }
    ClearAll();
  }
  void TearDown() override { ClearAll(); }
};

TEST(FailpointStubTest, UnconfiguredSitesAreInert) {
  // Holds in BOTH build flavors: an unconfigured site never fires.
  EXPECT_NO_THROW(MaybeFault("failpoint_test.nowhere"));
  EXPECT_TRUE(FaultStatus("failpoint_test.nowhere").ok());
  if (!kBuiltWithFailpoints) {
    EXPECT_FALSE(Inject("failpoint_test.nowhere", "throw"));
    EXPECT_EQ(HitCount("failpoint_test.nowhere"), 0u);
  }
}

TEST_F(FailpointTest, ThrowActionFires) {
  ASSERT_TRUE(Inject("failpoint_test.t", "throw(boom)"));
  EXPECT_THROW(MaybeFault("failpoint_test.t"), InjectedFault);
  try {
    MaybeFault("failpoint_test.t");
    FAIL() << "expected InjectedFault";
  } catch (const InjectedFault& e) {
    EXPECT_NE(std::string(e.what()).find("failpoint_test.t"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
}

TEST_F(FailpointTest, ErrorActionsReturnStatus) {
  ASSERT_TRUE(Inject("failpoint_test.e", "error(sim)"));
  Status st = FaultStatus("failpoint_test.e");
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("sim"), std::string::npos);

  ASSERT_TRUE(Inject("failpoint_test.io", "io-error(disk full)"));
  Status io = FaultStatus("failpoint_test.io");
  EXPECT_EQ(io.code(), StatusCode::kIOError);
  EXPECT_NE(io.message().find("disk full"), std::string::npos);
}

TEST_F(FailpointTest, CountedActionsDisarmAfterN) {
  ASSERT_TRUE(Inject("failpoint_test.n", "2*error(twice)"));
  EXPECT_FALSE(FaultStatus("failpoint_test.n").ok());
  EXPECT_FALSE(FaultStatus("failpoint_test.n").ok());
  EXPECT_TRUE(FaultStatus("failpoint_test.n").ok());
  EXPECT_TRUE(FaultStatus("failpoint_test.n").ok());
}

TEST_F(FailpointTest, HitCountsCountEvaluations) {
  const uint64_t before = HitCount("failpoint_test.h");
  MaybeFault("failpoint_test.h");                       // unconfigured
  ASSERT_TRUE(Inject("failpoint_test.h", "off"));
  MaybeFault("failpoint_test.h");                       // configured off
  EXPECT_EQ(HitCount("failpoint_test.h"), before + 2);
}

TEST_F(FailpointTest, ClearDisarms) {
  ASSERT_TRUE(Inject("failpoint_test.c", "throw"));
  Clear("failpoint_test.c");
  EXPECT_NO_THROW(MaybeFault("failpoint_test.c"));
}

TEST_F(FailpointTest, MalformedSpecsRejected) {
  EXPECT_FALSE(Inject("failpoint_test.m", "explode"));
  EXPECT_FALSE(Inject("failpoint_test.m", "x*throw"));
  EXPECT_FALSE(Inject("failpoint_test.m", ""));
  // The site stays unconfigured after every rejected spec.
  EXPECT_NO_THROW(MaybeFault("failpoint_test.m"));
}

TEST_F(FailpointTest, CrossKindDegradation) {
  // A `throw` reaching a Status site degrades to INTERNAL; an `error`
  // reaching a throw site still throws.
  ASSERT_TRUE(Inject("failpoint_test.x", "throw(kind)"));
  EXPECT_EQ(FaultStatus("failpoint_test.x").code(), StatusCode::kInternal);
  ASSERT_TRUE(Inject("failpoint_test.x", "error(kind)"));
  EXPECT_THROW(MaybeFault("failpoint_test.x"), InjectedFault);
}

}  // namespace
}  // namespace fail
}  // namespace saphyra
