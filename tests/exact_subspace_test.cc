#include "bc/exact_subspace.h"

#include <cmath>

#include <gtest/gtest.h>

#include "bc/brandes.h"
#include "graph/generators.h"
#include "test_util.h"

namespace saphyra {
namespace {

using testing::AllShortestPaths;
using testing::MakeGraph;
using testing::PaperFig2Graph;
using testing::RandomConnectedGraph;

// Oracle: enumerate the personalized ISP space explicitly and compute the
// exact-subspace weight and risks by definition (Eq. 29).
struct ExactOracle {
  std::vector<double> exact_risks;
  double lambda_hat = 0.0;
};

ExactOracle EnumerateExactSubspace(const PersonalizedSpace& space) {
  const IspIndex& isp = space.isp();
  const Graph& g = isp.graph();
  ExactOracle out;
  out.exact_risks.assign(space.targets().size(), 0.0);
  double ge = isp.gamma() * space.eta();
  if (ge <= 0.0) return out;
  for (uint32_t c : space.component_ids()) {
    const auto& nodes = isp.bcc().component_nodes[c];
    std::function<bool(EdgeIndex)> arc_ok = [&](EdgeIndex e) {
      return isp.bcc().arc_component[e] == c;
    };
    for (NodeId s : nodes) {
      for (NodeId t : nodes) {
        if (s == t) continue;
        auto paths = AllShortestPaths(g, s, t, &arc_ok);
        double p_path = isp.PairMass(c, s, t) / ge / paths.size();
        for (const auto& path : paths) {
          if (path.size() != 3) continue;  // only length-2 paths
          int32_t h = space.HypothesisIndex(path[1]);
          if (h < 0) continue;
          out.lambda_hat += p_path;
          out.exact_risks[h] += p_path;
        }
      }
    }
  }
  return out;
}

TEST(ExactSubspace, EmptyTargets) {
  Graph g = PaperFig2Graph();
  IspIndex isp(g);
  PersonalizedSpace space(isp, {});
  ExactSubspaceResult res = ComputeExactSubspace(space);
  EXPECT_TRUE(res.exact_risks.empty());
  EXPECT_DOUBLE_EQ(res.lambda_hat, 0.0);
}

TEST(ExactSubspace, PaperFig2MatchesOracle) {
  Graph g = PaperFig2Graph();
  IspIndex isp(g);
  // Mixed targets: pentagon inner node, cutpoint, triangle node.
  PersonalizedSpace space(isp, {1, 3, 9});
  ExactSubspaceResult res = ComputeExactSubspace(space);
  ExactOracle oracle = EnumerateExactSubspace(space);
  EXPECT_NEAR(res.lambda_hat, oracle.lambda_hat, 1e-12);
  for (size_t h = 0; h < res.exact_risks.size(); ++h) {
    EXPECT_NEAR(res.exact_risks[h], oracle.exact_risks[h], 1e-12)
        << "hypothesis " << h;
  }
}

class ExactSubspaceRandomized : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExactSubspaceRandomized, MatchesEnumerationOracle) {
  Rng rng(GetParam());
  NodeId n = 8 + static_cast<NodeId>(rng.UniformInt(16));
  Graph g = RandomConnectedGraph(n, rng.UniformDouble() * 0.2,
                                 GetParam() * 131 + 17);
  IspIndex isp(g);
  // Random subset of ~1/3 of nodes.
  std::vector<NodeId> targets;
  for (NodeId v = 0; v < n; ++v) {
    if (rng.Bernoulli(0.33)) targets.push_back(v);
  }
  if (targets.empty()) targets.push_back(0);
  PersonalizedSpace space(isp, targets);
  ExactSubspaceResult res = ComputeExactSubspace(space);
  ExactOracle oracle = EnumerateExactSubspace(space);
  EXPECT_NEAR(res.lambda_hat, oracle.lambda_hat, 1e-10) << "seed "
                                                        << GetParam();
  for (size_t h = 0; h < res.exact_risks.size(); ++h) {
    EXPECT_NEAR(res.exact_risks[h], oracle.exact_risks[h], 1e-10)
        << "hypothesis " << h << " seed " << GetParam();
  }
}

TEST_P(ExactSubspaceRandomized, WholeNetworkAsTargets) {
  Graph g = RandomConnectedGraph(14, 0.15, GetParam() + 71);
  IspIndex isp(g);
  std::vector<NodeId> all(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) all[v] = v;
  PersonalizedSpace space(isp, all);
  ExactSubspaceResult res = ComputeExactSubspace(space);
  ExactOracle oracle = EnumerateExactSubspace(space);
  EXPECT_NEAR(res.lambda_hat, oracle.lambda_hat, 1e-10);
  for (size_t h = 0; h < res.exact_risks.size(); ++h) {
    EXPECT_NEAR(res.exact_risks[h], oracle.exact_risks[h], 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactSubspaceRandomized,
                         ::testing::Range<uint64_t>(0, 12));

TEST(ExactSubspace, LambdaHatIsAProbability) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Graph g = RandomConnectedGraph(30, 0.1, seed);
    IspIndex isp(g);
    std::vector<NodeId> targets;
    Rng rng(seed);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (rng.Bernoulli(0.2)) targets.push_back(v);
    }
    if (targets.empty()) targets.push_back(1);
    PersonalizedSpace space(isp, targets);
    ExactSubspaceResult res = ComputeExactSubspace(space);
    EXPECT_GE(res.lambda_hat, 0.0);
    EXPECT_LT(res.lambda_hat, 1.0);  // d=1 paths always remain outside X̂
    for (double r : res.exact_risks) {
      EXPECT_GE(r, 0.0);
      EXPECT_LE(r, res.lambda_hat + 1e-12);
    }
  }
}

// Lemma 19: any target with positive sampling-space risk (i.e. positive
// bc beyond its break-point mass) has a strictly positive exact risk.
TEST(ExactSubspace, Lemma19NoFalseZeros) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Graph g = RandomConnectedGraph(20, 0.12, seed * 3 + 1);
    IspIndex isp(g);
    std::vector<double> bc = BrandesBetweenness(g);
    std::vector<NodeId> all(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) all[v] = v;
    PersonalizedSpace space(isp, all);
    ExactSubspaceResult res = ComputeExactSubspace(space);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      double sampling_mass = bc[v] - isp.bca(v);
      if (sampling_mass > 1e-12) {
        EXPECT_GT(res.exact_risks[v], 0.0) << "node " << v;
      }
    }
  }
}

TEST(ExactSubspace, TreeHasEmptyExactSubspace) {
  // Trees have only bridge components: no intra-component 2-hop paths.
  Graph g = RandomTree(30, 9);
  IspIndex isp(g);
  std::vector<NodeId> all(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) all[v] = v;
  PersonalizedSpace space(isp, all);
  ExactSubspaceResult res = ComputeExactSubspace(space);
  EXPECT_DOUBLE_EQ(res.lambda_hat, 0.0);
  for (double r : res.exact_risks) EXPECT_DOUBLE_EQ(r, 0.0);
}

TEST(InExactSubspace, ChecksLengthAndMiddle) {
  Graph g = PaperFig2Graph();
  IspIndex isp(g);
  PersonalizedSpace space(isp, {1});
  EXPECT_TRUE(InExactSubspace(space, {0, 1, 2}));
  EXPECT_FALSE(InExactSubspace(space, {0, 4, 3}));   // middle not in A
  EXPECT_FALSE(InExactSubspace(space, {0, 1}));      // length 1
  EXPECT_FALSE(InExactSubspace(space, {4, 0, 1, 2}));  // length 3
}

}  // namespace
}  // namespace saphyra
