#!/usr/bin/env bash
# Regression: a client that closes the output pipe mid-stream (`| head`)
# must not kill saphyra_serve with SIGPIPE. The server detects the closed
# pipe on a per-line flush, drains the remaining passes without output,
# exits 0, and records "output_closed":true in --stats-json.
#
# Usage: serve_sigpipe_test.sh /path/to/saphyra_serve
set -u

SERVE="${1:?usage: serve_sigpipe_test.sh /path/to/saphyra_serve}"
TMP="$(mktemp -d /tmp/saphyra_sigpipe.XXXXXX)"
trap 'rm -rf "$TMP"' EXIT

fail() {
  echo "FAIL: $1" >&2
  echo "--- stderr ---" >&2
  cat "$TMP/stderr.log" >&2 || true
  exit 1
}

# A ring over 24 nodes: tiny, connected, fast to query.
for i in $(seq 0 23); do
  echo "$i $(( (i + 1) % 24 ))"
done > "$TMP/ring.txt"

for i in $(seq 1 5); do
  echo "{\"id\":\"q$i\",\"estimator\":\"bc\",\"epsilon\":0.3,\"seed\":$i,\"targets\":[0,1,2]}"
done > "$TMP/requests.ndjson"

# 5 queries x 500 passes = 2500 response lines, far past the pipe buffer:
# head exits after 2 lines, so the server is guaranteed to hit the closed
# pipe mid-stream. Memoization makes the drained passes near-free.
"$SERVE" --graph "$TMP/ring.txt" --no-cache \
         --requests "$TMP/requests.ndjson" --repeat 500 \
         --stats-json "$TMP/stats.json" 2> "$TMP/stderr.log" \
  | head -n 2 > "$TMP/head.out"
status=${PIPESTATUS[0]}

[ "$status" -eq 0 ] || fail "server exited $status (expected 0)"
[ "$(wc -l < "$TMP/head.out")" -eq 2 ] || fail "client did not get its 2 lines"
grep -q "output closed" "$TMP/stderr.log" \
  || fail "stderr does not report the closed output"
grep -q '"output_closed":true' "$TMP/stats.json" \
  || fail "stats json does not record output_closed"
grep -q '"queries":2500' "$TMP/stats.json" \
  || fail "server did not drain all 2500 queries"

echo "PASS: closed pipe drained cleanly"
