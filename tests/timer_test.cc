#include "util/timer.h"

#include <thread>

#include <gtest/gtest.h>

namespace saphyra {
namespace {

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double s = t.ElapsedSeconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
}

TEST(Timer, RestartResets) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.Restart();
  EXPECT_LT(t.ElapsedSeconds(), 0.015);
}

TEST(Timer, MillisMatchesSeconds) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  double s = t.ElapsedSeconds();
  double ms = t.ElapsedMillis();
  EXPECT_NEAR(ms, s * 1000.0, 50.0);
}

TEST(FormatDuration, Microseconds) {
  EXPECT_EQ(FormatDuration(12e-6), "12.0us");
}

TEST(FormatDuration, Milliseconds) {
  EXPECT_EQ(FormatDuration(0.0425), "42.5ms");
}

TEST(FormatDuration, Seconds) {
  EXPECT_EQ(FormatDuration(3.21), "3.21s");
}

TEST(FormatDuration, Minutes) {
  EXPECT_EQ(FormatDuration(150.0), "2.5min");
}

}  // namespace
}  // namespace saphyra
