#ifndef SAPHYRA_TESTS_TEST_UTIL_H_
#define SAPHYRA_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "graph/bfs.h"
#include "graph/graph.h"
#include "util/logging.h"
#include "util/rng.h"

namespace saphyra {
namespace testing {

/// Build a graph from an explicit edge list (tests only; dies on error).
inline Graph MakeGraph(NodeId n, const std::vector<std::pair<NodeId, NodeId>>&
                                     edges) {
  GraphBuilder b;
  for (auto [u, v] : edges) b.AddEdge(u, v);
  Graph g;
  Status st = b.Build(n, &g);
  SAPHYRA_CHECK_MSG(st.ok(), st.ToString().c_str());
  return g;
}

/// The example graph of the paper's Fig. 2: 11 nodes a..k (0..10) with the
/// same block-cut structure as the figure -- five biconnected components
///   C1 = {b,a,c,d,e} (pentagon), C2 = {c,g,h} (triangle),
///   C3 = {d,f} (bridge), C4 = {i,j,k} (triangle), C5 = {d,i} (bridge),
/// and cutpoints c, d, i, giving the block-cut tree edges
/// {(c,C1),(c,C2),(d,C1),(d,C3),(d,C5),(i,C4),(i,C5)}.
/// Node ids: a=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7 i=8 j=9 k=10.
inline Graph PaperFig2Graph() {
  return MakeGraph(11, {
                           {0, 1},   // a-b
                           {1, 2},   // b-c
                           {2, 3},   // c-d
                           {3, 4},   // d-e
                           {4, 0},   // e-a
                           {2, 6},   // c-g
                           {6, 7},   // g-h
                           {7, 2},   // h-c
                           {3, 5},   // d-f  (bridge)
                           {3, 8},   // d-i  (bridge)
                           {8, 9},   // i-j
                           {9, 10},  // j-k
                           {10, 8},  // k-i
                       });
}

/// All shortest s-t paths (as node sequences), optionally restricted to
/// arcs accepted by `arc_ok(u, arc_index)`. Exponential; small graphs only.
inline std::vector<std::vector<NodeId>> AllShortestPaths(
    const Graph& g, NodeId s, NodeId t,
    const std::function<bool(EdgeIndex)>* arc_ok = nullptr) {
  // Forward BFS with the restriction.
  std::vector<uint32_t> dist(g.num_nodes(), kUnreachable);
  std::vector<NodeId> queue{s};
  dist[s] = 0;
  for (size_t head = 0; head < queue.size(); ++head) {
    NodeId u = queue[head];
    EdgeIndex base = g.offset(u);
    auto nbr = g.neighbors(u);
    for (size_t i = 0; i < nbr.size(); ++i) {
      if (arc_ok != nullptr && !(*arc_ok)(base + i)) continue;
      NodeId v = nbr[i];
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  std::vector<std::vector<NodeId>> out;
  if (dist[t] == kUnreachable) return out;
  // Backward DFS from t along strictly-decreasing distances.
  std::vector<NodeId> path{t};
  std::function<void(NodeId)> rec = [&](NodeId w) {
    if (w == s) {
      out.emplace_back(path.rbegin(), path.rend());
      return;
    }
    EdgeIndex base = g.offset(w);
    auto nbr = g.neighbors(w);
    for (size_t i = 0; i < nbr.size(); ++i) {
      if (arc_ok != nullptr && !(*arc_ok)(base + i)) continue;
      NodeId u = nbr[i];
      if (dist[u] + 1 == dist[w]) {
        path.push_back(u);
        rec(u);
        path.pop_back();
      }
    }
  };
  rec(t);
  return out;
}

/// Brute-force betweenness by explicit enumeration of every shortest path
/// (Eq. 3, ordered pairs). Independent of the Brandes implementation.
inline std::vector<double> BruteForceBetweenness(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<double> bc(n, 0.0);
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      if (s == t) continue;
      auto paths = AllShortestPaths(g, s, t);
      if (paths.empty()) continue;
      double w = 1.0 / static_cast<double>(paths.size());
      for (const auto& p : paths) {
        for (size_t i = 1; i + 1 < p.size(); ++i) bc[p[i]] += w;
      }
    }
  }
  if (n >= 2) {
    double norm = static_cast<double>(n) * (n - 1.0);
    for (double& x : bc) x /= norm;
  }
  return bc;
}

/// Reference recursive biconnected-components labeling (simple textbook
/// Tarjan), returning a canonical partition of undirected edges:
/// same-component edges share a group id. Small graphs only.
class ReferenceBcc {
 public:
  explicit ReferenceBcc(const Graph& g) : g_(g) {
    disc_.assign(g.num_nodes(), 0);
    low_.assign(g.num_nodes(), 0);
    cut_.assign(g.num_nodes(), false);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (disc_[v] == 0 && g.degree(v) > 0) {
        root_ = v;
        root_children_ = 0;
        Dfs(v, kInvalidNode);
        if (root_children_ >= 2) cut_[v] = true;
      }
    }
  }

  /// edge (u,v) with u<v -> component group id
  const std::map<std::pair<NodeId, NodeId>, int>& edge_group() const {
    return group_;
  }
  bool is_cutpoint(NodeId v) const { return cut_[v]; }
  int num_groups() const { return next_group_; }

 private:
  void Dfs(NodeId u, NodeId parent) {
    disc_[u] = low_[u] = ++timer_;
    bool skipped_parent = false;
    for (NodeId v : g_.neighbors(u)) {
      if (v == parent && !skipped_parent) {
        skipped_parent = true;
        continue;
      }
      auto key = std::minmax(u, v);
      if (disc_[v] == 0) {
        stack_.push_back({key.first, key.second});
        if (u == root_) ++root_children_;
        Dfs(v, u);
        low_[u] = std::min(low_[u], low_[v]);
        if (low_[v] >= disc_[u]) {
          if (u != root_) cut_[u] = true;
          int id = next_group_++;
          for (;;) {
            auto e = stack_.back();
            stack_.pop_back();
            group_[e] = id;
            if (e == std::make_pair(key.first, key.second)) break;
          }
        }
      } else if (disc_[v] < disc_[u]) {
        stack_.push_back({key.first, key.second});
        low_[u] = std::min(low_[u], disc_[v]);
      }
    }
  }

  const Graph& g_;
  std::vector<uint32_t> disc_, low_;
  std::vector<bool> cut_;
  std::vector<std::pair<NodeId, NodeId>> stack_;
  std::map<std::pair<NodeId, NodeId>, int> group_;
  int next_group_ = 0;
  uint32_t timer_ = 0;
  NodeId root_ = 0;
  uint32_t root_children_ = 0;
};

/// Small random connected graph for property sweeps.
inline Graph RandomConnectedGraph(NodeId n, double extra_edge_prob,
                                  uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b;
  for (NodeId v = 1; v < n; ++v) {
    b.AddEdge(v, static_cast<NodeId>(rng.UniformInt(v)));  // random tree
  }
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.UniformDouble() < extra_edge_prob) b.AddEdge(u, v);
    }
  }
  Graph g;
  Status st = b.Build(n, &g);
  SAPHYRA_CHECK(st.ok());
  return g;
}

}  // namespace testing
}  // namespace saphyra

#endif  // SAPHYRA_TESTS_TEST_UTIL_H_
