#include "baselines/abra.h"

#include <cmath>

#include <gtest/gtest.h>

#include "bc/brandes.h"
#include "graph/generators.h"
#include "test_util.h"

namespace saphyra {
namespace {

using testing::MakeGraph;
using testing::PaperFig2Graph;
using testing::RandomConnectedGraph;

TEST(Abra, EstimatesWithinEpsilonOnFig2) {
  Graph g = PaperFig2Graph();
  std::vector<double> truth = BrandesBetweenness(g);
  AbraOptions opts;
  opts.epsilon = 0.05;
  opts.delta = 0.05;
  opts.seed = 1;
  AbraResult res = RunAbra(g, opts);
  ASSERT_EQ(res.bc.size(), g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(res.bc[v], truth[v], opts.epsilon) << "node " << v;
  }
}

class AbraRandomized : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AbraRandomized, WithinEpsilonOnRandomGraphs) {
  Graph g = RandomConnectedGraph(30, 0.1, GetParam());
  std::vector<double> truth = BrandesBetweenness(g);
  AbraOptions opts;
  opts.epsilon = 0.05;
  opts.delta = 0.05;
  opts.seed = GetParam() + 10;
  AbraResult res = RunAbra(g, opts);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(res.bc[v], truth[v], opts.epsilon);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AbraRandomized,
                         ::testing::Range<uint64_t>(0, 6));

TEST(Abra, DeterministicForSeed) {
  Graph g = BarabasiAlbert(60, 2, 3);
  AbraOptions opts;
  opts.epsilon = 0.1;
  opts.seed = 4;
  AbraResult a = RunAbra(g, opts);
  AbraResult b = RunAbra(g, opts);
  EXPECT_EQ(a.samples_used, b.samples_used);
  EXPECT_EQ(a.bc, b.bc);
}

TEST(Abra, StopsAtOrBeforeCap) {
  Graph g = BarabasiAlbert(80, 2, 5);
  AbraOptions opts;
  opts.epsilon = 0.1;
  AbraResult res = RunAbra(g, opts);
  EXPECT_GT(res.samples_used, 0u);
  EXPECT_GE(res.epochs, 1u);
  EXPECT_GT(res.final_bound, 0.0);
}

TEST(Abra, ValuesAreProbabilities) {
  Graph g = RandomConnectedGraph(40, 0.07, 9);
  AbraOptions opts;
  opts.epsilon = 0.1;
  AbraResult res = RunAbra(g, opts);
  for (double x : res.bc) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(Abra, DisconnectedGraphPairsWithoutPaths) {
  Graph g = MakeGraph(8, {{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6}, {6, 7}});
  std::vector<double> truth = BrandesBetweenness(g);
  AbraOptions opts;
  opts.epsilon = 0.06;
  opts.seed = 2;
  AbraResult res = RunAbra(g, opts);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(res.bc[v], truth[v], opts.epsilon);
  }
}

TEST(Abra, TinyGraphEdgeCases) {
  AbraOptions opts;
  opts.epsilon = 0.2;
  Graph g2 = MakeGraph(2, {{0, 1}});
  AbraResult res = RunAbra(g2, opts);
  EXPECT_NEAR(res.bc[0], 0.0, 1e-12);
  EXPECT_NEAR(res.bc[1], 0.0, 1e-12);
}

}  // namespace
}  // namespace saphyra
