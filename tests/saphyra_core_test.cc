#include "core/saphyra.h"

#include <cmath>

#include <gtest/gtest.h>

#include "metrics/rank.h"

namespace saphyra {
namespace {

/// Synthetic hypothesis-ranking problem with known expected risks: the
/// sample space is an infinite stream of coin bundles; hypothesis i incurs
/// loss 1 with probability approx_risks_[i] on a sample of the approximate
/// subspace. Exact risks and lambda_hat are injected directly.
class SyntheticProblem : public HypothesisRankingProblem {
 public:
  SyntheticProblem(std::vector<double> exact, std::vector<double> approx,
                   double lambda_hat, double vc)
      : exact_(std::move(exact)),
        approx_(std::move(approx)),
        lambda_hat_(lambda_hat),
        vc_(vc) {}

  size_t num_hypotheses() const override { return exact_.size(); }

  double ComputeExactRisks(std::vector<double>* exact_risks) override {
    *exact_risks = exact_;
    return lambda_hat_;
  }

  void SampleApproxLosses(Rng* rng, std::vector<uint32_t>* hits) override {
    ++samples_;
    for (size_t i = 0; i < approx_.size(); ++i) {
      if (rng->Bernoulli(approx_[i])) hits->push_back(i);
    }
  }

  double VcDimension() const override { return vc_; }

  uint64_t samples() const { return samples_; }

  /// True expected risk of hypothesis i: R = ℓ̂ + λ·R̃.
  double TrueRisk(size_t i) const {
    return exact_[i] + (1.0 - lambda_hat_) * approx_[i];
  }

 private:
  std::vector<double> exact_;
  std::vector<double> approx_;
  double lambda_hat_;
  double vc_;
  uint64_t samples_ = 0;
};

TEST(RunSaphyra, ZeroHypotheses) {
  SyntheticProblem p({}, {}, 0.0, 1.0);
  SaphyraOptions opts;
  SaphyraResult res = RunSaphyra(&p, opts);
  EXPECT_TRUE(res.combined_risks.empty());
}

TEST(RunSaphyra, PureExactSubspaceSkipsSampling) {
  SyntheticProblem p({0.2, 0.5}, {0.0, 0.0}, 1.0, 1.0);
  SaphyraOptions opts;
  SaphyraResult res = RunSaphyra(&p, opts);
  EXPECT_EQ(p.samples(), 0u);
  EXPECT_DOUBLE_EQ(res.combined_risks[0], 0.2);
  EXPECT_DOUBLE_EQ(res.combined_risks[1], 0.5);
}

TEST(RunSaphyra, EstimatesWithinEpsilon) {
  SyntheticProblem p({0.05, 0.0, 0.12}, {0.1, 0.3, 0.02}, 0.4, 2.0);
  SaphyraOptions opts;
  opts.epsilon = 0.05;
  opts.delta = 0.05;
  opts.seed = 7;
  SaphyraResult res = RunSaphyra(&p, opts);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(res.combined_risks[i], p.TrueRisk(i), opts.epsilon)
        << "hypothesis " << i;
  }
  EXPECT_GT(res.samples_used, 0u);
  EXPECT_LE(res.samples_used, res.max_samples);
}

TEST(RunSaphyra, LambdaScalingReducesSampleBudget) {
  // Same approximate risks, but a heavier exact subspace => larger eps' and
  // a smaller worst-case budget (Lemma 7's lambda^2 factor).
  SyntheticProblem light({0.0}, {0.3}, 0.1, 4.0);
  SyntheticProblem heavy({0.27}, {0.3}, 0.9, 4.0);
  SaphyraOptions opts;
  opts.epsilon = 0.02;
  SaphyraResult res_light = RunSaphyra(&light, opts);
  SaphyraResult res_heavy = RunSaphyra(&heavy, opts);
  EXPECT_LT(res_heavy.max_samples, res_light.max_samples);
  EXPECT_NEAR(static_cast<double>(res_light.max_samples) /
                  static_cast<double>(res_heavy.max_samples),
              (0.9 * 0.9) / (0.1 * 0.1), 2.0);
}

TEST(RunSaphyra, EarlyStopOnLowVariance) {
  // All approximate risks ~0: Bernstein converges far before the VC cap.
  SyntheticProblem p({0.01, 0.02}, {0.001, 0.0}, 0.2, 8.0);
  SaphyraOptions opts;
  opts.epsilon = 0.01;
  opts.delta = 0.01;
  SaphyraResult res = RunSaphyra(&p, opts);
  EXPECT_TRUE(res.stopped_early);
  EXPECT_LT(res.samples_used, res.max_samples);
}

TEST(RunSaphyra, HighVarianceRunsToCap) {
  // Risk 0.5 has maximal variance: the Bernstein check cannot beat the VC
  // cap, so the loop runs to Nmax.
  SyntheticProblem p({0.0}, {0.5}, 0.0, 0.0);
  SaphyraOptions opts;
  opts.epsilon = 0.05;
  opts.delta = 0.1;
  SaphyraResult res = RunSaphyra(&p, opts);
  EXPECT_EQ(res.samples_used, res.max_samples);
}

TEST(RunSaphyra, DeterministicForSeed) {
  SaphyraOptions opts;
  opts.seed = 42;
  opts.epsilon = 0.05;
  SyntheticProblem p1({0.1}, {0.2}, 0.3, 2.0);
  SyntheticProblem p2({0.1}, {0.2}, 0.3, 2.0);
  SaphyraResult a = RunSaphyra(&p1, opts);
  SaphyraResult b = RunSaphyra(&p2, opts);
  EXPECT_EQ(a.samples_used, b.samples_used);
  EXPECT_DOUBLE_EQ(a.combined_risks[0], b.combined_risks[0]);
}

TEST(RunSaphyra, CombinedRiskIsExactPlusScaledApprox) {
  SyntheticProblem p({0.07, 0.01}, {0.2, 0.4}, 0.5, 2.0);
  SaphyraOptions opts;
  opts.epsilon = 0.05;
  SaphyraResult res = RunSaphyra(&p, opts);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(res.combined_risks[i],
                res.exact_risks[i] + res.lambda * res.approx_risks[i],
                1e-12);
  }
}

// Statistical guarantee sweep: across many seeds, the fraction of runs with
// any hypothesis outside +-epsilon must be well below delta (the bound is
// conservative, so in practice ~0 violations).
TEST(RunSaphyra, EpsilonDeltaGuaranteeHolds) {
  const double eps = 0.05, delta = 0.1;
  int violations = 0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    SyntheticProblem p({0.02, 0.0, 0.1}, {0.15, 0.45, 0.05}, 0.3, 3.0);
    SaphyraOptions opts;
    opts.epsilon = eps;
    opts.delta = delta;
    opts.seed = 1000 + t;
    SaphyraResult res = RunSaphyra(&p, opts);
    for (size_t i = 0; i < 3; ++i) {
      if (std::abs(res.combined_risks[i] - p.TrueRisk(i)) >= eps) {
        ++violations;
        break;
      }
    }
  }
  EXPECT_LE(violations, static_cast<int>(trials * delta));
}

TEST(RunDirectEstimation, UnbiasedAndWithinEpsilon) {
  SyntheticProblem p({0.0, 0.0}, {0.25, 0.4}, 0.0, 3.0);
  SaphyraOptions opts;
  opts.epsilon = 0.04;
  opts.delta = 0.05;
  SaphyraResult res = RunDirectEstimation(&p, opts);
  EXPECT_NEAR(res.combined_risks[0], 0.25, opts.epsilon);
  EXPECT_NEAR(res.combined_risks[1], 0.4, opts.epsilon);
  EXPECT_EQ(res.samples_used, res.max_samples);
}

TEST(RunDirectEstimation, IgnoresExactSubspace) {
  SyntheticProblem p({0.9}, {0.1}, 0.99, 1.0);
  SaphyraOptions opts;
  opts.epsilon = 0.1;
  SaphyraResult res = RunDirectEstimation(&p, opts);
  // Direct estimation samples the provided generator only.
  EXPECT_NEAR(res.combined_risks[0], 0.1, 0.1);
  EXPECT_DOUBLE_EQ(res.lambda, 1.0);
}

TEST(RunSaphyra, RankingQualityBeatsNoise) {
  // 10 hypotheses with closely spaced risks; with a generous exact part the
  // combined ranking should align with the truth.
  std::vector<double> exact(10), approx(10);
  for (int i = 0; i < 10; ++i) {
    exact[i] = 0.001 * i;
    approx[i] = 0.002 * i;
  }
  SyntheticProblem p(exact, approx, 0.8, 2.0);
  SaphyraOptions opts;
  opts.epsilon = 0.01;
  opts.seed = 5;
  SaphyraResult res = RunSaphyra(&p, opts);
  std::vector<double> truth(10);
  for (int i = 0; i < 10; ++i) truth[i] = p.TrueRisk(i);
  EXPECT_GT(SpearmanCorrelation(truth, res.combined_risks), 0.9);
}

}  // namespace
}  // namespace saphyra
