#include "graph/connectivity.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "test_util.h"

namespace saphyra {
namespace {

using testing::MakeGraph;

TEST(ConnectedComponents, SingleComponent) {
  Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  ComponentLabels labels = ConnectedComponents(g);
  EXPECT_EQ(labels.num_components(), 1u);
  EXPECT_EQ(labels.size[0], 4u);
}

TEST(ConnectedComponents, MultipleComponentsAndIsolates) {
  Graph g = MakeGraph(7, {{0, 1}, {2, 3}, {3, 4}});
  ComponentLabels labels = ConnectedComponents(g);
  EXPECT_EQ(labels.num_components(), 4u);  // {0,1}, {2,3,4}, {5}, {6}
  EXPECT_EQ(labels.component[0], labels.component[1]);
  EXPECT_EQ(labels.component[2], labels.component[4]);
  EXPECT_NE(labels.component[0], labels.component[2]);
  EXPECT_NE(labels.component[5], labels.component[6]);
}

TEST(ConnectedComponents, SizesSumToN) {
  Graph g = MakeGraph(10, {{0, 1}, {2, 3}, {4, 5}, {5, 6}});
  ComponentLabels labels = ConnectedComponents(g);
  NodeId total = 0;
  for (NodeId s : labels.size) total += s;
  EXPECT_EQ(total, 10u);
}

TEST(IsConnected, EmptyAndSingleton) {
  EXPECT_TRUE(IsConnected(Graph()));
  EXPECT_TRUE(IsConnected(MakeGraph(1, {})));
}

TEST(IsConnected, DetectsDisconnection) {
  EXPECT_TRUE(IsConnected(MakeGraph(3, {{0, 1}, {1, 2}})));
  EXPECT_FALSE(IsConnected(MakeGraph(3, {{0, 1}})));
}

TEST(LargestComponent, ExtractsAndRenumbers) {
  // Components: {0,1,2} and {3,4}; LCC has 3 nodes, 3 edges (triangle).
  Graph g = MakeGraph(5, {{0, 1}, {1, 2}, {2, 0}, {3, 4}});
  std::vector<NodeId> mapping;
  Graph lcc = LargestComponent(g, &mapping);
  EXPECT_EQ(lcc.num_nodes(), 3u);
  EXPECT_EQ(lcc.num_edges(), 3u);
  EXPECT_TRUE(IsConnected(lcc));
  EXPECT_NE(mapping[0], kInvalidNode);
  EXPECT_EQ(mapping[3], kInvalidNode);
  EXPECT_EQ(mapping[4], kInvalidNode);
}

TEST(LargestComponent, PreservesRelativeOrder) {
  Graph g = MakeGraph(6, {{1, 3}, {3, 5}, {0, 2}});
  std::vector<NodeId> mapping;
  Graph lcc = LargestComponent(g, &mapping);
  EXPECT_EQ(lcc.num_nodes(), 3u);
  EXPECT_EQ(mapping[1], 0u);
  EXPECT_EQ(mapping[3], 1u);
  EXPECT_EQ(mapping[5], 2u);
}

TEST(LargestComponent, ConnectedGraphIsIdentity) {
  Graph g = BarabasiAlbert(100, 2, 5);
  std::vector<NodeId> mapping;
  Graph lcc = LargestComponent(g, &mapping);
  EXPECT_EQ(lcc.num_nodes(), g.num_nodes());
  EXPECT_EQ(lcc.num_edges(), g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(mapping[v], v);
}

TEST(LargestComponent, EmptyGraph) {
  std::vector<NodeId> mapping;
  Graph lcc = LargestComponent(Graph(), &mapping);
  EXPECT_EQ(lcc.num_nodes(), 0u);
  EXPECT_TRUE(mapping.empty());
}

}  // namespace
}  // namespace saphyra
