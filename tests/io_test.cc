#include "graph/io.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "test_util.h"

namespace saphyra {
namespace {

using testing::MakeGraph;

class IoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/saphyra_io_" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(IoTest, SnapRoundTrip) {
  Graph g = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 3}});
  std::string path = TempPath("roundtrip.txt");
  ASSERT_TRUE(SaveSnapEdgeList(g, path).ok());
  Graph back;
  // Saved ids are already compact; compact_ids=true would renumber them by
  // first appearance in the (sorted) file and permute the labels.
  ASSERT_TRUE(LoadSnapEdgeList(path, &back, /*compact_ids=*/false).ok());
  EXPECT_EQ(back.num_nodes(), g.num_nodes());
  EXPECT_EQ(back.num_edges(), g.num_edges());
  EXPECT_EQ(back.UndirectedEdges(), g.UndirectedEdges());
}

TEST_F(IoTest, SnapSkipsCommentsAndBlanks) {
  std::string path = TempPath("comments.txt");
  WriteFile(path, "# header\n\n0 1\n% other comment style\n1 2\n");
  Graph g;
  ASSERT_TRUE(LoadSnapEdgeList(path, &g).ok());
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST_F(IoTest, SnapCompactsSparseIds) {
  std::string path = TempPath("sparse.txt");
  WriteFile(path, "1000000 2000000\n2000000 3000000\n");
  Graph g;
  ASSERT_TRUE(LoadSnapEdgeList(path, &g, /*compact_ids=*/true).ok());
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST_F(IoTest, SnapRawIdsPreserved) {
  std::string path = TempPath("raw.txt");
  WriteFile(path, "0 5\n5 9\n");
  Graph g;
  ASSERT_TRUE(LoadSnapEdgeList(path, &g, /*compact_ids=*/false).ok());
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_TRUE(g.HasEdge(0, 5));
  EXPECT_TRUE(g.HasEdge(5, 9));
}

TEST_F(IoTest, SnapToleratesCrlfAndTrailingWhitespace) {
  // A Windows-edited edge list: CRLF line endings, a whitespace-only line,
  // and trailing spaces/tabs after the second id.
  std::string path = TempPath("crlf.txt");
  WriteFile(path, "# comment\r\n0 1\r\n\r\n   \r\n1 2  \r\n2 3\t\r\n");
  Graph g;
  ASSERT_TRUE(LoadSnapEdgeList(path, &g, /*compact_ids=*/false).ok());
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(2, 3));
}

TEST_F(IoTest, DimacsToleratesCrlf) {
  std::string path = TempPath("crlf.gr");
  WriteFile(path, "c comment\r\np sp 3 2\r\n\r\na 1 2 5\r\na 2 3 7\r\n");
  Graph g;
  ASSERT_TRUE(LoadDimacsGraph(path, &g).ok());
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST_F(IoTest, SnapMissingFileFails) {
  Graph g;
  Status st = LoadSnapEdgeList(TempPath("does_not_exist.txt"), &g);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
}

TEST_F(IoTest, SnapMalformedLineFails) {
  std::string path = TempPath("bad.txt");
  WriteFile(path, "0 1\nnot numbers\n");
  Graph g;
  Status st = LoadSnapEdgeList(path, &g);
  EXPECT_FALSE(st.ok());
}

TEST_F(IoTest, DimacsGraphParses) {
  std::string path = TempPath("g.gr");
  WriteFile(path,
            "c USA-road style file\n"
            "p sp 4 5\n"
            "a 1 2 10\n"
            "a 2 1 10\n"
            "a 2 3 7\n"
            "a 3 4 1\n"
            "a 4 1 2\n");
  Graph g;
  ASSERT_TRUE(LoadDimacsGraph(path, &g).ok());
  EXPECT_EQ(g.num_nodes(), 4u);
  // a 1 2 and a 2 1 collapse into one undirected edge.
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(2, 3));
}

TEST_F(IoTest, DimacsMissingHeaderFails) {
  std::string path = TempPath("nohdr.gr");
  WriteFile(path, "a 1 2 3\n");
  Graph g;
  EXPECT_FALSE(LoadDimacsGraph(path, &g).ok());
}

TEST_F(IoTest, DimacsZeroIndexedIdFails) {
  std::string path = TempPath("zero.gr");
  WriteFile(path, "p sp 2 1\na 0 1 5\n");
  Graph g;
  EXPECT_FALSE(LoadDimacsGraph(path, &g).ok());
}

TEST_F(IoTest, DimacsCoordinatesParse) {
  std::string path = TempPath("c.co");
  WriteFile(path,
            "c comment\n"
            "p aux sp co 3\n"
            "v 1 -73992852 40752124\n"
            "v 2 -73984999 40754379\n"
            "v 3 -73963870 40771477\n");
  std::vector<float> coords;
  ASSERT_TRUE(LoadDimacsCoordinates(path, &coords).ok());
  ASSERT_EQ(coords.size(), 6u);
  EXPECT_FLOAT_EQ(coords[0], -73992852.0f);
  EXPECT_FLOAT_EQ(coords[5], 40771477.0f);
}

TEST_F(IoTest, SaveToUnwritablePathFails) {
  Graph g = MakeGraph(2, {{0, 1}});
  Status st = SaveSnapEdgeList(g, "/nonexistent_dir_xyz/out.txt");
  EXPECT_FALSE(st.ok());
}

}  // namespace
}  // namespace saphyra
