#include "bicomp/biconnected.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "bicomp_test_util.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "test_util.h"

namespace saphyra {
namespace {

using testing::AllBccVariants;
using testing::BccVariant;
using testing::BccVariantName;
using testing::ComputeBccVariant;
using testing::MakeGraph;
using testing::PaperFig2Graph;
using testing::RandomConnectedGraph;
using testing::ReferenceBcc;

// Component id of the undirected edge {u, v}.
uint32_t EdgeComp(const Graph& g, const BiconnectedComponents& bcc, NodeId u,
                  NodeId v) {
  auto nbr = g.neighbors(u);
  for (size_t i = 0; i < nbr.size(); ++i) {
    if (nbr[i] == v) return bcc.arc_component[g.offset(u) + i];
  }
  return kInvalidComp;
}

// One table of hand-graph structural expectations, run for every variant of
// the decomposition (serial, bounded, parallel at 2 and 8 threads). The
// expectations only use canonical structure — component counts, cutpoint
// sets, label (in)equalities — so they hold for any correct implementation;
// bitwise serial-vs-parallel identity is bicomp_differential_test.cc's job.
class BiconnectedVariants : public ::testing::TestWithParam<BccVariant> {
 protected:
  BiconnectedComponents Compute(const Graph& g) {
    return ComputeBccVariant(g, GetParam());
  }
};

TEST_P(BiconnectedVariants, SingleEdge) {
  Graph g = MakeGraph(2, {{0, 1}});
  auto bcc = Compute(g);
  EXPECT_EQ(bcc.num_components, 1u);
  EXPECT_FALSE(bcc.is_cutpoint[0]);
  EXPECT_FALSE(bcc.is_cutpoint[1]);
}

TEST_P(BiconnectedVariants, TriangleIsOneComponent) {
  Graph g = MakeGraph(3, {{0, 1}, {1, 2}, {2, 0}});
  auto bcc = Compute(g);
  EXPECT_EQ(bcc.num_components, 1u);
  for (NodeId v = 0; v < 3; ++v) EXPECT_FALSE(bcc.is_cutpoint[v]);
  EXPECT_EQ(bcc.component_nodes[0].size(), 3u);
}

TEST_P(BiconnectedVariants, PathGraphAllBridges) {
  Graph g = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  auto bcc = Compute(g);
  EXPECT_EQ(bcc.num_components, 4u);
  EXPECT_FALSE(bcc.is_cutpoint[0]);
  EXPECT_TRUE(bcc.is_cutpoint[1]);
  EXPECT_TRUE(bcc.is_cutpoint[2]);
  EXPECT_TRUE(bcc.is_cutpoint[3]);
  EXPECT_FALSE(bcc.is_cutpoint[4]);
}

TEST_P(BiconnectedVariants, StarCenterIsCutpoint) {
  Graph g = MakeGraph(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  auto bcc = Compute(g);
  EXPECT_EQ(bcc.num_components, 4u);
  EXPECT_TRUE(bcc.is_cutpoint[0]);
  EXPECT_EQ(bcc.NumComponentsOf(0), 4u);
  for (NodeId v = 1; v < 5; ++v) {
    EXPECT_FALSE(bcc.is_cutpoint[v]);
    EXPECT_EQ(bcc.NumComponentsOf(v), 1u);
  }
}

TEST_P(BiconnectedVariants, PaperFig2Structure) {
  Graph g = PaperFig2Graph();
  auto bcc = Compute(g);
  // Five components: pentagon {a,b,c,d,e}, triangle {c,g,h}, bridge {d,f},
  // bridge {d,i}, triangle {i,j,k}.
  EXPECT_EQ(bcc.num_components, 5u);
  // Cutpoints are exactly c(2), d(3), i(8).
  std::set<NodeId> cutpoints;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (bcc.is_cutpoint[v]) cutpoints.insert(v);
  }
  EXPECT_EQ(cutpoints, (std::set<NodeId>{2, 3, 8}));
  // The pentagon's edges all share one component.
  uint32_t pent = EdgeComp(g, bcc, 0, 1);
  EXPECT_EQ(EdgeComp(g, bcc, 1, 2), pent);
  EXPECT_EQ(EdgeComp(g, bcc, 2, 3), pent);
  EXPECT_EQ(EdgeComp(g, bcc, 3, 4), pent);
  EXPECT_EQ(EdgeComp(g, bcc, 4, 0), pent);
  // The bridges are their own components.
  EXPECT_NE(EdgeComp(g, bcc, 3, 5), pent);
  EXPECT_NE(EdgeComp(g, bcc, 3, 8), EdgeComp(g, bcc, 3, 5));
  // d belongs to 3 components, c and i to 2.
  EXPECT_EQ(bcc.NumComponentsOf(3), 3u);
  EXPECT_EQ(bcc.NumComponentsOf(2), 2u);
  EXPECT_EQ(bcc.NumComponentsOf(8), 2u);
}

TEST_P(BiconnectedVariants, BothArcDirectionsShareLabel) {
  Graph g = PaperFig2Graph();
  auto bcc = Compute(g);
  for (auto [u, v] : g.UndirectedEdges()) {
    EXPECT_EQ(EdgeComp(g, bcc, u, v), EdgeComp(g, bcc, v, u));
  }
}

TEST_P(BiconnectedVariants, DisconnectedGraphHandled) {
  // Triangle + separate path.
  Graph g = MakeGraph(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}});
  auto bcc = Compute(g);
  EXPECT_EQ(bcc.num_components, 3u);
  EXPECT_TRUE(bcc.is_cutpoint[4]);
  EXPECT_FALSE(bcc.is_cutpoint[0]);
}

TEST_P(BiconnectedVariants, IsolatedNodeHasNoComponent) {
  Graph g = MakeGraph(3, {{0, 1}});
  auto bcc = Compute(g);
  EXPECT_EQ(bcc.node_component[2], kInvalidComp);
  EXPECT_EQ(bcc.NumComponentsOf(2), 0u);
}

TEST_P(BiconnectedVariants, ComponentIdsAreCanonical) {
  // The canonicalization contract (biconnected.h): component ids ascend
  // with each component's smallest CSR arc index, for every variant.
  Graph g = PaperFig2Graph();
  auto bcc = Compute(g);
  std::vector<EdgeIndex> min_arc(bcc.num_components, g.num_arcs());
  for (EdgeIndex e = 0; e < g.num_arcs(); ++e) {
    uint32_t c = bcc.arc_component[e];
    ASSERT_LT(c, bcc.num_components);
    min_arc[c] = std::min(min_arc[c], e);
  }
  for (uint32_t c = 1; c < bcc.num_components; ++c) {
    EXPECT_LT(min_arc[c - 1], min_arc[c]);
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, BiconnectedVariants,
                         ::testing::ValuesIn(AllBccVariants()),
                         [](const auto& info) {
                           return std::string(BccVariantName(info.param));
                         });

// Property sweep against an independent recursive reference implementation,
// again for every variant.
class BiconnectedRandomized
    : public ::testing::TestWithParam<std::tuple<uint64_t, BccVariant>> {};

TEST_P(BiconnectedRandomized, MatchesReferenceImplementation) {
  const uint64_t seed = std::get<0>(GetParam());
  Rng rng(seed);
  NodeId n = 5 + static_cast<NodeId>(rng.UniformInt(40));
  double extra = rng.UniformDouble() * 0.15;
  Graph g = RandomConnectedGraph(n, extra, seed * 31 + 1);
  auto bcc = ComputeBccVariant(g, std::get<1>(GetParam()));
  ReferenceBcc ref(g);

  EXPECT_EQ(static_cast<int>(bcc.num_components), ref.num_groups());
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(bcc.is_cutpoint[v] != 0, ref.is_cutpoint(v)) << "node " << v;
  }
  // Edge partitions must agree up to relabeling: build the bijection.
  std::map<uint32_t, int> ours_to_ref;
  for (auto& [edge, gid] : ref.edge_group()) {
    uint32_t ours = EdgeComp(g, bcc, edge.first, edge.second);
    ASSERT_NE(ours, kInvalidComp);
    auto [it, inserted] = ours_to_ref.emplace(ours, gid);
    EXPECT_EQ(it->second, gid)
        << "edge " << edge.first << "-" << edge.second;
  }
}

TEST_P(BiconnectedRandomized, CutpointMatchesRemovalOracle) {
  const uint64_t seed = std::get<0>(GetParam());
  Graph g = RandomConnectedGraph(24, 0.08, seed + 500);
  auto bcc = ComputeBccVariant(g, std::get<1>(GetParam()));
  ComponentLabels base = ConnectedComponents(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    // Remove v and count components among the remaining nodes.
    GraphBuilder b;
    for (auto [x, y] : g.UndirectedEdges()) {
      if (x != v && y != v) b.AddEdge(x, y);
    }
    Graph h;
    ASSERT_TRUE(b.Build(g.num_nodes(), &h).ok());
    ComponentLabels labels = ConnectedComponents(h);
    // Ignore v's own singleton; compare against the original count.
    uint32_t removed_components = labels.num_components() - 1;
    bool increases = removed_components > base.num_components();
    EXPECT_EQ(bcc.is_cutpoint[v] != 0, increases) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, BiconnectedRandomized,
    ::testing::Combine(::testing::Range<uint64_t>(0, 10),
                       ::testing::ValuesIn(AllBccVariants())),
    [](const auto& info) {
      return "s" + std::to_string(std::get<0>(info.param)) + "_" +
             BccVariantName(std::get<1>(info.param));
    });

TEST(ReverseArcs, InverseMapping) {
  Graph g = PaperFig2Graph();
  auto rev = ComputeReverseArcs(g);
  ASSERT_EQ(rev.size(), g.num_arcs());
  for (EdgeIndex e = 0; e < g.num_arcs(); ++e) {
    EXPECT_EQ(rev[rev[e]], e);
    EXPECT_NE(rev[e], e);
  }
}

// Structured family: trees of varying size — every edge its own component,
// every internal node a cutpoint. All variants share the table.
class TreeBcc : public ::testing::TestWithParam<NodeId> {};

TEST_P(TreeBcc, TreesDecomposeIntoBridges) {
  Graph g = RandomTree(GetParam(), 777);
  for (BccVariant variant : AllBccVariants()) {
    auto bcc = ComputeBccVariant(g, variant);
    EXPECT_EQ(bcc.num_components, g.num_edges()) << BccVariantName(variant);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(bcc.is_cutpoint[v] != 0, g.degree(v) >= 2)
          << BccVariantName(variant);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TreeBcc,
                         ::testing::Values(2, 3, 5, 10, 50, 200));

// --- depth-bounded variant -------------------------------------------------

Graph PathGraph(NodeId n) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1});
  return MakeGraph(n, edges);
}

TEST(BiconnectedBounded, DepthCapFailsCleanlyOnLongPath) {
  // A 300-node path drives the DFS stack ~300 frames deep; a 64-frame cap
  // must surface a clear precondition error instead of burning memory.
  Graph g = PathGraph(300);
  BiconnectedComponents out;
  Status st = ComputeBiconnectedComponentsBounded(g, 64, &out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(st.message().find("graph too deep"), std::string::npos);
  EXPECT_NE(st.message().find("parallel-BCC"), std::string::npos);
}

TEST(BiconnectedBounded, GenerousCapMatchesUnlimited) {
  Graph g = PaperFig2Graph();
  BiconnectedComponents bounded;
  ASSERT_TRUE(ComputeBiconnectedComponentsBounded(g, 64, &bounded).ok());
  auto unlimited = ComputeBiconnectedComponents(g);
  EXPECT_EQ(bounded.num_components, unlimited.num_components);
  EXPECT_EQ(bounded.arc_component, unlimited.arc_component);
  EXPECT_EQ(bounded.is_cutpoint, unlimited.is_cutpoint);
}

TEST(BiconnectedBounded, ZeroMeansUnlimited) {
  Graph g = PathGraph(300);
  BiconnectedComponents out;
  ASSERT_TRUE(ComputeBiconnectedComponentsBounded(g, 0, &out).ok());
  EXPECT_EQ(out.num_components, 299u);  // every path edge is a bridge
}

}  // namespace
}  // namespace saphyra
