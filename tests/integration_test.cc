#include <cmath>

#include <gtest/gtest.h>

#include "baselines/abra.h"
#include "baselines/kadabra.h"
#include "bc/brandes.h"
#include "bc/saphyra_bc.h"
#include "bc/vc_bc.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "metrics/rank.h"
#include "test_util.h"

namespace saphyra {
namespace {

using testing::PaperFig2Graph;
using testing::RandomConnectedGraph;

std::vector<NodeId> RandomSubset(const Graph& g, size_t k, uint64_t seed) {
  Rng rng(seed);
  std::vector<NodeId> all(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) all[v] = v;
  for (size_t i = 0; i < k && i < all.size(); ++i) {
    size_t j = i + rng.UniformInt(all.size() - i);
    std::swap(all[i], all[j]);
  }
  all.resize(std::min(k, all.size()));
  return all;
}

// End-to-end pipeline of the paper's evaluation: generate a network, rank a
// random subset with all three estimators, compare rank quality against the
// exact ground truth. SaPHyRa must not lose to the baselines.
TEST(Integration, SubsetRankingPipeline) {
  Graph g = BarabasiAlbert(300, 3, 2024);
  IspIndex isp(g);
  std::vector<double> truth = ParallelBrandesBetweenness(g, 4);
  std::vector<NodeId> targets = RandomSubset(g, 40, 7);
  std::vector<double> truth_sub(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) truth_sub[i] = truth[targets[i]];

  const double eps = 0.05;
  SaphyraBcOptions sopts;
  sopts.epsilon = eps;
  sopts.seed = 1;
  SaphyraBcResult sres = RunSaphyraBc(isp, targets, sopts);

  AbraOptions aopts;
  aopts.epsilon = eps;
  aopts.seed = 2;
  AbraResult ares = RunAbra(g, aopts);
  std::vector<double> abra_sub(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) abra_sub[i] = ares.bc[targets[i]];

  KadabraOptions kopts;
  kopts.epsilon = eps;
  kopts.seed = 3;
  KadabraResult kres = RunKadabra(g, kopts);
  std::vector<double> kad_sub(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) kad_sub[i] = kres.bc[targets[i]];

  // Estimation quality: everything within eps of truth.
  for (size_t i = 0; i < targets.size(); ++i) {
    EXPECT_NEAR(sres.bc[i], truth_sub[i], eps);
    EXPECT_NEAR(abra_sub[i], truth_sub[i], eps);
    EXPECT_NEAR(kad_sub[i], truth_sub[i], eps);
  }
  // Ranking quality: SaPHyRa at least matches both baselines (the paper's
  // central claim, Fig. 4).
  double rs = SpearmanCorrelation(truth_sub, sres.bc);
  double ra = SpearmanCorrelation(truth_sub, abra_sub);
  double rk = SpearmanCorrelation(truth_sub, kad_sub);
  EXPECT_GE(rs, ra - 0.05);
  EXPECT_GE(rs, rk - 0.05);
  // And SaPHyRa produces no false zeros (Lemma 19).
  EXPECT_EQ(ClassifyZeros(truth_sub, sres.bc).false_zeros, 0u);
}

TEST(Integration, RoadNetworkAreaCaseStudy) {
  // Miniature of the paper's USA-road case study (Fig. 7): rank the nodes
  // of a geographic window.
  RoadNetwork road = RoadGrid(24, 24, 0.85, 99);
  IspIndex isp(road.graph);
  std::vector<double> truth = ParallelBrandesBetweenness(road.graph, 4);
  auto area = NodesInRectangle(road, 2, 2, 9, 9);
  ASSERT_GE(area.size(), 10u);
  SaphyraBcOptions opts;
  opts.epsilon = 0.03;
  opts.seed = 5;
  SaphyraBcResult res = RunSaphyraBc(isp, area, opts);
  std::vector<double> truth_sub(area.size());
  for (size_t i = 0; i < area.size(); ++i) truth_sub[i] = truth[area[i]];
  for (size_t i = 0; i < area.size(); ++i) {
    EXPECT_NEAR(res.bc[i], truth_sub[i], opts.epsilon);
  }
  EXPECT_LT(res.eta, 1.0);  // personalization really kicked in
  EXPECT_GT(SpearmanCorrelation(truth_sub, res.bc), 0.7);
}

TEST(Integration, SnapRoundTripThenRank) {
  Graph g = BarabasiAlbert(120, 2, 17);
  std::string path = ::testing::TempDir() + "/saphyra_integration.txt";
  ASSERT_TRUE(SaveSnapEdgeList(g, path).ok());
  Graph loaded;
  ASSERT_TRUE(LoadSnapEdgeList(path, &loaded).ok());
  ASSERT_EQ(loaded.num_edges(), g.num_edges());
  IspIndex isp(loaded);
  std::vector<double> truth = BrandesBetweenness(loaded);
  SaphyraBcOptions opts;
  opts.epsilon = 0.05;
  SaphyraBcResult res = RunSaphyraBc(isp, RandomSubset(loaded, 15, 3), opts);
  EXPECT_EQ(res.bc.size(), 15u);
}

TEST(Integration, VcBoundsOrderedAsInTableI) {
  // Table I: the personalized bound <= full-network SaPHyRa bound, and on
  // bicomponent-rich graphs the SaPHyRa bound <= the Riondato bound.
  RoadNetwork road = RoadGrid(30, 30, 0.8, 31);
  IspIndex isp(road.graph);
  double riondato = RiondatoVcBound(road.graph);
  double full = FullNetworkVcBound(isp);
  auto local_nodes = NodesInRectangle(road, 0, 0, 5, 5);
  ASSERT_GE(local_nodes.size(), 2u);
  PersonalizedSpace space(isp, local_nodes);
  VcBcBounds personalized = ComputePersonalizedVcBounds(space);
  EXPECT_LE(full, riondato + 1.0);  // usually strictly smaller
  EXPECT_LE(personalized.vc_bound, full + 1e-9);
  EXPECT_GT(personalized.vc_bound, 0.0);
}

TEST(Integration, BsBoundDominatesBruteForceBs) {
  // BS(A): max number of targets that are inner nodes of one shortest path.
  Graph g = RandomConnectedGraph(18, 0.12, 47);
  IspIndex isp(g);
  Rng rng(48);
  std::vector<NodeId> targets;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (rng.Bernoulli(0.4)) targets.push_back(v);
  }
  if (targets.size() < 2) targets = {0, 1};
  PersonalizedSpace space(isp, targets);
  VcBcBounds bounds = ComputePersonalizedVcBounds(space);
  // Brute force over the PISP space.
  uint64_t bs = 0;
  for (uint32_t c : space.component_ids()) {
    const auto& nodes = isp.bcc().component_nodes[c];
    std::function<bool(EdgeIndex)> arc_ok = [&](EdgeIndex e) {
      return isp.bcc().arc_component[e] == c;
    };
    for (NodeId s : nodes) {
      for (NodeId t : nodes) {
        if (s == t) continue;
        for (const auto& p : testing::AllShortestPaths(g, s, t, &arc_ok)) {
          uint64_t inner_targets = 0;
          for (size_t i = 1; i + 1 < p.size(); ++i) {
            if (space.HypothesisIndex(p[i]) >= 0) ++inner_targets;
          }
          bs = std::max(bs, inner_targets);
        }
      }
    }
  }
  EXPECT_GE(bounds.bs_bound, static_cast<double>(bs));
}

TEST(Integration, FullPipelineOnFig2SmallestCase) {
  Graph g = PaperFig2Graph();
  IspIndex isp(g);
  std::vector<double> truth = BrandesBetweenness(g);
  SaphyraBcOptions opts;
  opts.epsilon = 0.02;
  opts.seed = 11;
  SaphyraBcResult res = RunSaphyraBcFull(isp, opts);
  EXPECT_GT(SpearmanCorrelation(truth, res.bc), 0.95);
}

TEST(Integration, SharedIspIndexAcrossManySubsets) {
  // The paper ranks 1000 subsets per network; the index must be reusable.
  Graph g = BarabasiAlbert(150, 2, 53);
  IspIndex isp(g);
  std::vector<double> truth = BrandesBetweenness(g);
  for (int trial = 0; trial < 10; ++trial) {
    SaphyraBcOptions opts;
    opts.epsilon = 0.06;
    opts.seed = 100 + trial;
    std::vector<NodeId> targets = RandomSubset(g, 10, trial);
    SaphyraBcResult res = RunSaphyraBc(isp, targets, opts);
    for (size_t i = 0; i < targets.size(); ++i) {
      ASSERT_NEAR(res.bc[i], truth[targets[i]], opts.epsilon);
    }
  }
}

}  // namespace
}  // namespace saphyra
