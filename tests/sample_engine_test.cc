// Tests of the pooled SampleEngine's determinism contract: for a fixed
// (base RNG, num_workers), results are bitwise identical no matter which
// thread pool executes the logical workers — across pool sizes, across
// runs, and against inline execution.

#include <memory>

#include <gtest/gtest.h>

#include "core/sample_engine.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace saphyra {
namespace {

/// Clonable problem whose sample stream is a pure function of the RNG:
/// each sample hits exactly one of k hypotheses.
class CountingProblem : public HypothesisRankingProblem {
 public:
  explicit CountingProblem(size_t k) : k_(k) {}
  size_t num_hypotheses() const override { return k_; }
  double ComputeExactRisks(std::vector<double>* exact) override {
    exact->assign(k_, 0.0);
    return 0.0;
  }
  void SampleApproxLosses(Rng* rng, std::vector<uint32_t>* hits) override {
    hits->push_back(static_cast<uint32_t>(rng->UniformInt(k_)));
  }
  double VcDimension() const override { return 1.0; }
  std::unique_ptr<HypothesisRankingProblem> CloneForSampling() override {
    return std::make_unique<CountingProblem>(k_);
  }

 private:
  size_t k_;
};

std::vector<uint64_t> RunDraws(uint32_t num_workers, ThreadPool* pool,
                               uint64_t seed) {
  CountingProblem problem(8);
  Rng rng(seed);
  SampleEngine engine(&problem, num_workers, &rng, pool);
  std::vector<uint64_t> counts(8, 0);
  // Several rounds with awkward quotas (not divisible by the worker count).
  uint64_t n = 0;
  for (uint64_t target : {37u, 138u, 979u, 2025u}) {
    n = engine.Draw(n, target, &counts);
    EXPECT_EQ(n, target);
  }
  return counts;
}

TEST(SampleEngine, CountsEveryRequestedSample) {
  ThreadPool pool(3);
  auto counts = RunDraws(4, &pool, 1);
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  EXPECT_EQ(total, 2025u);  // every sample hits exactly one hypothesis
}

TEST(SampleEngine, DeterministicAcrossRuns) {
  ThreadPool pool(4);
  EXPECT_EQ(RunDraws(4, &pool, 7), RunDraws(4, &pool, 7));
}

TEST(SampleEngine, ResultIndependentOfPoolSize) {
  // The same 4 logical workers scheduled on 1, 2, or 8 pool threads — or
  // inline with no pool at all — must produce identical counts: quotas and
  // RNG streams belong to the logical workers, not the executing threads.
  ThreadPool pool1(1), pool2(2), pool8(8);
  auto inline_counts = RunDraws(4, nullptr, 13);
  EXPECT_EQ(RunDraws(4, &pool1, 13), inline_counts);
  EXPECT_EQ(RunDraws(4, &pool2, 13), inline_counts);
  EXPECT_EQ(RunDraws(4, &pool8, 13), inline_counts);
  EXPECT_EQ(RunDraws(4, &SharedThreadPool(), 13), inline_counts);
}

TEST(SampleEngine, WorkerCountChangesTheStream) {
  // Different worker counts partition the RNG streams differently; the
  // totals still match but the per-run stream is a different draw.
  ThreadPool pool(4);
  auto one = RunDraws(1, &pool, 3);
  auto four = RunDraws(4, &pool, 3);
  uint64_t t1 = 0, t4 = 0;
  for (uint64_t c : one) t1 += c;
  for (uint64_t c : four) t4 += c;
  EXPECT_EQ(t1, t4);
}

TEST(SampleEngine, NonClonableDegradesToOneWorker) {
  class NonClonable : public HypothesisRankingProblem {
   public:
    size_t num_hypotheses() const override { return 2; }
    double ComputeExactRisks(std::vector<double>* e) override {
      e->assign(2, 0.0);
      return 0.0;
    }
    void SampleApproxLosses(Rng* rng, std::vector<uint32_t>* hits) override {
      if (rng->Bernoulli(0.5)) hits->push_back(0);
    }
    double VcDimension() const override { return 1.0; }
  };
  NonClonable p;
  Rng rng(5);
  SampleEngine engine(&p, 8, &rng, &SharedThreadPool());
  EXPECT_EQ(engine.num_workers(), 1u);
  std::vector<uint64_t> counts(2, 0);
  EXPECT_EQ(engine.Draw(0, 100, &counts), 100u);
}

TEST(SampleEngine, ZeroNeedIsANoop) {
  CountingProblem p(4);
  Rng rng(9);
  SampleEngine engine(&p, 2, &rng, nullptr);
  std::vector<uint64_t> counts(4, 0);
  EXPECT_EQ(engine.Draw(50, 50, &counts), 50u);
  for (uint64_t c : counts) EXPECT_EQ(c, 0u);
}

}  // namespace
}  // namespace saphyra
