// Tests for util/cancel.h: deadlines, hard cancel, parent chaining, and
// the deterministic CancelAfterPolls trigger the degraded-determinism
// tests build on.

#include "util/cancel.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace saphyra {
namespace {

TEST(DeadlineTest, NeverIsUnbounded) {
  Deadline never = Deadline::Never();
  EXPECT_TRUE(never.unbounded());
  EXPECT_FALSE(never.expired());
  EXPECT_EQ(never.steady_nanos(), Deadline::kNeverNs);
}

TEST(DeadlineTest, AfterMillisExpires) {
  Deadline past = Deadline::AfterMillis(0);
  EXPECT_FALSE(past.unbounded());
  EXPECT_TRUE(past.expired());
  Deadline future = Deadline::AfterMillis(60000);
  EXPECT_FALSE(future.expired());
}

TEST(DeadlineTest, HugeMillisDoesNotOverflow) {
  Deadline d = Deadline::AfterMillis(UINT64_MAX);
  EXPECT_FALSE(d.unbounded());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.steady_nanos(), Deadline::NowNanos());
}

TEST(CancelTokenTest, DefaultNeverFires) {
  CancelToken token;
  EXPECT_FALSE(token.CanExpire());
  EXPECT_EQ(token.Check(), StatusCode::kOk);
  EXPECT_EQ(token.Poll(), StatusCode::kOk);
}

TEST(CancelTokenTest, CancelIsSticky) {
  CancelToken token;
  token.Cancel();
  EXPECT_TRUE(token.CanExpire());
  EXPECT_EQ(token.Check(), StatusCode::kCancelled);
  EXPECT_EQ(token.Check(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, ExpiredDeadlineReportsDeadlineExceeded) {
  CancelToken token;
  token.TightenDeadline(Deadline::AfterMillis(0));
  EXPECT_TRUE(token.CanExpire());
  EXPECT_EQ(token.Check(), StatusCode::kDeadlineExceeded);
  // A hard cancel outranks the deadline.
  token.Cancel();
  EXPECT_EQ(token.Check(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, TightenOnlyShortens) {
  CancelToken token;
  token.TightenDeadline(Deadline::AfterMillis(0));
  // A later deadline must not resurrect an expired token.
  token.TightenDeadline(Deadline::AfterMillis(60000));
  EXPECT_EQ(token.Check(), StatusCode::kDeadlineExceeded);
}

TEST(CancelTokenTest, CancelAfterPollsFiresOnNthPoll) {
  CancelToken token;
  token.CancelAfterPolls(3);
  EXPECT_TRUE(token.CanExpire());
  EXPECT_EQ(token.Poll(), StatusCode::kOk);
  EXPECT_EQ(token.Poll(), StatusCode::kOk);
  EXPECT_EQ(token.Poll(), StatusCode::kCancelled);  // the 3rd poll
  EXPECT_EQ(token.Poll(), StatusCode::kCancelled);
  // Check() never consumes the budget.
  CancelToken counting;
  counting.CancelAfterPolls(1);
  EXPECT_EQ(counting.Check(), StatusCode::kOk);
  EXPECT_EQ(counting.Check(), StatusCode::kOk);
  EXPECT_EQ(counting.Poll(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, ParentCheckedFirst) {
  CancelToken server;
  CancelToken query;
  query.set_parent(&server);
  EXPECT_FALSE(query.CanExpire());
  server.Cancel();
  EXPECT_TRUE(query.CanExpire());
  EXPECT_EQ(query.Check(), StatusCode::kCancelled);
  EXPECT_EQ(query.Poll(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, ParentDrainDeadlinePropagates) {
  CancelToken server;
  CancelToken query;
  query.set_parent(&server);
  server.TightenDeadline(Deadline::AfterMillis(0));
  EXPECT_EQ(query.Check(), StatusCode::kDeadlineExceeded);
}

TEST(CancelTokenTest, ConcurrentPollsConsumeBudgetExactlyOnce) {
  // 8 threads x 100 polls against a budget of 500. Each budget slot is
  // consumed exactly once (CAS), so at least the 301 post-budget polls
  // report cancelled; a pre-budget poll may also observe the flag if a
  // racing thread crossed the threshold first, never the other way.
  CancelToken token;
  token.CancelAfterPolls(500);
  std::vector<std::thread> threads;
  std::atomic<int> cancelled{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&token, &cancelled] {
      for (int i = 0; i < 100; ++i) {
        if (token.Poll() != StatusCode::kOk) cancelled.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GE(cancelled.load(), 800 - 499);
  EXPECT_EQ(token.Check(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, ToStatusMapsCodes) {
  EXPECT_TRUE(CancelToken::ToStatus(StatusCode::kOk, "q").ok());
  Status dl = CancelToken::ToStatus(StatusCode::kDeadlineExceeded, "query q1");
  EXPECT_EQ(dl.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(dl.message().find("query q1"), std::string::npos);
  Status c = CancelToken::ToStatus(StatusCode::kCancelled, "query q2");
  EXPECT_EQ(c.code(), StatusCode::kCancelled);
  EXPECT_NE(c.message().find("cancelled"), std::string::npos);
}

}  // namespace
}  // namespace saphyra
