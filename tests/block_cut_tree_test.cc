#include "bicomp/block_cut_tree.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "test_util.h"

namespace saphyra {
namespace {

using testing::MakeGraph;
using testing::PaperFig2Graph;
using testing::RandomConnectedGraph;

struct Decomposition {
  Graph g;
  BiconnectedComponents bcc;
  ComponentLabels conn;
  BlockCutTree tree;

  explicit Decomposition(Graph graph)
      : g(std::move(graph)),
        bcc(ComputeBiconnectedComponents(g)),
        conn(ConnectedComponents(g)),
        tree(BlockCutTree::Build(g, bcc, conn)) {}
};

// Component id containing both u and v (looked up via u's arcs).
uint32_t CompOf(const Decomposition& d, NodeId u, NodeId v) {
  auto nbr = d.g.neighbors(u);
  for (size_t i = 0; i < nbr.size(); ++i) {
    if (nbr[i] == v) return d.bcc.arc_component[d.g.offset(u) + i];
  }
  return kInvalidComp;
}

TEST(BlockCutTree, PathGraphOutReach) {
  // a-b-c: comps {a,b}, {b,c}; r for b in {a,b} is |{b,c}| = 2.
  Decomposition d(MakeGraph(3, {{0, 1}, {1, 2}}));
  uint32_t c_ab = CompOf(d, 0, 1);
  uint32_t c_bc = CompOf(d, 1, 2);
  EXPECT_EQ(d.tree.OutReach(c_ab, 0), 1u);
  EXPECT_EQ(d.tree.OutReach(c_ab, 1), 2u);
  EXPECT_EQ(d.tree.OutReach(c_bc, 1), 2u);
  EXPECT_EQ(d.tree.OutReach(c_bc, 2), 1u);
}

TEST(BlockCutTree, StarOutReach) {
  Decomposition d(MakeGraph(4, {{0, 1}, {0, 2}, {0, 3}}));
  for (NodeId leaf = 1; leaf < 4; ++leaf) {
    uint32_t c = CompOf(d, 0, leaf);
    // Center reaches itself + the two other leaves avoiding this component.
    EXPECT_EQ(d.tree.OutReach(c, 0), 3u);
    EXPECT_EQ(d.tree.OutReach(c, leaf), 1u);
    EXPECT_EQ(d.tree.HangSize(c, 0), 1u);
  }
}

TEST(BlockCutTree, PaperFig2OutReach) {
  Decomposition d(PaperFig2Graph());
  // d(3) in the pentagon: avoiding the pentagon it reaches {d, f, i, j, k}.
  uint32_t pent = CompOf(d, 0, 1);
  EXPECT_EQ(d.tree.OutReach(pent, 3), 5u);
  // c(2) in the pentagon: avoiding it c reaches {c, g, h}.
  EXPECT_EQ(d.tree.OutReach(pent, 2), 3u);
  // Non-cutpoint a(0): just itself.
  EXPECT_EQ(d.tree.OutReach(pent, 0), 1u);
  // d in the bridge {d,f}: reaches everything except f -> 10 nodes.
  uint32_t df = CompOf(d, 3, 5);
  EXPECT_EQ(d.tree.OutReach(df, 3), 10u);
  EXPECT_EQ(d.tree.OutReach(df, 5), 1u);
  // i in the triangle {i,j,k}: reaches all but j,k -> 9.
  uint32_t ijk = CompOf(d, 8, 9);
  EXPECT_EQ(d.tree.OutReach(ijk, 8), 9u);
  // d in the bridge {d,i}: reaches {a,b,c,d,e,f,g,h} -> 8.
  uint32_t di = CompOf(d, 3, 8);
  EXPECT_EQ(d.tree.OutReach(di, 3), 8u);
  EXPECT_EQ(d.tree.OutReach(di, 8), 3u);  // i + {j,k}
}

TEST(BlockCutTree, HangSizeIsComplement) {
  Decomposition d(PaperFig2Graph());
  for (uint32_t c = 0; c < d.bcc.num_components; ++c) {
    for (NodeId v : d.bcc.component_nodes[c]) {
      EXPECT_EQ(d.tree.OutReach(c, v) + d.tree.HangSize(c, v),
                d.tree.conn_size_of_comp(c));
    }
  }
}

TEST(BlockCutTree, ConnSizes) {
  Decomposition d(MakeGraph(6, {{0, 1}, {1, 2}, {3, 4}}));
  EXPECT_EQ(d.tree.conn_size_of_node(0), 3u);
  EXPECT_EQ(d.tree.conn_size_of_node(3), 2u);
  EXPECT_EQ(d.tree.conn_size_of_node(5), 1u);
}

// Claim 9 / Eq. 18 of the paper: for every component,
// Σ_{v∈C_i} r_i(v) = size of the connected component.
class OutReachSum : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OutReachSum, SumsToComponentSize) {
  Rng rng(GetParam());
  NodeId n = 4 + static_cast<NodeId>(rng.UniformInt(60));
  Graph g = RandomConnectedGraph(n, rng.UniformDouble() * 0.12,
                                 GetParam() * 13 + 5);
  Decomposition d(std::move(g));
  for (uint32_t c = 0; c < d.bcc.num_components; ++c) {
    uint64_t sum = 0;
    for (NodeId v : d.bcc.component_nodes[c]) {
      sum += d.tree.OutReach(c, v);
    }
    EXPECT_EQ(sum, d.tree.conn_size_of_comp(c)) << "component " << c;
  }
}

TEST_P(OutReachSum, BruteForceReachabilityOracle) {
  // r_i(v) must equal the number of nodes reachable from v when the other
  // nodes of C_i are deleted.
  Graph g = RandomConnectedGraph(18, 0.1, GetParam() + 999);
  Decomposition d(std::move(g));
  for (uint32_t c = 0; c < d.bcc.num_components; ++c) {
    for (NodeId v : d.bcc.component_nodes[c]) {
      // BFS avoiding C_i \ {v}.
      std::vector<uint8_t> blocked(d.g.num_nodes(), 0);
      for (NodeId w : d.bcc.component_nodes[c]) blocked[w] = 1;
      blocked[v] = 0;
      std::vector<NodeId> queue{v};
      std::vector<uint8_t> seen(d.g.num_nodes(), 0);
      seen[v] = 1;
      uint64_t reach = 0;
      for (size_t head = 0; head < queue.size(); ++head) {
        NodeId u = queue[head];
        ++reach;
        for (NodeId w : d.g.neighbors(u)) {
          if (!seen[w] && !blocked[w]) {
            seen[w] = 1;
            queue.push_back(w);
          }
        }
      }
      EXPECT_EQ(d.tree.OutReach(c, v), reach)
          << "comp " << c << " node " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OutReachSum, ::testing::Range<uint64_t>(0, 10));

TEST(BlockCutTree, DisconnectedGraphUsesComponentSizes) {
  // Two separate paths: sums must use each component's size, not n.
  Decomposition d(MakeGraph(7, {{0, 1}, {1, 2}, {3, 4}, {4, 5}, {5, 6}}));
  for (uint32_t c = 0; c < d.bcc.num_components; ++c) {
    uint64_t sum = 0;
    for (NodeId v : d.bcc.component_nodes[c]) sum += d.tree.OutReach(c, v);
    EXPECT_EQ(sum, d.tree.conn_size_of_comp(c));
  }
}

}  // namespace
}  // namespace saphyra
