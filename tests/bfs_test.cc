#include "graph/bfs.h"

#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "test_util.h"

namespace saphyra {
namespace {

using testing::AllShortestPaths;
using testing::MakeGraph;
using testing::RandomConnectedGraph;

// Floyd–Warshall oracle for hop distances.
std::vector<std::vector<uint32_t>> FloydWarshall(const Graph& g) {
  const NodeId n = g.num_nodes();
  const uint32_t inf = kUnreachable / 2;
  std::vector<std::vector<uint32_t>> d(n, std::vector<uint32_t>(n, inf));
  for (NodeId v = 0; v < n; ++v) d[v][v] = 0;
  for (auto [u, v] : g.UndirectedEdges()) d[u][v] = d[v][u] = 1;
  for (NodeId k = 0; k < n; ++k) {
    for (NodeId i = 0; i < n; ++i) {
      for (NodeId j = 0; j < n; ++j) {
        d[i][j] = std::min(d[i][j], d[i][k] + d[k][j]);
      }
    }
  }
  return d;
}

TEST(Bfs, PathGraphDistances) {
  Graph g = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  BfsResult r = Bfs(g, 0);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(r.dist[v], v);
  EXPECT_EQ(r.order.front(), 0u);
  EXPECT_EQ(r.order.size(), 5u);
}

TEST(Bfs, UnreachableMarked) {
  Graph g = MakeGraph(4, {{0, 1}, {2, 3}});
  BfsResult r = Bfs(g, 0);
  EXPECT_EQ(r.dist[1], 1u);
  EXPECT_EQ(r.dist[2], kUnreachable);
  EXPECT_EQ(r.dist[3], kUnreachable);
}

TEST(Bfs, OrderIsNonDecreasingDistance) {
  Graph g = RandomConnectedGraph(60, 0.05, 3);
  BfsResult r = Bfs(g, 0);
  for (size_t i = 1; i < r.order.size(); ++i) {
    EXPECT_LE(r.dist[r.order[i - 1]], r.dist[r.order[i]]);
  }
}

class BfsRandomized : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BfsRandomized, DistancesMatchFloydWarshall) {
  Graph g = RandomConnectedGraph(40, 0.06, GetParam());
  auto fw = FloydWarshall(g);
  for (NodeId s = 0; s < g.num_nodes(); s += 7) {
    BfsResult r = Bfs(g, s);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(r.dist[v], fw[s][v]);
    }
  }
}

TEST_P(BfsRandomized, SigmaMatchesPathEnumeration) {
  Graph g = RandomConnectedGraph(25, 0.12, GetParam() + 100);
  for (NodeId s = 0; s < g.num_nodes(); s += 5) {
    SpDag dag = BfsWithCounts(g, s);
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      if (t == s) continue;
      auto paths = AllShortestPaths(g, s, t);
      EXPECT_DOUBLE_EQ(dag.sigma[t], static_cast<double>(paths.size()))
          << "s=" << s << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BfsRandomized,
                         ::testing::Range<uint64_t>(0, 8));

TEST(BfsWithCounts, EdgeFilterRestrictsTraversal) {
  // Square 0-1-2-3-0; forbid arc (0,1)/(1,0): distances go the long way.
  Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  std::function<bool(NodeId, NodeId)> filter = [](NodeId u, NodeId v) {
    return !((u == 0 && v == 1) || (u == 1 && v == 0));
  };
  SpDag dag = BfsWithCounts(g, 0, &filter);
  EXPECT_EQ(dag.dist[1], 3u);
  EXPECT_EQ(dag.dist[3], 1u);
}

TEST(Eccentricity, PathEndpoints) {
  Graph g = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  EXPECT_EQ(Eccentricity(g, 0), 4u);
  EXPECT_EQ(Eccentricity(g, 2), 2u);
}

TEST(Diameter, BoundsSandwichExactValue) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Graph g = RandomConnectedGraph(50, 0.05, seed);
    uint32_t exact = ExactDiameter(g);
    EXPECT_LE(TwoSweepDiameterLowerBound(g), exact);
    EXPECT_GE(DiameterUpperBound(g), exact);
  }
}

TEST(Diameter, ExactOnPath) {
  Graph g = MakeGraph(7, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}});
  EXPECT_EQ(ExactDiameter(g), 6u);
  EXPECT_EQ(TwoSweepDiameterLowerBound(g), 6u);  // exact on trees
}

TEST(BfsScratch, EpochResetClearsEntries) {
  BfsScratch scratch(10);
  scratch.set_dist(3, 7);
  scratch.set_sigma(3, 2.5);
  EXPECT_EQ(scratch.dist(3), 7u);
  EXPECT_DOUBLE_EQ(scratch.sigma(3), 2.5);
  EXPECT_EQ(scratch.dist(4), kUnreachable);
  scratch.Reset();
  EXPECT_EQ(scratch.dist(3), kUnreachable);
  EXPECT_DOUBLE_EQ(scratch.sigma(3), 0.0);
}

TEST(BfsScratch, AddSigmaAccumulates) {
  BfsScratch scratch(4);
  scratch.add_sigma(1, 1.0);
  scratch.add_sigma(1, 2.0);
  EXPECT_DOUBLE_EQ(scratch.sigma(1), 3.0);
  EXPECT_EQ(scratch.dist(1), kUnreachable);  // dist untouched by add_sigma
}

}  // namespace
}  // namespace saphyra
