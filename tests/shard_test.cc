// The sharded serving tier, pinned against the determinism contract: a
// query answered through worker shards — at any shard count, any
// admission concurrency, and across worker kills with stripe
// reassignment — must be bitwise identical to the same query sampled
// locally. Past the retry budget a query degrades (shard_lost), never
// errors and never lands in the memo.
//
// Workers here are in-process threads running the real RunWorkerLoop
// over a socketpair (the ThreadLauncher below), so a "crash" is a
// deterministic socket shutdown rather than a racy SIGKILL; the CI
// fault-injection job covers the fork/exec ProcessWorkerLauncher path
// with real processes.

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bicomp/isp.h"
#include "graph/binary_io.h"
#include "graph/io.h"
#include "net/frame.h"
#include "net/socket.h"
#include "service/query.h"
#include "service/scheduler.h"
#include "service/session.h"
#include "service/session_pool.h"
#include "service/shard.h"
#include "service/shard_worker.h"
#include "test_util.h"
#include "util/failpoint.h"

namespace saphyra {
namespace {

using testing::RandomConnectedGraph;

std::string TempPath(const std::string& stem) {
  return "/tmp/saphyra_shard_test_" + std::to_string(::getpid()) + "_" + stem;
}

struct GraphFiles {
  std::string text_path;
  std::string sgr_path;

  explicit GraphFiles(const Graph& g) : text_path(TempPath("graph.txt")) {
    sgr_path = SgrCachePathFor(text_path);
    SAPHYRA_CHECK(SaveSnapEdgeList(g, text_path).ok());
    Graph parsed;
    SAPHYRA_CHECK(LoadSnapEdgeList(text_path, &parsed).ok());
    IspIndex isp(parsed);
    SgrWriteOptions wopts;
    wopts.source_path = text_path;
    SAPHYRA_CHECK(WriteSgr(sgr_path, parsed, &isp.bcc(), &isp.conn(),
                           &isp.views(), &isp.tree(), wopts)
                      .ok());
  }
  ~GraphFiles() {
    std::remove(text_path.c_str());
    std::remove(sgr_path.c_str());
  }
};

/// In-process WorkerLauncher: each incarnation is a thread running the
/// real worker loop over its half of a socketpair. KillWorker() shuts the
/// socket down — the loop exits exactly as it would on a process death,
/// and the coordinator sees the connection drop.
class ThreadLauncher : public WorkerLauncher {
 public:
  explicit ThreadLauncher(const std::string& graph_path)
      : pool_(SessionPoolOptions()) {
    SAPHYRA_CHECK(pool_.Register("g", graph_path).ok());
  }
  ~ThreadLauncher() override {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [index, inc] : incarnations_) StopLocked(inc.get());
  }

  Status Launch(uint32_t index, net::UniqueFd* conn) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = incarnations_.find(index);
    if (it != incarnations_.end()) {
      if (refuse_relaunch_) {
        return Status::Unavailable("relaunch refused (test launcher)");
      }
      StopLocked(it->second.get());
      incarnations_.erase(it);
    } else if (refuse_relaunch_) {
      return Status::Unavailable("relaunch refused (test launcher)");
    }
    net::UniqueFd coord_side;
    auto inc = std::make_unique<Incarnation>();
    Status st = net::SocketPair(&coord_side, &inc->fd);
    if (!st.ok()) return st;
    Incarnation* raw = inc.get();
    SessionPool* pool = &pool_;
    inc->thread = std::thread([raw, pool, index] {
      WorkerLoopOptions opts;
      opts.index = index;
      (void)RunWorkerLoop(raw->fd.get(), pool, opts);
      // However the loop ended (quit, peer close, injected crash), die
      // like a process would: the coordinator side must see EOF now.
      ::shutdown(raw->fd.get(), SHUT_RDWR);
    });
    // Consume the hello frame, as ProcessWorkerLauncher's rendezvous does.
    std::string hello;
    st = net::RecvFrame(coord_side.get(), &hello, Deadline::AfterMillis(5000));
    if (!st.ok()) {
      StopLocked(raw);
      return st;
    }
    ++launches_;
    incarnations_[index] = std::move(inc);
    *conn = std::move(coord_side);
    return Status::OK();
  }

  /// Simulate a worker crash: the loop's next recv/send fails and the
  /// thread exits, the coordinator's connection drops.
  void KillWorker(uint32_t index) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = incarnations_.find(index);
    if (it != incarnations_.end()) {
      ::shutdown(it->second->fd.get(), SHUT_RDWR);
    }
  }

  void set_refuse_relaunch(bool refuse) {
    std::lock_guard<std::mutex> lock(mu_);
    refuse_relaunch_ = refuse;
  }
  uint64_t launches() const {
    std::lock_guard<std::mutex> lock(mu_);
    return launches_;
  }

 private:
  struct Incarnation {
    net::UniqueFd fd;  ///< worker-side half; the thread borrows it
    std::thread thread;
  };
  void StopLocked(Incarnation* inc) {
    ::shutdown(inc->fd.get(), SHUT_RDWR);
    if (inc->thread.joinable()) inc->thread.join();
  }

  SessionPool pool_;
  mutable std::mutex mu_;
  std::map<uint32_t, std::unique_ptr<Incarnation>> incarnations_;
  bool refuse_relaunch_ = false;
  uint64_t launches_ = 0;
};

/// Every estimator family, including the weighted-loss ones (k-path,
/// closeness) whose deltas carry the fixed-point moment arrays.
std::vector<QueryRequest> ShardWorkload() {
  std::vector<QueryRequest> reqs;
  QueryRequest bc;
  bc.id = "bc";
  bc.estimator = EstimatorKind::kBc;
  bc.epsilon = 0.1;
  bc.seed = 7;
  bc.targets = {0, 3, 5, 9, 12, 17};
  reqs.push_back(bc);

  QueryRequest topk = bc;
  topk.id = "bc-topk";
  topk.top_k = 2;
  topk.targets = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  reqs.push_back(topk);

  QueryRequest kadabra;
  kadabra.id = "kadabra";
  kadabra.estimator = EstimatorKind::kKadabra;
  kadabra.epsilon = 0.15;
  kadabra.seed = 11;
  reqs.push_back(kadabra);

  QueryRequest abra;
  abra.id = "abra";
  abra.estimator = EstimatorKind::kAbra;
  abra.epsilon = 0.15;
  abra.seed = 13;
  reqs.push_back(abra);

  QueryRequest kpath;
  kpath.id = "kpath";
  kpath.estimator = EstimatorKind::kKPath;
  kpath.epsilon = 0.1;
  kpath.seed = 17;
  kpath.k = 4;
  kpath.targets = {0, 1, 2, 3, 4, 5, 6, 7};
  reqs.push_back(kpath);

  QueryRequest closeness;
  closeness.id = "closeness";
  closeness.estimator = EstimatorKind::kCloseness;
  closeness.epsilon = 0.1;
  closeness.seed = 19;
  closeness.targets = {0, 1, 2, 3, 4, 5, 6, 7};
  reqs.push_back(closeness);
  return reqs;
}

void ExpectBitwiseEqual(const QueryResult& a, const QueryResult& b,
                        const std::string& what) {
  ASSERT_TRUE(a.status.ok()) << what << ": " << a.status.ToString();
  ASSERT_TRUE(b.status.ok()) << what << ": " << b.status.ToString();
  EXPECT_FALSE(b.degraded) << what;
  ASSERT_EQ(a.nodes, b.nodes) << what;
  ASSERT_EQ(a.estimates.size(), b.estimates.size()) << what;
  EXPECT_EQ(std::memcmp(a.estimates.data(), b.estimates.data(),
                        a.estimates.size() * sizeof(double)),
            0)
      << what << ": estimates differ bitwise";
  EXPECT_EQ(a.samples_used, b.samples_used) << what;
}

class ShardTest : public ::testing::Test {
 protected:
  ShardTest() : files_(RandomConnectedGraph(60, 0.06, 33)) {
    SAPHYRA_CHECK(
        QuerySession::Open(files_.sgr_path, SessionOptions(), &session_).ok());
  }

  /// The non-sharded reference bytes, computed once per fixture.
  const std::vector<QueryResult>& Baseline() {
    if (baseline_.empty()) {
      SchedulerOptions opts;
      opts.memo_capacity = 0;
      BatchScheduler local(session_.get(), opts);
      baseline_ = local.RunBatch(ShardWorkload());
    }
    return baseline_;
  }

  /// Test-speed shard options: no heartbeat thread, fast backoff.
  static ShardOptions FastOptions(uint32_t workers, uint32_t retry_budget = 2) {
    ShardOptions sopts;
    sopts.num_workers = workers;
    sopts.retry_budget = retry_budget;
    sopts.heartbeat_ms = 0;
    sopts.backoff_initial_ms = 1;
    sopts.backoff_max_ms = 20;
    return sopts;
  }

  GraphFiles files_;
  std::unique_ptr<QuerySession> session_;
  std::vector<QueryResult> baseline_;
};

TEST_F(ShardTest, ShardedMatchesLocalBitwise) {
  const std::vector<QueryRequest> workload = ShardWorkload();
  const std::vector<QueryResult>& baseline = Baseline();

  for (uint32_t workers : {1u, 2u, 4u}) {
    ThreadLauncher launcher(files_.sgr_path);
    WorkerSupervisor supervisor(&launcher, FastOptions(workers));
    ASSERT_TRUE(supervisor.Start().ok());
    for (uint32_t concurrency : {1u, 2u, 8u}) {
      SchedulerOptions opts;
      opts.max_concurrent = concurrency;
      opts.memo_capacity = 0;
      opts.supervisor = &supervisor;
      BatchScheduler scheduler(session_.get(), opts);
      const std::vector<QueryResult> results = scheduler.RunBatch(workload);
      ASSERT_EQ(results.size(), baseline.size());
      for (size_t i = 0; i < results.size(); ++i) {
        ExpectBitwiseEqual(baseline[i], results[i],
                           "workers=" + std::to_string(workers) +
                               " concurrency=" + std::to_string(concurrency) +
                               " query " + workload[i].id);
      }
    }
    // Every wave went through the tier, none failed.
    uint64_t waves = 0;
    for (const ShardWorkerStats& w : supervisor.stats()) waves += w.waves;
    EXPECT_GT(waves, 0u) << "workers=" << workers;
    supervisor.Shutdown();
  }
}

TEST_F(ShardTest, WorkerStateCacheInvalidatedByUpdate) {
  // The workers key their per-query progressive-sampling state on
  // (graph, fingerprint, canonical query). Repeating a query must reuse
  // that state invisibly; a graph mutation must retire it, never blending
  // pre-update wave state into post-update answers.
  ThreadLauncher launcher(files_.sgr_path);
  WorkerSupervisor supervisor(&launcher, FastOptions(2));
  ASSERT_TRUE(supervisor.Start().ok());
  SchedulerOptions opts;
  opts.memo_capacity = 0;  // every repeat re-enters the wave path
  opts.allow_updates = true;
  opts.supervisor = &supervisor;
  BatchScheduler scheduler(session_.get(), opts);

  const QueryRequest query = ShardWorkload()[0];  // bc
  const QueryResult r1 = scheduler.Run(query);
  const QueryResult r2 = scheduler.Run(query);  // hits worker state cache
  ExpectBitwiseEqual(r1, r2, "pre-update repeat");

  // An insert absent from the base graph; the scheduler broadcasts it to
  // both workers before answering.
  const Graph& g = session_->graph();
  NodeId au = 0, av = 0;
  for (NodeId u = 0; u < g.num_nodes() && av == 0; ++u) {
    for (NodeId v = u + 1; v < g.num_nodes(); ++v) {
      const auto nbrs = g.neighbors(u);
      if (!std::binary_search(nbrs.begin(), nbrs.end(), v)) {
        au = u;
        av = v;
        break;
      }
    }
  }
  QueryRequest mut;
  mut.op = RequestOp::kUpdate;
  mut.action = EdgeMutationKind::kInsert;
  mut.edge_u = au;
  mut.edge_v = av;
  const QueryResult applied = scheduler.Run(mut);
  ASSERT_TRUE(applied.status.ok()) << applied.status.ToString();
  ASSERT_EQ(applied.epoch, 1u);

  // The reference: the same mutation applied to a cold local session.
  std::unique_ptr<QuerySession> oracle_session;
  ASSERT_TRUE(QuerySession::Open(files_.sgr_path, SessionOptions(),
                                 &oracle_session)
                  .ok());
  ASSERT_TRUE(
      oracle_session->ApplyUpdate({EdgeMutationKind::kInsert, au, av}).ok());
  SchedulerOptions oracle_opts;
  oracle_opts.memo_capacity = 0;
  BatchScheduler oracle(oracle_session.get(), oracle_opts);
  const QueryResult expected = oracle.Run(query);

  const QueryResult r3 = scheduler.Run(query);
  ExpectBitwiseEqual(expected, r3, "post-update recompute");
  const QueryResult r4 = scheduler.Run(query);  // post-update cached state
  ExpectBitwiseEqual(expected, r4, "post-update repeat");
  supervisor.Shutdown();
}

TEST_F(ShardTest, WorkerKilledBetweenQueriesRecoversBitwise) {
  const std::vector<QueryRequest> workload = ShardWorkload();
  const std::vector<QueryResult>& baseline = Baseline();

  ThreadLauncher launcher(files_.sgr_path);
  WorkerSupervisor supervisor(&launcher, FastOptions(2));
  ASSERT_TRUE(supervisor.Start().ok());
  SchedulerOptions opts;
  opts.memo_capacity = 0;
  opts.supervisor = &supervisor;
  BatchScheduler scheduler(session_.get(), opts);

  // Kill worker 0 cold: the next wave's RPC to it fails, its stripes are
  // reassigned to worker 1, and it restarts under backoff — all invisible
  // in the result bytes.
  launcher.KillWorker(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  const std::vector<QueryResult> results = scheduler.RunBatch(workload);
  for (size_t i = 0; i < results.size(); ++i) {
    ExpectBitwiseEqual(baseline[i], results[i],
                       "post-kill query " + workload[i].id);
  }

  uint64_t retries = 0, reassigned = 0, restarts = 0;
  for (const ShardWorkerStats& w : supervisor.stats()) {
    retries += w.retries;
    reassigned += w.stripes_reassigned;
    restarts += w.restarts;
  }
  EXPECT_GE(retries, 1u);
  EXPECT_GE(reassigned, 1u);
  EXPECT_GE(restarts, 1u);
  EXPECT_GE(launcher.launches(), 3u);  // 2 initial + >=1 relaunch
  supervisor.Shutdown();
}

TEST_F(ShardTest, HeartbeatDetectsDeadWorkerAndQueriesStillMatch) {
  const std::vector<QueryRequest> workload = ShardWorkload();
  const std::vector<QueryResult>& baseline = Baseline();

  ThreadLauncher launcher(files_.sgr_path);
  ShardOptions sopts = FastOptions(2);
  sopts.heartbeat_ms = 20;
  WorkerSupervisor supervisor(&launcher, sopts);
  ASSERT_TRUE(supervisor.Start().ok());

  launcher.KillWorker(1);
  // Let the heartbeat discover the corpse while the tier is idle.
  for (int i = 0; i < 100; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    uint64_t misses = 0;
    for (const ShardWorkerStats& w : supervisor.stats()) {
      misses += w.heartbeat_misses;
    }
    if (misses > 0) break;
  }
  uint64_t misses = 0;
  for (const ShardWorkerStats& w : supervisor.stats()) {
    misses += w.heartbeat_misses;
  }
  EXPECT_GE(misses, 1u);

  SchedulerOptions opts;
  opts.memo_capacity = 0;
  opts.supervisor = &supervisor;
  BatchScheduler scheduler(session_.get(), opts);
  const std::vector<QueryResult> results = scheduler.RunBatch(workload);
  for (size_t i = 0; i < results.size(); ++i) {
    ExpectBitwiseEqual(baseline[i], results[i],
                       "post-heartbeat query " + workload[i].id);
  }
  supervisor.Shutdown();
}

TEST_F(ShardTest, RetryBudgetExhaustionDegradesInsteadOfErroring) {
  ThreadLauncher launcher(files_.sgr_path);
  WorkerSupervisor supervisor(&launcher, FastOptions(2, /*retry_budget=*/1));
  ASSERT_TRUE(supervisor.Start().ok());

  // Lose the whole tier, permanently: every wave round fails until the
  // budget runs out.
  launcher.set_refuse_relaunch(true);
  launcher.KillWorker(0);
  launcher.KillWorker(1);

  SchedulerOptions opts;
  opts.supervisor = &supervisor;
  BatchScheduler scheduler(session_.get(), opts);
  QueryRequest req = ShardWorkload()[3];  // abra: single progressive run
  const QueryResult res = scheduler.Run(req);

  // A lost tier is a degraded answer, not an error.
  ASSERT_TRUE(res.status.ok()) << res.status.ToString();
  EXPECT_TRUE(res.degraded);
  EXPECT_EQ(res.degrade_reason, StatusCode::kUnavailable);
  EXPECT_EQ(res.mode, ServeMode::kComputed);
  const std::string line = SerializeQueryResult(res);
  EXPECT_NE(line.find("\"degraded\":true"), std::string::npos) << line;
  EXPECT_NE(line.find("\"degrade_reason\":\"shard_lost\""), std::string::npos)
      << line;

  // Degraded results are never memoized: the identical request computes
  // again (and degrades again — the tier is still gone).
  const QueryResult again = scheduler.Run(req);
  ASSERT_TRUE(again.status.ok()) << again.status.ToString();
  EXPECT_TRUE(again.degraded);
  EXPECT_EQ(again.mode, ServeMode::kComputed);
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.computed, 2u);
  EXPECT_EQ(stats.memo_hits, 0u);
  EXPECT_EQ(stats.degraded, 2u);
  EXPECT_EQ(stats.errors, 0u);
  supervisor.Shutdown();
}

#ifdef SAPHYRA_FAILPOINTS
TEST_F(ShardTest, MidWaveCrashReplaysStripesBitwise) {
  const std::vector<QueryRequest> workload = ShardWorkload();
  const std::vector<QueryResult>& baseline = Baseline();

  ThreadLauncher launcher(files_.sgr_path);
  WorkerSupervisor supervisor(&launcher, FastOptions(2));
  ASSERT_TRUE(supervisor.Start().ok());

  // The first wave RPC that reaches a worker dies mid-wave: the loop
  // exits without replying — after the worker half-consumed its stripes'
  // RNG streams. The survivor (and the restarted worker, which rebuilds
  // from the seed) must replay those stripes to the same bits.
  ASSERT_TRUE(fail::Inject("worker.wave", "1*throw(mid-wave crash)"));

  SchedulerOptions opts;
  opts.memo_capacity = 0;
  opts.supervisor = &supervisor;
  BatchScheduler scheduler(session_.get(), opts);
  const std::vector<QueryResult> results = scheduler.RunBatch(workload);
  for (size_t i = 0; i < results.size(); ++i) {
    ExpectBitwiseEqual(baseline[i], results[i],
                       "mid-wave-crash query " + workload[i].id);
  }

  uint64_t retries = 0, reassigned = 0;
  for (const ShardWorkerStats& w : supervisor.stats()) {
    retries += w.retries;
    reassigned += w.stripes_reassigned;
  }
  EXPECT_GE(retries, 1u);
  EXPECT_GE(reassigned, 1u);
  fail::ClearAll();
  supervisor.Shutdown();
}
#endif  // SAPHYRA_FAILPOINTS

}  // namespace
}  // namespace saphyra
