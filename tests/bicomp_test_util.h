#ifndef SAPHYRA_TESTS_BICOMP_TEST_UTIL_H_
#define SAPHYRA_TESTS_BICOMP_TEST_UTIL_H_

// Shared canonicalizer for biconnected decompositions, used by
// biconnected_test.cc and bicomp_differential_test.cc to run the serial,
// bounded, and parallel passes over one table of expectations.

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "bicomp/biconnected.h"
#include "graph/graph.h"
#include "util/logging.h"

namespace saphyra {
namespace testing {

/// Algorithm-independent view of a decomposition: the articulation-point
/// set plus the edge partition with every incidental ordering removed.
/// Two decompositions of the same graph are equivalent iff their canonical
/// forms compare equal, whatever labeling scheme produced them.
struct CanonicalBcc {
  using Edge = std::pair<NodeId, NodeId>;  // u < v

  std::vector<NodeId> cutpoints;                // sorted
  std::vector<std::vector<Edge>> components;    // sorted edges, sorted lists

  bool operator==(const CanonicalBcc&) const = default;
};

inline CanonicalBcc Canonicalize(const Graph& g,
                                 const BiconnectedComponents& bcc) {
  CanonicalBcc out;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (bcc.is_cutpoint[v]) out.cutpoints.push_back(v);
  }
  std::vector<std::vector<CanonicalBcc::Edge>> by_label(bcc.num_components);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EdgeIndex base = g.offset(u);
    auto nbr = g.neighbors(u);
    for (size_t i = 0; i < nbr.size(); ++i) {
      NodeId v = nbr[i];
      if (v < u) continue;  // one direction per undirected edge
      uint32_t c = bcc.arc_component[base + i];
      SAPHYRA_CHECK(c < bcc.num_components);
      by_label[c].push_back({u, v});
    }
  }
  for (auto& edges : by_label) {
    SAPHYRA_CHECK(!edges.empty());  // every component owns at least one edge
    std::sort(edges.begin(), edges.end());
  }
  std::sort(by_label.begin(), by_label.end());
  out.components = std::move(by_label);
  return out;
}

/// The three production variants of the decomposition. The bounded variant
/// runs with an effectively-unlimited cap; its depth-guard behavior has its
/// own tests.
enum class BccVariant { kSerial, kBounded, kParallel2, kParallel8 };

inline const char* BccVariantName(BccVariant v) {
  switch (v) {
    case BccVariant::kSerial: return "serial";
    case BccVariant::kBounded: return "bounded";
    case BccVariant::kParallel2: return "parallel2";
    case BccVariant::kParallel8: return "parallel8";
  }
  return "?";
}

inline BiconnectedComponents ComputeBccVariant(const Graph& g, BccVariant v) {
  switch (v) {
    case BccVariant::kSerial:
      return ComputeBiconnectedComponents(g);
    case BccVariant::kBounded: {
      BiconnectedComponents out;
      Status st = ComputeBiconnectedComponentsBounded(g, 0, &out);
      SAPHYRA_CHECK_MSG(st.ok(), st.ToString().c_str());
      return out;
    }
    case BccVariant::kParallel2:
      return ComputeBiconnectedComponentsParallel(g, 2);
    case BccVariant::kParallel8:
      return ComputeBiconnectedComponentsParallel(g, 8);
  }
  SAPHYRA_CHECK(false);
  return {};
}

inline const std::vector<BccVariant>& AllBccVariants() {
  static const std::vector<BccVariant> kAll = {
      BccVariant::kSerial, BccVariant::kBounded, BccVariant::kParallel2,
      BccVariant::kParallel8};
  return kAll;
}

/// Every field equal — the bitwise contract behind `.sgr` invariance, not
/// just equivalence up to relabeling.
inline void ExpectBccBitwiseEqual(const BiconnectedComponents& a,
                                  const BiconnectedComponents& b,
                                  const std::string& what) {
  EXPECT_EQ(a.num_components, b.num_components) << what;
  EXPECT_EQ(a.arc_component, b.arc_component) << what;
  EXPECT_EQ(a.is_cutpoint, b.is_cutpoint) << what;
  EXPECT_EQ(a.component_nodes, b.component_nodes) << what;
  EXPECT_EQ(a.node_component, b.node_component) << what;
  EXPECT_EQ(a.rev_arc, b.rev_arc) << what;
  EXPECT_EQ(a.cutpoint_comp_count_, b.cutpoint_comp_count_) << what;
}

}  // namespace testing
}  // namespace saphyra

#endif  // SAPHYRA_TESTS_BICOMP_TEST_UTIL_H_
