#include "stats/vc.h"

#include <cmath>

#include <gtest/gtest.h>

namespace saphyra {
namespace {

TEST(VcSampleBound, MatchesLemma4Formula) {
  // N = c/eps^2 (VC + ln 1/delta).
  double eps = 0.1, delta = 0.01, vc = 3.0;
  uint64_t expected = static_cast<uint64_t>(
      std::ceil(0.5 / (eps * eps) * (vc + std::log(1.0 / delta))));
  EXPECT_EQ(VcSampleBound(eps, delta, vc), expected);
}

TEST(VcSampleBound, ScalesInverseQuadratically) {
  uint64_t coarse = VcSampleBound(0.1, 0.01, 2.0);
  uint64_t fine = VcSampleBound(0.01, 0.01, 2.0);
  EXPECT_NEAR(static_cast<double>(fine) / static_cast<double>(coarse), 100.0,
              1.0);
}

TEST(VcSampleBound, GrowsWithVcDimension) {
  EXPECT_LT(VcSampleBound(0.05, 0.01, 1.0), VcSampleBound(0.05, 0.01, 10.0));
}

TEST(VcSampleBound, GrowsAsDeltaShrinks) {
  EXPECT_LT(VcSampleBound(0.05, 0.1, 2.0), VcSampleBound(0.05, 0.001, 2.0));
}

TEST(VcSampleBound, CustomConstant) {
  EXPECT_EQ(VcSampleBound(0.1, 0.01, 0.0, 1.0),
            static_cast<uint64_t>(std::ceil(100.0 * std::log(100.0))));
}

TEST(PiMaxVcBound, Lemma5Values) {
  EXPECT_DOUBLE_EQ(PiMaxVcBound(0), 1.0);
  EXPECT_DOUBLE_EQ(PiMaxVcBound(1), 1.0);
  EXPECT_DOUBLE_EQ(PiMaxVcBound(2), 2.0);
  EXPECT_DOUBLE_EQ(PiMaxVcBound(3), 2.0);
  EXPECT_DOUBLE_EQ(PiMaxVcBound(4), 3.0);
  EXPECT_DOUBLE_EQ(PiMaxVcBound(7), 3.0);
  EXPECT_DOUBLE_EQ(PiMaxVcBound(8), 4.0);
  EXPECT_DOUBLE_EQ(PiMaxVcBound(1024), 11.0);
}

TEST(PiMaxVcBound, MonotoneNonDecreasing) {
  double prev = PiMaxVcBound(1);
  for (uint64_t p = 2; p < 100; ++p) {
    double cur = PiMaxVcBound(p);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

}  // namespace
}  // namespace saphyra
