// Determinism regression for the direction-optimizing traversal: the full
// saphyra_rank estimation paths (SaPHyRa_bc, KADABRA, harmonic closeness)
// must produce bitwise-identical estimates with the hybrid kernel forced
// on vs. off, for fixed seeds, across thread counts. This is the
// end-to-end guarantee behind the `--strategy` flag's "execution choice
// only" contract.

#include <vector>

#include <gtest/gtest.h>

#include "baselines/kadabra.h"
#include "bc/saphyra_bc.h"
#include "closeness/closeness.h"
#include "graph/generators.h"
#include "test_util.h"

namespace saphyra {
namespace {

using testing::RandomConnectedGraph;

const TraversalPolicy kPolicies[] = {
    TraversalPolicy::kTopDown,
    TraversalPolicy::kHybrid,
    TraversalPolicy::kAuto,
};

const uint32_t kThreadCounts[] = {1, 2, 8};

TEST(TraversalDeterminism, SaphyraBcBitwiseAcrossPolicyAndThreads) {
  // Social profile with a dense core so the hybrid kernel genuinely pulls.
  Graph g = BarabasiAlbert(300, 4, 17);
  IspIndex isp(g);
  const std::vector<NodeId> targets = {1, 5, 17, 42, 99, 123, 250};
  std::vector<double> reference;
  for (TraversalPolicy policy : kPolicies) {
    for (uint32_t threads : kThreadCounts) {
      SaphyraBcOptions opts;
      opts.epsilon = 0.04;
      opts.seed = 11;
      opts.num_threads = threads;
      opts.traversal = policy;
      SaphyraBcResult res = RunSaphyraBc(isp, targets, opts);
      if (reference.empty()) {
        reference = res.bc;
      } else {
        EXPECT_EQ(res.bc, reference)
            << "policy=" << TraversalPolicyName(policy)
            << " threads=" << threads;
      }
    }
  }
}

TEST(TraversalDeterminism, KadabraBitwiseAcrossPolicyAndThreads) {
  Graph g = BarabasiAlbert(250, 5, 23);
  std::vector<double> reference;
  uint64_t reference_samples = 0;
  for (TraversalPolicy policy : kPolicies) {
    for (uint32_t threads : kThreadCounts) {
      KadabraOptions opts;
      opts.epsilon = 0.05;
      opts.seed = 29;
      opts.num_threads = threads;
      opts.traversal = policy;
      KadabraResult res = RunKadabra(g, opts);
      if (reference.empty()) {
        reference = res.bc;
        reference_samples = res.samples_used;
      } else {
        EXPECT_EQ(res.bc, reference)
            << "policy=" << TraversalPolicyName(policy)
            << " threads=" << threads;
        EXPECT_EQ(res.samples_used, reference_samples);
      }
    }
  }
}

TEST(TraversalDeterminism, KadabraUnidirectionalStrategyToo) {
  // The unidirectional ablation floods whole levels — the regime where the
  // pull fires most — and must stay bitwise stable as well.
  Graph g = BarabasiAlbert(200, 6, 31);
  std::vector<double> reference;
  for (TraversalPolicy policy : kPolicies) {
    KadabraOptions opts;
    opts.epsilon = 0.08;
    opts.seed = 37;
    opts.strategy = SamplingStrategy::kUnidirectional;
    opts.traversal = policy;
    KadabraResult res = RunKadabra(g, opts);
    if (reference.empty()) {
      reference = res.bc;
    } else {
      EXPECT_EQ(res.bc, reference)
          << "policy=" << TraversalPolicyName(policy);
    }
  }
}

TEST(TraversalDeterminism, HarmonicClosenessBitwiseAcrossPolicy) {
  Graph g = RandomConnectedGraph(180, 0.06, 41);
  std::vector<NodeId> targets;
  for (NodeId v = 0; v < g.num_nodes(); v += 9) targets.push_back(v);
  std::vector<double> reference;
  for (TraversalPolicy policy : kPolicies) {
    for (uint32_t threads : kThreadCounts) {
      SaphyraOptions opts;
      opts.epsilon = 0.05;
      opts.seed = 43;
      opts.num_threads = threads;
      opts.traversal = policy;
      std::vector<double> hc = EstimateHarmonicCloseness(g, targets, opts);
      if (reference.empty()) {
        reference = hc;
      } else {
        EXPECT_EQ(hc, reference)
            << "policy=" << TraversalPolicyName(policy)
            << " threads=" << threads;
      }
    }
  }
}

TEST(TraversalDeterminism, RoadLikeGraphSaphyraBc) {
  // Grid-with-bridges profile: the tail of each component-restricted BFS is
  // where the road-like pull fires; estimates must not move.
  Graph g = RoadGrid(18, 15, 0.8, 47).graph;
  IspIndex isp(g);
  std::vector<NodeId> targets;
  for (NodeId v = 0; v < g.num_nodes(); v += 7) targets.push_back(v);
  std::vector<double> reference;
  for (TraversalPolicy policy : kPolicies) {
    SaphyraBcOptions opts;
    opts.epsilon = 0.05;
    opts.seed = 53;
    opts.num_threads = 2;
    opts.traversal = policy;
    SaphyraBcResult res = RunSaphyraBc(isp, targets, opts);
    if (reference.empty()) {
      reference = res.bc;
    } else {
      EXPECT_EQ(res.bc, reference)
          << "policy=" << TraversalPolicyName(policy);
    }
  }
}

}  // namespace
}  // namespace saphyra
