#include "bc/saphyra_bc.h"

#include <cmath>

#include <gtest/gtest.h>

#include "bc/brandes.h"
#include "graph/generators.h"
#include "metrics/rank.h"
#include "test_util.h"

namespace saphyra {
namespace {

using testing::MakeGraph;
using testing::PaperFig2Graph;
using testing::RandomConnectedGraph;

std::vector<NodeId> AllNodes(const Graph& g) {
  std::vector<NodeId> all(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) all[v] = v;
  return all;
}

std::vector<NodeId> RandomSubset(const Graph& g, size_t k, uint64_t seed) {
  Rng rng(seed);
  std::vector<NodeId> all = AllNodes(g);
  for (size_t i = 0; i < k && i < all.size(); ++i) {
    size_t j = i + rng.UniformInt(all.size() - i);
    std::swap(all[i], all[j]);
  }
  all.resize(std::min(k, all.size()));
  return all;
}

TEST(SaphyraBc, PaperFig2AllNodesWithinEpsilon) {
  Graph g = PaperFig2Graph();
  IspIndex isp(g);
  std::vector<double> truth = BrandesBetweenness(g);
  SaphyraBcOptions opts;
  opts.epsilon = 0.03;
  opts.delta = 0.01;
  opts.seed = 3;
  SaphyraBcResult res = RunSaphyraBcFull(isp, opts);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(res.bc[v], truth[v], opts.epsilon) << "node " << v;
  }
  EXPECT_GT(res.gamma, 0.0);
  EXPECT_NEAR(res.eta, 1.0, 1e-12);
}

TEST(SaphyraBc, CutpointCentralityIsExactOnTrees) {
  // On a tree all centrality is break-point mass: no sampling error at all.
  Graph g = RandomTree(40, 11);
  IspIndex isp(g);
  std::vector<double> truth = BrandesBetweenness(g);
  SaphyraBcOptions opts;
  opts.epsilon = 0.1;
  SaphyraBcResult res = RunSaphyraBcFull(isp, opts);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(res.bc[v], truth[v], 1e-10) << "node " << v;
  }
}

class SaphyraBcGraphSweep
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {
 protected:
  Graph MakeSweepGraph() {
    auto [kind, seed] = GetParam();
    switch (kind) {
      case 0:
        return RandomConnectedGraph(40, 0.08, seed);
      case 1:
        return BarabasiAlbert(60, 2, seed);
      case 2:
        return RoadGrid(9, 8, 0.85, seed).graph;
      default:
        return WattsStrogatz(50, 4, 0.2, seed);
    }
  }
};

TEST_P(SaphyraBcGraphSweep, SubsetEstimatesWithinEpsilon) {
  Graph g = MakeSweepGraph();
  IspIndex isp(g);
  std::vector<double> truth = BrandesBetweenness(g);
  auto [kind, seed] = GetParam();
  std::vector<NodeId> targets = RandomSubset(g, 12, seed + 5);
  SaphyraBcOptions opts;
  opts.epsilon = 0.04;
  opts.delta = 0.05;
  opts.seed = seed;
  SaphyraBcResult res = RunSaphyraBc(isp, targets, opts);
  for (size_t i = 0; i < targets.size(); ++i) {
    EXPECT_NEAR(res.bc[i], truth[targets[i]], opts.epsilon)
        << "target " << targets[i] << " kind " << kind;
  }
}

TEST_P(SaphyraBcGraphSweep, NoFalseZeros) {
  Graph g = MakeSweepGraph();
  IspIndex isp(g);
  std::vector<double> truth = BrandesBetweenness(g);
  SaphyraBcOptions opts;
  opts.epsilon = 0.05;
  opts.seed = 99;
  SaphyraBcResult res = RunSaphyraBcFull(isp, opts);
  ZeroStats zeros = ClassifyZeros(truth, res.bc);
  EXPECT_EQ(zeros.false_zeros, 0u);  // Lemma 19
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, SaphyraBcGraphSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values<uint64_t>(1, 2, 3)));

TEST(SaphyraBc, DeterministicForSeed) {
  Graph g = BarabasiAlbert(80, 2, 21);
  IspIndex isp(g);
  std::vector<NodeId> targets = RandomSubset(g, 10, 4);
  SaphyraBcOptions opts;
  opts.epsilon = 0.05;
  opts.seed = 77;
  SaphyraBcResult a = RunSaphyraBc(isp, targets, opts);
  SaphyraBcResult b = RunSaphyraBc(isp, targets, opts);
  EXPECT_EQ(a.samples_used, b.samples_used);
  for (size_t i = 0; i < targets.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.bc[i], b.bc[i]);
  }
}

TEST(SaphyraBc, RankCorrelationNearOneOnModerateGraph) {
  Graph g = BarabasiAlbert(150, 3, 31);
  IspIndex isp(g);
  std::vector<double> truth = BrandesBetweenness(g);
  std::vector<NodeId> targets = RandomSubset(g, 30, 8);
  SaphyraBcOptions opts;
  opts.epsilon = 0.02;
  opts.seed = 13;
  SaphyraBcResult res = RunSaphyraBc(isp, targets, opts);
  std::vector<double> t_sub(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) t_sub[i] = truth[targets[i]];
  EXPECT_GT(SpearmanCorrelation(t_sub, res.bc), 0.8);
}

TEST(SaphyraBc, AblationWithoutExactSubspaceStillAccurate) {
  Graph g = RandomConnectedGraph(50, 0.08, 41);
  IspIndex isp(g);
  std::vector<double> truth = BrandesBetweenness(g);
  std::vector<NodeId> targets = RandomSubset(g, 15, 2);
  SaphyraBcOptions opts;
  opts.epsilon = 0.04;
  opts.use_exact_subspace = false;
  opts.seed = 5;
  SaphyraBcResult res = RunSaphyraBc(isp, targets, opts);
  EXPECT_DOUBLE_EQ(res.lambda_hat, 0.0);
  for (size_t i = 0; i < targets.size(); ++i) {
    EXPECT_NEAR(res.bc[i], truth[targets[i]], opts.epsilon);
  }
}

TEST(SaphyraBc, UnidirectionalStrategyAgrees) {
  Graph g = RandomConnectedGraph(40, 0.1, 51);
  IspIndex isp(g);
  std::vector<double> truth = BrandesBetweenness(g);
  std::vector<NodeId> targets = RandomSubset(g, 10, 3);
  SaphyraBcOptions opts;
  opts.epsilon = 0.05;
  opts.strategy = SamplingStrategy::kUnidirectional;
  opts.seed = 6;
  SaphyraBcResult res = RunSaphyraBc(isp, targets, opts);
  for (size_t i = 0; i < targets.size(); ++i) {
    EXPECT_NEAR(res.bc[i], truth[targets[i]], opts.epsilon);
  }
}

TEST(SaphyraBc, PersonalizationShrinksEta) {
  // Targets inside one small component of a road-like graph: eta < 1 and
  // fewer samples than the full run at equal epsilon.
  RoadNetwork road = RoadGrid(16, 16, 0.8, 61);
  IspIndex isp(road.graph);
  auto targets = NodesInRectangle(road, 0, 0, 4, 4);
  ASSERT_GE(targets.size(), 3u);
  SaphyraBcOptions opts;
  opts.epsilon = 0.02;
  opts.seed = 9;
  SaphyraBcResult sub = RunSaphyraBc(isp, targets, opts);
  SaphyraBcResult full = RunSaphyraBcFull(isp, opts);
  EXPECT_LT(sub.eta, 1.0);
  EXPECT_LE(sub.max_samples, full.max_samples);
}

TEST(SaphyraBc, SingleTargetNode) {
  Graph g = BarabasiAlbert(60, 2, 71);
  IspIndex isp(g);
  std::vector<double> truth = BrandesBetweenness(g);
  SaphyraBcOptions opts;
  opts.epsilon = 0.05;
  SaphyraBcResult res = RunSaphyraBc(isp, {7}, opts);
  ASSERT_EQ(res.bc.size(), 1u);
  EXPECT_NEAR(res.bc[0], truth[7], opts.epsilon);
}

TEST(SaphyraBc, LeafTargetsOnTreeLikeGraph) {
  // Targets that are leaves: zero bc, and the algorithm must report ~0.
  Graph g = MakeGraph(7, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {2, 5}, {2, 6}});
  IspIndex isp(g);
  SaphyraBcOptions opts;
  opts.epsilon = 0.05;
  SaphyraBcResult res = RunSaphyraBc(isp, {0, 4, 5}, opts);
  for (double x : res.bc) EXPECT_NEAR(x, 0.0, 1e-10);
}

TEST(SaphyraBc, VcBoundSmallerForLocalizedSubsets) {
  RoadNetwork road = RoadGrid(20, 20, 0.9, 81);
  IspIndex isp(road.graph);
  auto local = NodesInRectangle(road, 0, 0, 3, 3);
  ASSERT_GE(local.size(), 2u);
  SaphyraBcOptions opts;
  SaphyraBcResult res_local = RunSaphyraBc(isp, local, opts);
  SaphyraBcResult res_full = RunSaphyraBcFull(isp, opts);
  EXPECT_LE(res_local.vc_bound, res_full.vc_bound);
}

TEST(SaphyraBc, ReportsDiagnostics) {
  Graph g = BarabasiAlbert(100, 2, 91);
  IspIndex isp(g);
  SaphyraBcOptions opts;
  opts.epsilon = 0.05;
  SaphyraBcResult res = RunSaphyraBc(isp, RandomSubset(g, 10, 1), opts);
  EXPECT_GT(res.total_seconds, 0.0);
  EXPECT_GT(res.samples_used, 0u);
  EXPECT_GE(res.max_samples, res.samples_used);
  EXPECT_GT(res.vc_bound, 0.0);
  EXPECT_GE(res.lambda_hat, 0.0);
  EXPECT_LT(res.lambda_hat, 1.0);
}

// Statistical guarantee: violations of the (eps, delta) bound must be rare.
TEST(SaphyraBc, EpsilonDeltaGuaranteeAcrossSeeds) {
  Graph g = RandomConnectedGraph(30, 0.1, 123);
  IspIndex isp(g);
  std::vector<double> truth = BrandesBetweenness(g);
  const double eps = 0.05;
  int violations = 0;
  const int trials = 25;
  for (int t = 0; t < trials; ++t) {
    SaphyraBcOptions opts;
    opts.epsilon = eps;
    opts.delta = 0.1;
    opts.seed = 9000 + t;
    std::vector<NodeId> targets = RandomSubset(g, 10, t);
    SaphyraBcResult res = RunSaphyraBc(isp, targets, opts);
    for (size_t i = 0; i < targets.size(); ++i) {
      if (std::abs(res.bc[i] - truth[targets[i]]) >= eps) {
        ++violations;
        break;
      }
    }
  }
  EXPECT_LE(violations, 3);
}

}  // namespace
}  // namespace saphyra
