// Tests of the FrontierSet dual representation: sparse list behavior,
// dense bitmap marking across word boundaries, the O(1) epoch reset, and
// the sparse⇄dense transitions a direction-optimizing BFS performs.

#include "graph/frontier.h"

#include <vector>

#include <gtest/gtest.h>

namespace saphyra {
namespace {

TEST(FrontierSet, SparsePushAndClear) {
  FrontierSet f(100);
  EXPECT_TRUE(f.empty());
  f.Push(3);
  f.Push(99);
  EXPECT_EQ(f.size(), 2u);
  ASSERT_EQ(f.vertices().size(), 2u);
  EXPECT_EQ(f.vertices()[0], 3u);
  EXPECT_EQ(f.vertices()[1], 99u);
  f.Clear();
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.vertices().size(), 0u);
}

TEST(FrontierSet, SlackSlotForBranchlessPush) {
  // The branchless expansion stores its candidate unconditionally at
  // data()[size] before deciding whether to keep it: the slot one past the
  // domain size must be writable.
  FrontierSet f(4);
  uint32_t* raw = f.data();
  for (uint32_t v = 0; v < 4; ++v) raw[v] = v;
  f.set_size(4);
  raw[4] = 7;  // the slack slot
  EXPECT_EQ(f.size(), 4u);
}

TEST(FrontierSet, BitmapMarkTestAcrossWordBoundaries) {
  FrontierSet f(256);
  const std::vector<uint32_t> probes = {0, 1, 63, 64, 65, 127, 128, 191, 255};
  f.BeginEpoch();
  for (uint32_t v : probes) f.Mark(v);
  for (uint32_t v : probes) EXPECT_TRUE(f.Test(v)) << v;
  // Unmarked neighbors of marked bits, including same-word ones.
  for (uint32_t v : {2u, 62u, 66u, 126u, 129u, 254u}) {
    EXPECT_FALSE(f.Test(v)) << v;
  }
}

TEST(FrontierSet, BitmapExactlyAtWordEdgeDomain) {
  // Domain sizes at and around multiples of 64 must round their word count
  // up, never down.
  for (uint32_t n : {63u, 64u, 65u}) {
    FrontierSet f(n);
    f.BeginEpoch();
    f.Mark(n - 1);
    EXPECT_TRUE(f.Test(n - 1)) << "domain " << n;
  }
}

TEST(FrontierSet, EpochResetInvalidatesAllBitsInO1) {
  FrontierSet f(512);
  f.BeginEpoch();
  for (uint32_t v = 0; v < 512; v += 3) f.Mark(v);
  f.BeginEpoch();  // O(1): no word is rewritten
  for (uint32_t v = 0; v < 512; ++v) EXPECT_FALSE(f.Test(v)) << v;
  // Remarking after the reset works and does not resurrect stale bits of
  // the same word.
  f.Mark(6);
  EXPECT_TRUE(f.Test(6));
  // 3 and 9 share word 0 with 6 and were marked in the stale epoch: the
  // lazy word zeroing on Mark(6) must have wiped them.
  EXPECT_FALSE(f.Test(3));
  EXPECT_FALSE(f.Test(9));
}

TEST(FrontierSet, MarkSparseTransfersListToBitmap) {
  FrontierSet f(130);
  f.Push(5);
  f.Push(64);
  f.Push(129);
  f.BeginEpoch();
  f.MarkSparse();
  EXPECT_TRUE(f.Test(5));
  EXPECT_TRUE(f.Test(64));
  EXPECT_TRUE(f.Test(129));
  EXPECT_FALSE(f.Test(63));
}

TEST(FrontierSet, SwapExchangesBothRepresentations) {
  FrontierSet a(64), b(64);
  a.Push(1);
  a.BeginEpoch();
  a.MarkSparse();
  b.Push(2);
  b.Push(3);
  a.Swap(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_TRUE(b.Test(1));
  EXPECT_FALSE(a.Test(1));
}

TEST(FrontierSet, ResetKeepsEpochDiscipline) {
  FrontierSet f(32);
  f.BeginEpoch();
  f.Mark(7);
  f.Reset(64);  // grow the domain
  EXPECT_EQ(f.domain_size(), 64u);
  EXPECT_TRUE(f.empty());
  // Bits marked before the resize stay invalidated after the next epoch.
  f.BeginEpoch();
  EXPECT_FALSE(f.Test(7));
}

TEST(FrontierSet, ManyEpochsNeverBleed) {
  // Simulates the per-sample reuse pattern: mark a different level each
  // epoch; earlier levels must never shine through.
  FrontierSet f(128);
  for (uint32_t round = 0; round < 1000; ++round) {
    f.BeginEpoch();
    const uint32_t v = round % 128;
    f.Mark(v);
    EXPECT_TRUE(f.Test(v));
    EXPECT_FALSE(f.Test((v + 1) % 128));
    EXPECT_FALSE(f.Test((v + 64) % 128));
  }
}

}  // namespace
}  // namespace saphyra
