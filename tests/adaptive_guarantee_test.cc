// Statistical correctness of the adaptive stopping machinery, checked
// against exact Brandes betweenness on a sweep of small seeded random
// graphs: ε-mode estimates must stay within ε for at least a (1−δ)
// fraction of nodes on every graph (the guarantee is per-run over *all*
// nodes with probability 1−δ, so the per-node fraction bound is strictly
// weaker and robust to the rare allowed failure), and top-k mode must
// return the true top-k on graphs whose scores are well separated.

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/kadabra.h"
#include "bc/brandes.h"
#include "bc/saphyra_bc.h"
#include "graph/generators.h"
#include "test_util.h"

namespace saphyra {
namespace {

using testing::MakeGraph;
using testing::RandomConnectedGraph;

constexpr double kEps = 0.05;
constexpr double kDelta = 0.1;
constexpr int kNumGraphs = 20;

TEST(AdaptiveGuarantee, SaphyraBcEpsilonModeWithinEpsilonOfBrandes) {
  for (int t = 0; t < kNumGraphs; ++t) {
    Graph g = RandomConnectedGraph(25 + t, 0.06 + 0.002 * t, 100 + t);
    std::vector<double> truth = BrandesBetweenness(g);
    IspIndex isp(g);
    SaphyraBcOptions opts;
    opts.epsilon = kEps;
    opts.delta = kDelta;
    opts.seed = 500 + t;
    SaphyraBcResult res = RunSaphyraBcFull(isp, opts);
    NodeId within = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (std::abs(res.bc[v] - truth[v]) < kEps) ++within;
    }
    EXPECT_GE(within, static_cast<NodeId>(
                          std::ceil((1.0 - kDelta) * g.num_nodes())))
        << "graph " << t << ": " << (g.num_nodes() - within) << "/"
        << g.num_nodes() << " nodes off by >= " << kEps;
  }
}

TEST(AdaptiveGuarantee, KadabraEpsilonModeWithinEpsilonOfBrandes) {
  for (int t = 0; t < kNumGraphs; ++t) {
    Graph g = RandomConnectedGraph(24 + t, 0.08, 300 + t);
    std::vector<double> truth = BrandesBetweenness(g);
    KadabraOptions opts;
    opts.epsilon = kEps;
    opts.delta = kDelta;
    opts.seed = 700 + t;
    KadabraResult res = RunKadabra(g, opts);
    NodeId within = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (std::abs(res.bc[v] - truth[v]) < kEps) ++within;
    }
    EXPECT_GE(within, static_cast<NodeId>(
                          std::ceil((1.0 - kDelta) * g.num_nodes())))
        << "graph " << t;
  }
}

/// A "double star": two hubs joined by an edge, each carrying many leaves.
/// The hubs' betweenness dwarfs everything else (leaves are exact zeros),
/// so the true top-2 is unambiguous and widely separated. Every edge is a
/// bridge: SaPHyRa_bc resolves this graph entirely in closed form.
Graph DoubleStar(NodeId leaves_per_hub) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  const NodeId hub_a = 0, hub_b = 1;
  edges.push_back({hub_a, hub_b});
  NodeId next = 2;
  for (NodeId i = 0; i < leaves_per_hub; ++i) {
    edges.push_back({hub_a, next++});
    edges.push_back({hub_b, next++});
  }
  return MakeGraph(next, edges);
}

/// A "theta" graph: gateways s=0 and t=1 joined through m parallel
/// 2-paths. The whole graph is one biconnected component (no bridges, no
/// cutpoints), so ranking it genuinely exercises the sampled subspace —
/// and bc(s) = bc(t) = m(m−1)/2 ≫ bc(middle) = 2/m (unnormalized), a
/// wide true separation of the top 2.
Graph ThetaGraph(NodeId num_middles) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  NodeId next = 2;
  for (NodeId i = 0; i < num_middles; ++i) {
    edges.push_back({0, next});
    edges.push_back({1, next});
    ++next;
  }
  return MakeGraph(next, edges);
}

std::set<NodeId> TrueTopK(const std::vector<double>& truth, size_t k) {
  std::vector<NodeId> order(truth.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<NodeId>(i);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return truth[a] > truth[b];
  });
  return {order.begin(), order.begin() + k};
}

std::set<NodeId> EstimatedTopK(const std::vector<double>& est,
                               const std::vector<NodeId>& ids, size_t k) {
  std::vector<size_t> order(est.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return est[a] > est[b]; });
  std::set<NodeId> out;
  for (size_t i = 0; i < k; ++i) out.insert(ids[order[i]]);
  return out;
}

TEST(AdaptiveGuarantee, SaphyraBcTopKModeFindsTrueTopKOnSeparatedGraphs) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    // Alternate between the all-exact construction (bridges only) and the
    // all-sampled one (a single biconnected component).
    Graph g = (seed % 2 == 0) ? DoubleStar(8 + 2 * seed)
                              : ThetaGraph(8 + 2 * seed);
    std::vector<double> truth = BrandesBetweenness(g);
    IspIndex isp(g);
    std::vector<NodeId> all(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) all[v] = v;
    SaphyraBcOptions opts;
    opts.epsilon = 0.1;
    opts.delta = 0.05;
    opts.seed = 40 + seed;
    opts.top_k = 2;
    SaphyraBcResult res = RunSaphyraBc(isp, all, opts);
    EXPECT_EQ(EstimatedTopK(res.bc, all, 2), TrueTopK(truth, 2))
        << "seed " << seed;
  }
}

TEST(AdaptiveGuarantee, KadabraTopKModeFindsTrueTopKOnSeparatedGraphs) {
  for (uint64_t seed : {5u, 6u, 7u, 8u}) {
    Graph g = DoubleStar(7 + seed);
    std::vector<double> truth = BrandesBetweenness(g);
    std::vector<NodeId> all(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) all[v] = v;
    KadabraOptions opts;
    opts.epsilon = 0.1;
    opts.delta = 0.05;
    opts.seed = 60 + seed;
    opts.top_k = 2;
    KadabraResult res = RunKadabra(g, opts);
    EXPECT_EQ(EstimatedTopK(res.bc, all, 2), TrueTopK(truth, 2))
        << "seed " << seed;
  }
}

TEST(AdaptiveGuarantee, TopKModeUsesFewerSamplesThanEpsilonMode) {
  // The point of top-k mode: separation of well-split scores needs far
  // fewer samples than a uniform ε guarantee at the same budget cap.
  Graph g = DoubleStar(12);
  IspIndex isp(g);
  std::vector<NodeId> all(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) all[v] = v;
  SaphyraBcOptions eps_mode;
  eps_mode.epsilon = 0.02;
  eps_mode.delta = 0.05;
  eps_mode.seed = 9;
  SaphyraBcOptions topk_mode = eps_mode;
  topk_mode.top_k = 2;
  SaphyraBcResult a = RunSaphyraBc(isp, all, eps_mode);
  SaphyraBcResult b = RunSaphyraBc(isp, all, topk_mode);
  EXPECT_LE(b.samples_used, a.samples_used);
}

}  // namespace
}  // namespace saphyra
