// Differential-oracle harness for the parallel biconnectivity pass: every
// generated graph runs the serial Hopcroft–Tarjan oracle and the parallel
// Tarjan–Vishkin pass at {1, 2, 8} logical threads, asserting canonical
// equivalence (same articulation points, same edge partition) AND bitwise
// field equality (the `.sgr` invariance contract), stable across repeated
// runs. Deep path/comb graphs pin the no-recursion guarantee, and the
// end-to-end section checks that `.sgr` bytes are identical whichever pass
// produced the decomposition.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "bicomp/biconnected.h"
#include "bicomp/isp.h"
#include "bicomp_test_util.h"
#include "graph/binary_io.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "test_util.h"
#include "util/rng.h"

namespace saphyra {
namespace {

using testing::AllBccVariants;
using testing::BccVariant;
using testing::BccVariantName;
using testing::CanonicalBcc;
using testing::Canonicalize;
using testing::ComputeBccVariant;
using testing::ExpectBccBitwiseEqual;
using testing::MakeGraph;

// --- graph families ---------------------------------------------------------

Graph PathGraph(NodeId n) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1});
  return MakeGraph(n, edges);
}

Graph CycleGraph(NodeId n) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v < n; ++v) edges.push_back({v, (v + 1) % n});
  return MakeGraph(n, edges);
}

Graph StarGraph(NodeId leaves) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 1; v <= leaves; ++v) edges.push_back({0, v});
  return MakeGraph(leaves + 1, edges);
}

/// `k` cliques of `s` nodes chained so consecutive cliques share exactly
/// one vertex — every shared vertex is a cutpoint, every clique one
/// component.
Graph CliqueChain(NodeId k, NodeId s) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId c = 0; c < k; ++c) {
    NodeId base = c * (s - 1);
    for (NodeId i = 0; i < s; ++i) {
      for (NodeId j = i + 1; j < s; ++j) {
        edges.push_back({base + i, base + j});
      }
    }
  }
  return MakeGraph(k * (s - 1) + 1, edges);
}

/// Spine path with a pendant tooth on every spine node — the classic
/// deep-DFS shape with a bridge per edge.
Graph CombGraph(NodeId spine) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v + 1 < spine; ++v) edges.push_back({v, v + 1});
  for (NodeId v = 0; v < spine; ++v) edges.push_back({v, spine + v});
  return MakeGraph(2 * spine, edges);
}

/// Several Erdős–Rényi blocks on disjoint id ranges plus trailing isolated
/// nodes: multi-component graphs exercise the spanning-forest path.
Graph DisconnectedBlocks(uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<NodeId, NodeId>> edges;
  NodeId base = 0;
  const uint32_t blocks = 2 + static_cast<uint32_t>(rng.UniformInt(3));
  for (uint32_t b = 0; b < blocks; ++b) {
    NodeId n = 3 + static_cast<NodeId>(rng.UniformInt(20));
    EdgeIndex m = n + static_cast<EdgeIndex>(rng.UniformInt(2 * n));
    for (EdgeIndex e = 0; e < m; ++e) {
      NodeId u = base + static_cast<NodeId>(rng.UniformInt(n));
      NodeId v = base + static_cast<NodeId>(rng.UniformInt(n));
      if (u != v) edges.push_back({u, v});
    }
    base += n;
  }
  return MakeGraph(base + 3, edges);  // 3 isolated nodes at the end
}

struct Case {
  std::string name;
  Graph graph;
};

std::vector<Case> GeneratorSweep() {
  std::vector<Case> cases;
  auto add = [&](std::string name, Graph g) {
    cases.push_back({std::move(name), std::move(g)});
  };
  char buf[96];
  // G(n, p) across densities, from forests to near-cliques.
  for (NodeId n : {8, 16, 32, 64}) {
    for (double density : {0.5, 1.0, 2.0, 4.0}) {
      for (uint64_t seed = 0; seed < 8; ++seed) {
        std::snprintf(buf, sizeof(buf), "er_n%u_d%.1f_s%llu", n, density,
                      static_cast<unsigned long long>(seed));
        const EdgeIndex max_edges =
            static_cast<EdgeIndex>(n) * (n - 1) / 2;
        add(buf, ErdosRenyi(n,
                            std::min(static_cast<EdgeIndex>(n * density),
                                     max_edges),
                            seed * 977 + 11));
      }
    }
  }
  // Trees: every edge a bridge.
  for (NodeId n : {2, 3, 10, 60, 300}) {
    for (uint64_t seed = 0; seed < 4; ++seed) {
      std::snprintf(buf, sizeof(buf), "tree_n%u_s%llu", n,
                    static_cast<unsigned long long>(seed));
      add(buf, RandomTree(n, seed * 313 + 7));
    }
  }
  // Cycles: one component, no cutpoints.
  for (NodeId n : {3, 4, 5, 10, 40, 150}) {
    std::snprintf(buf, sizeof(buf), "cycle_n%u", n);
    add(buf, CycleGraph(n));
  }
  // Cliques joined at cut vertices.
  for (auto [k, s] : std::vector<std::pair<NodeId, NodeId>>{
           {2, 3}, {3, 4}, {5, 3}, {4, 6}, {8, 4}, {2, 10}}) {
    std::snprintf(buf, sizeof(buf), "cliques_k%u_s%u", k, s);
    add(buf, CliqueChain(k, s));
  }
  // Stars: the center is the lone cutpoint.
  for (NodeId leaves : {3, 10, 60, 400}) {
    std::snprintf(buf, sizeof(buf), "star_%u", leaves);
    add(buf, StarGraph(leaves));
  }
  // Paths and combs (shallow versions of the deep stress shapes).
  for (NodeId n : {2, 17, 128}) {
    std::snprintf(buf, sizeof(buf), "path_n%u", n);
    add(buf, PathGraph(n));
  }
  add("comb_64", CombGraph(64));
  // Grids with deleted edges: bridge- and block-rich.
  for (auto [w, h, keep] : std::vector<std::tuple<NodeId, NodeId, double>>{
           {5, 4, 1.0}, {8, 6, 0.9}, {12, 9, 0.75}, {15, 12, 0.6}}) {
    for (uint64_t seed = 1; seed <= 2; ++seed) {
      std::snprintf(buf, sizeof(buf), "grid_%ux%u_k%.2f_s%llu", w, h, keep,
                    static_cast<unsigned long long>(seed));
      add(buf, RoadGrid(w, h, keep, seed * 61).graph);
    }
  }
  // Disconnected multi-component graphs with isolated nodes.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    std::snprintf(buf, sizeof(buf), "blocks_s%llu",
                  static_cast<unsigned long long>(seed));
    add(buf, DisconnectedBlocks(seed * 131 + 5));
  }
  // Hand-picked edge cases.
  add("empty", MakeGraph(0, {}));
  add("isolated_only", MakeGraph(4, {}));
  add("single_edge", MakeGraph(2, {{0, 1}}));
  add("triangle_plus_isolated", MakeGraph(5, {{0, 1}, {1, 2}, {2, 0}}));
  // Heavier-tailed families for good measure.
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    std::snprintf(buf, sizeof(buf), "ba_s%llu",
                  static_cast<unsigned long long>(seed));
    add(buf, BarabasiAlbert(80, 2, seed * 17));
    std::snprintf(buf, sizeof(buf), "ws_s%llu",
                  static_cast<unsigned long long>(seed));
    add(buf, WattsStrogatz(60, 4, 0.2, seed * 29));
    std::snprintf(buf, sizeof(buf), "sbm_s%llu",
                  static_cast<unsigned long long>(seed));
    add(buf, StochasticBlockModel(60, 3, 0.25, 0.02, seed * 43));
  }
  return cases;
}

TEST(BicompDifferential, ParallelMatchesSerialOracleAcrossGeneratorSweep) {
  std::vector<Case> cases = GeneratorSweep();
  // The acceptance bar: at least 200 generated instances.
  ASSERT_GE(cases.size(), 200u);
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    const BiconnectedComponents serial =
        ComputeBiconnectedComponents(c.graph);
    const CanonicalBcc canon = Canonicalize(c.graph, serial);
    for (uint32_t threads : {1u, 2u, 8u}) {
      const std::string what = c.name + " threads=" + std::to_string(threads);
      BiconnectedComponents par =
          ComputeBiconnectedComponentsParallel(c.graph, threads);
      EXPECT_EQ(Canonicalize(c.graph, par), canon) << what;
      ExpectBccBitwiseEqual(serial, par, what);
      // Repeated runs are bitwise stable (no interleaving leaks through).
      BiconnectedComponents rerun =
          ComputeBiconnectedComponentsParallel(c.graph, threads);
      ExpectBccBitwiseEqual(par, rerun, what + " rerun");
    }
  }
}

// --- deep-graph stress -------------------------------------------------------

TEST(BicompDifferential, MillionDeepPathRunsParallelWithoutRecursion) {
  const NodeId n = 1000000;
  Graph g = PathGraph(n);
  BiconnectedComponents par = ComputeBiconnectedComponentsParallel(g, 8);
  EXPECT_EQ(par.num_components, n - 1);  // every edge a bridge
  EXPECT_FALSE(par.is_cutpoint[0]);
  EXPECT_TRUE(par.is_cutpoint[1]);
  EXPECT_TRUE(par.is_cutpoint[n / 2]);
  EXPECT_FALSE(par.is_cutpoint[n - 1]);
  // The serial pass stays the oracle even here (its DFS stack lives on the
  // heap) — and its output matches the parallel pass bitwise.
  BiconnectedComponents serial = ComputeBiconnectedComponents(g);
  ExpectBccBitwiseEqual(serial, par, "path_1m");
}

TEST(BicompDifferential, MillionDeepCombRunsParallelWithoutRecursion) {
  const NodeId spine = 1000000;
  Graph g = CombGraph(spine);  // DFS tree is >= 1M levels deep
  BiconnectedComponents par = ComputeBiconnectedComponentsParallel(g, 8);
  EXPECT_EQ(par.num_components, g.num_edges());  // all bridges
  EXPECT_TRUE(par.is_cutpoint[spine / 2]);       // interior spine node
  EXPECT_FALSE(par.is_cutpoint[spine + 5]);      // a tooth tip
  BiconnectedComponents serial = ComputeBiconnectedComponents(g);
  ExpectBccBitwiseEqual(serial, par, "comb_1m");
}

TEST(BicompDifferential, BoundedVariantStillGuardsTheSerialPath) {
  Graph g = PathGraph(200000);
  BiconnectedComponents out;
  Status st = ComputeBiconnectedComponentsBounded(g, 100000, &out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(st.message().find("graph too deep"), std::string::npos);
}

// --- end-to-end `.sgr` invariance -------------------------------------------

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(BicompDifferential, SgrBytesIdenticalAcrossThreadCounts) {
  Graph g = RoadGrid(20, 15, 0.8, 4242).graph;

  IspOptions serial_opts;
  serial_opts.bicomp_threads = 1;
  IspIndex serial(g, serial_opts);
  IspOptions par_opts;
  par_opts.bicomp_threads = 8;
  IspIndex parallel(g, par_opts);

  const std::string dir = ::testing::TempDir();
  const std::string serial_path = dir + "/bicomp_serial.sgr";
  const std::string par_path = dir + "/bicomp_parallel.sgr";
  SgrWriteOptions wopts;
  ASSERT_TRUE(WriteSgr(serial_path, g, &serial.bcc(), &serial.conn(),
                       &serial.views(), &serial.tree(), wopts)
                  .ok());
  ASSERT_TRUE(WriteSgr(par_path, g, &parallel.bcc(), &parallel.conn(),
                       &parallel.views(), &parallel.tree(), wopts)
                  .ok());
  const std::string serial_bytes = ReadFileBytes(serial_path);
  const std::string par_bytes = ReadFileBytes(par_path);
  ASSERT_FALSE(serial_bytes.empty());
  // Bitwise identity of the whole file — header fingerprint included.
  EXPECT_TRUE(serial_bytes == par_bytes)
      << "`.sgr` bytes differ between --bicomp-threads 1 and 8";
  std::remove(serial_path.c_str());
  std::remove(par_path.c_str());
}

TEST(BicompDifferential, DeepGraphSurvivesTheFullSgrPipeline) {
  // End-to-end on a 100k-deep path: decomposition (parallel), block-cut
  // tree, views, serialization, reload. The 1M-scale binary smoke lives in
  // CI where graph_convert runs for real.
  Graph g = PathGraph(100000);
  IspIndex isp(g);  // default options: parallel pass
  EXPECT_EQ(isp.num_components(), g.num_edges());
  const std::string path = ::testing::TempDir() + "/bicomp_deep.sgr";
  SgrWriteOptions wopts;
  ASSERT_TRUE(WriteSgr(path, g, &isp.bcc(), &isp.conn(), &isp.views(),
                       &isp.tree(), wopts)
                  .ok());
  GraphCache cache;
  ASSERT_TRUE(LoadSgr(path, &cache).ok());
  EXPECT_TRUE(cache.has_decomposition);
  EXPECT_EQ(cache.bcc.num_components, isp.num_components());
  EXPECT_EQ(cache.bcc.arc_component, isp.bcc().arc_component);
  std::remove(path.c_str());
}

// The variant table of biconnected_test.cc covers hand graphs; this is the
// generated-graph analog pinning that all four variants canonicalize to the
// same structure on a few larger instances.
TEST(BicompDifferential, AllVariantsAgreeOnLargerInstances) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Graph g = BarabasiAlbert(400, 3, seed * 101);
    SCOPED_TRACE("ba400 seed " + std::to_string(seed));
    CanonicalBcc expect =
        Canonicalize(g, ComputeBccVariant(g, BccVariant::kSerial));
    for (BccVariant v : AllBccVariants()) {
      EXPECT_EQ(Canonicalize(g, ComputeBccVariant(g, v)), expect)
          << BccVariantName(v);
    }
  }
}

}  // namespace
}  // namespace saphyra
