// Social-network subset ranking — the scenario motivating the paper's
// introduction: you care about the relative importance of a *specific*
// group of accounts (say, the accounts matching a search query), not of the
// whole network, and most of them sit in the long, low-centrality tail
// where approximate rankings are noisy.
//
//   $ ./examples/social_subset_ranking [n | graph-file] [subset_size]
//
// Generates a heavy-tailed social graph (or loads one: a numeric first
// argument is a node count, anything else a SNAP edge list or `.sgr` cache,
// loaded cache-aware via graph/binary_io.h), picks a random subset, ranks
// it with SaPHyRa_bc, and (on this laptop-scale instance) validates the
// ranking against exact Brandes ground truth.

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "bc/brandes.h"
#include "bc/saphyra_bc.h"
#include "example_util.h"
#include "graph/generators.h"
#include "metrics/rank.h"
#include "util/timer.h"

using namespace saphyra;

namespace {

bool IsNumber(const char* s) {
  if (*s == '\0') return false;
  for (; *s != '\0'; ++s) {
    if (!std::isdigit(static_cast<unsigned char>(*s))) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t subset_size = argc > 2 ? std::atoi(argv[2]) : 50;

  examples::ExampleGraph eg;
  if (argc > 1 && !IsNumber(argv[1])) {
    eg = examples::LoadExampleGraph(argv[1]);
  } else {
    const NodeId n = argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 5000;
    eg.graph = BarabasiAlbert(n, 4, 2026);
  }
  const Graph& g = eg.graph;
  const NodeId n = g.num_nodes();
  std::printf("social network: %s\n", g.DebugString().c_str());

  Timer t;
  const bool cached_decomposition = eg.cache.has_decomposition;
  std::unique_ptr<IspIndex> isp_ptr = examples::MakeIsp(eg);
  const IspIndex& isp = *isp_ptr;
  std::printf("ISP index %s in %s\n",
              cached_decomposition ? "adopted from cache" : "built",
              FormatDuration(t.ElapsedSeconds()).c_str());

  // A random "search result" subset.
  Rng rng(17);
  std::vector<NodeId> targets;
  while (targets.size() < subset_size) {
    NodeId v = static_cast<NodeId>(rng.UniformInt(n));
    bool dup = false;
    for (NodeId u : targets) dup |= (u == v);
    if (!dup) targets.push_back(v);
  }

  SaphyraBcOptions options;
  options.epsilon = 0.005;
  options.delta = 0.01;
  options.seed = 4;
  t.Restart();
  SaphyraBcResult result = RunSaphyraBc(isp, targets, options);
  double rank_time = t.ElapsedSeconds();
  std::printf("SaPHyRa_bc ranked %zu nodes in %s (%llu samples)\n",
              targets.size(), FormatDuration(rank_time).c_str(),
              static_cast<unsigned long long>(result.samples_used));

  // Ground truth (exact Brandes) — feasible here because the instance is
  // laptop-scale; on real networks this is the paper's supercomputer run.
  t.Restart();
  std::vector<double> truth = ParallelBrandesBetweenness(g);
  std::printf("exact Brandes took %s (%.0fx the SaPHyRa time)\n",
              FormatDuration(t.ElapsedSeconds()).c_str(),
              t.ElapsedSeconds() / rank_time);

  std::vector<double> truth_sub(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) truth_sub[i] = truth[targets[i]];
  std::printf(
      "\nranking quality: Spearman rho = %.4f, Kendall tau = %.4f, "
      "rank deviation = %.2f%%\n",
      SpearmanCorrelation(truth_sub, result.bc),
      KendallTau(truth_sub, result.bc),
      100.0 * RankDeviation(truth_sub, result.bc));

  // Show the top of the subset ranking.
  std::vector<uint32_t> est_rank = RanksDescending(result.bc);
  std::vector<uint32_t> true_rank = RanksDescending(truth_sub);
  std::printf("\n%8s %14s %14s %9s %9s\n", "node", "bc estimate", "bc exact",
              "est rank", "true rank");
  for (uint32_t want = 1; want <= 10 && want <= targets.size(); ++want) {
    for (size_t i = 0; i < targets.size(); ++i) {
      if (est_rank[i] == want) {
        std::printf("%8u %14.8f %14.8f %9u %9u\n", targets[i], result.bc[i],
                    truth_sub[i], est_rank[i], true_rank[i]);
      }
    }
  }
  return 0;
}
