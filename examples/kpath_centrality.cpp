// k-path centrality with the generic SaPHyRa framework — the paper's other
// worked example of a sampling-estimable centrality (§II-A), and a
// demonstration that the sample-space partition is not specific to
// betweenness: here the exact subspace is the (closed-form) set of 1-hop
// walks and the approximate subspace is everything longer.
//
//   $ ./examples/kpath_centrality [k]

#include <cstdio>
#include <cstdlib>

#include "graph/generators.h"
#include "kpath/kpath.h"
#include "metrics/rank.h"

using namespace saphyra;

int main(int argc, char** argv) {
  const uint32_t k = argc > 1 ? std::atoi(argv[1]) : 5;
  Graph g = WattsStrogatz(3000, 6, 0.1, 31);
  std::printf("network: %s, k = %u\n", g.DebugString().c_str(), k);

  std::vector<NodeId> targets;
  for (NodeId v = 0; v < 20; ++v) targets.push_back(v * 137 % g.num_nodes());

  KPathProblem problem(g, targets, k);
  std::printf("lambda_hat (1-hop exact subspace) = %.4f, VC bound = %.0f\n",
              1.0 / k, problem.VcDimension());

  SaphyraOptions options;
  options.epsilon = 0.01;
  options.delta = 0.01;
  options.seed = 11;
  SaphyraResult res = RunSaphyra(&problem, options);

  std::vector<uint32_t> ranks = RanksDescending(res.combined_risks);
  std::printf("\n%8s %16s %16s %6s\n", "node", "k-path centrality",
              "exact (1-hop) part", "rank");
  for (size_t i = 0; i < targets.size(); ++i) {
    std::printf("%8u %16.6f %16.6f %6u\n", targets[i], res.combined_risks[i],
                res.exact_risks[i], ranks[i]);
  }
  std::printf(
      "\nsamples: %llu of max %llu (early stop: %s) — the 1-hop exact "
      "subspace removed lambda_hat = 1/k\nof the mass and every hypothesis' "
      "variance shrank accordingly (Claim 8 of the paper).\n",
      static_cast<unsigned long long>(res.samples_used),
      static_cast<unsigned long long>(res.max_samples),
      res.stopped_early ? "yes" : "no");
  return 0;
}
