#ifndef SAPHYRA_EXAMPLES_EXAMPLE_UTIL_H_
#define SAPHYRA_EXAMPLES_EXAMPLE_UTIL_H_

// Shared glue for the examples: cache-aware graph loading with a generator
// fallback. Every example that can run on a real corpus accepts a file
// argument; loading goes through LoadGraphAuto (graph/binary_io.h), so a
// fresh `<file>.sgr` produced by tools/graph_convert is picked up
// automatically — including the precomputed decomposition, which MakeIsp
// then adopts instead of re-running it.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>

#include "bicomp/isp.h"
#include "graph/binary_io.h"

namespace saphyra {
namespace examples {

/// A loaded (or generated) graph plus whatever preprocessing came with it.
struct ExampleGraph {
  Graph graph;
  GraphCache cache;  // decomposition only; `graph` has been moved out of it
  bool from_cache = false;
};

/// \brief Load `path` cache-aware, exiting with a message on failure.
inline ExampleGraph LoadExampleGraph(const std::string& path,
                                     const std::string& format = "auto") {
  ExampleGraph eg;
  LoadGraphOptions options;
  options.format = format;
  Status st = LoadGraphAuto(path, options, &eg.cache, &eg.from_cache);
  if (!st.ok()) {
    std::fprintf(stderr, "failed to load %s: %s\n", path.c_str(),
                 st.ToString().c_str());
    std::exit(1);
  }
  eg.graph = std::move(eg.cache.graph);
  if (eg.from_cache) {
    std::fprintf(stderr, "[%s: loaded from .sgr cache%s]\n", path.c_str(),
                 eg.cache.has_decomposition ? " with decomposition" : "");
  }
  return eg;
}

/// \brief ISP index for an ExampleGraph: adopts the cached decomposition
/// when one was loaded, computes it otherwise. Consumes eg.cache.
inline std::unique_ptr<IspIndex> MakeIsp(ExampleGraph& eg) {
  if (eg.cache.has_decomposition) {
    return std::make_unique<IspIndex>(eg.graph, std::move(eg.cache));
  }
  return std::make_unique<IspIndex>(eg.graph);
}

}  // namespace examples
}  // namespace saphyra

#endif  // SAPHYRA_EXAMPLES_EXAMPLE_UTIL_H_
