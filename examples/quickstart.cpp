// Quickstart: rank a handful of nodes of a small network by betweenness
// centrality with SaPHyRa_bc.
//
//   $ ./examples/quickstart [edge-list-or-.sgr-file]
//
// Walks through the whole public API surface in ~40 lines: build a graph,
// build the (reusable) ISP index, pick targets, run the ranker, read the
// estimates and diagnostics. With a file argument, loading is cache-aware:
// a fresh `<file>.sgr` (tools/graph_convert) is mmap'ed instead of parsing
// the text, decomposition included.

#include <cstdio>

#include "bc/saphyra_bc.h"
#include "example_util.h"
#include "graph/generators.h"
#include "metrics/rank.h"

using namespace saphyra;

int main(int argc, char** argv) {
  // 1. A graph. Generators, SNAP edge lists (graph/io.h), `.sgr` caches
  //    (graph/binary_io.h) and the GraphBuilder all produce the same
  //    immutable CSR Graph.
  examples::ExampleGraph eg;
  if (argc > 1) {
    eg = examples::LoadExampleGraph(argv[1]);
  } else {
    eg.graph = BarabasiAlbert(/*n=*/2000, /*edges_per_node=*/3, /*seed=*/7);
  }
  const Graph& g = eg.graph;
  std::printf("network: %s\n", g.DebugString().c_str());

  // 2. The ISP index: biconnected decomposition, block-cut tree, out-reach
  //    sets, gamma and break-point centralities. Subset-independent — build
  //    once, rank as many subsets as you like (and persist with
  //    graph_convert: a `.sgr` cache skips this step entirely).
  std::unique_ptr<IspIndex> isp_ptr = examples::MakeIsp(eg);
  const IspIndex& isp = *isp_ptr;
  std::printf("bi-components: %u, gamma = %.4f\n", isp.num_components(),
              isp.gamma());

  // 3. Target nodes to rank (here: ten ids spread across the id range).
  std::vector<NodeId> targets;
  const NodeId stride = g.num_nodes() > 10 ? g.num_nodes() / 10 : 1;
  for (NodeId i = 0; i < 10 && i * stride < g.num_nodes(); ++i) {
    targets.push_back(i * stride);
  }

  // 4. Run SaPHyRa_bc with an (epsilon, delta) guarantee.
  SaphyraBcOptions options;
  options.epsilon = 0.01;  // additive error on each bc value
  options.delta = 0.01;    // failure probability
  options.seed = 1;
  SaphyraBcResult result = RunSaphyraBc(isp, targets, options);

  // 5. Read the estimates; rank with the tie-broken ranking helper.
  std::vector<uint32_t> ranks = RanksDescending(result.bc);
  std::printf("\n%8s %14s %6s\n", "node", "bc estimate", "rank");
  for (size_t i = 0; i < targets.size(); ++i) {
    std::printf("%8u %14.8f %6u\n", targets[i], result.bc[i], ranks[i]);
  }

  // 6. Diagnostics: how the run was spent.
  std::printf(
      "\neta (personalized mass) = %.4f, lambda_hat (exact subspace) = %.4f\n"
      "VC bound = %.0f, samples = %llu / max %llu, stopped early: %s\n"
      "total time: %.3fs (exact pass %.3fs, sampling %.3fs)\n",
      result.eta, result.lambda_hat, result.vc_bound,
      static_cast<unsigned long long>(result.samples_used),
      static_cast<unsigned long long>(result.max_samples),
      result.stopped_early ? "yes" : "no", result.total_seconds,
      result.exact_seconds, result.sampling_seconds);
  return 0;
}
