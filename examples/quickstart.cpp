// Quickstart: rank a handful of nodes of a small network by betweenness
// centrality with SaPHyRa_bc.
//
//   $ ./examples/quickstart
//
// Walks through the whole public API surface in ~40 lines: build a graph,
// build the (reusable) ISP index, pick targets, run the ranker, read the
// estimates and diagnostics.

#include <cstdio>

#include "bc/saphyra_bc.h"
#include "graph/generators.h"
#include "metrics/rank.h"

using namespace saphyra;

int main() {
  // 1. A graph. Generators, SNAP edge lists (graph/io.h) and the
  //    GraphBuilder all produce the same immutable CSR Graph.
  Graph g = BarabasiAlbert(/*n=*/2000, /*edges_per_node=*/3, /*seed=*/7);
  std::printf("network: %s\n", g.DebugString().c_str());

  // 2. The ISP index: biconnected decomposition, block-cut tree, out-reach
  //    sets, gamma and break-point centralities. Subset-independent — build
  //    once, rank as many subsets as you like.
  IspIndex isp(g);
  std::printf("bi-components: %u, gamma = %.4f\n", isp.num_components(),
              isp.gamma());

  // 3. Target nodes to rank (here: ten arbitrary ids).
  std::vector<NodeId> targets = {3, 42, 99, 256, 512, 777, 1024, 1500, 1776,
                                 1999};

  // 4. Run SaPHyRa_bc with an (epsilon, delta) guarantee.
  SaphyraBcOptions options;
  options.epsilon = 0.01;  // additive error on each bc value
  options.delta = 0.01;    // failure probability
  options.seed = 1;
  SaphyraBcResult result = RunSaphyraBc(isp, targets, options);

  // 5. Read the estimates; rank with the tie-broken ranking helper.
  std::vector<uint32_t> ranks = RanksDescending(result.bc);
  std::printf("\n%8s %14s %6s\n", "node", "bc estimate", "rank");
  for (size_t i = 0; i < targets.size(); ++i) {
    std::printf("%8u %14.8f %6u\n", targets[i], result.bc[i], ranks[i]);
  }

  // 6. Diagnostics: how the run was spent.
  std::printf(
      "\neta (personalized mass) = %.4f, lambda_hat (exact subspace) = %.4f\n"
      "VC bound = %.0f, samples = %llu / max %llu, stopped early: %s\n"
      "total time: %.3fs (exact pass %.3fs, sampling %.3fs)\n",
      result.eta, result.lambda_hat, result.vc_bound,
      static_cast<unsigned long long>(result.samples_used),
      static_cast<unsigned long long>(result.max_samples),
      result.stopped_early ? "yes" : "no", result.total_seconds,
      result.exact_seconds, result.sampling_seconds);
  return 0;
}
