// Head-to-head comparison of SaPHyRa_bc against the two baselines of the
// paper's evaluation, ABRA (node-pair sampling, Rademacher stopping) and
// KADABRA (path sampling, bidirectional BFS), on one laptop-scale network
// with exact ground truth — a single-command miniature of Figs. 3, 4, 6.
//
//   $ ./examples/baseline_comparison [epsilon] [graph-file]
//
// The optional graph file (SNAP edge list or `.sgr` cache) replaces the
// generated network; keep it laptop-scale — exact Brandes ground truth is
// computed for the comparison.

#include <cstdio>
#include <cstdlib>

#include "baselines/abra.h"
#include "baselines/kadabra.h"
#include "bc/brandes.h"
#include "bc/saphyra_bc.h"
#include "example_util.h"
#include "graph/generators.h"
#include "metrics/rank.h"
#include "util/timer.h"

using namespace saphyra;

int main(int argc, char** argv) {
  const double eps = argc > 1 ? std::atof(argv[1]) : 0.05;
  const double delta = 0.01;
  examples::ExampleGraph eg;
  if (argc > 2) {
    eg = examples::LoadExampleGraph(argv[2]);
  } else {
    eg.graph = BarabasiAlbert(4000, 3, 99);
  }
  const Graph& g = eg.graph;
  std::printf("network: %s, epsilon = %.3f, delta = %.2f\n",
              g.DebugString().c_str(), eps, delta);

  std::vector<double> truth = ParallelBrandesBetweenness(g);
  std::unique_ptr<IspIndex> isp_ptr = examples::MakeIsp(eg);
  const IspIndex& isp = *isp_ptr;

  // The subset of interest: 100 random nodes.
  Rng rng(123);
  std::vector<NodeId> targets;
  while (targets.size() < 100) {
    NodeId v = static_cast<NodeId>(rng.UniformInt(g.num_nodes()));
    bool dup = false;
    for (NodeId u : targets) dup |= (u == v);
    if (!dup) targets.push_back(v);
  }
  std::vector<double> truth_sub(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) truth_sub[i] = truth[targets[i]];

  struct Row {
    const char* name;
    double seconds;
    uint64_t samples;
    std::vector<double> estimate;
  };
  std::vector<Row> rows;

  Timer t;
  AbraOptions aopts;
  aopts.epsilon = eps;
  aopts.delta = delta;
  aopts.seed = 1;
  t.Restart();
  AbraResult abra = RunAbra(g, aopts);
  std::vector<double> abra_sub(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) abra_sub[i] = abra.bc[targets[i]];
  rows.push_back({"ABRA", t.ElapsedSeconds(), abra.samples_used, abra_sub});

  KadabraOptions kopts;
  kopts.epsilon = eps;
  kopts.delta = delta;
  kopts.seed = 2;
  t.Restart();
  KadabraResult kad = RunKadabra(g, kopts);
  std::vector<double> kad_sub(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) kad_sub[i] = kad.bc[targets[i]];
  rows.push_back({"KADABRA", t.ElapsedSeconds(), kad.samples_used, kad_sub});

  SaphyraBcOptions sopts;
  sopts.epsilon = eps;
  sopts.delta = delta;
  sopts.seed = 3;
  t.Restart();
  SaphyraBcResult full = RunSaphyraBcFull(isp, sopts);
  std::vector<double> full_sub(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) full_sub[i] = full.bc[targets[i]];
  rows.push_back(
      {"SaPHyRa_bc-full", t.ElapsedSeconds(), full.samples_used, full_sub});

  t.Restart();
  SaphyraBcResult sub = RunSaphyraBc(isp, targets, sopts);
  rows.push_back({"SaPHyRa_bc", t.ElapsedSeconds(), sub.samples_used, sub.bc});

  std::printf("\n%-16s %10s %10s %10s %10s %12s %12s\n", "algorithm",
              "time (s)", "samples", "Spearman", "Kendall", "max |err|",
              "false zeros");
  for (const Row& row : rows) {
    double max_err = 0.0;
    for (size_t i = 0; i < targets.size(); ++i) {
      max_err = std::max(max_err, std::abs(row.estimate[i] - truth_sub[i]));
    }
    ZeroStats z = ClassifyZeros(truth_sub, row.estimate);
    std::printf("%-16s %10.3f %10llu %10.3f %10.3f %12.2e %12llu\n", row.name,
                row.seconds, static_cast<unsigned long long>(row.samples),
                SpearmanCorrelation(truth_sub, row.estimate),
                KendallTau(truth_sub, row.estimate), max_err,
                static_cast<unsigned long long>(z.false_zeros));
  }
  std::printf(
      "\nAll algorithms respect |err| < epsilon = %.3f; the *ranking* "
      "columns are where they differ\n(the paper's central point: equal "
      "estimation guarantees, very different rank quality).\n",
      eps);
  return 0;
}
