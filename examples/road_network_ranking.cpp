// Road-network area ranking — the paper's USA-road case study (§V-B) in
// miniature: rank all junctions of a geographic window (a "city") within a
// much larger road network, without paying for the whole network.
//
//   $ ./examples/road_network_ranking [usa-road.gr [usa-road.co]]
//
// Road networks are the best case for bi-component sampling: thousands of
// small biconnected components, many cutpoints (bridges, dead ends), and a
// personalized sample space that shrinks to the components touching the
// target area (eta << 1). With a DIMACS .gr argument the real USA-road data
// is used instead of the surrogate grid — loading is cache-aware, so a
// fresh `<file>.sgr` (tools/graph_convert --format dimacs) skips both the
// parse and the decomposition. The .co coordinate file scales the city
// windows to the data's bounding box when given.

#include <algorithm>
#include <cstdio>

#include "bc/saphyra_bc.h"
#include "example_util.h"
#include "graph/bfs.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "metrics/rank.h"
#include "util/timer.h"

using namespace saphyra;

int main(int argc, char** argv) {
  examples::ExampleGraph eg;
  RoadNetwork road;
  if (argc > 1) {
    eg = examples::LoadExampleGraph(argv[1], /*format=*/"dimacs");
    road.graph = std::move(eg.graph);
    if (argc > 2) {
      std::vector<float> coords;
      Status st = LoadDimacsCoordinates(argv[2], &coords);
      if (!st.ok()) {
        std::fprintf(stderr, "failed to load coordinates: %s\n",
                     st.ToString().c_str());
        return 1;
      }
      road.x.resize(road.graph.num_nodes(), 0.0f);
      road.y.resize(road.graph.num_nodes(), 0.0f);
      for (NodeId v = 0; v < road.graph.num_nodes(); ++v) {
        if (2 * v + 1 < coords.size()) {
          road.x[v] = coords[2 * v];
          road.y[v] = coords[2 * v + 1];
        }
      }
    } else {
      // No coordinates: lay the ids on a line so the rectangle windows
      // below degrade to contiguous id ranges.
      road.x.resize(road.graph.num_nodes());
      road.y.assign(road.graph.num_nodes(), 50.0f);
      for (NodeId v = 0; v < road.graph.num_nodes(); ++v) {
        road.x[v] = 100.0f * static_cast<float>(v) /
                    static_cast<float>(road.graph.num_nodes());
      }
    }
    eg.graph = Graph();  // the graph now lives in `road`
  } else {
    road = RoadGrid(/*width=*/140, /*height=*/120,
                    /*keep_prob=*/0.82, /*seed=*/55);
  }
  const Graph& g = road.graph;
  if (g.num_nodes() < 2) {
    std::fprintf(stderr, "road network too small to rank\n");
    return 1;
  }
  std::printf("road network: %s, diameter >= %u\n", g.DebugString().c_str(),
              TwoSweepDiameterLowerBound(g));

  Timer t;
  const bool cached_decomposition = eg.cache.has_decomposition;
  std::unique_ptr<IspIndex> isp_ptr =
      cached_decomposition
          ? std::make_unique<IspIndex>(road.graph, std::move(eg.cache))
          : std::make_unique<IspIndex>(road.graph);
  const IspIndex& isp = *isp_ptr;
  uint64_t cutpoints = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    cutpoints += isp.bcc().is_cutpoint[v];
  }
  std::printf(
      "ISP index: %u bi-components, %llu cutpoints, %s in %s\n",
      isp.num_components(), static_cast<unsigned long long>(cutpoints),
      cached_decomposition ? "adopted from cache" : "built",
      FormatDuration(t.ElapsedSeconds()).c_str());

  // Three nested "cities" of decreasing size, as fractions of the
  // coordinate bounding box (so they work for the surrogate grid and for
  // real DIMACS coordinates alike).
  const float min_x = *std::min_element(road.x.begin(), road.x.end());
  const float max_x = *std::max_element(road.x.begin(), road.x.end());
  const float min_y = *std::min_element(road.y.begin(), road.y.end());
  const float max_y = *std::max_element(road.y.begin(), road.y.end());
  struct City {
    const char* name;
    float x0, y0, x1, y1;  // fractions of the bounding box
  };
  const City cities[] = {
      {"metro area", 0.07f, 0.08f, 0.57f, 0.58f},
      {"city", 0.18f, 0.17f, 0.43f, 0.42f},
      {"downtown", 0.25f, 0.25f, 0.36f, 0.35f},
  };

  for (const City& c : cities) {
    auto targets = NodesInRectangle(
        road, min_x + c.x0 * (max_x - min_x), min_y + c.y0 * (max_y - min_y),
        min_x + c.x1 * (max_x - min_x), min_y + c.y1 * (max_y - min_y));
    if (targets.size() < 2) continue;
    SaphyraBcOptions options;
    options.epsilon = 0.02;
    options.delta = 0.01;
    options.seed = 6;
    t.Restart();
    SaphyraBcResult res = RunSaphyraBc(isp, targets, options);
    std::printf(
        "\n%-12s %6zu junctions | eta = %.4f, VC bound = %.0f, "
        "lambda_hat = %.3f\n             ranked in %s (%llu samples, "
        "early stop: %s)\n",
        c.name, targets.size(), res.eta, res.vc_bound, res.lambda_hat,
        FormatDuration(res.total_seconds).c_str(),
        static_cast<unsigned long long>(res.samples_used),
        res.stopped_early ? "yes" : "no");
    // Print the 5 most central junctions of the window with coordinates.
    std::vector<uint32_t> ranks = RanksDescending(res.bc);
    std::printf("             top junctions:");
    for (uint32_t want = 1; want <= 5 && want <= targets.size(); ++want) {
      for (size_t i = 0; i < targets.size(); ++i) {
        if (ranks[i] == want) {
          std::printf(" (%.0f,%.0f)", road.x[targets[i]],
                      road.y[targets[i]]);
        }
      }
    }
    std::printf("\n");
  }
  std::printf(
      "\nNote how eta shrinks with the window: SaPHyRa_bc samples only the "
      "bi-components the\ntarget area touches (Eq. 23 of the paper), which "
      "is where the subset-vs-full speedup comes from.\n");
  return 0;
}
