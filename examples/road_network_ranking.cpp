// Road-network area ranking — the paper's USA-road case study (§V-B) in
// miniature: rank all junctions of a geographic window (a "city") within a
// much larger road network, without paying for the whole network.
//
//   $ ./examples/road_network_ranking
//
// Road networks are the best case for bi-component sampling: thousands of
// small biconnected components, many cutpoints (bridges, dead ends), and a
// personalized sample space that shrinks to the components touching the
// target area (eta << 1). Accepts DIMACS .gr/.co files via graph/io.h if
// you have the real USA-road data.

#include <cstdio>

#include "bc/saphyra_bc.h"
#include "graph/bfs.h"
#include "graph/generators.h"
#include "metrics/rank.h"
#include "util/timer.h"

using namespace saphyra;

int main() {
  RoadNetwork road = RoadGrid(/*width=*/140, /*height=*/120,
                              /*keep_prob=*/0.82, /*seed=*/55);
  const Graph& g = road.graph;
  std::printf("road network: %s, diameter >= %u\n", g.DebugString().c_str(),
              TwoSweepDiameterLowerBound(g));

  Timer t;
  IspIndex isp(g);
  uint64_t cutpoints = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    cutpoints += isp.bcc().is_cutpoint[v];
  }
  std::printf(
      "ISP index: %u bi-components, %llu cutpoints, built in %s\n",
      isp.num_components(), static_cast<unsigned long long>(cutpoints),
      FormatDuration(t.ElapsedSeconds()).c_str());

  // Three nested "cities" of decreasing size.
  struct City {
    const char* name;
    float x0, y0, x1, y1;
  };
  const City cities[] = {
      {"metro area", 10, 10, 80, 70},
      {"city", 25, 20, 60, 50},
      {"downtown", 35, 30, 50, 42},
  };

  for (const City& c : cities) {
    auto targets = NodesInRectangle(road, c.x0, c.y0, c.x1, c.y1);
    if (targets.size() < 2) continue;
    SaphyraBcOptions options;
    options.epsilon = 0.02;
    options.delta = 0.01;
    options.seed = 6;
    t.Restart();
    SaphyraBcResult res = RunSaphyraBc(isp, targets, options);
    std::printf(
        "\n%-12s %6zu junctions | eta = %.4f, VC bound = %.0f, "
        "lambda_hat = %.3f\n             ranked in %s (%llu samples, "
        "early stop: %s)\n",
        c.name, targets.size(), res.eta, res.vc_bound, res.lambda_hat,
        FormatDuration(res.total_seconds).c_str(),
        static_cast<unsigned long long>(res.samples_used),
        res.stopped_early ? "yes" : "no");
    // Print the 5 most central junctions of the window with coordinates.
    std::vector<uint32_t> ranks = RanksDescending(res.bc);
    std::printf("             top junctions:");
    for (uint32_t want = 1; want <= 5 && want <= targets.size(); ++want) {
      for (size_t i = 0; i < targets.size(); ++i) {
        if (ranks[i] == want) {
          std::printf(" (%.0f,%.0f)", road.x[targets[i]],
                      road.y[targets[i]]);
        }
      }
    }
    std::printf("\n");
  }
  std::printf(
      "\nNote how eta shrinks with the window: SaPHyRa_bc samples only the "
      "bi-components the\ntarget area touches (Eq. 23 of the paper), which "
      "is where the subset-vs-full speedup comes from.\n");
  return 0;
}
