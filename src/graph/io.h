#ifndef SAPHYRA_GRAPH_IO_H_
#define SAPHYRA_GRAPH_IO_H_

/// \file
/// Text readers for the paper's corpora. These are the *slow* ingestion
/// path: line-by-line parses meant to run once, after which
/// tools/graph_convert persists the parsed graph (plus its preprocessing)
/// as a `.sgr` binary cache that graph/binary_io.h loads back in O(1) via
/// mmap. See README.md, "The .sgr binary cache" for the workflow and
/// DESIGN.md, "The .sgr on-disk format" for the byte-level spec.

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace saphyra {

/// Readers for the two text formats used by the paper's corpora.
///
/// * SNAP edge lists (Flickr, LiveJournal, Orkut): whitespace-separated
///   "u v" pairs, '#' comment lines. Direction and weights are ignored,
///   matching the paper's preprocessing ("treating the networks as
///   undirected and unweighted").
/// * DIMACS shortest-path challenge (USA-road): ".gr" arc files with
///   "p sp n m" header and "a u v w" arcs (1-indexed, weights ignored), and
///   ".co" coordinate files with "v id x y" lines.
///
/// Both readers tolerate CRLF line endings and trailing whitespace
/// (Windows-edited corpora), and cache-aware callers should prefer
/// LoadGraphAuto (graph/binary_io.h), which substitutes a fresh `.sgr`
/// cache for the text parse automatically.

/// \brief Load a SNAP-style edge list. Node ids are renumbered compactly in
/// first-appearance order when `compact_ids` is true; otherwise the raw ids
/// are used directly (they must be < 2^32).
Status LoadSnapEdgeList(const std::string& path, Graph* out,
                        bool compact_ids = true);

/// \brief Write a graph as a SNAP-style edge list (one "u v" per line).
Status SaveSnapEdgeList(const Graph& g, const std::string& path);

/// \brief Load a DIMACS ".gr" file as an undirected, unweighted graph.
Status LoadDimacsGraph(const std::string& path, Graph* out);

/// \brief Load a DIMACS ".co" coordinate file. coords[2*i] = x, [2*i+1] = y
/// for node i (0-indexed after the DIMACS 1-indexing shift).
Status LoadDimacsCoordinates(const std::string& path,
                             std::vector<float>* coords);

}  // namespace saphyra

#endif  // SAPHYRA_GRAPH_IO_H_
