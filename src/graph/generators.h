#ifndef SAPHYRA_GRAPH_GENERATORS_H_
#define SAPHYRA_GRAPH_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace saphyra {

/// Synthetic network generators.
///
/// The paper evaluates on Flickr, LiveJournal, Orkut (SNAP social networks)
/// and USA-road (DIMACS challenge 9). Those corpora are not available
/// offline, so the benchmark harness substitutes generator output with
/// matching structure: heavy-tailed small-diameter social graphs
/// (Barabási–Albert, R-MAT) and a long-diameter, cutpoint-rich road grid
/// with planar coordinates. The real files can be dropped in via graph/io.h
/// without touching any algorithm code.

/// \brief Erdős–Rényi G(n, m): m distinct uniform random edges.
Graph ErdosRenyi(NodeId n, EdgeIndex m, uint64_t seed);

/// \brief Barabási–Albert preferential attachment.
///
/// Starts from a small clique and attaches each new node to
/// `edges_per_node` existing nodes chosen proportionally to degree.
/// Produces the heavy-tailed degree distribution and tiny diameter of the
/// paper's social networks; the graph is connected by construction.
Graph BarabasiAlbert(NodeId n, NodeId edges_per_node, uint64_t seed);

/// \brief Watts–Strogatz small world: ring lattice with rewiring.
Graph WattsStrogatz(NodeId n, NodeId k, double rewire_prob, uint64_t seed);

/// \brief R-MAT (recursive matrix) generator, Graph500-style parameters.
///
/// `scale` gives n = 2^scale nodes; `edge_factor` undirected edges per node.
/// Duplicate edges and self loops are dropped, so the final count is
/// slightly below n * edge_factor.
Graph Rmat(uint32_t scale, uint32_t edge_factor, uint64_t seed,
           double a = 0.57, double b = 0.19, double c = 0.19);

/// \brief Uniform random spanning tree shape (random attachment tree).
///
/// Every edge of a tree is its own biconnected component and every internal
/// node is a cutpoint — the extreme case for the bi-component machinery.
Graph RandomTree(NodeId n, uint64_t seed);

/// \brief Road-network surrogate with coordinates.
struct RoadNetwork {
  Graph graph;
  /// Planar coordinates per node (grid units); used by the USA-road case
  /// study to carve geographic sub-areas like the paper's NYC/BAY/CO/FL.
  std::vector<float> x;
  std::vector<float> y;
};

/// \brief Grid-based road network: width*height junctions, lattice edges,
/// each kept with probability `keep_prob`, restricted to the largest
/// connected component.
///
/// Deleting lattice edges creates bridges, dangling subtrees and many small
/// biconnected components — the block-cut-tree-rich regime of real road
/// networks — while keeping a Θ(width + height) diameter.
RoadNetwork RoadGrid(NodeId width, NodeId height, double keep_prob,
                     uint64_t seed);

/// \brief Nodes whose coordinates fall in [x0,x1] x [y0,y1].
std::vector<NodeId> NodesInRectangle(const RoadNetwork& road, float x0,
                                     float y0, float x1, float y1);

/// \brief Stochastic block model: `blocks` communities of equal size,
/// within-block edge probability `p_in`, cross-block `p_out`.
///
/// Community structure concentrates betweenness on the few cross-block
/// "broker" nodes — a qualitatively different ranking workload from BA/WS.
Graph StochasticBlockModel(NodeId n, uint32_t blocks, double p_in,
                           double p_out, uint64_t seed);

/// \brief Configuration-model graph with the given degree sequence
/// (Σ degrees must be even). Self loops and multi-edges produced by the
/// stub matching are dropped, so realized degrees can be slightly lower.
Graph ConfigurationModel(const std::vector<NodeId>& degrees, uint64_t seed);

/// \brief Power-law degree sequence of length n with exponent `alpha` and
/// degrees in [min_degree, max_degree]; the sum is patched to be even.
std::vector<NodeId> PowerLawDegreeSequence(NodeId n, double alpha,
                                           NodeId min_degree,
                                           NodeId max_degree, uint64_t seed);

/// \brief Connect a possibly-disconnected graph by adding one edge between
/// consecutive components (used to make ER/R-MAT output connected).
Graph PatchConnect(const Graph& g, uint64_t seed);

}  // namespace saphyra

#endif  // SAPHYRA_GRAPH_GENERATORS_H_
