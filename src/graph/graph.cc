#include "graph/graph.h"

#include <algorithm>
#include <cstdio>

namespace saphyra {

bool Graph::HasEdge(NodeId u, NodeId v) const {
  if (u >= num_nodes_ || v >= num_nodes_) return false;
  if (degree(u) > degree(v)) std::swap(u, v);
  auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::vector<std::pair<NodeId, NodeId>> Graph::UndirectedEdges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(num_edges());
  for (NodeId u = 0; u < num_nodes_; ++u) {
    for (NodeId v : neighbors(u)) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

std::string Graph::DebugString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "Graph(n=%u, m=%llu, max_deg=%u)",
                num_nodes_, static_cast<unsigned long long>(num_edges()),
                max_degree_);
  return buf;
}

Status Graph::FromCsr(NodeId num_nodes, NodeId max_degree,
                      ArrayRef<EdgeIndex> offsets, ArrayRef<NodeId> adj,
                      Graph* out) {
  if (offsets.size() != static_cast<size_t>(num_nodes) + 1) {
    return Status::InvalidArgument("CSR offsets array has wrong length");
  }
  if (offsets[0] != 0 || offsets[num_nodes] != adj.size()) {
    return Status::InvalidArgument("CSR offsets do not bound the adjacency");
  }
  // Interior offsets bound every neighbors(v) span; a non-monotonic
  // (corrupt) entry would underflow degree(v) and hand out spans past the
  // backing storage. One sequential pass over 8(n+1) bytes.
  for (NodeId v = 0; v < num_nodes; ++v) {
    if (offsets[v] > offsets[v + 1]) {
      return Status::InvalidArgument("CSR offsets are not monotonic");
    }
  }
  out->num_nodes_ = num_nodes;
  out->max_degree_ = max_degree;
  out->offsets_ = std::move(offsets);
  out->adj_ = std::move(adj);
  return Status::OK();
}

void GraphBuilder::AddEdge(NodeId u, NodeId v) {
  if (u == v) return;
  edges_.emplace_back(u, v);
  max_id_ = std::max(max_id_, std::max(u, v));
  has_edges_ = true;
}

Status GraphBuilder::Build(Graph* out) {
  return Build(has_edges_ ? max_id_ + 1 : 0, out);
}

Status GraphBuilder::Build(NodeId num_nodes, Graph* out) {
  for (const auto& [u, v] : edges_) {
    if (u >= num_nodes || v >= num_nodes) {
      return Status::InvalidArgument("edge endpoint exceeds node count");
    }
  }
  // Count directed arcs, then fill with a second pass (classic CSR build).
  std::vector<EdgeIndex> offsets(static_cast<size_t>(num_nodes) + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++offsets[u + 1];
    ++offsets[v + 1];
  }
  for (size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];
  std::vector<NodeId> adj(edges_.size() * 2);
  std::vector<EdgeIndex> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& [u, v] : edges_) {
    adj[cursor[u]++] = v;
    adj[cursor[v]++] = u;
  }
  // Sort each adjacency list and deduplicate parallel edges in place.
  std::vector<NodeId> dedup;
  dedup.reserve(adj.size());
  std::vector<EdgeIndex> new_offsets(static_cast<size_t>(num_nodes) + 1, 0);
  NodeId max_degree = 0;
  for (NodeId u = 0; u < num_nodes; ++u) {
    auto begin = adj.begin() + static_cast<ptrdiff_t>(offsets[u]);
    auto end = adj.begin() + static_cast<ptrdiff_t>(offsets[u + 1]);
    std::sort(begin, end);
    auto last = std::unique(begin, end);
    dedup.insert(dedup.end(), begin, last);
    new_offsets[u + 1] = dedup.size();
    max_degree = std::max(max_degree, static_cast<NodeId>(last - begin));
  }
  out->num_nodes_ = num_nodes;
  out->max_degree_ = max_degree;
  out->offsets_ = std::move(new_offsets);
  out->adj_ = std::move(dedup);
  return Status::OK();
}

}  // namespace saphyra
