#ifndef SAPHYRA_GRAPH_CONNECTIVITY_H_
#define SAPHYRA_GRAPH_CONNECTIVITY_H_

#include <vector>

#include "graph/graph.h"

namespace saphyra {

/// \brief Connected-component labeling.
struct ComponentLabels {
  /// component[v] in [0, num_components)
  std::vector<NodeId> component;
  /// size[c] = number of nodes in component c
  std::vector<NodeId> size;

  NodeId num_components() const { return static_cast<NodeId>(size.size()); }
};

/// \brief Label connected components with iterative BFS. O(n + m).
ComponentLabels ConnectedComponents(const Graph& g);

/// \brief True iff the graph is connected (empty graphs count as connected).
bool IsConnected(const Graph& g);

/// \brief Extract the largest connected component.
///
/// Nodes are renumbered to 0..k-1 preserving relative order. If
/// `old_to_new` is non-null it receives the mapping (kInvalidNode for nodes
/// outside the component). The paper's datasets are preprocessed the same
/// way: the evaluation operates on each network's giant component.
Graph LargestComponent(const Graph& g,
                       std::vector<NodeId>* old_to_new = nullptr);

}  // namespace saphyra

#endif  // SAPHYRA_GRAPH_CONNECTIVITY_H_
