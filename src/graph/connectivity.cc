#include "graph/connectivity.h"

#include <algorithm>

#include "util/logging.h"

namespace saphyra {

ComponentLabels ConnectedComponents(const Graph& g) {
  ComponentLabels out;
  out.component.assign(g.num_nodes(), kInvalidNode);
  std::vector<NodeId> queue;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (out.component[s] != kInvalidNode) continue;
    NodeId label = out.num_components();
    out.size.push_back(0);
    queue.clear();
    queue.push_back(s);
    out.component[s] = label;
    for (size_t head = 0; head < queue.size(); ++head) {
      NodeId u = queue[head];
      ++out.size[label];
      for (NodeId v : g.neighbors(u)) {
        if (out.component[v] == kInvalidNode) {
          out.component[v] = label;
          queue.push_back(v);
        }
      }
    }
  }
  return out;
}

bool IsConnected(const Graph& g) {
  if (g.num_nodes() == 0) return true;
  return ConnectedComponents(g).num_components() == 1;
}

Graph LargestComponent(const Graph& g, std::vector<NodeId>* old_to_new) {
  ComponentLabels labels = ConnectedComponents(g);
  if (labels.num_components() == 0) {
    if (old_to_new != nullptr) old_to_new->clear();
    return Graph();
  }
  NodeId best = 0;
  for (NodeId c = 1; c < labels.num_components(); ++c) {
    if (labels.size[c] > labels.size[best]) best = c;
  }
  std::vector<NodeId> mapping(g.num_nodes(), kInvalidNode);
  NodeId next = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (labels.component[v] == best) mapping[v] = next++;
  }
  GraphBuilder builder;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (mapping[u] == kInvalidNode) continue;
    for (NodeId v : g.neighbors(u)) {
      if (u < v && mapping[v] != kInvalidNode) {
        builder.AddEdge(mapping[u], mapping[v]);
      }
    }
  }
  Graph out;
  Status st = builder.Build(next, &out);
  SAPHYRA_CHECK_MSG(st.ok(), st.ToString().c_str());
  if (old_to_new != nullptr) *old_to_new = std::move(mapping);
  return out;
}

}  // namespace saphyra
