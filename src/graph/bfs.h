#ifndef SAPHYRA_GRAPH_BFS_H_
#define SAPHYRA_GRAPH_BFS_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "graph/frontier.h"
#include "graph/graph.h"

namespace saphyra {

/// Distance value for unreachable nodes.
constexpr uint32_t kUnreachable = std::numeric_limits<uint32_t>::max();

/// \brief Result of a single-source BFS.
struct BfsResult {
  /// dist[v] = hop distance from the source, kUnreachable if disconnected.
  std::vector<uint32_t> dist;
  /// Nodes in visit order (source first). Useful for reverse sweeps.
  std::vector<NodeId> order;
};

/// \brief Plain single-source BFS over the whole graph.
BfsResult Bfs(const Graph& g, NodeId source);

/// \brief Single-source shortest-path DAG: distances plus path counts.
///
/// sigma[v] = number of distinct shortest paths from the source to v
/// (the sigma_sv of Eq. 3). Counts are doubles, as in Brandes' algorithm:
/// path counts overflow 64-bit integers on large graphs, and the
/// estimators only ever use ratios of counts.
struct SpDag {
  std::vector<uint32_t> dist;
  std::vector<double> sigma;
  std::vector<NodeId> order;  // BFS visit order (non-decreasing distance)
};

/// \brief BFS from `source` computing distances and shortest-path counts.
///
/// If `edge_filter` is non-null, only arcs (u,v) with edge_filter(u,v)==true
/// are traversed; the intra-component samplers use this to restrict the walk
/// to one biconnected component. Filtered traversals always run top-down
/// (a bottom-up pull would test arcs from the wrong side); unfiltered ones
/// honor `policy`. dist/σ are identical for every policy — the hybrid
/// kernel only changes *how* levels are expanded (see DESIGN.md,
/// "Direction-optimizing traversal").
SpDag BfsWithCounts(
    const Graph& g, NodeId source,
    const std::function<bool(NodeId, NodeId)>* edge_filter = nullptr,
    TraversalPolicy policy = TraversalPolicy::kAuto);

/// \brief Reusable direction-optimizing σ-counting BFS.
///
/// The workhorse behind BfsWithCounts and the Brandes forward pass. One
/// instance owns all scratch, so back-to-back runs pay no allocation: the
/// only per-run reset is one dist memset — σ is written at discovery and
/// needs no clearing, and full-graph traversals touch most of dist anyway,
/// so an epoch stamp would only fatten the hot array. Unlike the sampler
/// (whose tiny scattered searches want the packed 16-byte AoS record),
/// the kernel keeps dist/σ as separate dense arrays: the per-arc discovery
/// test then streams a 4-byte dist entry, the same footprint as the
/// textbook loop, with σ touched only on discovery and same-level adds.
///
/// Each level is expanded top-down or, when the policy allows it and
/// DirectionHeuristic fires, bottom-up: unvisited vertices pull from the
/// FrontierSet bitmap of the frontier, accumulating σ over *all* their
/// discovered parents so path counts come out identical in either
/// direction (integer-valued doubles — exact sums, order-independent).
/// The heuristic's frontier arc mass is tracked for free where possible
/// (the expansion's own scan, the pull's discovered degrees) and a
/// max-degree precheck skips the explicit degree pass whenever no switch
/// is remotely possible — the common case on bounded-degree graphs.
///
/// Results are valid until the next Run. Not thread-safe; create one per
/// thread (as ParallelBrandesBetweenness does).
class BfsKernel {
 public:
  explicit BfsKernel(const Graph& g,
                     TraversalPolicy policy = TraversalPolicy::kAuto);

  /// \brief Run a full single-source BFS with path counts.
  void Run(NodeId source);

  /// dist/σ of the latest Run (kUnreachable / 0.0 for untouched nodes).
  uint32_t dist(NodeId v) const { return dist_[v]; }
  double sigma(NodeId v) const {
    return dist_[v] == kUnreachable ? 0.0 : sigma_[v];
  }

  /// \brief Visited nodes of the latest Run in non-decreasing distance
  /// order (source first). Within one level the order depends on the
  /// expansion direction; consumers may rely on the level grouping only.
  std::span<const NodeId> order() const { return {order_.data(), order_size_}; }

  /// \brief Levels of the latest Run expanded bottom-up (diagnostics).
  uint32_t last_bottom_up_levels() const { return bottom_up_levels_; }

  TraversalPolicy policy() const { return policy_; }
  void set_policy(TraversalPolicy policy) { policy_ = policy; }

 private:
  /// Expand one level; returns the arc mass it scanned (the frontier's
  /// arcs top-down, the candidates' arcs bottom-up).
  uint64_t ExpandTopDown(uint32_t new_depth, size_t level_begin,
                         size_t level_end);
  void ExpandBottomUp(uint32_t new_depth, size_t level_begin,
                      size_t level_end);

  const Graph& g_;
  TraversalPolicy policy_;
  std::vector<uint32_t> dist_;
  std::vector<double> sigma_;
  /// `order_` doubles as the BFS queue (the seed's implicit-queue trick,
  /// level slices [begin, end) tracked by Run): no separate frontier list
  /// and no per-level copy.
  std::vector<NodeId> order_;
  size_t order_size_ = 0;
  /// Epoch-reset FrontierSet bitmap of the current frontier, marked at the
  /// start of each bottom-up level: the pull tests membership with one L1
  /// bit probe per arc instead of a 16-byte state-line load.
  FrontierSet frontier_bits_;
  /// Bottom-up candidates: built lazily at the first pull of a run, then
  /// compacted in place (vertices stamped by intervening top-down levels
  /// are dropped on the next pull).
  std::vector<NodeId> unvisited_;
  size_t unvisited_size_ = 0;
  bool unvisited_valid_ = false;
  /// Arc mass of the current frontier when exactly known (source level,
  /// after a pull, after a precheck-triggered degree pass); kUnknownMass
  /// when only the |frontier| × max-degree upper bound is available.
  static constexpr uint64_t kUnknownMass = ~uint64_t{0};
  uint64_t frontier_arcs_ = 0;
  uint64_t explored_arcs_ = 0;   ///< arc mass of all *expanded* levels
  uint32_t bottom_up_levels_ = 0;
};

/// \brief σ-counting BFS over any adjacency adapter (graph/adjacency.h).
///
/// The substrate-generic sibling of BfsWithCounts: runs top-down over
/// whatever neighbor relation the adapter exposes — the global CSR
/// (GlobalAdj), a component view, or a mutation overlay (OverlayAdj in
/// graph/delta_overlay.h). dist/σ/order are identical to BfsWithCounts on
/// the materialized graph: expansion visits each level's vertices in
/// frontier order and each vertex's neighbors in the adapter's (sorted)
/// order, which is exactly the CSR top-down schedule. Used by the overlay
/// differential tests and any traversal that must run pre-compaction.
template <class Adj>
SpDag BfsWithCountsOver(const Adj& adj, NodeId num_nodes, NodeId source) {
  SpDag out;
  out.dist.assign(num_nodes, kUnreachable);
  out.sigma.assign(num_nodes, 0.0);
  out.order.reserve(64);
  out.dist[source] = 0;
  out.sigma[source] = 1.0;
  out.order.push_back(source);
  size_t level_begin = 0;
  uint32_t depth = 0;
  while (level_begin < out.order.size()) {
    const size_t level_end = out.order.size();
    ++depth;
    for (size_t i = level_begin; i < level_end; ++i) {
      const NodeId u = out.order[i];
      const double su = out.sigma[u];
      adj.ForEach(u, [&](NodeId v) {
        if (out.dist[v] == kUnreachable) {
          out.dist[v] = depth;
          out.sigma[v] = su;
          out.order.push_back(v);
        } else if (out.dist[v] == depth) {
          out.sigma[v] += su;
        }
      });
    }
    level_begin = level_end;
  }
  return out;
}

/// \brief Eccentricity of `source` within its connected component.
uint32_t Eccentricity(const Graph& g, NodeId source);

/// \brief Lower bound on the diameter via the classic double-sweep heuristic.
///
/// BFS from `seed`, then BFS again from the farthest node found; the second
/// eccentricity is a diameter lower bound (and is exact on trees).
uint32_t TwoSweepDiameterLowerBound(const Graph& g, NodeId seed = 0);

/// \brief Upper bound on the diameter: 2 * eccentricity(seed).
uint32_t DiameterUpperBound(const Graph& g, NodeId seed = 0);

/// \brief Exact diameter by running BFS from every node. O(nm); tests only.
uint32_t ExactDiameter(const Graph& g);

/// \brief Reusable BFS scratch space for hot sampling loops.
///
/// The samplers run millions of truncated BFS traversals; allocating the
/// dist/sigma arrays each time would dominate. BfsScratch keeps the arrays
/// alive and resets only the touched entries (epoch trick) between runs.
class BfsScratch {
 public:
  explicit BfsScratch(NodeId num_nodes);

  /// dist/sigma views valid until the next Reset().
  uint32_t dist(NodeId v) const {
    return epoch_of_[v] == epoch_ ? dist_[v] : kUnreachable;
  }
  double sigma(NodeId v) const {
    return epoch_of_[v] == epoch_ ? sigma_[v] : 0.0;
  }

  void set_dist(NodeId v, uint32_t d) {
    Touch(v);
    dist_[v] = d;
  }
  void set_sigma(NodeId v, double s) {
    Touch(v);
    sigma_[v] = s;
  }
  void add_sigma(NodeId v, double s) {
    Touch(v);
    sigma_[v] += s;
  }

  /// \brief Invalidate all entries in O(1).
  void Reset() { ++epoch_; }

 private:
  void Touch(NodeId v) {
    if (epoch_of_[v] != epoch_) {
      epoch_of_[v] = epoch_;
      dist_[v] = kUnreachable;
      sigma_[v] = 0.0;
    }
  }

  std::vector<uint32_t> dist_;
  std::vector<double> sigma_;
  std::vector<uint64_t> epoch_of_;
  uint64_t epoch_ = 1;
};

}  // namespace saphyra

#endif  // SAPHYRA_GRAPH_BFS_H_
