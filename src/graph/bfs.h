#ifndef SAPHYRA_GRAPH_BFS_H_
#define SAPHYRA_GRAPH_BFS_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "graph/graph.h"

namespace saphyra {

/// Distance value for unreachable nodes.
constexpr uint32_t kUnreachable = std::numeric_limits<uint32_t>::max();

/// \brief Result of a single-source BFS.
struct BfsResult {
  /// dist[v] = hop distance from the source, kUnreachable if disconnected.
  std::vector<uint32_t> dist;
  /// Nodes in visit order (source first). Useful for reverse sweeps.
  std::vector<NodeId> order;
};

/// \brief Plain single-source BFS over the whole graph.
BfsResult Bfs(const Graph& g, NodeId source);

/// \brief Single-source shortest-path DAG: distances plus path counts.
///
/// sigma[v] = number of distinct shortest paths from the source to v
/// (the sigma_sv of Eq. 3). Counts are doubles, as in Brandes' algorithm:
/// path counts overflow 64-bit integers on large graphs, and the
/// estimators only ever use ratios of counts.
struct SpDag {
  std::vector<uint32_t> dist;
  std::vector<double> sigma;
  std::vector<NodeId> order;  // BFS visit order (non-decreasing distance)
};

/// \brief BFS from `source` computing distances and shortest-path counts.
///
/// If `edge_filter` is non-null, only arcs (u,v) with edge_filter(u,v)==true
/// are traversed; the intra-component samplers use this to restrict the walk
/// to one biconnected component.
SpDag BfsWithCounts(
    const Graph& g, NodeId source,
    const std::function<bool(NodeId, NodeId)>* edge_filter = nullptr);

/// \brief Eccentricity of `source` within its connected component.
uint32_t Eccentricity(const Graph& g, NodeId source);

/// \brief Lower bound on the diameter via the classic double-sweep heuristic.
///
/// BFS from `seed`, then BFS again from the farthest node found; the second
/// eccentricity is a diameter lower bound (and is exact on trees).
uint32_t TwoSweepDiameterLowerBound(const Graph& g, NodeId seed = 0);

/// \brief Upper bound on the diameter: 2 * eccentricity(seed).
uint32_t DiameterUpperBound(const Graph& g, NodeId seed = 0);

/// \brief Exact diameter by running BFS from every node. O(nm); tests only.
uint32_t ExactDiameter(const Graph& g);

/// \brief Reusable BFS scratch space for hot sampling loops.
///
/// The samplers run millions of truncated BFS traversals; allocating the
/// dist/sigma arrays each time would dominate. BfsScratch keeps the arrays
/// alive and resets only the touched entries (epoch trick) between runs.
class BfsScratch {
 public:
  explicit BfsScratch(NodeId num_nodes);

  /// dist/sigma views valid until the next Reset().
  uint32_t dist(NodeId v) const {
    return epoch_of_[v] == epoch_ ? dist_[v] : kUnreachable;
  }
  double sigma(NodeId v) const {
    return epoch_of_[v] == epoch_ ? sigma_[v] : 0.0;
  }

  void set_dist(NodeId v, uint32_t d) {
    Touch(v);
    dist_[v] = d;
  }
  void set_sigma(NodeId v, double s) {
    Touch(v);
    sigma_[v] = s;
  }
  void add_sigma(NodeId v, double s) {
    Touch(v);
    sigma_[v] += s;
  }

  /// \brief Invalidate all entries in O(1).
  void Reset() { ++epoch_; }

 private:
  void Touch(NodeId v) {
    if (epoch_of_[v] != epoch_) {
      epoch_of_[v] = epoch_;
      dist_[v] = kUnreachable;
      sigma_[v] = 0.0;
    }
  }

  std::vector<uint32_t> dist_;
  std::vector<double> sigma_;
  std::vector<uint64_t> epoch_of_;
  uint64_t epoch_ = 1;
};

}  // namespace saphyra

#endif  // SAPHYRA_GRAPH_BFS_H_
