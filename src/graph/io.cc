#include "graph/io.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>

namespace saphyra {

namespace {

/// Drop trailing CR / spaces / tabs. Windows-edited corpora arrive with
/// CRLF line endings, which std::getline leaves on the line; without this a
/// blank "\r\n" line (or trailing whitespace after the second id) fails the
/// edge parse.
void StripTrailingWhitespace(std::string* line) {
  while (!line->empty()) {
    const char c = line->back();
    if (c != '\r' && c != ' ' && c != '\t') break;
    line->pop_back();
  }
}

}  // namespace

Status LoadSnapEdgeList(const std::string& path, Graph* out,
                        bool compact_ids) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  GraphBuilder builder;
  std::unordered_map<uint64_t, NodeId> remap;
  std::string line;
  uint64_t line_no = 0;
  auto map_id = [&](uint64_t raw) -> NodeId {
    if (!compact_ids) return static_cast<NodeId>(raw);
    auto [it, inserted] = remap.emplace(raw, static_cast<NodeId>(remap.size()));
    (void)inserted;
    return it->second;
  };
  while (std::getline(in, line)) {
    ++line_no;
    StripTrailingWhitespace(&line);
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    uint64_t u, v;
    std::istringstream ss(line);
    if (!(ss >> u >> v)) {
      return Status::IOError("malformed edge at " + path + ":" +
                             std::to_string(line_no));
    }
    if (!compact_ids && (u > 0xFFFFFFFFull || v > 0xFFFFFFFFull)) {
      return Status::IOError("node id overflows 32 bits at line " +
                             std::to_string(line_no));
    }
    builder.AddEdge(map_id(u), map_id(v));
  }
  return builder.Build(out);
}

Status SaveSnapEdgeList(const Graph& g, const std::string& path) {
  std::ofstream outf(path);
  if (!outf) return Status::IOError("cannot open " + path + " for writing");
  outf << "# saphyra edge list: n=" << g.num_nodes()
       << " m=" << g.num_edges() << "\n";
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (u < v) outf << u << '\t' << v << '\n';
    }
  }
  if (!outf) return Status::IOError("write failure on " + path);
  return Status::OK();
}

Status LoadDimacsGraph(const std::string& path, Graph* out) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  GraphBuilder builder;
  std::string line;
  uint64_t declared_nodes = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    StripTrailingWhitespace(&line);
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream ss(line);
    char tag;
    ss >> tag;
    if (tag == 'p') {
      std::string kind;
      uint64_t n = 0, m = 0;
      if (!(ss >> kind >> n >> m)) {
        return Status::IOError("malformed problem line in " + path);
      }
      declared_nodes = n;
      saw_header = true;
    } else if (tag == 'a' || tag == 'e') {
      uint64_t u, v;
      if (!(ss >> u >> v)) {
        return Status::IOError("malformed arc line in " + path);
      }
      if (u == 0 || v == 0) {
        return Status::IOError("DIMACS ids are 1-indexed; got 0 in " + path);
      }
      builder.AddEdge(static_cast<NodeId>(u - 1), static_cast<NodeId>(v - 1));
    }
  }
  if (!saw_header) return Status::IOError("missing 'p' header in " + path);
  return builder.Build(static_cast<NodeId>(declared_nodes), out);
}

Status LoadDimacsCoordinates(const std::string& path,
                             std::vector<float>* coords) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  coords->clear();
  std::string line;
  while (std::getline(in, line)) {
    StripTrailingWhitespace(&line);
    if (line.empty() || line[0] == 'c' || line[0] == 'p') continue;
    std::istringstream ss(line);
    char tag;
    uint64_t id;
    double x, y;
    ss >> tag;
    if (tag != 'v') continue;
    if (!(ss >> id >> x >> y)) {
      return Status::IOError("malformed coordinate line in " + path);
    }
    if (id == 0) return Status::IOError("DIMACS ids are 1-indexed");
    size_t need = 2 * id;  // ids are 1-indexed
    if (coords->size() < need) coords->resize(need, 0.0f);
    (*coords)[2 * (id - 1)] = static_cast<float>(x);
    (*coords)[2 * (id - 1) + 1] = static_cast<float>(y);
  }
  return Status::OK();
}

}  // namespace saphyra
