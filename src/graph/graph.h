#ifndef SAPHYRA_GRAPH_GRAPH_H_
#define SAPHYRA_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "graph/storage.h"
#include "util/status.h"

namespace saphyra {

/// Node identifier. 32 bits covers the graph sizes this build targets
/// (hundreds of millions of nodes) at half the memory of 64-bit ids.
using NodeId = uint32_t;

/// Edge-array index (CSR offset). 64-bit: edge counts exceed 2^32 on the
/// paper's largest inputs.
using EdgeIndex = uint64_t;

constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// \brief Immutable undirected, unweighted graph in CSR form.
///
/// This is the substrate every algorithm in the library runs on. The paper
/// treats all networks as undirected and unweighted (§V-A); each undirected
/// edge {u,v} is stored twice (u→v and v→u). Adjacency lists are sorted,
/// which gives O(log deg) membership tests (used heavily by the 2-hop exact
/// subspace computation) and deterministic iteration order.
///
/// Construction goes through GraphBuilder, which deduplicates parallel edges
/// and removes self loops. The CSR arrays live in ArrayRefs, so a Graph can
/// either own them (builder, generators) or view them zero-copy inside an
/// mmap'ed `.sgr` cache file (graph/binary_io.h); algorithms cannot tell
/// the difference.
class Graph {
 public:
  Graph() = default;

  /// \brief Number of nodes.
  NodeId num_nodes() const { return num_nodes_; }

  /// \brief Number of undirected edges (each counted once).
  EdgeIndex num_edges() const { return adj_.size() / 2; }

  /// \brief Number of directed arcs stored (2 * num_edges()).
  EdgeIndex num_arcs() const { return adj_.size(); }

  /// \brief Degree of node v.
  NodeId degree(NodeId v) const {
    return static_cast<NodeId>(offsets_[v + 1] - offsets_[v]);
  }

  /// \brief Sorted neighbors of node v.
  std::span<const NodeId> neighbors(NodeId v) const {
    return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
  }

  /// \brief CSR offset of the first neighbor of v (for edge-parallel data).
  EdgeIndex offset(NodeId v) const { return offsets_[v]; }

  /// \brief True iff the undirected edge {u, v} exists. O(log min-degree).
  bool HasEdge(NodeId u, NodeId v) const;

  /// \brief Maximum degree over all nodes (0 for the empty graph).
  NodeId max_degree() const { return max_degree_; }

  /// \brief All undirected edges as (u, v) pairs with u < v.
  std::vector<std::pair<NodeId, NodeId>> UndirectedEdges() const;

  /// \brief Short "n=..., m=..." summary for logs and bench headers.
  std::string DebugString() const;

  /// \brief The raw CSR arrays (serialization / bulk-copy access).
  std::span<const EdgeIndex> raw_offsets() const { return offsets_.span(); }
  std::span<const NodeId> raw_adj() const { return adj_.span(); }

  /// \brief True when the CSR arrays view foreign storage (a mapped cache).
  bool is_view() const { return offsets_.is_view() || adj_.is_view(); }

  /// \brief Assemble a Graph directly from CSR arrays (deserialization).
  ///
  /// `offsets` must have num_nodes+1 entries with offsets[0] == 0 and
  /// offsets[num_nodes] == adj.size(); adjacency lists must be sorted, as
  /// GraphBuilder produces them. Only the boundary invariants are checked
  /// here — the `.sgr` reader owns the trust model (see DESIGN.md).
  static Status FromCsr(NodeId num_nodes, NodeId max_degree,
                        ArrayRef<EdgeIndex> offsets, ArrayRef<NodeId> adj,
                        Graph* out);

 private:
  friend class GraphBuilder;

  NodeId num_nodes_ = 0;
  NodeId max_degree_ = 0;
  ArrayRef<EdgeIndex> offsets_;  // size num_nodes_ + 1
  ArrayRef<NodeId> adj_;         // size num_arcs
};

/// \brief Accumulates an edge list and produces a canonical Graph.
///
/// Self loops are dropped; parallel edges are deduplicated; adjacency lists
/// come out sorted. Node ids must be < the node count passed to Build (or
/// the maximum id + 1 when auto-sizing).
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// \brief Pre-size the internal edge buffer.
  void Reserve(size_t num_edges) { edges_.reserve(num_edges); }

  /// \brief Add an undirected edge {u, v}. Self loops are ignored.
  void AddEdge(NodeId u, NodeId v);

  /// \brief Number of edges added so far (before dedup).
  size_t num_pending_edges() const { return edges_.size(); }

  /// \brief Build the CSR graph with exactly `num_nodes` nodes.
  ///
  /// Returns InvalidArgument if any endpoint is >= num_nodes.
  Status Build(NodeId num_nodes, Graph* out);

  /// \brief Build, sizing the node count as max id + 1.
  Status Build(Graph* out);

 private:
  std::vector<std::pair<NodeId, NodeId>> edges_;
  NodeId max_id_ = 0;
  bool has_edges_ = false;
};

}  // namespace saphyra

#endif  // SAPHYRA_GRAPH_GRAPH_H_
