#include "graph/bfs.h"

#include <algorithm>

namespace saphyra {

BfsResult Bfs(const Graph& g, NodeId source) {
  BfsResult r;
  r.dist.assign(g.num_nodes(), kUnreachable);
  r.order.reserve(g.num_nodes());
  r.dist[source] = 0;
  r.order.push_back(source);
  for (size_t head = 0; head < r.order.size(); ++head) {
    NodeId u = r.order[head];
    uint32_t du = r.dist[u];
    for (NodeId v : g.neighbors(u)) {
      if (r.dist[v] == kUnreachable) {
        r.dist[v] = du + 1;
        r.order.push_back(v);
      }
    }
  }
  return r;
}

namespace {

/// Shared BFS/σ core, templated over the edge filter so the unfiltered
/// instantiation carries no per-arc indirect call or null check at all.
template <class Filter>
SpDag BfsWithCountsImpl(const Graph& g, NodeId source, Filter allowed) {
  SpDag r;
  r.dist.assign(g.num_nodes(), kUnreachable);
  r.sigma.assign(g.num_nodes(), 0.0);
  r.order.reserve(g.num_nodes());
  r.dist[source] = 0;
  r.sigma[source] = 1.0;
  r.order.push_back(source);
  for (size_t head = 0; head < r.order.size(); ++head) {
    NodeId u = r.order[head];
    uint32_t du = r.dist[u];
    for (NodeId v : g.neighbors(u)) {
      if (!allowed(u, v)) continue;
      if (r.dist[v] == kUnreachable) {
        r.dist[v] = du + 1;
        r.order.push_back(v);
      }
      if (r.dist[v] == du + 1) {
        r.sigma[v] += r.sigma[u];
      }
    }
  }
  return r;
}

}  // namespace

SpDag BfsWithCounts(const Graph& g, NodeId source,
                    const std::function<bool(NodeId, NodeId)>* edge_filter) {
  if (edge_filter == nullptr) {
    return BfsWithCountsImpl(g, source, [](NodeId, NodeId) { return true; });
  }
  return BfsWithCountsImpl(
      g, source, [edge_filter](NodeId u, NodeId v) {
        return (*edge_filter)(u, v);
      });
}

uint32_t Eccentricity(const Graph& g, NodeId source) {
  BfsResult r = Bfs(g, source);
  uint32_t ecc = 0;
  for (uint32_t d : r.dist) {
    if (d != kUnreachable) ecc = std::max(ecc, d);
  }
  return ecc;
}

uint32_t TwoSweepDiameterLowerBound(const Graph& g, NodeId seed) {
  if (g.num_nodes() == 0) return 0;
  BfsResult first = Bfs(g, seed);
  NodeId far = seed;
  uint32_t best = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (first.dist[v] != kUnreachable && first.dist[v] > best) {
      best = first.dist[v];
      far = v;
    }
  }
  return Eccentricity(g, far);
}

uint32_t DiameterUpperBound(const Graph& g, NodeId seed) {
  if (g.num_nodes() == 0) return 0;
  return 2 * Eccentricity(g, seed);
}

uint32_t ExactDiameter(const Graph& g) {
  uint32_t diam = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    diam = std::max(diam, Eccentricity(g, v));
  }
  return diam;
}

BfsScratch::BfsScratch(NodeId num_nodes)
    : dist_(num_nodes, kUnreachable),
      sigma_(num_nodes, 0.0),
      epoch_of_(num_nodes, 0) {}

}  // namespace saphyra
