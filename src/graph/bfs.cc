#include "graph/bfs.h"

#include <algorithm>

namespace saphyra {

BfsResult Bfs(const Graph& g, NodeId source) {
  BfsResult r;
  r.dist.assign(g.num_nodes(), kUnreachable);
  r.order.reserve(g.num_nodes());
  r.dist[source] = 0;
  r.order.push_back(source);
  for (size_t head = 0; head < r.order.size(); ++head) {
    NodeId u = r.order[head];
    uint32_t du = r.dist[u];
    for (NodeId v : g.neighbors(u)) {
      if (r.dist[v] == kUnreachable) {
        r.dist[v] = du + 1;
        r.order.push_back(v);
      }
    }
  }
  return r;
}

namespace {

/// Filtered BFS/σ core. Only the per-arc-filtered traversal still walks
/// this path; unfiltered traversals go through the direction-optimizing
/// BfsKernel below.
template <class Filter>
SpDag BfsWithCountsImpl(const Graph& g, NodeId source, Filter allowed) {
  SpDag r;
  r.dist.assign(g.num_nodes(), kUnreachable);
  r.sigma.assign(g.num_nodes(), 0.0);
  r.order.reserve(g.num_nodes());
  r.dist[source] = 0;
  r.sigma[source] = 1.0;
  r.order.push_back(source);
  for (size_t head = 0; head < r.order.size(); ++head) {
    NodeId u = r.order[head];
    uint32_t du = r.dist[u];
    for (NodeId v : g.neighbors(u)) {
      if (!allowed(u, v)) continue;
      if (r.dist[v] == kUnreachable) {
        r.dist[v] = du + 1;
        r.order.push_back(v);
      }
      if (r.dist[v] == du + 1) {
        r.sigma[v] += r.sigma[u];
      }
    }
  }
  return r;
}

}  // namespace

BfsKernel::BfsKernel(const Graph& g, TraversalPolicy policy)
    : g_(g),
      policy_(policy),
      dist_(g.num_nodes(), kUnreachable),
      sigma_(g.num_nodes(), 0.0),
      order_(g.num_nodes()),
      frontier_bits_(g.num_nodes()),
      unvisited_(g.num_nodes()) {}

void BfsKernel::Run(NodeId source) {
  std::fill(dist_.begin(), dist_.end(), kUnreachable);
  unvisited_valid_ = false;
  bottom_up_levels_ = 0;
  dist_[source] = 0;
  sigma_[source] = 1.0;
  order_size_ = 0;
  order_[order_size_++] = source;
  const bool hybrid = policy_ != TraversalPolicy::kTopDown;
  frontier_arcs_ = g_.degree(source);  // exact for the source level
  explored_arcs_ = 0;
  size_t level_begin = 0;
  for (uint32_t depth = 1; level_begin < order_size_; ++depth) {
    const size_t level_end = order_size_;
    bool pull = false;
    if (hybrid) {
      // Decide the direction. mu_remaining counts the arcs of everything
      // not yet *expanded* (current frontier + unexplored); the pull also
      // charges the candidate list (O(n) build on the first pull, current
      // length afterwards). When only the |frontier| × max-degree upper
      // bound of the frontier mass is known, a failing precheck on the
      // bound proves the exact test would fail too — the common case on
      // bounded-degree graphs, skipped without any degree pass.
      const uint64_t overhead =
          unvisited_valid_ ? unvisited_size_ : g_.num_nodes();
      const uint64_t mu_remaining = g_.num_arcs() - explored_arcs_;
      uint64_t mf = frontier_arcs_;
      if (mf == kUnknownMass) {
        const uint64_t mf_ub =
            std::min<uint64_t>(static_cast<uint64_t>(level_end - level_begin) *
                                   g_.max_degree(),
                               mu_remaining);
        if (DirectionHeuristic::PreferBottomUp(
                mf_ub, mu_remaining - mf_ub + overhead)) {
          mf = 0;  // plausible: pay one degree pass for the exact mass
          for (size_t i = level_begin; i < level_end; ++i) {
            mf += g_.degree(order_[i]);
          }
          frontier_arcs_ = mf;
        }
      }
      if (mf != kUnknownMass &&
          DirectionHeuristic::PreferBottomUp(mf,
                                             mu_remaining - mf + overhead)) {
        pull = true;
      }
    }
    if (pull) {
      // The frontier's own arcs are never scanned by the pull; account
      // them as expanded using the exact mass computed above.
      explored_arcs_ += frontier_arcs_;
      ExpandBottomUp(depth, level_begin, level_end);
      ++bottom_up_levels_;
    } else {
      const uint64_t scanned = ExpandTopDown(depth, level_begin, level_end);
      explored_arcs_ += scanned;  // scanned == this frontier's exact mass
      frontier_arcs_ = kUnknownMass;  // new level's mass: not yet known
    }
    level_begin = level_end;
  }
}

uint64_t BfsKernel::ExpandTopDown(uint32_t new_depth, size_t level_begin,
                                  size_t level_end) {
  NodeId* order = order_.data();
  size_t out = order_size_;
  uint64_t scanned = 0;
  auto visit = [&](NodeId v, double su) {
    if (dist_[v] == kUnreachable) {
      dist_[v] = new_depth;
      sigma_[v] = su;
      order[out++] = v;
    } else if (dist_[v] == new_depth) {
      sigma_[v] += su;
    }
  };
  for (size_t fi = level_begin; fi < level_end; ++fi) {
    const NodeId u = order[fi];
    const double su = sigma_[u];
    // No prefetching here, deliberately: the hot random access is a 4-byte
    // dist entry whose working set is dense, and on bounded-degree graphs
    // even computing a lookahead address costs more than it hides. Dense
    // hub levels — where latency would bite — are exactly the levels the
    // bottom-up pull takes over.
    const auto nbr = g_.neighbors(u);
    scanned += nbr.size();
    for (NodeId v : nbr) visit(v, su);
  }
  order_size_ = out;
  return scanned;
}

void BfsKernel::ExpandBottomUp(uint32_t new_depth, size_t level_begin,
                               size_t level_end) {
  // Candidate list: built on the first pull of this run, compacted on
  // every pull (survivors stay, vertices stamped since last pull drop out).
  if (!unvisited_valid_) {
    size_t k = 0;
    for (NodeId v = 0; v < g_.num_nodes(); ++v) {
      if (dist_[v] == kUnreachable) unvisited_[k++] = v;
    }
    unvisited_size_ = k;
    unvisited_valid_ = true;
  }
  // Mark the current frontier in the FrontierSet bitmap: one bit probe per
  // scanned arc below instead of a dist-line touch.
  frontier_bits_.BeginEpoch();
  for (size_t i = level_begin; i < level_end; ++i) {
    frontier_bits_.Mark(order_[i]);
  }
  NodeId* order = order_.data();
  size_t out = order_size_;
  uint64_t cost = 0;
  NodeId* cand = unvisited_.data();
  size_t remaining = 0;
  for (size_t i = 0; i < unvisited_size_; ++i) {
    const NodeId v = cand[i];
    if (dist_[v] != kUnreachable) continue;  // stamped by a top-down level
    if (i + 4 < unvisited_size_) {
      __builtin_prefetch(g_.neighbors(cand[i + 4]).data(), 0, 2);
    }
    // σ needs the full parent mass: scan every arc, no early exit.
    const auto nbr = g_.neighbors(v);
    double acc = 0.0;
    for (NodeId u : nbr) {
      if (frontier_bits_.Test(u)) acc += sigma_[u];
    }
    if (acc != 0.0) {
      dist_[v] = new_depth;
      sigma_[v] = acc;
      order[out++] = v;
      cost += nbr.size();  // deg(v), already in hand
    } else {
      cand[remaining++] = v;
    }
  }
  unvisited_size_ = remaining;
  order_size_ = out;
  frontier_arcs_ = cost;  // the pull knows its new level's mass exactly
}

SpDag BfsWithCounts(const Graph& g, NodeId source,
                    const std::function<bool(NodeId, NodeId)>* edge_filter,
                    TraversalPolicy policy) {
  if (edge_filter != nullptr) {
    return BfsWithCountsImpl(
        g, source, [edge_filter](NodeId u, NodeId v) {
          return (*edge_filter)(u, v);
        });
  }
  BfsKernel kernel(g, policy);
  kernel.Run(source);
  SpDag r;
  r.dist.assign(g.num_nodes(), kUnreachable);
  r.sigma.assign(g.num_nodes(), 0.0);
  r.order.assign(kernel.order().begin(), kernel.order().end());
  for (NodeId v : r.order) {
    r.dist[v] = kernel.dist(v);
    r.sigma[v] = kernel.sigma(v);
  }
  return r;
}

uint32_t Eccentricity(const Graph& g, NodeId source) {
  BfsResult r = Bfs(g, source);
  uint32_t ecc = 0;
  for (uint32_t d : r.dist) {
    if (d != kUnreachable) ecc = std::max(ecc, d);
  }
  return ecc;
}

uint32_t TwoSweepDiameterLowerBound(const Graph& g, NodeId seed) {
  if (g.num_nodes() == 0) return 0;
  BfsResult first = Bfs(g, seed);
  NodeId far = seed;
  uint32_t best = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (first.dist[v] != kUnreachable && first.dist[v] > best) {
      best = first.dist[v];
      far = v;
    }
  }
  return Eccentricity(g, far);
}

uint32_t DiameterUpperBound(const Graph& g, NodeId seed) {
  if (g.num_nodes() == 0) return 0;
  return 2 * Eccentricity(g, seed);
}

uint32_t ExactDiameter(const Graph& g) {
  uint32_t diam = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    diam = std::max(diam, Eccentricity(g, v));
  }
  return diam;
}

BfsScratch::BfsScratch(NodeId num_nodes)
    : dist_(num_nodes, kUnreachable),
      sigma_(num_nodes, 0.0),
      epoch_of_(num_nodes, 0) {}

}  // namespace saphyra
