#ifndef SAPHYRA_GRAPH_FRONTIER_H_
#define SAPHYRA_GRAPH_FRONTIER_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace saphyra {

/// \brief How level-synchronous traversals explore the graph.
///
/// Orthogonal to SamplingStrategy (which picks *what* is searched —
/// unidirectional vs. bidirectional); the traversal policy picks *how* each
/// BFS level is expanded:
///
///  * kTopDown  — classic push: scan the frontier's out-arcs, discover
///                unvisited endpoints. Cost per level: |frontier arcs|.
///  * kHybrid   — direction-optimizing: when the frontier's arc mass
///                dominates the unexplored remainder (see
///                DirectionHeuristic), flip to a bottom-up pull — scan the
///                still-unvisited vertices' arcs against a bitmap of the
///                frontier. Cost per level: |unexplored arcs|, which in the
///                dense-frontier regime is far smaller. Produces identical
///                dist/σ values (see DESIGN.md, "Direction-optimizing
///                traversal").
///  * kAuto     — let the library choose; currently identical to kHybrid on
///                every substrate that supports a bottom-up scan (plain CSR,
///                component views) and kTopDown elsewhere (per-arc filtered
///                traversals, where arcs cannot be pulled without re-testing
///                the filter from the wrong side).
enum class TraversalPolicy : uint8_t {
  kAuto = 0,
  kTopDown = 1,
  kHybrid = 2,
};

/// \brief CLI spelling of a policy (matches `--strategy`).
inline const char* TraversalPolicyName(TraversalPolicy p) {
  switch (p) {
    case TraversalPolicy::kTopDown: return "topdown";
    case TraversalPolicy::kHybrid: return "hybrid";
    default: return "auto";
  }
}

/// \brief Parse the `--strategy` spelling; returns false on unknown input.
inline bool ParseTraversalPolicy(const std::string& s, TraversalPolicy* out) {
  if (s == "auto") {
    *out = TraversalPolicy::kAuto;
  } else if (s == "topdown") {
    *out = TraversalPolicy::kTopDown;
  } else if (s == "hybrid") {
    *out = TraversalPolicy::kHybrid;
  } else {
    return false;
  }
  return true;
}

/// \brief The classic |frontier arcs| vs. |unexplored arcs| switch.
///
/// Beamer's direction-optimizing BFS flips to bottom-up when the frontier
/// carries more than 1/α of the unexplored arc mass. The textbook α ≈ 14
/// assumes the pull can stop at the first parent found; a σ-counting BFS
/// must scan *every* arc of an unvisited vertex to accumulate the full
/// path-count mass, so the pull saves less and the switch must be more
/// conservative: α = 2 charges a bottom-up level at most twice the arcs of
/// the top-down level it replaces, which the cheaper per-arc work (a bitmap
/// probe instead of a 16-byte state-line touch) comfortably amortizes.
/// Tiny frontiers never flip — the bitmap build would dominate.
struct DirectionHeuristic {
  static constexpr uint64_t kAlpha = 2;
  static constexpr uint64_t kMinFrontierArcs = 64;

  static bool PreferBottomUp(uint64_t frontier_arcs,
                             uint64_t unexplored_arcs) {
    return frontier_arcs >= kMinFrontierArcs &&
           frontier_arcs * kAlpha >= unexplored_arcs;
  }
};

/// \brief Dual-representation vertex frontier for level-synchronous BFS.
///
/// Holds one BFS level as a *sparse* vertex list (what a top-down push
/// iterates) and, on demand, as a *dense* bitmap (what a bottom-up pull
/// probes). Both sides are preallocated once for a fixed vertex domain and
/// reset in O(1): the sparse side by rewinding its size, the dense side by
/// bumping an epoch counter — each 64-bit bitmap word carries the epoch it
/// was last written in, exactly the reset trick the sampler scratch in
/// bc/path_sampler.h uses per node. A frontier can therefore be re-marked
/// millions of times (once per sampled path) with no O(n) clearing.
///
/// The sparse list owns one slot of slack past the domain size so the
/// branchless expansion idiom (store the push candidate unconditionally,
/// bump the count only on discovery) stays in bounds.
class FrontierSet {
 public:
  FrontierSet() = default;
  explicit FrontierSet(uint32_t domain_size) { Reset(domain_size); }

  /// \brief (Re)allocate for vertex ids in [0, domain_size). Keeps the
  /// bitmap epoch, so previously marked bits stay invalidated.
  void Reset(uint32_t domain_size) {
    domain_size_ = domain_size;
    list_.resize(static_cast<size_t>(domain_size) + 1);
    words_.resize((static_cast<size_t>(domain_size) + 63) / 64);
    size_ = 0;
  }

  uint32_t domain_size() const { return domain_size_; }

  // --- sparse side -------------------------------------------------------

  void Clear() { size_ = 0; }
  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  void Push(uint32_t v) { list_[size_++] = v; }
  /// Raw slot access for the branchless push (one slot of slack past the
  /// domain size is guaranteed).
  uint32_t* data() { return list_.data(); }
  const uint32_t* data() const { return list_.data(); }
  void set_size(size_t n) { size_ = n; }
  std::span<const uint32_t> vertices() const { return {list_.data(), size_}; }

  // --- dense side (epoch-reset bitmap) -----------------------------------

  /// \brief Invalidate every marked bit in O(1).
  void BeginEpoch() { ++epoch_; }

  void Mark(uint32_t v) {
    Word& w = words_[v >> 6];
    if (w.epoch != epoch_) {
      w.epoch = epoch_;
      w.bits = 0;
    }
    w.bits |= uint64_t{1} << (v & 63);
  }

  /// \brief Mark every vertex currently in the sparse list.
  void MarkSparse() {
    for (size_t i = 0; i < size_; ++i) Mark(list_[i]);
  }

  bool Test(uint32_t v) const {
    const Word& w = words_[v >> 6];
    return w.epoch == epoch_ && ((w.bits >> (v & 63)) & 1) != 0;
  }

  /// \brief Swap with another frontier (the level flip: next becomes
  /// current). Swaps both representations and their epochs.
  void Swap(FrontierSet& other) {
    list_.swap(other.list_);
    words_.swap(other.words_);
    std::swap(size_, other.size_);
    std::swap(domain_size_, other.domain_size_);
    std::swap(epoch_, other.epoch_);
  }

 private:
  /// One bitmap word plus the epoch it was written in: 16 bytes per 64
  /// vertices, and a stale word is recognized (and lazily zeroed) by its
  /// epoch instead of an O(n) clear.
  struct Word {
    uint64_t bits = 0;
    uint64_t epoch = 0;
  };

  std::vector<uint32_t> list_;
  std::vector<Word> words_;
  size_t size_ = 0;
  uint32_t domain_size_ = 0;
  uint64_t epoch_ = 1;
};

}  // namespace saphyra

#endif  // SAPHYRA_GRAPH_FRONTIER_H_
