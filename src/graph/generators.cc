#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "graph/connectivity.h"
#include "util/logging.h"
#include "util/rng.h"

namespace saphyra {

namespace {

uint64_t EdgeKey(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

Graph BuildOrDie(GraphBuilder* builder, NodeId n) {
  Graph g;
  Status st = builder->Build(n, &g);
  SAPHYRA_CHECK_MSG(st.ok(), st.ToString().c_str());
  return g;
}

}  // namespace

Graph ErdosRenyi(NodeId n, EdgeIndex m, uint64_t seed) {
  SAPHYRA_CHECK(n >= 2);
  const uint64_t max_edges = static_cast<uint64_t>(n) * (n - 1) / 2;
  SAPHYRA_CHECK_MSG(m <= max_edges, "too many edges requested");
  Rng rng(seed);
  std::unordered_set<uint64_t> seen;
  seen.reserve(m * 2);
  GraphBuilder builder;
  builder.Reserve(m);
  while (seen.size() < m) {
    NodeId u = static_cast<NodeId>(rng.UniformInt(n));
    NodeId v = static_cast<NodeId>(rng.UniformInt(n));
    if (u == v) continue;
    if (seen.insert(EdgeKey(u, v)).second) builder.AddEdge(u, v);
  }
  return BuildOrDie(&builder, n);
}

Graph BarabasiAlbert(NodeId n, NodeId edges_per_node, uint64_t seed) {
  SAPHYRA_CHECK(edges_per_node >= 1);
  SAPHYRA_CHECK(n > edges_per_node);
  Rng rng(seed);
  GraphBuilder builder;
  builder.Reserve(static_cast<size_t>(n) * edges_per_node);
  // Endpoint pool: picking a uniform element of the pool is equivalent to
  // degree-proportional selection.
  std::vector<NodeId> pool;
  pool.reserve(2ULL * n * edges_per_node);
  // Seed clique on the first edges_per_node + 1 nodes keeps the start
  // connected and non-degenerate.
  NodeId seed_nodes = edges_per_node + 1;
  for (NodeId u = 0; u < seed_nodes; ++u) {
    for (NodeId v = u + 1; v < seed_nodes; ++v) {
      builder.AddEdge(u, v);
      pool.push_back(u);
      pool.push_back(v);
    }
  }
  std::vector<NodeId> targets;
  for (NodeId u = seed_nodes; u < n; ++u) {
    targets.clear();
    // Sample edges_per_node distinct targets by rejection; the pool is large
    // relative to edges_per_node so rejections are rare.
    while (targets.size() < edges_per_node) {
      NodeId t = pool[rng.UniformInt(pool.size())];
      if (std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
      }
    }
    for (NodeId t : targets) {
      builder.AddEdge(u, t);
      pool.push_back(u);
      pool.push_back(t);
    }
  }
  return BuildOrDie(&builder, n);
}

Graph WattsStrogatz(NodeId n, NodeId k, double rewire_prob, uint64_t seed) {
  SAPHYRA_CHECK(k >= 2 && k % 2 == 0);
  SAPHYRA_CHECK(n > k);
  Rng rng(seed);
  std::unordered_set<uint64_t> seen;
  GraphBuilder builder;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId j = 1; j <= k / 2; ++j) {
      NodeId v = (u + j) % n;
      if (rng.UniformDouble() < rewire_prob) {
        // Rewire the far endpoint to a uniform random node.
        NodeId w;
        do {
          w = static_cast<NodeId>(rng.UniformInt(n));
        } while (w == u || seen.count(EdgeKey(u, w)) != 0);
        v = w;
      }
      if (seen.insert(EdgeKey(u, v)).second) builder.AddEdge(u, v);
    }
  }
  return PatchConnect(BuildOrDie(&builder, n), seed ^ 0x5151);
}

Graph Rmat(uint32_t scale, uint32_t edge_factor, uint64_t seed, double a,
           double b, double c) {
  SAPHYRA_CHECK(scale >= 2 && scale < 31);
  const NodeId n = static_cast<NodeId>(1) << scale;
  const uint64_t m = static_cast<uint64_t>(n) * edge_factor;
  const double d = 1.0 - a - b - c;
  SAPHYRA_CHECK(d >= 0.0);
  Rng rng(seed);
  GraphBuilder builder;
  builder.Reserve(m);
  for (uint64_t e = 0; e < m; ++e) {
    NodeId u = 0, v = 0;
    for (uint32_t bit = 0; bit < scale; ++bit) {
      double r = rng.UniformDouble();
      // Quadrant choice with slight per-level noise, as in Graph500.
      if (r < a) {
        // top-left: no bits set
      } else if (r < a + b) {
        v |= (1u << bit);
      } else if (r < a + b + c) {
        u |= (1u << bit);
      } else {
        u |= (1u << bit);
        v |= (1u << bit);
      }
    }
    builder.AddEdge(u, v);  // self loops dropped by the builder
  }
  return BuildOrDie(&builder, n);
}

Graph RandomTree(NodeId n, uint64_t seed) {
  SAPHYRA_CHECK(n >= 1);
  Rng rng(seed);
  GraphBuilder builder;
  for (NodeId u = 1; u < n; ++u) {
    NodeId parent = static_cast<NodeId>(rng.UniformInt(u));
    builder.AddEdge(u, parent);
  }
  return BuildOrDie(&builder, n);
}

RoadNetwork RoadGrid(NodeId width, NodeId height, double keep_prob,
                     uint64_t seed) {
  SAPHYRA_CHECK(width >= 2 && height >= 2);
  Rng rng(seed);
  const NodeId n = width * height;
  GraphBuilder builder;
  auto id = [width](NodeId x, NodeId y) { return y * width + x; };
  for (NodeId y = 0; y < height; ++y) {
    for (NodeId x = 0; x < width; ++x) {
      if (x + 1 < width && rng.UniformDouble() < keep_prob) {
        builder.AddEdge(id(x, y), id(x + 1, y));
      }
      if (y + 1 < height && rng.UniformDouble() < keep_prob) {
        builder.AddEdge(id(x, y), id(x, y + 1));
      }
    }
  }
  Graph full = BuildOrDie(&builder, n);
  std::vector<NodeId> mapping;
  Graph lcc = LargestComponent(full, &mapping);
  RoadNetwork out;
  out.x.resize(lcc.num_nodes());
  out.y.resize(lcc.num_nodes());
  for (NodeId y = 0; y < height; ++y) {
    for (NodeId x = 0; x < width; ++x) {
      NodeId nv = mapping[id(x, y)];
      if (nv != kInvalidNode) {
        out.x[nv] = static_cast<float>(x);
        out.y[nv] = static_cast<float>(y);
      }
    }
  }
  out.graph = std::move(lcc);
  return out;
}

std::vector<NodeId> NodesInRectangle(const RoadNetwork& road, float x0,
                                     float y0, float x1, float y1) {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < road.graph.num_nodes(); ++v) {
    if (road.x[v] >= x0 && road.x[v] <= x1 && road.y[v] >= y0 &&
        road.y[v] <= y1) {
      out.push_back(v);
    }
  }
  return out;
}

Graph StochasticBlockModel(NodeId n, uint32_t blocks, double p_in,
                           double p_out, uint64_t seed) {
  SAPHYRA_CHECK(blocks >= 1 && n >= blocks);
  SAPHYRA_CHECK(p_in >= 0.0 && p_in <= 1.0 && p_out >= 0.0 && p_out <= 1.0);
  Rng rng(seed);
  const NodeId block_size = n / blocks;
  auto block_of = [&](NodeId v) {
    return std::min<uint32_t>(v / block_size, blocks - 1);
  };
  GraphBuilder b;
  // Geometric skipping keeps the sparse case O(n + edges): within each row
  // u the next accepted candidate v jumps ahead by ~Geom(p).
  auto add_row = [&](NodeId u, double p, bool same_block) {
    if (p <= 0.0) return;
    const double log1mp = std::log1p(-std::min(p, 1.0 - 1e-12));
    NodeId v = u;  // candidates are v in (u, n)
    for (;;) {
      uint64_t skip =
          p >= 1.0 ? 0
                   : static_cast<uint64_t>(std::floor(
                         std::log1p(-rng.UniformDouble()) / log1mp));
      if (skip >= static_cast<uint64_t>(n - v)) break;
      v = static_cast<NodeId>(v + 1 + skip);
      if (v >= n) break;
      if ((block_of(u) == block_of(v)) == same_block) b.AddEdge(u, v);
    }
  };
  for (NodeId u = 0; u + 1 < n; ++u) {
    add_row(u, p_in, /*same_block=*/true);
    if (blocks > 1) add_row(u, p_out, /*same_block=*/false);
  }
  return BuildOrDie(&b, n);
}

std::vector<NodeId> PowerLawDegreeSequence(NodeId n, double alpha,
                                           NodeId min_degree,
                                           NodeId max_degree, uint64_t seed) {
  SAPHYRA_CHECK(alpha > 1.0);
  SAPHYRA_CHECK(min_degree >= 1 && max_degree >= min_degree);
  Rng rng(seed);
  std::vector<NodeId> degrees(n);
  const double a = 1.0 - alpha;
  const double lo = std::pow(static_cast<double>(min_degree), a);
  const double hi = std::pow(static_cast<double>(max_degree) + 1.0, a);
  uint64_t sum = 0;
  for (NodeId i = 0; i < n; ++i) {
    // Inverse-CDF sampling of a bounded power law.
    double u = rng.UniformDouble();
    double d = std::pow(lo + u * (hi - lo), 1.0 / a);
    degrees[i] = std::min<NodeId>(
        max_degree,
        std::max<NodeId>(min_degree, static_cast<NodeId>(d)));
    sum += degrees[i];
  }
  if (sum % 2 == 1) ++degrees[0];  // stub count must be even
  return degrees;
}

Graph ConfigurationModel(const std::vector<NodeId>& degrees, uint64_t seed) {
  uint64_t stubs_total = 0;
  for (NodeId d : degrees) stubs_total += d;
  SAPHYRA_CHECK_MSG(stubs_total % 2 == 0, "degree sum must be even");
  Rng rng(seed);
  std::vector<NodeId> stubs;
  stubs.reserve(stubs_total);
  for (NodeId v = 0; v < degrees.size(); ++v) {
    for (NodeId j = 0; j < degrees[v]; ++j) stubs.push_back(v);
  }
  // Fisher–Yates shuffle, then pair consecutive stubs.
  for (size_t i = stubs.size(); i > 1; --i) {
    size_t j = rng.UniformInt(i);
    std::swap(stubs[i - 1], stubs[j]);
  }
  GraphBuilder b;
  b.Reserve(stubs.size() / 2);
  for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
    b.AddEdge(stubs[i], stubs[i + 1]);  // self loops dropped by the builder
  }
  return BuildOrDie(&b, static_cast<NodeId>(degrees.size()));
}

Graph PatchConnect(const Graph& g, uint64_t seed) {
  ComponentLabels labels = ConnectedComponents(g);
  if (labels.num_components() <= 1) return g;
  Rng rng(seed);
  // One representative per component; chain them with random offsets so the
  // patch edges do not all share endpoints.
  std::vector<NodeId> rep(labels.num_components(), kInvalidNode);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    NodeId c = labels.component[v];
    if (rep[c] == kInvalidNode || rng.Bernoulli(0.25)) rep[c] = v;
  }
  GraphBuilder builder;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (u < v) builder.AddEdge(u, v);
    }
  }
  for (NodeId c = 1; c < labels.num_components(); ++c) {
    builder.AddEdge(rep[c - 1], rep[c]);
  }
  Graph out;
  Status st = builder.Build(g.num_nodes(), &out);
  SAPHYRA_CHECK_MSG(st.ok(), st.ToString().c_str());
  return out;
}

}  // namespace saphyra
