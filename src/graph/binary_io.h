#ifndef SAPHYRA_GRAPH_BINARY_IO_H_
#define SAPHYRA_GRAPH_BINARY_IO_H_

/// \file
/// The `.sgr` binary graph cache: a versioned, 64-byte-aligned, mmap-ready
/// on-disk image of a CSR graph plus (optionally) its full SaPHyRa
/// preprocessing — biconnected labels, connectivity, block-cut-tree
/// out-reach table, and the per-component CSR views of
/// bicomp/component_view.h. Text corpora (graph/io.h) pay a line-by-line
/// parse plus an O(n+m) decomposition on every run; a `.sgr` cache pays
/// them once (tools/graph_convert.cc) and then loads in O(1) via mmap, the
/// big arrays staying zero-copy inside the mapping (graph/storage.h).
///
/// Byte-level layout, alignment/endianness rules, the versioning policy and
/// the mmap ownership/trust model are specified in DESIGN.md, section
/// "The .sgr on-disk format"; user-facing workflows (graph_convert,
/// cache-aware loading) are in README.md, section "The .sgr binary cache".

#include <cstdint>
#include <string>

#include "bicomp/biconnected.h"
#include "bicomp/block_cut_tree.h"
#include "bicomp/component_view.h"
#include "graph/connectivity.h"
#include "graph/graph.h"
#include "util/status.h"

namespace saphyra {

/// Format identification. The magic doubles as a version gate: readers
/// reject files whose magic, byte-order tag, or version they do not know.
inline constexpr char kSgrMagic[8] = {'S', 'A', 'P', 'H', 'S', 'G', 'R', '\n'};
inline constexpr uint32_t kSgrByteOrderTag = 0x01020304;
inline constexpr uint32_t kSgrVersion = 1;
/// Every section starts on a 64-byte boundary (cache line; also satisfies
/// the alignment of every element type used by the format).
inline constexpr uint64_t kSgrAlignment = 64;

/// \brief A graph together with (optionally) its persisted preprocessing.
///
/// This is what a `.sgr` file deserializes to. When `has_decomposition` is
/// true, `bcc`/`conn`/`views`/`tree` hold exactly what
/// ComputeBiconnectedComponents / ConnectedComponents / ComponentViews /
/// BlockCutTree::Build would have produced on `graph` — IspIndex can adopt
/// them (IspIndex(g, std::move(cache))) and skip the whole decomposition.
///
/// `tree` holds pointers into `bcc` and `conn` of the *same* GraphCache;
/// the move operations re-bind them, which is why the struct is move-only.
struct GraphCache {
  Graph graph;
  /// Content digest of `graph` (GraphContentFingerprint), read from the
  /// `.sgr` header when the cache was loaded from a file that recorded
  /// one; 0 = unknown (text parse, or a cache written before fingerprints
  /// existed). The serving layer keys its result memo on this — see
  /// docs/serving.md.
  uint64_t content_fingerprint = 0;
  bool has_decomposition = false;
  BiconnectedComponents bcc;
  ComponentLabels conn;
  ComponentViews views;
  BlockCutTree tree;

  GraphCache() = default;
  GraphCache(GraphCache&& other) noexcept;
  GraphCache& operator=(GraphCache&& other) noexcept;
  GraphCache(const GraphCache&) = delete;
  GraphCache& operator=(const GraphCache&) = delete;
};

struct SgrWriteOptions {
  /// When non-empty, the size and mtime of this file are recorded in the
  /// header so loaders can detect a stale cache (source edited after
  /// conversion). Leave empty for graphs with no backing text file; such
  /// caches never test as fresh and must be loaded explicitly.
  std::string source_path;
  /// Pre-captured source stat (CaptureSourceStat). When nonzero these are
  /// recorded instead of stat'ing `source_path` at write time — capture
  /// them *before* parsing so a source edited mid-conversion yields a
  /// cache that correctly tests stale.
  uint64_t source_size = 0;
  uint64_t source_mtime_ns = 0;
  /// Whether the SNAP parse that produced the graph compacted node ids
  /// (LoadSnapEdgeList's compact_ids). Recorded in the header; the
  /// auto-substitution path refuses a cache whose id scheme differs from
  /// the text parse it replaces. Irrelevant for DIMACS sources.
  bool compact_ids = true;
};

/// \brief Stat `source_path` into `opts` (size + mtime). Call before the
/// text parse; see SgrWriteOptions::source_size.
Status CaptureSourceStat(const std::string& source_path,
                         SgrWriteOptions* opts);

struct SgrReadOptions {
  /// Map the file and reference its bytes zero-copy (default). When false,
  /// the file is read into one owned buffer instead — same interface, no
  /// page-cache sharing; used by tests and exotic filesystems.
  bool prefer_mmap = true;
};

/// \brief Write `g` (and, when all four pointers are non-null, its
/// decomposition) as a `.sgr` file. The decomposition must have been
/// computed on `g`.
Status WriteSgr(const std::string& path, const Graph& g,
                const BiconnectedComponents* bcc, const ComponentLabels* conn,
                const ComponentViews* views, const BlockCutTree* tree,
                const SgrWriteOptions& options = {});

/// \brief Load a `.sgr` file. The heavy CSR arrays of `out->graph` and
/// `out->views` reference the mapping zero-copy (the mapping lives as long
/// as they do); a graph-only cache therefore loads in near-constant time
/// (header/section validation plus one O(n) offsets-monotonicity pass).
/// With a decomposition, the side tables of `out->bcc`/`out->conn`/
/// `out->tree` — including the Θ(m) `arc_component` and `rev_arc` arrays —
/// are materialized by sequential memcpy from the mapping: no parsing and
/// no recomputation, but not free (see DESIGN.md, "mmap ownership model").
Status LoadSgr(const std::string& path, GraphCache* out,
               const SgrReadOptions& options = {});

/// \brief Conventional cache path of a text corpus: `<source>.sgr`.
std::string SgrCachePathFor(const std::string& source_path);

/// \brief Content digest of a graph: FNV-1a over (num_nodes, num_arcs, the
/// CSR offset array, the adjacency array). Two graphs hash equal iff their
/// CSR images are byte-identical, regardless of how they were loaded (text
/// parse or `.sgr` cache). O(n + m); WriteSgr computes it once and records
/// it in the header so cache loads get it for free
/// (GraphCache::content_fingerprint). Used by the serving layer to key
/// memoized query results to the exact graph they were computed on.
uint64_t GraphContentFingerprint(const Graph& g);

/// \brief Sets `*fresh` iff `sgr_path` exists, parses as `.sgr`, and its
/// recorded source size+mtime match the current stat of `source_path`.
/// Reads only the 64-byte header and never fails: a missing, truncated,
/// unreadable, or foreign cache is simply reported as not fresh.
Status SgrIsFresh(const std::string& sgr_path, const std::string& source_path,
                  bool* fresh);

struct LoadGraphOptions {
  /// "snap", "dimacs", "sgr", or "auto" (sgr iff the path ends in ".sgr",
  /// snap otherwise).
  std::string format = "auto";
  /// Auto-use `<path>.sgr` when present and fresh (text formats only).
  bool use_cache = true;
  /// SNAP loader id compaction (must match how the cache was converted).
  bool compact_ids = true;
  SgrReadOptions sgr;
};

/// \brief Cache-aware graph loading: the one entry point tools, benches and
/// examples use. Loads `path` according to `options.format`; for text
/// formats, transparently substitutes the `<path>.sgr` cache when it is
/// present and fresh (falling back to the text parse if the cache is stale,
/// truncated, or from a different format version). `*loaded_from_cache`
/// reports which path was taken.
Status LoadGraphAuto(const std::string& path, const LoadGraphOptions& options,
                     GraphCache* out, bool* loaded_from_cache = nullptr);

}  // namespace saphyra

#endif  // SAPHYRA_GRAPH_BINARY_IO_H_
