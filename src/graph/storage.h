#ifndef SAPHYRA_GRAPH_STORAGE_H_
#define SAPHYRA_GRAPH_STORAGE_H_

#include <cstddef>
#include <memory>
#include <span>
#include <utility>
#include <vector>

namespace saphyra {

/// \brief Immutable array that either owns its elements or views memory
/// owned by someone else (typically an mmap'ed `.sgr` cache file).
///
/// This is the ownership abstraction behind zero-copy graph loading (see
/// DESIGN.md, "The .sgr on-disk format"): `Graph` and `ComponentViews`
/// store their CSR arrays as ArrayRefs, so the same accessors run on
/// heap-built graphs (GraphBuilder, generators) and on graphs whose arrays
/// live inside a mapped cache file, with no copy on load.
///
/// In view mode the ArrayRef carries a type-erased keepalive handle; the
/// backing storage (e.g. the MappedFile) stays alive as long as any
/// ArrayRef referencing it does. Copies are cheap in view mode (span +
/// shared_ptr) and deep in owned mode, which preserves the value semantics
/// the rest of the code base expects from std::vector members.
template <typename T>
class ArrayRef {
 public:
  ArrayRef() = default;

  /// \brief Owned mode: adopt `values`.
  ArrayRef(std::vector<T> values)  // NOLINT: implicit by design
      : owned_(std::move(values)) {}

  /// \brief View mode: reference `view`, keeping `keepalive` alive for the
  /// lifetime of this ArrayRef (and of its copies).
  ArrayRef(std::span<const T> view, std::shared_ptr<const void> keepalive)
      : view_(view), keepalive_(std::move(keepalive)), is_view_(true) {}

  const T* data() const { return is_view_ ? view_.data() : owned_.data(); }
  size_t size() const { return is_view_ ? view_.size() : owned_.size(); }
  bool empty() const { return size() == 0; }
  const T& operator[](size_t i) const { return data()[i]; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size(); }
  std::span<const T> span() const { return {data(), size()}; }

  /// \brief True when this ArrayRef views foreign storage (mmap mode).
  bool is_view() const { return is_view_; }

 private:
  std::vector<T> owned_;
  std::span<const T> view_;  // only meaningful when is_view_
  std::shared_ptr<const void> keepalive_;
  bool is_view_ = false;
};

}  // namespace saphyra

#endif  // SAPHYRA_GRAPH_STORAGE_H_
