#ifndef SAPHYRA_GRAPH_ADJACENCY_H_
#define SAPHYRA_GRAPH_ADJACENCY_H_

/// \file
/// Adjacency adapters: the compile-time interface every traversal core
/// (PathSampler's bidirectional expansion, the overlay σ-BFS below,
/// estimator walks) is templated over. An adapter exposes
///   ForEachScanned(u, scanned, f) — visit the allowed neighbors of u,
///                          charging every arc scanned (allowed or not)
///                          to *scanned,
///   ForEach(u, f)        — the same visit without cost accounting (the
///                          backward walks are not part of the scan
///                          metric),
///   Cost(u)              — arc mass for the frontier-balancing heuristic.
///
/// Adapters with a compact vertex domain additionally expose
///   DomainSize()  — number of vertices local ids range over,
///   DomainArcs()  — total directed arcs of the domain,
///   ArcsOf(u)     — the neighbor list as a contiguous span,
///   PrefetchNode(u) — warm the CSR row before expansion,
/// which makes them eligible for the bottom-up pull: the direction
/// heuristic needs the unexplored arc mass, and the candidate scan needs
/// the id range. Push-only adapters (the filtered legacy adapter here,
/// the delta-overlay adapter in graph/delta_overlay.h) expose neither —
/// their neighbor sets are not contiguous spans, so traversals over them
/// always push.
///
/// These used to live in the anonymous namespace of bc/path_sampler.cc;
/// they are shared here so a mutation overlay (or any future substrate)
/// plugs into the same traversal cores without duplicating the contract.

#include <cstdint>
#include <span>
#include <vector>

#include "bicomp/component_view.h"
#include "graph/graph.h"

namespace saphyra {

/// \brief Unrestricted traversal over the global CSR. Domain-capable.
struct GlobalAdj {
  const Graph* g;
  NodeId DomainSize() const { return g->num_nodes(); }
  uint64_t DomainArcs() const { return g->num_arcs(); }
  std::span<const NodeId> ArcsOf(NodeId u) const { return g->neighbors(u); }
  void PrefetchNode(NodeId u) const {
    __builtin_prefetch(g->neighbors(u).data(), 0, 2);
  }
  template <class F>
  void ForEach(NodeId u, F&& f) const {
    for (NodeId v : g->neighbors(u)) f(v);
  }
  uint64_t Cost(NodeId u) const { return g->degree(u); }
};

/// \brief Traversal restricted to one biconnected component by per-arc
/// label compare. Push-only: the labels are indexed by the *scanning*
/// endpoint's CSR slot, so a pull would test the wrong arc.
struct FilteredAdj {
  const Graph* g;
  const std::vector<uint32_t>* arc_component;
  uint32_t comp;
  template <class F>
  void ForEachScanned(NodeId u, uint64_t* scanned, F&& f) const {
    const EdgeIndex base = g->offset(u);
    const auto nbr = g->neighbors(u);
    *scanned += nbr.size();
    for (size_t i = 0; i < nbr.size(); ++i) {
      if ((*arc_component)[base + i] == comp) f(nbr[i]);
    }
  }
  template <class F>
  void ForEach(NodeId u, F&& f) const {
    const EdgeIndex base = g->offset(u);
    const auto nbr = g->neighbors(u);
    for (size_t i = 0; i < nbr.size(); ++i) {
      if ((*arc_component)[base + i] == comp) f(nbr[i]);
    }
  }
  uint64_t Cost(NodeId u) const { return g->degree(u); }
};

/// \brief Traversal over one component's compact CSR view (local ids).
/// Domain-capable: the fast path for intra-component sampling.
struct ViewAdj {
  const ComponentViews* views;
  uint32_t comp;
  NodeId DomainSize() const { return views->size(comp); }
  uint64_t DomainArcs() const { return views->num_arcs(comp); }
  std::span<const NodeId> ArcsOf(NodeId u) const {
    return views->Neighbors(comp, u);
  }
  void PrefetchNode(NodeId u) const { views->PrefetchOffsets(comp, u); }
  template <class F>
  void ForEach(NodeId u, F&& f) const {
    for (NodeId v : views->Neighbors(comp, u)) f(v);
  }
  uint64_t Cost(NodeId u) const { return views->Degree(comp, u); }
};

}  // namespace saphyra

#endif  // SAPHYRA_GRAPH_ADJACENCY_H_
