#include "graph/delta_overlay.h"

#include <algorithm>
#include <string>

#include "util/logging.h"

namespace saphyra {

const std::vector<NodeId> DeltaOverlay::kNoInserts;

namespace {

std::string EdgeName(NodeId u, NodeId v) {
  return "{" + std::to_string(u) + ", " + std::to_string(v) + "}";
}

}  // namespace

DeltaOverlay::DeltaOverlay(const Graph* base) : base_(base) {
  SAPHYRA_CHECK(base_ != nullptr);
}

EdgeIndex DeltaOverlay::BaseArc(NodeId u, NodeId v) const {
  const auto nbr = base_->neighbors(u);
  auto it = std::lower_bound(nbr.begin(), nbr.end(), v);
  if (it == nbr.end() || *it != v) return kNoArc;
  return base_->offset(u) + static_cast<EdgeIndex>(it - nbr.begin());
}

bool DeltaOverlay::Inserted(NodeId u, NodeId v) const {
  if (inserts_.empty()) return false;
  const std::vector<NodeId>& ins = inserts_[u];
  return std::binary_search(ins.begin(), ins.end(), v);
}

NodeId DeltaOverlay::degree(NodeId v) const {
  NodeId d = base_->degree(v);
  if (!tombstones_.empty()) {
    const EdgeIndex begin = base_->offset(v);
    const EdgeIndex end = begin + d;
    for (EdgeIndex a = begin; a < end; ++a) {
      if (Tombstoned(a)) --d;
    }
  }
  if (!inserts_.empty()) d += static_cast<NodeId>(inserts_[v].size());
  return d;
}

bool DeltaOverlay::HasEdge(NodeId u, NodeId v) const {
  if (u >= num_nodes() || v >= num_nodes()) return false;
  const EdgeIndex arc = BaseArc(u, v);
  if (arc != kNoArc) return !Tombstoned(arc);
  return Inserted(u, v);
}

Status DeltaOverlay::Insert(NodeId u, NodeId v) {
  if (u >= num_nodes() || v >= num_nodes()) {
    return Status::InvalidArgument("edge endpoint out of range: " +
                                   EdgeName(u, v) + " with n=" +
                                   std::to_string(num_nodes()));
  }
  if (u == v) {
    return Status::InvalidArgument("self loop rejected: " + EdgeName(u, v));
  }
  const EdgeIndex arc_uv = BaseArc(u, v);
  if (arc_uv != kNoArc) {
    if (!Tombstoned(arc_uv)) {
      return Status::InvalidArgument("duplicate edge: " + EdgeName(u, v) +
                                     " already exists");
    }
    // Revive the tombstoned base edge in place.
    ClearTombstone(arc_uv);
    ClearTombstone(BaseArc(v, u));
    --tombstoned_edges_;
    return Status::OK();
  }
  if (Inserted(u, v)) {
    return Status::InvalidArgument("duplicate edge: " + EdgeName(u, v) +
                                   " already exists");
  }
  if (inserts_.empty()) inserts_.resize(num_nodes());
  for (auto [a, b] : {std::pair{u, v}, std::pair{v, u}}) {
    std::vector<NodeId>& ins = inserts_[a];
    ins.insert(std::lower_bound(ins.begin(), ins.end(), b), b);
  }
  ++inserted_edges_;
  return Status::OK();
}

Status DeltaOverlay::Remove(NodeId u, NodeId v) {
  if (u >= num_nodes() || v >= num_nodes()) {
    return Status::InvalidArgument("edge endpoint out of range: " +
                                   EdgeName(u, v) + " with n=" +
                                   std::to_string(num_nodes()));
  }
  if (Inserted(u, v)) {
    // Cancel the pending insert.
    for (auto [a, b] : {std::pair{u, v}, std::pair{v, u}}) {
      std::vector<NodeId>& ins = inserts_[a];
      ins.erase(std::lower_bound(ins.begin(), ins.end(), b));
    }
    --inserted_edges_;
    return Status::OK();
  }
  const EdgeIndex arc_uv = BaseArc(u, v);
  if (arc_uv == kNoArc || Tombstoned(arc_uv)) {
    return Status::InvalidArgument("no such edge: " + EdgeName(u, v));
  }
  SetTombstone(arc_uv);
  SetTombstone(BaseArc(v, u));
  ++tombstoned_edges_;
  return Status::OK();
}

Graph DeltaOverlay::Materialize() const {
  const NodeId n = num_nodes();
  std::vector<EdgeIndex> offsets(n + 1, 0);
  std::vector<NodeId> adj;
  adj.reserve(static_cast<size_t>(num_edges()) * 2);
  NodeId max_degree = 0;
  for (NodeId u = 0; u < n; ++u) {
    const size_t row_begin = adj.size();
    ForEachNeighbor(u, [&](NodeId v) { adj.push_back(v); });
    const NodeId d = static_cast<NodeId>(adj.size() - row_begin);
    max_degree = std::max(max_degree, d);
    offsets[u + 1] = adj.size();
  }
  Graph out;
  Status st = Graph::FromCsr(n, max_degree, std::move(offsets),
                             std::move(adj), &out);
  SAPHYRA_CHECK_MSG(st.ok(), st.message());
  return out;
}

void DeltaOverlay::Rebase(const Graph* new_base) {
  SAPHYRA_CHECK(new_base != nullptr);
  base_ = new_base;
  inserts_.clear();
  tombstones_.clear();
  inserted_edges_ = 0;
  tombstoned_edges_ = 0;
}

}  // namespace saphyra
