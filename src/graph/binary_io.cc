#include "graph/binary_io.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>
#include <vector>

#include "graph/io.h"
#include "util/failpoint.h"
#include "util/hash.h"
#include "util/mapped_file.h"

namespace saphyra {

namespace {

// ---------------------------------------------------------------------------
// On-disk structures. All fixed-size, written in the producer's native byte
// order; `byte_order` in the header lets a foreign-endian reader detect the
// mismatch and refuse. See DESIGN.md, "The .sgr on-disk format".
// ---------------------------------------------------------------------------

struct SgrHeader {
  char magic[8];
  uint32_t byte_order;  // kSgrByteOrderTag as written by the producer
  uint32_t version;
  uint32_t section_count;
  uint32_t flags;
  uint64_t num_nodes;
  uint64_t num_arcs;
  uint64_t source_size;      // stat of the text corpus at conversion time
  uint64_t source_mtime_ns;  // 0/0 = unknown provenance (never fresh)
  // Content digest of the CSR image (GraphContentFingerprint). Occupies
  // what was a reserved field, so caches written before fingerprints
  // existed read back as 0 = unknown — an additive change, no version
  // bump (see docs/formats.md).
  uint64_t content_fingerprint;
};
static_assert(sizeof(SgrHeader) == 64, ".sgr header must stay 64 bytes");

struct SgrSection {
  uint32_t kind;        // SectionKind; readers skip kinds they don't know
  uint32_t elem_bytes;  // sizeof one element (sanity check on read)
  uint64_t offset;      // absolute file offset, kSgrAlignment-aligned
  uint64_t count;       // number of elements
  uint64_t reserved;
};
static_assert(sizeof(SgrSection) == 32, ".sgr section entry must stay 32B");

/// Fixed per-file scalars that don't merit their own array section.
struct SgrMeta {
  uint32_t max_degree;
  uint32_t num_bicomponents;
  uint32_t max_component_size;
  uint32_t num_connected_components;
};
static_assert(sizeof(SgrMeta) == 16);

enum SectionKind : uint32_t {
  kSecMeta = 1,
  kSecGraphOffsets = 2,        // u64 × (n+1)
  kSecGraphAdj = 3,            // u32 × num_arcs
  kSecBccArcComponent = 4,     // u32 × num_arcs
  kSecBccIsCutpoint = 5,       // u8  × n
  kSecBccNodeComponent = 6,    // u32 × n
  kSecBccCutpointCount = 7,    // u32 × n
  kSecBccRevArc = 8,           // u64 × num_arcs
  kSecConnLabels = 9,          // u32 × n
  kSecConnSizes = 10,          // u32 × num_connected_components
  kSecViewNodeBegin = 11,      // u64 × (ℓ+1)
  kSecViewNodes = 12,          // u32 × Σ|C_i|
  kSecViewOffsets = 13,        // u64 × (Σ|C_i|+1)
  kSecViewAdj = 14,            // u32 × num_arcs
  kSecTreeConnSizeOfComp = 15, // u64 × ℓ
  kSecTreeCutReach = 16,       // u64 × 2·entries: (key, reach) pairs
};

constexpr uint32_t kFlagHasDecomposition = 1u << 0;
constexpr uint32_t kFlagCompactIds = 1u << 1;
constexpr uint64_t kAnyCount = static_cast<uint64_t>(-1);

uint64_t AlignUp(uint64_t x) {
  return (x + kSgrAlignment - 1) / kSgrAlignment * kSgrAlignment;
}

Status StatFile(const std::string& path, uint64_t* size, uint64_t* mtime_ns) {
  std::error_code ec;
  uint64_t sz = std::filesystem::file_size(path, ec);
  if (ec) return Status::IOError("cannot stat " + path + ": " + ec.message());
  auto mtime = std::filesystem::last_write_time(path, ec);
  if (ec) return Status::IOError("cannot stat " + path + ": " + ec.message());
  *size = sz;
  // file_clock's epoch is implementation-defined, but staleness only ever
  // compares values produced on the same system, where it is consistent.
  *mtime_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          mtime.time_since_epoch())
          .count());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

struct PendingSection {
  uint32_t kind;
  uint32_t elem_bytes;
  uint64_t count;
  const void* data;
};

class SectionWriter {
 public:
  explicit SectionWriter(std::FILE* f) : f_(f) {}

  void Write(const void* data, size_t bytes) {
    if (bytes == 0) return;
    ok_ &= std::fwrite(data, 1, bytes, f_) == bytes;
    pos_ += bytes;
  }

  void PadTo(uint64_t offset) {
    static const char zeros[kSgrAlignment] = {};
    while (ok_ && pos_ < offset) {
      size_t chunk = std::min<uint64_t>(offset - pos_, sizeof(zeros));
      Write(zeros, chunk);
    }
  }

  bool ok() const { return ok_; }

 private:
  std::FILE* f_;
  uint64_t pos_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Reader helpers.
// ---------------------------------------------------------------------------

template <typename T>
Status SectionSpan(std::span<const std::byte> bytes, const SgrSection* sec,
                   const char* what, uint64_t expected_count,
                   std::span<const T>* out) {
  if (sec == nullptr) {
    return Status::IOError(std::string(".sgr missing section: ") + what);
  }
  if (sec->elem_bytes != sizeof(T)) {
    return Status::IOError(std::string(".sgr section ") + what +
                           " has wrong element size");
  }
  if (sec->offset % kSgrAlignment != 0) {
    return Status::IOError(std::string(".sgr section ") + what +
                           " is misaligned");
  }
  // Divide rather than multiply: a crafted/corrupt count must not overflow
  // the bounds check into an out-of-range span.
  if (sec->offset > bytes.size() ||
      sec->count > (bytes.size() - sec->offset) / sizeof(T)) {
    return Status::IOError(std::string(".sgr section ") + what +
                           " exceeds the file (truncated?)");
  }
  if (expected_count != kAnyCount && sec->count != expected_count) {
    return Status::IOError(std::string(".sgr section ") + what +
                           " has unexpected length");
  }
  *out = {reinterpret_cast<const T*>(bytes.data() + sec->offset),
          static_cast<size_t>(sec->count)};
  return Status::OK();
}

template <typename T, typename Vec>
Status CopySection(std::span<const std::byte> bytes, const SgrSection* sec,
                   const char* what, uint64_t expected_count, Vec* out) {
  std::span<const T> span;
  SAPHYRA_RETURN_NOT_OK(
      SectionSpan<T>(bytes, sec, what, expected_count, &span));
  out->assign(span.begin(), span.end());
  return Status::OK();
}

Status ParseHeader(std::span<const std::byte> bytes, SgrHeader* hdr) {
  if (bytes.size() < sizeof(SgrHeader)) {
    return Status::IOError(".sgr file shorter than its header (truncated?)");
  }
  std::memcpy(hdr, bytes.data(), sizeof(SgrHeader));
  if (std::memcmp(hdr->magic, kSgrMagic, sizeof(kSgrMagic)) != 0) {
    return Status::IOError("not a .sgr file (bad magic)");
  }
  if (hdr->byte_order != kSgrByteOrderTag) {
    return Status::IOError(
        ".sgr file was written on a foreign-endian machine; re-run "
        "graph_convert on this host");
  }
  if (hdr->version != kSgrVersion) {
    return Status::IOError(".sgr version " + std::to_string(hdr->version) +
                           " unsupported (this build reads version " +
                           std::to_string(kSgrVersion) + ")");
  }
  return Status::OK();
}

}  // namespace

uint64_t GraphContentFingerprint(const Graph& g) {
  Fnv1a64 h;
  h.UpdateValue(static_cast<uint64_t>(g.num_nodes()));
  h.UpdateValue(static_cast<uint64_t>(g.num_arcs()));
  const auto offsets = g.raw_offsets();
  h.Update(offsets.data(), offsets.size() * sizeof(EdgeIndex));
  const auto adj = g.raw_adj();
  h.Update(adj.data(), adj.size() * sizeof(NodeId));
  return h.Digest();
}

GraphCache::GraphCache(GraphCache&& other) noexcept
    : graph(std::move(other.graph)),
      content_fingerprint(other.content_fingerprint),
      has_decomposition(other.has_decomposition),
      bcc(std::move(other.bcc)),
      conn(std::move(other.conn)),
      views(std::move(other.views)),
      tree(std::move(other.tree)) {
  tree.Rebind(bcc, conn);
}

GraphCache& GraphCache::operator=(GraphCache&& other) noexcept {
  graph = std::move(other.graph);
  content_fingerprint = other.content_fingerprint;
  has_decomposition = other.has_decomposition;
  bcc = std::move(other.bcc);
  conn = std::move(other.conn);
  views = std::move(other.views);
  tree = std::move(other.tree);
  tree.Rebind(bcc, conn);
  return *this;
}

Status WriteSgr(const std::string& path, const Graph& g,
                const BiconnectedComponents* bcc, const ComponentLabels* conn,
                const ComponentViews* views, const BlockCutTree* tree,
                const SgrWriteOptions& options) {
  const bool with_decomp =
      bcc != nullptr && conn != nullptr && views != nullptr && tree != nullptr;
  if (with_decomp && (bcc->arc_component.size() != g.num_arcs() ||
                      bcc->is_cutpoint.size() != g.num_nodes() ||
                      conn->component.size() != g.num_nodes() ||
                      views->raw_adj().size() != g.num_arcs())) {
    return Status::InvalidArgument(
        "decomposition does not match the graph being written");
  }

  SgrHeader hdr{};
  std::memcpy(hdr.magic, kSgrMagic, sizeof(kSgrMagic));
  hdr.byte_order = kSgrByteOrderTag;
  hdr.version = kSgrVersion;
  hdr.flags = (with_decomp ? kFlagHasDecomposition : 0) |
              (options.compact_ids ? kFlagCompactIds : 0);
  hdr.num_nodes = g.num_nodes();
  hdr.num_arcs = g.num_arcs();
  hdr.content_fingerprint = GraphContentFingerprint(g);
  if (options.source_size != 0 || options.source_mtime_ns != 0) {
    hdr.source_size = options.source_size;
    hdr.source_mtime_ns = options.source_mtime_ns;
  } else if (!options.source_path.empty()) {
    SAPHYRA_RETURN_NOT_OK(
        StatFile(options.source_path, &hdr.source_size, &hdr.source_mtime_ns));
  }

  SgrMeta meta{};
  meta.max_degree = g.max_degree();
  if (with_decomp) {
    meta.num_bicomponents = bcc->num_components;
    meta.max_component_size = views->max_component_size();
    meta.num_connected_components = conn->num_components();
  }

  // The cut-reach table flattens to (key, reach) pairs, sorted by key so the
  // bytes are deterministic for a given decomposition.
  std::vector<uint64_t> cut_reach_flat;
  if (with_decomp) {
    std::vector<std::pair<uint64_t, uint64_t>> pairs(tree->cut_reach().begin(),
                                                     tree->cut_reach().end());
    std::sort(pairs.begin(), pairs.end());
    cut_reach_flat.reserve(2 * pairs.size());
    for (const auto& [key, reach] : pairs) {
      cut_reach_flat.push_back(key);
      cut_reach_flat.push_back(reach);
    }
  }

  std::vector<PendingSection> pending;
  auto add = [&](uint32_t kind, uint32_t elem_bytes, uint64_t count,
                 const void* data) {
    pending.push_back({kind, elem_bytes, count, data});
  };
  add(kSecMeta, sizeof(SgrMeta), 1, &meta);
  add(kSecGraphOffsets, sizeof(EdgeIndex), g.raw_offsets().size(),
      g.raw_offsets().data());
  add(kSecGraphAdj, sizeof(NodeId), g.raw_adj().size(), g.raw_adj().data());
  if (with_decomp) {
    add(kSecBccArcComponent, 4, bcc->arc_component.size(),
        bcc->arc_component.data());
    add(kSecBccIsCutpoint, 1, bcc->is_cutpoint.size(),
        bcc->is_cutpoint.data());
    add(kSecBccNodeComponent, 4, bcc->node_component.size(),
        bcc->node_component.data());
    add(kSecBccCutpointCount, 4, bcc->cutpoint_comp_count_.size(),
        bcc->cutpoint_comp_count_.data());
    add(kSecBccRevArc, 8, bcc->rev_arc.size(), bcc->rev_arc.data());
    add(kSecConnLabels, 4, conn->component.size(), conn->component.data());
    add(kSecConnSizes, 4, conn->size.size(), conn->size.data());
    add(kSecViewNodeBegin, 8, views->raw_node_begin().size(),
        views->raw_node_begin().data());
    add(kSecViewNodes, 4, views->raw_nodes().size(),
        views->raw_nodes().data());
    add(kSecViewOffsets, 8, views->raw_offsets().size(),
        views->raw_offsets().data());
    add(kSecViewAdj, 4, views->raw_adj().size(), views->raw_adj().data());
    add(kSecTreeConnSizeOfComp, 8, tree->conn_size_of_comp_table().size(),
        tree->conn_size_of_comp_table().data());
    add(kSecTreeCutReach, 8, cut_reach_flat.size(), cut_reach_flat.data());
  }
  hdr.section_count = static_cast<uint32_t>(pending.size());

  // Lay the sections out back to back, each on a kSgrAlignment boundary.
  std::vector<SgrSection> table;
  table.reserve(pending.size());
  uint64_t cursor =
      AlignUp(sizeof(SgrHeader) + pending.size() * sizeof(SgrSection));
  for (const PendingSection& p : pending) {
    table.push_back({p.kind, p.elem_bytes, cursor, p.count, 0});
    cursor = AlignUp(cursor + p.count * p.elem_bytes);
  }

  // Atomic publish: write a sibling temp file, fsync it, then rename over
  // the final path. A reader racing the write (or a crash/ENOSPC mid-way)
  // sees either the previous complete file or none — never a torn `.sgr`.
  // The fixed temp name means concurrent writers of the *same* path race
  // each other, but each still publishes only complete bytes.
  const std::string tmp_path = path + ".tmp";
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + tmp_path + " for writing");
  }
  SectionWriter w(f);
  w.Write(&hdr, sizeof(hdr));
  w.Write(table.data(), table.size() * sizeof(SgrSection));
  Status write_st = Status::OK();
  for (size_t i = 0; i < pending.size(); ++i) {
    // Mid-payload fault site: an injected short write/ENOSPC lands after
    // some sections already hit the disk but before the rename publishes.
    write_st = fail::FaultStatus("sgr.write");
    if (!write_st.ok()) break;
    w.PadTo(table[i].offset);
    w.Write(pending[i].data, pending[i].count * pending[i].elem_bytes);
  }
  bool ok = write_st.ok() && w.ok();
  if (ok) ok = std::fflush(f) == 0;
  // rename() only orders metadata; the payload needs its own fsync or a
  // crash right after publish could surface a complete-looking empty file.
  if (ok) ok = ::fsync(fileno(f)) == 0;
  ok = std::fclose(f) == 0 && ok;  // always close, even after a failed write
  if (!ok) {
    std::remove(tmp_path.c_str());
    return write_st.ok() ? Status::IOError("write failure on " + tmp_path)
                         : write_st;
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IOError("cannot publish " + path + " (rename failed)");
  }
  return Status::OK();
}

Status LoadSgr(const std::string& path, GraphCache* out,
               const SgrReadOptions& options) {
  SAPHYRA_RETURN_NOT_OK(fail::FaultStatus("sgr.load"));
  std::shared_ptr<MappedFile> file;
  SAPHYRA_RETURN_NOT_OK(MappedFile::Open(path, &file, options.prefer_mmap));
  const std::span<const std::byte> bytes = file->bytes();
  *out = GraphCache();  // drop whatever a reused cache held

  SgrHeader hdr;
  SAPHYRA_RETURN_NOT_OK(ParseHeader(bytes, &hdr));
  if (hdr.num_nodes > kInvalidNode) {
    return Status::IOError(".sgr node count overflows 32-bit node ids");
  }
  const uint64_t table_bytes =
      static_cast<uint64_t>(hdr.section_count) * sizeof(SgrSection);
  if (sizeof(SgrHeader) + table_bytes > bytes.size()) {
    return Status::IOError(".sgr section table exceeds the file (truncated?)");
  }
  std::vector<SgrSection> sections(hdr.section_count);
  std::memcpy(sections.data(), bytes.data() + sizeof(SgrHeader), table_bytes);
  // First section of each kind wins; unknown kinds are skipped so newer
  // writers can append sections without breaking this reader.
  auto find = [&](uint32_t kind) -> const SgrSection* {
    for (const SgrSection& s : sections) {
      if (s.kind == kind) return &s;
    }
    return nullptr;
  };

  std::span<const SgrMeta> meta_span;
  SAPHYRA_RETURN_NOT_OK(
      SectionSpan<SgrMeta>(bytes, find(kSecMeta), "meta", 1, &meta_span));
  const SgrMeta meta = meta_span[0];
  const NodeId n = static_cast<NodeId>(hdr.num_nodes);
  const uint64_t arcs = hdr.num_arcs;

  std::span<const EdgeIndex> offsets;
  std::span<const NodeId> adj;
  SAPHYRA_RETURN_NOT_OK(SectionSpan<EdgeIndex>(
      bytes, find(kSecGraphOffsets), "graph offsets", hdr.num_nodes + 1,
      &offsets));
  SAPHYRA_RETURN_NOT_OK(
      SectionSpan<NodeId>(bytes, find(kSecGraphAdj), "graph adj", arcs, &adj));
  SAPHYRA_RETURN_NOT_OK(Graph::FromCsr(n, meta.max_degree,
                                       ArrayRef<EdgeIndex>(offsets, file),
                                       ArrayRef<NodeId>(adj, file),
                                       &out->graph));

  out->content_fingerprint = hdr.content_fingerprint;
  out->has_decomposition = (hdr.flags & kFlagHasDecomposition) != 0;
  if (!out->has_decomposition) return Status::OK();

  // Biconnected decomposition: small side tables are materialized (they are
  // O(n) and interleave poorly with zero-copy ownership); the component
  // views below stay inside the mapping.
  BiconnectedComponents& bcc = out->bcc;
  bcc.num_components = meta.num_bicomponents;
  SAPHYRA_RETURN_NOT_OK(CopySection<uint32_t>(bytes,
                                              find(kSecBccArcComponent),
                                              "bcc arc_component", arcs,
                                              &bcc.arc_component));
  SAPHYRA_RETURN_NOT_OK(CopySection<uint8_t>(bytes, find(kSecBccIsCutpoint),
                                             "bcc is_cutpoint", n,
                                             &bcc.is_cutpoint));
  SAPHYRA_RETURN_NOT_OK(CopySection<uint32_t>(bytes,
                                              find(kSecBccNodeComponent),
                                              "bcc node_component", n,
                                              &bcc.node_component));
  SAPHYRA_RETURN_NOT_OK(CopySection<uint32_t>(
      bytes, find(kSecBccCutpointCount), "bcc cutpoint_comp_count", n,
      &bcc.cutpoint_comp_count_));
  SAPHYRA_RETURN_NOT_OK(CopySection<EdgeIndex>(
      bytes, find(kSecBccRevArc), "bcc rev_arc", arcs, &bcc.rev_arc));
  SAPHYRA_RETURN_NOT_OK(CopySection<NodeId>(bytes, find(kSecConnLabels),
                                            "conn labels", n,
                                            &out->conn.component));
  SAPHYRA_RETURN_NOT_OK(
      CopySection<NodeId>(bytes, find(kSecConnSizes), "conn sizes",
                          meta.num_connected_components, &out->conn.size));

  std::span<const uint64_t> view_node_begin;
  std::span<const NodeId> view_nodes;
  std::span<const EdgeIndex> view_offsets;
  std::span<const NodeId> view_adj;
  SAPHYRA_RETURN_NOT_OK(SectionSpan<uint64_t>(
      bytes, find(kSecViewNodeBegin), "view node_begin",
      static_cast<uint64_t>(meta.num_bicomponents) + 1, &view_node_begin));
  SAPHYRA_RETURN_NOT_OK(SectionSpan<NodeId>(bytes, find(kSecViewNodes),
                                            "view nodes", kAnyCount,
                                            &view_nodes));
  SAPHYRA_RETURN_NOT_OK(SectionSpan<EdgeIndex>(bytes, find(kSecViewOffsets),
                                               "view offsets",
                                               view_nodes.size() + 1,
                                               &view_offsets));
  SAPHYRA_RETURN_NOT_OK(SectionSpan<NodeId>(bytes, find(kSecViewAdj),
                                            "view adj", arcs, &view_adj));
  SAPHYRA_RETURN_NOT_OK(ComponentViews::FromParts(
      ArrayRef<uint64_t>(view_node_begin, file),
      ArrayRef<NodeId>(view_nodes, file),
      ArrayRef<EdgeIndex>(view_offsets, file),
      ArrayRef<NodeId>(view_adj, file), meta.max_component_size,
      &out->views));

  // component_nodes is the per-component slicing of the view node array.
  bcc.component_nodes.assign(meta.num_bicomponents, {});
  for (uint32_t c = 0; c < meta.num_bicomponents; ++c) {
    const auto members = out->views.nodes(c);
    bcc.component_nodes[c].assign(members.begin(), members.end());
  }

  std::vector<uint64_t> conn_size_of_comp;
  SAPHYRA_RETURN_NOT_OK(CopySection<uint64_t>(
      bytes, find(kSecTreeConnSizeOfComp), "tree conn_size_of_comp",
      meta.num_bicomponents, &conn_size_of_comp));
  std::span<const uint64_t> cut_reach_flat;
  SAPHYRA_RETURN_NOT_OK(SectionSpan<uint64_t>(bytes, find(kSecTreeCutReach),
                                              "tree cut_reach", kAnyCount,
                                              &cut_reach_flat));
  if (cut_reach_flat.size() % 2 != 0) {
    return Status::IOError(".sgr cut_reach table has odd length");
  }
  std::vector<std::pair<uint64_t, uint64_t>> cut_reach;
  cut_reach.reserve(cut_reach_flat.size() / 2);
  for (size_t i = 0; i < cut_reach_flat.size(); i += 2) {
    cut_reach.emplace_back(cut_reach_flat[i], cut_reach_flat[i + 1]);
  }
  out->tree = BlockCutTree::FromParts(bcc, out->conn,
                                      std::move(conn_size_of_comp), cut_reach);
  return Status::OK();
}

std::string SgrCachePathFor(const std::string& source_path) {
  return source_path + ".sgr";
}

namespace {

/// Read and validate just the 64-byte header of `path`. False when the
/// file is missing, truncated, or not a readable `.sgr`.
bool ReadHeaderIfValid(const std::string& path, SgrHeader* hdr) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  const size_t got = std::fread(hdr, 1, sizeof(*hdr), f);
  std::fclose(f);
  if (got != sizeof(*hdr)) return false;
  std::span<const std::byte> header_bytes(
      reinterpret_cast<const std::byte*>(hdr), sizeof(*hdr));
  return ParseHeader(header_bytes, hdr).ok();
}

/// True iff the header's recorded provenance matches the current stat of
/// `source_path`. Unknown provenance (0/0) never matches.
bool SourceMatches(const SgrHeader& hdr, const std::string& source_path) {
  if (hdr.source_size == 0 && hdr.source_mtime_ns == 0) return false;
  uint64_t size = 0, mtime_ns = 0;
  if (!StatFile(source_path, &size, &mtime_ns).ok()) return false;
  return size == hdr.source_size && mtime_ns == hdr.source_mtime_ns;
}

}  // namespace

Status CaptureSourceStat(const std::string& source_path,
                         SgrWriteOptions* opts) {
  opts->source_path = source_path;
  return StatFile(source_path, &opts->source_size, &opts->source_mtime_ns);
}

Status SgrIsFresh(const std::string& sgr_path, const std::string& source_path,
                  bool* fresh) {
  SgrHeader hdr;
  *fresh = ReadHeaderIfValid(sgr_path, &hdr) && SourceMatches(hdr, source_path);
  return Status::OK();
}

Status LoadGraphAuto(const std::string& path, const LoadGraphOptions& options,
                     GraphCache* out, bool* loaded_from_cache) {
  if (loaded_from_cache != nullptr) *loaded_from_cache = false;
  std::string format = options.format;
  const bool sgr_extension =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".sgr") == 0;
  if (format == "auto") format = sgr_extension ? "sgr" : "snap";
  // A `.sgr` path is self-identifying: honor it even when the caller names
  // the text format it was converted from.
  if (sgr_extension) format = "sgr";
  if (format == "sgr") {
    SAPHYRA_RETURN_NOT_OK(LoadSgr(path, out, options.sgr));
    if (loaded_from_cache != nullptr) *loaded_from_cache = true;
    return Status::OK();
  }
  if (format != "snap" && format != "dimacs") {
    return Status::InvalidArgument("unknown graph format: " + format);
  }
  if (options.use_cache) {
    const std::string cache_path = SgrCachePathFor(path);
    SgrHeader hdr;
    // Substitute the cache only when it is fresh AND was converted with
    // the same id scheme this text parse would use — a compact_ids
    // mismatch would silently renumber every node.
    if (ReadHeaderIfValid(cache_path, &hdr) && SourceMatches(hdr, path) &&
        (format != "snap" ||
         ((hdr.flags & kFlagCompactIds) != 0) == options.compact_ids) &&
        LoadSgr(cache_path, out, options.sgr).ok()) {
      if (loaded_from_cache != nullptr) *loaded_from_cache = true;
      return Status::OK();
    }
    // A stale, unreadable, or differently-converted cache falls back to
    // the text parse.
  }
  *out = GraphCache();
  if (format == "dimacs") return LoadDimacsGraph(path, &out->graph);
  return LoadSnapEdgeList(path, &out->graph, options.compact_ids);
}

}  // namespace saphyra
