#ifndef SAPHYRA_GRAPH_DELTA_OVERLAY_H_
#define SAPHYRA_GRAPH_DELTA_OVERLAY_H_

/// \file
/// DeltaOverlay: a mutable edge-set overlay on the immutable CSR.
///
/// The `.sgr` substrate is deliberately immutable (zero-copy mmap, content
/// fingerprint in the header); dynamic-graph serving layers mutations on
/// top instead of rebuilding: per-vertex sorted insert lists plus a
/// tombstone bitmap over the base arcs. The overlay's effective edge set
/// is (base \ tombstones) ∪ inserts, and every accessor presents it in
/// the same sorted-dedup canonical form GraphBuilder produces — which is
/// what makes a mutated overlay bitwise indistinguishable from a full
/// rebuild of the mutated edge list (the property the mutation
/// differential tests pin).
///
/// Mutations validate against the *effective* graph: inserting an edge
/// that exists (live in base, or pending in the insert lists) and deleting
/// one that doesn't are INVALID_ARGUMENT, mirroring how GraphBuilder's
/// dedup would silently collapse them — the serving tier must reject them
/// instead, so a request stream replays identically everywhere. Self
/// loops and out-of-range endpoints are INVALID_ARGUMENT for the same
/// reason. Deleting a pending insert cancels it; re-inserting a
/// tombstoned base edge clears the tombstone — delta_size() counts only
/// live deviations from the base.
///
/// Traversal runs through OverlayAdj, the push-only adjacency adapter
/// (graph/adjacency.h contract): each neighbor visit is a two-pointer
/// merge of the live base arcs and the insert list, so neighbors come out
/// in ascending order exactly as a materialized CSR would produce them.
/// Past a delta budget the owner calls Materialize() and rebases — the
/// merged CSR becomes the new base and the overlay empties (Compact()),
/// bounding both the merge overhead and the tombstone metadata.
///
/// Not thread-safe: the serving tier publishes immutable epoch snapshots
/// (service/session.h) and keeps the overlay behind the per-session
/// update lock; concurrent queries only ever see materialized epochs.

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace saphyra {

class DeltaOverlay {
 public:
  /// \brief Overlay over `base`, initially empty (effective == base).
  /// Borrowed; the base must outlive the overlay (the serving tier pins
  /// the epoch that owns it).
  explicit DeltaOverlay(const Graph* base);

  NodeId num_nodes() const { return base_->num_nodes(); }

  /// \brief Effective undirected edge count: base − tombstoned + inserted.
  EdgeIndex num_edges() const {
    return base_->num_edges() - tombstoned_edges_ + inserted_edges_;
  }

  /// \brief Effective degree of v.
  NodeId degree(NodeId v) const;

  /// \brief True iff {u, v} exists in the effective graph.
  bool HasEdge(NodeId u, NodeId v) const;

  /// \brief Insert the undirected edge {u, v}.
  ///
  /// INVALID_ARGUMENT if an endpoint is out of range, u == v, or the edge
  /// already exists (live in the base or pending insert). Re-inserting a
  /// tombstoned base edge revives it in place.
  Status Insert(NodeId u, NodeId v);

  /// \brief Delete the undirected edge {u, v}.
  ///
  /// INVALID_ARGUMENT if an endpoint is out of range or the edge does not
  /// exist in the effective graph. Deleting a pending insert cancels it;
  /// deleting a base edge tombstones its two arcs.
  Status Remove(NodeId u, NodeId v);

  /// \brief Live deviations from the base: pending inserts + tombstoned
  /// base edges (undirected counts). The compaction budget is charged
  /// against this.
  uint64_t delta_size() const { return inserted_edges_ + tombstoned_edges_; }

  /// \brief Visit the effective neighbors of u in ascending order —
  /// identical sequence to `Materialize().neighbors(u)`.
  template <class F>
  void ForEachNeighbor(NodeId u, F&& f) const {
    const auto nbr = base_->neighbors(u);
    const EdgeIndex arc_base = base_->offset(u);
    const std::vector<NodeId>& ins = inserts_.empty()
                                         ? kNoInserts
                                         : inserts_[u];
    size_t bi = 0, ii = 0;
    while (bi < nbr.size() && ii < ins.size()) {
      // Invariant: an insert never duplicates a live base arc, so the
      // merge needs no equality branch for live entries.
      if (Tombstoned(arc_base + bi)) {
        ++bi;
      } else if (nbr[bi] < ins[ii]) {
        f(nbr[bi++]);
      } else {
        f(ins[ii++]);
      }
    }
    for (; bi < nbr.size(); ++bi) {
      if (!Tombstoned(arc_base + bi)) f(nbr[bi]);
    }
    for (; ii < ins.size(); ++ii) f(ins[ii]);
  }

  /// \brief Build the effective graph as a clean owned CSR.
  ///
  /// Bitwise identical (offsets, adjacency, max_degree) to
  /// GraphBuilder::Build over the effective edge list — a linear merge,
  /// never a sort.
  Graph Materialize() const;

  /// \brief Rebase onto `new_base` (typically a just-materialized epoch)
  /// and drop all deltas. The previous base may then be released by the
  /// owner; `new_base` is borrowed like the constructor's.
  void Rebase(const Graph* new_base);

  const Graph& base() const { return *base_; }

 private:
  bool Tombstoned(EdgeIndex arc) const {
    return !tombstones_.empty() &&
           (tombstones_[arc >> 6] >> (arc & 63)) & 1;
  }
  void SetTombstone(EdgeIndex arc) {
    if (tombstones_.empty()) {
      tombstones_.assign((base_->num_arcs() + 63) / 64, 0);
    }
    tombstones_[arc >> 6] |= uint64_t{1} << (arc & 63);
  }
  void ClearTombstone(EdgeIndex arc) {
    tombstones_[arc >> 6] &= ~(uint64_t{1} << (arc & 63));
  }
  /// Arc index of v inside u's base list, or kNoArc if absent.
  EdgeIndex BaseArc(NodeId u, NodeId v) const;
  /// True iff {u,v} is pending in the insert lists.
  bool Inserted(NodeId u, NodeId v) const;

  static const std::vector<NodeId> kNoInserts;
  static constexpr EdgeIndex kNoArc = static_cast<EdgeIndex>(-1);

  const Graph* base_;
  /// Per-vertex pending inserts, each sorted ascending; lazily sized.
  std::vector<std::vector<NodeId>> inserts_;
  /// Tombstone bitmap over base arcs; lazily sized on the first delete.
  std::vector<uint64_t> tombstones_;
  uint64_t inserted_edges_ = 0;    ///< pending undirected inserts
  uint64_t tombstoned_edges_ = 0;  ///< tombstoned undirected base edges
};

/// \brief Push-only adjacency adapter over a DeltaOverlay
/// (graph/adjacency.h contract). No compact arc span exists before
/// compaction, so traversals over it always push; neighbor order is the
/// ascending merge order, matching the materialized CSR.
struct OverlayAdj {
  const DeltaOverlay* overlay;
  template <class F>
  void ForEachScanned(NodeId u, uint64_t* scanned, F&& f) const {
    uint64_t n = 0;
    overlay->ForEachNeighbor(u, [&](NodeId v) {
      ++n;
      f(v);
    });
    *scanned += n;
  }
  template <class F>
  void ForEach(NodeId u, F&& f) const {
    overlay->ForEachNeighbor(u, f);
  }
  uint64_t Cost(NodeId u) const { return overlay->degree(u); }
};

}  // namespace saphyra

#endif  // SAPHYRA_GRAPH_DELTA_OVERLAY_H_
