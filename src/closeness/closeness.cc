#include "closeness/closeness.h"

#include <algorithm>
#include <cmath>

#include "graph/bfs.h"
#include "stats/vc.h"
#include "util/logging.h"

namespace saphyra {

HarmonicClosenessProblem::HarmonicClosenessProblem(const Graph& g,
                                                   std::vector<NodeId> targets)
    : g_(g),
      targets_(std::move(targets)),
      visited_(g.num_nodes()),
      cur_(g.num_nodes()),
      next_(g.num_nodes()),
      unvisited_(g.num_nodes()) {
  node_to_hyp_.assign(g.num_nodes(), -1);
  for (size_t i = 0; i < targets_.size(); ++i) {
    SAPHYRA_CHECK(targets_[i] < g.num_nodes());
    SAPHYRA_CHECK_MSG(node_to_hyp_[targets_[i]] == -1, "duplicate target");
    node_to_hyp_[targets_[i]] = static_cast<int32_t>(i);
  }
}

double HarmonicClosenessProblem::ComputeExactRisks(
    std::vector<double>* exact_risks) {
  const double n = static_cast<double>(g_.num_nodes());
  exact_risks->assign(targets_.size(), 0.0);
  for (size_t i = 0; i < targets_.size(); ++i) {
    // On X̂ (x >= 1/2): loss 1 iff d(u, v) = 1, i.e. u is a neighbor of v.
    (*exact_risks)[i] = static_cast<double>(g_.degree(targets_[i])) / (2.0 * n);
  }
  return 0.5;  // λ̂ = Pr[x >= 1/2]
}

void HarmonicClosenessProblem::SampleApproxLosses(
    Rng* rng, std::vector<uint32_t>* hits) {
  const NodeId n = g_.num_nodes();
  NodeId u = static_cast<NodeId>(rng->UniformInt(n));
  double x = 0.5 * rng->UniformDouble();  // conditional on X̃: x ~ U(0, 1/2)
  // Loss 1 iff x·d < 1 iff (d integral) d <= ceil(1/x) - 1; this also
  // covers 1/x integral, where d < 1/x means d <= 1/x - 1.
  uint64_t depth_limit;
  if (x <= 1.0 / static_cast<double>(n)) {
    depth_limit = n;  // every finite distance qualifies
  } else {
    depth_limit = static_cast<uint64_t>(std::ceil(1.0 / x)) - 1;
  }
  // Truncated level-synchronous BFS from u, reporting targets at
  // 1 <= d <= depth_limit. Runs entirely on the shared FrontierSet
  // infrastructure (graph/frontier.h): visited and level membership are
  // L1-resident epoch-reset bitmaps (a truncated walk never needs the
  // distances themselves — the level counter carries them), and dense
  // levels flip to a bottom-up pull which — distances being all we need —
  // stops at the first parent found on the frontier bitmap. The set of
  // discovered nodes per level is direction-independent, so the reported
  // hits (and the estimates) never depend on the policy.
  visited_.BeginEpoch();
  visited_.Mark(u);
  cur_.Clear();
  cur_.Push(u);
  cur_.BeginEpoch();
  cur_.Mark(u);
  uint64_t frontier_arcs = g_.degree(u);
  uint64_t explored_arcs = frontier_arcs;
  size_t unvisited_size = 0;
  bool unvisited_valid = false;
  const bool allow_pull = traversal_ != TraversalPolicy::kTopDown;
  for (uint64_t depth = 0; depth < depth_limit && !cur_.empty(); ++depth) {
    next_.Clear();
    next_.BeginEpoch();
    uint64_t cost = 0;
    const uint64_t pull_overhead =
        unvisited_valid ? unvisited_size : g_.num_nodes();
    if (allow_pull &&
        DirectionHeuristic::PreferBottomUp(
            frontier_arcs,
            g_.num_arcs() - explored_arcs + pull_overhead)) {
      if (!unvisited_valid) {
        size_t k = 0;
        for (NodeId v = 0; v < g_.num_nodes(); ++v) {
          if (!visited_.Test(v)) unvisited_[k++] = v;
        }
        unvisited_size = k;
        unvisited_valid = true;
      }
      size_t remaining = 0;
      for (size_t i = 0; i < unvisited_size; ++i) {
        const NodeId v = unvisited_[i];
        if (visited_.Test(v)) continue;
        bool found = false;
        for (NodeId y : g_.neighbors(v)) {
          if (cur_.Test(y)) {
            found = true;
            break;  // dist-only pull: first parent suffices
          }
        }
        if (found) {
          visited_.Mark(v);
          next_.Mark(v);
          next_.Push(v);
          cost += g_.degree(v);
          int32_t h = node_to_hyp_[v];
          if (h >= 0) hits->push_back(static_cast<uint32_t>(h));
        } else {
          unvisited_[remaining++] = v;
        }
      }
      unvisited_size = remaining;
    } else {
      for (NodeId w : cur_.vertices()) {
        for (NodeId y : g_.neighbors(w)) {
          if (!visited_.Test(y)) {
            visited_.Mark(y);
            next_.Mark(y);
            next_.Push(y);
            cost += g_.degree(y);
            int32_t h = node_to_hyp_[y];
            if (h >= 0) hits->push_back(static_cast<uint32_t>(h));
          }
        }
      }
    }
    cur_.Swap(next_);
    frontier_arcs = cost;
    explored_arcs += cost;
  }
}

double HarmonicClosenessProblem::VcDimension() const {
  return PiMaxVcBound(g_.num_nodes());
}

double HarmonicClosenessProblem::RiskToCentrality(double risk) const {
  const double n = static_cast<double>(g_.num_nodes());
  return n < 2 ? 0.0 : risk * n / (n - 1.0);
}

std::vector<double> EstimateHarmonicCloseness(
    const Graph& g, const std::vector<NodeId>& targets,
    const SaphyraOptions& options) {
  HarmonicClosenessProblem problem(g, targets);
  problem.set_traversal(options.traversal);
  SaphyraResult res = RunSaphyra(&problem, options);
  std::vector<double> out(res.combined_risks.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = problem.RiskToCentrality(res.combined_risks[i]);
  }
  return out;
}

std::vector<double> ExactHarmonicCloseness(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<double> hc(n, 0.0);
  if (n < 2) return hc;
  for (NodeId v = 0; v < n; ++v) {
    BfsResult r = Bfs(g, v);
    double sum = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      if (u != v && r.dist[u] != kUnreachable) {
        sum += 1.0 / static_cast<double>(r.dist[u]);
      }
    }
    hc[v] = sum / static_cast<double>(n - 1);
  }
  return hc;
}

}  // namespace saphyra
