#include "closeness/closeness.h"

#include <algorithm>
#include <cmath>

#include "graph/bfs.h"
#include "stats/vc.h"
#include "util/logging.h"

namespace saphyra {

HarmonicClosenessProblem::HarmonicClosenessProblem(const Graph& g,
                                                   std::vector<NodeId> targets)
    : g_(g),
      targets_(std::move(targets)),
      dist_(g.num_nodes(), 0),
      epoch_of_(g.num_nodes(), 0) {
  node_to_hyp_.assign(g.num_nodes(), -1);
  for (size_t i = 0; i < targets_.size(); ++i) {
    SAPHYRA_CHECK(targets_[i] < g.num_nodes());
    SAPHYRA_CHECK_MSG(node_to_hyp_[targets_[i]] == -1, "duplicate target");
    node_to_hyp_[targets_[i]] = static_cast<int32_t>(i);
  }
}

double HarmonicClosenessProblem::ComputeExactRisks(
    std::vector<double>* exact_risks) {
  const double n = static_cast<double>(g_.num_nodes());
  exact_risks->assign(targets_.size(), 0.0);
  for (size_t i = 0; i < targets_.size(); ++i) {
    // On X̂ (x >= 1/2): loss 1 iff d(u, v) = 1, i.e. u is a neighbor of v.
    (*exact_risks)[i] = static_cast<double>(g_.degree(targets_[i])) / (2.0 * n);
  }
  return 0.5;  // λ̂ = Pr[x >= 1/2]
}

void HarmonicClosenessProblem::SampleApproxLosses(
    Rng* rng, std::vector<uint32_t>* hits) {
  const NodeId n = g_.num_nodes();
  NodeId u = static_cast<NodeId>(rng->UniformInt(n));
  double x = 0.5 * rng->UniformDouble();  // conditional on X̃: x ~ U(0, 1/2)
  // Loss 1 iff x·d < 1 iff (d integral) d <= ceil(1/x) - 1; this also
  // covers 1/x integral, where d < 1/x means d <= 1/x - 1.
  uint64_t depth_limit;
  if (x <= 1.0 / static_cast<double>(n)) {
    depth_limit = n;  // every finite distance qualifies
  } else {
    depth_limit = static_cast<uint64_t>(std::ceil(1.0 / x)) - 1;
  }
  // Truncated BFS from u, reporting targets at 1 <= d <= depth_limit.
  ++epoch_;
  epoch_of_[u] = epoch_;
  dist_[u] = 0;
  queue_.clear();
  queue_.push_back(u);
  for (size_t head = 0; head < queue_.size(); ++head) {
    NodeId w = queue_[head];
    if (dist_[w] >= depth_limit) break;  // deeper nodes cannot have loss 1
    for (NodeId y : g_.neighbors(w)) {
      if (epoch_of_[y] != epoch_) {
        epoch_of_[y] = epoch_;
        dist_[y] = dist_[w] + 1;
        queue_.push_back(y);
        int32_t h = node_to_hyp_[y];
        if (h >= 0) hits->push_back(static_cast<uint32_t>(h));
      }
    }
  }
}

double HarmonicClosenessProblem::VcDimension() const {
  return PiMaxVcBound(g_.num_nodes());
}

double HarmonicClosenessProblem::RiskToCentrality(double risk) const {
  const double n = static_cast<double>(g_.num_nodes());
  return n < 2 ? 0.0 : risk * n / (n - 1.0);
}

std::vector<double> EstimateHarmonicCloseness(
    const Graph& g, const std::vector<NodeId>& targets,
    const SaphyraOptions& options) {
  HarmonicClosenessProblem problem(g, targets);
  SaphyraResult res = RunSaphyra(&problem, options);
  std::vector<double> out(res.combined_risks.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = problem.RiskToCentrality(res.combined_risks[i]);
  }
  return out;
}

std::vector<double> ExactHarmonicCloseness(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<double> hc(n, 0.0);
  if (n < 2) return hc;
  for (NodeId v = 0; v < n; ++v) {
    BfsResult r = Bfs(g, v);
    double sum = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      if (u != v && r.dist[u] != kUnreachable) {
        sum += 1.0 / static_cast<double>(r.dist[u]);
      }
    }
    hc[v] = sum / static_cast<double>(n - 1);
  }
  return hc;
}

}  // namespace saphyra
