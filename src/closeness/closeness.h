#ifndef SAPHYRA_CLOSENESS_CLOSENESS_H_
#define SAPHYRA_CLOSENESS_CLOSENESS_H_

#include <cstdint>
#include <vector>

#include "core/saphyra.h"
#include "graph/frontier.h"
#include "graph/graph.h"

namespace saphyra {

/// \brief Harmonic closeness centrality through the SaPHyRa framework —
/// the first of the paper's named future directions ("extending the
/// framework to other centrality measures such as closeness centrality",
/// §VI), built here as a third instantiation.
///
/// Harmonic centrality: hc(v) = 1/(n−1) · Σ_{u≠v} 1/d(u,v) (terms with
/// unreachable u contribute 0). The classic estimator samples sources and
/// averages 1/d — but that loss is fractional, while Algorithm 1's variance
/// machinery is sharpest for 0/1 losses. We therefore *randomize the
/// threshold*: a sample is a pair (u, x) with u uniform over V and
/// x ~ U(0,1), and
///     h_v((u,x)) = 1  iff  u ≠ v and x·d(u,v) < 1,
/// so that E[h_v] = (1/n)·Σ_{u≠v} min(1, 1/d(u,v)) = (1/n)·Σ_{u≠v} 1/d =
/// ((n−1)/n)·hc(v) — an unbiased 0/1-loss reformulation.
///
/// Sample-space partition: for x ≥ 1/2 the event x·d < 1 happens exactly
/// when d = 1, so the subspace X̂ = {(u,x) : x ≥ 1/2} admits closed-form
/// exact risks
///     ℓ̂_v = Pr[u ∈ N(v)] · Pr[x ≥ 1/2] = deg(v) / (2n),   λ̂ = 1/2,
/// and by Claim 8 the remaining sampling problem has strictly smaller
/// variance. Samples from X̃ draw x < 1/2 and run a BFS from u truncated at
/// depth ⌈1/x⌉ − 1 (nodes beyond it cannot have loss 1).
///
/// VC dimension: π((u,x)) = |{v : d(u,v) < 1/x}| can reach n for tiny x, so
/// the generic bound VC ≤ ⌊log₂ n⌋ + 1 applies (Lemma 5); the truncated-BFS
/// cost concentrates on large x, keeping samples cheap in expectation.
class HarmonicClosenessProblem : public HypothesisRankingProblem {
 public:
  /// \brief Rank `targets` by harmonic closeness on graph `g`.
  HarmonicClosenessProblem(const Graph& g, std::vector<NodeId> targets);

  size_t num_hypotheses() const override { return targets_.size(); }
  double ComputeExactRisks(std::vector<double>* exact_risks) override;
  void SampleApproxLosses(Rng* rng, std::vector<uint32_t>* hits) override;
  double VcDimension() const override;
  std::unique_ptr<HypothesisRankingProblem> CloneForSampling() override {
    auto clone = std::make_unique<HarmonicClosenessProblem>(g_, targets_);
    clone->set_traversal(traversal_);
    return clone;
  }

  /// \brief BFS level-expansion policy of the truncated traversal
  /// (graph/frontier.h). Unlike the σ-counting samplers, the distance-only
  /// pull may stop at the first frontier parent. The reported hit *sets*
  /// (and therefore the estimates) are policy-independent.
  void set_traversal(TraversalPolicy policy) { traversal_ = policy; }

  /// \brief Convert a combined risk ℓ back to the harmonic-centrality
  /// scale: hc = ℓ·n/(n−1).
  double RiskToCentrality(double risk) const;

 private:
  const Graph& g_;
  std::vector<NodeId> targets_;
  std::vector<int32_t> node_to_hyp_;
  TraversalPolicy traversal_ = TraversalPolicy::kAuto;
  // Truncated-BFS scratch, all epoch-reset FrontierSets: the visited
  // bitmap, the cur/next level pair, and the bottom-up candidate list.
  FrontierSet visited_;
  FrontierSet cur_, next_;
  std::vector<NodeId> unvisited_;
};

/// \brief Estimate the harmonic closeness of `targets` with an (ε,δ)
/// guarantee via Algorithm 1. Returned values are on the hc scale.
std::vector<double> EstimateHarmonicCloseness(
    const Graph& g, const std::vector<NodeId>& targets,
    const SaphyraOptions& options);

/// \brief Exact harmonic closeness by one BFS per node. O(nm); ground
/// truth for tests, examples, and benches.
std::vector<double> ExactHarmonicCloseness(const Graph& g);

}  // namespace saphyra

#endif  // SAPHYRA_CLOSENESS_CLOSENESS_H_
