#ifndef SAPHYRA_METRICS_RANK_H_
#define SAPHYRA_METRICS_RANK_H_

#include <cstdint>
#include <vector>

namespace saphyra {

/// Ranking-quality metrics used in the paper's evaluation (§V-A).
///
/// Ranks are distinct integers 1..k. Ties in the underlying scores are
/// broken by item id, exactly as the paper does ("if there are two nodes
/// with the same betweenness centrality, we break the tie by the nodes'
/// IDs").

/// \brief Ranks of `values`: rank[i] = position of item i when sorting by
/// value descending, ties broken by ascending id. Ranks start at 1.
std::vector<uint32_t> RanksDescending(const std::vector<double>& values);

/// \brief Spearman's rank correlation (Eq. 1) between two score vectors of
/// equal size k ≥ 2:  r_s = 1 − 6·Σ d_i² / (k(k²−1)).
double SpearmanCorrelation(const std::vector<double>& truth,
                           const std::vector<double>& estimate);

/// \brief Kendall's τ-a between the two tie-broken rankings, computed in
/// O(k log k) by merge-sort inversion counting.
double KendallTau(const std::vector<double>& truth,
                  const std::vector<double>& estimate);

/// \brief Mean absolute rank displacement, normalized by k (the "rank
/// deviation" of the paper's Fig. 7a), in [0, 1).
double RankDeviation(const std::vector<double>& truth,
                     const std::vector<double>& estimate);

/// \brief Signed relative error (%) of each estimate (the paper's Fig. 6):
/// (est/truth − 1)·100; 0 if both are zero; +inf if truth = 0 < est.
std::vector<double> SignedRelativeErrorPercent(
    const std::vector<double>& truth, const std::vector<double>& estimate);

/// \brief Classification of zero estimates (Fig. 6 discussion).
struct ZeroStats {
  uint64_t true_zeros = 0;   // truth == 0 and estimate == 0 (easy cases)
  uint64_t false_zeros = 0;  // truth > 0 but estimate == 0 (rank killers)
  uint64_t nonzeros = 0;     // estimate > 0
};

/// \brief Count true/false zeros of an estimate against the ground truth.
ZeroStats ClassifyZeros(const std::vector<double>& truth,
                        const std::vector<double>& estimate);

/// \brief Simple streaming mean/min/max/CI aggregator for repeated trials
/// (the paper reports means with 95% confidence intervals across subsets).
class TrialAggregate {
 public:
  void Add(double x);
  uint64_t count() const { return count_; }
  double mean() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double stddev() const;
  /// Half-width of the normal-approximation 95% confidence interval.
  double ci95_half_width() const;

 private:
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace saphyra

#endif  // SAPHYRA_METRICS_RANK_H_
