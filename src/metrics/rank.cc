#include "metrics/rank.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/logging.h"

namespace saphyra {

std::vector<uint32_t> RanksDescending(const std::vector<double>& values) {
  const size_t k = values.size();
  std::vector<uint32_t> idx(k);
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(), [&](uint32_t a, uint32_t b) {
    if (values[a] != values[b]) return values[a] > values[b];
    return a < b;  // deterministic tie-break by id
  });
  std::vector<uint32_t> rank(k);
  for (uint32_t pos = 0; pos < k; ++pos) rank[idx[pos]] = pos + 1;
  return rank;
}

double SpearmanCorrelation(const std::vector<double>& truth,
                           const std::vector<double>& estimate) {
  SAPHYRA_CHECK(truth.size() == estimate.size());
  const size_t k = truth.size();
  SAPHYRA_CHECK(k >= 2);
  std::vector<uint32_t> rt = RanksDescending(truth);
  std::vector<uint32_t> re = RanksDescending(estimate);
  double sum_d2 = 0.0;
  for (size_t i = 0; i < k; ++i) {
    double d = static_cast<double>(rt[i]) - static_cast<double>(re[i]);
    sum_d2 += d * d;
  }
  double kk = static_cast<double>(k);
  return 1.0 - 6.0 * sum_d2 / (kk * (kk * kk - 1.0));
}

namespace {

// Count inversions of `a` by merge sort; a is permuted to sorted order.
uint64_t CountInversions(std::vector<uint32_t>* a, size_t lo, size_t hi,
                         std::vector<uint32_t>* scratch) {
  if (hi - lo <= 1) return 0;
  size_t mid = (lo + hi) / 2;
  uint64_t inv = CountInversions(a, lo, mid, scratch) +
                 CountInversions(a, mid, hi, scratch);
  std::merge((*a).begin() + lo, (*a).begin() + mid, (*a).begin() + mid,
             (*a).begin() + hi, scratch->begin() + lo);
  // Count cross inversions: pairs (i < j) with a[i] > a[j] across halves.
  size_t i = lo;
  for (size_t j = mid; j < hi; ++j) {
    while (i < mid && (*a)[i] <= (*a)[j]) ++i;
    inv += mid - i;
  }
  std::copy(scratch->begin() + lo, scratch->begin() + hi, a->begin() + lo);
  return inv;
}

}  // namespace

double KendallTau(const std::vector<double>& truth,
                  const std::vector<double>& estimate) {
  SAPHYRA_CHECK(truth.size() == estimate.size());
  const size_t k = truth.size();
  SAPHYRA_CHECK(k >= 2);
  // Order items by the truth ranking, then count inversions of the estimate
  // ranking in that order: each inversion is a discordant pair.
  std::vector<uint32_t> rt = RanksDescending(truth);
  std::vector<uint32_t> re = RanksDescending(estimate);
  std::vector<uint32_t> order(k);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](uint32_t a, uint32_t b) { return rt[a] < rt[b]; });
  std::vector<uint32_t> seq(k);
  for (size_t i = 0; i < k; ++i) seq[i] = re[order[i]];
  std::vector<uint32_t> scratch(k);
  uint64_t discordant = CountInversions(&seq, 0, k, &scratch);
  double pairs = static_cast<double>(k) * (k - 1) / 2.0;
  return 1.0 - 2.0 * static_cast<double>(discordant) / pairs;
}

double RankDeviation(const std::vector<double>& truth,
                     const std::vector<double>& estimate) {
  SAPHYRA_CHECK(truth.size() == estimate.size());
  const size_t k = truth.size();
  SAPHYRA_CHECK(k >= 1);
  if (k == 1) return 0.0;
  std::vector<uint32_t> rt = RanksDescending(truth);
  std::vector<uint32_t> re = RanksDescending(estimate);
  double sum = 0.0;
  for (size_t i = 0; i < k; ++i) {
    sum += std::abs(static_cast<double>(rt[i]) - static_cast<double>(re[i]));
  }
  return sum / static_cast<double>(k) / static_cast<double>(k);
}

std::vector<double> SignedRelativeErrorPercent(
    const std::vector<double>& truth, const std::vector<double>& estimate) {
  SAPHYRA_CHECK(truth.size() == estimate.size());
  std::vector<double> out(truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == 0.0) {
      out[i] = estimate[i] == 0.0
                   ? 0.0
                   : std::numeric_limits<double>::infinity();
    } else {
      out[i] = (estimate[i] / truth[i] - 1.0) * 100.0;
    }
  }
  return out;
}

ZeroStats ClassifyZeros(const std::vector<double>& truth,
                        const std::vector<double>& estimate) {
  SAPHYRA_CHECK(truth.size() == estimate.size());
  ZeroStats s;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (estimate[i] > 0.0) {
      ++s.nonzeros;
    } else if (truth[i] > 0.0) {
      ++s.false_zeros;
    } else {
      ++s.true_zeros;
    }
  }
  return s;
}

void TrialAggregate::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  sum_sq_ += x * x;
}

double TrialAggregate::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double TrialAggregate::stddev() const {
  if (count_ < 2) return 0.0;
  double n = static_cast<double>(count_);
  double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1.0);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

double TrialAggregate::ci95_half_width() const {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

}  // namespace saphyra
