#include "bc/brandes.h"

#include <algorithm>
#include <atomic>
#include <optional>

#include "graph/bfs.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace saphyra {

namespace {

/// One source's dependency accumulation into `acc` (unnormalized).
///
/// The forward pass runs on the shared direction-optimizing BfsKernel
/// (graph/bfs.h): epoch-reset scratch instead of per-source O(n) fills,
/// and dense levels expanded bottom-up. The reverse sweep walks the
/// kernel's order backwards — it only relies on the non-decreasing
/// distance grouping, which both expansion directions preserve.
void AccumulateSource(const Graph& g, NodeId s, BfsKernel* kernel,
                      std::vector<double>* delta, std::vector<double>* acc) {
  kernel->Run(s);
  const std::span<const NodeId> order = kernel->order();
  // Reverse accumulation: δ_s(v) = Σ_{w: v pred of w} σ(v)/σ(w) (1 + δ(w)).
  for (NodeId v : order) (*delta)[v] = 0.0;
  for (size_t i = order.size(); i-- > 1;) {  // skip the source itself
    NodeId w = order[i];
    const uint32_t dw = kernel->dist(w);
    double coeff = (1.0 + (*delta)[w]) / kernel->sigma(w);
    for (NodeId v : g.neighbors(w)) {
      if (kernel->dist(v) + 1 == dw) {
        (*delta)[v] += kernel->sigma(v) * coeff;
      }
    }
    if (w != s) (*acc)[w] += (*delta)[w];
  }
}

void Normalize(const Graph& g, std::vector<double>* bc) {
  const double n = static_cast<double>(g.num_nodes());
  if (n < 2) return;
  for (double& x : *bc) x /= n * (n - 1.0);
}

}  // namespace

std::vector<double> BrandesBetweenness(const Graph& g,
                                       TraversalPolicy policy) {
  const NodeId n = g.num_nodes();
  std::vector<double> bc(n, 0.0);
  BfsKernel kernel(g, policy);
  std::vector<double> delta(n, 0.0);
  for (NodeId s = 0; s < n; ++s) {
    AccumulateSource(g, s, &kernel, &delta, &bc);
  }
  Normalize(g, &bc);
  return bc;
}

std::vector<double> ParallelBrandesBetweenness(const Graph& g,
                                               size_t num_threads,
                                               TraversalPolicy policy) {
  const NodeId n = g.num_nodes();
  // Default runs source-parallelize over the persistent process-wide pool;
  // an explicit thread count gets a dedicated pool of that size.
  std::optional<ThreadPool> local_pool;
  if (num_threads != 0) local_pool.emplace(num_threads);
  ThreadPool& pool = local_pool ? *local_pool : SharedThreadPool();
  const size_t workers = pool.num_threads();
  // One task per worker; each owns its scratch buffers and a private
  // accumulator, claiming sources from a shared cursor. Reduced at the end.
  std::vector<std::vector<double>> partial(workers,
                                           std::vector<double>(n, 0.0));
  std::atomic<NodeId> cursor{0};
  // Private task group: waits only on this computation's tasks, so
  // concurrent drivers can share SharedThreadPool (the multi-driver
  // contract of util/thread_pool.h).
  ThreadPool::TaskGroup group;
  for (size_t w = 0; w < workers; ++w) {
    pool.Submit(&group, [&, w] {
      BfsKernel kernel(g, policy);
      std::vector<double> delta(n, 0.0);
      for (;;) {
        NodeId s = cursor.fetch_add(1);
        if (s >= n) break;
        AccumulateSource(g, s, &kernel, &delta, &partial[w]);
      }
    });
  }
  pool.WaitGroup(&group);
  std::vector<double> bc(n, 0.0);
  for (const auto& p : partial) {
    for (NodeId v = 0; v < n; ++v) bc[v] += p[v];
  }
  Normalize(g, &bc);
  return bc;
}

}  // namespace saphyra
