#include "bc/brandes.h"

#include <algorithm>
#include <atomic>
#include <optional>

#include "graph/bfs.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace saphyra {

namespace {

/// One source's dependency accumulation into `acc` (unnormalized).
void AccumulateSource(const Graph& g, NodeId s, std::vector<uint32_t>* dist,
                      std::vector<double>* sigma, std::vector<double>* delta,
                      std::vector<NodeId>* order, std::vector<double>* acc) {
  // Forward BFS computing σ and visit order.
  std::fill(dist->begin(), dist->end(), kUnreachable);
  std::fill(sigma->begin(), sigma->end(), 0.0);
  order->clear();
  (*dist)[s] = 0;
  (*sigma)[s] = 1.0;
  order->push_back(s);
  for (size_t head = 0; head < order->size(); ++head) {
    NodeId u = (*order)[head];
    uint32_t du = (*dist)[u];
    for (NodeId v : g.neighbors(u)) {
      if ((*dist)[v] == kUnreachable) {
        (*dist)[v] = du + 1;
        order->push_back(v);
      }
      if ((*dist)[v] == du + 1) (*sigma)[v] += (*sigma)[u];
    }
  }
  // Reverse accumulation: δ_s(v) = Σ_{w: v pred of w} σ(v)/σ(w) (1 + δ(w)).
  for (NodeId v : *order) (*delta)[v] = 0.0;
  for (size_t i = order->size(); i-- > 1;) {  // skip the source itself
    NodeId w = (*order)[i];
    double coeff = (1.0 + (*delta)[w]) / (*sigma)[w];
    for (NodeId v : g.neighbors(w)) {
      if ((*dist)[v] + 1 == (*dist)[w]) {
        (*delta)[v] += (*sigma)[v] * coeff;
      }
    }
    if (w != s) (*acc)[w] += (*delta)[w];
  }
}

void Normalize(const Graph& g, std::vector<double>* bc) {
  const double n = static_cast<double>(g.num_nodes());
  if (n < 2) return;
  for (double& x : *bc) x /= n * (n - 1.0);
}

}  // namespace

std::vector<double> BrandesBetweenness(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<double> bc(n, 0.0);
  std::vector<uint32_t> dist(n);
  std::vector<double> sigma(n), delta(n, 0.0);
  std::vector<NodeId> order;
  order.reserve(n);
  for (NodeId s = 0; s < n; ++s) {
    AccumulateSource(g, s, &dist, &sigma, &delta, &order, &bc);
  }
  Normalize(g, &bc);
  return bc;
}

std::vector<double> ParallelBrandesBetweenness(const Graph& g,
                                               size_t num_threads) {
  const NodeId n = g.num_nodes();
  // Default runs source-parallelize over the persistent process-wide pool;
  // an explicit thread count gets a dedicated pool of that size.
  std::optional<ThreadPool> local_pool;
  if (num_threads != 0) local_pool.emplace(num_threads);
  ThreadPool& pool = local_pool ? *local_pool : SharedThreadPool();
  const size_t workers = pool.num_threads();
  // One task per worker; each owns its scratch buffers and a private
  // accumulator, claiming sources from a shared cursor. Reduced at the end.
  std::vector<std::vector<double>> partial(workers,
                                           std::vector<double>(n, 0.0));
  std::atomic<NodeId> cursor{0};
  for (size_t w = 0; w < workers; ++w) {
    pool.Submit([&, w] {
      std::vector<uint32_t> dist(n);
      std::vector<double> sigma(n), delta(n, 0.0);
      std::vector<NodeId> order;
      order.reserve(n);
      for (;;) {
        NodeId s = cursor.fetch_add(1);
        if (s >= n) break;
        AccumulateSource(g, s, &dist, &sigma, &delta, &order, &partial[w]);
      }
    });
  }
  pool.Wait();
  std::vector<double> bc(n, 0.0);
  for (const auto& p : partial) {
    for (NodeId v = 0; v < n; ++v) bc[v] += p[v];
  }
  Normalize(g, &bc);
  return bc;
}

}  // namespace saphyra
