#ifndef SAPHYRA_BC_EXACT_SUBSPACE_H_
#define SAPHYRA_BC_EXACT_SUBSPACE_H_

#include <cstdint>
#include <vector>

#include "bicomp/isp.h"
#include "graph/graph.h"

namespace saphyra {

/// \brief Output of the Exact_bc oracle (§IV-B, Lemma 17).
struct ExactSubspaceResult {
  /// ℓ̂_v per target (hypothesis order of the PersonalizedSpace): the
  /// expected risk of h_v restricted to the 2-hop exact subspace X̂_c^(A),
  /// under the PISP distribution D_c^(A).
  std::vector<double> exact_risks;
  /// λ̂ = Pr_{x∼D_c^(A)}[x ∈ X̂_c^(A)].
  double lambda_hat = 0.0;
  /// Diagnostics: number of ordered (s,t) pairs at distance 2 examined.
  uint64_t pairs_examined = 0;
};

/// \brief Exact_bc: exact risks over the 2-hop exact subspace.
///
/// The exact subspace X̂ (Eq. 29) is the set of length-2 intra-component
/// shortest paths with an inner node in A. For every ordered pair (s,t) at
/// distance 2 whose two-hop connections run inside one biconnected
/// component, the pair mass is q_st/(σ_st·γ·η) per path; summing over the
/// σ^A_st paths whose middle lies in A yields both λ̂ and, per middle v,
/// the contribution to ℓ̂_v.
///
/// Every source is drawn from B = the neighbors of A: any 2-hop path with a
/// middle in A starts (and ends) at a neighbor of that middle, and any
/// shortest path witnessing R(h_v) > 0 contains such a 2-hop subpath, which
/// is why the exact subspace eliminates false zeros (Lemma 19).
///
/// Runs in O(Σ_{s∈B} Σ_{v∈adj(s)} deg(v)) = O(K) time (Lemma 18) and O(n)
/// space.
ExactSubspaceResult ComputeExactSubspace(const PersonalizedSpace& space);

/// \brief True iff path (s, mid, t) lies in the exact subspace of `space`:
/// d(s,t) = 2 via an intra-component 2-hop path and mid ∈ A. Shared by the
/// rejection step of Gen_bc (Algorithm 2 line 6) and the tests.
bool InExactSubspace(const PersonalizedSpace& space,
                     const std::vector<NodeId>& path_nodes);

}  // namespace saphyra

#endif  // SAPHYRA_BC_EXACT_SUBSPACE_H_
