#ifndef SAPHYRA_BC_BRANDES_H_
#define SAPHYRA_BC_BRANDES_H_

#include <cstddef>
#include <vector>

#include "graph/frontier.h"
#include "graph/graph.h"

namespace saphyra {

/// \brief Exact betweenness centrality via Brandes' algorithm [33].
///
/// Returns bc(v) normalized as in Eq. 3 of the paper:
///   bc(v) = 1/(n(n−1)) · Σ_{s≠v≠t} σ_st(v)/σ_st   (ordered pairs).
/// O(nm) time, O(n) space per source. This is the ground-truth oracle the
/// paper obtained from a Cray XC40; here it bounds the graph sizes usable
/// in correlation experiments. The forward pass runs on the
/// direction-optimizing BfsKernel; `policy` forces a direction (dist/σ are
/// policy-independent, and δ only in the last ulp via level ordering).
std::vector<double> BrandesBetweenness(
    const Graph& g, TraversalPolicy policy = TraversalPolicy::kAuto);

/// \brief Multithreaded Brandes: per-source dependency accumulations are
/// independent and summed per thread, then reduced. `num_threads = 0`
/// runs on the persistent SharedThreadPool; a nonzero count gets a
/// dedicated pool of that size.
///
/// Do not call with num_threads = 0 from code already executing on the
/// shared pool (e.g. inside a SampleEngine worker): nested Submit/Wait on
/// the same pool deadlocks. Pass an explicit thread count there.
std::vector<double> ParallelBrandesBetweenness(
    const Graph& g, size_t num_threads = 0,
    TraversalPolicy policy = TraversalPolicy::kAuto);

}  // namespace saphyra

#endif  // SAPHYRA_BC_BRANDES_H_
