#include "bc/path_sampler.h"

#include <algorithm>

#include "graph/adjacency.h"
#include "util/logging.h"

namespace saphyra {

// The adjacency adapters the traversal core is templated over live in
// graph/adjacency.h, shared with the delta-overlay substrate; the
// restriction test is still resolved at compile time (the component-view
// adapter has none, the filtered adapter keeps the per-arc label compare).

PathSampler::PathSampler(const Graph& g,
                         const std::vector<uint32_t>* arc_component)
    : g_(g),
      arc_component_(arc_component),
      regular_domain_(g.max_degree() <= kRegularGraphMaxDegree) {
  for (Side* side : {&fwd_, &bwd_}) {
    side->state.assign(g.num_nodes(), NodeState{0, kNoDist, 0.0});
    side->frontier.Reset(g.num_nodes());
    side->next.Reset(g.num_nodes());
    side->unvisited.resize(g.num_nodes());
  }
}

PathSampler::PathSampler(const Graph& g, const ComponentViews& views)
    : g_(g),
      views_(&views),
      regular_domain_(g.max_degree() <= kRegularGraphMaxDegree) {
  // Local ids never exceed global ones, so n-sized scratch covers both the
  // unrestricted global path and every component view; restricted samples
  // only ever touch the first |C| entries of the state array.
  for (Side* side : {&fwd_, &bwd_}) {
    side->state.assign(g.num_nodes(), NodeState{0, kNoDist, 0.0});
    side->frontier.Reset(g.num_nodes());
    side->next.Reset(g.num_nodes());
    side->unvisited.resize(g.num_nodes());
  }
}

void PathSampler::InitSide(Side* side, NodeId origin, uint64_t origin_cost) {
  side->depth = 0;
  side->state[origin] = NodeState{epoch_, 0, 1.0};
  side->frontier.Clear();
  side->frontier.Push(origin);
  side->frontier_cost = origin_cost;
  side->explored_cost = origin_cost;
  side->unvisited_valid = false;
}

template <class Adj>
bool PathSampler::ExpandLevel(const Adj& adj, Side* side, const Side* other) {
  const uint32_t new_depth = side->depth + 1;
  constexpr bool kHasDomain =
      requires { adj.DomainSize(); adj.DomainArcs(); };
  const bool hybrid = [&] {
    if constexpr (kHasDomain) {
      return traversal_ != TraversalPolicy::kTopDown;
    } else {
      return false;
    }
  }();
  if constexpr (kHasDomain) {
    // Direction-optimizing dispatch: pull when this side's frontier carries
    // enough of the domain's still-unexplored arc mass. The first pull of
    // a search must also build the candidate list — an O(domain) scan —
    // so that cost is charged up front; once the list exists only its
    // current length is charged. The heuristic sees only set sizes, and
    // both expansions produce the identical new level (same membership,
    // same dist, exact same σ — integer-valued doubles), so the policy
    // never changes what is sampled, only how fast.
    if (hybrid) {
      const uint64_t pull_overhead =
          side->unvisited_valid ? side->unvisited_size : domain_size_;
      if (DirectionHeuristic::PreferBottomUp(
              side->frontier_cost,
              domain_arcs_ - side->explored_cost + pull_overhead)) {
        ExpandLevelBottomUp(adj, side, other, new_depth);
        ++bottom_up_levels_;
        side->depth = new_depth;
        return !side->frontier.empty();
      }
    }
  }
  NodeId* next = side->next.data();
  size_t cnt = 0;
  double su = 0.0;  // σ of the frontier node being expanded
  auto visit = [&](NodeId v) {
    NodeState& sv = side->state[v];
    if (sv.epoch != epoch_) {
      // First touch this epoch: v joins the new level with σ = σ(u).
      sv = NodeState{epoch_, new_depth, su};
      next[cnt++] = v;
      // Bidirectional meeting test, folded into discovery: one random load
      // per *new* node beats a separate post-expansion pass over the
      // frontier.
      if (other != nullptr && other->state[v].epoch == epoch_) {
        meet_.push_back(v);
      }
    } else {
      // Already stamped: add σ(u) iff v sits on the level being built.
      // Selected, not branched — level membership is a coin flip here.
      sv.sigma += sv.dist == new_depth ? su : 0.0;
    }
  };
  const std::span<const NodeId> frontier = side->frontier.vertices();
  for (size_t fi = 0; fi < frontier.size(); ++fi) {
    const NodeId u = frontier[fi];
    if constexpr (requires { adj.PrefetchNode(u); }) {
      if (fi + 2 < frontier.size()) {
        adj.PrefetchNode(frontier[fi + 2]);
      }
      // One extra slot of lookahead on the node's own state line: its σ is
      // the first read of every expansion, and the address comes straight
      // off the sparse frontier list (no CSR row computation needed).
      if (fi + 8 < frontier.size()) {
        __builtin_prefetch(&side->state[frontier[fi + 8]], 0, 3);
      }
    }
    su = side->state[u].sigma;
    if constexpr (requires { adj.ArcsOf(u); }) {
      // Span-capable substrates (component view, unrestricted global CSR):
      // prefetch the packed per-node state a few arcs ahead — the only
      // non-sequential access of the loop. The loop is split so the steady
      // state carries no bounds check for the prefetch slot.
      const auto nbr = adj.ArcsOf(u);
      arcs_scanned_ += nbr.size();
      constexpr size_t kLookahead = 8;
      const size_t n = nbr.size();
      size_t i = 0;
      if (n > kLookahead) {
        for (; i + kLookahead < n; ++i) {
          __builtin_prefetch(&side->state[nbr[i + kLookahead]], 1, 3);
          visit(nbr[i]);
        }
      }
      for (; i < n; ++i) visit(nbr[i]);
    } else {
      adj.ForEachScanned(u, &arcs_scanned_, visit);
    }
  }
  side->frontier.Swap(side->next);
  side->frontier.set_size(cnt);
  // Arc mass of the level just built, for the bidirectional balance and
  // the direction heuristic. Near-regular domains (grids: max spread of a
  // factor ~LevelCostEstimate threshold around the mean) use the free
  // |frontier| × avg-degree estimate; skewed domains pay one tight pass
  // over the new frontier — the sharp per-node balance that matters
  // exactly when degrees are skewed. (The seed rescanned *both* frontiers
  // every balancing round.) The pass/estimate is skipped whenever its
  // result is dead: once a meeting is found this was the final level, and
  // a pure top-down unidirectional search never consults costs at all.
  uint64_t cost = 0;
  if ((other != nullptr && meet_.empty()) || (hybrid && other == nullptr)) {
    if (!LevelCostEstimate(cnt, &cost)) {
      const NodeId* f = side->frontier.data();
      for (size_t i = 0; i < cnt; ++i) cost += adj.Cost(f[i]);
    }
  }
  side->frontier_cost = cost;
  side->explored_cost += cost;
  side->depth = new_depth;
  return cnt != 0;
}

/// Bottom-up pull of one BFS level: instead of pushing the frontier's
/// arcs, scan each still-unvisited vertex of the (compact) domain and sum
/// σ over its parents on the current frontier, probed through the
/// FrontierSet bitmap — one bit test per arc instead of a 16-byte state
/// touch. No early exit: σ needs every parent's mass. Newly discovered
/// vertices come out in ascending id order; since σ sums are exact and
/// the meet set is sorted before use, this changes nothing downstream.
template <class Adj>
void PathSampler::ExpandLevelBottomUp(const Adj& adj, Side* side,
                                      const Side* other, uint32_t new_depth) {
  const NodeId domain = domain_size_;
  if (!side->unvisited_valid) {
    size_t k = 0;
    for (NodeId v = 0; v < domain; ++v) {
      if (side->state[v].epoch != epoch_) side->unvisited[k++] = v;
    }
    side->unvisited_size = k;
    side->unvisited_valid = true;
  }
  // Mark the current frontier in the FrontierSet bitmap: one bit probe
  // per scanned arc below instead of a 16-byte state-line touch.
  side->frontier.BeginEpoch();
  side->frontier.MarkSparse();
  NodeId* next = side->next.data();
  size_t cnt = 0;
  uint64_t cost = 0;
  NodeId* cand = side->unvisited.data();
  size_t remaining = 0;
  for (size_t i = 0; i < side->unvisited_size; ++i) {
    const NodeId v = cand[i];
    NodeState& sv = side->state[v];
    if (sv.epoch == epoch_) continue;  // stamped by a top-down level
    if constexpr (requires { adj.PrefetchNode(v); }) {
      if (i + 4 < side->unvisited_size) adj.PrefetchNode(cand[i + 4]);
    }
    const auto nbr = adj.ArcsOf(v);
    arcs_scanned_ += nbr.size();
    double acc = 0.0;
    for (NodeId u : nbr) {
      if (side->frontier.Test(u)) acc += side->state[u].sigma;
    }
    if (acc != 0.0) {
      sv = NodeState{epoch_, new_depth, acc};
      next[cnt++] = v;
      cost += nbr.size();  // Cost(v) == deg(v), already in hand — free
      if (other != nullptr && other->state[v].epoch == epoch_) {
        meet_.push_back(v);
      }
    } else {
      cand[remaining++] = v;
    }
  }
  side->unvisited_size = remaining;
  side->frontier.Swap(side->next);
  side->frontier.set_size(cnt);
  // The exact mass came for free above, but the balance value must be
  // policy-independent (a top-down expansion of the same level may have
  // estimated it): apply the identical estimate rule.
  uint64_t est = 0;
  if (LevelCostEstimate(cnt, &est)) cost = est;
  side->frontier_cost = cost;
  side->explored_cost += cost;
}

template <class Adj>
void PathSampler::WalkDown(const Adj& adj, const Side& side, NodeId v,
                           Rng* rng, std::vector<NodeId>* out) {
  NodeId cur = v;
  while (side.state[cur].dist > 0) {
    const uint32_t want = side.state[cur].dist - 1;
    // Weighted reservoir over predecessors: pick u with prob σ(u)/Σσ.
    double total = 0.0;
    NodeId pick = kInvalidNode;
    auto consider = [&](NodeId u) {
      const NodeState& su = side.state[u];
      if (su.epoch != epoch_ || su.dist != want) return;
      total += su.sigma;
      if (rng->UniformDouble() * total < su.sigma) pick = u;
    };
    if constexpr (requires { adj.ArcsOf(cur); }) {
      // Path nodes are biased toward high degree, so this scan is a real
      // share of the per-sample cost; prefetch like ExpandLevel does.
      const auto nbr = adj.ArcsOf(cur);
      constexpr size_t kLookahead = 8;
      const size_t n = nbr.size();
      size_t i = 0;
      if (n > kLookahead) {
        for (; i + kLookahead < n; ++i) {
          __builtin_prefetch(&side.state[nbr[i + kLookahead]], 0, 3);
          consider(nbr[i]);
        }
      }
      for (; i < n; ++i) consider(nbr[i]);
    } else {
      adj.ForEach(cur, consider);
    }
    SAPHYRA_CHECK(pick != kInvalidNode);
    out->push_back(pick);
    cur = pick;
  }
}

bool PathSampler::SampleUniformPath(NodeId s, NodeId t, uint32_t comp,
                                    SamplingStrategy strategy, Rng* rng,
                                    PathSample* out) {
  SAPHYRA_CHECK(s != t);
  SAPHYRA_CHECK(s < g_.num_nodes() && t < g_.num_nodes());
  if (++epoch_ == 0) {
    // 32-bit epoch wrapped: wipe the stamps once and restart at 1.
    for (Side* side : {&fwd_, &bwd_}) {
      std::fill(side->state.begin(), side->state.end(),
                NodeState{0, kNoDist, 0.0});
    }
    epoch_ = 1;
  }
  arcs_scanned_ = 0;
  bottom_up_levels_ = 0;
  out->nodes.clear();
  out->num_paths = 0.0;
  out->length = 0;
  out->found = false;
  if (comp == kInvalidComp) {
    return Dispatch(GlobalAdj{&g_}, s, t, strategy, rng, out);
  }
  if (views_ != nullptr) {
    const NodeId ls = views_->ToLocal(comp, s);
    const NodeId lt = views_->ToLocal(comp, t);
    SAPHYRA_CHECK_MSG(ls != kInvalidNode && lt != kInvalidNode,
                      "restricted endpoints must belong to the component");
    if (!Dispatch(ViewAdj{views_, comp}, ls, lt, strategy, rng, out)) {
      return false;
    }
    for (NodeId& v : out->nodes) v = views_->ToGlobal(comp, v);
    return true;
  }
  SAPHYRA_CHECK_MSG(arc_component_ != nullptr,
                    "component restriction needs arc labels or views");
  return Dispatch(FilteredAdj{&g_, arc_component_, comp}, s, t, strategy, rng,
                  out);
}

template <class Adj>
bool PathSampler::Dispatch(const Adj& adj, NodeId s, NodeId t,
                           SamplingStrategy strategy, Rng* rng,
                           PathSample* out) {
  if constexpr (requires { adj.DomainSize(); adj.DomainArcs(); }) {
    domain_size_ = adj.DomainSize();
    domain_arcs_ = adj.DomainArcs();
  } else {
    // No compact domain (filtered legacy mode): disable the near-regular
    // cost estimate so stale metrics from a previous sample never apply.
    domain_size_ = 0;
    domain_arcs_ = 1;
  }
  if (strategy == SamplingStrategy::kBidirectional) {
    return SampleBidirectional(adj, s, t, rng, out);
  }
  return SampleUnidirectional(adj, s, t, rng, out);
}

template <class Adj>
bool PathSampler::SampleBidirectional(const Adj& adj, NodeId s, NodeId t,
                                      Rng* rng, PathSample* out) {
  InitSide(&fwd_, s, adj.Cost(s));
  InitSide(&bwd_, t, adj.Cost(t));
  // Grow the cheaper side one full level at a time. After each expansion,
  // any node of the new frontier already seen by the other side is a
  // "middle": completed BFS levels make both σ values final, and all
  // middles found in the same round sit on minimum-length paths (see the
  // meeting argument in DESIGN.md / KADABRA [12]).
  for (;;) {
    Side* grow = fwd_.frontier_cost <= bwd_.frontier_cost ? &fwd_ : &bwd_;
    const Side& other = (grow == &fwd_) ? bwd_ : fwd_;
    meet_.clear();
    if (!ExpandLevel(adj, grow, &other)) return false;  // t unreachable
    if (!meet_.empty()) break;
  }
  const uint32_t d = fwd_.depth + bwd_.depth;
  // Canonicalize the meet set: a top-down level appends middles in
  // discovery order, a bottom-up level in ascending id order. Sorting
  // before the weighted draw makes the RNG stream — and therefore the
  // sampled path for a fixed seed — independent of the expansion
  // direction (the sampled distribution is order-independent either way).
  std::sort(meet_.begin(), meet_.end());
  // σ_st and middle selection, weighted by σ_s(v)·σ_t(v).
  double sigma_st = 0.0;
  NodeId middle = kInvalidNode;
  for (NodeId v : meet_) {
    double w = fwd_.state[v].sigma * bwd_.state[v].sigma;
    sigma_st += w;
    if (rng->UniformDouble() * sigma_st < w) middle = v;
  }
  SAPHYRA_CHECK(middle != kInvalidNode);

  // Assemble s .. middle .. t.
  walk_.clear();
  WalkDown(adj, fwd_, middle, rng, &walk_);
  out->nodes.assign(walk_.rbegin(), walk_.rend());
  out->nodes.push_back(middle);
  WalkDown(adj, bwd_, middle, rng, &out->nodes);
  SAPHYRA_CHECK(out->nodes.front() == s && out->nodes.back() == t);
  out->num_paths = sigma_st;
  out->length = d;
  out->found = true;
  return true;
}

template <class Adj>
bool PathSampler::SampleUnidirectional(const Adj& adj, NodeId s, NodeId t,
                                       Rng* rng, PathSample* out) {
  InitSide(&fwd_, s, adj.Cost(s));
  // Expand until the level containing t completes (so σ(t) is final).
  bool reached = false;
  for (;;) {
    if (!ExpandLevel(adj, &fwd_, nullptr)) break;
    const NodeState& st = fwd_.state[t];
    if (st.epoch == epoch_ && st.dist <= fwd_.depth) {
      reached = true;  // t's level completed (or finalized earlier)
      break;
    }
  }
  if (!reached) return false;
  walk_.clear();
  WalkDown(adj, fwd_, t, rng, &walk_);
  out->nodes.assign(walk_.rbegin(), walk_.rend());
  out->nodes.push_back(t);
  SAPHYRA_CHECK(out->nodes.front() == s && out->nodes.back() == t);
  out->num_paths = fwd_.state[t].sigma;
  out->length = fwd_.state[t].dist;
  out->found = true;
  return true;
}

}  // namespace saphyra
