#include "bc/path_sampler.h"

#include <algorithm>

#include "util/logging.h"

namespace saphyra {

PathSampler::PathSampler(const Graph& g,
                         const std::vector<uint32_t>* arc_component)
    : g_(g), arc_component_(arc_component) {
  for (Side* side : {&fwd_, &bwd_}) {
    side->dist.assign(g.num_nodes(), kNoDist);
    side->sigma.assign(g.num_nodes(), 0.0);
    side->epoch.assign(g.num_nodes(), 0);
  }
}

void PathSampler::InitSide(Side* side, NodeId origin) {
  side->frontier.clear();
  side->next.clear();
  side->depth = 0;
  side->epoch[origin] = epoch_;
  side->dist[origin] = 0;
  side->sigma[origin] = 1.0;
  side->frontier.push_back(origin);
}

bool PathSampler::ExpandLevel(Side* side, uint32_t comp) {
  side->next.clear();
  const uint32_t new_depth = side->depth + 1;
  for (NodeId u : side->frontier) {
    const EdgeIndex base = g_.offset(u);
    const auto nbr = g_.neighbors(u);
    const double su = side->sigma[u];
    for (size_t i = 0; i < nbr.size(); ++i) {
      ++arcs_scanned_;
      if (!ArcAllowed(base + i, comp)) continue;
      NodeId v = nbr[i];
      if (side->epoch[v] != epoch_) {
        side->epoch[v] = epoch_;
        side->dist[v] = new_depth;
        side->sigma[v] = 0.0;
        side->next.push_back(v);
      }
      if (side->dist[v] == new_depth) side->sigma[v] += su;
    }
  }
  side->frontier.swap(side->next);
  side->depth = new_depth;
  return !side->frontier.empty();
}

uint64_t PathSampler::FrontierCost(const Side& side) const {
  uint64_t cost = 0;
  for (NodeId u : side.frontier) cost += g_.degree(u);
  return cost;
}

void PathSampler::WalkDown(const Side& side, NodeId v, uint32_t comp,
                           Rng* rng, std::vector<NodeId>* out) {
  NodeId cur = v;
  while (side.dist[cur] > 0) {
    const uint32_t want = side.dist[cur] - 1;
    const EdgeIndex base = g_.offset(cur);
    const auto nbr = g_.neighbors(cur);
    // Weighted reservoir over predecessors: pick u with prob σ(u)/Σσ.
    double total = 0.0;
    NodeId pick = kInvalidNode;
    for (size_t i = 0; i < nbr.size(); ++i) {
      if (!ArcAllowed(base + i, comp)) continue;
      NodeId u = nbr[i];
      if (side.epoch[u] != epoch_ || side.dist[u] != want) continue;
      total += side.sigma[u];
      if (rng->UniformDouble() * total < side.sigma[u]) pick = u;
    }
    SAPHYRA_CHECK(pick != kInvalidNode);
    out->push_back(pick);
    cur = pick;
  }
}

bool PathSampler::SampleUniformPath(NodeId s, NodeId t, uint32_t comp,
                                    SamplingStrategy strategy, Rng* rng,
                                    PathSample* out) {
  SAPHYRA_CHECK(s != t);
  SAPHYRA_CHECK(s < g_.num_nodes() && t < g_.num_nodes());
  ++epoch_;
  arcs_scanned_ = 0;
  out->nodes.clear();
  out->num_paths = 0.0;
  out->length = 0;
  out->found = false;
  if (strategy == SamplingStrategy::kBidirectional) {
    return SampleBidirectional(s, t, comp, rng, out);
  }
  return SampleUnidirectional(s, t, comp, rng, out);
}

bool PathSampler::SampleBidirectional(NodeId s, NodeId t, uint32_t comp,
                                      Rng* rng, PathSample* out) {
  InitSide(&fwd_, s);
  InitSide(&bwd_, t);
  // Grow the cheaper side one full level at a time. After each expansion,
  // any node of the new frontier already seen by the other side is a
  // "middle": completed BFS levels make both σ values final, and all
  // middles found in the same round sit on minimum-length paths (see the
  // meeting argument in DESIGN.md / KADABRA [12]).
  for (;;) {
    Side* grow = FrontierCost(fwd_) <= FrontierCost(bwd_) ? &fwd_ : &bwd_;
    const Side& other = (grow == &fwd_) ? bwd_ : fwd_;
    if (!ExpandLevel(grow, comp)) return false;  // t unreachable from s
    meet_.clear();
    for (NodeId v : grow->frontier) {
      if (other.epoch[v] == epoch_) meet_.push_back(v);
    }
    if (!meet_.empty()) break;
  }
  const uint32_t d = fwd_.depth + bwd_.depth;
  // σ_st and middle selection, weighted by σ_s(v)·σ_t(v).
  double sigma_st = 0.0;
  NodeId middle = kInvalidNode;
  for (NodeId v : meet_) {
    double w = fwd_.sigma[v] * bwd_.sigma[v];
    sigma_st += w;
    if (rng->UniformDouble() * sigma_st < w) middle = v;
  }
  SAPHYRA_CHECK(middle != kInvalidNode);

  // Assemble s .. middle .. t.
  std::vector<NodeId> to_s;
  WalkDown(fwd_, middle, comp, rng, &to_s);
  out->nodes.assign(to_s.rbegin(), to_s.rend());
  out->nodes.push_back(middle);
  WalkDown(bwd_, middle, comp, rng, &out->nodes);
  SAPHYRA_CHECK(out->nodes.front() == s && out->nodes.back() == t);
  out->num_paths = sigma_st;
  out->length = d;
  out->found = true;
  return true;
}

bool PathSampler::SampleUnidirectional(NodeId s, NodeId t, uint32_t comp,
                                       Rng* rng, PathSample* out) {
  InitSide(&fwd_, s);
  // Expand until the level containing t completes (so σ(t) is final).
  bool reached = false;
  for (;;) {
    if (!ExpandLevel(&fwd_, comp)) break;
    if (fwd_.epoch[t] == epoch_ && fwd_.dist[t] == fwd_.depth) {
      reached = true;
      break;
    }
    if (fwd_.epoch[t] == epoch_ && fwd_.dist[t] < fwd_.depth) {
      reached = true;  // already finalized on an earlier level
      break;
    }
  }
  if (!reached) return false;
  std::vector<NodeId> to_s;
  WalkDown(fwd_, t, comp, rng, &to_s);
  out->nodes.assign(to_s.rbegin(), to_s.rend());
  out->nodes.push_back(t);
  SAPHYRA_CHECK(out->nodes.front() == s && out->nodes.back() == t);
  out->num_paths = fwd_.sigma[t];
  out->length = fwd_.dist[t];
  out->found = true;
  return true;
}

}  // namespace saphyra
