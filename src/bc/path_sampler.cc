#include "bc/path_sampler.h"

#include <algorithm>

#include "util/logging.h"

namespace saphyra {

namespace {

// Adjacency adapters the traversal core is templated over. Each exposes
//   ForEachScanned(u, f) — visit the allowed neighbors of u, charging every
//                          arc scanned (allowed or not) to *scanned,
//   ForEach(u, f)        — the same visit without cost accounting (the
//                          backward walks are not part of the scan metric),
//   Cost(u)              — arc mass for the frontier-balancing heuristic.
// The restriction test is resolved at compile time: the component-view
// adapter has none, the filtered adapter keeps the per-arc label compare.

struct GlobalAdj {
  const Graph* g;
  std::span<const NodeId> ArcsOf(NodeId u) const { return g->neighbors(u); }
  void PrefetchNode(NodeId u) const {
    __builtin_prefetch(g->neighbors(u).data(), 0, 2);
  }
  template <class F>
  void ForEach(NodeId u, F&& f) const {
    for (NodeId v : g->neighbors(u)) f(v);
  }
  uint64_t Cost(NodeId u) const { return g->degree(u); }
};

struct FilteredAdj {
  const Graph* g;
  const std::vector<uint32_t>* arc_component;
  uint32_t comp;
  template <class F>
  void ForEachScanned(NodeId u, uint64_t* scanned, F&& f) const {
    const EdgeIndex base = g->offset(u);
    const auto nbr = g->neighbors(u);
    *scanned += nbr.size();
    for (size_t i = 0; i < nbr.size(); ++i) {
      if ((*arc_component)[base + i] == comp) f(nbr[i]);
    }
  }
  template <class F>
  void ForEach(NodeId u, F&& f) const {
    const EdgeIndex base = g->offset(u);
    const auto nbr = g->neighbors(u);
    for (size_t i = 0; i < nbr.size(); ++i) {
      if ((*arc_component)[base + i] == comp) f(nbr[i]);
    }
  }
  uint64_t Cost(NodeId u) const { return g->degree(u); }
};

struct ViewAdj {
  const ComponentViews* views;
  uint32_t comp;
  std::span<const NodeId> ArcsOf(NodeId u) const {
    return views->Neighbors(comp, u);
  }
  void PrefetchNode(NodeId u) const { views->PrefetchOffsets(comp, u); }
  template <class F>
  void ForEach(NodeId u, F&& f) const {
    for (NodeId v : views->Neighbors(comp, u)) f(v);
  }
  uint64_t Cost(NodeId u) const { return views->Degree(comp, u); }
};

}  // namespace

PathSampler::PathSampler(const Graph& g,
                         const std::vector<uint32_t>* arc_component)
    : g_(g), arc_component_(arc_component) {
  for (Side* side : {&fwd_, &bwd_}) {
    side->state.assign(g.num_nodes(), NodeState{0, kNoDist, 0.0});
    side->frontier.resize(g.num_nodes() + 1);
    side->next.resize(g.num_nodes() + 1);
  }
}

PathSampler::PathSampler(const Graph& g, const ComponentViews& views)
    : g_(g), views_(&views) {
  // Local ids never exceed global ones, so n-sized scratch covers both the
  // unrestricted global path and every component view; restricted samples
  // only ever touch the first |C| entries of the state array.
  for (Side* side : {&fwd_, &bwd_}) {
    side->state.assign(g.num_nodes(), NodeState{0, kNoDist, 0.0});
    side->frontier.resize(g.num_nodes() + 1);
    side->next.resize(g.num_nodes() + 1);
  }
}

void PathSampler::InitSide(Side* side, NodeId origin, uint64_t origin_cost) {
  side->depth = 0;
  side->state[origin] = NodeState{epoch_, 0, 1.0};
  side->frontier[0] = origin;
  side->frontier_size = 1;
  side->frontier_cost = origin_cost;
}

template <class Adj>
bool PathSampler::ExpandLevel(const Adj& adj, Side* side, const Side* other) {
  const uint32_t new_depth = side->depth + 1;
  NodeId* next = side->next.data();
  size_t cnt = 0;
  double su = 0.0;  // σ of the frontier node being expanded
  auto visit = [&](NodeId v) {
    NodeState& sv = side->state[v];
    if (sv.epoch != epoch_) {
      // First touch this epoch: v joins the new level with σ = σ(u).
      sv = NodeState{epoch_, new_depth, su};
      next[cnt++] = v;
      // Bidirectional meeting test, folded into discovery: one random load
      // per *new* node beats a separate post-expansion pass over the
      // frontier.
      if (other != nullptr && other->state[v].epoch == epoch_) {
        meet_.push_back(v);
      }
    } else {
      // Already stamped: add σ(u) iff v sits on the level being built.
      // Selected, not branched — level membership is a coin flip here.
      sv.sigma += sv.dist == new_depth ? su : 0.0;
    }
  };
  for (size_t fi = 0; fi < side->frontier_size; ++fi) {
    const NodeId u = side->frontier[fi];
    if constexpr (requires { adj.PrefetchNode(u); }) {
      if (fi + 2 < side->frontier_size) {
        adj.PrefetchNode(side->frontier[fi + 2]);
      }
    }
    su = side->state[u].sigma;
    if constexpr (requires { adj.ArcsOf(u); }) {
      // Span-capable substrates (component view, unrestricted global CSR):
      // prefetch the packed per-node state a few arcs ahead — the only
      // non-sequential access of the loop. The loop is split so the steady
      // state carries no bounds check for the prefetch slot.
      const auto nbr = adj.ArcsOf(u);
      arcs_scanned_ += nbr.size();
      constexpr size_t kLookahead = 8;
      const size_t n = nbr.size();
      size_t i = 0;
      if (n > kLookahead) {
        for (; i + kLookahead < n; ++i) {
          __builtin_prefetch(&side->state[nbr[i + kLookahead]], 1, 3);
          visit(nbr[i]);
        }
      }
      for (; i < n; ++i) visit(nbr[i]);
    } else {
      adj.ForEachScanned(u, &arcs_scanned_, visit);
    }
  }
  side->frontier.swap(side->next);
  side->frontier_size = cnt;
  // One tight pass over the new frontier (off the expansion's critical
  // path); the seed rescanned *both* frontiers every balancing round. Only
  // the bidirectional search balances on it, and once a meeting is found
  // this was the final level, so the cost is dead either way.
  uint64_t cost = 0;
  if (other != nullptr && meet_.empty()) {
    for (size_t i = 0; i < cnt; ++i) cost += adj.Cost(side->frontier[i]);
  }
  side->frontier_cost = cost;
  side->depth = new_depth;
  return cnt != 0;
}

template <class Adj>
void PathSampler::WalkDown(const Adj& adj, const Side& side, NodeId v,
                           Rng* rng, std::vector<NodeId>* out) {
  NodeId cur = v;
  while (side.state[cur].dist > 0) {
    const uint32_t want = side.state[cur].dist - 1;
    // Weighted reservoir over predecessors: pick u with prob σ(u)/Σσ.
    double total = 0.0;
    NodeId pick = kInvalidNode;
    auto consider = [&](NodeId u) {
      const NodeState& su = side.state[u];
      if (su.epoch != epoch_ || su.dist != want) return;
      total += su.sigma;
      if (rng->UniformDouble() * total < su.sigma) pick = u;
    };
    if constexpr (requires { adj.ArcsOf(cur); }) {
      // Path nodes are biased toward high degree, so this scan is a real
      // share of the per-sample cost; prefetch like ExpandLevel does.
      const auto nbr = adj.ArcsOf(cur);
      constexpr size_t kLookahead = 8;
      const size_t n = nbr.size();
      size_t i = 0;
      if (n > kLookahead) {
        for (; i + kLookahead < n; ++i) {
          __builtin_prefetch(&side.state[nbr[i + kLookahead]], 0, 3);
          consider(nbr[i]);
        }
      }
      for (; i < n; ++i) consider(nbr[i]);
    } else {
      adj.ForEach(cur, consider);
    }
    SAPHYRA_CHECK(pick != kInvalidNode);
    out->push_back(pick);
    cur = pick;
  }
}

bool PathSampler::SampleUniformPath(NodeId s, NodeId t, uint32_t comp,
                                    SamplingStrategy strategy, Rng* rng,
                                    PathSample* out) {
  SAPHYRA_CHECK(s != t);
  SAPHYRA_CHECK(s < g_.num_nodes() && t < g_.num_nodes());
  if (++epoch_ == 0) {
    // 32-bit epoch wrapped: wipe the stamps once and restart at 1.
    for (Side* side : {&fwd_, &bwd_}) {
      std::fill(side->state.begin(), side->state.end(),
                NodeState{0, kNoDist, 0.0});
    }
    epoch_ = 1;
  }
  arcs_scanned_ = 0;
  out->nodes.clear();
  out->num_paths = 0.0;
  out->length = 0;
  out->found = false;
  if (comp == kInvalidComp) {
    return Dispatch(GlobalAdj{&g_}, s, t, strategy, rng, out);
  }
  if (views_ != nullptr) {
    const NodeId ls = views_->ToLocal(comp, s);
    const NodeId lt = views_->ToLocal(comp, t);
    SAPHYRA_CHECK_MSG(ls != kInvalidNode && lt != kInvalidNode,
                      "restricted endpoints must belong to the component");
    if (!Dispatch(ViewAdj{views_, comp}, ls, lt, strategy, rng, out)) {
      return false;
    }
    for (NodeId& v : out->nodes) v = views_->ToGlobal(comp, v);
    return true;
  }
  SAPHYRA_CHECK_MSG(arc_component_ != nullptr,
                    "component restriction needs arc labels or views");
  return Dispatch(FilteredAdj{&g_, arc_component_, comp}, s, t, strategy, rng,
                  out);
}

template <class Adj>
bool PathSampler::Dispatch(const Adj& adj, NodeId s, NodeId t,
                           SamplingStrategy strategy, Rng* rng,
                           PathSample* out) {
  if (strategy == SamplingStrategy::kBidirectional) {
    return SampleBidirectional(adj, s, t, rng, out);
  }
  return SampleUnidirectional(adj, s, t, rng, out);
}

template <class Adj>
bool PathSampler::SampleBidirectional(const Adj& adj, NodeId s, NodeId t,
                                      Rng* rng, PathSample* out) {
  InitSide(&fwd_, s, adj.Cost(s));
  InitSide(&bwd_, t, adj.Cost(t));
  // Grow the cheaper side one full level at a time. After each expansion,
  // any node of the new frontier already seen by the other side is a
  // "middle": completed BFS levels make both σ values final, and all
  // middles found in the same round sit on minimum-length paths (see the
  // meeting argument in DESIGN.md / KADABRA [12]).
  for (;;) {
    Side* grow = fwd_.frontier_cost <= bwd_.frontier_cost ? &fwd_ : &bwd_;
    const Side& other = (grow == &fwd_) ? bwd_ : fwd_;
    meet_.clear();
    if (!ExpandLevel(adj, grow, &other)) return false;  // t unreachable
    if (!meet_.empty()) break;
  }
  const uint32_t d = fwd_.depth + bwd_.depth;
  // σ_st and middle selection, weighted by σ_s(v)·σ_t(v).
  double sigma_st = 0.0;
  NodeId middle = kInvalidNode;
  for (NodeId v : meet_) {
    double w = fwd_.state[v].sigma * bwd_.state[v].sigma;
    sigma_st += w;
    if (rng->UniformDouble() * sigma_st < w) middle = v;
  }
  SAPHYRA_CHECK(middle != kInvalidNode);

  // Assemble s .. middle .. t.
  walk_.clear();
  WalkDown(adj, fwd_, middle, rng, &walk_);
  out->nodes.assign(walk_.rbegin(), walk_.rend());
  out->nodes.push_back(middle);
  WalkDown(adj, bwd_, middle, rng, &out->nodes);
  SAPHYRA_CHECK(out->nodes.front() == s && out->nodes.back() == t);
  out->num_paths = sigma_st;
  out->length = d;
  out->found = true;
  return true;
}

template <class Adj>
bool PathSampler::SampleUnidirectional(const Adj& adj, NodeId s, NodeId t,
                                       Rng* rng, PathSample* out) {
  InitSide(&fwd_, s, adj.Cost(s));
  // Expand until the level containing t completes (so σ(t) is final).
  bool reached = false;
  for (;;) {
    if (!ExpandLevel(adj, &fwd_, nullptr)) break;
    const NodeState& st = fwd_.state[t];
    if (st.epoch == epoch_ && st.dist <= fwd_.depth) {
      reached = true;  // t's level completed (or finalized earlier)
      break;
    }
  }
  if (!reached) return false;
  walk_.clear();
  WalkDown(adj, fwd_, t, rng, &walk_);
  out->nodes.assign(walk_.rbegin(), walk_.rend());
  out->nodes.push_back(t);
  SAPHYRA_CHECK(out->nodes.front() == s && out->nodes.back() == t);
  out->num_paths = fwd_.state[t].sigma;
  out->length = fwd_.state[t].dist;
  out->found = true;
  return true;
}

}  // namespace saphyra
