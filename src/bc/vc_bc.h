#ifndef SAPHYRA_BC_VC_BC_H_
#define SAPHYRA_BC_VC_BC_H_

#include <cstdint>

#include "bicomp/isp.h"

namespace saphyra {

/// Personalized VC-dimension bounds for RSP_bc (§IV-C, Table I).
///
/// π(p) — the number of hypotheses a path p hits — is the number of target
/// nodes among p's inner nodes, so πmax = BS(A), and Lemma 5 gives
/// VC(H_c^(A)) ≤ ⌊log₂ BS(A)⌋ + 1 (Corollary 22). BS(A) itself is bounded
/// per component (Lemma 23) by
///   min( VD(C_i) − 1,  VD(A ∩ C_i) + 1,  |A ∩ C_i| ).
/// Exact diameters are too expensive, so the bounds below use the sound
/// 2·eccentricity upper bound from a single restricted BFS per component,
/// exactly as the paper suggests ("VD(A′) cannot be bigger than double of
/// the maximum distance from s to a node t ∈ A′").
struct VcBcBounds {
  /// Upper bound on BS(A) (0 if no component can host a target inner node).
  double bs_bound = 0.0;
  /// VC bound = ⌊log₂ bs⌋ + 1 (≥ 1 whenever bs ≥ 1).
  double vc_bound = 0.0;
  /// max_i over I(A) of the VD(C_i) upper bound (bi-component diameter).
  uint32_t bd_upper = 0;
  /// max_i over I(A) of the VD(A∩C_i) upper bound.
  uint32_t sd_upper = 0;
};

/// \brief Personalized bounds for the subset of `space` (Corollary 22 +
/// Lemma 23). Runs one restricted BFS per component in I(A).
VcBcBounds ComputePersonalizedVcBounds(const PersonalizedSpace& space);

/// \brief Full-network SaPHyRa_bc bound: ⌊log₂(BD(V)−1)⌋ + 1 with BD(V)
/// the maximum bi-component diameter (Table I row 2, column 1).
/// One restricted BFS per component: O(n + m) total.
double FullNetworkVcBound(const IspIndex& isp, uint32_t* bd_upper = nullptr);

/// \brief Riondato–Kornaropoulos-style bound used by the baselines
/// (Table I row 1): ⌊log₂(VD(V)−1)⌋ + 1 on the *whole-graph* diameter,
/// using the 2·eccentricity upper bound.
double RiondatoVcBound(const Graph& g);

}  // namespace saphyra

#endif  // SAPHYRA_BC_VC_BC_H_
