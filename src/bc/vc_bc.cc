#include "bc/vc_bc.h"

#include <algorithm>
#include <cmath>

#include "graph/bfs.h"
#include "stats/vc.h"
#include "util/logging.h"

namespace saphyra {

namespace {

/// BFS from `source` restricted to arcs of biconnected component `comp`.
/// Returns the eccentricity within the component and, if `targets` is
/// non-null, the maximum distance to any reached node with
/// HypothesisIndex >= 0.
struct RestrictedBfs {
  explicit RestrictedBfs(NodeId n) : dist(n, kUnreachable) {}

  uint32_t Run(const Graph& g, const BiconnectedComponents& bcc,
               uint32_t comp, NodeId source,
               const PersonalizedSpace* targets, uint32_t* max_target_dist) {
    touched.clear();
    dist[source] = 0;
    touched.push_back(source);
    uint32_t ecc = 0;
    uint32_t tgt = 0;
    for (size_t head = 0; head < touched.size(); ++head) {
      NodeId u = touched[head];
      uint32_t du = dist[u];
      ecc = std::max(ecc, du);
      if (targets != nullptr && targets->HypothesisIndex(u) >= 0) {
        tgt = std::max(tgt, du);
      }
      EdgeIndex base = g.offset(u);
      auto nbr = g.neighbors(u);
      for (size_t i = 0; i < nbr.size(); ++i) {
        if (bcc.arc_component[base + i] != comp) continue;
        NodeId v = nbr[i];
        if (dist[v] == kUnreachable) {
          dist[v] = du + 1;
          touched.push_back(v);
        }
      }
    }
    for (NodeId v : touched) dist[v] = kUnreachable;  // cheap reset
    if (max_target_dist != nullptr) *max_target_dist = tgt;
    return ecc;
  }

  std::vector<uint32_t> dist;
  std::vector<NodeId> touched;
};

double VcFromBs(double bs) {
  if (bs < 1.0) return 0.0;
  return PiMaxVcBound(static_cast<uint64_t>(bs));
}

}  // namespace

VcBcBounds ComputePersonalizedVcBounds(const PersonalizedSpace& space) {
  const IspIndex& isp = space.isp();
  const Graph& g = isp.graph();
  const auto& bcc = isp.bcc();
  VcBcBounds out;

  // Per-component target counts |A ∩ C_i| and a representative target.
  std::vector<uint32_t> a_count(bcc.num_components, 0);
  std::vector<NodeId> a_rep(bcc.num_components, kInvalidNode);
  for (NodeId v : space.targets()) {
    for (uint32_t c : isp.ComponentsOf(v)) {
      ++a_count[c];
      if (a_rep[c] == kInvalidNode) a_rep[c] = v;
    }
  }

  RestrictedBfs bfs(g.num_nodes());
  double bs = 0.0;
  for (uint32_t c : space.component_ids()) {
    const size_t comp_size = bcc.component_nodes[c].size();
    if (comp_size < 3) continue;  // a bridge has no inner nodes
    // One BFS from a target member gives both an upper bound on VD(C_i)
    // (2·ecc) and on VD(A ∩ C_i) (2·max distance to a target).
    uint32_t max_tgt = 0;
    uint32_t ecc = bfs.Run(g, bcc, c, a_rep[c], &space, &max_tgt);
    uint32_t vd_ci_ub = 2 * ecc;
    uint32_t vd_a_ub = 2 * max_tgt;
    out.bd_upper = std::max(out.bd_upper, vd_ci_ub);
    out.sd_upper = std::max(out.sd_upper, vd_a_ub);
    double term = std::min(
        {static_cast<double>(vd_ci_ub) - 1.0,
         static_cast<double>(vd_a_ub) + 1.0, static_cast<double>(a_count[c])});
    bs = std::max(bs, std::max(0.0, term));
  }
  out.bs_bound = bs;
  out.vc_bound = VcFromBs(bs);
  return out;
}

double FullNetworkVcBound(const IspIndex& isp, uint32_t* bd_upper) {
  const Graph& g = isp.graph();
  const auto& bcc = isp.bcc();
  RestrictedBfs bfs(g.num_nodes());
  uint32_t bd = 0;
  for (uint32_t c = 0; c < bcc.num_components; ++c) {
    if (bcc.component_nodes[c].size() < 3) continue;
    uint32_t ecc =
        bfs.Run(g, bcc, c, bcc.component_nodes[c][0], nullptr, nullptr);
    bd = std::max(bd, 2 * ecc);
  }
  if (bd_upper != nullptr) *bd_upper = bd;
  if (bd <= 1) return 0.0;
  return VcFromBs(static_cast<double>(bd) - 1.0);
}

double RiondatoVcBound(const Graph& g) {
  if (g.num_nodes() == 0) return 0.0;
  // Seed the eccentricity bound from the far node of a double sweep, which
  // tightens 2·ecc substantially in practice.
  BfsResult first = Bfs(g, 0);
  NodeId far = 0;
  uint32_t best = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (first.dist[v] != kUnreachable && first.dist[v] >= best) {
      best = first.dist[v];
      far = v;
    }
  }
  uint32_t vd_ub = 2 * Eccentricity(g, far);
  if (vd_ub <= 1) return 0.0;
  return std::floor(std::log2(static_cast<double>(vd_ub) - 1.0)) + 1.0;
}

}  // namespace saphyra
