#ifndef SAPHYRA_BC_SAPHYRA_BC_H_
#define SAPHYRA_BC_SAPHYRA_BC_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "bc/path_sampler.h"
#include "bicomp/isp.h"
#include "core/saphyra.h"
#include "graph/graph.h"

namespace saphyra {

/// \brief Parameters of the SaPHyRa_bc algorithm (§IV-D).
struct SaphyraBcOptions {
  /// Target additive accuracy ε on the betweenness values (Theorem 24).
  double epsilon = 0.05;
  /// Failure probability δ.
  double delta = 0.01;
  /// RNG seed (whole run is deterministic given the seed).
  uint64_t seed = 1;
  /// Shortest-path sampling strategy of Gen_bc.
  SamplingStrategy strategy = SamplingStrategy::kBidirectional;
  /// BFS level-expansion policy of Gen_bc (graph/frontier.h):
  /// kAuto/kHybrid use the direction-optimizing kernel, kTopDown the
  /// classic push. Results are bitwise identical either way.
  TraversalPolicy traversal = TraversalPolicy::kAuto;
  /// Ablation switch: disable the 2-hop exact subspace (X̂ = ∅), leaving
  /// pure PISP sampling. Lemma 19's no-false-zero property is lost.
  bool use_exact_subspace = true;
  /// Constant c of the sample bounds (Lemma 4).
  double vc_constant = 0.5;
  /// Floor on the initial sample size of the adaptive loop.
  uint64_t min_initial_samples = 32;
  /// Worker threads for sample generation (execution only — results are
  /// bitwise identical for a fixed seed regardless of the thread count;
  /// see core/progressive_sampler.h).
  uint32_t num_threads = 1;
  /// 0 = guaranteed-ε mode; >0 = top-k mode: sampling stops as soon as
  /// the k highest b̃c estimates are separated from the rest by their
  /// confidence intervals (per-node δ allocation from the pilot).
  uint64_t top_k = 0;
  /// Samples per engine wave (0 = one wave per stopping check); batching
  /// granularity only, never affects results.
  uint64_t max_wave = 0;
  /// Optional cooperative cancellation/deadline (see util/cancel.h): on
  /// expiry the run returns completed-wave estimates tagged degraded.
  /// Borrowed; must outlive the run.
  const CancelToken* cancel = nullptr;
  /// Optional delegated wave execution, forwarded verbatim into the inner
  /// framework run (see SaphyraOptions::wave_executor): ordinal 0 is the
  /// pilot, ordinal 1 the main loop. Empty = local drawing.
  std::function<WaveExecutor*(uint32_t ordinal)> wave_executor;
};

/// \brief Output of SaPHyRa_bc.
struct SaphyraBcResult {
  /// (ε,δ)-estimates b̃c(v), aligned with the `targets` argument.
  std::vector<double> bc;

  // --- diagnostics -----------------------------------------------------
  double gamma = 0.0;       ///< ISP normalization γ (Eq. 19)
  double eta = 0.0;         ///< personalization mass η (Eq. 23)
  double lambda_hat = 0.0;  ///< exact-subspace weight λ̂
  double vc_bound = 0.0;    ///< personalized VC bound (Corollary 22)
  double bs_bound = 0.0;    ///< bound on BS(A) (Lemma 23)
  uint64_t pilot_samples = 0;
  uint64_t samples_used = 0;
  uint64_t max_samples = 0;
  uint64_t rejected_samples = 0;  ///< Gen_bc rejections (Alg. 2 line 6)
  bool stopped_early = false;     ///< Bernstein stop before the VC cap
  /// Deadline/cancel truncation: estimates cover completed waves only and
  /// Theorem 24's guarantee does NOT hold (but the bits are deterministic
  /// for a fixed seed and samples_used).
  bool degraded = false;
  StatusCode degrade_reason = StatusCode::kOk;
  /// Only when degraded: the deviation bound actually achieved, in bc
  /// units (γη × the framework's combined-risk bound); infinity when
  /// truncation preceded any variance estimate.
  double epsilon_achieved = 0.0;
  double exact_seconds = 0.0;     ///< Exact_bc time
  double sampling_seconds = 0.0;  ///< adaptive sampling time
  double total_seconds = 0.0;
};

/// \brief Rank the nodes of `targets` by betweenness centrality with the
/// full SaPHyRa_bc pipeline: bi-component/PISP sampling, 2-hop exact
/// subspace, empirical-Bernstein adaptive sampling, personalized VC cap.
///
/// `isp` can be shared across many subsets of the same graph (it is
/// A-independent); building it once amortizes the O(n + m) decomposition,
/// mirroring how the paper's experiments rank 1000 subsets per network.
///
/// Returns estimates satisfying Pr[∀v∈A: |b̃c(v) − bc(v)| < ε] ≥ 1 − δ
/// (Theorem 24), with bc normalized per Eq. 3.
SaphyraBcResult RunSaphyraBc(const IspIndex& isp,
                             const std::vector<NodeId>& targets,
                             const SaphyraBcOptions& options);

/// \brief SaPHyRa_bc-full: the whole network as the target set (the
/// configuration the paper calls "SaPHyRa_bc-full").
SaphyraBcResult RunSaphyraBcFull(const IspIndex& isp,
                                 const SaphyraBcOptions& options);

/// \brief The Gen_bc sampling problem of RunSaphyraBc as a standalone
/// object: same personalized space, same rejection sampling, same RNG
/// consumption per sample. Shard worker processes use this to replay
/// stripe draws bit-for-bit without running the exact phase (the returned
/// problem's ComputeExactRisks/VcDimension are functional but unused
/// worker-side). Only `strategy`, `traversal` and `use_exact_subspace`
/// of `options` affect sampling.
std::unique_ptr<HypothesisRankingProblem> MakeSaphyraBcSamplingProblem(
    const IspIndex& isp, const std::vector<NodeId>& targets,
    const SaphyraBcOptions& options);

}  // namespace saphyra

#endif  // SAPHYRA_BC_SAPHYRA_BC_H_
