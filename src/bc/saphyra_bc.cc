#include "bc/saphyra_bc.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "bc/exact_subspace.h"
#include "bc/vc_bc.h"
#include "util/logging.h"
#include "util/timer.h"

namespace saphyra {

namespace {

/// Adapter exposing RSP_bc as a HypothesisRankingProblem (§IV-B): the
/// hypothesis class H_c^(A) = {h_v = g(v,·)} over the PISP space, with the
/// 2-hop exact subspace and Gen_bc as the sample generator.
class SaphyraBcProblem : public HypothesisRankingProblem {
 public:
  SaphyraBcProblem(const PersonalizedSpace& space,
                   const SaphyraBcOptions& options, double vc_bound)
      : space_(space),
        options_(options),
        vc_bound_(vc_bound),
        rejected_(std::make_shared<std::atomic<uint64_t>>(0)),
        // Component-view fast path: Gen_bc's restricted BFS runs on the
        // compact per-component CSR instead of filtering the global arcs.
        sampler_(space.isp().graph(), space.isp().views()) {
    sampler_.set_traversal(options.traversal);
  }

  size_t num_hypotheses() const override { return space_.targets().size(); }

  double ComputeExactRisks(std::vector<double>* exact_risks) override {
    if (!options_.use_exact_subspace) {
      exact_risks->assign(num_hypotheses(), 0.0);
      return 0.0;
    }
    Timer timer;
    ExactSubspaceResult res = ComputeExactSubspace(space_);
    exact_seconds_ = timer.ElapsedSeconds();
    *exact_risks = std::move(res.exact_risks);
    return res.lambda_hat;
  }

  void SampleApproxLosses(Rng* rng, std::vector<uint32_t>* hits) override {
    const IspIndex& isp = space_.isp();
    PathSample path;
    // Algorithm 2: multistage sampling with rejection of exact-subspace
    // paths. Stage probabilities multiply to q_st/(γη σ_st), Lemma 20.
    for (;;) {
      uint32_t comp = space_.SampleComponent(rng);
      NodeId s = isp.SampleSource(comp, rng);
      NodeId t = isp.SampleTarget(comp, s, rng);
      bool ok = sampler_.SampleUniformPath(s, t, comp, options_.strategy,
                                           rng, &path);
      SAPHYRA_CHECK_MSG(ok, "nodes of one bi-component must be connected");
      if (options_.use_exact_subspace && InExactSubspace(space_, path.nodes)) {
        rejected_->fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      break;
    }
    // Losses: h_v(p) = 1 iff v is an inner node of p (Eq. 6).
    for (size_t i = 1; i + 1 < path.nodes.size(); ++i) {
      int32_t h = space_.HypothesisIndex(path.nodes[i]);
      if (h >= 0) hits->push_back(static_cast<uint32_t>(h));
    }
  }

  double VcDimension() const override { return vc_bound_; }

  std::unique_ptr<HypothesisRankingProblem> CloneForSampling() override {
    // Clones share the (immutable) personalized space, options and the
    // rejection counter, but own their BFS scratch via a fresh
    // PathSampler; their ComputeExactRisks is never called.
    auto clone =
        std::make_unique<SaphyraBcProblem>(space_, options_, vc_bound_);
    clone->rejected_ = rejected_;
    return clone;
  }

  uint64_t rejected() const {
    return rejected_->load(std::memory_order_relaxed);
  }
  double exact_seconds() const { return exact_seconds_; }

 private:
  const PersonalizedSpace& space_;
  const SaphyraBcOptions& options_;
  double vc_bound_;
  std::shared_ptr<std::atomic<uint64_t>> rejected_;
  PathSampler sampler_;
  double exact_seconds_ = 0.0;
};

}  // namespace

SaphyraBcResult RunSaphyraBc(const IspIndex& isp,
                             const std::vector<NodeId>& targets,
                             const SaphyraBcOptions& options) {
  Timer total_timer;
  SaphyraBcResult result;
  result.gamma = isp.gamma();

  PersonalizedSpace space(isp, targets);
  result.eta = space.eta();
  const size_t k = targets.size();
  result.bc.assign(k, 0.0);

  const double ge = result.gamma * result.eta;
  if (ge <= 0.0) {
    // No component touches A: every target's centrality is pure break-point
    // mass (e.g. targets that are leaves or isolated nodes).
    for (size_t i = 0; i < k; ++i) result.bc[i] = isp.bca(targets[i]);
    result.total_seconds = total_timer.ElapsedSeconds();
    return result;
  }

  VcBcBounds vc = ComputePersonalizedVcBounds(space);
  result.vc_bound = vc.vc_bound;
  result.bs_bound = vc.bs_bound;

  // b̃c(v) = bc_a(v) + γη·ℓ_v (Lemma 16), so an error budget of ε on b̃c
  // allows ε* = ε/(γη) ≥ ε on ℓ. (§IV-D writes ε* = εγη; see DESIGN.md for
  // why the quotient is the form consistent with Theorem 24 — it is also
  // what makes personalization cheaper, smaller η ⇒ fewer samples.)
  const double eps_star = std::min(0.999, options.epsilon / ge);

  SaphyraOptions fw;
  fw.epsilon = eps_star;
  fw.delta = options.delta;
  fw.vc_constant = options.vc_constant;
  fw.seed = options.seed;
  fw.min_initial_samples = options.min_initial_samples;
  fw.num_threads = options.num_threads;
  fw.top_k = options.top_k;
  fw.max_wave = options.max_wave;
  fw.traversal = options.traversal;
  fw.cancel = options.cancel;
  fw.wave_executor = options.wave_executor;
  if (options.top_k > 0) {
    // b̃c(v) = bc_a(v) + γη·ℓ_v: separation must rank by the final bc, so
    // the break-point mass enters the rule as an offset in ℓ units.
    fw.top_k_offsets.resize(k);
    for (size_t i = 0; i < k; ++i) {
      fw.top_k_offsets[i] = isp.bca(targets[i]) / ge;
    }
  }

  Timer phase_timer;
  SaphyraBcProblem problem(space, options, vc.vc_bound);
  SaphyraResult inner = RunSaphyra(&problem, fw);
  result.sampling_seconds = phase_timer.ElapsedSeconds();

  result.lambda_hat = inner.lambda_hat;
  result.pilot_samples = inner.pilot_samples;
  result.samples_used = inner.samples_used;
  result.max_samples = inner.max_samples;
  result.stopped_early = inner.stopped_early;
  result.degraded = inner.degraded;
  result.degrade_reason = inner.degrade_reason;
  // b̃c = bc_a + γη·ℓ, so a deviation bound on ℓ scales by γη in bc units.
  if (inner.degraded) result.epsilon_achieved = ge * inner.epsilon_achieved;
  result.rejected_samples = problem.rejected();
  result.exact_seconds = problem.exact_seconds();
  result.sampling_seconds -= result.exact_seconds;

  for (size_t i = 0; i < k; ++i) {
    result.bc[i] = isp.bca(targets[i]) + ge * inner.combined_risks[i];
  }
  result.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

SaphyraBcResult RunSaphyraBcFull(const IspIndex& isp,
                                 const SaphyraBcOptions& options) {
  std::vector<NodeId> all(isp.graph().num_nodes());
  for (NodeId v = 0; v < isp.graph().num_nodes(); ++v) all[v] = v;
  return RunSaphyraBc(isp, all, options);
}

namespace {

/// Self-contained Gen_bc problem for shard workers: owns the personalized
/// space and an options copy (the inner SaphyraBcProblem holds both by
/// reference), then forwards every virtual to it. Sampling behavior — and
/// therefore RNG stream consumption — is identical to the problem
/// RunSaphyraBc builds, which is the bitwise-replay contract the sharded
/// tier relies on.
class OwningSaphyraBcProblem : public HypothesisRankingProblem {
 public:
  OwningSaphyraBcProblem(const IspIndex& isp,
                         const std::vector<NodeId>& targets,
                         const SaphyraBcOptions& options)
      : options_(options),
        space_(isp, targets),
        // The VC bound is only read through VcDimension(), which shard
        // workers never call (the coordinator owns the schedule); compute
        // it anyway so the object is honest standalone.
        inner_(space_, options_,
               ComputePersonalizedVcBounds(space_).vc_bound) {}

  size_t num_hypotheses() const override { return inner_.num_hypotheses(); }
  double ComputeExactRisks(std::vector<double>* exact_risks) override {
    return inner_.ComputeExactRisks(exact_risks);
  }
  void SampleApproxLosses(Rng* rng, std::vector<uint32_t>* hits) override {
    inner_.SampleApproxLosses(rng, hits);
  }
  double VcDimension() const override { return inner_.VcDimension(); }
  std::unique_ptr<HypothesisRankingProblem> CloneForSampling() override {
    return inner_.CloneForSampling();
  }

 private:
  SaphyraBcOptions options_;
  PersonalizedSpace space_;
  SaphyraBcProblem inner_;
};

}  // namespace

std::unique_ptr<HypothesisRankingProblem> MakeSaphyraBcSamplingProblem(
    const IspIndex& isp, const std::vector<NodeId>& targets,
    const SaphyraBcOptions& options) {
  return std::make_unique<OwningSaphyraBcProblem>(isp, targets, options);
}

}  // namespace saphyra
