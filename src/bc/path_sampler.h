#ifndef SAPHYRA_BC_PATH_SAMPLER_H_
#define SAPHYRA_BC_PATH_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "bicomp/biconnected.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace saphyra {

/// \brief One sampled shortest path.
struct PathSample {
  /// Path nodes from s to t inclusive (length + 1 entries).
  std::vector<NodeId> nodes;
  /// σ_st: number of distinct shortest s-t paths (within the restriction).
  double num_paths = 0.0;
  /// Hop length of the path.
  uint32_t length = 0;
  /// False iff t is unreachable from s (never happens inside a component).
  bool found = false;
};

/// \brief How the sampler explores the graph.
enum class SamplingStrategy {
  /// Balanced bidirectional BFS (the paper's choice, borrowed from
  /// KADABRA [12]): grow the cheaper frontier from each end until they
  /// meet; expected cost n^{1/2+o(1)} per sample on power-law graphs
  /// (Lemma 21).
  kBidirectional,
  /// Plain BFS from s until t's level completes. O(m) worst case; kept as
  /// an ablation reference.
  kUnidirectional,
};

/// \brief Samples uniform random shortest paths between node pairs, with
/// optional restriction to one biconnected component.
///
/// A sampled path is uniform over the σ_st shortest s-t paths: BFS path
/// counts σ are computed from both endpoints, a "middle" node is drawn with
/// probability σ_s(v)·σ_t(v)/σ_st, and the two halves are completed by
/// backward walks choosing each predecessor proportionally to its σ.
///
/// All scratch memory is owned by the sampler and reset in O(touched) via
/// epoch counters, so one instance can serve millions of samples with no
/// allocation in the steady state. Instances are not thread-safe; create
/// one per thread.
class PathSampler {
 public:
  /// \brief `arc_component` may be null (no restriction support needed) or
  /// point at BiconnectedComponents::arc_component with one label per arc.
  PathSampler(const Graph& g, const std::vector<uint32_t>* arc_component);

  /// \brief Sample a uniform shortest path from s to t (s != t).
  ///
  /// If `comp != kInvalidComp`, only arcs labeled `comp` are traversed;
  /// s and t must then be members of that component. Returns false (and
  /// found=false) if t is unreachable.
  bool SampleUniformPath(NodeId s, NodeId t, uint32_t comp,
                         SamplingStrategy strategy, Rng* rng,
                         PathSample* out);

  /// \brief Arcs scanned by the most recent call (cost diagnostics).
  uint64_t last_arcs_scanned() const { return arcs_scanned_; }

 private:
  struct Side {
    std::vector<uint32_t> dist;
    std::vector<double> sigma;
    std::vector<uint64_t> epoch;
    std::vector<NodeId> frontier;
    std::vector<NodeId> next;
    uint32_t depth = 0;
  };

  bool ArcAllowed(EdgeIndex arc, uint32_t comp) const {
    return comp == kInvalidComp || (*arc_component_)[arc] == comp;
  }
  void InitSide(Side* side, NodeId origin);
  uint32_t Dist(const Side& side, NodeId v) const {
    return side.epoch[v] == epoch_ ? side.dist[v] : kNoDist;
  }
  double Sigma(const Side& side, NodeId v) const {
    return side.epoch[v] == epoch_ ? side.sigma[v] : 0.0;
  }
  /// Expand one BFS level of `side`. Returns false if the frontier died.
  bool ExpandLevel(Side* side, uint32_t comp);
  /// Frontier arc mass, used to pick the cheaper side to expand.
  uint64_t FrontierCost(const Side& side) const;
  /// Append the walk from `v` down to the side's origin (exclusive of v),
  /// choosing predecessors proportionally to σ.
  void WalkDown(const Side& side, NodeId v, uint32_t comp, Rng* rng,
                std::vector<NodeId>* out);

  bool SampleBidirectional(NodeId s, NodeId t, uint32_t comp, Rng* rng,
                           PathSample* out);
  bool SampleUnidirectional(NodeId s, NodeId t, uint32_t comp, Rng* rng,
                            PathSample* out);

  const Graph& g_;
  const std::vector<uint32_t>* arc_component_;
  Side fwd_, bwd_;
  uint64_t epoch_ = 0;
  uint64_t arcs_scanned_ = 0;
  std::vector<NodeId> meet_;  // middle candidates of the current sample

  static constexpr uint32_t kNoDist = static_cast<uint32_t>(-1);
};

}  // namespace saphyra

#endif  // SAPHYRA_BC_PATH_SAMPLER_H_
