#ifndef SAPHYRA_BC_PATH_SAMPLER_H_
#define SAPHYRA_BC_PATH_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "bicomp/biconnected.h"
#include "bicomp/component_view.h"
#include "graph/frontier.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace saphyra {

/// \brief One sampled shortest path.
struct PathSample {
  /// Path nodes from s to t inclusive (length + 1 entries).
  std::vector<NodeId> nodes;
  /// σ_st: number of distinct shortest s-t paths (within the restriction).
  double num_paths = 0.0;
  /// Hop length of the path.
  uint32_t length = 0;
  /// False iff t is unreachable from s (never happens inside a component).
  bool found = false;
};

/// \brief How the sampler explores the graph.
enum class SamplingStrategy {
  /// Balanced bidirectional BFS (the paper's choice, borrowed from
  /// KADABRA [12]): grow the cheaper frontier from each end until they
  /// meet; expected cost n^{1/2+o(1)} per sample on power-law graphs
  /// (Lemma 21).
  kBidirectional,
  /// Plain BFS from s until t's level completes. O(m) worst case; kept as
  /// an ablation reference.
  kUnidirectional,
};

/// \brief Samples uniform random shortest paths between node pairs, with
/// optional restriction to one biconnected component.
///
/// A sampled path is uniform over the σ_st shortest s-t paths: BFS path
/// counts σ are computed from both endpoints, a "middle" node is drawn with
/// probability σ_s(v)·σ_t(v)/σ_st, and the two halves are completed by
/// backward walks choosing each predecessor proportionally to its σ.
///
/// Component-restricted samples run on one of two substrates:
///   * the **component-view fast path** (construct with a ComponentViews):
///     the BFS walks the component's own compact CSR in local ids, scanning
///     pure adjacency with no per-arc filtering, and translates back to
///     global ids only when emitting the path;
///   * the **filtered legacy path** (construct with an arc_component
///     labeling): the BFS walks the global CSR and tests every arc's label.
///     Kept as the ablation baseline and for callers without an IspIndex.
/// Both draw from the identical path distribution (verified against exact
/// enumeration in the tests). Note the fast path balances its bidirectional
/// frontiers by component-local degree — a sharper cost estimate than the
/// legacy mode's global degree — so the two modes may consume their RNG
/// streams differently while sampling the same law.
///
/// All scratch memory is owned by the sampler and reset in O(touched) via
/// epoch counters, so one instance can serve millions of samples with no
/// allocation in the steady state. Instances are not thread-safe; create
/// one per thread.
class PathSampler {
 public:
  /// \brief Legacy filtered mode. `arc_component` may be null (no
  /// restriction support needed) or point at
  /// BiconnectedComponents::arc_component with one label per arc.
  PathSampler(const Graph& g, const std::vector<uint32_t>* arc_component);

  /// \brief Component-view fast path: restricted samples traverse
  /// `views`' compact per-component CSR. `views` must outlive the sampler.
  PathSampler(const Graph& g, const ComponentViews& views);

  /// \brief Sample a uniform shortest path from s to t (s != t).
  ///
  /// If `comp != kInvalidComp`, only arcs of component `comp` are
  /// traversed; s and t must then be members of that component. Returns
  /// false (and found=false) if t is unreachable.
  bool SampleUniformPath(NodeId s, NodeId t, uint32_t comp,
                         SamplingStrategy strategy, Rng* rng,
                         PathSample* out);

  /// \brief How BFS levels are expanded (graph/frontier.h). Anything but
  /// kTopDown enables the direction-optimizing pull on substrates that
  /// support it (global CSR, component views); the filtered legacy mode
  /// always pushes. The sampled-path *distribution* and, for a fixed seed,
  /// the sampled paths themselves are policy-independent: σ sums are exact
  /// (integer-valued doubles) and the meet set is canonicalized before any
  /// random choice, so the RNG stream advances identically either way.
  void set_traversal(TraversalPolicy policy) { traversal_ = policy; }
  TraversalPolicy traversal() const { return traversal_; }

  /// \brief Arcs scanned by the most recent call (cost diagnostics).
  uint64_t last_arcs_scanned() const { return arcs_scanned_; }

  /// \brief BFS levels of the most recent call expanded bottom-up.
  uint32_t last_bottom_up_levels() const { return bottom_up_levels_; }

 private:
  /// Per-node BFS state, packed so one cache-line touch per visited node
  /// replaces the three separate epoch/dist/sigma array loads (the dominant
  /// per-arc cost — the adjacency stream itself is sequential).
  struct NodeState {
    uint32_t epoch;
    uint32_t dist;
    double sigma;
  };
  struct Side {
    std::vector<NodeState> state;
    /// frontier/next hold one BFS level in FrontierSet's dual form: the
    /// sparse list drives top-down pushes (with the branchless-expansion
    /// slack slot), the epoch-reset bitmap serves bottom-up pulls.
    FrontierSet frontier;
    FrontierSet next;
    uint32_t depth = 0;
    /// Arc mass of `frontier`, accumulated at discovery so neither the
    /// bidirectional balance check nor the direction heuristic ever
    /// rescans a frontier.
    uint64_t frontier_cost = 0;
    /// Arc mass of every node this side has stamped this epoch; the
    /// direction heuristic's |unexplored arcs| is the domain total minus
    /// this.
    uint64_t explored_cost = 0;
    /// Bottom-up candidates: built lazily at the first pull of a search,
    /// compacted in place on every pull.
    std::vector<NodeId> unvisited;
    size_t unvisited_size = 0;
    bool unvisited_valid = false;
  };

  void InitSide(Side* side, NodeId origin, uint64_t origin_cost);

  /// Frontier arc mass of a level of `cnt` nodes on a near-regular domain:
  /// returns false (leaving *cost untouched) when the graph's degree
  /// spread warrants the exact per-node pass instead. Bounded-degree
  /// graphs (road networks: max degree ≤ 8) are near-regular by
  /// construction, so |level| × avg-degree is accurate and saves two
  /// offset loads per discovered node; anything hub-bearing keeps the
  /// sharp per-node balance. Must be applied identically by both
  /// expansion directions — the balance values feed grow decisions, which
  /// the hybrid on/off determinism contract covers.
  bool LevelCostEstimate(size_t cnt, uint64_t* cost) const {
    if (!regular_domain_ || domain_size_ == 0) return false;
    *cost = static_cast<uint64_t>(cnt) * domain_arcs_ / domain_size_;
    return true;
  }
  static constexpr NodeId kRegularGraphMaxDegree = 8;

  /// The traversal core is templated over an adjacency adapter (global,
  /// filtered, component-view) so the restriction test compiles away on the
  /// fast path; see path_sampler.cc.
  /// Expand one BFS level of `side`. When `other` is non-null (bidirectional
  /// search), newly discovered nodes already stamped by `other` this epoch
  /// are appended to meet_. Adapters exposing a compact domain
  /// (DomainSize/DomainArcs) are eligible for the bottom-up pull.
  template <class Adj>
  bool ExpandLevel(const Adj& adj, Side* side, const Side* other);
  template <class Adj>
  void ExpandLevelBottomUp(const Adj& adj, Side* side, const Side* other,
                           uint32_t new_depth);
  template <class Adj>
  void WalkDown(const Adj& adj, const Side& side, NodeId v, Rng* rng,
                std::vector<NodeId>* out);
  template <class Adj>
  bool SampleBidirectional(const Adj& adj, NodeId s, NodeId t, Rng* rng,
                           PathSample* out);
  template <class Adj>
  bool SampleUnidirectional(const Adj& adj, NodeId s, NodeId t, Rng* rng,
                            PathSample* out);
  template <class Adj>
  bool Dispatch(const Adj& adj, NodeId s, NodeId t,
                SamplingStrategy strategy, Rng* rng, PathSample* out);

  const Graph& g_;
  const std::vector<uint32_t>* arc_component_ = nullptr;
  const ComponentViews* views_ = nullptr;
  TraversalPolicy traversal_ = TraversalPolicy::kAuto;
  /// Domain metrics of the current sample's substrate, cached once per
  /// Dispatch so the per-level direction heuristic reads two scalars
  /// instead of chasing the component-view offset arrays every level.
  NodeId domain_size_ = 0;
  uint64_t domain_arcs_ = 0;
  /// True when the whole graph is bounded-degree (≤ kRegularGraphMaxDegree
  /// — every component view inherits the bound), enabling the level-cost
  /// estimate above.
  bool regular_domain_ = false;
  Side fwd_, bwd_;
  uint32_t epoch_ = 0;
  uint64_t arcs_scanned_ = 0;
  uint32_t bottom_up_levels_ = 0;
  std::vector<NodeId> meet_;  // middle candidates of the current sample
  std::vector<NodeId> walk_;  // scratch of the s-side backward walk

  static constexpr uint32_t kNoDist = static_cast<uint32_t>(-1);
};

}  // namespace saphyra

#endif  // SAPHYRA_BC_PATH_SAMPLER_H_
