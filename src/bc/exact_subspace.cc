#include "bc/exact_subspace.h"

#include <algorithm>

#include "util/logging.h"

namespace saphyra {

ExactSubspaceResult ComputeExactSubspace(const PersonalizedSpace& space) {
  const IspIndex& isp = space.isp();
  const Graph& g = isp.graph();
  const auto& bcc = isp.bcc();
  const NodeId n = g.num_nodes();
  const size_t k = space.targets().size();

  ExactSubspaceResult out;
  out.exact_risks.assign(k, 0.0);
  const double denom = isp.total_weight() * space.eta();
  if (denom <= 0.0) return out;  // empty personalized space

  // B: all neighbors of target nodes (candidate 2-hop endpoints).
  std::vector<uint8_t> in_b(n, 0);
  std::vector<NodeId> sources;
  for (NodeId a : space.targets()) {
    for (NodeId w : g.neighbors(a)) {
      if (!in_b[w]) {
        in_b[w] = 1;
        sources.push_back(w);
      }
    }
  }

  constexpr uint32_t kNoStamp = static_cast<uint32_t>(-1);
  std::vector<uint32_t> nbr_stamp(n, kNoStamp);   // "neighbor of s" marker
  std::vector<uint32_t> pair_stamp(n, kNoStamp);  // "t seen for s" marker
  std::vector<uint32_t> sigma_all(n, 0);  // σ_st: valid middles, any node
  std::vector<uint32_t> sigma_a(n, 0);    // σ^A_st: valid middles in A
  std::vector<uint32_t> pair_comp(n, 0);  // component of the (s,t) pair
  std::vector<NodeId> found;              // Δ_s

  double lambda_scaled = 0.0;  // λ̂ · n(n−1)·γ·η
  std::vector<double> exact_scaled(k, 0.0);

  for (uint32_t sidx = 0; sidx < sources.size(); ++sidx) {
    const NodeId s = sources[sidx];
    for (NodeId w : g.neighbors(s)) nbr_stamp[w] = sidx;
    nbr_stamp[s] = sidx;  // exclude s itself the same way
    found.clear();

    // Phase 1: enumerate 2-hop walks s→v→t whose two edges share a
    // biconnected component; count all valid middles (σ_st) and the
    // middles in A (σ^A_st). Walks with t adjacent to s are not shortest
    // (d(s,t)=1) and are skipped.
    const EdgeIndex s_base = g.offset(s);
    const auto s_nbr = g.neighbors(s);
    for (size_t i = 0; i < s_nbr.size(); ++i) {
      const NodeId v = s_nbr[i];
      const uint32_t c1 = bcc.arc_component[s_base + i];
      const bool v_in_a = space.HypothesisIndex(v) >= 0;
      const EdgeIndex v_base = g.offset(v);
      const auto v_nbr = g.neighbors(v);
      for (size_t j = 0; j < v_nbr.size(); ++j) {
        const NodeId t = v_nbr[j];
        if (nbr_stamp[t] == sidx) continue;            // t == s or d(s,t)=1
        if (bcc.arc_component[v_base + j] != c1) continue;  // crosses comps
        if (pair_stamp[t] != sidx) {
          pair_stamp[t] = sidx;
          sigma_all[t] = 0;
          sigma_a[t] = 0;
          pair_comp[t] = c1;
          found.push_back(t);
        }
        // Two biconnected components share at most one node, so a valid
        // (s,t) pair cannot appear under two different components.
        SAPHYRA_CHECK(pair_comp[t] == c1);
        ++sigma_all[t];
        if (v_in_a) ++sigma_a[t];
      }
    }

    // λ̂ contribution of every ordered pair (s, t): the fraction of its
    // σ_st shortest paths whose middle is in A, weighted by the pair mass
    // q_st (scaled by n(n−1): q̃ = r_c(s)·r_c(t)).
    for (NodeId t : found) {
      if (sigma_a[t] == 0) continue;  // pair has no path in X̂
      const uint32_t c = pair_comp[t];
      const double q_scaled =
          static_cast<double>(isp.OutReach(c, s)) *
          static_cast<double>(isp.OutReach(c, t));
      lambda_scaled += q_scaled * static_cast<double>(sigma_a[t]) /
                       static_cast<double>(sigma_all[t]);
      ++out.pairs_examined;
    }

    // Phase 2: credit each middle v ∈ A with its share of every pair:
    // ℓ̂_v += q_st/σ_st for each ordered pair (s,t) routed through v.
    for (size_t i = 0; i < s_nbr.size(); ++i) {
      const NodeId v = s_nbr[i];
      const int32_t h = space.HypothesisIndex(v);
      if (h < 0) continue;
      const uint32_t c1 = bcc.arc_component[s_base + i];
      const double r_s = static_cast<double>(isp.OutReach(c1, s));
      const EdgeIndex v_base = g.offset(v);
      const auto v_nbr = g.neighbors(v);
      for (size_t j = 0; j < v_nbr.size(); ++j) {
        const NodeId t = v_nbr[j];
        if (nbr_stamp[t] == sidx) continue;
        if (bcc.arc_component[v_base + j] != c1) continue;
        SAPHYRA_CHECK(pair_stamp[t] == sidx && pair_comp[t] == c1);
        exact_scaled[h] += r_s * static_cast<double>(isp.OutReach(c1, t)) /
                           static_cast<double>(sigma_all[t]);
      }
    }
  }

  out.lambda_hat = lambda_scaled / denom;
  for (size_t h = 0; h < k; ++h) {
    out.exact_risks[h] = exact_scaled[h] / denom;
  }
  return out;
}

bool InExactSubspace(const PersonalizedSpace& space,
                     const std::vector<NodeId>& path_nodes) {
  // Paths handed in are already intra-component PISP samples; membership in
  // X̂ (Eq. 29) then reduces to: length 2 and the middle node is a target.
  return path_nodes.size() == 3 &&
         space.HypothesisIndex(path_nodes[1]) >= 0;
}

}  // namespace saphyra
