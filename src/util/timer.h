#ifndef SAPHYRA_UTIL_TIMER_H_
#define SAPHYRA_UTIL_TIMER_H_

#include <chrono>
#include <string>

namespace saphyra {

/// \brief Wall-clock stopwatch used by benchmarks and adaptive algorithms.
class Timer {
 public:
  Timer() { Restart(); }

  /// \brief Reset the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// \brief Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// \brief Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Format seconds as a short human-readable string ("1.23s", "45ms").
std::string FormatDuration(double seconds);

}  // namespace saphyra

#endif  // SAPHYRA_UTIL_TIMER_H_
