#ifndef SAPHYRA_UTIL_MAPPED_FILE_H_
#define SAPHYRA_UTIL_MAPPED_FILE_H_

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace saphyra {

/// \brief Read-only view of a whole file, mmap'ed when the platform allows.
///
/// The zero-copy `.sgr` reader (graph/binary_io.h) hands out ArrayRefs that
/// point straight into these bytes, each holding a shared_ptr<MappedFile>
/// keepalive — the mapping is unmapped exactly when the last referencing
/// structure dies. On platforms without mmap (or when `prefer_mmap` is
/// false) the file is read into an owned buffer instead; callers see the
/// same interface either way, just without the zero-copy property.
class MappedFile {
 public:
  /// \brief Map (or read) `path`. Fails with IOError when the file cannot
  /// be opened or mapped.
  static Status Open(const std::string& path,
                     std::shared_ptr<MappedFile>* out,
                     bool prefer_mmap = true);

  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  std::span<const std::byte> bytes() const {
    return {static_cast<const std::byte*>(data_), size_};
  }
  size_t size() const { return size_; }

  /// \brief True when the bytes are a live mmap (zero-copy), false when
  /// they were copied into an owned buffer.
  bool is_mapped() const { return mapped_; }

 private:
  MappedFile() = default;

  const void* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  std::vector<std::byte> fallback_;  // owns the bytes when !mapped_
};

}  // namespace saphyra

#endif  // SAPHYRA_UTIL_MAPPED_FILE_H_
