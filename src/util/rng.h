#ifndef SAPHYRA_UTIL_RNG_H_
#define SAPHYRA_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace saphyra {

/// \brief Fast, seedable pseudo-random number generator (xoshiro256**).
///
/// Every randomized component in the library takes an explicit seed so that
/// experiments are reproducible. The generator satisfies the C++
/// UniformRandomBitGenerator concept and can be used with <random>
/// distributions, but also exposes the handful of primitives the samplers
/// need (uniform index, uniform double, weighted index) without the libstdc++
/// distribution overhead.
class Rng {
 public:
  using result_type = uint64_t;

  /// \brief Construct from a 64-bit seed (expanded via SplitMix64).
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// \brief Next 64 random bits.
  uint64_t Next();
  uint64_t operator()() { return Next(); }

  /// \brief Uniform integer in [0, bound). Requires bound > 0.
  ///
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t UniformInt(uint64_t bound);

  /// \brief Uniform double in [0, 1).
  double UniformDouble();

  /// \brief Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// \brief Index drawn proportionally to the non-negative weights.
  ///
  /// Linear scan; suitable for small weight vectors. Requires a positive
  /// total weight.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// \brief Derive an independent child generator (for per-thread streams).
  Rng Split();

 private:
  uint64_t s_[4];
};

/// \brief Alias table for O(1) sampling from a fixed discrete distribution.
///
/// Built once in O(k) from a weight vector; each Sample() costs one random
/// draw and one comparison. Used by the multistage sampler where the
/// bi-component / source-node distributions are fixed for the whole run.
class AliasTable {
 public:
  AliasTable() = default;

  /// \brief Build from non-negative weights with positive total mass.
  explicit AliasTable(const std::vector<double>& weights);

  /// \brief Number of outcomes (0 if empty).
  size_t size() const { return prob_.size(); }
  bool empty() const { return prob_.empty(); }

  /// \brief Draw an index in [0, size()). Requires a non-empty table.
  size_t Sample(Rng* rng) const;

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace saphyra

#endif  // SAPHYRA_UTIL_RNG_H_
