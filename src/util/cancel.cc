#include "util/cancel.h"

#include <algorithm>

namespace saphyra {

int64_t Deadline::NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

Deadline Deadline::AfterMillis(uint64_t ms) {
  const int64_t now = NowNanos();
  const int64_t delta =
      static_cast<int64_t>(std::min<uint64_t>(ms, kNeverNs / 2000000))
      * 1000000;
  return Deadline(now + delta);
}

void CancelToken::TightenDeadline(Deadline deadline) {
  const int64_t target = deadline.steady_nanos();
  int64_t cur = deadline_ns_.load(std::memory_order_relaxed);
  while (target < cur && !deadline_ns_.compare_exchange_weak(
                             cur, target, std::memory_order_acq_rel)) {
  }
}

void CancelToken::CancelAfterPolls(uint64_t polls) {
  polls_left_.store(static_cast<int64_t>(polls), std::memory_order_release);
}

bool CancelToken::CanExpire() const {
  if (parent_ != nullptr && parent_->CanExpire()) return true;
  return cancelled_.load(std::memory_order_acquire) ||
         deadline_ns_.load(std::memory_order_acquire) != Deadline::kNeverNs ||
         polls_left_.load(std::memory_order_acquire) >= 0;
}

Deadline CancelToken::EffectiveDeadline() const {
  int64_t ns = deadline_ns_.load(std::memory_order_acquire);
  if (parent_ != nullptr) {
    ns = std::min(ns, parent_->EffectiveDeadline().steady_nanos());
  }
  return Deadline::AtSteadyNanos(ns);
}

StatusCode CancelToken::Check() const {
  if (parent_ != nullptr) {
    const StatusCode pc = parent_->Check();
    if (pc != StatusCode::kOk) return pc;
  }
  if (cancelled_.load(std::memory_order_acquire)) {
    return StatusCode::kCancelled;
  }
  const int64_t dl = deadline_ns_.load(std::memory_order_acquire);
  if (dl != Deadline::kNeverNs && Deadline::NowNanos() >= dl) {
    return StatusCode::kDeadlineExceeded;
  }
  return StatusCode::kOk;
}

StatusCode CancelToken::Poll() const {
  // The poll budget counts down even when the deadline fires first, so a
  // test arming both still observes deterministic accounting.
  int64_t left = polls_left_.load(std::memory_order_acquire);
  while (left >= 0 && !polls_left_.compare_exchange_weak(
                          left, left - 1, std::memory_order_acq_rel)) {
  }
  if (left >= 0 && left <= 1) {
    cancelled_.store(true, std::memory_order_release);  // the n-th poll
  }
  return Check();
}

Status CancelToken::ToStatus(StatusCode code, const std::string& what) {
  switch (code) {
    case StatusCode::kCancelled:
      return Status::Cancelled(what + " was cancelled");
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(what + " exceeded its deadline");
    default:
      return Status::OK();
  }
}

}  // namespace saphyra
