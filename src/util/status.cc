#include "util/status.h"

namespace saphyra {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}
}  // namespace

const char* StatusCodeWireName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kIOError:
      return "IO_ERROR";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace saphyra
