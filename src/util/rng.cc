#include "util/rng.h"

#include <cassert>

namespace saphyra {

namespace {
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded sampling.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::UniformDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double r = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Split() { return Rng(Next()); }

AliasTable::AliasTable(const std::vector<double>& weights) {
  const size_t k = weights.size();
  prob_.assign(k, 0.0);
  alias_.assign(k, 0);
  if (k == 0) return;
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  // Vose's algorithm.
  std::vector<double> scaled(k);
  for (size_t i = 0; i < k; ++i) scaled[i] = weights[i] * k / total;
  std::vector<uint32_t> small, large;
  small.reserve(k);
  large.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  while (!large.empty()) {
    prob_[large.back()] = 1.0;
    large.pop_back();
  }
  while (!small.empty()) {
    prob_[small.back()] = 1.0;
    small.pop_back();
  }
}

size_t AliasTable::Sample(Rng* rng) const {
  assert(!prob_.empty());
  size_t i = rng->UniformInt(prob_.size());
  return rng->UniformDouble() < prob_[i] ? i : alias_[i];
}

}  // namespace saphyra
