#ifndef SAPHYRA_UTIL_THREAD_POOL_H_
#define SAPHYRA_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace saphyra {

/// \brief Minimal fixed-size thread pool.
///
/// Used by the parallel Brandes ground-truth computation and the benchmark
/// harness. Tasks are plain std::function<void()>; ParallelFor partitions an
/// index range into contiguous chunks.
class ThreadPool {
 public:
  /// \brief Create a pool with `num_threads` workers (0 = hardware threads).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// \brief Enqueue a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// \brief Block until all submitted tasks have completed.
  void Wait();

  /// \brief Run body(i) for every i in [begin, end) across the pool.
  ///
  /// Work is split dynamically in chunks of `grain` indices. Blocks until
  /// the whole range is processed.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& body,
                   size_t grain = 1);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// \brief Process-wide persistent pool, sized to the hardware concurrency
/// on first use and kept alive for the rest of the process.
///
/// The adaptive sampling loop and the Brandes ground-truth computation both
/// need short bursts of parallelism many times per run; spawning and joining
/// std::threads per burst costs more than the burst itself on small rounds.
/// They share this pool instead. The pool is a pure executor: callers must
/// not encode any state in *which* pool thread runs a task, and nested
/// Submit/Wait from inside a pool task is not allowed (single-driver use).
ThreadPool& SharedThreadPool();

}  // namespace saphyra

#endif  // SAPHYRA_UTIL_THREAD_POOL_H_
