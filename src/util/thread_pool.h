#ifndef SAPHYRA_UTIL_THREAD_POOL_H_
#define SAPHYRA_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace saphyra {

/// \brief Minimal fixed-size thread pool.
///
/// Used by the sampling engine, the parallel Brandes ground-truth
/// computation, and the benchmark harness. Tasks are plain
/// std::function<void()>; ParallelFor partitions an index range into
/// contiguous chunks.
///
/// Completion tracking is per TaskGroup: every Submit joins a group and
/// WaitGroup blocks until that group alone drains, so independent drivers
/// (e.g. concurrent QuerySession queries sharing SharedThreadPool) can
/// interleave ParallelFor calls without barriering on each other's work.
/// The zero-argument Submit/Wait pair keeps the legacy whole-pool
/// semantics through a default group.
class ThreadPool {
 public:
  /// \brief Completion tracker for one batch of related tasks. Plain data
  /// owned by the caller (stack allocation is fine); the pool's mutex
  /// protects `pending`. Must outlive every task submitted against it.
  struct TaskGroup {
    size_t pending = 0;
    std::condition_variable cv;
  };

  /// \brief Create a pool with `num_threads` workers (0 = hardware threads).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// \brief Enqueue a task for asynchronous execution (default group).
  void Submit(std::function<void()> task);

  /// \brief Enqueue a task against `group` for asynchronous execution.
  void Submit(TaskGroup* group, std::function<void()> task);

  /// \brief Block until all default-group tasks have completed.
  void Wait();

  /// \brief Block until every task submitted against `group` has completed.
  void WaitGroup(TaskGroup* group);

  /// \brief Run body(i) for every i in [begin, end) across the pool.
  ///
  /// Work is split dynamically in chunks of `grain` indices. Blocks until
  /// the whole range is processed. Uses a private TaskGroup, so concurrent
  /// ParallelFor calls from different driver threads wait only on their
  /// own range.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& body,
                   size_t grain = 1);

 private:
  struct Task {
    std::function<void()> fn;
    TaskGroup* group;
  };

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<Task> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  TaskGroup default_group_;
  bool shutdown_ = false;
};

/// \brief Process-wide persistent pool, sized to the hardware concurrency
/// on first use and kept alive for the rest of the process.
///
/// The adaptive sampling loop and the Brandes ground-truth computation both
/// need short bursts of parallelism many times per run; spawning and joining
/// std::threads per burst costs more than the burst itself on small rounds.
/// They share this pool instead. The pool is a pure executor: callers must
/// not encode any state in *which* pool thread runs a task, and nested
/// Submit/Wait from inside a pool task is not allowed (it can deadlock a
/// saturated pool). Multiple *driver threads* are fine: per-TaskGroup
/// completion tracking keeps concurrent ParallelFor calls independent —
/// the serving layer (src/service/) relies on this to run admitted
/// queries side by side on one pool.
ThreadPool& SharedThreadPool();

}  // namespace saphyra

#endif  // SAPHYRA_UTIL_THREAD_POOL_H_
