#ifndef SAPHYRA_UTIL_CANCEL_H_
#define SAPHYRA_UTIL_CANCEL_H_

/// \file
/// Cooperative cancellation and deadlines for long-running estimator runs.
///
/// A `CancelToken` is the bridge between the serving layer's latency
/// budget and the progressive sampling loop: the scheduler arms a token
/// per query (from `deadline_ms`, chained to a server-wide drain token),
/// and `ProgressiveSampler` polls it at every wave boundary. Expiry never
/// discards work — the sampler finalizes from completed waves only and
/// reports a *degraded* result tagged with the accuracy it actually
/// achieved (DESIGN.md, "Degradation contract").
///
/// **Determinism.** Cancellation is polled only at deterministic points
/// (wave boundaries of the striped sampling loop), so a truncated run is a
/// pure function of (seed, truncation checkpoint N'): the wall clock
/// decides *where* a run stops, never *what* the bits at that stop point
/// are. `CancelAfterPolls` pins the truncation point itself, making
/// degraded results exactly reproducible in tests.
///
/// Ownership/threading: all members are atomic; arming (Cancel,
/// TightenDeadline, CancelAfterPolls) and polling may race freely across
/// threads. A parent token must outlive every token chained to it.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace saphyra {

/// \brief A monotonic-clock expiry point. Value type; `Never()` (the
/// default) means unbounded.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() : when_ns_(kNeverNs) {}

  static Deadline Never() { return Deadline(); }
  /// Expires `ms` milliseconds from now (clamped to ≥ 0).
  static Deadline AfterMillis(uint64_t ms);
  /// Expires at the given raw steady-clock nanosecond count.
  static Deadline AtSteadyNanos(int64_t ns) { return Deadline(ns); }

  bool unbounded() const { return when_ns_ == kNeverNs; }
  bool expired() const { return !unbounded() && NowNanos() >= when_ns_; }
  int64_t steady_nanos() const { return when_ns_; }

  /// Raw steady-clock reading shared by every deadline comparison.
  static int64_t NowNanos();

  /// Sentinel raw value of the unbounded deadline (compares later than
  /// every real expiry, so min-combining deadlines needs no special case).
  static constexpr int64_t kNeverNs = INT64_MAX;

 private:
  explicit Deadline(int64_t ns) : when_ns_(ns) {}
  int64_t when_ns_;
};

/// \brief Cooperative cancellation: a thread-safe flag + optional deadline
/// + optional parent chain, polled by the sampling loop.
///
/// `Check()` reports the strongest reason to stop as a StatusCode:
/// `kOk` (keep going), `kDeadlineExceeded` (the budget ran out — degrade
/// gracefully) or `kCancelled` (a hard stop was requested). A parent token
/// is consulted first, so one server-wide token can drain every in-flight
/// query at once.
class CancelToken {
 public:
  CancelToken() = default;
  explicit CancelToken(Deadline deadline)
      : deadline_ns_(deadline.steady_nanos()) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Chain to a server/drain token checked before this token's own state.
  /// `parent` may be null; must outlive this token otherwise.
  void set_parent(const CancelToken* parent) { parent_ = parent; }

  /// Request a hard stop (reported as kCancelled from now on).
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  /// Arm or tighten the deadline: the earlier of the current and the new
  /// expiry wins, so a drain deadline can only shorten a query's budget.
  void TightenDeadline(Deadline deadline);

  /// Deterministic test/benchmark trigger: report kCancelled on the n-th
  /// Poll() from now (n ≥ 1). Polls happen at wave boundaries, so a fixed
  /// poll count pins the truncation checkpoint exactly.
  void CancelAfterPolls(uint64_t polls);

  /// True if a deadline, poll budget, parent or pending cancel could ever
  /// make Check() non-OK — i.e. the run should poll at a fine granularity.
  bool CanExpire() const;

  /// Earliest armed deadline along the parent chain (`Never()` when no
  /// deadline is armed anywhere). The sharded serving tier stamps each
  /// worker RPC with this, so a per-query latency budget propagates across
  /// the process boundary instead of stopping at the coordinator.
  Deadline EffectiveDeadline() const;

  /// Non-counting read of the current state.
  StatusCode Check() const;

  /// Counting poll: like Check(), but consumes one unit of a
  /// CancelAfterPolls budget. The sampling loop calls this once per wave.
  /// Const because pollers only borrow the token (the budget countdown is
  /// internal accounting, not an observable arm/disarm).
  StatusCode Poll() const;

  /// Render a non-OK poll result as a Status with a uniform message.
  static Status ToStatus(StatusCode code, const std::string& what);

 private:
  const CancelToken* parent_ = nullptr;
  mutable std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{Deadline::kNeverNs};
  /// Remaining Poll() calls before auto-cancel; < 0 = disabled.
  mutable std::atomic<int64_t> polls_left_{-1};
};

}  // namespace saphyra

#endif  // SAPHYRA_UTIL_CANCEL_H_
