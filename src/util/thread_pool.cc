#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace saphyra {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  Submit(&default_group_, std::move(task));
}

void ThreadPool::Submit(TaskGroup* group, std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push({std::move(task), group});
    ++group->pending;
  }
  cv_task_.notify_one();
}

void ThreadPool::Wait() { WaitGroup(&default_group_); }

void ThreadPool::WaitGroup(TaskGroup* group) {
  std::unique_lock<std::mutex> lock(mu_);
  group->cv.wait(lock, [group] { return group->pending == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task.fn();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--task.group->pending == 0) task.group->cv.notify_all();
    }
  }
}

ThreadPool& SharedThreadPool() {
  static ThreadPool pool(0);
  return pool;
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& body,
                             size_t grain) {
  if (begin >= end) return;
  grain = std::max<size_t>(1, grain);
  // WaitGroup guarantees every task finishes before this frame returns,
  // so the cursor and `body` can both live on the stack.
  TaskGroup group;
  std::atomic<size_t> next{begin};
  size_t chunks = (end - begin + grain - 1) / grain;
  size_t tasks = std::min(chunks, num_threads());
  for (size_t t = 0; t < tasks; ++t) {
    Submit(&group, [&next, end, grain, &body] {
      for (;;) {
        size_t lo = next.fetch_add(grain);
        if (lo >= end) break;
        size_t hi = std::min(end, lo + grain);
        for (size_t i = lo; i < hi; ++i) body(i);
      }
    });
  }
  WaitGroup(&group);
}

}  // namespace saphyra
