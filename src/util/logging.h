#ifndef SAPHYRA_UTIL_LOGGING_H_
#define SAPHYRA_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace saphyra {

/// \brief Internal invariant check. Aborts with a message on violation.
///
/// These stay on in release builds: the algorithms here rely on probability
/// normalization invariants that silent corruption would turn into subtly
/// wrong experimental results rather than crashes.
#define SAPHYRA_CHECK(cond)                                                 \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "SAPHYRA_CHECK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

#define SAPHYRA_CHECK_MSG(cond, msg)                                       \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "SAPHYRA_CHECK failed at %s:%d: %s (%s)\n",     \
                   __FILE__, __LINE__, #cond, msg);                        \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

}  // namespace saphyra

#endif  // SAPHYRA_UTIL_LOGGING_H_
