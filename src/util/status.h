#ifndef SAPHYRA_UTIL_STATUS_H_
#define SAPHYRA_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace saphyra {

/// \brief Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kIOError,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  /// A per-query (or drain) time budget ran out; partial results may still
  /// have been produced (see the serving layer's degraded results).
  kDeadlineExceeded,
  /// Load shed: an admission queue or resource cap rejected the work.
  kResourceExhausted,
  /// A hard stop was requested (shutdown, explicit cancel).
  kCancelled,
  /// A dependency (worker shard, remote peer) is unreachable right now;
  /// retrying later may succeed. The sharded serving tier maps an
  /// exhausted per-wave retry budget to this code.
  kUnavailable,
};

/// \brief Stable SCREAMING_SNAKE wire name of a code (gRPC-style), e.g.
/// "DEADLINE_EXCEEDED". This is what NDJSON error objects carry in their
/// "code" field; clients dispatch on it, so the names are part of the
/// serving contract (docs/serving.md, "Error taxonomy").
const char* StatusCodeWireName(StatusCode code);

/// \brief Lightweight status object for operations that can fail.
///
/// Mirrors the RocksDB/Arrow convention: functions that can fail return a
/// Status (or a value accompanied by a Status) instead of throwing. The OK
/// status carries no allocation.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// \brief Human-readable rendering, e.g. "InvalidArgument: bad node id".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief Propagate a non-OK status to the caller.
#define SAPHYRA_RETURN_NOT_OK(expr)        \
  do {                                     \
    ::saphyra::Status _st = (expr);        \
    if (!_st.ok()) return _st;             \
  } while (false)

}  // namespace saphyra

#endif  // SAPHYRA_UTIL_STATUS_H_
