#ifndef SAPHYRA_UTIL_HASH_H_
#define SAPHYRA_UTIL_HASH_H_

/// \file
/// Incremental FNV-1a (64-bit) hashing. Used wherever the codebase needs a
/// stable, process-independent content digest: the `.sgr` graph content
/// fingerprint (graph/binary_io.h) and the serving layer's canonical query
/// cache keys (service/query.h). Not cryptographic — collisions are handled
/// by the callers (the memo LRU compares full canonical encodings on hit).

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace saphyra {

/// \brief Streaming FNV-1a over arbitrary byte runs. Deterministic across
/// runs and processes (no per-process seeding), which is what makes the
/// digests usable as on-disk fingerprints and cross-session cache keys.
class Fnv1a64 {
 public:
  static constexpr uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr uint64_t kPrime = 0x100000001b3ULL;

  void Update(const void* data, size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    uint64_t h = hash_;
    for (size_t i = 0; i < bytes; ++i) {
      h ^= p[i];
      h *= kPrime;
    }
    hash_ = h;
  }

  /// \brief Hash a trivially-copyable value by its object representation.
  /// Only use with types whose representation is stable across builds
  /// (fixed-width integers, not structs with padding).
  template <typename T>
  void UpdateValue(const T& value) {
    Update(&value, sizeof(value));
  }

  void Update(std::string_view s) { Update(s.data(), s.size()); }

  uint64_t Digest() const { return hash_; }

 private:
  uint64_t hash_ = kOffsetBasis;
};

}  // namespace saphyra

#endif  // SAPHYRA_UTIL_HASH_H_
