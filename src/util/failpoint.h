#ifndef SAPHYRA_UTIL_FAILPOINT_H_
#define SAPHYRA_UTIL_FAILPOINT_H_

/// \file
/// Compile-time-gated fault injection (the tikv/rocksdb failpoint
/// pattern). Production builds compile every site down to nothing; builds
/// configured with `-DSAPHYRA_FAILPOINTS=ON` carry a small registry that
/// tests and CI can use to deterministically force estimator throws, slow
/// waves, and I/O failures at named sites.
///
/// Sites are string literals evaluated inline where robustness matters:
///   - "sampler.wave"     before every sampling wave (may throw/sleep)
///   - "session.index"    inside the lazy IspIndex build (may throw)
///   - "scheduler.admit"  at BatchScheduler admission (may return Status)
///   - "sgr.load"         at the head of LoadSgr (may return Status)
///   - "sgr.write"        mid-payload in WriteSgr (may return Status)
///   - "net.connect"      in net::Connect (may return Status)
///   - "net.send"         in net::SendFrame (may return Status)
///   - "net.recv"         in net::RecvFrame (may return Status)
///   - "worker.wave"      in the shard worker's wave handler; a throw
///                        simulates a mid-wave crash (no reply, the
///                        connection drops)
///
/// Activation, in priority order:
///   1. Programmatic: `fail::Inject("sampler.wave", "1*throw")` from a
///      test (plus Clear / ClearAll between cases).
///   2. Environment: SAPHYRA_FAILPOINTS="site=action[;site=action...]"
///      parsed once, lazily — how CI injects faults into a serve smoke.
///
/// Action grammar: `[N*]kind[(arg)]` — fire at most N times, then off.
///   off          disable the site
///   throw(msg)   throw fail::InjectedFault(msg)         [MaybeFault]
///   sleep(ms)    sleep, then continue normally          [both]
///   error(msg)   return Status::Internal(msg)           [FaultStatus]
///   io-error(msg) return Status::IOError(msg)           [FaultStatus]
/// A throw/error reaching a FaultStatus/MaybeFault site that cannot carry
/// it degrades to the nearest expressible fault (error <-> throw).
///
/// Threading: the registry is mutex-guarded; sites may be evaluated from
/// any thread. Hit counters count evaluations even for unconfigured
/// sites, so tests can assert a code path was actually reached.

#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/status.h"

namespace saphyra {
namespace fail {

/// True when this build carries the failpoint registry; tests gate on it.
#if defined(SAPHYRA_FAILPOINTS)
inline constexpr bool kBuiltWithFailpoints = true;
#else
inline constexpr bool kBuiltWithFailpoints = false;
#endif

/// The exception injected by `throw` actions. Derives from
/// std::runtime_error so the scheduler's generic catch converts it into a
/// structured INTERNAL error like any other estimator failure.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& what)
      : std::runtime_error("injected fault: " + what) {}
};

#if defined(SAPHYRA_FAILPOINTS)

/// Configure `site` with an action spec (grammar above). Returns false on
/// a malformed spec (the site is left unchanged).
bool Inject(const std::string& site, const std::string& action);
/// Remove one site's configuration / every configuration.
void Clear(const std::string& site);
void ClearAll();
/// Evaluations of `site` so far (configured or not).
uint64_t HitCount(const std::string& site);

/// Evaluate a throw/sleep-capable site. Counts a hit; may sleep; throws
/// InjectedFault when an armed `throw` (or `error`) action fires.
void MaybeFault(const char* site);

/// Evaluate a Status-returning site. Counts a hit; may sleep; returns the
/// injected Status when an armed `error`/`io-error` (or `throw`) fires.
Status FaultStatus(const char* site);

#else  // !SAPHYRA_FAILPOINTS — every site is a no-op the optimizer erases.

inline bool Inject(const std::string&, const std::string&) { return false; }
inline void Clear(const std::string&) {}
inline void ClearAll() {}
inline uint64_t HitCount(const std::string&) { return 0; }
inline void MaybeFault(const char*) {}
inline Status FaultStatus(const char*) { return Status::OK(); }

#endif  // SAPHYRA_FAILPOINTS

}  // namespace fail
}  // namespace saphyra

#endif  // SAPHYRA_UTIL_FAILPOINT_H_
