#include "util/mapped_file.h"

#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#define SAPHYRA_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace saphyra {

namespace {

Status ReadWholeFile(const std::string& path, std::vector<std::byte>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  long end = std::ftell(f);
  if (end < 0) {
    std::fclose(f);
    return Status::IOError("cannot stat " + path);
  }
  std::fseek(f, 0, SEEK_SET);
  out->resize(static_cast<size_t>(end));
  size_t got = end == 0 ? 0 : std::fread(out->data(), 1, out->size(), f);
  std::fclose(f);
  if (got != out->size()) return Status::IOError("short read on " + path);
  return Status::OK();
}

}  // namespace

Status MappedFile::Open(const std::string& path,
                        std::shared_ptr<MappedFile>* out, bool prefer_mmap) {
  std::shared_ptr<MappedFile> file(new MappedFile());
#if SAPHYRA_HAVE_MMAP
  if (prefer_mmap) {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Status::IOError("cannot open " + path);
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return Status::IOError("cannot stat " + path);
    }
    if (st.st_size == 0) {
      // mmap of length 0 is undefined; an empty file needs no mapping.
      ::close(fd);
      *out = std::move(file);
      return Status::OK();
    }
    void* addr = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                        MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping keeps its own reference
    if (addr == MAP_FAILED) return Status::IOError("mmap failed on " + path);
    file->data_ = addr;
    file->size_ = static_cast<size_t>(st.st_size);
    file->mapped_ = true;
    *out = std::move(file);
    return Status::OK();
  }
#endif
  (void)prefer_mmap;
  SAPHYRA_RETURN_NOT_OK(ReadWholeFile(path, &file->fallback_));
  file->data_ = file->fallback_.data();
  file->size_ = file->fallback_.size();
  *out = std::move(file);
  return Status::OK();
}

MappedFile::~MappedFile() {
#if SAPHYRA_HAVE_MMAP
  if (mapped_) {
    ::munmap(const_cast<void*>(data_), size_);
  }
#endif
}

}  // namespace saphyra
