#include "util/timer.h"

#include <cstdio>

namespace saphyra {

std::string FormatDuration(double seconds) {
  char buf[64];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1fms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fmin", seconds / 60.0);
  }
  return buf;
}

}  // namespace saphyra
