#include "util/failpoint.h"

#if defined(SAPHYRA_FAILPOINTS)

#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

namespace saphyra {
namespace fail {

namespace {

enum class ActionKind { kOff, kThrow, kError, kIoError, kSleep };

struct Action {
  ActionKind kind = ActionKind::kOff;
  /// Remaining firings; -1 = unlimited.
  int64_t remaining = -1;
  uint64_t sleep_ms = 0;
  std::string message;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Action> actions;
  std::map<std::string, uint64_t> hits;
};

Registry& GetRegistry() {
  static Registry* r = new Registry();  // leaked: outlives every thread
  return *r;
}

/// Parse `[N*]kind[(arg)]`; returns false on malformed input.
bool ParseAction(const std::string& spec, Action* out) {
  *out = Action();
  std::string s = spec;
  const size_t star = s.find('*');
  if (star != std::string::npos) {
    const std::string count = s.substr(0, star);
    if (count.empty() ||
        count.find_first_not_of("0123456789") != std::string::npos) {
      return false;
    }
    out->remaining = static_cast<int64_t>(std::strtoll(count.c_str(),
                                                       nullptr, 10));
    s = s.substr(star + 1);
  }
  std::string arg;
  const size_t paren = s.find('(');
  if (paren != std::string::npos) {
    if (s.back() != ')') return false;
    arg = s.substr(paren + 1, s.size() - paren - 2);
    s = s.substr(0, paren);
  }
  if (s == "off") {
    out->kind = ActionKind::kOff;
  } else if (s == "throw") {
    out->kind = ActionKind::kThrow;
    out->message = arg.empty() ? "throw" : arg;
  } else if (s == "error") {
    out->kind = ActionKind::kError;
    out->message = arg.empty() ? "error" : arg;
  } else if (s == "io-error") {
    out->kind = ActionKind::kIoError;
    out->message = arg.empty() ? "io-error" : arg;
  } else if (s == "sleep") {
    if (arg.empty() ||
        arg.find_first_not_of("0123456789") != std::string::npos) {
      return false;
    }
    out->kind = ActionKind::kSleep;
    out->sleep_ms = std::strtoull(arg.c_str(), nullptr, 10);
  } else {
    return false;
  }
  return true;
}

/// Lazily fold SAPHYRA_FAILPOINTS="site=action;site=action" into the
/// registry the first time any site is evaluated.
void ConfigureFromEnvOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("SAPHYRA_FAILPOINTS");
    if (env == nullptr || *env == '\0') return;
    std::string spec(env);
    size_t begin = 0;
    while (begin <= spec.size()) {
      size_t end = spec.find(';', begin);
      if (end == std::string::npos) end = spec.size();
      const std::string item = spec.substr(begin, end - begin);
      begin = end + 1;
      if (item.empty()) continue;
      const size_t eq = item.find('=');
      if (eq == std::string::npos) continue;  // malformed entry: skip
      Inject(item.substr(0, eq), item.substr(eq + 1));
    }
  });
}

/// Take one firing of `site`'s action (decrementing a count limit) and
/// return it; kOff when the site is idle. Also bumps the hit counter.
Action TakeAction(const char* site) {
  ConfigureFromEnvOnce();
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  ++reg.hits[site];
  auto it = reg.actions.find(site);
  if (it == reg.actions.end()) return Action();
  Action& a = it->second;
  if (a.kind == ActionKind::kOff || a.remaining == 0) return Action();
  if (a.remaining > 0) --a.remaining;
  return a;
}

}  // namespace

bool Inject(const std::string& site, const std::string& action) {
  Action parsed;
  if (site.empty() || !ParseAction(action, &parsed)) return false;
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.actions[site] = parsed;
  return true;
}

void Clear(const std::string& site) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.actions.erase(site);
}

void ClearAll() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.actions.clear();
}

uint64_t HitCount(const std::string& site) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.hits.find(site);
  return it == reg.hits.end() ? 0 : it->second;
}

void MaybeFault(const char* site) {
  const Action a = TakeAction(site);
  switch (a.kind) {
    case ActionKind::kOff:
      return;
    case ActionKind::kSleep:
      std::this_thread::sleep_for(std::chrono::milliseconds(a.sleep_ms));
      return;
    case ActionKind::kThrow:
    case ActionKind::kError:
    case ActionKind::kIoError:
      // A throw-capable site expresses every failure as the exception.
      throw InjectedFault(std::string(site) + ": " + a.message);
  }
}

Status FaultStatus(const char* site) {
  const Action a = TakeAction(site);
  switch (a.kind) {
    case ActionKind::kOff:
      return Status::OK();
    case ActionKind::kSleep:
      std::this_thread::sleep_for(std::chrono::milliseconds(a.sleep_ms));
      return Status::OK();
    case ActionKind::kIoError:
      return Status::IOError("injected fault: " + std::string(site) + ": " +
                             a.message);
    case ActionKind::kThrow:
    case ActionKind::kError:
      // A Status site expresses a `throw` as the strongest error it can
      // return without unwinding through Status-returning callers.
      return Status::Internal("injected fault: " + std::string(site) + ": " +
                              a.message);
  }
  return Status::OK();
}

}  // namespace fail
}  // namespace saphyra

#endif  // SAPHYRA_FAILPOINTS
