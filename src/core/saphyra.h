#ifndef SAPHYRA_CORE_SAPHYRA_H_
#define SAPHYRA_CORE_SAPHYRA_H_

/// \file
/// The generic SaPHyRa framework (Algorithm 1 of the paper): rank a
/// hypothesis class by (ε,δ)-estimates of expected risk, splitting the
/// sample space into an exactly-computed subspace and a sampled remainder.
/// The betweenness instantiation lives in bc/saphyra_bc.h; its
/// preprocessing (the ISP index of bicomp/isp.h) can be persisted in a
/// `.sgr` cache and adopted without recomputation — see README.md,
/// "The .sgr binary cache" and DESIGN.md, "The .sgr on-disk format".
/// For a tour of the public API, start at README.md, "Library tour", or
/// examples/quickstart.cpp.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "graph/frontier.h"
#include "util/cancel.h"
#include "util/rng.h"

namespace saphyra {

class WaveExecutor;  // core/sample_engine.h

/// \brief One weighted loss observation: hypothesis `index` incurred loss
/// `value` ∈ [0, 1] on the current sample. Used by problems whose losses
/// are fractional rather than 0/1 (e.g. ABRA's σ_uv(w)/σ_uv credits).
struct WeightedHit {
  uint32_t index;
  double value;
};

/// \brief A hypothesis-ranking problem with a partitioned sample space
/// (§III of the paper).
///
/// An instantiation fixes a sample space X, a distribution D, a 0/1 loss,
/// and a hypothesis class H = {h_1..h_k}, together with a partition
/// X = X̂ ∪ X̃ into an *exact* and an *approximate* subspace:
///
///  * ComputeExactRisks plays the role of the paper's `Exact(·)` oracle: it
///    returns the exact-subspace risks ℓ̂_i (Eq. 9) and the subspace weight
///    λ̂ = Pr_D[x ∈ X̂].
///  * SampleApproxLosses plays the role of `Gen(·)`: it draws one sample
///    from D̃ = D conditioned on X̃ (Eq. 10) and reports which hypotheses
///    incur loss 1 on it (losses are restricted to {0,1}, which is all the
///    paper's instantiations use — Eq. 27).
///  * VcDimension returns an upper bound on VC(H) over X̃, capping the
///    sample budget via Lemma 4.
class HypothesisRankingProblem {
 public:
  virtual ~HypothesisRankingProblem() = default;

  /// \brief Number of hypotheses k = |H|.
  virtual size_t num_hypotheses() const = 0;

  /// \brief Fill ℓ̂ (resized to k) and return λ̂ ∈ [0, 1].
  virtual double ComputeExactRisks(std::vector<double>* exact_risks) = 0;

  /// \brief Draw x ~ D̃ and append the indices {i : L(h_i(x), f(x)) = 1}
  /// to *hits (the caller clears the vector).
  virtual void SampleApproxLosses(Rng* rng, std::vector<uint32_t>* hits) = 0;

  /// \brief Upper bound on VC(H) (e.g. Lemma 5 / Corollary 22).
  virtual double VcDimension() const = 0;

  /// \brief Losses restricted to {0,1}? Problems with fractional losses in
  /// [0, 1] (ABRA-style dependency credits) return true and implement
  /// SampleWeightedLosses instead of SampleApproxLosses; the sampling
  /// engine then also tracks per-hypothesis loss sums and sums of squares.
  virtual bool has_weighted_losses() const { return false; }

  /// \brief Weighted counterpart of SampleApproxLosses: draw x ~ D̃ and
  /// append {i, L(h_i(x), f(x))} for every hypothesis with positive loss.
  /// Only called when has_weighted_losses() is true.
  virtual void SampleWeightedLosses(Rng* rng, std::vector<WeightedHit>* hits);

  /// \brief Optional: an independent sampling clone for one worker thread.
  ///
  /// Samples are i.i.d., so generation parallelizes trivially — the paper
  /// notes its framework "can be potentially combined with parallel and
  /// distributed methods". A clone must draw from the same distribution D̃
  /// but own its scratch state (BFS buffers etc.). Return nullptr (the
  /// default) to keep the run single-threaded. Clonability must be
  /// all-or-nothing: once a clone has been handed out, later calls must
  /// keep succeeding — the sampling engine sizes its deterministic RNG
  /// stream partition off the first probe, so a mid-run nullptr is a
  /// hard error rather than a degrade.
  virtual std::unique_ptr<HypothesisRankingProblem> CloneForSampling() {
    return nullptr;
  }
};

/// \brief Parameters of Algorithm 1.
struct SaphyraOptions {
  /// Target accuracy ε of the (ε,δ)-estimation (Eq. 7).
  double epsilon = 0.05;
  /// Failure probability δ.
  double delta = 0.01;
  /// Constant c of Lemma 4 ("approximately 0.5").
  double vc_constant = 0.5;
  /// RNG seed; pilot sampling uses an independent derived stream, as the
  /// paper requires ("the samples here are independent with the samples
  /// in x").
  uint64_t seed = 1;
  /// Lower bound on the initial sample size, so the adaptive loop has a
  /// meaningful variance estimate even when ε′ is huge.
  uint64_t min_initial_samples = 32;
  /// Worker threads for sample generation (1 = serial, running inline on
  /// the caller's thread; >1 executes on the persistent SharedThreadPool).
  /// Purely an execution choice: the logical sampling streams are striped
  /// over a fixed number of RNG stripes, so results are bitwise identical
  /// for a given seed regardless of num_threads (see
  /// core/progressive_sampler.h, "Determinism").
  uint32_t num_threads = 1;
  /// 0 = guaranteed-ε mode (stop when every hypothesis meets ε′ by the
  /// empirical Bernstein bound). >0 = top-k mode: stop as soon as the k
  /// highest combined estimates are separated from the rest by their
  /// confidence half-widths (per-hypothesis δ allocation as in Eq. 13);
  /// the ε budget then only caps the sample schedule via the VC bound.
  uint64_t top_k = 0;
  /// Optional per-hypothesis additive constants (in combined-risk units)
  /// applied when evaluating top-k separation — exact mass the frontend
  /// adds *outside* this framework run, e.g. SaPHyRa_bc's break-point
  /// term bc_a(v)/(γη). Empty = no external offsets. Constants shift the
  /// estimates, not their confidence widths, so separation decisions
  /// match the frontend's final ranking.
  std::vector<double> top_k_offsets;
  /// Cap on the number of samples per engine wave (0 = one wave per
  /// stopping-rule checkpoint). Batching granularity only — never affects
  /// results (see the ProgressiveSampler determinism contract).
  uint64_t max_wave = 0;
  /// How BFS-based sample generators expand their levels
  /// (graph/frontier.h): kAuto/kHybrid enable the direction-optimizing
  /// bottom-up pull on supporting substrates, kTopDown forces the classic
  /// push. Execution choice only — results are bitwise identical either
  /// way (see DESIGN.md, "Direction-optimizing traversal").
  TraversalPolicy traversal = TraversalPolicy::kAuto;
  /// Optional cooperative cancellation/deadline, polled at wave
  /// boundaries of both the pilot and the main loop (null = run to
  /// completion). On expiry the run finalizes from completed waves and
  /// the result is tagged degraded with the accuracy actually achieved —
  /// see util/cancel.h and DESIGN.md, "Degradation contract". Borrowed;
  /// must outlive the run.
  const CancelToken* cancel = nullptr;
  /// Optional delegated wave execution (core/sample_engine.h): called once
  /// per progressive run the algorithm builds — ordinal 0 is the pilot,
  /// ordinal 1 the main estimation loop (single-loop callers like
  /// RunDirectEstimation and the whole-graph baselines only use 0) — and
  /// must return a borrowed executor for that run, or nullptr for local
  /// drawing. The sharded serving tier hooks its ShardedEngine in here.
  /// Empty = always local. Never affects result bytes while waves succeed.
  std::function<WaveExecutor*(uint32_t ordinal)> wave_executor;
};

/// \brief Diagnostics and output of Algorithm 1.
struct SaphyraResult {
  /// Combined estimates ℓ_i = ℓ̂_i + λ·ℓ̃_i (Eq. 8); the (ε,δ)-estimates of
  /// the expected risks R(h_i) (Theorem 6).
  std::vector<double> combined_risks;
  /// Exact-subspace risks ℓ̂_i.
  std::vector<double> exact_risks;
  /// Approximate-subspace estimates ℓ̃_i (empirical means over X̃).
  std::vector<double> approx_risks;

  double lambda_hat = 0.0;     ///< Pr[x ∈ X̂]
  double lambda = 1.0;         ///< Pr[x ∈ X̃] = 1 − λ̂
  double epsilon_prime = 0.0;  ///< ε′ = ε/λ
  uint64_t pilot_samples = 0;
  uint64_t samples_used = 0;   ///< N of the main estimation loop
  uint64_t max_samples = 0;    ///< Nmax from the VC bound
  uint32_t rounds_used = 0;    ///< stopping-rule checkpoints evaluated
  uint32_t waves_used = 0;     ///< engine batches drawn (≥ rounds_used)
  /// True if the stopping rule (Bernstein ε-guarantee, or top-k
  /// separation in top-k mode) triggered before Nmax.
  bool stopped_early = false;
  /// The cancel token fired first: estimates come from completed waves
  /// only and the (ε, δ) guarantee does NOT hold. Deterministic for a
  /// fixed (seed, samples_used) — see DESIGN.md, "Degradation contract".
  bool degraded = false;
  /// kDeadlineExceeded or kCancelled (token), or kUnavailable (delegated
  /// wave execution lost its workers) when degraded; kOk otherwise.
  StatusCode degrade_reason = StatusCode::kOk;
  /// Only meaningful when degraded: the worst-case deviation bound the
  /// truncated run actually achieves, in combined-risk units (ε-mode: the
  /// λ-scaled Bernstein bound over all hypotheses; top-k mode: the widest
  /// confidence half-width). Infinity when truncation preceded the second
  /// sample (no variance estimate yet).
  double epsilon_achieved = 0.0;
};

/// \brief Run Algorithm 1 (SaPHyRa) on a problem instance.
///
/// Returns (ε,δ)-estimates of the expected risks: with probability at least
/// 1 − δ, |R(h_i) − ℓ_i| < ε for every i (Theorem 6).
SaphyraResult RunSaphyra(HypothesisRankingProblem* problem,
                         const SaphyraOptions& options);

/// \brief Direct estimation baseline (§III-A): no partition, fixed sample
/// size N = c/ε²(VC + ln 1/δ). Used by the ablation benchmarks to isolate
/// the contribution of the sample-space partition.
SaphyraResult RunDirectEstimation(HypothesisRankingProblem* problem,
                                  const SaphyraOptions& options);

}  // namespace saphyra

#endif  // SAPHYRA_CORE_SAPHYRA_H_
