#ifndef SAPHYRA_CORE_PROGRESSIVE_SAMPLER_H_
#define SAPHYRA_CORE_PROGRESSIVE_SAMPLER_H_

/// \file
/// Progressive (wave-based) adaptive sampling: the single sampling loop
/// behind every estimator frontend in this codebase (core SaPHyRa, the
/// SaPHyRa_bc pipeline, and the ABRA / KADABRA baselines).
///
/// A `ProgressiveSampler` draws samples on the pooled `SampleEngine` in
/// geometric *checkpoint* targets (n0, n0·g, n0·g², …, capped by the VC
/// budget Nmax) and evaluates a pluggable `StoppingRule` at every
/// checkpoint. Between checkpoints the draw may be further batched into
/// *waves* of at most `max_wave` samples — batching granularity is an
/// execution knob only and never affects results.
///
/// **Determinism.** The checkpoint geometry (n0, growth, Nmax) is part of
/// the statistical contract: it determines how the failure budget δ is
/// split across checks, so two runs with different geometries are
/// different (equally valid) estimators. Everything else is execution:
/// for a fixed (seed, stopping rule, checkpoint geometry), results are
/// bitwise identical across thread counts, wave sizes, pool schedules and
/// repeated runs — the engine stripes samples over a fixed number of
/// logical RNG streams (`stripes`), and all accumulation is integer (hit
/// counts, and 32.32 fixed point for fractional losses), hence
/// associative. See DESIGN.md, "Adaptive stopping contract".
///
/// Ownership/threading: a sampler borrows the problem and base RNG (both
/// must outlive it) and is single-driver — Run() once, from one thread.
/// Independent samplers may run concurrently from different driver
/// threads (they share SharedThreadPool through per-call task groups);
/// the serving layer's BatchScheduler (src/service/scheduler.h) does
/// exactly that, one sampler per admitted query.

#include <cstdint>
#include <vector>

#include "core/sample_engine.h"
#include "core/saphyra.h"
#include "util/cancel.h"
#include "util/rng.h"

namespace saphyra {

/// Logical RNG stripes of the sampling loop. Fixed by default so that
/// results do not depend on the thread count; changing it changes the
/// stream partition and therefore the (equally valid) draw.
inline constexpr uint32_t kDefaultSampleStripes = 16;

/// \brief Schedule and execution parameters of the progressive loop.
struct ProgressiveOptions {
  /// First checkpoint n0 (clamped to ≥ 2 so variances are defined).
  uint64_t initial_samples = 32;
  /// Hard sample budget Nmax (the VC bound); the loop never exceeds it and
  /// the guarantee of Lemma 4 holds unconditionally once it is reached.
  uint64_t max_samples = 0;
  /// Geometric growth factor between checkpoints (> 1; 2 = doubling).
  double growth = 2.0;
  /// Cap on samples per engine wave (0 = one wave per checkpoint).
  /// Execution granularity only — never affects results.
  uint64_t max_wave = 0;
  /// Worker threads (1 = inline on the caller's thread; >1 executes on the
  /// persistent SharedThreadPool). Never affects results.
  uint32_t num_threads = 1;
  /// Logical RNG stripes (0 = kDefaultSampleStripes). Part of the seed:
  /// different stripe counts draw different (equally valid) streams.
  uint32_t stripes = 0;
  /// Optional cooperative cancellation, polled once per wave (null =
  /// never stops early). On expiry the run finalizes from completed waves
  /// only and is tagged degraded; polling happens at deterministic wave
  /// boundaries, so the truncated statistics are a pure function of
  /// (seed, truncation point) — see util/cancel.h. Borrowed; must outlive
  /// the run.
  const CancelToken* cancel = nullptr;
  /// Optional delegated wave execution (core/sample_engine.h): when set,
  /// every wave is executed through this hook instead of being drawn
  /// locally — the sharded serving tier farms stripes out to worker
  /// processes here. A failing wave degrades the run (the failure's status
  /// code becomes `degrade_reason`) exactly like a deadline expiry: the
  /// result finalizes from completed waves only. Borrowed; must outlive
  /// the run. Never affects result bytes while waves succeed.
  WaveExecutor* executor = nullptr;
};

/// \brief Number of stopping-rule checkpoints the schedule will evaluate:
/// the length of the sequence n0, ⌈n0·g⌉, … truncated at Nmax (inclusive).
/// Stopping rules split their failure budget δ over this count.
uint32_t PlannedChecks(uint64_t initial_samples, uint64_t max_samples,
                       double growth);

/// \brief The standard VC-capped doubling schedule shared by the whole-
/// graph estimators (ABRA, KADABRA): n0 = c/ε²·ln(2/δ) floored at 32, and
/// Nmax = max(n0, VcSampleBound(ε, δ, vc)). Keeps the three frontends'
/// schedule parameters from drifting apart.
ProgressiveOptions MakeVcCappedSchedule(double epsilon, double delta,
                                        double vc_dimension,
                                        double vc_constant,
                                        uint64_t max_wave,
                                        uint32_t num_threads);

/// \brief A stopping criterion evaluated between sampling waves.
///
/// Implementations: `FixedBudgetRule` (run to the VC cap),
/// `EpsilonGuaranteeRule` (empirical-Bernstein ε-guarantee with per-
/// hypothesis δ allocation), `TopKSeparationRule` (confidence-interval
/// separation of the k best), and ABRA's Rademacher-average rule
/// (baselines/abra.cc) — proof that the interface carries stopping
/// criteria that are not per-hypothesis deviation bounds.
class StoppingRule {
 public:
  virtual ~StoppingRule() = default;

  /// \brief Called once before sampling with the checkpoint geometry, so
  /// uniform-allocation rules can split δ across the planned checks.
  virtual void Begin(uint64_t initial_samples, uint64_t max_samples,
                     uint32_t planned_checks) {}

  /// \brief Evaluate the rule on the merged statistics of stats.n samples.
  /// Returning true ends the run (stats.n becomes the final sample size).
  virtual bool ShouldStop(const SampleStats& stats) = 0;
};

/// \brief Never stops early: runs the schedule to Nmax, where the VC bound
/// (Lemma 4) supplies the (ε, δ)-guarantee unconditionally. The fixed-
/// budget baseline that `adaptive_sample_reduction` compares against.
class FixedBudgetRule : public StoppingRule {
 public:
  bool ShouldStop(const SampleStats& stats) override { return false; }
};

/// \brief Empirical-Bernstein ε-guarantee (lines 10-18 of Algorithm 1):
/// stop once every hypothesis i satisfies ε(N, δ_i, Var_i) ≤ ε.
///
/// The per-hypothesis failure budgets δ_i either come from the caller
/// (variance-aware pilot allocation, stats/delta_allocation.h) or are
/// split uniformly over hypotheses, both tails and the planned checks.
class EpsilonGuaranteeRule : public StoppingRule {
 public:
  /// Explicit per-hypothesis budgets (each δ_i spent at every check; the
  /// caller has already divided by the number of checks).
  EpsilonGuaranteeRule(double epsilon, std::vector<double> deltas);
  /// Uniform allocation: δ_i = δ / (2 · k · planned_checks), computed in
  /// Begin. This is KADABRA's simplified union-bound bookkeeping.
  EpsilonGuaranteeRule(double epsilon, double delta, size_t num_hypotheses);

  void Begin(uint64_t initial_samples, uint64_t max_samples,
             uint32_t planned_checks) override;
  bool ShouldStop(const SampleStats& stats) override;

  /// Worst per-hypothesis deviation bound of the last evaluation. May be
  /// an underestimate when the last check failed early (ShouldStop breaks
  /// at the first hypothesis over budget); use EvaluateWorstEpsilon for
  /// the exact value.
  double last_worst_epsilon() const { return last_worst_epsilon_; }

  /// Exact worst-case deviation bound over *all* hypotheses at `stats` —
  /// the achieved ε a degraded (deadline-truncated) run reports. Infinity
  /// when fewer than two samples were drawn (no variance estimate).
  double EvaluateWorstEpsilon(const SampleStats& stats) const;

 private:
  double epsilon_;
  std::vector<double> deltas_;
  double uniform_delta_total_ = 0.0;
  size_t num_hypotheses_ = 0;
  double last_worst_epsilon_ = 0.0;
};

/// \brief Top-k separation: stop as soon as the k hypotheses with the
/// highest estimates are separated from the rest by their empirical-
/// Bernstein confidence half-widths — the smallest lower confidence bound
/// inside the top-k set must reach the largest upper bound outside it.
///
/// Estimates are affine in the sampled mean (`value_i = offset_i +
/// scale · mean_i`), which is exactly how every frontend combines the
/// exact-subspace risks with the sampled remainder; half-widths scale by
/// the same factor. When separation never occurs (ties, or a degenerate
/// k covering every hypothesis), the schedule runs to Nmax and the VC
/// bound still guarantees ε-accurate values.
class TopKSeparationRule : public StoppingRule {
 public:
  /// `deltas` — per-hypothesis budgets (empty = uniform allocation from
  /// `delta`, as in EpsilonGuaranteeRule). `offsets` — per-hypothesis
  /// additive exact parts (empty = all zero).
  TopKSeparationRule(size_t k, double delta, std::vector<double> deltas,
                     std::vector<double> offsets, double scale);

  void Begin(uint64_t initial_samples, uint64_t max_samples,
             uint32_t planned_checks) override;
  bool ShouldStop(const SampleStats& stats) override;

  /// Confidence gap (min top-k lower bound − max rest upper bound) of the
  /// last evaluation; ≥ 0 once separated.
  double last_gap() const { return last_gap_; }

  /// Largest per-hypothesis confidence half-width at `stats`, in the same
  /// (scaled) units as the values — the achieved accuracy a degraded
  /// top-k run reports. Infinity when fewer than two samples were drawn.
  /// Non-const because uniform δ allocation materializes lazily.
  double EvaluateWorstHalfwidth(const SampleStats& stats);

 private:
  size_t k_;
  double delta_total_;
  double per_check_delta_ = 0.0;
  std::vector<double> deltas_;
  std::vector<double> offsets_;
  double scale_;
  double last_gap_ = 0.0;
  std::vector<double> values_;      // scratch
  std::vector<double> halfwidths_;  // scratch
  std::vector<uint32_t> order_;     // scratch
};

/// \brief Diagnostics and output of a progressive run.
struct ProgressiveResult {
  SampleStats stats;           ///< merged statistics at the stop point
  uint64_t samples_used = 0;   ///< final N (== stats.n)
  uint32_t checks_used = 0;    ///< stopping-rule evaluations
  uint32_t waves_used = 0;     ///< engine batches drawn
  bool stopped_early = false;  ///< rule fired before Nmax
  /// The cancel token fired before the rule or Nmax: the statistics cover
  /// completed waves only and the rule's guarantee does NOT hold. Still
  /// deterministic for a fixed (seed, samples_used) — see util/cancel.h.
  bool degraded = false;
  /// Why the run degraded: kDeadlineExceeded or kCancelled from the
  /// token, or the wave executor's failure code (kUnavailable when the
  /// sharded tier lost its workers past the retry budget). kOk unless
  /// `degraded`.
  StatusCode degrade_reason = StatusCode::kOk;
};

/// \brief The shared wave scheduler. Owns a pooled SampleEngine over the
/// problem (striped RNG streams, persistent thread pool) and runs the
/// checkpoint schedule against a stopping rule.
class ProgressiveSampler {
 public:
  /// `base_rng` seeds the stripe streams (consumed at construction);
  /// `problem` and `base_rng` must outlive the sampler.
  ProgressiveSampler(HypothesisRankingProblem* problem,
                     const ProgressiveOptions& options, Rng* base_rng);

  /// \brief Run the schedule until `rule` fires or Nmax is reached. May be
  /// called once per sampler (the engine's streams are consumed).
  ProgressiveResult Run(StoppingRule* rule);

 private:
  ProgressiveOptions options_;
  SampleEngine engine_;
};

}  // namespace saphyra

#endif  // SAPHYRA_CORE_PROGRESSIVE_SAMPLER_H_
