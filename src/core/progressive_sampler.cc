#include "core/progressive_sampler.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/empirical_bernstein.h"
#include "stats/vc.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace saphyra {

namespace {

/// Next checkpoint after n under geometric growth, capped at n_max.
/// Guaranteed to advance by at least one sample so the schedule always
/// terminates, whatever the growth factor rounds to.
uint64_t NextCheckpoint(uint64_t n, uint64_t n_max, double growth) {
  double scaled = static_cast<double>(n) * growth;
  uint64_t next = scaled >= static_cast<double>(n_max)
                      ? n_max
                      : static_cast<uint64_t>(std::ceil(scaled));
  next = std::max(next, n + 1);
  return std::min(next, n_max);
}

uint64_t ClampInitial(uint64_t initial_samples, uint64_t max_samples) {
  return std::min(std::max<uint64_t>(initial_samples, 2), max_samples);
}

}  // namespace

uint32_t PlannedChecks(uint64_t initial_samples, uint64_t max_samples,
                       double growth) {
  SAPHYRA_CHECK(max_samples >= 2);
  SAPHYRA_CHECK(growth > 1.0);
  uint64_t n = ClampInitial(initial_samples, max_samples);
  uint32_t checks = 1;
  while (n < max_samples) {
    n = NextCheckpoint(n, max_samples, growth);
    ++checks;
  }
  return checks;
}

ProgressiveOptions MakeVcCappedSchedule(double epsilon, double delta,
                                        double vc_dimension,
                                        double vc_constant,
                                        uint64_t max_wave,
                                        uint32_t num_threads) {
  ProgressiveOptions schedule;
  schedule.initial_samples = std::max<uint64_t>(
      32, static_cast<uint64_t>(std::ceil(
              vc_constant / (epsilon * epsilon) * std::log(2.0 / delta))));
  schedule.max_samples =
      std::max(schedule.initial_samples,
               VcSampleBound(epsilon, delta, vc_dimension, vc_constant));
  schedule.growth = 2.0;
  schedule.max_wave = max_wave;
  schedule.num_threads = num_threads;
  return schedule;
}

EpsilonGuaranteeRule::EpsilonGuaranteeRule(double epsilon,
                                           std::vector<double> deltas)
    : epsilon_(epsilon), deltas_(std::move(deltas)) {
  SAPHYRA_CHECK(epsilon_ > 0.0);
}

EpsilonGuaranteeRule::EpsilonGuaranteeRule(double epsilon, double delta,
                                           size_t num_hypotheses)
    : epsilon_(epsilon),
      uniform_delta_total_(delta),
      num_hypotheses_(num_hypotheses) {
  SAPHYRA_CHECK(epsilon_ > 0.0);
  SAPHYRA_CHECK(delta > 0.0 && delta < 1.0);
}

void EpsilonGuaranteeRule::Begin(uint64_t initial_samples,
                                 uint64_t max_samples,
                                 uint32_t planned_checks) {
  if (deltas_.empty() && num_hypotheses_ > 0) {
    // Uniform split over hypotheses, both tails, and every check.
    const double d = uniform_delta_total_ /
                     (2.0 * static_cast<double>(num_hypotheses_) *
                      static_cast<double>(planned_checks));
    deltas_.assign(num_hypotheses_, d);
  }
}

bool EpsilonGuaranteeRule::ShouldStop(const SampleStats& stats) {
  SAPHYRA_CHECK(deltas_.size() == stats.counts.size());
  if (stats.n < 2) return false;
  double worst = 0.0;
  for (size_t i = 0; i < deltas_.size(); ++i) {
    worst = std::max(worst, EmpiricalBernsteinEpsilon(
                                stats.n, deltas_[i],
                                stats.sample_variance(i)));
    if (worst > epsilon_) break;  // already failed this check
  }
  last_worst_epsilon_ = worst;
  return worst <= epsilon_;
}

double EpsilonGuaranteeRule::EvaluateWorstEpsilon(
    const SampleStats& stats) const {
  if (stats.n < 2 || deltas_.size() != stats.counts.size()) {
    return std::numeric_limits<double>::infinity();
  }
  double worst = 0.0;
  for (size_t i = 0; i < deltas_.size(); ++i) {
    worst = std::max(worst, EmpiricalBernsteinEpsilon(
                                stats.n, deltas_[i],
                                stats.sample_variance(i)));
  }
  return worst;
}

TopKSeparationRule::TopKSeparationRule(size_t k, double delta,
                                       std::vector<double> deltas,
                                       std::vector<double> offsets,
                                       double scale)
    : k_(k),
      delta_total_(delta),
      deltas_(std::move(deltas)),
      offsets_(std::move(offsets)),
      scale_(scale) {
  SAPHYRA_CHECK(k_ > 0);
  SAPHYRA_CHECK(scale_ > 0.0);
}

void TopKSeparationRule::Begin(uint64_t initial_samples, uint64_t max_samples,
                               uint32_t planned_checks) {
  if (deltas_.empty()) {
    SAPHYRA_CHECK(delta_total_ > 0.0 && delta_total_ < 1.0);
    // Uniform allocation is split per hypothesis lazily, at the first
    // check, when the hypothesis count is known (deltas_ stays empty
    // until then); only the per-check budget is fixed here.
    per_check_delta_ = delta_total_ / static_cast<double>(planned_checks);
  } else {
    per_check_delta_ = 0.0;
  }
}

bool TopKSeparationRule::ShouldStop(const SampleStats& stats) {
  const size_t n_hyp = stats.counts.size();
  if (stats.n < 2) return false;
  if (k_ >= n_hyp) {
    // Everything is in the top-k: "separation" is vacuous, and stopping
    // at the first check would return minimally-sampled estimates with
    // no guarantee at all. Run the schedule to the VC cap instead, which
    // keeps the documented ε fallback. (Frontends normally route this
    // degenerate request to ε-mode before it reaches the rule.)
    last_gap_ = 0.0;
    return false;
  }
  if (deltas_.empty()) {
    deltas_.assign(n_hyp, per_check_delta_ /
                              (2.0 * static_cast<double>(n_hyp)));
  }
  SAPHYRA_CHECK(deltas_.size() == n_hyp);
  SAPHYRA_CHECK(offsets_.empty() || offsets_.size() == n_hyp);
  values_.resize(n_hyp);
  halfwidths_.resize(n_hyp);
  order_.resize(n_hyp);
  for (size_t i = 0; i < n_hyp; ++i) {
    const double base = offsets_.empty() ? 0.0 : offsets_[i];
    values_[i] = base + scale_ * stats.mean(i);
    halfwidths_[i] =
        scale_ * EmpiricalBernsteinEpsilon(stats.n, deltas_[i],
                                           stats.sample_variance(i));
    order_[i] = static_cast<uint32_t>(i);
  }
  // Partition the indices into the k best values and the rest. Ties at the
  // boundary land on either side; separation then simply never triggers,
  // which is the conservative behavior (run to the VC cap).
  std::nth_element(order_.begin(), order_.begin() + (k_ - 1), order_.end(),
                   [&](uint32_t a, uint32_t b) {
                     return values_[a] > values_[b];
                   });
  double top_lower = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < k_; ++i) {
    const uint32_t h = order_[i];
    top_lower = std::min(top_lower, values_[h] - halfwidths_[h]);
  }
  double rest_upper = -std::numeric_limits<double>::infinity();
  for (size_t i = k_; i < n_hyp; ++i) {
    const uint32_t h = order_[i];
    rest_upper = std::max(rest_upper, values_[h] + halfwidths_[h]);
  }
  last_gap_ = top_lower - rest_upper;
  return last_gap_ >= 0.0;
}

double TopKSeparationRule::EvaluateWorstHalfwidth(const SampleStats& stats) {
  const size_t n_hyp = stats.counts.size();
  if (stats.n < 2 || n_hyp == 0) {
    return std::numeric_limits<double>::infinity();
  }
  if (deltas_.empty()) {
    deltas_.assign(n_hyp, per_check_delta_ /
                              (2.0 * static_cast<double>(n_hyp)));
  }
  SAPHYRA_CHECK(deltas_.size() == n_hyp);
  double worst = 0.0;
  for (size_t i = 0; i < n_hyp; ++i) {
    worst = std::max(worst,
                     scale_ * EmpiricalBernsteinEpsilon(
                                  stats.n, deltas_[i],
                                  stats.sample_variance(i)));
  }
  return worst;
}

ProgressiveSampler::ProgressiveSampler(HypothesisRankingProblem* problem,
                                       const ProgressiveOptions& options,
                                       Rng* base_rng)
    : options_(options),
      engine_(problem,
              options.stripes == 0 ? kDefaultSampleStripes : options.stripes,
              base_rng,
              options.num_threads > 1 ? &SharedThreadPool() : nullptr) {
  SAPHYRA_CHECK(options_.max_samples >= 2);
  SAPHYRA_CHECK(options_.growth > 1.0);
  engine_.set_wave_executor(options_.executor);
}

ProgressiveResult ProgressiveSampler::Run(StoppingRule* rule) {
  ProgressiveResult result;
  const uint64_t n_max = options_.max_samples;
  uint64_t checkpoint = ClampInitial(options_.initial_samples, n_max);
  rule->Begin(checkpoint, n_max,
              PlannedChecks(checkpoint, n_max, options_.growth));
  uint64_t n = 0;
  for (;;) {
    // Waves only accumulate; the O(k) statistics are materialized once
    // per checkpoint, where a stopping rule actually reads them.
    while (n < checkpoint) {
      // Cancellation is polled only here, at wave boundaries: an expiry
      // truncates to *completed* waves, so the statistics below are a
      // pure function of (seed, n) whatever the wall clock did.
      if (options_.cancel != nullptr) {
        const StatusCode why = options_.cancel->Poll();
        if (why != StatusCode::kOk) {
          result.degraded = true;
          result.degrade_reason = why;
          break;
        }
      }
      fail::MaybeFault("sampler.wave");
      uint64_t wave_target =
          options_.max_wave == 0
              ? checkpoint
              : std::min(checkpoint, n + options_.max_wave);
      n = engine_.DrawAccumulate(n, wave_target);
      if (!engine_.last_wave_status().ok()) {
        // A delegated wave failed (e.g. the sharded tier lost its workers
        // past the retry budget). The failed wave contributed nothing, so
        // — like a deadline expiry — the run finalizes from completed
        // waves only, tagged with the failure's code.
        result.degraded = true;
        result.degrade_reason = engine_.last_wave_status().code();
        break;
      }
      ++result.waves_used;
    }
    engine_.SnapshotStats(n, &result.stats);
    ++result.checks_used;
    if (result.degraded) {
      // Truncated between checkpoints: evaluate the rule once at the
      // truncation point for its diagnostics (achieved ε / gap), but the
      // stop is the token's, not the rule's — no guarantee is claimed.
      if (n >= 2) rule->ShouldStop(result.stats);
      break;
    }
    if (rule->ShouldStop(result.stats)) {
      result.stopped_early = n < n_max;
      break;
    }
    if (n >= n_max) break;
    checkpoint = NextCheckpoint(n, n_max, options_.growth);
  }
  result.samples_used = n;
  return result;
}

}  // namespace saphyra
