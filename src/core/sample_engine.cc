#include "core/sample_engine.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace saphyra {

namespace {

/// 32.32 fixed point: weighted losses lie in [0, 1], so one sample
/// contributes at most 2³² to an accumulator — a uint64 holds 2³² samples
/// before overflow, far beyond any VC cap this codebase produces. Integer
/// accumulation is associative, which keeps the merged moments independent
/// of wave partitioning and worker scheduling; the 2⁻³³ rounding error per
/// sample is orders of magnitude below every stopping tolerance.
constexpr double kFixedPointScale = 4294967296.0;  // 2^32

uint64_t ToFixedPoint(double x) {
  return static_cast<uint64_t>(std::llround(x * kFixedPointScale));
}

double FromFixedPoint(uint64_t fp) {
  return static_cast<double>(fp) / kFixedPointScale;
}

}  // namespace

uint64_t StripeSamplesBelow(uint64_t n, size_t w, size_t num_stripes) {
  if (n <= w) return 0;
  return (n - w - 1) / num_stripes + 1;
}

double SampleStats::mean(size_t i) const {
  if (n == 0) return 0.0;
  const double nn = static_cast<double>(n);
  if (weighted) return sums[i] / nn;
  return static_cast<double>(counts[i]) / nn;
}

double SampleStats::sample_variance(size_t i) const {
  SAPHYRA_CHECK(n >= 2);
  const double nn = static_cast<double>(n);
  if (!weighted) {
    const uint64_t ones = counts[i];
    return static_cast<double>(ones) * static_cast<double>(n - ones) /
           (nn * (nn - 1.0));
  }
  const double var =
      (sum_squares[i] - sums[i] * sums[i] / nn) / (nn - 1.0);
  return var > 0.0 ? var : 0.0;
}

SampleEngine::SampleEngine(HypothesisRankingProblem* problem,
                           uint32_t num_workers, Rng* base_rng,
                           ThreadPool* pool)
    : weighted_(problem->has_weighted_losses()), pool_(pool) {
  workers_.push_back(problem);
  // Inline execution serves every logical worker from the primary instance
  // (a worker's output is a pure function of its RNG stream; scratch is
  // epoch-reset state), so physical clones are only materialized when a
  // pool may run workers concurrently. One probe clone is made either way,
  // because clonability must decide the logical worker count identically
  // for pooled and inline runs — a different count partitions the RNG
  // streams differently. For the same reason clonability is all-or-
  // nothing: a problem that clones once must keep cloning (partial
  // clonability would silently give the two execution modes different
  // worker counts), so a later nullptr is a hard error, not a degrade.
  if (num_workers > 1 && pool_ == nullptr) {
    auto probe = problem->CloneForSampling();
    if (probe != nullptr) {
      clones_.push_back(std::move(probe));
      workers_.push_back(clones_.back().get());
      workers_.resize(num_workers, problem);
    }
  } else {
    for (uint32_t i = 1; i < num_workers; ++i) {
      auto clone = problem->CloneForSampling();
      if (i == 1 && clone == nullptr) break;  // non-clonable: one worker
      SAPHYRA_CHECK_MSG(clone != nullptr,
                        "CloneForSampling must not fail after succeeding");
      clones_.push_back(std::move(clone));
      workers_.push_back(clones_.back().get());
    }
  }
  const size_t k = problem->num_hypotheses();
  for (size_t w = 0; w < workers_.size(); ++w) {
    rngs_.push_back(base_rng->Split());
    local_counts_.emplace_back(k, 0);
    if (weighted_) {
      local_fp_sums_.emplace_back(k, 0);
      local_fp_sum_squares_.emplace_back(k, 0);
      weighted_scratch_.emplace_back();
    }
  }
}

void SampleEngine::DrawStriped(uint64_t current, uint64_t target) {
  const size_t nw = workers_.size();
  // Sample j belongs to worker j mod W: each worker's quota — and therefore
  // its RNG stream consumption — is a pure function of (current, target,
  // num_workers), no matter how a run batches its Draw calls.
  auto quota_of = [&](size_t w) {
    return StripeSamplesBelow(target, w, nw) -
           StripeSamplesBelow(current, w, nw);
  };
  if (nw == 1 || pool_ == nullptr) {
    for (size_t w = 0; w < nw; ++w) RunWorker(w, quota_of(w));
  } else {
    pool_->ParallelFor(0, nw,
                       [&](size_t w) { RunWorker(w, quota_of(w)); });
  }
}

uint64_t SampleEngine::Draw(uint64_t current, uint64_t target,
                            std::vector<uint64_t>* counts) {
  SAPHYRA_CHECK(target >= current);
  if (target == current) return target;
  DrawStriped(current, target);
  for (auto& local : local_counts_) {
    for (size_t i = 0; i < counts->size(); ++i) {
      (*counts)[i] += local[i];
      local[i] = 0;
    }
  }
  return target;
}

uint64_t SampleEngine::DrawAccumulate(uint64_t current, uint64_t target) {
  SAPHYRA_CHECK(target >= current);
  const size_t k = workers_[0]->num_hypotheses();
  if (agg_counts_.empty()) {
    agg_counts_.assign(k, 0);
    if (weighted_) {
      agg_fp_sums_.assign(k, 0);
      agg_fp_sum_squares_.assign(k, 0);
    }
  }
  last_wave_status_ = Status::OK();
  if (executor_ != nullptr && target > current) {
    // Delegated wave: the executor returns the raw integer delta of
    // samples [current, target) over this engine's stripes; summing it in
    // is bitwise-identical to having drawn locally because the integer
    // accumulators are associative. A failed wave contributes nothing —
    // the caller sees the unchanged sample count plus last_wave_status().
    RawSampleDelta delta;
    last_wave_status_ =
        executor_->ExecuteWave(current, target, workers_.size(), &delta);
    if (!last_wave_status_.ok()) return current;
    if (delta.counts.size() != k ||
        (weighted_ && (delta.fp_sums.size() != k ||
                       delta.fp_sum_squares.size() != k))) {
      last_wave_status_ = Status::Internal(
          "wave executor returned a malformed delta (hypothesis count "
          "mismatch)");
      return current;
    }
    for (size_t i = 0; i < k; ++i) agg_counts_[i] += delta.counts[i];
    if (weighted_) {
      for (size_t i = 0; i < k; ++i) {
        agg_fp_sums_[i] += delta.fp_sums[i];
        agg_fp_sum_squares_[i] += delta.fp_sum_squares[i];
      }
    }
    return target;
  }
  if (target > current) {
    DrawStriped(current, target);
    for (size_t w = 0; w < workers_.size(); ++w) {
      for (size_t i = 0; i < k; ++i) {
        agg_counts_[i] += local_counts_[w][i];
        local_counts_[w][i] = 0;
      }
      if (weighted_) {
        for (size_t i = 0; i < k; ++i) {
          agg_fp_sums_[i] += local_fp_sums_[w][i];
          agg_fp_sum_squares_[i] += local_fp_sum_squares_[w][i];
          local_fp_sums_[w][i] = 0;
          local_fp_sum_squares_[w][i] = 0;
        }
      }
    }
  }
  return target;
}

void SampleEngine::SnapshotStats(uint64_t n, SampleStats* stats) const {
  const size_t k = workers_[0]->num_hypotheses();
  stats->n = n;
  stats->weighted = weighted_;
  stats->counts = agg_counts_;
  stats->counts.resize(k, 0);  // agg may be untouched when n == 0
  if (weighted_) {
    stats->sums.resize(k);
    stats->sum_squares.resize(k);
    for (size_t i = 0; i < k; ++i) {
      stats->sums[i] = i < agg_fp_sums_.size()
                           ? FromFixedPoint(agg_fp_sums_[i])
                           : 0.0;
      stats->sum_squares[i] = i < agg_fp_sum_squares_.size()
                                  ? FromFixedPoint(agg_fp_sum_squares_[i])
                                  : 0.0;
    }
  }
}

uint64_t SampleEngine::Draw(uint64_t current, uint64_t target,
                            SampleStats* stats) {
  DrawAccumulate(current, target);
  SnapshotStats(target, stats);
  return target;
}

void SampleEngine::AdvanceStripe(size_t w, uint64_t count) {
  SAPHYRA_CHECK(w < workers_.size());
  // Draw-and-discard: RunWorker consumes exactly the same RNG stream as an
  // accumulated draw (accumulation never touches the RNG), so zeroing the
  // stripe's locals afterwards leaves the stream positioned as if another
  // process had drawn these samples.
  RunWorker(w, count);
  std::fill(local_counts_[w].begin(), local_counts_[w].end(), 0);
  if (weighted_) {
    std::fill(local_fp_sums_[w].begin(), local_fp_sums_[w].end(), 0);
    std::fill(local_fp_sum_squares_[w].begin(),
              local_fp_sum_squares_[w].end(), 0);
  }
}

void SampleEngine::DrawStripe(size_t w, uint64_t count) {
  SAPHYRA_CHECK(w < workers_.size());
  RunWorker(w, count);
}

void SampleEngine::HarvestDelta(RawSampleDelta* out) {
  const size_t k = workers_[0]->num_hypotheses();
  out->counts.assign(k, 0);
  out->fp_sums.clear();
  out->fp_sum_squares.clear();
  if (weighted_) {
    out->fp_sums.assign(k, 0);
    out->fp_sum_squares.assign(k, 0);
  }
  for (size_t w = 0; w < workers_.size(); ++w) {
    for (size_t i = 0; i < k; ++i) {
      out->counts[i] += local_counts_[w][i];
      local_counts_[w][i] = 0;
    }
    if (weighted_) {
      for (size_t i = 0; i < k; ++i) {
        out->fp_sums[i] += local_fp_sums_[w][i];
        out->fp_sum_squares[i] += local_fp_sum_squares_[w][i];
        local_fp_sums_[w][i] = 0;
        local_fp_sum_squares_[w][i] = 0;
      }
    }
  }
}

void SampleEngine::RunWorker(size_t w, uint64_t quota) {
  if (weighted_) {
    auto& hits = weighted_scratch_[w];
    auto& counts = local_counts_[w];
    auto& sums = local_fp_sums_[w];
    auto& squares = local_fp_sum_squares_[w];
    for (uint64_t j = 0; j < quota; ++j) {
      hits.clear();
      workers_[w]->SampleWeightedLosses(&rngs_[w], &hits);
      for (const WeightedHit& h : hits) {
        SAPHYRA_CHECK(h.index < counts.size());
        if (h.value <= 0.0) continue;
        ++counts[h.index];
        sums[h.index] += ToFixedPoint(h.value);
        squares[h.index] += ToFixedPoint(h.value * h.value);
      }
    }
    return;
  }
  std::vector<uint32_t> hits;
  auto& local = local_counts_[w];
  for (uint64_t j = 0; j < quota; ++j) {
    hits.clear();
    workers_[w]->SampleApproxLosses(&rngs_[w], &hits);
    for (uint32_t i : hits) {
      SAPHYRA_CHECK(i < local.size());
      ++local[i];
    }
  }
}

}  // namespace saphyra
