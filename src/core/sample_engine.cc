#include "core/sample_engine.h"

#include "util/logging.h"

namespace saphyra {

SampleEngine::SampleEngine(HypothesisRankingProblem* problem,
                           uint32_t num_workers, Rng* base_rng,
                           ThreadPool* pool)
    : pool_(pool) {
  workers_.push_back(problem);
  for (uint32_t i = 1; i < num_workers; ++i) {
    auto clone = problem->CloneForSampling();
    if (clone == nullptr) break;  // problem does not support cloning
    clones_.push_back(std::move(clone));
    workers_.push_back(clones_.back().get());
  }
  const size_t k = problem->num_hypotheses();
  for (size_t w = 0; w < workers_.size(); ++w) {
    rngs_.push_back(base_rng->Split());
    local_counts_.emplace_back(k, 0);
  }
}

uint64_t SampleEngine::Draw(uint64_t current, uint64_t target,
                            std::vector<uint64_t>* counts) {
  SAPHYRA_CHECK(target >= current);
  const uint64_t need = target - current;
  if (need == 0) return target;
  const size_t nw = workers_.size();
  // Quotas are a pure function of (need, num_workers): worker w consumes a
  // fixed slice of its own RNG stream no matter where or when it runs.
  const uint64_t per = need / nw;
  const uint64_t extra = need % nw;
  auto quota_of = [per, extra](size_t w) {
    return per + (w < extra ? 1 : 0);
  };
  if (nw == 1 || pool_ == nullptr) {
    for (size_t w = 0; w < nw; ++w) RunWorker(w, quota_of(w));
  } else {
    pool_->ParallelFor(0, nw,
                       [&](size_t w) { RunWorker(w, quota_of(w)); });
  }
  for (auto& local : local_counts_) {
    for (size_t i = 0; i < counts->size(); ++i) {
      (*counts)[i] += local[i];
      local[i] = 0;
    }
  }
  return target;
}

void SampleEngine::RunWorker(size_t w, uint64_t quota) {
  std::vector<uint32_t> hits;
  auto& local = local_counts_[w];
  for (uint64_t j = 0; j < quota; ++j) {
    hits.clear();
    workers_[w]->SampleApproxLosses(&rngs_[w], &hits);
    for (uint32_t i : hits) {
      SAPHYRA_CHECK(i < local.size());
      ++local[i];
    }
  }
}

}  // namespace saphyra
