#ifndef SAPHYRA_CORE_SAMPLE_ENGINE_H_
#define SAPHYRA_CORE_SAMPLE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/saphyra.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace saphyra {

/// \brief Draws batches of i.i.d. samples for the adaptive estimation loop,
/// serially or across a persistent thread pool.
///
/// The engine decomposes work into `num_workers` *logical* workers. Worker 0
/// is the caller's problem instance; additional workers are CloneForSampling
/// copies, each with an independently split RNG stream. Every Draw splits
/// its quota over the logical workers by a fixed rule (⌈need/W⌉ for the
/// first `need mod W`, ⌊need/W⌋ for the rest), so which pool thread runs
/// which worker — and how many pool threads exist — never affects the
/// result:
///
///   **Determinism contract.** For a fixed (base_rng seed, num_workers),
///   the merged counts are bitwise identical across runs, across pool
///   sizes, and against inline execution (pool == nullptr). They do differ
///   from a run with another num_workers, which partitions the streams
///   differently.
///
/// Execution goes through the ThreadPool passed at construction (typically
/// SharedThreadPool()) — the workers persist across the adaptive rounds
/// instead of being spawned and joined per round. Per-worker hit counts are
/// merged after every batch.
class SampleEngine {
 public:
  /// \brief `pool` may be null to force inline execution on the caller's
  /// thread; it must otherwise outlive the engine. Requests for more than
  /// one worker degrade gracefully to fewer (or one) when the problem does
  /// not support cloning.
  SampleEngine(HypothesisRankingProblem* problem, uint32_t num_workers,
               Rng* base_rng, ThreadPool* pool);

  /// \brief Logical workers actually created.
  size_t num_workers() const { return workers_.size(); }

  /// \brief Draw `target - current` samples into *counts; returns `target`.
  uint64_t Draw(uint64_t current, uint64_t target,
                std::vector<uint64_t>* counts);

 private:
  void RunWorker(size_t w, uint64_t quota);

  std::vector<HypothesisRankingProblem*> workers_;
  std::vector<std::unique_ptr<HypothesisRankingProblem>> clones_;
  std::vector<Rng> rngs_;
  std::vector<std::vector<uint64_t>> local_counts_;
  ThreadPool* pool_;
};

}  // namespace saphyra

#endif  // SAPHYRA_CORE_SAMPLE_ENGINE_H_
