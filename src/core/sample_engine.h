#ifndef SAPHYRA_CORE_SAMPLE_ENGINE_H_
#define SAPHYRA_CORE_SAMPLE_ENGINE_H_

/// \file
/// The pooled sampling engine: draws batches of i.i.d. samples for the
/// adaptive estimation loop over a fixed set of logical RNG stripes, so
/// that merged statistics are bitwise independent of thread count, pool
/// size and wave batching (DESIGN.md, "Pooled sample engine and its
/// determinism contract"). Every estimator frontend samples through this
/// engine via core/progressive_sampler.h.
///
/// Ownership/threading: an engine borrows the problem, base RNG and pool
/// (all must outlive it) and owns its clones and accumulators. One
/// engine serves one driver thread — its Draw calls must not be made
/// concurrently — but independent engines may share one ThreadPool from
/// different driver threads: pool completion is tracked per task group
/// (util/thread_pool.h), which is what lets the serving layer
/// (src/service/) run concurrent queries on the shared pool.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/saphyra.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace saphyra {

/// \brief Merged sampling statistics after `n` i.i.d. draws.
///
/// For 0/1 losses only `counts` is maintained (`sums`/`sum_squares` stay
/// empty and the moment accessors fall back to the Bernoulli closed forms).
/// For weighted problems (`HypothesisRankingProblem::has_weighted_losses`)
/// the per-hypothesis loss sums and sums of squares are accumulated in
/// 32.32 fixed point and exposed here as doubles — fixed-point integer
/// accumulation is associative, which is what makes the merged moments
/// independent of wave partitioning and thread scheduling (see DESIGN.md,
/// "Adaptive stopping contract").
struct SampleStats {
  uint64_t n = 0;
  bool weighted = false;
  std::vector<uint64_t> counts;     ///< #samples with loss > 0 per hypothesis
  std::vector<double> sums;         ///< Σ loss (weighted problems only)
  std::vector<double> sum_squares;  ///< Σ loss² (weighted problems only)

  /// Empirical mean loss of hypothesis i.
  double mean(size_t i) const;
  /// Unbiased sample variance of hypothesis i (the U-statistic of Lemma 3).
  /// Requires n >= 2.
  double sample_variance(size_t i) const;
};

/// \brief Draws batches of i.i.d. samples for the adaptive estimation loop,
/// serially or across a persistent thread pool.
///
/// The engine decomposes work into `num_workers` *logical* workers, each
/// with an independently split RNG stream. Pooled execution materializes
/// one CloneForSampling copy per extra worker (workers may run
/// concurrently); inline execution serves every logical worker from the
/// caller's instance, since a worker's output is a pure function of its
/// stream (one probe clone is still made, so clonability fixes the same
/// logical worker count in both modes). Sample j (globally indexed over
/// the whole run) always belongs to worker j mod W, so worker w's slice of
/// its own RNG stream is a pure function of how many samples have been
/// requested in total — never of how the request was batched:
///
///   **Determinism contract.** For a fixed (base_rng seed, num_workers),
///   the merged statistics after N total samples are bitwise identical
///   across runs, across pool sizes, against inline execution
///   (pool == nullptr), and across any partitioning of the N samples into
///   Draw calls. They do differ from a run with another num_workers, which
///   partitions the streams differently.
///
/// Execution goes through the ThreadPool passed at construction (typically
/// SharedThreadPool()) — the workers persist across the adaptive rounds
/// instead of being spawned and joined per round. Per-worker accumulators
/// are merged after every batch.
class SampleEngine {
 public:
  /// \brief `pool` may be null to force inline execution on the caller's
  /// thread; it must otherwise outlive the engine. Requests for more than
  /// one worker degrade gracefully to one when the problem does not
  /// support cloning at all; a problem whose first clone succeeds must
  /// keep cloning (all-or-nothing — see CloneForSampling).
  SampleEngine(HypothesisRankingProblem* problem, uint32_t num_workers,
               Rng* base_rng, ThreadPool* pool);

  /// \brief Logical workers actually created.
  size_t num_workers() const { return workers_.size(); }

  /// \brief Draw `target - current` samples into *counts; returns `target`.
  /// Hit counts only — for weighted problems and moment statistics use the
  /// SampleStats overload. Do not mix the two overloads on one engine.
  uint64_t Draw(uint64_t current, uint64_t target,
                std::vector<uint64_t>* counts);

  /// \brief Draw `target - current` samples and refresh *stats with the
  /// merged statistics of all `target` samples drawn through this overload.
  /// The engine owns the running accumulation; *stats is overwritten.
  uint64_t Draw(uint64_t current, uint64_t target, SampleStats* stats);

  /// \brief Draw `target - current` samples into the engine's running
  /// accumulators without materializing a SampleStats — the cheap per-wave
  /// path; call SnapshotStats at the checkpoints that actually evaluate a
  /// stopping rule. Shares the accumulation with the stats Draw overload.
  uint64_t DrawAccumulate(uint64_t current, uint64_t target);

  /// \brief Materialize the running accumulation of DrawAccumulate /
  /// Draw(stats) into *stats, as of `n` total samples drawn.
  void SnapshotStats(uint64_t n, SampleStats* stats) const;

 private:
  void RunWorker(size_t w, uint64_t quota);
  void DrawStriped(uint64_t current, uint64_t target);

  std::vector<HypothesisRankingProblem*> workers_;
  std::vector<std::unique_ptr<HypothesisRankingProblem>> clones_;
  std::vector<Rng> rngs_;
  bool weighted_ = false;
  /// Per-worker locals, zeroed after each merge. For 0/1 problems only
  /// local_counts_ is used; weighted problems also fill the fixed-point
  /// moment accumulators.
  std::vector<std::vector<uint64_t>> local_counts_;
  std::vector<std::vector<uint64_t>> local_fp_sums_;
  std::vector<std::vector<uint64_t>> local_fp_sum_squares_;
  /// Running merged accumulators of the SampleStats overload.
  std::vector<uint64_t> agg_counts_;
  std::vector<uint64_t> agg_fp_sums_;
  std::vector<uint64_t> agg_fp_sum_squares_;
  std::vector<std::vector<WeightedHit>> weighted_scratch_;
  ThreadPool* pool_;
};

}  // namespace saphyra

#endif  // SAPHYRA_CORE_SAMPLE_ENGINE_H_
