#ifndef SAPHYRA_CORE_SAMPLE_ENGINE_H_
#define SAPHYRA_CORE_SAMPLE_ENGINE_H_

/// \file
/// The pooled sampling engine: draws batches of i.i.d. samples for the
/// adaptive estimation loop over a fixed set of logical RNG stripes, so
/// that merged statistics are bitwise independent of thread count, pool
/// size and wave batching (DESIGN.md, "Pooled sample engine and its
/// determinism contract"). Every estimator frontend samples through this
/// engine via core/progressive_sampler.h.
///
/// Ownership/threading: an engine borrows the problem, base RNG and pool
/// (all must outlive it) and owns its clones and accumulators. One
/// engine serves one driver thread — its Draw calls must not be made
/// concurrently — but independent engines may share one ThreadPool from
/// different driver threads: pool completion is tracked per task group
/// (util/thread_pool.h), which is what lets the serving layer
/// (src/service/) run concurrent queries on the shared pool.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/saphyra.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace saphyra {

/// \brief #samples with global index in [0, n) assigned to stripe `w` of
/// `num_stripes` under the engine's `j mod W` striping. Exported so the
/// sharded serving tier (src/service/shard*) can compute per-stripe wave
/// quotas with exactly the arithmetic the engine uses internally.
uint64_t StripeSamplesBelow(uint64_t n, size_t w, size_t num_stripes);

/// \brief Raw integer accumulator delta of one sample wave: per-hypothesis
/// hit counts, plus the 32.32 fixed-point loss moments for weighted
/// problems (`fp_sums`/`fp_sum_squares` stay empty otherwise). Integer
/// accumulation is associative, so deltas merge by plain element-wise sum
/// in any order — the property that makes a distributed wave bitwise
/// identical to a local one.
struct RawSampleDelta {
  std::vector<uint64_t> counts;
  std::vector<uint64_t> fp_sums;
  std::vector<uint64_t> fp_sum_squares;
};

/// \brief Pluggable wave execution: when installed on a SampleEngine, each
/// DrawAccumulate wave is delegated here instead of being drawn locally.
/// The executor must return the exact integer delta the engine would have
/// produced for samples [current, target) over `num_stripes` logical RNG
/// stripes — the sharded serving tier implements this by farming stripes
/// out to worker processes and summing their deltas.
class WaveExecutor {
 public:
  virtual ~WaveExecutor() = default;
  /// On success fills *out (counts sized to the hypothesis count; the
  /// fixed-point arrays too for weighted problems). On failure the wave
  /// must have contributed nothing observable; the engine reports the
  /// status via last_wave_status() and keeps its pre-wave accumulation.
  virtual Status ExecuteWave(uint64_t current, uint64_t target,
                             size_t num_stripes, RawSampleDelta* out) = 0;
};

/// \brief Merged sampling statistics after `n` i.i.d. draws.
///
/// For 0/1 losses only `counts` is maintained (`sums`/`sum_squares` stay
/// empty and the moment accessors fall back to the Bernoulli closed forms).
/// For weighted problems (`HypothesisRankingProblem::has_weighted_losses`)
/// the per-hypothesis loss sums and sums of squares are accumulated in
/// 32.32 fixed point and exposed here as doubles — fixed-point integer
/// accumulation is associative, which is what makes the merged moments
/// independent of wave partitioning and thread scheduling (see DESIGN.md,
/// "Adaptive stopping contract").
struct SampleStats {
  uint64_t n = 0;
  bool weighted = false;
  std::vector<uint64_t> counts;     ///< #samples with loss > 0 per hypothesis
  std::vector<double> sums;         ///< Σ loss (weighted problems only)
  std::vector<double> sum_squares;  ///< Σ loss² (weighted problems only)

  /// Empirical mean loss of hypothesis i.
  double mean(size_t i) const;
  /// Unbiased sample variance of hypothesis i (the U-statistic of Lemma 3).
  /// Requires n >= 2.
  double sample_variance(size_t i) const;
};

/// \brief Draws batches of i.i.d. samples for the adaptive estimation loop,
/// serially or across a persistent thread pool.
///
/// The engine decomposes work into `num_workers` *logical* workers, each
/// with an independently split RNG stream. Pooled execution materializes
/// one CloneForSampling copy per extra worker (workers may run
/// concurrently); inline execution serves every logical worker from the
/// caller's instance, since a worker's output is a pure function of its
/// stream (one probe clone is still made, so clonability fixes the same
/// logical worker count in both modes). Sample j (globally indexed over
/// the whole run) always belongs to worker j mod W, so worker w's slice of
/// its own RNG stream is a pure function of how many samples have been
/// requested in total — never of how the request was batched:
///
///   **Determinism contract.** For a fixed (base_rng seed, num_workers),
///   the merged statistics after N total samples are bitwise identical
///   across runs, across pool sizes, against inline execution
///   (pool == nullptr), and across any partitioning of the N samples into
///   Draw calls. They do differ from a run with another num_workers, which
///   partitions the streams differently.
///
/// Execution goes through the ThreadPool passed at construction (typically
/// SharedThreadPool()) — the workers persist across the adaptive rounds
/// instead of being spawned and joined per round. Per-worker accumulators
/// are merged after every batch.
class SampleEngine {
 public:
  /// \brief `pool` may be null to force inline execution on the caller's
  /// thread; it must otherwise outlive the engine. Requests for more than
  /// one worker degrade gracefully to one when the problem does not
  /// support cloning at all; a problem whose first clone succeeds must
  /// keep cloning (all-or-nothing — see CloneForSampling).
  SampleEngine(HypothesisRankingProblem* problem, uint32_t num_workers,
               Rng* base_rng, ThreadPool* pool);

  /// \brief Logical workers actually created.
  size_t num_workers() const { return workers_.size(); }

  /// \brief Delegate every DrawAccumulate wave to `executor` (borrowed;
  /// nullptr restores local drawing). Only the DrawAccumulate path — the
  /// one the progressive sampler uses — supports delegation.
  void set_wave_executor(WaveExecutor* executor) { executor_ = executor; }

  /// \brief Status of the most recent DrawAccumulate wave. Non-OK only
  /// when a wave executor failed (local draws cannot fail); the failed
  /// wave contributed nothing and DrawAccumulate returned `current`
  /// unchanged, so the caller can finalize a degraded result from the
  /// completed waves.
  const Status& last_wave_status() const { return last_wave_status_; }

  /// \brief Draw `target - current` samples into *counts; returns `target`.
  /// Hit counts only — for weighted problems and moment statistics use the
  /// SampleStats overload. Do not mix the two overloads on one engine.
  uint64_t Draw(uint64_t current, uint64_t target,
                std::vector<uint64_t>* counts);

  /// \brief Draw `target - current` samples and refresh *stats with the
  /// merged statistics of all `target` samples drawn through this overload.
  /// The engine owns the running accumulation; *stats is overwritten.
  uint64_t Draw(uint64_t current, uint64_t target, SampleStats* stats);

  /// \brief Draw `target - current` samples into the engine's running
  /// accumulators without materializing a SampleStats — the cheap per-wave
  /// path; call SnapshotStats at the checkpoints that actually evaluate a
  /// stopping rule. Shares the accumulation with the stats Draw overload.
  uint64_t DrawAccumulate(uint64_t current, uint64_t target);

  /// \brief Materialize the running accumulation of DrawAccumulate /
  /// Draw(stats) into *stats, as of `n` total samples drawn.
  void SnapshotStats(uint64_t n, SampleStats* stats) const;

  // --- worker-side stripe primitives (sharded serving tier) -------------
  // A shard worker drives the engine stripe by stripe instead of wave by
  // wave: it advances a stripe's RNG stream past samples another process
  // already drew, draws its assigned quota, and harvests the raw integer
  // delta to ship back. These touch only the per-stripe locals, never the
  // running aggregation, so a worker-side engine is a pure delta producer.

  /// \brief Draw `count` samples on stripe `w` and *discard* them: the RNG
  /// stream consumption is identical to DrawStripe (accumulation never
  /// touches the RNG), which is what makes replay-based recovery after a
  /// worker restart transparent.
  void AdvanceStripe(size_t w, uint64_t count);

  /// \brief Draw `count` samples on stripe `w` into the stripe's local
  /// accumulators (harvested later by HarvestDelta).
  void DrawStripe(size_t w, uint64_t count);

  /// \brief Sum all stripes' local accumulators into *out and zero them.
  void HarvestDelta(RawSampleDelta* out);

 private:
  void RunWorker(size_t w, uint64_t quota);
  void DrawStriped(uint64_t current, uint64_t target);

  std::vector<HypothesisRankingProblem*> workers_;
  std::vector<std::unique_ptr<HypothesisRankingProblem>> clones_;
  std::vector<Rng> rngs_;
  bool weighted_ = false;
  /// Per-worker locals, zeroed after each merge. For 0/1 problems only
  /// local_counts_ is used; weighted problems also fill the fixed-point
  /// moment accumulators.
  std::vector<std::vector<uint64_t>> local_counts_;
  std::vector<std::vector<uint64_t>> local_fp_sums_;
  std::vector<std::vector<uint64_t>> local_fp_sum_squares_;
  /// Running merged accumulators of the SampleStats overload.
  std::vector<uint64_t> agg_counts_;
  std::vector<uint64_t> agg_fp_sums_;
  std::vector<uint64_t> agg_fp_sum_squares_;
  std::vector<std::vector<WeightedHit>> weighted_scratch_;
  ThreadPool* pool_;
  WaveExecutor* executor_ = nullptr;
  Status last_wave_status_;
};

}  // namespace saphyra

#endif  // SAPHYRA_CORE_SAMPLE_ENGINE_H_
