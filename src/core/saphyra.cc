#include "core/saphyra.h"

#include <algorithm>
#include <cmath>

#include "core/progressive_sampler.h"
#include "stats/delta_allocation.h"
#include "stats/empirical_bernstein.h"
#include "stats/vc.h"
#include "util/logging.h"

namespace saphyra {

void HypothesisRankingProblem::SampleWeightedLosses(
    Rng* rng, std::vector<WeightedHit>* hits) {
  (void)rng;
  (void)hits;
  SAPHYRA_CHECK_MSG(false,
                    "SampleWeightedLosses called on a 0/1-loss problem");
}

namespace {

ProgressiveOptions ScheduleFor(const SaphyraOptions& options, uint64_t n0,
                               uint64_t n_max, uint32_t ordinal) {
  ProgressiveOptions schedule;
  schedule.initial_samples = n0;
  schedule.max_samples = n_max;
  schedule.growth = 2.0;  // Algorithm 1's doubling schedule
  schedule.max_wave = options.max_wave;
  schedule.num_threads = options.num_threads;
  schedule.cancel = options.cancel;
  // Each progressive run gets its own delegated executor: the pilot
  // (ordinal 0) and main loop (ordinal 1) consume independent RNG
  // streams, so the sharded tier tracks their stripe positions separately.
  if (options.wave_executor) {
    schedule.executor = options.wave_executor(ordinal);
  }
  // A bounded run must reach wave boundaries often enough for the poll to
  // matter; an unbounded wave would only notice expiry at the checkpoint.
  if (options.cancel != nullptr && options.cancel->CanExpire() &&
      schedule.max_wave == 0) {
    schedule.max_wave = 1024;
  }
  return schedule;
}

}  // namespace

SaphyraResult RunSaphyra(HypothesisRankingProblem* problem,
                         const SaphyraOptions& options) {
  SAPHYRA_CHECK(options.epsilon > 0.0 && options.epsilon < 1.0);
  SAPHYRA_CHECK(options.delta > 0.0 && options.delta < 1.0);
  const size_t k = problem->num_hypotheses();

  SaphyraResult result;
  result.lambda_hat = problem->ComputeExactRisks(&result.exact_risks);
  SAPHYRA_CHECK(result.exact_risks.size() == k);
  SAPHYRA_CHECK(result.lambda_hat >= 0.0 && result.lambda_hat <= 1.0 + 1e-9);
  result.lambda = std::max(0.0, 1.0 - result.lambda_hat);
  result.approx_risks.assign(k, 0.0);
  result.combined_risks = result.exact_risks;
  if (k == 0) return result;

  const double lambda = result.lambda;
  if (lambda <= 1e-12) {
    // The exact subspace carries all the mass; nothing to estimate.
    result.epsilon_prime = std::numeric_limits<double>::infinity();
    return result;
  }
  // Line 5 of Algorithm 1: allowing error ε′ = ε/λ on the approximate part
  // yields error λ·ε′ = ε on the combination (Lemma 7's 1/λ² saving).
  const double eps_prime = options.epsilon / lambda;
  result.epsilon_prime = eps_prime;

  Rng rng(options.seed);
  Rng pilot_rng = rng.Split();  // independent stream for the pilot

  const double c = options.vc_constant;
  const double vc = problem->VcDimension();
  const double log_inv_delta = std::log(1.0 / options.delta);
  auto to_count = [](double x) {
    return static_cast<uint64_t>(std::ceil(std::max(0.0, x)));
  };
  // Lines 6-7: initial and maximal sample sizes.
  uint64_t n0 = to_count(c / (eps_prime * eps_prime) * log_inv_delta);
  n0 = std::max(n0, options.min_initial_samples);
  uint64_t n_max =
      to_count(c / (eps_prime * eps_prime) * (vc + log_inv_delta));
  n_max = std::max(n_max, n0);
  result.max_samples = n_max;

  // Pilot phase (§III-C): estimate variances on an independent stream and
  // allocate per-hypothesis failure probabilities (Eq. 13). A fixed-budget
  // progressive run of exactly n0 samples.
  std::vector<double> pilot_vars(k);
  {
    ProgressiveSampler pilot(problem, ScheduleFor(options, n0, n0, 0),
                             &pilot_rng);
    FixedBudgetRule pilot_rule;
    ProgressiveResult pilot_run = pilot.Run(&pilot_rule);
    result.pilot_samples = pilot_run.samples_used;
    if (pilot_run.stats.n >= 2) {
      for (size_t i = 0; i < k; ++i) {
        pilot_vars[i] = pilot_run.stats.sample_variance(i);
      }
    } else {
      // A cancel truncated the pilot before a variance estimate existed:
      // fall back to the worst-case [0,1] variance, which makes the δ
      // allocation uniform-conservative. The main run below will degrade
      // almost immediately anyway; its truncated bits stay deterministic
      // because this fallback is, too.
      pilot_vars.assign(k, 0.25);
    }
  }
  // The δ budget must be split over exactly the checkpoints the main
  // sampler will evaluate, so the growth factor comes from the schedule
  // itself rather than a second literal that could drift.
  const ProgressiveOptions main_schedule =
      ScheduleFor(options, n0, n_max, 1);
  const uint32_t checks =
      PlannedChecks(n0, n_max, main_schedule.growth);
  const double delta_budget = options.delta / static_cast<double>(checks);
  std::vector<double> deltas =
      AllocateDeltas(pilot_vars, eps_prime, delta_budget, n0, n_max);

  // Main adaptive loop (lines 10-18) on the shared progressive scheduler:
  // grow N geometrically until the stopping rule fires or the VC cap Nmax
  // is reached (at which point Lemma 4 supplies the guarantee
  // unconditionally). ε-mode checks the empirical Bernstein bound per
  // hypothesis; top-k mode checks confidence-interval separation of the k
  // best combined estimates.
  ProgressiveSampler sampler(problem, main_schedule, &rng);
  ProgressiveResult run;
  // A top-k covering every hypothesis is a full ranking in disguise:
  // route it to the ε rule rather than to a vacuous separation check.
  if (options.top_k > 0 && options.top_k < k) {
    // Separation is evaluated on the full combined estimate: the exact-
    // subspace risks plus any external per-hypothesis mass the frontend
    // adds after this run, all in combined-risk units.
    std::vector<double> offsets = result.exact_risks;
    if (!options.top_k_offsets.empty()) {
      SAPHYRA_CHECK(options.top_k_offsets.size() == k);
      for (size_t i = 0; i < k; ++i) offsets[i] += options.top_k_offsets[i];
    }
    TopKSeparationRule rule(options.top_k, options.delta, std::move(deltas),
                            std::move(offsets), lambda);
    run = sampler.Run(&rule);
    // Half-widths are already in combined-risk units (the rule scales by
    // λ), so a degraded top-k run reports them as its achieved accuracy.
    if (run.degraded) {
      result.epsilon_achieved = rule.EvaluateWorstHalfwidth(run.stats);
    }
  } else {
    EpsilonGuaranteeRule rule(eps_prime, std::move(deltas));
    run = sampler.Run(&rule);
    if (run.degraded) {
      // The rule bounds the approximate part at ε′ = ε/λ; scale back.
      result.epsilon_achieved = lambda * rule.EvaluateWorstEpsilon(run.stats);
    }
  }
  result.samples_used = run.samples_used;
  result.rounds_used = run.checks_used;
  result.waves_used = run.waves_used;
  result.stopped_early = run.stopped_early;
  result.degraded = run.degraded;
  result.degrade_reason = run.degrade_reason;

  // Lines 19-21: combine.
  for (size_t i = 0; i < k; ++i) {
    result.approx_risks[i] = run.stats.mean(i);
    result.combined_risks[i] =
        result.exact_risks[i] + lambda * result.approx_risks[i];
  }
  return result;
}

SaphyraResult RunDirectEstimation(HypothesisRankingProblem* problem,
                                  const SaphyraOptions& options) {
  SAPHYRA_CHECK(options.epsilon > 0.0 && options.epsilon < 1.0);
  const size_t k = problem->num_hypotheses();
  SaphyraResult result;
  result.exact_risks.assign(k, 0.0);
  result.approx_risks.assign(k, 0.0);
  result.combined_risks.assign(k, 0.0);
  result.lambda_hat = 0.0;
  result.lambda = 1.0;
  result.epsilon_prime = options.epsilon;
  if (k == 0) return result;

  Rng rng(options.seed);
  const uint64_t n =
      std::max(options.min_initial_samples,
               VcSampleBound(options.epsilon, options.delta,
                             problem->VcDimension(), options.vc_constant));
  // One fixed-budget schedule: a single checkpoint at the VC bound.
  ProgressiveSampler sampler(problem, ScheduleFor(options, n, n, 0), &rng);
  FixedBudgetRule rule;
  ProgressiveResult run = sampler.Run(&rule);
  result.samples_used = result.max_samples = run.samples_used;
  result.rounds_used = run.checks_used;
  result.waves_used = run.waves_used;
  result.degraded = run.degraded;
  result.degrade_reason = run.degrade_reason;
  if (run.degraded) {
    // Direct estimation's guarantee comes from the VC bound at the full
    // budget; a truncated run claims nothing.
    result.epsilon_achieved = std::numeric_limits<double>::infinity();
  }
  for (size_t i = 0; i < k; ++i) {
    result.approx_risks[i] = run.stats.mean(i);
    result.combined_risks[i] = result.approx_risks[i];
  }
  return result;
}

}  // namespace saphyra
