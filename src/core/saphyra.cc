#include "core/saphyra.h"

#include <algorithm>
#include <cmath>

#include "core/sample_engine.h"
#include "stats/delta_allocation.h"
#include "stats/empirical_bernstein.h"
#include "stats/vc.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace saphyra {

namespace {

/// Multi-threaded runs execute on the persistent process-wide pool; serial
/// runs bypass it entirely (SampleEngine runs inline on a null pool).
ThreadPool* PoolFor(const SaphyraOptions& options) {
  return options.num_threads > 1 ? &SharedThreadPool() : nullptr;
}

}  // namespace

SaphyraResult RunSaphyra(HypothesisRankingProblem* problem,
                         const SaphyraOptions& options) {
  SAPHYRA_CHECK(options.epsilon > 0.0 && options.epsilon < 1.0);
  SAPHYRA_CHECK(options.delta > 0.0 && options.delta < 1.0);
  const size_t k = problem->num_hypotheses();

  SaphyraResult result;
  result.lambda_hat = problem->ComputeExactRisks(&result.exact_risks);
  SAPHYRA_CHECK(result.exact_risks.size() == k);
  SAPHYRA_CHECK(result.lambda_hat >= 0.0 && result.lambda_hat <= 1.0 + 1e-9);
  result.lambda = std::max(0.0, 1.0 - result.lambda_hat);
  result.approx_risks.assign(k, 0.0);
  result.combined_risks = result.exact_risks;
  if (k == 0) return result;

  const double lambda = result.lambda;
  if (lambda <= 1e-12) {
    // The exact subspace carries all the mass; nothing to estimate.
    result.epsilon_prime = std::numeric_limits<double>::infinity();
    return result;
  }
  // Line 5 of Algorithm 1: allowing error ε′ = ε/λ on the approximate part
  // yields error λ·ε′ = ε on the combination (Lemma 7's 1/λ² saving).
  const double eps_prime = options.epsilon / lambda;
  result.epsilon_prime = eps_prime;

  Rng rng(options.seed);
  Rng pilot_rng = rng.Split();  // independent stream for the pilot

  const double c = options.vc_constant;
  const double vc = problem->VcDimension();
  const double log_inv_delta = std::log(1.0 / options.delta);
  auto to_count = [](double x) {
    return static_cast<uint64_t>(std::ceil(std::max(0.0, x)));
  };
  // Lines 6-7: initial and maximal sample sizes.
  uint64_t n0 = to_count(c / (eps_prime * eps_prime) * log_inv_delta);
  n0 = std::max(n0, options.min_initial_samples);
  uint64_t n_max =
      to_count(c / (eps_prime * eps_prime) * (vc + log_inv_delta));
  n_max = std::max(n_max, n0);
  result.max_samples = n_max;

  const uint32_t rounds = static_cast<uint32_t>(std::max<double>(
      1.0, std::ceil(std::log2(static_cast<double>(n_max) /
                               static_cast<double>(n0)))));

  // Pilot phase (§III-C): estimate variances on an independent stream and
  // allocate per-hypothesis failure probabilities (Eq. 13).
  SampleEngine pilot_engine(problem, options.num_threads, &pilot_rng,
                            PoolFor(options));
  std::vector<uint64_t> pilot_counts(k, 0);
  pilot_engine.Draw(0, n0, &pilot_counts);
  result.pilot_samples = n0;
  std::vector<double> pilot_vars(k);
  for (size_t i = 0; i < k; ++i) {
    pilot_vars[i] = BernoulliSampleVariance(pilot_counts[i], n0);
  }
  const double delta_budget = options.delta / static_cast<double>(rounds);
  std::vector<double> deltas =
      AllocateDeltas(pilot_vars, eps_prime, delta_budget, n0, n_max);

  // Main adaptive loop (lines 10-18): double N until every hypothesis meets
  // ε′ by the empirical Bernstein bound, or until the VC cap Nmax (at which
  // point Lemma 4 supplies the guarantee unconditionally).
  SampleEngine engine(problem, options.num_threads, &rng, PoolFor(options));
  std::vector<uint64_t> counts(k, 0);
  uint64_t n = 0;
  uint64_t target = n0;
  for (uint32_t rd = 0; rd < rounds + 1; ++rd) {
    n = engine.Draw(n, target, &counts);
    ++result.rounds_used;
    double worst = 0.0;
    for (size_t i = 0; i < k; ++i) {
      double var = BernoulliSampleVariance(counts[i], n);
      worst = std::max(worst, EmpiricalBernsteinEpsilon(n, deltas[i], var));
      if (worst > eps_prime) break;  // already failed this round
    }
    if (worst <= eps_prime) {
      result.stopped_early = (n < n_max);
      break;
    }
    if (n >= n_max) break;
    target = std::min(n * 2, n_max);
  }
  result.samples_used = n;

  // Lines 19-21: combine.
  for (size_t i = 0; i < k; ++i) {
    result.approx_risks[i] =
        static_cast<double>(counts[i]) / static_cast<double>(n);
    result.combined_risks[i] =
        result.exact_risks[i] + lambda * result.approx_risks[i];
  }
  return result;
}

SaphyraResult RunDirectEstimation(HypothesisRankingProblem* problem,
                                  const SaphyraOptions& options) {
  SAPHYRA_CHECK(options.epsilon > 0.0 && options.epsilon < 1.0);
  const size_t k = problem->num_hypotheses();
  SaphyraResult result;
  result.exact_risks.assign(k, 0.0);
  result.approx_risks.assign(k, 0.0);
  result.combined_risks.assign(k, 0.0);
  result.lambda_hat = 0.0;
  result.lambda = 1.0;
  result.epsilon_prime = options.epsilon;
  if (k == 0) return result;

  Rng rng(options.seed);
  const uint64_t n =
      std::max(options.min_initial_samples,
               VcSampleBound(options.epsilon, options.delta,
                             problem->VcDimension(), options.vc_constant));
  std::vector<uint64_t> counts(k, 0);
  SampleEngine engine(problem, options.num_threads, &rng, PoolFor(options));
  engine.Draw(0, n, &counts);
  result.samples_used = result.max_samples = n;
  result.rounds_used = 1;
  for (size_t i = 0; i < k; ++i) {
    result.approx_risks[i] =
        static_cast<double>(counts[i]) / static_cast<double>(n);
    result.combined_risks[i] = result.approx_risks[i];
  }
  return result;
}

}  // namespace saphyra
