#include "service/shard.h"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <utility>

#include "net/frame.h"
#include "service/json_util.h"
#include "util/logging.h"

namespace saphyra {

namespace {

/// The RPC deadline of one worker exchange: the query's effective
/// deadline, capped by the per-RPC timeout that distinguishes a hung
/// worker from a merely long query.
Deadline RpcDeadline(const CancelToken* cancel, uint64_t rpc_timeout_ms) {
  Deadline rpc = Deadline::AfterMillis(rpc_timeout_ms);
  if (cancel != nullptr) {
    const Deadline query = cancel->EffectiveDeadline();
    if (query.steady_nanos() < rpc.steady_nanos()) return query;
  }
  return rpc;
}

/// Milliseconds from now until `d` (0 when unbounded — the worker treats
/// budget_ms 0 as "no deadline").
uint64_t BudgetMillis(Deadline d) {
  if (d.unbounded()) return 0;
  const int64_t ns = d.steady_nanos() - Deadline::NowNanos();
  if (ns <= 0) return 1;  // expired: let the worker report it immediately
  return static_cast<uint64_t>(ns / 1000000) + 1;
}

/// True when a non-OK RPC status is the *query's* doing (deadline or
/// cancellation), which must propagate as-is instead of burning retry
/// budget on a healthy pool.
bool IsQueryLevel(const Status& st, const CancelToken* cancel) {
  if (st.code() == StatusCode::kCancelled) return true;
  if (st.code() != StatusCode::kDeadlineExceeded) return false;
  if (cancel == nullptr) return false;  // only the RPC timeout can expire
  const Deadline query = cancel->EffectiveDeadline();
  return !query.unbounded() && query.expired();
}

Status ParseUintArray(const JsonValue& v, const char* what,
                      std::vector<uint64_t>* out) {
  if (v.type != JsonValue::Type::kArray) {
    return Status::Internal(std::string("worker delta: ") + what +
                            " is not an array");
  }
  out->clear();
  out->reserve(v.array.size());
  for (const JsonValue& e : v.array) {
    if (e.type != JsonValue::Type::kNumber || !e.is_uint) {
      return Status::Internal(std::string("worker delta: ") + what +
                              " entry is not a non-negative integer");
    }
    out->push_back(e.uint_value);
  }
  return Status::OK();
}

void AppendUintArray(const std::vector<uint64_t>& values, std::string* out) {
  out->push_back('[');
  for (size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out->push_back(',');
    *out += std::to_string(values[i]);
  }
  out->push_back(']');
}

Status MergeDelta(const RawSampleDelta& part, RawSampleDelta* sum) {
  if (sum->counts.empty() && sum->fp_sums.empty()) {
    *sum = part;
    return Status::OK();
  }
  if (part.counts.size() != sum->counts.size() ||
      part.fp_sums.size() != sum->fp_sums.size() ||
      part.fp_sum_squares.size() != sum->fp_sum_squares.size()) {
    return Status::Internal("worker deltas disagree on hypothesis count");
  }
  for (size_t i = 0; i < part.counts.size(); ++i) {
    sum->counts[i] += part.counts[i];
  }
  for (size_t i = 0; i < part.fp_sums.size(); ++i) {
    sum->fp_sums[i] += part.fp_sums[i];
  }
  for (size_t i = 0; i < part.fp_sum_squares.size(); ++i) {
    sum->fp_sum_squares[i] += part.fp_sum_squares[i];
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// WorkerSupervisor

WorkerSupervisor::WorkerSupervisor(WorkerLauncher* launcher,
                                   const ShardOptions& options)
    : launcher_(launcher),
      options_(options),
      backoff_rng_(0x5eedu) {
  SAPHYRA_CHECK(options_.num_workers >= 1);
  workers_.reserve(options_.num_workers);
  for (uint32_t i = 0; i < options_.num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
}

WorkerSupervisor::~WorkerSupervisor() { Shutdown(); }

Status WorkerSupervisor::Start() {
  for (uint32_t i = 0; i < workers_.size(); ++i) {
    Worker* w = workers_[i].get();
    std::lock_guard<std::mutex> lock(w->mu);
    SAPHYRA_RETURN_NOT_OK(EnsureAliveLocked(i, w, /*first_launch=*/true));
  }
  if (options_.heartbeat_ms > 0) {
    heartbeat_ = std::thread([this] { HeartbeatLoop(); });
  }
  started_ = true;
  return Status::OK();
}

void WorkerSupervisor::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(hb_mu_);
    if (shutting_down_) return;
    shutting_down_ = true;
  }
  hb_cv_.notify_all();
  if (heartbeat_.joinable()) heartbeat_.join();
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    std::lock_guard<std::mutex> lock(w->mu);
    if (w->alive && w->conn.valid()) {
      // Best-effort clean quit; a worker that ignores it is reaped by the
      // launcher anyway.
      net::SendFrame(w->conn.get(), "{\"type\":\"quit\"}",
                     Deadline::AfterMillis(200));
    }
    w->conn.Reset();
    w->alive = false;
    w->alive_gauge.store(false, std::memory_order_relaxed);
  }
}

void WorkerSupervisor::MarkDeadLocked(Worker* w) {
  w->conn.Reset();
  w->alive = false;
  w->alive_gauge.store(false, std::memory_order_relaxed);
  ++w->consecutive_failures;
  // Exponential backoff with deterministic ±25% jitter, so a crash-looping
  // worker binary cannot hot-spin the supervisor while every retry round
  // still lands at a slightly different phase.
  uint64_t base = options_.backoff_initial_ms;
  for (uint32_t i = 1; i < w->consecutive_failures && base < options_.backoff_max_ms;
       ++i) {
    base *= 2;
  }
  base = std::min(base, options_.backoff_max_ms);
  uint64_t jittered = base;
  {
    std::lock_guard<std::mutex> lock(backoff_mu_);
    const uint64_t span = std::max<uint64_t>(1, base / 2);  // ±25%
    jittered = base - base / 4 + backoff_rng_.UniformInt(span);
  }
  w->restart_after_ns =
      Deadline::NowNanos() + static_cast<int64_t>(jittered) * 1000000;
}

Status WorkerSupervisor::EnsureAliveLocked(uint32_t index, Worker* w,
                                           bool first_launch) {
  if (w->alive) return Status::OK();
  if (!first_launch && Deadline::NowNanos() < w->restart_after_ns) {
    return Status::Unavailable("worker " + std::to_string(index) +
                               " is backing off");
  }
  net::UniqueFd conn;
  Status st = launcher_->Launch(index, &conn);
  if (!st.ok()) {
    MarkDeadLocked(w);
    return st;
  }
  w->conn = std::move(conn);
  w->alive = true;
  w->alive_gauge.store(true, std::memory_order_relaxed);
  w->consecutive_failures = 0;
  if (!first_launch) w->restarts.fetch_add(1, std::memory_order_relaxed);

  // A fresh incarnation loaded its graphs from disk — epoch 0. Replay the
  // full mutation log before this worker serves a wave, or its
  // fingerprints (and result bits) would lag the coordinator's graphs.
  std::vector<MutationLogEntry> log;
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    log = mutation_log_;
  }
  for (const MutationLogEntry& entry : log) {
    st = UpdateRpc(index, w, entry);
    if (!st.ok()) {
      MarkDeadLocked(w);
      return Status::Unavailable("worker " + std::to_string(index) +
                                 " failed mutation-log replay: " +
                                 st.ToString());
    }
  }
  return Status::OK();
}

Status WorkerSupervisor::UpdateRpc(uint32_t index, Worker* w,
                                   const MutationLogEntry& entry) {
  const Deadline deadline = Deadline::AfterMillis(options_.rpc_timeout_ms);
  std::string msg =
      "{\"type\":\"update\",\"graph\":" + JsonQuote(entry.graph) +
      ",\"action\":";
  msg += entry.mut.kind == EdgeMutationKind::kInsert ? "\"insert\""
                                                     : "\"delete\"";
  msg += ",\"u\":" + std::to_string(entry.mut.u) +
         ",\"v\":" + std::to_string(entry.mut.v) +
         ",\"fingerprint\":" + std::to_string(entry.expect_fingerprint) + "}";
  Status st = net::SendFrame(w->conn.get(), msg, deadline);
  std::string reply;
  if (st.ok()) st = net::RecvFrame(w->conn.get(), &reply, deadline);
  if (!st.ok()) return st;
  JsonValue doc;
  st = ParseJson(reply, &doc);
  const JsonValue* ok = st.ok() ? doc.Find("ok") : nullptr;
  if (!st.ok() || ok == nullptr || ok->type != JsonValue::Type::kBool) {
    return Status::Internal("worker " + std::to_string(index) +
                            " sent a malformed update reply");
  }
  if (!ok->bool_value) {
    const JsonValue* error = doc.Find("error");
    return Status::Internal(
        "worker " + std::to_string(index) + " rejected update: " +
        (error != nullptr && error->type == JsonValue::Type::kString
             ? error->string_value
             : "unknown error"));
  }
  return Status::OK();
}

void WorkerSupervisor::BroadcastUpdate(const std::string& graph,
                                       const EdgeMutation& mut,
                                       uint64_t expect_fingerprint) {
  MutationLogEntry entry;
  entry.graph = graph;
  entry.mut = mut;
  entry.expect_fingerprint = expect_fingerprint;
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    mutation_log_.push_back(entry);
  }
  for (uint32_t i = 0; i < workers_.size(); ++i) {
    Worker* w = workers_[i].get();
    std::lock_guard<std::mutex> lock(w->mu);
    const bool was_alive = w->alive;
    Status st = EnsureAliveLocked(i, w, /*first_launch=*/false);
    // Dead and backing off: fine — the restart replays the log, which
    // already holds this entry. A relaunch inside EnsureAliveLocked also
    // replayed it; only a worker that was already up needs the push.
    if (!st.ok() || !was_alive) continue;
    st = UpdateRpc(i, w, entry);
    if (!st.ok()) MarkDeadLocked(w);
  }
}

Status WorkerSupervisor::WaveRpc(uint32_t index, const WaveSpec& spec,
                                 const std::vector<uint32_t>& stripes,
                                 RawSampleDelta* delta, bool* worker_fault) {
  *worker_fault = true;  // transport errors default to "the worker's fault"
  Worker* w = workers_[index].get();
  std::lock_guard<std::mutex> lock(w->mu);
  Status st = EnsureAliveLocked(index, w, /*first_launch=*/false);
  if (!st.ok()) return st;

  const Deadline deadline = RpcDeadline(spec.cancel, options_.rpc_timeout_ms);
  std::string msg = "{\"type\":\"wave\",\"graph\":" + JsonQuote(spec.graph) +
                    ",\"fingerprint\":" + std::to_string(spec.fingerprint) +
                    ",\"ordinal\":" + std::to_string(spec.ordinal) +
                    ",\"num_stripes\":" + std::to_string(spec.num_stripes) +
                    ",\"from\":" + std::to_string(spec.from) +
                    ",\"to\":" + std::to_string(spec.to) +
                    ",\"budget_ms\":" + std::to_string(BudgetMillis(deadline)) +
                    ",\"stripes\":";
  std::vector<uint64_t> wide(stripes.begin(), stripes.end());
  AppendUintArray(wide, &msg);
  msg += ",\"query\":" + JsonQuote(spec.query_json) + "}";

  st = net::SendFrame(w->conn.get(), msg, deadline);
  std::string reply;
  if (st.ok()) st = net::RecvFrame(w->conn.get(), &reply, deadline);
  if (!st.ok()) {
    if (IsQueryLevel(st, spec.cancel)) {
      // The query ran out of time mid-RPC; the worker may well be fine.
      // Drop the connection anyway — its next frame would be the stale
      // wave reply, which no one is going to read.
      *worker_fault = false;
      MarkDeadLocked(w);
      w->consecutive_failures = 0;  // not the worker's fault
      StatusCode why = spec.cancel != nullptr ? spec.cancel->Poll()
                                              : StatusCode::kDeadlineExceeded;
      if (why == StatusCode::kOk) why = StatusCode::kDeadlineExceeded;
      return CancelToken::ToStatus(why, "shard wave RPC");
    }
    MarkDeadLocked(w);
    return st;
  }

  JsonValue doc;
  st = ParseJson(reply, &doc);
  const JsonValue* ok = st.ok() ? doc.Find("ok") : nullptr;
  if (!st.ok() || ok == nullptr || ok->type != JsonValue::Type::kBool) {
    MarkDeadLocked(w);
    return Status::Internal("worker " + std::to_string(index) +
                            " sent a malformed wave reply");
  }
  if (!ok->bool_value) {
    const JsonValue* code = doc.Find("code");
    const JsonValue* error = doc.Find("error");
    const std::string code_s =
        code != nullptr && code->type == JsonValue::Type::kString
            ? code->string_value
            : "INTERNAL";
    const std::string error_s =
        error != nullptr && error->type == JsonValue::Type::kString
            ? error->string_value
            : "worker error";
    if (code_s == "DEADLINE_EXCEEDED" || code_s == "CANCELLED") {
      // The worker hit the query's budget while drawing — query-level,
      // and the worker is healthy (it answered).
      *worker_fault = false;
      return code_s == "CANCELLED" ? Status::Cancelled(error_s)
                                   : Status::DeadlineExceeded(error_s);
    }
    // A deterministic worker-side failure (bad graph, fingerprint
    // mismatch, malformed query) would fail identically everywhere:
    // retrying it on a survivor would burn the budget for nothing.
    *worker_fault = false;
    return Status::Internal("worker " + std::to_string(index) + ": " +
                            error_s);
  }

  const JsonValue* counts = doc.Find("counts");
  if (counts == nullptr) {
    MarkDeadLocked(w);
    return Status::Internal("worker delta is missing counts");
  }
  st = ParseUintArray(*counts, "counts", &delta->counts);
  if (st.ok()) {
    const JsonValue* fp_sums = doc.Find("fp_sums");
    const JsonValue* fp_sq = doc.Find("fp_sum_squares");
    delta->fp_sums.clear();
    delta->fp_sum_squares.clear();
    if (fp_sums != nullptr) {
      st = ParseUintArray(*fp_sums, "fp_sums", &delta->fp_sums);
    }
    if (st.ok() && fp_sq != nullptr) {
      st = ParseUintArray(*fp_sq, "fp_sum_squares", &delta->fp_sum_squares);
    }
  }
  if (!st.ok()) {
    MarkDeadLocked(w);
    return st;
  }
  w->consecutive_failures = 0;
  w->waves.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status WorkerSupervisor::ExecuteWave(const WaveSpec& spec,
                                     RawSampleDelta* out) {
  out->counts.clear();
  out->fp_sums.clear();
  out->fp_sum_squares.clear();
  SAPHYRA_CHECK(spec.to > spec.from);
  SAPHYRA_CHECK(spec.num_stripes >= 1);

  // Stripes with a non-zero quota in [from, to). Stripe deltas are pure
  // functions of (query, stripe, range), so WHERE each one runs is
  // irrelevant to the merged bits — the whole point of this tier.
  std::vector<uint32_t> remaining;
  for (uint32_t s = 0; s < spec.num_stripes; ++s) {
    if (StripeSamplesBelow(spec.to, s, spec.num_stripes) >
        StripeSamplesBelow(spec.from, s, spec.num_stripes)) {
      remaining.push_back(s);
    }
  }
  // Stripes that were part of a failed RPC; landing on any worker now
  // counts as a reassignment.
  std::vector<bool> failed_once(spec.num_stripes, false);

  uint32_t failed_rounds = 0;
  Status last_fault = Status::OK();
  while (!remaining.empty()) {
    if (spec.cancel != nullptr) {
      const StatusCode why = spec.cancel->Poll();
      if (why != StatusCode::kOk) {
        return CancelToken::ToStatus(why, "shard wave");
      }
    }

    // Round-robin the remaining stripes over every worker index; workers
    // that turn out dead (and unrestartable) fail their slice into the
    // next round.
    const uint32_t n = options_.num_workers;
    std::vector<std::vector<uint32_t>> assigned(n);
    for (size_t i = 0; i < remaining.size(); ++i) {
      assigned[i % n].push_back(remaining[i]);
    }

    std::vector<uint32_t> next_remaining;
    bool any_fault = false;
    for (uint32_t i = 0; i < n; ++i) {
      if (assigned[i].empty()) continue;
      uint64_t inherited = 0;
      for (uint32_t s : assigned[i]) {
        if (failed_once[s]) ++inherited;
      }
      RawSampleDelta part;
      bool worker_fault = false;
      Status st = WaveRpc(i, spec, assigned[i], &part, &worker_fault);
      if (st.ok()) {
        SAPHYRA_RETURN_NOT_OK(MergeDelta(part, out));
        if (inherited > 0) {
          workers_[i]->stripes_reassigned.fetch_add(
              inherited, std::memory_order_relaxed);
        }
        continue;
      }
      if (!worker_fault) return st;  // query-level or deterministic error
      any_fault = true;
      last_fault = st;
      workers_[i]->retries.fetch_add(1, std::memory_order_relaxed);
      for (uint32_t s : assigned[i]) {
        failed_once[s] = true;
        next_remaining.push_back(s);
      }
    }
    remaining = std::move(next_remaining);
    if (remaining.empty()) break;
    SAPHYRA_CHECK(any_fault);
    if (++failed_rounds > options_.retry_budget) {
      return Status::Unavailable(
          "shard_lost: wave [" + std::to_string(spec.from) + ", " +
          std::to_string(spec.to) + ") failed " +
          std::to_string(failed_rounds) + " rounds (retry budget " +
          std::to_string(options_.retry_budget) + "): " +
          last_fault.ToString());
    }
    // Give restart backoffs a moment to elapse before the next round, but
    // never past the query's own deadline.
    int64_t sleep_until = Deadline::NowNanos() + 2 * 1000000;
    for (auto& worker : workers_) {
      // Unlocked peek at the backoff gate: a stale read only mistimes the
      // retry round, it cannot corrupt anything.
      sleep_until = std::max(sleep_until, worker->restart_after_ns);
    }
    const Deadline query = spec.cancel != nullptr
                               ? spec.cancel->EffectiveDeadline()
                               : Deadline::Never();
    if (!query.unbounded()) {
      sleep_until = std::min(sleep_until, query.steady_nanos());
    }
    sleep_until = std::min(
        sleep_until,
        Deadline::NowNanos() +
            static_cast<int64_t>(options_.backoff_max_ms) * 1000000);
    const int64_t delta_ns = sleep_until - Deadline::NowNanos();
    if (delta_ns > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(delta_ns));
    }
  }
  return Status::OK();
}

std::vector<ShardWorkerStats> WorkerSupervisor::stats() const {
  std::vector<ShardWorkerStats> out;
  out.reserve(workers_.size());
  for (uint32_t i = 0; i < workers_.size(); ++i) {
    const Worker* w = workers_[i].get();
    ShardWorkerStats s;
    s.index = i;
    s.alive = w->alive_gauge.load(std::memory_order_relaxed);
    s.waves = w->waves.load(std::memory_order_relaxed);
    s.restarts = w->restarts.load(std::memory_order_relaxed);
    s.retries = w->retries.load(std::memory_order_relaxed);
    s.stripes_reassigned =
        w->stripes_reassigned.load(std::memory_order_relaxed);
    s.heartbeat_misses = w->heartbeat_misses.load(std::memory_order_relaxed);
    out.push_back(s);
  }
  return out;
}

void WorkerSupervisor::HeartbeatLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(hb_mu_);
      hb_cv_.wait_for(lock, std::chrono::milliseconds(options_.heartbeat_ms),
                      [this] { return shutting_down_; });
      if (shutting_down_) return;
    }
    for (auto& worker : workers_) {
      Worker* w = worker.get();
      // A worker busy with an RPC is demonstrating liveness (or will be
      // caught by that RPC's own timeout); never queue behind it.
      std::unique_lock<std::mutex> lock(w->mu, std::try_to_lock);
      if (!lock.owns_lock() || !w->alive) continue;
      const Deadline deadline = Deadline::AfterMillis(options_.heartbeat_ms);
      Status st = net::SendFrame(w->conn.get(), "{\"type\":\"ping\"}",
                                 deadline);
      std::string reply;
      if (st.ok()) st = net::RecvFrame(w->conn.get(), &reply, deadline);
      if (!st.ok()) {
        w->heartbeat_misses.fetch_add(1, std::memory_order_relaxed);
        MarkDeadLocked(w);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ProcessWorkerLauncher

ProcessWorkerLauncher::ProcessWorkerLauncher(Options options)
    : options_(std::move(options)) {}

ProcessWorkerLauncher::~ProcessWorkerLauncher() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [index, pid] : pids_) {
    (void)index;
    ::kill(pid, SIGKILL);
    int wstatus = 0;
    ::waitpid(pid, &wstatus, 0);
  }
  pids_.clear();
}

void ProcessWorkerLauncher::KillLocked(uint32_t index) {
  auto it = pids_.find(index);
  if (it != pids_.end()) {
    ::kill(it->second, SIGKILL);
    int wstatus = 0;
    ::waitpid(it->second, &wstatus, 0);
    pids_.erase(it);
  }
  // A stale hello from the dead incarnation must not satisfy the next
  // Launch of this index.
  pending_.erase(index);
}

Status ProcessWorkerLauncher::Launch(uint32_t index, net::UniqueFd* conn) {
  std::lock_guard<std::mutex> lock(mu_);
  KillLocked(index);

  std::vector<std::string> args;
  args.push_back(options_.worker_binary);
  args.push_back("--connect");
  args.push_back(net::EndpointToString(options_.endpoint));
  args.push_back("--index");
  args.push_back(std::to_string(index));
  for (const std::string& g : options_.graph_args) {
    args.push_back("--graph");
    args.push_back(g);
  }
  for (const std::string& a : options_.extra_args) args.push_back(a);

  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) return Status::Internal("fork failed");
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    _exit(127);  // exec failed; the parent sees the dropped rendezvous
  }
  pids_[index] = pid;

  // Wait for THIS index's hello. Connections from other slow spawns can
  // arrive first; park them for the Launch that wants them.
  const Deadline deadline = Deadline::AfterMillis(options_.launch_timeout_ms);
  for (;;) {
    auto it = pending_.find(index);
    if (it != pending_.end()) {
      *conn = std::move(it->second);
      pending_.erase(it);
      return Status::OK();
    }
    net::UniqueFd accepted;
    Status st = net::Accept(options_.listen_fd, deadline, &accepted);
    std::string hello;
    if (st.ok()) {
      st = net::RecvFrame(accepted.get(), &hello, deadline);
    }
    if (!st.ok()) {
      KillLocked(index);
      return Status::Unavailable("worker " + std::to_string(index) +
                                 " failed to rendezvous: " + st.ToString());
    }
    JsonValue doc;
    st = ParseJson(hello, &doc);
    const JsonValue* idx = st.ok() ? doc.Find("index") : nullptr;
    if (idx == nullptr || idx->type != JsonValue::Type::kNumber ||
        !idx->is_uint) {
      // Not a worker hello; drop the connection and keep waiting.
      continue;
    }
    pending_[static_cast<uint32_t>(idx->uint_value)] = std::move(accepted);
  }
}

// ---------------------------------------------------------------------------
// ShardedQuery

ShardedQuery::ShardedQuery(WorkerSupervisor* supervisor, std::string graph,
                           uint64_t fingerprint, std::string query_json,
                           const CancelToken* cancel)
    : supervisor_(supervisor),
      graph_(std::move(graph)),
      fingerprint_(fingerprint),
      query_json_(std::move(query_json)),
      cancel_(cancel) {}

WaveExecutor* ShardedQuery::ExecutorFor(uint32_t ordinal) {
  if (engines_.size() <= ordinal) engines_.resize(ordinal + 1);
  if (engines_[ordinal] == nullptr) {
    engines_[ordinal] = std::make_unique<Engine>(this, ordinal);
  }
  return engines_[ordinal].get();
}

Status ShardedQuery::Engine::ExecuteWave(uint64_t current, uint64_t target,
                                         size_t num_stripes,
                                         RawSampleDelta* out) {
  WaveSpec spec;
  spec.graph = query_->graph_;
  spec.fingerprint = query_->fingerprint_;
  spec.query_json = query_->query_json_;
  spec.ordinal = ordinal_;
  spec.num_stripes = num_stripes;
  spec.from = current;
  spec.to = target;
  spec.cancel = query_->cancel_;
  return query_->supervisor_->ExecuteWave(spec, out);
}

}  // namespace saphyra
