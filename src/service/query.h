#ifndef SAPHYRA_SERVICE_QUERY_H_
#define SAPHYRA_SERVICE_QUERY_H_

/// \file
/// The serving layer's query model: one heterogeneous request type
/// covering every estimator in the library (SaPHyRa_bc, k-path,
/// closeness, ABRA, KADABRA, each with its own ε/δ/seed/strategy and
/// optional top-k mode), its canonicalization, and the derived cache key
/// the scheduler memoizes on.
///
/// The split that makes memoization sound is the determinism contract
/// (DESIGN.md, "Adaptive stopping contract"): a query's *statistical*
/// parameters (estimator, ε, δ, seed, top-k, sampling strategy, k-path
/// hop budget, target set) fully determine its estimates bit for bit,
/// while *execution* parameters (thread count, wave size, traversal
/// policy) never affect any result bit. Canonicalization therefore zeroes
/// the inapplicable fields, sorts/dedups the target set, and encodes only
/// the statistical side; two requests share a cache entry exactly when the
/// contract says they must produce identical bytes. See docs/serving.md
/// for the JSON schema and worked examples.
///
/// Ownership/threading: plain value types and pure functions; safe to use
/// from concurrent scheduler threads.

#include <cstdint>
#include <string>
#include <vector>

#include "bc/path_sampler.h"
#include "bicomp/incremental.h"
#include "graph/frontier.h"
#include "graph/graph.h"
#include "util/status.h"

namespace saphyra {

class JsonValue;

/// \brief What a request line asks the server to do: answer a statistical
/// query (the default) or mutate the graph ({"op":"update"}). Updates
/// carry an action + edge instead of statistical parameters, are never
/// memoized, and bump the graph's mutation epoch — see docs/serving.md,
/// "Dynamic graphs".
enum class RequestOp : uint8_t {
  kQuery = 0,
  kUpdate = 1,
};

/// \brief Which estimator answers the query.
enum class EstimatorKind : uint8_t {
  kBc = 0,         ///< SaPHyRa_bc on a target subset
  kBcFull = 1,     ///< SaPHyRa_bc-full (whole network)
  kKPath = 2,      ///< k-path centrality via the generic framework
  kCloseness = 3,  ///< harmonic closeness via the generic framework
  kAbra = 4,       ///< ABRA baseline (whole network, subset reported)
  kKadabra = 5,    ///< KADABRA baseline (whole network, subset reported)
};

const char* EstimatorKindName(EstimatorKind kind);
bool ParseEstimatorKind(const std::string& s, EstimatorKind* out);

/// \brief One serving request. Defaults mirror the library option structs.
struct QueryRequest {
  /// Client-chosen identifier, echoed back verbatim in the result line.
  std::string id;
  /// Which pooled graph answers the query, by registered name ("" = the
  /// server's default graph). Routing-only, NOT part of the cache key:
  /// the key already embeds the resolved graph's content fingerprint, so
  /// two names serving identical bytes share memo entries and two names
  /// serving different graphs can never collide. Single-session servers
  /// reject a non-empty name they were not started with (NOT_FOUND).
  std::string graph;
  EstimatorKind estimator = EstimatorKind::kBc;

  /// Query or update. For updates, only id/graph/action/edge may appear
  /// on the wire — a statistical field on an update line is rejected, so
  /// a mistyped request can never half-apply as the wrong kind.
  RequestOp op = RequestOp::kQuery;
  /// Update-only: insert or delete the undirected edge {edge_u, edge_v}.
  EdgeMutationKind action = EdgeMutationKind::kInsert;
  NodeId edge_u = 0;
  NodeId edge_v = 0;

  // --- statistical parameters (part of the cache key) ------------------
  double epsilon = 0.05;
  double delta = 0.01;
  uint64_t seed = 1;
  /// 0 = guaranteed-ε mode; >0 = top-k separation mode.
  uint64_t top_k = 0;
  /// Hop budget of k-path centrality (ignored by every other estimator).
  uint32_t k = 4;
  /// Shortest-path sampling strategy (bc and KADABRA only).
  SamplingStrategy strategy = SamplingStrategy::kBidirectional;
  /// Target node set. Empty = the whole graph (bc becomes bc-full).
  std::vector<NodeId> targets;
  /// 0 = no deadline. Otherwise the query is cancelled after this many
  /// milliseconds and answers with whatever completed waves it has,
  /// tagged degraded. Part of the cache key: the deadline changes which
  /// result bytes a request can produce, so bounded and unbounded
  /// spellings of the same query must not share a memo entry (degraded
  /// results are never memoized, but an unbounded hit must also never be
  /// served where the client budgeted for less).
  uint64_t deadline_ms = 0;

  // --- execution parameters (never in the cache key) -------------------
  /// Worker threads for sample generation; 0 = the session default.
  uint32_t num_threads = 0;
  /// BFS level-expansion policy; results are bitwise identical either way.
  TraversalPolicy traversal = TraversalPolicy::kAuto;
};

/// \brief Validate `req` against a graph of `num_nodes` nodes and rewrite
/// it into canonical form: targets sorted and deduplicated (all nodes in
/// range), a targetless bc promoted to bc-full, and every field an
/// estimator ignores reset to its default so it cannot split cache
/// entries (strategy for closeness/k-path/ABRA, k for everything but
/// k-path, and — being execution-only — traversal and num_threads are
/// left alone but never encoded). Updates canonicalize differently: the
/// edge endpoints are range-checked (out of range or a self loop →
/// INVALID_ARGUMENT) and ordered edge_u < edge_v; whether the edge
/// exists is the overlay's business at apply time, not the parser's.
Status CanonicalizeQuery(NodeId num_nodes, QueryRequest* req);

/// \brief Memoization key of a canonicalized request on a specific graph.
///
/// `canonical` is a byte-exact encoding of (graph fingerprint, estimator,
/// ε bits, δ bits, seed, top-k, k, strategy, target list); `hash` is its
/// FNV-1a digest for bucket lookup. Equality compares the full encoding,
/// so a hash collision degrades to a miss-equality check, never a wrong
/// result.
struct QueryCacheKey {
  uint64_t hash = 0;
  std::string canonical;

  bool operator==(const QueryCacheKey& other) const {
    return hash == other.hash && canonical == other.canonical;
  }
};

/// \brief Build the cache key of a *canonicalized* request running against
/// the graph identified by `graph_fingerprint`
/// (GraphContentFingerprint / the `.sgr` header).
QueryCacheKey MakeQueryCacheKey(uint64_t graph_fingerprint,
                                const QueryRequest& req);

/// \brief How a result was produced, for the latency accounting.
enum class ServeMode : uint8_t {
  kComputed = 0,  ///< ran the estimator
  kMemoized = 1,  ///< copied from the completed-results LRU
  kDeduped = 2,   ///< shared another in-flight execution of the same key
};

const char* ServeModeName(ServeMode mode);

/// \brief One answered query.
struct QueryResult {
  std::string id;
  /// The graph name the request routed to, echoed back so clients of a
  /// multi-graph server can demux; empty (and absent from the NDJSON
  /// line) on single-graph servers and unrouted errors.
  std::string graph;
  Status status;
  EstimatorKind estimator = EstimatorKind::kBc;
  /// Nodes and their estimates, aligned; ranking order is the caller's
  /// business (estimates are deterministic, sort order of ties is not a
  /// contract the serving layer wants to own).
  std::vector<NodeId> nodes;
  std::vector<double> estimates;
  uint64_t samples_used = 0;
  /// Wall-clock seconds of *this* serve (≈0 for memoized hits).
  double seconds = 0.0;
  ServeMode mode = ServeMode::kComputed;
  /// Deadline truncation: estimates cover completed waves only, the
  /// (ε, δ) guarantee does NOT hold, and the result is never memoized.
  bool degraded = false;
  /// Why the run degraded (kOk unless `degraded`): kDeadlineExceeded,
  /// kCancelled, or kUnavailable when the sharded tier lost its workers
  /// past the retry budget. Serialized as "degrade_reason":
  /// "deadline" | "cancelled" | "shard_lost".
  StatusCode degrade_reason = StatusCode::kOk;
  /// Only when degraded: the deviation bound actually achieved, in the
  /// estimator's own units; infinity when truncation preceded any
  /// variance estimate (serialized as null).
  double epsilon_achieved = 0.0;

  // --- update results (op == kUpdate only) -----------------------------
  /// Echoes the request kind; update results serialize as
  /// {"ok":true,"op":"update","epoch":E,"fingerprint":"<hex>",...} with
  /// none of the estimator fields above.
  RequestOp op = RequestOp::kQuery;
  /// The mutation epoch the update produced.
  uint64_t epoch = 0;
  /// The new chained graph fingerprint (ChainMutationFingerprint).
  uint64_t fingerprint = 0;
  /// Whether this update compacted the overlay onto a clean CSR.
  bool compacted = false;
};

/// \brief Parse one NDJSON request line. Unknown fields are rejected (a
/// typo'd "epsilon" silently running at the default would be worse).
Status ParseQueryRequest(const std::string& line, QueryRequest* out);

/// \brief Render `req` as one NDJSON request line (no trailing newline)
/// that ParseQueryRequest round-trips exactly — ε/δ print with shortest-
/// round-trip precision. This is how the sharded tier ships a
/// *canonicalized* query to worker processes: the worker re-parses and
/// re-canonicalizes, and bitwise-identical statistical parameters are what
/// make its stripe replay bit-for-bit.
std::string SerializeQueryRequest(const QueryRequest& req);

/// \brief Render `res` as one NDJSON line (no trailing newline).
/// Estimates print with shortest-round-trip precision, so piping results
/// through text preserves bitwise equality.
std::string SerializeQueryResult(const QueryResult& res);

}  // namespace saphyra

#endif  // SAPHYRA_SERVICE_QUERY_H_
