#ifndef SAPHYRA_SERVICE_SHARD_WORKER_H_
#define SAPHYRA_SERVICE_SHARD_WORKER_H_

/// \file
/// The sharded serving tier's worker half: a blocking RPC loop that
/// answers the coordinator's frame protocol (hello/ping/wave/quit) over
/// one connection, drawing its assigned RNG stripes on a local
/// SampleEngine and shipping back the raw integer delta.
///
/// Replay contract. A stripe's samples are a pure function of
/// (canonical query, ordinal, stripe, sample range): the worker derives
/// the run's RNG streams from the query seed exactly as the estimator
/// frontends do (core/saphyra.cc — ordinal 0 consumes the pilot split,
/// ordinal 1 the post-split base stream; ABRA/KADABRA use the base
/// stream directly as ordinal 0), advances a stripe past samples other
/// processes already drew with draw-and-discard (identical RNG
/// consumption), then draws its quota. A freshly restarted worker can
/// therefore serve any wave of an in-flight query bit-identically — the
/// property the supervisor's stripe reassignment relies on.
///
/// State. Engines are cached per (graph, canonical query) in a small
/// LRU; per-ordinal stripe positions track how far each stream has been
/// consumed. A request for samples *behind* a stripe's position (the
/// coordinator retried a wave this worker half-drew) rebuilds that
/// ordinal's engine from the seed — streams only run forward.
///
/// Failure injection: the wave handler honors the `worker.wave`
/// failpoint site; a `throw` there simulates a mid-wave crash (the loop
/// exits without replying, and the connection drops).

#include <cstdint>
#include <string>

#include "service/session_pool.h"
#include "util/status.h"

namespace saphyra {

struct WorkerLoopOptions {
  /// This worker's index, echoed in the hello frame so the coordinator
  /// can demux rendezvous connections.
  uint32_t index = 0;
  /// Cached (graph, query) engine states; least-recently-used beyond
  /// this many are dropped (their next wave rebuilds from the seed).
  size_t max_states = 32;
};

/// \brief Serve the shard RPC protocol on `fd` until the peer quits or
/// the connection drops (both return OK — a vanished coordinator is this
/// process's normal exit). `fd` is borrowed; `pool` resolves the graph
/// names the coordinator routes by and must outlive the call.
Status RunWorkerLoop(int fd, SessionPool* pool,
                     const WorkerLoopOptions& options);

}  // namespace saphyra

#endif  // SAPHYRA_SERVICE_SHARD_WORKER_H_
