#include "service/json_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace saphyra {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Status Parse(JsonValue* out) {
    SkipWs();
    SAPHYRA_RETURN_NOT_OK(ParseValue(out, 0));
    SkipWs();
    if (pos_ != s_.size()) {
      return Error("trailing characters after JSON document");
    }
    return Status::OK();
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + msg);
  }

  void SkipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Error(std::string("expected '") + c + "'");
    }
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= s_.size()) return Error("unexpected end of input");
    const char c = s_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string_value);
      case 't':
      case 'f':
        return ParseLiteral(out);
      case 'n':
        if (s_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          out->type = JsonValue::Type::kNull;
          return Status::OK();
        }
        return Error("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(JsonValue* out) {
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      out->type = JsonValue::Type::kBool;
      out->bool_value = true;
      return Status::OK();
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      out->type = JsonValue::Type::kBool;
      out->bool_value = false;
      return Status::OK();
    }
    return Error("invalid literal");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("invalid value");
    const std::string token = s_.substr(start, pos_ - start);
    // Enforce the RFC 8259 number grammar before handing the token to
    // strtod, which is laxer (leading '+', leading zeros, '.5', '5.').
    // Lax acceptance here would make this server disagree with standard
    // JSON parsers about which request lines are well-formed.
    size_t i = 0;
    auto bad = [&] { return Error("invalid number '" + token + "'"); };
    if (i < token.size() && token[i] == '-') ++i;
    if (i >= token.size() ||
        !std::isdigit(static_cast<unsigned char>(token[i]))) {
      return bad();
    }
    if (token[i] == '0') {
      ++i;  // a leading zero must stand alone
    } else {
      while (i < token.size() &&
             std::isdigit(static_cast<unsigned char>(token[i]))) {
        ++i;
      }
    }
    if (i < token.size() && token[i] == '.') {
      ++i;
      if (i >= token.size() ||
          !std::isdigit(static_cast<unsigned char>(token[i]))) {
        return bad();  // at least one fraction digit
      }
      while (i < token.size() &&
             std::isdigit(static_cast<unsigned char>(token[i]))) {
        ++i;
      }
    }
    if (i < token.size() && (token[i] == 'e' || token[i] == 'E')) {
      ++i;
      if (i < token.size() && (token[i] == '+' || token[i] == '-')) ++i;
      if (i >= token.size() ||
          !std::isdigit(static_cast<unsigned char>(token[i]))) {
        return bad();  // at least one exponent digit
      }
      while (i < token.size() &&
             std::isdigit(static_cast<unsigned char>(token[i]))) {
        ++i;
      }
    }
    if (i != token.size()) return bad();

    char* end = nullptr;
    errno = 0;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(v)) {
      return bad();
    }
    out->type = JsonValue::Type::kNumber;
    out->number_value = v;
    out->is_uint = token.find_first_of(".eE-") == std::string::npos;
    if (out->is_uint) {
      errno = 0;
      out->uint_value = std::strtoull(token.c_str(), &end, 10);
      if (errno != 0) return Error("integer out of range '" + token + "'");
    }
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    SAPHYRA_RETURN_NOT_OK(Expect('"'));
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) break;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("invalid \\u escape");
          }
          // UTF-8 encode the BMP code point; surrogate pairs are rejected
          // (request ids have no business containing astral characters).
          if (code >= 0xD800 && code <= 0xDFFF) {
            return Error("surrogate \\u escapes unsupported");
          }
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseArray(JsonValue* out, int depth) {
    SAPHYRA_RETURN_NOT_OK(Expect('['));
    out->type = JsonValue::Type::kArray;
    SkipWs();
    if (Consume(']')) return Status::OK();
    for (;;) {
      JsonValue elem;
      SkipWs();
      SAPHYRA_RETURN_NOT_OK(ParseValue(&elem, depth + 1));
      out->array.push_back(std::move(elem));
      SkipWs();
      if (Consume(']')) return Status::OK();
      SAPHYRA_RETURN_NOT_OK(Expect(','));
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    SAPHYRA_RETURN_NOT_OK(Expect('{'));
    out->type = JsonValue::Type::kObject;
    SkipWs();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWs();
      std::string key;
      SAPHYRA_RETURN_NOT_OK(ParseString(&key));
      SkipWs();
      SAPHYRA_RETURN_NOT_OK(Expect(':'));
      SkipWs();
      JsonValue value;
      SAPHYRA_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->object[std::move(key)] = std::move(value);
      SkipWs();
      if (Consume('}')) return Status::OK();
      SAPHYRA_RETURN_NOT_OK(Expect(','));
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

Status ParseJson(const std::string& text, JsonValue* out) {
  *out = JsonValue();
  return Parser(text).Parse(out);
}

std::string JsonQuote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string JsonNumber(double v) {
  char buf[32];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

}  // namespace saphyra
