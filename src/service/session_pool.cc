#include "service/session_pool.h"

#include <filesystem>
#include <system_error>
#include <utility>

namespace saphyra {
namespace {

// Resolve a registration path so that two spellings of the same file
// ("data/g.txt" vs "./data/./g.txt") share one pool entry. weakly_
// canonical tolerates not-yet-existing files (the load will report the
// real error later, attributed to the name the client used).
std::string ResolvePath(const std::string& path) {
  std::error_code ec;
  std::filesystem::path resolved =
      std::filesystem::weakly_canonical(std::filesystem::path(path), ec);
  if (ec) return path;
  return resolved.string();
}

// Re-wrap `st` with the graph name prepended, preserving the code.
Status Annotate(const std::string& name, const Status& st) {
  const std::string msg = "graph \"" + name + "\": " + st.message();
  switch (st.code()) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(msg);
    case StatusCode::kIOError:
      return Status::IOError(msg);
    case StatusCode::kNotFound:
      return Status::NotFound(msg);
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(msg);
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(msg);
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(msg);
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(msg);
    case StatusCode::kCancelled:
      return Status::Cancelled(msg);
    case StatusCode::kInternal:
    default:
      return Status::Internal(msg);
  }
}

}  // namespace

SessionPool::SessionPool(const SessionPoolOptions& options)
    : options_(options) {}

Status SessionPool::Register(const std::string& name,
                             const std::string& path) {
  if (name.empty()) {
    return Status::InvalidArgument("graph name must be non-empty");
  }
  if (path.empty()) {
    return Status::InvalidArgument("graph path must be non-empty (graph \"" +
                                   name + "\")");
  }
  const std::string resolved = ResolvePath(path);
  std::lock_guard<std::mutex> lock(mu_);
  if (by_name_.count(name) != 0) {
    return Status::InvalidArgument("graph \"" + name +
                                   "\" registered twice");
  }
  std::shared_ptr<Entry> entry;
  auto it = by_path_.find(resolved);
  if (it != by_path_.end()) {
    entry = it->second;  // alias: share the session and its counters
  } else {
    entry = std::make_shared<Entry>();
    entry->path = resolved;
    entry->lru_pos = lru_.end();
    by_path_[resolved] = entry;
  }
  by_name_[name] = std::move(entry);
  names_.push_back(name);
  return Status::OK();
}

void SessionPool::TouchLocked(Entry* e) {
  if (e->lru_pos != lru_.begin()) {
    lru_.splice(lru_.begin(), lru_, e->lru_pos);
  }
}

void SessionPool::PublishLocked(Entry* e,
                                std::shared_ptr<QuerySession> session) {
  e->fingerprint = session->fingerprint();
  e->session = std::move(session);
  lru_.push_front(e);
  e->lru_pos = lru_.begin();
  ++e->loads;
  if (options_.max_graphs == 0) return;
  while (lru_.size() > options_.max_graphs) {
    // Least-recently-acquired evictable entry: mutated sessions are
    // never victims — a reload would come back as epoch 0 from disk and
    // silently drop every applied update. If everything resident is
    // mutated, the pool runs over its cap rather than lose mutations.
    auto victim_pos = lru_.end();
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
      if (!(*it)->session->mutated()) victim_pos = it;
    }
    if (victim_pos == lru_.end()) break;
    Entry* victim = *victim_pos;
    lru_.erase(victim_pos);
    victim->lru_pos = lru_.end();
    // Only the pool's reference is dropped: queries holding an Acquire
    // handle keep the evicted session alive until they finish.
    victim->session.reset();
    ++victim->evictions;
  }
}

Status SessionPool::Acquire(const std::string& name,
                            std::shared_ptr<QuerySession>* out) {
  out->reset();
  std::unique_lock<std::mutex> lock(mu_);
  std::string resolved_name = name;
  if (resolved_name.empty()) {
    if (names_.empty()) {
      return Status::FailedPrecondition("session pool has no graphs");
    }
    resolved_name = names_.front();
  }
  auto it = by_name_.find(resolved_name);
  if (it == by_name_.end()) {
    return Status::NotFound("unknown graph \"" + resolved_name + "\"");
  }
  std::shared_ptr<Entry> entry = it->second;
  ++entry->acquires;

  for (;;) {
    if (entry->session != nullptr) {
      TouchLocked(entry.get());
      *out = entry->session;
      return Status::OK();
    }
    if (!entry->loading) break;  // cold and idle: this caller loads
    // Someone else is loading this graph. Wait for their attempt and
    // adopt its outcome — success hands us the session on the next spin;
    // failure is their attempt's error, reported to everyone who waited
    // on it (a later Acquire starts a fresh attempt).
    const uint64_t waited_generation = entry->load_generation;
    entry->cv.wait(lock, [&] {
      return entry->load_generation != waited_generation;
    });
    if (entry->session == nullptr && !entry->loading &&
        !entry->last_error.ok()) {
      return entry->last_error;
    }
  }

  entry->loading = true;
  lock.unlock();
  // The expensive part — graph load (+ eager index), outside the pool
  // lock so other graphs keep serving.
  std::unique_ptr<QuerySession> session;
  Status st = QuerySession::Open(entry->path, options_.session, &session);
  lock.lock();
  entry->loading = false;
  ++entry->load_generation;
  if (st.ok()) {
    std::shared_ptr<QuerySession> shared = std::move(session);
    PublishLocked(entry.get(), shared);
    entry->last_error = Status::OK();
    entry->cv.notify_all();
    *out = std::move(shared);
    return Status::OK();
  }
  entry->last_error = Annotate(resolved_name, st);
  entry->cv.notify_all();
  return entry->last_error;
}

Status SessionPool::Preload(const std::string& name) {
  if (!name.empty()) {
    std::shared_ptr<QuerySession> session;
    return Acquire(name, &session);
  }
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    names = names_;
  }
  for (const std::string& n : names) {
    std::shared_ptr<QuerySession> session;
    Status st = Acquire(n, &session);
    if (!st.ok()) return st;
  }
  return Status::OK();
}

std::string SessionPool::default_name() const {
  std::lock_guard<std::mutex> lock(mu_);
  return names_.empty() ? std::string() : names_.front();
}

size_t SessionPool::registered_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return names_.size();
}

size_t SessionPool::resident_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::vector<SessionPoolGraphStats> SessionPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SessionPoolGraphStats> out;
  out.reserve(names_.size());
  for (const std::string& name : names_) {
    const Entry& e = *by_name_.at(name);
    SessionPoolGraphStats row;
    row.name = name;
    row.path = e.path;
    row.fingerprint = e.fingerprint;
    row.resident = e.session != nullptr;
    row.acquires = e.acquires;
    row.loads = e.loads;
    row.evictions = e.evictions;
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace saphyra
