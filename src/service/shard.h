#ifndef SAPHYRA_SERVICE_SHARD_H_
#define SAPHYRA_SERVICE_SHARD_H_

/// \file
/// The sharded serving tier's coordinator half: a supervised pool of
/// `saphyra_worker` processes that sample waves execute on, plus the
/// per-query WaveExecutor adapters that plug it into the estimator
/// frontends.
///
/// Why sharding is bitwise-safe. The sample engine stripes draws over a
/// fixed number of logical RNG streams and accumulates in integers
/// (core/sample_engine.h), so a wave's raw delta is the element-wise sum
/// of per-stripe deltas — and each stripe's delta is a pure function of
/// (query, stripe, [from, to)). The supervisor therefore partitions a
/// wave's stripes over worker processes, sums whatever comes back, and
/// the merged wave is bitwise identical to a local draw at ANY shard
/// count and under ANY reassignment of stripes between workers. Killing
/// a worker mid-wave and replaying its stripes elsewhere cannot change a
/// single result bit; tests/shard_test.cc pins exactly that.
///
/// Failure model (docs/serving.md, "Sharded serving" failure matrix):
///   - crash (connection drops, send/recv fails): mark the worker dead,
///     reassign its stripes to survivors, restart it lazily under
///     exponential backoff with jitter;
///   - hang/slow (RPC exceeds `rpc_timeout_ms` while the query deadline
///     still has room): same as a crash — the stuck incarnation is
///     killed on its next launch;
///   - lost past the budget (`retry_budget` failed rounds, or no worker
///     restartable): the wave fails with UNAVAILABLE, which the
///     progressive sampler surfaces as a degraded result
///     (degrade_reason = shard_lost) — never an error, never memoized.
/// A worker-reported DEADLINE_EXCEEDED/CANCELLED is the *query's*
/// deadline, not a worker fault: it propagates as-is and consumes no
/// retry budget.
///
/// Ownership/threading: one WorkerSupervisor per server, shared by every
/// concurrent query; a per-worker mutex serializes RPCs on each
/// connection (a wave execution holds at most one worker lock at a time,
/// so concurrent queries interleave without deadlock). ShardedQuery /
/// its executors are per-query, single-driver objects.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bicomp/incremental.h"
#include "core/sample_engine.h"
#include "net/socket.h"
#include "util/cancel.h"
#include "util/rng.h"
#include "util/status.h"

namespace saphyra {

/// \brief Supervision knobs of the worker pool.
struct ShardOptions {
  /// Worker processes (shards). Stripes of every wave are partitioned
  /// round-robin over the live subset.
  uint32_t num_workers = 2;
  /// Failed *rounds* a wave tolerates before giving up with UNAVAILABLE:
  /// a round is one pass that reassigns the failed stripes over the
  /// workers then available. 0 = any worker fault degrades the query.
  uint32_t retry_budget = 2;
  /// Idle-worker health-check period (0 disables the heartbeat thread).
  /// A missed heartbeat marks the worker dead so the next wave restarts
  /// it instead of discovering the corpse mid-RPC.
  uint64_t heartbeat_ms = 1000;
  /// Per-RPC ceiling distinguishing a hung worker from a slow query: the
  /// effective RPC deadline is min(query deadline, now + this).
  uint64_t rpc_timeout_ms = 10000;
  /// Restart backoff: doubles per consecutive failure from `initial` up
  /// to `max`, with deterministic ±25% jitter.
  uint64_t backoff_initial_ms = 10;
  uint64_t backoff_max_ms = 1000;
};

/// \brief How worker incarnations come to life. The supervisor calls
/// Launch under the worker's lock whenever it needs incarnation N+1 of a
/// worker index; the launcher must tear down incarnation N itself (kill
/// the process / join the thread) before producing the new connection.
class WorkerLauncher {
 public:
  virtual ~WorkerLauncher() = default;
  virtual Status Launch(uint32_t index, net::UniqueFd* conn) = 0;
};

/// \brief Per-worker gauges, snapshot via WorkerSupervisor::stats() and
/// surfaced in saphyra_serve's --stats-json / stderr summary.
struct ShardWorkerStats {
  uint32_t index = 0;
  bool alive = false;
  uint64_t waves = 0;               ///< wave RPCs answered successfully
  uint64_t restarts = 0;            ///< incarnations launched after the first
  uint64_t retries = 0;             ///< RPCs that failed and were retried
  uint64_t stripes_reassigned = 0;  ///< stripes inherited from a failed peer
  uint64_t heartbeat_misses = 0;    ///< failed idle health checks
};

/// \brief One delegated wave: draw samples [from, to) of the query's
/// ordinal-th progressive run, striped over `num_stripes` streams.
struct WaveSpec {
  std::string graph;       ///< pool name routing the query ("" = default)
  uint64_t fingerprint = 0;  ///< content fingerprint the worker must match
  std::string query_json;  ///< canonical statistical query (state key)
  uint32_t ordinal = 0;    ///< 0 = pilot run, 1 = main run
  size_t num_stripes = 0;
  uint64_t from = 0;
  uint64_t to = 0;
  /// The query's cancel token: its effective deadline caps every RPC and
  /// is polled between retry rounds. May be null (unbounded query).
  const CancelToken* cancel = nullptr;
};

/// \brief The supervised worker pool: launches workers, partitions wave
/// stripes over the live ones, merges their integer deltas, and turns
/// worker faults into retries, restarts, and — past the budget — one
/// UNAVAILABLE wave failure.
class WorkerSupervisor {
 public:
  /// `launcher` is borrowed and must outlive the supervisor.
  WorkerSupervisor(WorkerLauncher* launcher, const ShardOptions& options);
  ~WorkerSupervisor();

  WorkerSupervisor(const WorkerSupervisor&) = delete;
  WorkerSupervisor& operator=(const WorkerSupervisor&) = delete;

  /// \brief Launch every worker and start the heartbeat thread. Fails if
  /// any initial launch fails (a server that cannot assemble its pool
  /// should say so at startup, not on the first query).
  Status Start();

  /// \brief Quit the workers and stop the heartbeat thread. Idempotent;
  /// the destructor calls it.
  void Shutdown();

  /// \brief Execute one wave: partition its stripes, farm them out,
  /// merge the deltas into *out. On worker faults, retries with
  /// reassignment/restarts up to the budget; returns UNAVAILABLE when
  /// the budget is exhausted, or the query's own DEADLINE_EXCEEDED /
  /// CANCELLED when that fires first. Thread-safe.
  Status ExecuteWave(const WaveSpec& spec, RawSampleDelta* out);

  /// \brief Propagate one applied graph mutation to the worker tier.
  ///
  /// The coordinator has already applied the mutation locally and chained
  /// the graph's fingerprint to `expect_fingerprint`; the caller (the
  /// scheduler's update path) serializes broadcasts, so workers observe
  /// mutations in epoch order. The entry is appended to a durable
  /// mutation log first, then pushed to every live worker best-effort: a
  /// worker that fails the push is marked dead, and EnsureAliveLocked
  /// replays the *whole* log into every new incarnation before it serves
  /// a wave — so a restarted worker rejoins at the coordinator's epoch,
  /// never at the stale on-disk graph. Workers treat a replayed entry
  /// whose fingerprint they already reached as a no-op, which makes the
  /// push + replay pair idempotent.
  void BroadcastUpdate(const std::string& graph, const EdgeMutation& mut,
                       uint64_t expect_fingerprint);

  uint32_t num_workers() const { return options_.num_workers; }
  std::vector<ShardWorkerStats> stats() const;

 private:
  struct Worker {
    /// Serializes RPCs on this worker's connection; a wave execution
    /// holds at most one worker's lock at a time.
    std::mutex mu;
    net::UniqueFd conn;
    bool alive = false;
    uint32_t consecutive_failures = 0;
    /// Steady-clock gate for the next restart attempt (backoff).
    int64_t restart_after_ns = 0;

    // Gauges are atomics so stats() never blocks behind an RPC in flight.
    std::atomic<bool> alive_gauge{false};
    std::atomic<uint64_t> waves{0};
    std::atomic<uint64_t> restarts{0};
    std::atomic<uint64_t> retries{0};
    std::atomic<uint64_t> stripes_reassigned{0};
    std::atomic<uint64_t> heartbeat_misses{0};
  };

  /// One logged mutation, in broadcast order across ALL graphs: replay
  /// must preserve the relative order of a graph's entries or the
  /// fingerprint chain diverges.
  struct MutationLogEntry {
    std::string graph;
    EdgeMutation mut;
    uint64_t expect_fingerprint = 0;
  };

  /// Restart `w` if dead and its backoff window has passed, replaying the
  /// mutation log into the fresh incarnation before declaring it alive.
  /// Caller holds w->mu. `first_launch` suppresses the restart counter
  /// during Start().
  Status EnsureAliveLocked(uint32_t index, Worker* w, bool first_launch);
  /// Drop the connection and arm the restart backoff. Caller holds w->mu.
  void MarkDeadLocked(Worker* w);
  /// One wave RPC against worker `index` for the given stripes. Returns
  /// the worker's delta in *delta. A non-OK status is either the query's
  /// deadline/cancellation (`*worker_fault` = false) or a worker fault
  /// the caller should retry elsewhere (`*worker_fault` = true).
  Status WaveRpc(uint32_t index, const WaveSpec& spec,
                 const std::vector<uint32_t>& stripes, RawSampleDelta* delta,
                 bool* worker_fault);
  /// One update RPC on `w`'s connection (caller holds w->mu and has a
  /// live connection). Verifies the worker landed on the expected
  /// fingerprint; any failure is the caller's cue to MarkDeadLocked.
  Status UpdateRpc(uint32_t index, Worker* w, const MutationLogEntry& entry);
  void HeartbeatLoop();

  WorkerLauncher* launcher_;
  ShardOptions options_;
  std::vector<std::unique_ptr<Worker>> workers_;

  std::mutex backoff_mu_;
  Rng backoff_rng_;  ///< fixed-seed jitter source (guarded by backoff_mu_)

  /// Every broadcast mutation since startup, in order. Guarded by
  /// log_mu_, which nests INSIDE a worker's mu (EnsureAliveLocked
  /// snapshots the log while holding w->mu); BroadcastUpdate appends
  /// before touching any worker, so a restart racing a broadcast replays
  /// a superset — harmless, replay is idempotent.
  std::mutex log_mu_;
  std::vector<MutationLogEntry> mutation_log_;

  std::mutex hb_mu_;
  std::condition_variable hb_cv_;
  bool shutting_down_ = false;
  std::thread heartbeat_;
  bool started_ = false;
};

/// \brief Production launcher: fork+exec `saphyra_worker` processes that
/// connect back over the rendezvous endpoint. A relaunch SIGKILLs and
/// reaps the previous incarnation first, so a hung worker cannot leak.
class ProcessWorkerLauncher : public WorkerLauncher {
 public:
  struct Options {
    /// Path to the saphyra_worker binary.
    std::string worker_binary;
    /// Rendezvous endpoint the workers connect back to; the caller has
    /// already bound it (`listen_fd` is borrowed, not owned).
    net::Endpoint endpoint;
    int listen_fd = -1;
    /// Graph registrations forwarded verbatim ("NAME=PATH", first is the
    /// default), mirroring the server's own pool.
    std::vector<std::string> graph_args;
    /// Extra worker flags (e.g. "--no-cache").
    std::vector<std::string> extra_args;
    uint64_t launch_timeout_ms = 10000;
  };

  explicit ProcessWorkerLauncher(Options options);
  ~ProcessWorkerLauncher() override;

  Status Launch(uint32_t index, net::UniqueFd* conn) override;

 private:
  /// SIGKILL + reap index's incarnation, if any. Caller holds mu_.
  void KillLocked(uint32_t index);

  Options options_;
  std::mutex mu_;
  std::map<uint32_t, int> pids_;
  /// Connections that said hello for an index another Launch is not
  /// waiting on yet (two slow spawns can arrive out of order).
  std::map<uint32_t, net::UniqueFd> pending_;
};

/// \brief Per-query adapter handing the estimator frontends their
/// WaveExecutors (ordinal 0 = pilot run, 1 = main run), each of which
/// routes waves to the shared supervisor with this query's canonical
/// JSON, graph routing and cancel token attached. Single-driver: lives
/// on the query's scheduler thread for the duration of RunCanonical.
class ShardedQuery {
 public:
  ShardedQuery(WorkerSupervisor* supervisor, std::string graph,
               uint64_t fingerprint, std::string query_json,
               const CancelToken* cancel);

  /// \brief The executor of the query's ordinal-th progressive run
  /// (created on first use; owned by this object).
  WaveExecutor* ExecutorFor(uint32_t ordinal);

 private:
  class Engine : public WaveExecutor {
   public:
    Engine(ShardedQuery* query, uint32_t ordinal)
        : query_(query), ordinal_(ordinal) {}
    Status ExecuteWave(uint64_t current, uint64_t target, size_t num_stripes,
                       RawSampleDelta* out) override;

   private:
    ShardedQuery* query_;
    uint32_t ordinal_;
  };

  WorkerSupervisor* supervisor_;
  std::string graph_;
  uint64_t fingerprint_;
  std::string query_json_;
  const CancelToken* cancel_;
  std::vector<std::unique_ptr<Engine>> engines_;
};

}  // namespace saphyra

#endif  // SAPHYRA_SERVICE_SHARD_H_
