#include "service/query.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "service/json_util.h"
#include "util/hash.h"

namespace saphyra {

const char* EstimatorKindName(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kBc: return "bc";
    case EstimatorKind::kBcFull: return "bc-full";
    case EstimatorKind::kKPath: return "kpath";
    case EstimatorKind::kCloseness: return "closeness";
    case EstimatorKind::kAbra: return "abra";
    case EstimatorKind::kKadabra: return "kadabra";
  }
  return "bc";
}

bool ParseEstimatorKind(const std::string& s, EstimatorKind* out) {
  if (s == "bc") *out = EstimatorKind::kBc;
  else if (s == "bc-full") *out = EstimatorKind::kBcFull;
  else if (s == "kpath") *out = EstimatorKind::kKPath;
  else if (s == "closeness") *out = EstimatorKind::kCloseness;
  else if (s == "abra") *out = EstimatorKind::kAbra;
  else if (s == "kadabra") *out = EstimatorKind::kKadabra;
  else return false;
  return true;
}

const char* ServeModeName(ServeMode mode) {
  switch (mode) {
    case ServeMode::kComputed: return "computed";
    case ServeMode::kMemoized: return "memo";
    case ServeMode::kDeduped: return "dedup";
  }
  return "computed";
}

namespace {

/// Wire spelling of QueryResult::degrade_reason. Falls back to "deadline"
/// for any code outside the documented trio so a future reason can never
/// render an unparseable line.
const char* DegradeReasonName(StatusCode code) {
  switch (code) {
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kUnavailable: return "shard_lost";
    default: return "deadline";
  }
}

}  // namespace

Status CanonicalizeQuery(NodeId num_nodes, QueryRequest* req) {
  if (req->op == RequestOp::kUpdate) {
    // Structural validation only: existence/duplication of the edge is
    // checked against the live overlay at apply time, where the answer
    // cannot go stale between validation and application.
    if (req->edge_u >= num_nodes || req->edge_v >= num_nodes) {
      return Status::InvalidArgument(
          "update edge endpoint " +
          std::to_string(std::max(req->edge_u, req->edge_v)) +
          " out of range (n=" + std::to_string(num_nodes) + ")");
    }
    if (req->edge_u == req->edge_v) {
      return Status::InvalidArgument("update edge must not be a self loop");
    }
    if (req->edge_u > req->edge_v) std::swap(req->edge_u, req->edge_v);
    return Status::OK();
  }
  if (!(req->epsilon > 0.0) || req->epsilon > 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1]");
  }
  if (!(req->delta > 0.0) || req->delta >= 1.0) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  std::sort(req->targets.begin(), req->targets.end());
  req->targets.erase(std::unique(req->targets.begin(), req->targets.end()),
                     req->targets.end());
  if (!req->targets.empty() && req->targets.back() >= num_nodes) {
    return Status::InvalidArgument(
        "target id " + std::to_string(req->targets.back()) +
        " out of range (n=" + std::to_string(num_nodes) + ")");
  }
  // Empty targets mean "the whole graph"; for bc that is exactly bc-full,
  // so the two spellings must share one cache entry.
  if (req->estimator == EstimatorKind::kBc && req->targets.empty()) {
    req->estimator = EstimatorKind::kBcFull;
  }
  // Fields an estimator ignores are reset to fixed values so they cannot
  // split cache entries between requests with identical answers.
  const bool uses_strategy = req->estimator == EstimatorKind::kBc ||
                             req->estimator == EstimatorKind::kBcFull ||
                             req->estimator == EstimatorKind::kKadabra;
  if (!uses_strategy) req->strategy = SamplingStrategy::kBidirectional;
  if (req->estimator == EstimatorKind::kKPath) {
    if (req->k < 1 || req->k > 10000) {
      return Status::InvalidArgument("k must be in [1, 10000]");
    }
  } else {
    req->k = 0;
  }
  return Status::OK();
}

QueryCacheKey MakeQueryCacheKey(uint64_t graph_fingerprint,
                                const QueryRequest& req) {
  // Byte-exact encoding of the statistical parameters only; traversal and
  // num_threads are execution-only and deliberately absent (the
  // determinism contract makes them inert — see the file comment).
  std::string enc;
  enc.reserve(64 + req.targets.size() * sizeof(NodeId));
  auto append = [&enc](const void* data, size_t bytes) {
    enc.append(static_cast<const char*>(data), bytes);
  };
  append(&graph_fingerprint, sizeof(graph_fingerprint));
  const uint8_t kind = static_cast<uint8_t>(req.estimator);
  append(&kind, sizeof(kind));
  // Doubles are keyed by their bit patterns: 0.05 and 0.05000000000000001
  // are different estimator runs, and NaN cannot reach here
  // (CanonicalizeQuery range-checks both).
  append(&req.epsilon, sizeof(req.epsilon));
  append(&req.delta, sizeof(req.delta));
  append(&req.seed, sizeof(req.seed));
  append(&req.top_k, sizeof(req.top_k));
  append(&req.k, sizeof(req.k));
  const uint8_t strat = static_cast<uint8_t>(req.strategy);
  append(&strat, sizeof(strat));
  append(&req.deadline_ms, sizeof(req.deadline_ms));
  const uint64_t count = req.targets.size();
  append(&count, sizeof(count));
  append(req.targets.data(), req.targets.size() * sizeof(NodeId));

  Fnv1a64 h;
  h.Update(enc);
  return {h.Digest(), std::move(enc)};
}

Status ParseQueryRequest(const std::string& line, QueryRequest* out) {
  *out = QueryRequest();
  JsonValue doc;
  SAPHYRA_RETURN_NOT_OK(ParseJson(line, &doc));
  if (doc.type != JsonValue::Type::kObject) {
    return Status::InvalidArgument("request must be a JSON object");
  }

  auto get_uint = [](const JsonValue& v, const char* what, uint64_t* dst) {
    if (v.type != JsonValue::Type::kNumber || !v.is_uint) {
      return Status::InvalidArgument(std::string(what) +
                                     " must be a non-negative integer");
    }
    *dst = v.uint_value;
    return Status::OK();
  };

  // Strictness across request kinds: a statistical field on an update
  // line (or a mutation field on a query line) is a malformed request,
  // not a silently-ignored one. Track the first offender of each kind
  // and judge once "op" is known, whatever the key order was.
  std::string query_only_key;   // first statistical/execution field seen
  std::string update_only_key;  // first mutation field seen
  bool edge_seen = false;
  bool action_seen = false;

  for (const auto& [key, value] : doc.object) {
    if (key != "id" && key != "graph" && key != "op") {
      if (key == "action" || key == "edge") {
        if (update_only_key.empty()) update_only_key = key;
      } else if (query_only_key.empty()) {
        query_only_key = key;
      }
    }
    if (key == "id") {
      if (value.type != JsonValue::Type::kString) {
        return Status::InvalidArgument("id must be a string");
      }
      out->id = value.string_value;
    } else if (key == "op") {
      if (value.type == JsonValue::Type::kString &&
          value.string_value == "query") {
        out->op = RequestOp::kQuery;
      } else if (value.type == JsonValue::Type::kString &&
                 value.string_value == "update") {
        out->op = RequestOp::kUpdate;
      } else {
        return Status::InvalidArgument("op must be query or update");
      }
    } else if (key == "action") {
      if (value.type == JsonValue::Type::kString &&
          value.string_value == "insert") {
        out->action = EdgeMutationKind::kInsert;
      } else if (value.type == JsonValue::Type::kString &&
                 value.string_value == "delete") {
        out->action = EdgeMutationKind::kDelete;
      } else {
        return Status::InvalidArgument("action must be insert or delete");
      }
      action_seen = true;
    } else if (key == "edge") {
      if (value.type != JsonValue::Type::kArray || value.array.size() != 2) {
        return Status::InvalidArgument(
            "edge must be an array of exactly two node ids");
      }
      NodeId ends[2];
      for (size_t i = 0; i < 2; ++i) {
        uint64_t id = 0;
        SAPHYRA_RETURN_NOT_OK(get_uint(value.array[i], "edge endpoint", &id));
        if (id >= kInvalidNode) {
          return Status::InvalidArgument("edge endpoint exceeds node range");
        }
        ends[i] = static_cast<NodeId>(id);
      }
      out->edge_u = ends[0];
      out->edge_v = ends[1];
      edge_seen = true;
    } else if (key == "graph") {
      if (value.type != JsonValue::Type::kString) {
        return Status::InvalidArgument("graph must be a string");
      }
      out->graph = value.string_value;
    } else if (key == "estimator") {
      if (value.type != JsonValue::Type::kString ||
          !ParseEstimatorKind(value.string_value, &out->estimator)) {
        return Status::InvalidArgument(
            "estimator must be one of bc, bc-full, kpath, closeness, abra, "
            "kadabra");
      }
    } else if (key == "epsilon") {
      if (value.type != JsonValue::Type::kNumber) {
        return Status::InvalidArgument("epsilon must be a number");
      }
      out->epsilon = value.number_value;
    } else if (key == "delta") {
      if (value.type != JsonValue::Type::kNumber) {
        return Status::InvalidArgument("delta must be a number");
      }
      out->delta = value.number_value;
    } else if (key == "seed") {
      SAPHYRA_RETURN_NOT_OK(get_uint(value, "seed", &out->seed));
    } else if (key == "topk") {
      SAPHYRA_RETURN_NOT_OK(get_uint(value, "topk", &out->top_k));
    } else if (key == "deadline_ms") {
      SAPHYRA_RETURN_NOT_OK(get_uint(value, "deadline_ms", &out->deadline_ms));
    } else if (key == "k") {
      uint64_t k = 0;
      SAPHYRA_RETURN_NOT_OK(get_uint(value, "k", &k));
      if (k > 10000) return Status::InvalidArgument("k must be <= 10000");
      out->k = static_cast<uint32_t>(k);
    } else if (key == "strategy") {
      if (value.type != JsonValue::Type::kString) {
        return Status::InvalidArgument("strategy must be a string");
      }
      if (value.string_value == "bidirectional") {
        out->strategy = SamplingStrategy::kBidirectional;
      } else if (value.string_value == "unidirectional") {
        out->strategy = SamplingStrategy::kUnidirectional;
      } else {
        return Status::InvalidArgument(
            "strategy must be bidirectional or unidirectional");
      }
    } else if (key == "traversal") {
      if (value.type != JsonValue::Type::kString ||
          !ParseTraversalPolicy(value.string_value, &out->traversal)) {
        return Status::InvalidArgument(
            "traversal must be auto, topdown or hybrid");
      }
    } else if (key == "threads") {
      uint64_t t = 0;
      SAPHYRA_RETURN_NOT_OK(get_uint(value, "threads", &t));
      if (t > 1024) return Status::InvalidArgument("threads must be <= 1024");
      out->num_threads = static_cast<uint32_t>(t);
    } else if (key == "targets") {
      if (value.type != JsonValue::Type::kArray) {
        return Status::InvalidArgument("targets must be an array");
      }
      out->targets.reserve(value.array.size());
      for (const JsonValue& elem : value.array) {
        uint64_t id = 0;
        SAPHYRA_RETURN_NOT_OK(get_uint(elem, "targets entry", &id));
        if (id >= kInvalidNode) {
          return Status::InvalidArgument("targets entry exceeds node range");
        }
        out->targets.push_back(static_cast<NodeId>(id));
      }
    } else {
      return Status::InvalidArgument("unknown request field: " + key);
    }
  }
  if (out->op == RequestOp::kUpdate) {
    if (!query_only_key.empty()) {
      return Status::InvalidArgument("field \"" + query_only_key +
                                     "\" is not allowed in update requests");
    }
    if (!action_seen || !edge_seen) {
      return Status::InvalidArgument(
          "update requests need both \"action\" and \"edge\"");
    }
  } else if (!update_only_key.empty()) {
    return Status::InvalidArgument("field \"" + update_only_key +
                                   "\" requires \"op\":\"update\"");
  }
  return Status::OK();
}

std::string SerializeQueryRequest(const QueryRequest& req) {
  // Statistical parameters are emitted unconditionally so two canonical
  // requests serialize to equal strings exactly when their cache keys are
  // equal; id/graph are routing-only and appear only when set. Execution
  // parameters (threads, traversal) are deliberately absent: a worker
  // replaying stripes picks its own, and the determinism contract makes
  // them inert anyway.
  std::string out = "{";
  if (!req.id.empty()) out += "\"id\":" + JsonQuote(req.id) + ",";
  if (!req.graph.empty()) out += "\"graph\":" + JsonQuote(req.graph) + ",";
  if (req.op == RequestOp::kUpdate) {
    out += "\"op\":\"update\",\"action\":\"";
    out += req.action == EdgeMutationKind::kInsert ? "insert" : "delete";
    out += "\",\"edge\":[" + std::to_string(req.edge_u) + "," +
           std::to_string(req.edge_v) + "]}";
    return out;
  }
  out += "\"estimator\":\"";
  out += EstimatorKindName(req.estimator);
  out += "\",\"epsilon\":" + JsonNumber(req.epsilon);
  out += ",\"delta\":" + JsonNumber(req.delta);
  out += ",\"seed\":" + std::to_string(req.seed);
  out += ",\"topk\":" + std::to_string(req.top_k);
  out += ",\"k\":" + std::to_string(req.k);
  out += ",\"strategy\":\"";
  out += req.strategy == SamplingStrategy::kUnidirectional ? "unidirectional"
                                                           : "bidirectional";
  out += "\",\"deadline_ms\":" + std::to_string(req.deadline_ms);
  out += ",\"targets\":[";
  for (size_t i = 0; i < req.targets.size(); ++i) {
    if (i != 0) out.push_back(',');
    out += std::to_string(req.targets[i]);
  }
  out += "]}";
  return out;
}

std::string SerializeQueryResult(const QueryResult& res) {
  std::string out = "{\"id\":" + JsonQuote(res.id);
  // Emitted only when routed by name, so single-graph servers (and their
  // clients' parsers) see exactly the lines they always did.
  if (!res.graph.empty()) out += ",\"graph\":" + JsonQuote(res.graph);
  if (!res.status.ok()) {
    out += ",\"ok\":false,\"code\":\"";
    out += StatusCodeWireName(res.status.code());
    out += "\",\"error\":" + JsonQuote(res.status.ToString()) + "}";
    return out;
  }
  if (res.op == RequestOp::kUpdate) {
    // Update acknowledgements carry the new epoch and its chained
    // fingerprint (hex, zero-padded, so clients can compare digests as
    // strings) instead of estimator fields.
    char fp[17];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(res.fingerprint));
    out += ",\"ok\":true,\"op\":\"update\",\"epoch\":" +
           std::to_string(res.epoch) + ",\"fingerprint\":\"" + fp + "\"";
    if (res.compacted) out += ",\"compacted\":true";
    out += ",\"seconds\":" + JsonNumber(res.seconds) + "}";
    return out;
  }
  out += ",\"ok\":true,\"estimator\":\"";
  out += EstimatorKindName(res.estimator);
  out += "\",\"served\":\"";
  out += ServeModeName(res.mode);
  out += "\",\"samples\":" + std::to_string(res.samples_used);
  out += ",\"seconds\":" + JsonNumber(res.seconds);
  if (res.degraded) {
    // epsilon_achieved is infinite when the deadline hit before a variance
    // estimate existed; JSON has no Infinity, so that spells null.
    out += ",\"degraded\":true,\"degrade_reason\":\"";
    out += DegradeReasonName(res.degrade_reason);
    out += "\",\"epsilon_achieved\":";
    out += std::isfinite(res.epsilon_achieved)
               ? JsonNumber(res.epsilon_achieved)
               : "null";
  }
  out += ",\"nodes\":[";
  for (size_t i = 0; i < res.nodes.size(); ++i) {
    if (i != 0) out.push_back(',');
    out += std::to_string(res.nodes[i]);
  }
  out += "],\"estimates\":[";
  for (size_t i = 0; i < res.estimates.size(); ++i) {
    if (i != 0) out.push_back(',');
    out += JsonNumber(res.estimates[i]);
  }
  out += "]}";
  return out;
}

}  // namespace saphyra
